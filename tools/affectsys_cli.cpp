// affectsys command-line tool: synthesize, archive and replay the
// experiment artifacts (biosignal traces, usage workloads, sessions)
// without writing C++.
//
//   affectsys_cli synth-scl <out.csv> [seed]        SCL trace, uulmMAC session
//   affectsys_cli synth-usage <out.csv> [seed]      monkey workload, Fig 9 session
//   affectsys_cli classify <scl.csv>                label a trace, print segments
//   affectsys_cli playback <scl.csv>                affect-driven playback report
//   affectsys_cli manager <usage.csv> [fifo|lru|frequency]
//                                                   replay under baseline vs emotional
//   affectsys_cli modes                             decoder mode power table
//   affectsys_cli serve [sessions] [ticks]          multi-tenant smoke load
//   affectsys_cli fault-replay <bitstream|audio|serve|net> <seed> [rate]
//                                                   replay one fuzz plan twice,
//                                                   verify bit-identical
//   affectsys_cli simulcast [seed]                  encode the stock layer
//                                                   ladder, per-layer size/PSNR
//   affectsys_cli conference [speakers] [ticks]     run an N-speaker room,
//                                                   print the floor timeline +
//                                                   per-member role/rung table
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <iostream>

#include "adaptive/playback.hpp"
#include "affect/signal_io.hpp"
#include "android/replay.hpp"
#include "core/emotional_policy.hpp"
#include "core/manager_experiment.hpp"
#include "fault/scenario.hpp"
#include "h264/decoder.hpp"
#include "h264/quality.hpp"
#include "serve/server.hpp"
#include "simulcast/encoder.hpp"

using namespace affectsys;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: affectsys_cli <synth-scl|synth-usage|classify|"
               "playback|manager|modes|serve|fault-replay|simulcast|"
               "conference> [args]\n");
  return 2;
}

int cmd_synth_scl(int argc, char** argv) {
  if (argc < 1) return usage();
  affect::SclConfig cfg;
  if (argc > 1) cfg.seed = static_cast<unsigned>(std::atoi(argv[1]));
  affect::SclGenerator gen(cfg);
  const auto trace = gen.generate(affect::uulmmac_session_timeline());
  std::ofstream os(argv[0]);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", argv[0]);
    return 1;
  }
  affect::save_trace_csv(os, trace, cfg.sample_rate_hz);
  std::printf("wrote %zu samples (%.0f min @ %.0f Hz) to %s\n", trace.size(),
              affect::uulmmac_session_timeline().duration_s() / 60.0,
              cfg.sample_rate_hz, argv[0]);
  return 0;
}

int cmd_synth_usage(int argc, char** argv) {
  if (argc < 1) return usage();
  core::ManagerExperimentConfig cfg;
  if (argc > 1) cfg.monkey.seed = static_cast<unsigned>(std::atoi(argv[1]));
  const auto catalog = android::build_catalog(cfg.emulator, cfg.catalog_seed);
  android::MonkeyScript monkey(catalog, cfg.monkey);
  const auto events = monkey.generate(cfg.timeline);
  std::ofstream os(argv[0]);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", argv[0]);
    return 1;
  }
  android::save_usage_events(os, events);
  std::printf("wrote %zu launches (%.0f min session) to %s\n", events.size(),
              cfg.timeline.duration_s() / 60.0, argv[0]);
  return 0;
}

std::vector<double> read_trace(const char* path, double* rate) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error(std::string("cannot read ") + path);
  return affect::load_trace_csv(is, rate);
}

int cmd_classify(int argc, char** argv) {
  if (argc < 1) return usage();
  double rate = 4.0;
  const auto trace = read_trace(argv[0], &rate);
  const auto tl = affect::uulmmac_session_timeline();
  affect::SclEmotionEstimator est;
  est.calibrate(trace, rate, tl);
  const auto win = static_cast<std::size_t>(30.0 * rate);
  affect::Emotion prev = affect::Emotion::kNeutral;
  for (std::size_t start = 0; start + win <= trace.size(); start += win) {
    const double t = static_cast<double>(start) / rate;
    const auto e = est.classify({trace.data() + start, win});
    if (e != prev) {
      std::printf("%7.1f min  %s\n", t / 60.0, affect::emotion_name(e).data());
      prev = e;
    }
  }
  return 0;
}

int cmd_playback(int argc, char** argv) {
  if (argc < 1) return usage();
  double rate = 4.0;
  const auto trace = read_trace(argv[0], &rate);
  adaptive::PlaybackConfig cfg;
  adaptive::AdaptiveDecoderSystem sys(cfg);
  affect::SclEmotionEstimator est;
  est.calibrate(trace, rate, affect::uulmmac_session_timeline());
  const auto report = adaptive::simulate_playback_from_scl(
      sys, trace, rate, est, adaptive::AffectVideoPolicy{});
  for (const auto& seg : report.segments) {
    std::printf("%6.1f-%6.1f min  %-13s %-16s %8.2f mJ\n", seg.start_s / 60.0,
                seg.end_s / 60.0, affect::emotion_name(seg.emotion).data(),
                adaptive::mode_name(seg.mode).data(), seg.energy_nj / 1e6);
  }
  std::printf("energy saving vs standard: %.1f%%\n",
              100.0 * report.energy_saving());
  return 0;
}

int cmd_manager(int argc, char** argv) {
  if (argc < 1) return usage();
  std::ifstream is(argv[0]);
  if (!is) {
    std::fprintf(stderr, "cannot read %s\n", argv[0]);
    return 1;
  }
  const auto events = android::load_usage_events(is);
  const std::string baseline = argc > 1 ? argv[1] : "fifo";

  const android::EmulatorSpec spec;
  const auto catalog = android::build_catalog(spec);
  android::ProcessManagerConfig pm_cfg;
  pm_cfg.process_limit = static_cast<std::size_t>(spec.process_limit);
  pm_cfg.ram_bytes = spec.ram_bytes;

  auto base_policy = core::make_baseline_policy(baseline);
  android::ProcessManager pm_base(catalog, pm_cfg, *base_policy);
  for (const auto& ev : events) pm_base.launch(ev.app, ev.time_s);

  core::AppAffectTable table;
  std::set<affect::Emotion> seen;
  for (const auto& ev : events) {
    if (seen.insert(ev.emotion).second) {
      table.learn_from_profile(ev.emotion,
                               android::profile_for_emotion(ev.emotion),
                               catalog);
    }
  }
  core::EmotionalKillPolicy emotional(table);
  android::ProcessManager pm_emo(catalog, pm_cfg, emotional);
  for (const auto& ev : events) {
    emotional.set_emotion(ev.emotion);
    pm_emo.launch(ev.app, ev.time_s);
  }

  const auto& b = pm_base.metrics();
  const auto& p = pm_emo.metrics();
  std::printf("replayed %zu launches\n", events.size());
  std::printf("%-24s %14s %14s\n", "", baseline.c_str(), "emotional");
  std::printf("%-24s %14.2f %14.2f\n", "memory loaded (GB)",
              static_cast<double>(b.memory_loaded_bytes) / 1e9,
              static_cast<double>(p.memory_loaded_bytes) / 1e9);
  std::printf("%-24s %14.1f %14.1f\n", "loading time (s)", b.loading_time_s,
              p.loading_time_s);
  std::printf("%-24s %14llu %14llu\n", "cold starts",
              static_cast<unsigned long long>(b.cold_starts),
              static_cast<unsigned long long>(p.cold_starts));
  return 0;
}

int cmd_modes() {
  adaptive::PlaybackConfig cfg;
  adaptive::AdaptiveDecoderSystem sys(cfg);
  std::printf("%-16s %12s %10s\n", "mode", "norm.power", "PSNR(dB)");
  for (auto m :
       {adaptive::DecoderMode::kStandard, adaptive::DecoderMode::kDeletion,
        adaptive::DecoderMode::kDeblockOff,
        adaptive::DecoderMode::kCombined}) {
    const auto& p = sys.profile(m);
    std::printf("%-16s %12.3f %10.2f\n", adaptive::mode_name(m).data(),
                p.norm_power, p.psnr_db);
  }
  return 0;
}

// Multi-tenant smoke load: N sessions through the session server for a
// fixed number of ticks, then a per-session summary table.  The quick
// way to watch the serving layer (batching, backlog, shedding ladder)
// without building the bench.
int cmd_serve(int argc, char** argv) {
  const std::size_t n =
      argc > 0 ? static_cast<std::size_t>(std::atoi(argv[0])) : 4;
  const int ticks = argc > 1 ? std::atoi(argv[1]) : 200;
  if (n == 0 || ticks <= 0) return usage();

  std::printf("training classifier + synthesizing shared workload...\n");
  serve::SharedWorkload workload{serve::WorkloadConfig{}};
  affect::CorpusProfile prof;
  prof.name = "cli";
  prof.num_speakers = 4;
  prof.emotions = {affect::Emotion::kAngry, affect::Emotion::kCalm};
  prof.utterances_per_speaker_emotion = 6;
  prof.utterance_seconds = 1.0;
  prof.speaker_spread = 0.1;
  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 8;
  tc.learning_rate = 2e-3f;
  auto classifier = affect::train_affect_classifier(nn::ModelKind::kMlp, prof, tc);
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  core::AppAffectTable table;
  for (const auto e : {affect::Emotion::kAngry, affect::Emotion::kCalm}) {
    table.learn_from_profile(e, android::profile_for_emotion(e), catalog);
  }

  serve::SessionEnv env;
  env.workload = &workload;
  env.classifier = &classifier;
  env.app_table = &table;
  env.catalog = &catalog;
  serve::ServerConfig cfg;
  cfg.max_sessions = n;
  serve::SessionManager server(cfg, env);
  std::vector<serve::SessionId> ids;
  for (std::size_t i = 0; i < n; ++i) ids.push_back(server.create_session());
  for (int t = 0; t < ticks; ++t) server.tick();
  server.drain();

  std::printf("%zu sessions x %d ticks (%.1f s media each)\n", n, ticks,
              ticks * cfg.session.tick_s);
  std::printf("%4s %8s %8s %8s %8s %8s %8s  %s\n", "id", "windows", "shed",
              "frames", "dropped", "nals-del", "apps", "mode");
  for (const auto id : ids) {
    const auto rep = server.report(id);
    std::printf("%4llu %8llu %8llu %8llu %8llu %8llu %8llu  %s\n",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(rep.stats.results_applied),
                static_cast<unsigned long long>(rep.realtime.windows_dropped),
                static_cast<unsigned long long>(rep.stats.frames_decoded),
                static_cast<unsigned long long>(rep.stats.frames_dropped),
                static_cast<unsigned long long>(rep.stats.nals_deleted),
                static_cast<unsigned long long>(rep.stats.app_launches),
                adaptive::mode_name(server.session(id).policy_mode()).data());
  }
  const auto& bs = server.batcher_stats();
  std::printf("batcher: %llu windows in %llu flushes (%llu batched, "
              "largest batch %zu)\n",
              static_cast<unsigned long long>(bs.windows),
              static_cast<unsigned long long>(bs.flushes),
              static_cast<unsigned long long>(bs.batched_windows),
              bs.max_batch_rows);
  std::printf("degrade level %d (max %d, %llu degraded ticks)\n",
              server.degrade_level(), server.stats().max_degrade_level,
              static_cast<unsigned long long>(server.stats().degrade_ticks));
  return 0;
}

/// Reruns one seeded fuzz plan from the fault suites (the exact run a
/// failing test's SCOPED_TRACE names) and checks replay identity: the
/// scenario executes twice and every digest must match bit for bit.
/// Exit 0 = identical, 1 = replay divergence (a determinism bug).
int cmd_fault_replay(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* suite = argv[0];
  fault::ScenarioConfig cfg;
  cfg.seed = std::strtoull(argv[1], nullptr, 0);
  cfg.rate = argc > 2 ? std::atof(argv[2]) : 0.1;
  if (cfg.rate < 0.0 || cfg.rate > 1.0) return usage();
  std::printf("fault-replay %s seed=%llu rate=%g\n", suite,
              static_cast<unsigned long long>(cfg.seed), cfg.rate);

  bool identical = false;
  if (!std::strcmp(suite, "bitstream")) {
    const auto a = fault::run_bitstream_scenario(cfg);
    const auto b = fault::run_bitstream_scenario(cfg);
    std::printf("  stream digest %016llx  pixel digest %016llx\n",
                static_cast<unsigned long long>(a.stream_digest),
                static_cast<unsigned long long>(a.pixel_digest));
    std::printf("  pictures %llu  faults %llu  nal errors %llu  resyncs "
                "%llu\n",
                static_cast<unsigned long long>(a.pictures),
                static_cast<unsigned long long>(a.faults),
                static_cast<unsigned long long>(a.nal_errors),
                static_cast<unsigned long long>(a.resyncs));
    identical = a == b;
  } else if (!std::strcmp(suite, "audio")) {
    const auto a = fault::run_audio_scenario(cfg);
    const auto b = fault::run_audio_scenario(cfg);
    std::printf("  label digest %016llx\n",
                static_cast<unsigned long long>(a.label_digest));
    std::printf("  windows %llu  faults %llu  chunks dropped %llu  gap "
                "resyncs %llu  stable changes %llu\n",
                static_cast<unsigned long long>(a.windows_classified),
                static_cast<unsigned long long>(a.faults),
                static_cast<unsigned long long>(a.chunks_dropped),
                static_cast<unsigned long long>(a.gap_resyncs),
                static_cast<unsigned long long>(a.stable_changes));
    identical = a == b;
  } else if (!std::strcmp(suite, "serve")) {
    const auto a = fault::run_serve_scenario(cfg);
    const auto b = fault::run_serve_scenario(cfg);
    for (std::size_t i = 0; i < a.decode_digests.size(); ++i) {
      std::printf("  session %zu: decode %016llx  windows %016llx  faults "
                  "%llu\n",
                  i, static_cast<unsigned long long>(a.decode_digests[i]),
                  static_cast<unsigned long long>(a.window_digests[i]),
                  static_cast<unsigned long long>(a.session_faults[i]));
    }
    std::printf("  routed %llu  quarantined %llu  restarted %llu\n",
                static_cast<unsigned long long>(a.results_routed),
                static_cast<unsigned long long>(a.sessions_quarantined),
                static_cast<unsigned long long>(a.sessions_restarted));
    identical = a == b;
  } else if (!std::strcmp(suite, "net")) {
    const auto a = fault::run_net_scenario(cfg);
    const auto b = fault::run_net_scenario(cfg);
    std::printf("  pixel digest %016llx\n",
                static_cast<unsigned long long>(a.pixel_digest));
    std::printf("  pictures %llu  sent %llu  dropped %llu  recovered %llu  "
                "nal losses %llu  resyncs %llu  faults %llu\n",
                static_cast<unsigned long long>(a.pictures),
                static_cast<unsigned long long>(a.packets_sent),
                static_cast<unsigned long long>(a.packets_dropped),
                static_cast<unsigned long long>(a.packets_recovered),
                static_cast<unsigned long long>(a.loss_signals),
                static_cast<unsigned long long>(a.resyncs),
                static_cast<unsigned long long>(a.faults));
    identical = a == b;
  } else {
    return usage();
  }

  std::printf("replay identity: %s\n", identical ? "PASS" : "FAIL");
  return identical ? 0 : 1;
}

/// Encodes the stock 3-layer simulcast ladder (optionally reseeding the
/// scene) and prints a per-layer table: resolution, achieved bitrate,
/// stream size, mean P/B slice size, and decoded luma PSNR against a
/// box-filtered downscale of the shared scene — the at-a-glance view of
/// what each rung of the switch policy's ladder costs and delivers.
int cmd_simulcast(int argc, char** argv) {
  simulcast::SimulcastConfig cfg = simulcast::default_simulcast_config();
  if (argc > 0) cfg.scene.seed = static_cast<unsigned>(std::atoi(argv[0]));
  std::printf("encoding %zu layers (%dx%d scene, %d frames, gop %d, "
              "seed %u)...\n",
              cfg.layers.size(), cfg.scene.width, cfg.scene.height,
              cfg.scene.frames, cfg.gop_frames, cfg.scene.seed);
  const simulcast::SimulcastClip clip = simulcast::encode_simulcast(cfg);
  const std::vector<h264::YuvFrame> scene =
      h264::generate_mixed_video(cfg.scene, cfg.quiet_fraction);

  std::printf("%5s %9s %10s %9s %10s %9s\n", "layer", "res", "kbps",
              "bytes", "mean P/B", "PSNR-Y");
  for (std::size_t l = 0; l < clip.layer_count(); ++l) {
    const simulcast::LayerStream& s = clip.layer(l);
    std::vector<h264::YuvFrame> refs;
    refs.reserve(scene.size());
    for (const h264::YuvFrame& f : scene) {
      refs.push_back(simulcast::downscale_frame(f, s.scale));
    }
    // Decode GOP segment by GOP segment (each opens on an aligned IDR
    // and restarts picture order), reassembling display order per
    // segment.
    h264::Decoder dec;
    for (const h264::NalUnit& p : s.params) dec.decode_nal(p);
    std::vector<h264::YuvFrame> shown;
    std::vector<h264::DecodedPicture> seg;
    for (std::size_t pic = 0; pic < clip.pictures(); ++pic) {
      if (auto out = dec.decode_nal(s.slices[pic])) {
        seg.push_back(std::move(*out));
      }
      if (pic + 1 == clip.pictures() || clip.idr_at(pic + 1)) {
        const int expected = static_cast<int>(seg.size());
        for (auto& d :
             h264::assemble_display_sequence(std::move(seg), expected)) {
          shown.push_back(std::move(d.frame));
        }
        seg.clear();
      }
    }
    if (shown.size() != refs.size()) {
      std::fprintf(stderr, "layer %zu decoded %zu of %zu pictures\n", l,
                   shown.size(), refs.size());
      return 1;
    }
    std::printf("%5zu %4dx%-4d %10.1f %9llu %10.1f %8.2f\n", l, s.width,
                s.height, s.achieved_bps / 1000.0,
                static_cast<unsigned long long>(s.bytes), s.mean_pb_bytes,
                h264::sequence_psnr(refs, shown));
  }
  std::printf("aligned IDRs every %d pictures = the legal switch points\n",
              cfg.gop_frames);
  return 0;
}

/// Runs an N-speaker conference room (simulcast + transport on every
/// member) and prints the dominant-speaker timeline plus a per-member
/// role/rung/wire table — the at-a-glance view of what active-speaker
/// multiplexing does to the ladder.
int cmd_conference(int argc, char** argv) {
  const std::size_t n =
      argc > 0 ? static_cast<std::size_t>(std::atoi(argv[0])) : 8;
  const int ticks = argc > 1 ? std::atoi(argv[1]) : 200;
  if (n == 0 || ticks <= 0) return usage();

  std::printf("building simulcast workload + scenario fixtures...\n");
  serve::SharedWorkload workload([] {
    serve::WorkloadConfig wc;
    wc.simulcast = simulcast::default_simulcast_config();
    return wc;
  }());
  serve::SessionEnv env = fault::scenario_env();
  env.workload = &workload;

  serve::ServerConfig cfg;
  cfg.max_sessions = n;
  cfg.backlog_hi = 1000;  // isolate role-driven switching from the
  cfg.backlog_lo = 500;   // backlog degrade ladder
  serve::SessionManager server(cfg, env);
  const conf::RoomId room = server.create_room();
  std::vector<serve::SessionId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    serve::SessionConfig sc;
    sc.seed = 101 + static_cast<unsigned>(i);
    sc.simulcast.enabled = true;
    sc.transport = fault::net_scenario_transport(true);
    sc.transport.layers = 3;
    ids.push_back(server.create_session(sc, room));
  }
  for (int t = 0; t < ticks; ++t) server.tick();
  server.drain();

  const conf::RoomReport rr = server.room_report(room);
  std::printf("%zu speakers x %d ticks: %llu dominance moves, "
              "%llu silent ticks\n",
              n, ticks,
              static_cast<unsigned long long>(rr.speaker_switches),
              static_cast<unsigned long long>(rr.silent_ticks));
  std::printf("floor timeline:");
  for (const conf::SpeakerTraceEntry& e : rr.speaker_trace) {
    std::printf(" @%llu->s%llu", static_cast<unsigned long long>(e.tick),
                static_cast<unsigned long long>(e.speaker));
  }
  std::printf("\n");

  const auto role_name = [](simulcast::SpeakerRole r) {
    switch (r) {
      case simulcast::SpeakerRole::kDominant: return "dominant";
      case simulcast::SpeakerRole::kRecent: return "recent";
      default: return "idle";
    }
  };
  std::printf("%4s %9s %8s %8s %8s %10s %8s\n", "id", "role", "L0 pics",
              "L1 pics", "L2 pics", "wire B", "switches");
  std::uint64_t total_bytes = 0;
  for (const auto id : ids) {
    const auto rep = server.report(id);
    std::uint64_t bytes = 0;
    for (const std::uint64_t b : rep.stats.layer_bytes) bytes += b;
    total_bytes += bytes;
    std::printf("%4llu %9s %8llu %8llu %8llu %10llu %8llu\n",
                static_cast<unsigned long long>(id),
                role_name(server.room(room).role(id)),
                static_cast<unsigned long long>(rep.stats.layer_pictures[0]),
                static_cast<unsigned long long>(rep.stats.layer_pictures[1]),
                static_cast<unsigned long long>(rep.stats.layer_pictures[2]),
                static_cast<unsigned long long>(bytes),
                static_cast<unsigned long long>(rep.stats.layer_switches));
  }
  std::printf("total wire bytes: %llu (bench_conference compares this "
              "against the all-speakers-top-layer wire)\n",
              static_cast<unsigned long long>(total_bytes));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* cmd = argv[1];
  try {
    if (!std::strcmp(cmd, "synth-scl")) return cmd_synth_scl(argc - 2, argv + 2);
    if (!std::strcmp(cmd, "synth-usage")) {
      return cmd_synth_usage(argc - 2, argv + 2);
    }
    if (!std::strcmp(cmd, "classify")) return cmd_classify(argc - 2, argv + 2);
    if (!std::strcmp(cmd, "playback")) return cmd_playback(argc - 2, argv + 2);
    if (!std::strcmp(cmd, "manager")) return cmd_manager(argc - 2, argv + 2);
    if (!std::strcmp(cmd, "modes")) return cmd_modes();
    if (!std::strcmp(cmd, "serve")) return cmd_serve(argc - 2, argv + 2);
    if (!std::strcmp(cmd, "fault-replay")) {
      return cmd_fault_replay(argc - 2, argv + 2);
    }
    if (!std::strcmp(cmd, "simulcast")) {
      return cmd_simulcast(argc - 2, argv + 2);
    }
    if (!std::strcmp(cmd, "conference")) {
      return cmd_conference(argc - 2, argv + 2);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
