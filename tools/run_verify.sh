#!/usr/bin/env bash
# Tier-1 verification under both the default build and the ASan+UBSan
# build (-DAFFECTSYS_SANITIZE=ON).  Run from the repo root:
#
#   tools/run_verify.sh            # both passes
#   tools/run_verify.sh default    # default build only
#   tools/run_verify.sh sanitize   # sanitizer build only
#
# Build trees: build/ (default) and build-asan/ (sanitized).  Tests carry
# the ctest label "tier1"; the sanitized configuration additionally
# labels them "sanitize".
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
mode="${1:-all}"

run_pass() {
  local dir="$1"; shift
  local label="$1"; shift
  echo "=== [$label] configure + build ($dir) ==="
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  echo "=== [$label] ctest ==="
  (cd "$dir" && ctest --output-on-failure -j "$jobs" -L tier1)
}

case "$mode" in
  default)  run_pass build default ;;
  sanitize) run_pass build-asan sanitize -DAFFECTSYS_SANITIZE=ON ;;
  all)
    run_pass build default
    run_pass build-asan sanitize -DAFFECTSYS_SANITIZE=ON
    ;;
  *) echo "usage: $0 [default|sanitize|all]" >&2; exit 2 ;;
esac

echo "verification passed ($mode)"
