#!/usr/bin/env bash
# Tier-1 verification across the build matrix.  Run from the repo root:
#
#   tools/run_verify.sh            # every pass below
#   tools/run_verify.sh default    # stock build (threads ON) only
#   tools/run_verify.sh nothreads  # serial reference (-DAFFECTSYS_THREADS=OFF)
#   tools/run_verify.sh sanitize   # ASan+UBSan build
#   tools/run_verify.sh tsan       # TSan build, race-sensitive tests only
#   tools/run_verify.sh kernels    # Release build: kernel suite + bench
#   tools/run_verify.sh serve      # session-server suite under TSan (shard
#                                  # sweep) and Release (+ bench_serve gates)
#   tools/run_verify.sh fault      # fuzz suite under ASan+UBSan, TSan and
#                                  # Release (+ bench_fault overhead gate)
#   tools/run_verify.sh net        # media-transport suite under ASan+UBSan
#                                  # and Release (+ bench_net tick-overhead gate)
#   tools/run_verify.sh inference  # quantize/int8 + ladder suites, then
#                                  # bench_inference Pareto gates (Release)
#   tools/run_verify.sh simulcast  # simulcast suite under ASan+UBSan and
#                                  # Release (+ bench_simulcast gates)
#   tools/run_verify.sh conference # conference suite under ASan+UBSan and
#                                  # TSan (the room stage rides the pool),
#                                  # then Release (+ bench_conference gates)
#
# Build trees: build/ (default), build-nothreads/, build-asan/,
# build-tsan/ and build-release/ (kernels).  Tests carry the ctest label "tier1"; the sanitized
# configuration additionally labels them "sanitize", and the
# concurrency-sensitive suites (thread pool, parallel determinism,
# async realtime pipeline) carry "tsan", which is all the TSan pass
# runs — serial suites cannot race and TSan slows them ~10x for
# nothing.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
mode="${1:-all}"

run_pass() {
  local dir="$1"; shift
  local label="$1"; shift
  local ctest_label="$1"; shift
  echo "=== [$label] configure + build ($dir) ==="
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  echo "=== [$label] ctest -L $ctest_label ==="
  (cd "$dir" && ctest --output-on-failure -j "$jobs" -L "$ctest_label")
}

pass_default()   { run_pass build default tier1; }
pass_nothreads() { run_pass build-nothreads nothreads tier1 -DAFFECTSYS_THREADS=OFF; }
pass_sanitize()  { run_pass build-asan sanitize tier1 -DAFFECTSYS_SANITIZE=ON; }
# The parallel suites force worker threads via set_global_threads(), so
# TSan sees real cross-thread traffic even on a single-core host.
pass_tsan()      { run_pass build-tsan tsan tsan -DAFFECTSYS_SANITIZE=thread; }

# Kernel pass: Release build (benchmarks must not time RelWithDebInfo
# artifacts), the optimized-vs-reference proof suite (label "kernels"),
# then bench_kernels regenerating BENCH_kernels.json.  If a committed
# BENCH_kernels.json exists, the feature-pipeline throughput is
# soft-checked: a fresh windows_per_sec more than 10% below the
# committed number fails the pass (the other kernels are ratio-checked
# implicitly — bench_kernels itself exits nonzero on a byte mismatch).
pass_kernels() {
  run_pass build-release kernels kernels -DCMAKE_BUILD_TYPE=Release
  echo "=== [kernels] bench_kernels ==="
  local fresh="build-release/BENCH_kernels.json"
  ./build-release/bench/bench_kernels "$fresh"
  if [[ -f BENCH_kernels.json ]]; then
    # obs::JsonWriter emits one key per line; the leading quote keeps
    # "windows_per_sec" from matching the ref_windows_per_sec line.
    local committed_wps fresh_wps
    committed_wps=$(grep -o '"windows_per_sec": [0-9.]*' BENCH_kernels.json | head -1 | awk '{print $2}')
    fresh_wps=$(grep -o '"windows_per_sec": [0-9.]*' "$fresh" | head -1 | awk '{print $2}')
    echo "feature windows_per_sec: committed=$committed_wps fresh=$fresh_wps"
    if ! awk -v f="$fresh_wps" -v c="$committed_wps" 'BEGIN { exit !(f >= 0.9 * c) }'; then
      echo "FAIL: feature throughput regressed >10% vs committed BENCH_kernels.json" >&2
      exit 1
    fi
  else
    echo "no committed BENCH_kernels.json; skipping throughput check"
  fi
}

# Serve pass: the session-server suite (label "serve") twice — under
# TSan first, because the sharded scheduler's suite sweeps shards
# {1,2,4} with work-steal on, which is where cross-shard races would
# live (the buffer pool's cross-thread release test rides the same
# label) — then in Release, followed by bench_serve regenerating
# BENCH_serve.json.  The sustained real-time session counts (active and
# mostly-idle fleets) are soft-checked against the committed copy (>10%
# regression fails); bench_serve itself exits nonzero when batched
# inference loses to per-session forwards at 8 rows, batched/unbatched
# stop being bit-identical, the sharded+cached configuration drops
# below 1.5x the global-tick baseline at 32 active sessions, or warm
# pooled ticks touch the allocator — so those gates need no shell
# logic.
pass_serve() {
  run_pass build-tsan serve-tsan serve -DAFFECTSYS_SANITIZE=thread
  run_pass build-release serve serve -DCMAKE_BUILD_TYPE=Release
  echo "=== [serve] bench_serve ==="
  local fresh="build-release/BENCH_serve.json"
  ./build-release/bench/bench_serve "$fresh"
  if [[ -f BENCH_serve.json ]]; then
    local key committed_n fresh_n
    for key in sustained_sessions sustained_idle_sessions; do
      committed_n=$(grep -o "\"$key\": [0-9]*" BENCH_serve.json | awk '{print $2}')
      fresh_n=$(grep -o "\"$key\": [0-9]*" "$fresh" | awk '{print $2}')
      echo "$key: committed=${committed_n:-none} fresh=$fresh_n"
      if [[ -z "$committed_n" ]]; then continue; fi
      if ! awk -v f="$fresh_n" -v c="$committed_n" 'BEGIN { exit !(f >= 0.9 * c) }'; then
        echo "FAIL: $key regressed >10% vs committed BENCH_serve.json" >&2
        exit 1
      fi
    done
  else
    echo "no committed BENCH_serve.json; skipping sustained-sessions check"
  fi
}

# Fault pass: the seeded structured-fuzz suite (label "fault", 504
# plans) run where each class of bug is visible — ASan+UBSan for memory
# errors on the fault paths, TSan for races between faulted/quarantined
# sessions, Release for the full plan sweep at speed — then bench_fault,
# which hard-fails on rate-0 identity loss, replay divergence, or >2%
# clean-path overhead.  The committed BENCH_fault.json is soft-checked:
# faulted-decode throughput must stay within 10%.
pass_fault() {
  run_pass build-asan fault-asan fault -DAFFECTSYS_SANITIZE=ON
  run_pass build-tsan fault-tsan fault -DAFFECTSYS_SANITIZE=thread
  run_pass build-release fault-release fault -DCMAKE_BUILD_TYPE=Release
  echo "=== [fault] bench_fault ==="
  local fresh="build-release/BENCH_fault.json"
  ./build-release/bench/bench_fault "$fresh"
  if [[ -f BENCH_fault.json ]]; then
    local committed_mbs fresh_mbs
    committed_mbs=$(grep -o '"mb_per_sec": [0-9.]*' BENCH_fault.json | head -1 | awk '{print $2}')
    fresh_mbs=$(grep -o '"mb_per_sec": [0-9.]*' "$fresh" | head -1 | awk '{print $2}')
    echo "faulted mb_per_sec: committed=$committed_mbs fresh=$fresh_mbs"
    if ! awk -v f="$fresh_mbs" -v c="$committed_mbs" 'BEGIN { exit !(f >= 0.9 * c) }'; then
      echo "FAIL: faulted-decode throughput regressed >10% vs committed BENCH_fault.json" >&2
      exit 1
    fi
  else
    echo "no committed BENCH_fault.json; skipping throughput check"
  fi
}

# Net pass: the media-transport suite (label "net": packetizer, jitter
# buffer, FEC, channel faults and the seeded loss/FEC end-to-end sweep)
# under ASan+UBSan for the loss/resync paths and Release for the full
# sweep at speed, then bench_net, which hard-fails on 0-loss digest
# divergence, replay divergence, or >5% serve-tick transport overhead.
# The committed BENCH_net.json is soft-checked: packetize throughput
# must stay within 10%.
pass_net() {
  run_pass build-asan net-asan net -DAFFECTSYS_SANITIZE=ON
  run_pass build-release net-release net -DCMAKE_BUILD_TYPE=Release
  echo "=== [net] bench_net ==="
  local fresh="build-release/BENCH_net.json"
  ./build-release/bench/bench_net "$fresh"
  if [[ -f BENCH_net.json ]]; then
    local committed_mbs fresh_mbs
    committed_mbs=$(grep -o '"packetize_mb_per_sec": [0-9.]*' BENCH_net.json | awk '{print $2}')
    fresh_mbs=$(grep -o '"packetize_mb_per_sec": [0-9.]*' "$fresh" | awk '{print $2}')
    echo "packetize_mb_per_sec: committed=$committed_mbs fresh=$fresh_mbs"
    if ! awk -v f="$fresh_mbs" -v c="$committed_mbs" 'BEGIN { exit !(f >= 0.9 * c) }'; then
      echo "FAIL: packetize throughput regressed >10% vs committed BENCH_net.json" >&2
      exit 1
    fi
  else
    echo "no committed BENCH_net.json; skipping throughput check"
  fi
}

# Inference pass: the nn quantization/int8 suite plus the ladder suite
# (labels "tier1"-subset via test_nn and "inference") in Release, then
# bench_inference regenerating BENCH_inference.json.  bench_inference
# itself hard-fails when the int8 rung is < 1.5x or the HDC rung < 3x
# fp32 windows/sec, or when the ladder-on fleet sustains fewer sessions
# (or sheds more) than ladder-off — so the shell only soft-checks the
# committed Pareto: HDC rung throughput within 10%.
pass_inference() {
  run_pass build-release inference-ladder inference -DCMAKE_BUILD_TYPE=Release
  echo "=== [inference] test_nn (quantize + int8 GEMM suite) ==="
  (cd build-release &&
   ./tests/test_nn --gtest_filter='Quantize*:QuantizeRows*:Int8Gemm*:QuantizedMlp*:TruncateMantissa*')
  echo "=== [inference] bench_inference ==="
  local fresh="build-release/BENCH_inference.json"
  ./build-release/bench/bench_inference "$fresh"
  if [[ -f BENCH_inference.json ]]; then
    local committed_wps fresh_wps
    # Third windows_per_sec entry in the rungs block is the HDC rung
    # (fp32, int8, hdc in emission order).
    committed_wps=$(grep -o '"windows_per_sec": [0-9.]*' BENCH_inference.json | sed -n 3p | awk '{print $2}')
    fresh_wps=$(grep -o '"windows_per_sec": [0-9.]*' "$fresh" | sed -n 3p | awk '{print $2}')
    echo "hdc windows_per_sec: committed=$committed_wps fresh=$fresh_wps"
    if ! awk -v f="$fresh_wps" -v c="$committed_wps" 'BEGIN { exit !(f >= 0.9 * c) }'; then
      echo "FAIL: HDC rung throughput regressed >10% vs committed BENCH_inference.json" >&2
      exit 1
    fi
  else
    echo "no committed BENCH_inference.json; skipping throughput check"
  fi
}

# Simulcast pass: the simulcast suite (label "simulcast": aligned-layer
# encoding, switch-only-at-IDR selector, policy table, serve
# replay/compat pins) under ASan+UBSan for the multi-lane transport
# paths and Release at speed, then bench_simulcast, which hard-fails on
# replay divergence, switch latency >= 1 GOP, or a wire-byte reduction
# below 20% vs deletion-only shedding.  The committed
# BENCH_simulcast.json is soft-checked: the wire reduction must stay
# within 10% of the committed figure.
pass_simulcast() {
  run_pass build-asan simulcast-asan simulcast -DAFFECTSYS_SANITIZE=ON
  run_pass build-release simulcast-release simulcast -DCMAKE_BUILD_TYPE=Release
  echo "=== [simulcast] bench_simulcast ==="
  local fresh="build-release/BENCH_simulcast.json"
  ./build-release/bench/bench_simulcast "$fresh"
  if [[ -f BENCH_simulcast.json ]]; then
    local committed_red fresh_red
    committed_red=$(grep -o '"wire_reduction_pct": [0-9.]*' BENCH_simulcast.json | awk '{print $2}')
    fresh_red=$(grep -o '"wire_reduction_pct": [0-9.]*' "$fresh" | awk '{print $2}')
    echo "wire_reduction_pct: committed=$committed_red fresh=$fresh_red"
    if ! awk -v f="$fresh_red" -v c="$committed_red" 'BEGIN { exit !(f >= 0.9 * c) }'; then
      echo "FAIL: wire reduction regressed >10% vs committed BENCH_simulcast.json" >&2
      exit 1
    fi
  else
    echo "no committed BENCH_simulcast.json; skipping reduction check"
  fi
}

# Conference pass: the conference suite (label "conf": active-speaker
# detector properties, role-row policy table, room replay/compat pins
# through the SessionManager, forced-IDR rate-control edges, and the
# 220-plan policy-table fuzz sweep) under ASan+UBSan for the fuzz
# runner's transport paths and TSan because the room stage runs between
# the parallel audio/media stages, then Release followed by
# bench_conference, which hard-fails on lossy-room replay divergence,
# K=1 divergence from a plain session, speaker-switch latency >= 1 GOP,
# or a wire-byte reduction below 30% vs all-speakers-top-layer.  The
# committed BENCH_conference.json is soft-checked: the wire reduction
# must stay within 10% of the committed figure.
pass_conference() {
  run_pass build-asan conference-asan conf -DAFFECTSYS_SANITIZE=ON
  run_pass build-tsan conference-tsan conf -DAFFECTSYS_SANITIZE=thread
  run_pass build-release conference-release conf -DCMAKE_BUILD_TYPE=Release
  echo "=== [conference] bench_conference ==="
  local fresh="build-release/BENCH_conference.json"
  ./build-release/bench/bench_conference "$fresh"
  if [[ -f BENCH_conference.json ]]; then
    local committed_red fresh_red
    committed_red=$(grep -o '"wire_reduction_pct": [0-9.]*' BENCH_conference.json | awk '{print $2}')
    fresh_red=$(grep -o '"wire_reduction_pct": [0-9.]*' "$fresh" | awk '{print $2}')
    echo "wire_reduction_pct: committed=$committed_red fresh=$fresh_red"
    if ! awk -v f="$fresh_red" -v c="$committed_red" 'BEGIN { exit !(f >= 0.9 * c) }'; then
      echo "FAIL: wire reduction regressed >10% vs committed BENCH_conference.json" >&2
      exit 1
    fi
  else
    echo "no committed BENCH_conference.json; skipping reduction check"
  fi
}

case "$mode" in
  default)   pass_default ;;
  nothreads) pass_nothreads ;;
  sanitize)  pass_sanitize ;;
  tsan)      pass_tsan ;;
  kernels)   pass_kernels ;;
  serve)     pass_serve ;;
  fault)     pass_fault ;;
  net)       pass_net ;;
  inference) pass_inference ;;
  simulcast) pass_simulcast ;;
  conference) pass_conference ;;
  all)
    pass_default
    pass_nothreads
    pass_sanitize
    pass_tsan
    pass_kernels
    pass_serve
    pass_fault
    pass_net
    pass_inference
    pass_simulcast
    pass_conference
    ;;
  *) echo "usage: $0 [default|nothreads|sanitize|tsan|kernels|serve|fault|net|inference|simulcast|conference|all]" >&2; exit 2 ;;
esac

echo "verification passed ($mode)"
