#!/usr/bin/env bash
# Tier-1 verification across the build matrix.  Run from the repo root:
#
#   tools/run_verify.sh            # every pass below
#   tools/run_verify.sh default    # stock build (threads ON) only
#   tools/run_verify.sh nothreads  # serial reference (-DAFFECTSYS_THREADS=OFF)
#   tools/run_verify.sh sanitize   # ASan+UBSan build
#   tools/run_verify.sh tsan       # TSan build, race-sensitive tests only
#
# Build trees: build/ (default), build-nothreads/, build-asan/ and
# build-tsan/.  Tests carry the ctest label "tier1"; the sanitized
# configuration additionally labels them "sanitize", and the
# concurrency-sensitive suites (thread pool, parallel determinism,
# async realtime pipeline) carry "tsan", which is all the TSan pass
# runs — serial suites cannot race and TSan slows them ~10x for
# nothing.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
mode="${1:-all}"

run_pass() {
  local dir="$1"; shift
  local label="$1"; shift
  local ctest_label="$1"; shift
  echo "=== [$label] configure + build ($dir) ==="
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  echo "=== [$label] ctest -L $ctest_label ==="
  (cd "$dir" && ctest --output-on-failure -j "$jobs" -L "$ctest_label")
}

pass_default()   { run_pass build default tier1; }
pass_nothreads() { run_pass build-nothreads nothreads tier1 -DAFFECTSYS_THREADS=OFF; }
pass_sanitize()  { run_pass build-asan sanitize tier1 -DAFFECTSYS_SANITIZE=ON; }
# The parallel suites force worker threads via set_global_threads(), so
# TSan sees real cross-thread traffic even on a single-core host.
pass_tsan()      { run_pass build-tsan tsan tsan -DAFFECTSYS_SANITIZE=thread; }

case "$mode" in
  default)   pass_default ;;
  nothreads) pass_nothreads ;;
  sanitize)  pass_sanitize ;;
  tsan)      pass_tsan ;;
  all)
    pass_default
    pass_nothreads
    pass_sanitize
    pass_tsan
    ;;
  *) echo "usage: $0 [default|nothreads|sanitize|tsan|all]" >&2; exit 2 ;;
esac

echo "verification passed ($mode)"
