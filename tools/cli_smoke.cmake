# CLI smoke test: every subcommand must succeed on artifacts it produced.
function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}")
  endif()
endfunction()

run(${CLI} synth-scl ${WORKDIR}/scl.csv 5)
run(${CLI} synth-usage ${WORKDIR}/usage.csv 5)
run(${CLI} classify ${WORKDIR}/scl.csv)
run(${CLI} manager ${WORKDIR}/usage.csv fifo)
run(${CLI} manager ${WORKDIR}/usage.csv lru)
