// First-order optimizers operating on Layer parameter sets.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/layer.hpp"

namespace affectsys::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update using each param's accumulated gradient, then
  /// zeroes the gradients.
  virtual void step(const std::vector<Param*>& params) = 0;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f)
      : lr_(lr), momentum_(momentum) {}

  void step(const std::vector<Param*>& params) override;

 private:
  float lr_;
  float momentum_;
  std::unordered_map<Param*, Matrix> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void step(const std::vector<Param*>& params) override;

 private:
  struct State {
    Matrix m;
    Matrix v;
  };
  float lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::unordered_map<Param*, State> state_;
};

/// Global-norm gradient clipping; returns the pre-clip norm.
float clip_gradients(const std::vector<Param*>& params, float max_norm);

}  // namespace affectsys::nn
