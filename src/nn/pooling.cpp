#include "nn/pooling.hpp"

#include <stdexcept>

namespace affectsys::nn {

MaxPool1D::MaxPool1D(std::size_t pool) : pool_(pool) {
  if (pool == 0) throw std::invalid_argument("MaxPool1D: pool must be > 0");
}

Matrix MaxPool1D::forward(const Matrix& x) {
  input_ = x;
  const std::size_t T = x.rows();
  const std::size_t out_t = (T + pool_ - 1) / pool_;
  Matrix out(out_t, x.cols());
  argmax_.assign(out_t * x.cols(), 0);
  for (std::size_t ot = 0; ot < out_t; ++ot) {
    const std::size_t begin = ot * pool_;
    const std::size_t end = std::min(begin + pool_, T);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      std::size_t best = begin;
      for (std::size_t t = begin + 1; t < end; ++t) {
        if (x(t, c) > x(best, c)) best = t;
      }
      out(ot, c) = x(best, c);
      argmax_[ot * x.cols() + c] = best;
    }
  }
  return out;
}

Matrix MaxPool1D::backward(const Matrix& grad_out) {
  Matrix grad_in(input_.rows(), input_.cols());
  for (std::size_t ot = 0; ot < grad_out.rows(); ++ot) {
    for (std::size_t c = 0; c < grad_out.cols(); ++c) {
      grad_in(argmax_[ot * grad_out.cols() + c], c) += grad_out(ot, c);
    }
  }
  return grad_in;
}

Matrix MeanOverTime::forward(const Matrix& x) {
  in_rows_ = x.rows();
  Matrix out(1, x.cols());
  for (std::size_t t = 0; t < x.rows(); ++t) {
    for (std::size_t c = 0; c < x.cols(); ++c) out(0, c) += x(t, c);
  }
  if (in_rows_ > 0) out *= 1.0f / static_cast<float>(in_rows_);
  return out;
}

Matrix MeanOverTime::backward(const Matrix& grad_out) {
  Matrix grad_in(in_rows_, grad_out.cols());
  const float scale = in_rows_ ? 1.0f / static_cast<float>(in_rows_) : 0.0f;
  for (std::size_t t = 0; t < in_rows_; ++t) {
    for (std::size_t c = 0; c < grad_out.cols(); ++c) {
      grad_in(t, c) = grad_out(0, c) * scale;
    }
  }
  return grad_in;
}

Matrix LastTimestep::forward(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("LastTimestep: empty input");
  in_rows_ = x.rows();
  Matrix out(1, x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) out(0, c) = x(x.rows() - 1, c);
  return out;
}

Matrix LastTimestep::backward(const Matrix& grad_out) {
  Matrix grad_in(in_rows_, grad_out.cols());
  for (std::size_t c = 0; c < grad_out.cols(); ++c) {
    grad_in(in_rows_ - 1, c) = grad_out(0, c);
  }
  return grad_in;
}

Matrix Flatten::forward(const Matrix& x) {
  in_rows_ = x.rows();
  in_cols_ = x.cols();
  Matrix out(1, x.size());
  auto flat = out.flat();
  auto src = x.flat();
  for (std::size_t i = 0; i < src.size(); ++i) flat[i] = src[i];
  return out;
}

Matrix Flatten::backward(const Matrix& grad_out) {
  Matrix grad_in(in_rows_, in_cols_);
  auto dst = grad_in.flat();
  auto src = grad_out.flat();
  if (src.size() != dst.size()) {
    throw std::invalid_argument("Flatten::backward: size mismatch");
  }
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
  return grad_in;
}

}  // namespace affectsys::nn
