// Temporal pooling layers bridging sequence outputs to classifier heads.
#pragma once

#include "nn/layer.hpp"

namespace affectsys::nn {

/// Max-pool over non-overlapping windows of `pool` timesteps.
/// (T, C) -> (ceil(T/pool), C).
class MaxPool1D : public Layer {
 public:
  explicit MaxPool1D(std::size_t pool);

  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::string kind() const override { return "maxpool1d"; }

  std::size_t pool() const { return pool_; }

 private:
  std::size_t pool_;
  Matrix input_;
  std::vector<std::size_t> argmax_;  ///< winning input row per (out_t, c)
};

/// Mean over the time axis: (T, C) -> (1, C).
class MeanOverTime : public Layer {
 public:
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::string kind() const override { return "mean_over_time"; }

 private:
  std::size_t in_rows_ = 0;
};

/// Keeps only the final timestep: (T, C) -> (1, C).  Standard head for the
/// LSTM classifier.
class LastTimestep : public Layer {
 public:
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::string kind() const override { return "last_timestep"; }

 private:
  std::size_t in_rows_ = 0;
};

/// Flattens (T, C) to (1, T*C).  Requires a fixed T at model-build time;
/// used by the MLP classifier head.
class Flatten : public Layer {
 public:
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::string kind() const override { return "flatten"; }

 private:
  std::size_t in_rows_ = 0;
  std::size_t in_cols_ = 0;
};

}  // namespace affectsys::nn
