#include "nn/model.hpp"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "nn/activation.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/gru.hpp"
#include "nn/lstm.hpp"
#include "nn/pooling.hpp"

namespace affectsys::nn {
namespace {

constexpr std::uint32_t kMagic = 0x4146464Du;  // "AFFM"

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("model load: truncated stream");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_u32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const std::uint32_t n = read_u32(is);
  std::string s(n, '\0');
  is.read(s.data(), n);
  if (!is) throw std::runtime_error("model load: truncated string");
  return s;
}

void write_matrix(std::ostream& os, const Matrix& m) {
  write_u32(os, static_cast<std::uint32_t>(m.rows()));
  write_u32(os, static_cast<std::uint32_t>(m.cols()));
  os.write(reinterpret_cast<const char*>(m.flat().data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

Matrix read_matrix(std::istream& is) {
  const std::uint32_t r = read_u32(is);
  const std::uint32_t c = read_u32(is);
  Matrix m(r, c);
  is.read(reinterpret_cast<char*>(m.flat().data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!is) throw std::runtime_error("model load: truncated matrix");
  return m;
}

}  // namespace

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Matrix Sequential::forward(const Matrix& x) {
  Matrix cur = x;
  for (auto& l : layers_) cur = l->forward(cur);
  return cur;
}

Matrix Sequential::forward_from(std::size_t first, const Matrix& x) {
  if (first > layers_.size()) {
    throw std::out_of_range("Sequential::forward_from: layer index");
  }
  Matrix cur = x;
  for (std::size_t i = first; i < layers_.size(); ++i) {
    cur = layers_[i]->forward(cur);
  }
  return cur;
}

const Matrix& Sequential::forward_from_infer(std::size_t first,
                                             const Matrix& x,
                                             ForwardWorkspace& ws) {
  if (first > layers_.size()) {
    throw std::out_of_range("Sequential::forward_from_infer: layer index");
  }
  const Matrix* cur = &x;
  Matrix* nxt = &ws.a;
  for (std::size_t i = first; i < layers_.size(); ++i) {
    layers_[i]->forward_infer(*cur, *nxt);
    cur = nxt;
    nxt = (nxt == &ws.a) ? &ws.b : &ws.a;
  }
  return *cur;
}

Matrix Sequential::backward(const Matrix& grad_out) {
  Matrix cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& l : layers_) {
    for (Param* p : l->params()) out.push_back(p);
  }
  return out;
}

std::size_t Sequential::param_count() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->count();
  return n;
}

std::size_t Sequential::weight_bytes(std::size_t bytes_per_param) const {
  std::size_t bytes = 0;
  for (const auto& l : layers_) {
    for (Param* p : const_cast<Layer&>(*l).params()) {
      bytes += p->count() * bytes_per_param;
      if (bytes_per_param < sizeof(float)) bytes += sizeof(float);  // scale
    }
  }
  return bytes;
}

void Sequential::save(std::ostream& os) const {
  write_u32(os, kMagic);
  write_u32(os, static_cast<std::uint32_t>(layers_.size()));
  for (const auto& l : layers_) {
    write_string(os, l->kind());
    // Layer-specific shape info needed to reconstruct.
    if (auto* d = dynamic_cast<Dense*>(l.get())) {
      write_u32(os, static_cast<std::uint32_t>(d->in_features()));
      write_u32(os, static_cast<std::uint32_t>(d->out_features()));
    } else if (auto* c = dynamic_cast<Conv1D*>(l.get())) {
      write_u32(os, static_cast<std::uint32_t>(c->in_channels()));
      write_u32(os, static_cast<std::uint32_t>(c->out_channels()));
      write_u32(os, static_cast<std::uint32_t>(c->kernel()));
    } else if (auto* r = dynamic_cast<Lstm*>(l.get())) {
      write_u32(os, static_cast<std::uint32_t>(r->input_size()));
      write_u32(os, static_cast<std::uint32_t>(r->hidden_size()));
    } else if (auto* g = dynamic_cast<Gru*>(l.get())) {
      write_u32(os, static_cast<std::uint32_t>(g->input_size()));
      write_u32(os, static_cast<std::uint32_t>(g->hidden_size()));
    } else if (auto* p = dynamic_cast<MaxPool1D*>(l.get())) {
      write_u32(os, static_cast<std::uint32_t>(p->pool()));
    } else if (auto* dr = dynamic_cast<Dropout*>(l.get())) {
      // Store the rate scaled to a fixed point; dropout is identity at
      // inference so the seed need not survive serialization.
      write_u32(os, static_cast<std::uint32_t>(dr->rate() * 1000.0f));
    }
    for (Param* p : l->params()) write_matrix(os, p->value);
  }
}

Sequential Sequential::load(std::istream& is) {
  if (read_u32(is) != kMagic) {
    throw std::runtime_error("model load: bad magic");
  }
  const std::uint32_t n = read_u32(is);
  Sequential model;
  std::mt19937 rng(0);  // init values are immediately overwritten
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string kind = read_string(is);
    std::unique_ptr<Layer> layer;
    if (kind == "dense") {
      const auto in = read_u32(is), out = read_u32(is);
      layer = std::make_unique<Dense>(in, out, rng);
    } else if (kind == "conv1d") {
      const auto in = read_u32(is), out = read_u32(is), k = read_u32(is);
      layer = std::make_unique<Conv1D>(in, out, k, rng);
    } else if (kind == "lstm") {
      const auto in = read_u32(is), hid = read_u32(is);
      layer = std::make_unique<Lstm>(in, hid, rng);
    } else if (kind == "gru") {
      const auto in = read_u32(is), hid = read_u32(is);
      layer = std::make_unique<Gru>(in, hid, rng);
    } else if (kind == "dropout") {
      auto d = std::make_unique<Dropout>(
          static_cast<float>(read_u32(is)) / 1000.0f, 0);
      d->set_training(false);
      layer = std::move(d);
    } else if (kind == "maxpool1d") {
      layer = std::make_unique<MaxPool1D>(read_u32(is));
    } else if (kind == "relu") {
      layer = std::make_unique<Activation>(ActKind::kReLU);
    } else if (kind == "tanh") {
      layer = std::make_unique<Activation>(ActKind::kTanh);
    } else if (kind == "sigmoid") {
      layer = std::make_unique<Activation>(ActKind::kSigmoid);
    } else if (kind == "mean_over_time") {
      layer = std::make_unique<MeanOverTime>();
    } else if (kind == "last_timestep") {
      layer = std::make_unique<LastTimestep>();
    } else if (kind == "flatten") {
      layer = std::make_unique<Flatten>();
    } else {
      throw std::runtime_error("model load: unknown layer kind " + kind);
    }
    for (Param* p : layer->params()) p->value = read_matrix(is);
    model.add(std::move(layer));
  }
  return model;
}

Sequential build_mlp(const ClassifierSpec& spec, std::mt19937& rng) {
  // Three hidden dense stages.  At the default feature geometry
  // (17 features x 64 timesteps) this lands at ~511k parameters,
  // matching the paper's reported ~508k MLP.
  const std::size_t flat = spec.input_features * spec.timesteps;
  Sequential m;
  m.add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>(flat, 416, rng))
      .add(std::make_unique<Activation>(ActKind::kReLU))
      .add(std::make_unique<Dense>(416, 128, rng))
      .add(std::make_unique<Activation>(ActKind::kReLU))
      .add(std::make_unique<Dense>(128, 36, rng))
      .add(std::make_unique<Activation>(ActKind::kReLU))
      .add(std::make_unique<Dense>(36, spec.num_classes, rng));
  return m;
}

Sequential build_cnn(const ClassifierSpec& spec, std::mt19937& rng) {
  // Three conv stages of 32/64/128 channels (the paper's description),
  // flatten + dense head sized so the total lands at ~660k parameters
  // (paper: ~649k) at the default geometry.
  const std::size_t pooled_t = (spec.timesteps + 1) / 2 / 2;
  Sequential m;
  m.add(std::make_unique<Conv1D>(spec.input_features, 32, 5, rng))
      .add(std::make_unique<Activation>(ActKind::kReLU))
      .add(std::make_unique<MaxPool1D>(2))
      .add(std::make_unique<Conv1D>(32, 64, 5, rng))
      .add(std::make_unique<Activation>(ActKind::kReLU))
      .add(std::make_unique<MaxPool1D>(2))
      .add(std::make_unique<Conv1D>(64, 128, 5, rng))
      .add(std::make_unique<Activation>(ActKind::kReLU))
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>(pooled_t * 128, 296, rng))
      .add(std::make_unique<Activation>(ActKind::kReLU))
      .add(std::make_unique<Dense>(296, spec.num_classes, rng));
  return m;
}

Sequential build_gru(const ClassifierSpec& spec, std::mt19937& rng) {
  // Extension model (not in the paper's trio): two GRU layers sized for
  // the same hidden capacity as the LSTM at ~3/4 of its parameters.
  Sequential m;
  m.add(std::make_unique<Gru>(spec.input_features, 216, rng))
      .add(std::make_unique<Gru>(216, 152, rng))
      .add(std::make_unique<LastTimestep>())
      .add(std::make_unique<Dense>(152, spec.num_classes, rng));
  return m;
}

Sequential build_lstm(const ClassifierSpec& spec, std::mt19937& rng) {
  // Two stacked layers (216 + 152 units): ~427k parameters at the default
  // geometry, matching the paper's ~429k LSTM.
  Sequential m;
  m.add(std::make_unique<Lstm>(spec.input_features, 216, rng))
      .add(std::make_unique<Lstm>(216, 152, rng))
      .add(std::make_unique<LastTimestep>())
      .add(std::make_unique<Dense>(152, spec.num_classes, rng));
  return m;
}

const char* model_kind_name(ModelKind k) {
  switch (k) {
    case ModelKind::kMlp:
      return "NN";
    case ModelKind::kCnn:
      return "CNN";
    case ModelKind::kLstm:
      return "LSTM";
  }
  return "?";
}

std::size_t estimate_inference_macs(Sequential& model,
                                    std::size_t timesteps) {
  std::size_t macs = 0;
  std::size_t rows = timesteps;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    Layer& l = model.layer(i);
    const std::string kind = l.kind();
    if (kind == "maxpool1d") {
      const auto& p = dynamic_cast<MaxPool1D&>(l);
      rows = (rows + p.pool() - 1) / p.pool();
    } else if (kind == "flatten" || kind == "mean_over_time" ||
               kind == "last_timestep") {
      rows = 1;
    }
    macs += l.param_count() * rows;
  }
  return macs;
}

Sequential build_model(ModelKind kind, const ClassifierSpec& spec,
                       std::mt19937& rng) {
  switch (kind) {
    case ModelKind::kMlp:
      return build_mlp(spec, rng);
    case ModelKind::kCnn:
      return build_cnn(spec, rng);
    case ModelKind::kLstm:
      return build_lstm(spec, rng);
  }
  throw std::invalid_argument("build_model: bad kind");
}

}  // namespace affectsys::nn
