// Post-training 8-bit quantization (Fig 3(c)/(d) of the paper).
//
// Weights are quantized symmetrically to int8 with either one scale per
// tensor or one scale per output channel (column).  Quantized inference is
// simulated by replacing every weight with its dequantized value, so the
// float execution path measures exactly the accuracy impact of weight
// rounding — the same methodology as TFLite post-training weight
// quantization the paper used.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.hpp"

namespace affectsys::nn {

enum class QuantGranularity { kPerTensor, kPerChannel };

/// One quantized parameter tensor.
struct QuantizedTensor {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int8_t> values;  ///< row-major, rows*cols entries
  std::vector<float> scales;        ///< 1 (per-tensor) or cols (per-channel)

  /// Dequantized float matrix.
  Matrix dequantize() const;
  /// Storage bytes: int8 payload + float scales.
  std::size_t bytes() const {
    return values.size() + scales.size() * sizeof(float);
  }
};

/// Quantizes a float matrix.
QuantizedTensor quantize_tensor(const Matrix& m, QuantGranularity g);

/// Quantizes every parameter of `model` in place (weights are replaced by
/// their dequantized values).  Returns total quantized storage in bytes.
std::size_t quantize_model_inplace(Sequential& model, QuantGranularity g);

/// Largest absolute elementwise error introduced by quantizing `m`.
float max_quantization_error(const Matrix& m, QuantGranularity g);

}  // namespace affectsys::nn
