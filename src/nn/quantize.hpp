// Post-training 8-bit quantization (Fig 3(c)/(d) of the paper).
//
// Weights are quantized symmetrically to int8 with either one scale per
// tensor or one scale per output channel (column).  Two execution styles
// are provided:
//   - Simulated: quantize_model_inplace() replaces every weight with its
//     dequantized value, so the float path measures exactly the accuracy
//     impact of weight rounding (TFLite-style post-training weight
//     quantization, as the paper used).
//   - Real int8 execution: QuantizedMlp runs a Flatten-headed dense
//     stack end-to-end on int8 — per-row activation scales, per-column
//     weight scales, int32 accumulation through the register-blocked
//     int8 GEMM in nn/matrix, float rescale + bias + ReLU between
//     layers.  This is the serve ladder's middle rung.
//
// truncate_mantissa() is the companion approximate-storage knob: it
// zeroes low mantissa bits of stored feature rows (staged windows, the
// feature-bank cache) so approximate buffers compress/dedupe better,
// with a hard byte-identity guarantee at 0 bits.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "nn/model.hpp"

namespace affectsys::nn {

enum class QuantGranularity { kPerTensor, kPerChannel };

/// One quantized parameter tensor.
struct QuantizedTensor {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int8_t> values;  ///< row-major, rows*cols entries
  std::vector<float> scales;        ///< 1 (per-tensor) or cols (per-channel)

  /// Dequantized float matrix.
  Matrix dequantize() const;
  /// Storage bytes: int8 payload + float scales.
  std::size_t bytes() const {
    return values.size() + scales.size() * sizeof(float);
  }
};

/// Quantizes a float matrix.
QuantizedTensor quantize_tensor(const Matrix& m, QuantGranularity g);

/// Quantizes every parameter of `model` in place (weights are replaced by
/// their dequantized values).  Returns total quantized storage in bytes.
std::size_t quantize_model_inplace(Sequential& model, QuantGranularity g);

/// Largest absolute elementwise error introduced by quantizing `m`.
float max_quantization_error(const Matrix& m, QuantGranularity g);

/// Per-row symmetrically quantized activations: row r of the source
/// matrix maps to int8 values with scale scales[r] (max|row| / 127).  An
/// all-zero row gets scale 0 and all-zero values — dequantizing with a
/// 0 scale is exact for it, so zero-range rows survive the round trip.
struct RowQuantized {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int8_t> values;  ///< row-major
  std::vector<float> scales;        ///< one per row
};

/// Quantizes `m` per row into `q`, reusing its capacity (no allocation
/// once warm).
void quantize_rows_into(const Matrix& m, RowQuantized& q);

/// Scratch for QuantizedMlp::forward — all buffers recycled across
/// calls, so steady-state quantized inference allocates nothing.
struct QuantWorkspace {
  RowQuantized act;                ///< quantized activations per layer
  std::vector<std::int32_t> acc;   ///< int8 GEMM accumulator
  Matrix a;                        ///< float activation ping
  Matrix b;                        ///< float activation pong
};

/// End-to-end int8 inference for a Flatten-headed dense/ReLU stack (the
/// shape the MLP classifier and the serve batcher already require).
/// Weights are captured once with per-column scales; each forward
/// quantizes its activations per row, runs the int8 GEMM, and rescales
/// with scale_row * scale_col before the float bias add and ReLU.
class QuantizedMlp {
 public:
  /// Captures `model`'s weights.  Empty when the model is not a
  /// flatten -> {dense [,relu]}* stack (CNN/LSTM callers keep fp32).
  static std::optional<QuantizedMlp> from(Sequential& model);

  /// Logits for a stacked input (batch x input_features floats, one
  /// flattened sample per row).  The returned reference lives in `ws`
  /// and stays valid until the next forward on the same workspace.
  const Matrix& forward(const Matrix& x, QuantWorkspace& ws) const;

  std::size_t input_features() const { return input_features_; }
  std::size_t output_features() const { return output_features_; }
  std::size_t layer_count() const { return layers_.size(); }
  /// int8 payload + scale/bias storage.
  std::size_t bytes() const;

 private:
  struct DenseLayer {
    QuantizedTensor weight;   ///< (in x out), per-column scales
    std::vector<float> bias;  ///< out
    bool relu = false;        ///< fused ReLU after this layer
  };

  std::vector<DenseLayer> layers_;
  std::size_t input_features_ = 0;
  std::size_t output_features_ = 0;
};

/// Zeroes the low `bits` mantissa bits (clamped to 23) of every finite
/// value in `v` — the bit-truncated approximate storage knob.  bits == 0
/// returns without touching memory, so untruncated storage is
/// byte-identical to a build without this call; the operation is
/// idempotent (truncating twice equals truncating once).  NaN/inf are
/// left untouched (clearing a NaN's mantissa could mint an inf).
void truncate_mantissa(std::span<float> v, unsigned bits);

}  // namespace affectsys::nn
