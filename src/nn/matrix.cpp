#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/thread_pool.hpp"

namespace affectsys::nn {
namespace {

/// Below this many multiply-adds a GEMM stays on the caller thread:
/// pool dispatch costs more than the loop.  Classifier-scale products
/// (hundreds of rows/cols) clear it; per-timestep recurrent steps
/// don't.
constexpr std::size_t kParallelFlopThreshold = 1u << 18;

/// k-tile edge for the blocked kernel: 64 rows of a float matrix with
/// a few hundred columns stay L1/L2-resident while a row block streams
/// over them.  Tiling does not reorder the per-element accumulation
/// (k still ascends within each output row), so blocked == unblocked
/// bit-for-bit.
constexpr std::size_t kKBlock = 64;

/// Rows per register block in the matmul micro-kernel below (kMr).
constexpr std::size_t kRowBlock = 4;

std::size_t row_grain(std::size_t rows) {
  // Aim for a few chunks per worker so the tail imbalance stays small.
  const std::size_t workers = std::max<std::size_t>(1, core::global_threads());
  std::size_t grain = std::max<std::size_t>(1, rows / (4 * workers));
  // Never split below the 4-row register block: a finer grain would
  // route every row through the kernel's single-row tail, forfeiting
  // the weight-reuse the block exists for (batched inference on a
  // low-thread host hits exactly this).  Chunk boundaries change, but
  // the per-element accumulation order does not, so results stay
  // bit-identical.
  if (rows >= kRowBlock) {
    grain = (grain + kRowBlock - 1) / kRowBlock * kRowBlock;
  }
  return grain;
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 0.0f);
}

Matrix Matrix::row_vector(std::span<const float> v) {
  Matrix m(1, v.size());
  for (std::size_t i = 0; i < v.size(); ++i) m(0, i) = v[i];
  return m;
}

float& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

float Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Matrix& Matrix::operator+=(const Matrix& o) {
  if (!same_shape(o)) throw std::invalid_argument("Matrix+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  if (!same_shape(o)) throw std::invalid_argument("Matrix-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

void Matrix::fill(float v) {
  for (float& x : data_) x = v;
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Matrix Matrix::matmul(const Matrix& o) const {
  Matrix out;
  matmul_into(o, out);
  return out;
}

void Matrix::matmul_into(const Matrix& o, Matrix& out) const {
  if (cols_ != o.rows_) throw std::invalid_argument("matmul: shape mismatch");
  if (&out == this || &out == &o) {
    throw std::invalid_argument("matmul_into: output aliases an operand");
  }
  // Same zero-then-accumulate the allocating form performed via the
  // zero-initializing constructor, so both paths are bit-identical.
  out.reshape(rows_, o.cols_);
  out.fill(0.0f);
  const std::size_t oc = o.cols_;
  const float* __restrict adata = data_.data();
  const float* __restrict bdata = o.data_.data();
  float* __restrict odata = out.data_.data();

  // Register-blocked micro-kernel: kMr output rows x kNr output columns
  // accumulate in a local register tile across one k-tile, then flush
  // with out += acc.  Every output element — whether it lands in the
  // 4-row block, the 1-row row tail, or the scalar column tail —
  // performs the identical per-element sequence (acc = 0; acc += a*b
  // for k ascending through the tile; out += acc), so the result is
  // independent of where parallel_for splits the row range and serial
  // and threaded builds match bit-for-bit.
  // 4x32 floats of accumulator exactly fill AVX2's sixteen 8-lane
  // registers (the ISA the build targets by default, see
  // AFFECTSYS_ARCH_V3); twelve-plus independent FMA chains are what
  // hides the 4-5 cycle FMA latency behind both FMA ports.
  constexpr std::size_t kMr = kRowBlock;
  constexpr std::size_t kNr = 32;
  auto kernel = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t k0 = 0; k0 < cols_; k0 += kKBlock) {
      const std::size_t k1 = std::min(cols_, k0 + kKBlock);
      std::size_t r = r0;
      for (; r + kMr <= r1; r += kMr) {
        const float* __restrict a0 = adata + (r + 0) * cols_;
        const float* __restrict a1 = adata + (r + 1) * cols_;
        const float* __restrict a2 = adata + (r + 2) * cols_;
        const float* __restrict a3 = adata + (r + 3) * cols_;
        float* __restrict o0 = odata + (r + 0) * oc;
        float* __restrict o1 = odata + (r + 1) * oc;
        float* __restrict o2 = odata + (r + 2) * oc;
        float* __restrict o3 = odata + (r + 3) * oc;
        std::size_t c0 = 0;
        for (; c0 + kNr <= oc; c0 += kNr) {
          float acc[kMr][kNr] = {};
          for (std::size_t k = k0; k < k1; ++k) {
            const float* __restrict b = bdata + k * oc + c0;
            const float av0 = a0[k], av1 = a1[k], av2 = a2[k], av3 = a3[k];
            for (std::size_t j = 0; j < kNr; ++j) {
              acc[0][j] += av0 * b[j];
              acc[1][j] += av1 * b[j];
              acc[2][j] += av2 * b[j];
              acc[3][j] += av3 * b[j];
            }
          }
          for (std::size_t j = 0; j < kNr; ++j) {
            o0[c0 + j] += acc[0][j];
            o1[c0 + j] += acc[1][j];
            o2[c0 + j] += acc[2][j];
            o3[c0 + j] += acc[3][j];
          }
        }
        for (std::size_t c = c0; c < oc; ++c) {
          float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
          for (std::size_t k = k0; k < k1; ++k) {
            const float bv = bdata[k * oc + c];
            s0 += a0[k] * bv;
            s1 += a1[k] * bv;
            s2 += a2[k] * bv;
            s3 += a3[k] * bv;
          }
          o0[c] += s0;
          o1[c] += s1;
          o2[c] += s2;
          o3[c] += s3;
        }
      }
      for (; r < r1; ++r) {
        const float* __restrict arow = adata + r * cols_;
        float* __restrict orow_out = odata + r * oc;
        std::size_t c0 = 0;
        for (; c0 + kNr <= oc; c0 += kNr) {
          float acc[kNr] = {};
          for (std::size_t k = k0; k < k1; ++k) {
            const float* __restrict b = bdata + k * oc + c0;
            const float av = arow[k];
            for (std::size_t j = 0; j < kNr; ++j) acc[j] += av * b[j];
          }
          for (std::size_t j = 0; j < kNr; ++j) orow_out[c0 + j] += acc[j];
        }
        for (std::size_t c = c0; c < oc; ++c) {
          float s = 0.0f;
          for (std::size_t k = k0; k < k1; ++k) {
            s += arow[k] * bdata[k * oc + c];
          }
          orow_out[c] += s;
        }
      }
    }
  };
  // The serial short-circuit checks the worker count too: wrapping the
  // kernel in std::function heap-allocates (the capture outgrows the
  // small-buffer slot), which the pool-less edge configuration must not
  // pay on its inference hot path (the serve layer's zero-steady-state-
  // allocation contract pins this).
  if (core::global_threads() > 0 &&
      rows_ * cols_ * o.cols_ >= kParallelFlopThreshold) {
    core::parallel_for(0, rows_, row_grain(rows_), kernel);
  } else {
    kernel(0, rows_);
  }
}

Matrix Matrix::matmul_reference(const Matrix& o) const {
  if (cols_ != o.rows_) throw std::invalid_argument("matmul: shape mismatch");
  Matrix out(rows_, o.cols_);
  // Pre-optimization kernel: k-tiled axpy accumulating straight into
  // the output row, with the sparse-activation zero skip.  Kept
  // callable as the bench_kernels baseline and the tolerance reference
  // for the micro-kernel above.
  auto kernel = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t k0 = 0; k0 < cols_; k0 += kKBlock) {
      const std::size_t k1 = std::min(cols_, k0 + kKBlock);
      for (std::size_t r = r0; r < r1; ++r) {
        float* out_row = &out.data_[r * o.cols_];
        for (std::size_t k = k0; k < k1; ++k) {
          const float a = (*this)(r, k);
          if (a == 0.0f) continue;
          const float* orow = &o.data_[k * o.cols_];
          for (std::size_t c = 0; c < o.cols_; ++c) out_row[c] += a * orow[c];
        }
      }
    }
  };
  if (rows_ * cols_ * o.cols_ >= kParallelFlopThreshold) {
    core::parallel_for(0, rows_, row_grain(rows_), kernel);
  } else {
    kernel(0, rows_);
  }
  return out;
}

Matrix Matrix::transposed_matmul(const Matrix& o) const {
  if (rows_ != o.rows_) {
    throw std::invalid_argument("transposed_matmul: shape mismatch");
  }
  Matrix out(cols_, o.cols_);
  for (std::size_t k = 0; k < rows_; ++k) {
    for (std::size_t r = 0; r < cols_; ++r) {
      const float a = (*this)(k, r);
      if (a == 0.0f) continue;
      const float* orow = &o.data_[k * o.cols_];
      float* out_row = &out.data_[r * o.cols_];
      for (std::size_t c = 0; c < o.cols_; ++c) out_row[c] += a * orow[c];
    }
  }
  return out;
}

Matrix Matrix::matmul_transposed(const Matrix& o) const {
  if (cols_ != o.cols_) {
    throw std::invalid_argument("matmul_transposed: shape mismatch");
  }
  Matrix out(rows_, o.rows_);
  // Four dot products share each arow[k] load.  Every output element
  // still owns one scalar accumulator over the full k range ascending,
  // so the blocked and unblocked loops agree bit-for-bit (and the
  // result stays independent of the parallel_for row partition).
  auto kernel = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      const float* __restrict arow = &data_[r * cols_];
      float* __restrict orow = &out.data_[r * o.rows_];
      std::size_t c = 0;
      for (; c + 4 <= o.rows_; c += 4) {
        const float* __restrict b0 = &o.data_[(c + 0) * o.cols_];
        const float* __restrict b1 = &o.data_[(c + 1) * o.cols_];
        const float* __restrict b2 = &o.data_[(c + 2) * o.cols_];
        const float* __restrict b3 = &o.data_[(c + 3) * o.cols_];
        float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
        for (std::size_t k = 0; k < cols_; ++k) {
          const float av = arow[k];
          s0 += av * b0[k];
          s1 += av * b1[k];
          s2 += av * b2[k];
          s3 += av * b3[k];
        }
        orow[c + 0] = s0;
        orow[c + 1] = s1;
        orow[c + 2] = s2;
        orow[c + 3] = s3;
      }
      for (; c < o.rows_; ++c) {
        const float* __restrict brow = &o.data_[c * o.cols_];
        float acc = 0.0f;
        for (std::size_t k = 0; k < cols_; ++k) acc += arow[k] * brow[k];
        orow[c] = acc;
      }
    }
  };
  if (rows_ * cols_ * o.rows_ >= kParallelFlopThreshold) {
    core::parallel_for(0, rows_, row_grain(rows_), kernel);
  } else {
    kernel(0, rows_);
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

void Matrix::init_kaiming(std::mt19937& rng, std::size_t fan_in) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in == 0 ? 1 : fan_in));
  std::uniform_real_distribution<float> dist(-bound, bound);
  for (float& v : data_) v = dist(rng);
}

void Matrix::init_xavier(std::mt19937& rng, std::size_t fan_in,
                         std::size_t fan_out) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out == 0
                                              ? 1
                                              : fan_in + fan_out));
  std::uniform_real_distribution<float> dist(-bound, bound);
  for (float& v : data_) v = dist(rng);
}

}  // namespace affectsys::nn
