#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/thread_pool.hpp"

namespace affectsys::nn {
namespace {

/// Below this many multiply-adds a GEMM stays on the caller thread:
/// pool dispatch costs more than the loop.  Classifier-scale products
/// (hundreds of rows/cols) clear it; per-timestep recurrent steps
/// don't.
constexpr std::size_t kParallelFlopThreshold = 1u << 18;

/// k-tile edge for the blocked kernel: 64 rows of a float matrix with
/// a few hundred columns stay L1/L2-resident while a row block streams
/// over them.  Tiling does not reorder the per-element accumulation
/// (k still ascends within each output row), so blocked == unblocked
/// bit-for-bit.
constexpr std::size_t kKBlock = 64;

std::size_t row_grain(std::size_t rows) {
  // Aim for a few chunks per worker so the tail imbalance stays small.
  const std::size_t workers = std::max<std::size_t>(1, core::global_threads());
  return std::max<std::size_t>(1, rows / (4 * workers));
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 0.0f);
}

Matrix Matrix::row_vector(std::span<const float> v) {
  Matrix m(1, v.size());
  for (std::size_t i = 0; i < v.size(); ++i) m(0, i) = v[i];
  return m;
}

float& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

float Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Matrix& Matrix::operator+=(const Matrix& o) {
  if (!same_shape(o)) throw std::invalid_argument("Matrix+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  if (!same_shape(o)) throw std::invalid_argument("Matrix-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

void Matrix::fill(float v) {
  for (float& x : data_) x = v;
}

Matrix Matrix::matmul(const Matrix& o) const {
  if (cols_ != o.rows_) throw std::invalid_argument("matmul: shape mismatch");
  Matrix out(rows_, o.cols_);
  // Output rows are independent, so the row range splits across the
  // pool; within a row, k ascends tile by tile — the same accumulation
  // order as the plain loop, so serial and parallel results match
  // bit-for-bit.
  auto kernel = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t k0 = 0; k0 < cols_; k0 += kKBlock) {
      const std::size_t k1 = std::min(cols_, k0 + kKBlock);
      for (std::size_t r = r0; r < r1; ++r) {
        float* out_row = &out.data_[r * o.cols_];
        for (std::size_t k = k0; k < k1; ++k) {
          const float a = (*this)(r, k);
          if (a == 0.0f) continue;
          const float* orow = &o.data_[k * o.cols_];
          for (std::size_t c = 0; c < o.cols_; ++c) out_row[c] += a * orow[c];
        }
      }
    }
  };
  if (rows_ * cols_ * o.cols_ >= kParallelFlopThreshold) {
    core::parallel_for(0, rows_, row_grain(rows_), kernel);
  } else {
    kernel(0, rows_);
  }
  return out;
}

Matrix Matrix::transposed_matmul(const Matrix& o) const {
  if (rows_ != o.rows_) {
    throw std::invalid_argument("transposed_matmul: shape mismatch");
  }
  Matrix out(cols_, o.cols_);
  for (std::size_t k = 0; k < rows_; ++k) {
    for (std::size_t r = 0; r < cols_; ++r) {
      const float a = (*this)(k, r);
      if (a == 0.0f) continue;
      const float* orow = &o.data_[k * o.cols_];
      float* out_row = &out.data_[r * o.cols_];
      for (std::size_t c = 0; c < o.cols_; ++c) out_row[c] += a * orow[c];
    }
  }
  return out;
}

Matrix Matrix::matmul_transposed(const Matrix& o) const {
  if (cols_ != o.cols_) {
    throw std::invalid_argument("matmul_transposed: shape mismatch");
  }
  Matrix out(rows_, o.rows_);
  auto kernel = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      for (std::size_t c = 0; c < o.rows_; ++c) {
        float acc = 0.0f;
        const float* arow = &data_[r * cols_];
        const float* brow = &o.data_[c * o.cols_];
        for (std::size_t k = 0; k < cols_; ++k) acc += arow[k] * brow[k];
        out(r, c) = acc;
      }
    }
  };
  if (rows_ * cols_ * o.rows_ >= kParallelFlopThreshold) {
    core::parallel_for(0, rows_, row_grain(rows_), kernel);
  } else {
    kernel(0, rows_);
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

void Matrix::init_kaiming(std::mt19937& rng, std::size_t fan_in) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in == 0 ? 1 : fan_in));
  std::uniform_real_distribution<float> dist(-bound, bound);
  for (float& v : data_) v = dist(rng);
}

void Matrix::init_xavier(std::mt19937& rng, std::size_t fan_in,
                         std::size_t fan_out) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out == 0
                                              ? 1
                                              : fan_in + fan_out));
  std::uniform_real_distribution<float> dist(-bound, bound);
  for (float& v : data_) v = dist(rng);
}

}  // namespace affectsys::nn
