#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "core/thread_pool.hpp"

namespace affectsys::nn {
namespace {

/// Below this many multiply-adds a GEMM stays on the caller thread:
/// pool dispatch costs more than the loop.  Classifier-scale products
/// (hundreds of rows/cols) clear it; per-timestep recurrent steps
/// don't.
constexpr std::size_t kParallelFlopThreshold = 1u << 18;

/// k-tile edge for the blocked kernel: 64 rows of a float matrix with
/// a few hundred columns stay L1/L2-resident while a row block streams
/// over them.  Tiling does not reorder the per-element accumulation
/// (k still ascends within each output row), so blocked == unblocked
/// bit-for-bit.
constexpr std::size_t kKBlock = 64;

/// Rows per register block in the matmul micro-kernel below (kMr).
constexpr std::size_t kRowBlock = 4;

std::size_t row_grain(std::size_t rows) {
  // Aim for a few chunks per worker so the tail imbalance stays small.
  const std::size_t workers = std::max<std::size_t>(1, core::global_threads());
  std::size_t grain = std::max<std::size_t>(1, rows / (4 * workers));
  // Never split below the 4-row register block: a finer grain would
  // route every row through the kernel's single-row tail, forfeiting
  // the weight-reuse the block exists for (batched inference on a
  // low-thread host hits exactly this).  Chunk boundaries change, but
  // the per-element accumulation order does not, so results stay
  // bit-identical.
  if (rows >= kRowBlock) {
    grain = (grain + kRowBlock - 1) / kRowBlock * kRowBlock;
  }
  return grain;
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 0.0f);
}

Matrix Matrix::row_vector(std::span<const float> v) {
  Matrix m(1, v.size());
  for (std::size_t i = 0; i < v.size(); ++i) m(0, i) = v[i];
  return m;
}

float& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

float Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Matrix& Matrix::operator+=(const Matrix& o) {
  if (!same_shape(o)) throw std::invalid_argument("Matrix+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  if (!same_shape(o)) throw std::invalid_argument("Matrix-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

void Matrix::fill(float v) {
  for (float& x : data_) x = v;
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Matrix Matrix::matmul(const Matrix& o) const {
  Matrix out;
  matmul_into(o, out);
  return out;
}

void Matrix::matmul_into(const Matrix& o, Matrix& out) const {
  if (cols_ != o.rows_) throw std::invalid_argument("matmul: shape mismatch");
  if (&out == this || &out == &o) {
    throw std::invalid_argument("matmul_into: output aliases an operand");
  }
  // Same zero-then-accumulate the allocating form performed via the
  // zero-initializing constructor, so both paths are bit-identical.
  out.reshape(rows_, o.cols_);
  out.fill(0.0f);
  const std::size_t oc = o.cols_;
  const float* __restrict adata = data_.data();
  const float* __restrict bdata = o.data_.data();
  float* __restrict odata = out.data_.data();

  // Register-blocked micro-kernel: kMr output rows x kNr output columns
  // accumulate in a local register tile across one k-tile, then flush
  // with out += acc.  Every output element — whether it lands in the
  // 4-row block, the 1-row row tail, or the scalar column tail —
  // performs the identical per-element sequence (acc = 0; acc += a*b
  // for k ascending through the tile; out += acc), so the result is
  // independent of where parallel_for splits the row range and serial
  // and threaded builds match bit-for-bit.
  // 4x32 floats of accumulator exactly fill AVX2's sixteen 8-lane
  // registers (the ISA the build targets by default, see
  // AFFECTSYS_ARCH_V3); twelve-plus independent FMA chains are what
  // hides the 4-5 cycle FMA latency behind both FMA ports.
  constexpr std::size_t kMr = kRowBlock;
  constexpr std::size_t kNr = 32;
  auto kernel = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t k0 = 0; k0 < cols_; k0 += kKBlock) {
      const std::size_t k1 = std::min(cols_, k0 + kKBlock);
      std::size_t r = r0;
      for (; r + kMr <= r1; r += kMr) {
        const float* __restrict a0 = adata + (r + 0) * cols_;
        const float* __restrict a1 = adata + (r + 1) * cols_;
        const float* __restrict a2 = adata + (r + 2) * cols_;
        const float* __restrict a3 = adata + (r + 3) * cols_;
        float* __restrict o0 = odata + (r + 0) * oc;
        float* __restrict o1 = odata + (r + 1) * oc;
        float* __restrict o2 = odata + (r + 2) * oc;
        float* __restrict o3 = odata + (r + 3) * oc;
        std::size_t c0 = 0;
        for (; c0 + kNr <= oc; c0 += kNr) {
          float acc[kMr][kNr] = {};
          for (std::size_t k = k0; k < k1; ++k) {
            const float* __restrict b = bdata + k * oc + c0;
            const float av0 = a0[k], av1 = a1[k], av2 = a2[k], av3 = a3[k];
            for (std::size_t j = 0; j < kNr; ++j) {
              acc[0][j] += av0 * b[j];
              acc[1][j] += av1 * b[j];
              acc[2][j] += av2 * b[j];
              acc[3][j] += av3 * b[j];
            }
          }
          for (std::size_t j = 0; j < kNr; ++j) {
            o0[c0 + j] += acc[0][j];
            o1[c0 + j] += acc[1][j];
            o2[c0 + j] += acc[2][j];
            o3[c0 + j] += acc[3][j];
          }
        }
        for (std::size_t c = c0; c < oc; ++c) {
          float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
          for (std::size_t k = k0; k < k1; ++k) {
            const float bv = bdata[k * oc + c];
            s0 += a0[k] * bv;
            s1 += a1[k] * bv;
            s2 += a2[k] * bv;
            s3 += a3[k] * bv;
          }
          o0[c] += s0;
          o1[c] += s1;
          o2[c] += s2;
          o3[c] += s3;
        }
      }
      for (; r < r1; ++r) {
        const float* __restrict arow = adata + r * cols_;
        float* __restrict orow_out = odata + r * oc;
        std::size_t c0 = 0;
        for (; c0 + kNr <= oc; c0 += kNr) {
          float acc[kNr] = {};
          for (std::size_t k = k0; k < k1; ++k) {
            const float* __restrict b = bdata + k * oc + c0;
            const float av = arow[k];
            for (std::size_t j = 0; j < kNr; ++j) acc[j] += av * b[j];
          }
          for (std::size_t j = 0; j < kNr; ++j) orow_out[c0 + j] += acc[j];
        }
        for (std::size_t c = c0; c < oc; ++c) {
          float s = 0.0f;
          for (std::size_t k = k0; k < k1; ++k) {
            s += arow[k] * bdata[k * oc + c];
          }
          orow_out[c] += s;
        }
      }
    }
  };
  // The serial short-circuit checks the worker count too: wrapping the
  // kernel in std::function heap-allocates (the capture outgrows the
  // small-buffer slot), which the pool-less edge configuration must not
  // pay on its inference hot path (the serve layer's zero-steady-state-
  // allocation contract pins this).
  if (core::global_threads() > 0 &&
      rows_ * cols_ * o.cols_ >= kParallelFlopThreshold) {
    core::parallel_for(0, rows_, row_grain(rows_), kernel);
  } else {
    kernel(0, rows_);
  }
}

Matrix Matrix::matmul_reference(const Matrix& o) const {
  if (cols_ != o.rows_) throw std::invalid_argument("matmul: shape mismatch");
  Matrix out(rows_, o.cols_);
  // Pre-optimization kernel: k-tiled axpy accumulating straight into
  // the output row, with the sparse-activation zero skip.  Kept
  // callable as the bench_kernels baseline and the tolerance reference
  // for the micro-kernel above.
  auto kernel = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t k0 = 0; k0 < cols_; k0 += kKBlock) {
      const std::size_t k1 = std::min(cols_, k0 + kKBlock);
      for (std::size_t r = r0; r < r1; ++r) {
        float* out_row = &out.data_[r * o.cols_];
        for (std::size_t k = k0; k < k1; ++k) {
          const float a = (*this)(r, k);
          if (a == 0.0f) continue;
          const float* orow = &o.data_[k * o.cols_];
          for (std::size_t c = 0; c < o.cols_; ++c) out_row[c] += a * orow[c];
        }
      }
    }
  };
  if (rows_ * cols_ * o.cols_ >= kParallelFlopThreshold) {
    core::parallel_for(0, rows_, row_grain(rows_), kernel);
  } else {
    kernel(0, rows_);
  }
  return out;
}

#if defined(__AVX2__)

namespace {

/// Two adjacent int8 A values packed as a (lo, hi) s16 pair and
/// broadcast-ready for vpmaddwd: madd(pair, interleaved-B) computes
/// a[p]*b[p] + a[p+1]*b[p+1] per int32 lane — 16 int8 MACs per
/// instruction, twice an fp32 FMA's width, which is where the int8
/// rung's speedup comes from (on top of the 4x smaller B panel).
inline std::int32_t a_pair(const std::int8_t* row, std::size_t p) {
  return static_cast<std::int32_t>(static_cast<std::uint16_t>(
             static_cast<std::int16_t>(row[p]))) |
         (static_cast<std::int32_t>(row[p + 1]) << 16);
}

inline std::int32_t a_last(const std::int8_t* row, std::size_t p) {
  // Odd-k tail: pair the final A value with 0 (madd adds 0*b).
  return static_cast<std::int32_t>(static_cast<std::uint16_t>(
      static_cast<std::int16_t>(row[p])));
}

/// 16 int8 B values sign-extended to s16.
inline __m256i load_b16(const std::int8_t* p) {
  return _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

}  // namespace

// AVX2 kernel: 4 output rows x 16 output columns per register tile, k
// consumed in pairs through vpmaddwd.  Interleaving two B rows with
// unpacklo/hi permutes columns within 128-bit lanes, so the two
// accumulators per row hold columns [0-3, 8-11] and [4-7, 12-15]; one
// permute2x128 at store time puts them back.  Integer addition is
// associative and every product is exact, so this equals the naive
// reference to the last bit (bench_kernels memcmps them) — the pairing
// changes the summation *order* only.  Intermediates fit: |a*b| <=
// 127^2, two per madd lane, summed over k/2 pairs — safe for k well
// past the documented 131072 bound.
void int8_gemm(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
               std::size_t m, std::size_t k, std::size_t n) {
  constexpr std::size_t kMr = kRowBlock;
  constexpr std::size_t kNr = 16;
  const std::size_t pairs = (k + 1) / 2;
  auto kernel = [&](std::size_t r0, std::size_t r1) {
    // Pre-packed A pairs for one row block, rebuilt per block and
    // reused across every column block: the hot loop then broadcasts a
    // ready-made s16 pair straight from memory (one vpbroadcastd)
    // instead of sign-extending and shifting scalars each iteration.
    // The odd-k tail packs (a[k-1], 0), matching the zero row the B
    // tail interleaves against.
    std::vector<std::int32_t> packed(kMr * pairs);
    const auto pack_row = [&](const std::int8_t* row, std::size_t slot) {
      std::int32_t* dst = packed.data() + slot * pairs;
      std::size_t p = 0;
      for (; p + 2 <= k; p += 2) dst[p / 2] = a_pair(row, p);
      if (p < k) dst[p / 2] = a_last(row, p);
    };
    std::size_t r = r0;
    for (; r + kMr <= r1; r += kMr) {
      for (std::size_t i = 0; i < kMr; ++i) pack_row(a + (r + i) * k, i);
      const std::int32_t* __restrict ap0 = packed.data();
      const std::int32_t* __restrict ap1 = packed.data() + pairs;
      const std::int32_t* __restrict ap2 = packed.data() + 2 * pairs;
      const std::int32_t* __restrict ap3 = packed.data() + 3 * pairs;
      std::int32_t* __restrict o0 = c + (r + 0) * n;
      std::int32_t* __restrict o1 = c + (r + 1) * n;
      std::int32_t* __restrict o2 = c + (r + 2) * n;
      std::int32_t* __restrict o3 = c + (r + 3) * n;
      std::size_t c0 = 0;
      for (; c0 + kNr <= n; c0 += kNr) {
        __m256i acc0l = _mm256_setzero_si256(), acc0h = acc0l;
        __m256i acc1l = acc0l, acc1h = acc0l;
        __m256i acc2l = acc0l, acc2h = acc0l;
        __m256i acc3l = acc0l, acc3h = acc0l;
        std::size_t p = 0;
        for (; p + 2 <= k; p += 2) {
          const __m256i bp = load_b16(b + p * n + c0);
          const __m256i bq = load_b16(b + (p + 1) * n + c0);
          const __m256i blo = _mm256_unpacklo_epi16(bp, bq);
          const __m256i bhi = _mm256_unpackhi_epi16(bp, bq);
          const __m256i v0 = _mm256_set1_epi32(ap0[p / 2]);
          acc0l = _mm256_add_epi32(acc0l, _mm256_madd_epi16(v0, blo));
          acc0h = _mm256_add_epi32(acc0h, _mm256_madd_epi16(v0, bhi));
          const __m256i v1 = _mm256_set1_epi32(ap1[p / 2]);
          acc1l = _mm256_add_epi32(acc1l, _mm256_madd_epi16(v1, blo));
          acc1h = _mm256_add_epi32(acc1h, _mm256_madd_epi16(v1, bhi));
          const __m256i v2 = _mm256_set1_epi32(ap2[p / 2]);
          acc2l = _mm256_add_epi32(acc2l, _mm256_madd_epi16(v2, blo));
          acc2h = _mm256_add_epi32(acc2h, _mm256_madd_epi16(v2, bhi));
          const __m256i v3 = _mm256_set1_epi32(ap3[p / 2]);
          acc3l = _mm256_add_epi32(acc3l, _mm256_madd_epi16(v3, blo));
          acc3h = _mm256_add_epi32(acc3h, _mm256_madd_epi16(v3, bhi));
        }
        if (p < k) {
          const __m256i bp = load_b16(b + p * n + c0);
          const __m256i zero = _mm256_setzero_si256();
          const __m256i blo = _mm256_unpacklo_epi16(bp, zero);
          const __m256i bhi = _mm256_unpackhi_epi16(bp, zero);
          const __m256i v0 = _mm256_set1_epi32(ap0[p / 2]);
          acc0l = _mm256_add_epi32(acc0l, _mm256_madd_epi16(v0, blo));
          acc0h = _mm256_add_epi32(acc0h, _mm256_madd_epi16(v0, bhi));
          const __m256i v1 = _mm256_set1_epi32(ap1[p / 2]);
          acc1l = _mm256_add_epi32(acc1l, _mm256_madd_epi16(v1, blo));
          acc1h = _mm256_add_epi32(acc1h, _mm256_madd_epi16(v1, bhi));
          const __m256i v2 = _mm256_set1_epi32(ap2[p / 2]);
          acc2l = _mm256_add_epi32(acc2l, _mm256_madd_epi16(v2, blo));
          acc2h = _mm256_add_epi32(acc2h, _mm256_madd_epi16(v2, bhi));
          const __m256i v3 = _mm256_set1_epi32(ap3[p / 2]);
          acc3l = _mm256_add_epi32(acc3l, _mm256_madd_epi16(v3, blo));
          acc3h = _mm256_add_epi32(acc3h, _mm256_madd_epi16(v3, bhi));
        }
        const auto store = [&](std::int32_t* o, __m256i lo, __m256i hi) {
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + c0),
                              _mm256_permute2x128_si256(lo, hi, 0x20));
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + c0 + 8),
                              _mm256_permute2x128_si256(lo, hi, 0x31));
        };
        store(o0, acc0l, acc0h);
        store(o1, acc1l, acc1h);
        store(o2, acc2l, acc2h);
        store(o3, acc3l, acc3h);
      }
      for (; c0 < n; ++c0) {
        const std::int8_t* __restrict a0 = a + (r + 0) * k;
        const std::int8_t* __restrict a1 = a + (r + 1) * k;
        const std::int8_t* __restrict a2 = a + (r + 2) * k;
        const std::int8_t* __restrict a3 = a + (r + 3) * k;
        std::int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        for (std::size_t kk = 0; kk < k; ++kk) {
          const std::int32_t bv = b[kk * n + c0];
          s0 += a0[kk] * bv;
          s1 += a1[kk] * bv;
          s2 += a2[kk] * bv;
          s3 += a3[kk] * bv;
        }
        o0[c0] = s0;
        o1[c0] = s1;
        o2[c0] = s2;
        o3[c0] = s3;
      }
    }
    for (; r < r1; ++r) {
      const std::int8_t* __restrict arow = a + r * k;
      std::int32_t* __restrict orow = c + r * n;
      pack_row(arow, 0);
      const std::int32_t* __restrict apk = packed.data();
      std::size_t c0 = 0;
      for (; c0 + kNr <= n; c0 += kNr) {
        __m256i accl = _mm256_setzero_si256(), acch = accl;
        std::size_t p = 0;
        for (; p + 2 <= k; p += 2) {
          const __m256i bp = load_b16(b + p * n + c0);
          const __m256i bq = load_b16(b + (p + 1) * n + c0);
          const __m256i ap = _mm256_set1_epi32(apk[p / 2]);
          accl = _mm256_add_epi32(
              accl, _mm256_madd_epi16(ap, _mm256_unpacklo_epi16(bp, bq)));
          acch = _mm256_add_epi32(
              acch, _mm256_madd_epi16(ap, _mm256_unpackhi_epi16(bp, bq)));
        }
        if (p < k) {
          const __m256i bp = load_b16(b + p * n + c0);
          const __m256i zero = _mm256_setzero_si256();
          const __m256i ap = _mm256_set1_epi32(apk[p / 2]);
          accl = _mm256_add_epi32(
              accl, _mm256_madd_epi16(ap, _mm256_unpacklo_epi16(bp, zero)));
          acch = _mm256_add_epi32(
              acch, _mm256_madd_epi16(ap, _mm256_unpackhi_epi16(bp, zero)));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(orow + c0),
                            _mm256_permute2x128_si256(accl, acch, 0x20));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(orow + c0 + 8),
                            _mm256_permute2x128_si256(accl, acch, 0x31));
      }
      for (; c0 < n; ++c0) {
        std::int32_t s = 0;
        for (std::size_t kk = 0; kk < k; ++kk) {
          s += static_cast<std::int32_t>(arow[kk]) * b[kk * n + c0];
        }
        orow[c0] = s;
      }
    }
  };
  if (core::global_threads() > 0 && m * k * n >= kParallelFlopThreshold) {
    core::parallel_for(0, m, row_grain(m), kernel);
  } else {
    kernel(0, m);
  }
}

#else  // !__AVX2__

void int8_gemm(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
               std::size_t m, std::size_t k, std::size_t n) {
  std::fill(c, c + m * n, 0);
  // Same 4 x 32 register tile as the float micro-kernel above, but the
  // B panel streams one byte per weight instead of four — at classifier
  // shapes the fp32 product is bound on exactly that traffic, which is
  // where the int8 speedup comes from.  Integer accumulation is
  // associative, so tiling cannot change the result: blocked == naive
  // to the last bit (bench_kernels memcmps them).
  constexpr std::size_t kMr = kRowBlock;
  constexpr std::size_t kNr = 32;
  auto kernel = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t k0 = 0; k0 < k; k0 += kKBlock) {
      const std::size_t k1 = std::min(k, k0 + kKBlock);
      std::size_t r = r0;
      for (; r + kMr <= r1; r += kMr) {
        const std::int8_t* __restrict a0 = a + (r + 0) * k;
        const std::int8_t* __restrict a1 = a + (r + 1) * k;
        const std::int8_t* __restrict a2 = a + (r + 2) * k;
        const std::int8_t* __restrict a3 = a + (r + 3) * k;
        std::int32_t* __restrict o0 = c + (r + 0) * n;
        std::int32_t* __restrict o1 = c + (r + 1) * n;
        std::int32_t* __restrict o2 = c + (r + 2) * n;
        std::int32_t* __restrict o3 = c + (r + 3) * n;
        std::size_t c0 = 0;
        for (; c0 + kNr <= n; c0 += kNr) {
          std::int32_t acc[kMr][kNr] = {};
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const std::int8_t* __restrict brow = b + kk * n + c0;
            const std::int32_t av0 = a0[kk], av1 = a1[kk];
            const std::int32_t av2 = a2[kk], av3 = a3[kk];
            for (std::size_t j = 0; j < kNr; ++j) {
              const std::int32_t bv = brow[j];
              acc[0][j] += av0 * bv;
              acc[1][j] += av1 * bv;
              acc[2][j] += av2 * bv;
              acc[3][j] += av3 * bv;
            }
          }
          for (std::size_t j = 0; j < kNr; ++j) {
            o0[c0 + j] += acc[0][j];
            o1[c0 + j] += acc[1][j];
            o2[c0 + j] += acc[2][j];
            o3[c0 + j] += acc[3][j];
          }
        }
        for (std::size_t cc = c0; cc < n; ++cc) {
          std::int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const std::int32_t bv = b[kk * n + cc];
            s0 += a0[kk] * bv;
            s1 += a1[kk] * bv;
            s2 += a2[kk] * bv;
            s3 += a3[kk] * bv;
          }
          o0[cc] += s0;
          o1[cc] += s1;
          o2[cc] += s2;
          o3[cc] += s3;
        }
      }
      for (; r < r1; ++r) {
        const std::int8_t* __restrict arow = a + r * k;
        std::int32_t* __restrict orow = c + r * n;
        std::size_t c0 = 0;
        for (; c0 + kNr <= n; c0 += kNr) {
          std::int32_t acc[kNr] = {};
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const std::int8_t* __restrict brow = b + kk * n + c0;
            const std::int32_t av = arow[kk];
            for (std::size_t j = 0; j < kNr; ++j) acc[j] += av * brow[j];
          }
          for (std::size_t j = 0; j < kNr; ++j) orow[c0 + j] += acc[j];
        }
        for (std::size_t cc = c0; cc < n; ++cc) {
          std::int32_t s = 0;
          for (std::size_t kk = k0; kk < k1; ++kk) {
            s += static_cast<std::int32_t>(arow[kk]) * b[kk * n + cc];
          }
          orow[cc] += s;
        }
      }
    }
  };
  if (core::global_threads() > 0 && m * k * n >= kParallelFlopThreshold) {
    core::parallel_for(0, m, row_grain(m), kernel);
  } else {
    kernel(0, m);
  }
}

#endif  // __AVX2__

void int8_gemm_reference(const std::int8_t* a, const std::int8_t* b,
                         std::int32_t* c, std::size_t m, std::size_t k,
                         std::size_t n) {
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t cc = 0; cc < n; ++cc) {
      std::int32_t s = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        s += static_cast<std::int32_t>(a[r * k + kk]) *
             static_cast<std::int32_t>(b[kk * n + cc]);
      }
      c[r * n + cc] = s;
    }
  }
}

Matrix Matrix::transposed_matmul(const Matrix& o) const {
  if (rows_ != o.rows_) {
    throw std::invalid_argument("transposed_matmul: shape mismatch");
  }
  Matrix out(cols_, o.cols_);
  for (std::size_t k = 0; k < rows_; ++k) {
    for (std::size_t r = 0; r < cols_; ++r) {
      const float a = (*this)(k, r);
      if (a == 0.0f) continue;
      const float* orow = &o.data_[k * o.cols_];
      float* out_row = &out.data_[r * o.cols_];
      for (std::size_t c = 0; c < o.cols_; ++c) out_row[c] += a * orow[c];
    }
  }
  return out;
}

Matrix Matrix::matmul_transposed(const Matrix& o) const {
  if (cols_ != o.cols_) {
    throw std::invalid_argument("matmul_transposed: shape mismatch");
  }
  Matrix out(rows_, o.rows_);
  // Four dot products share each arow[k] load.  Every output element
  // still owns one scalar accumulator over the full k range ascending,
  // so the blocked and unblocked loops agree bit-for-bit (and the
  // result stays independent of the parallel_for row partition).
  auto kernel = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      const float* __restrict arow = &data_[r * cols_];
      float* __restrict orow = &out.data_[r * o.rows_];
      std::size_t c = 0;
      for (; c + 4 <= o.rows_; c += 4) {
        const float* __restrict b0 = &o.data_[(c + 0) * o.cols_];
        const float* __restrict b1 = &o.data_[(c + 1) * o.cols_];
        const float* __restrict b2 = &o.data_[(c + 2) * o.cols_];
        const float* __restrict b3 = &o.data_[(c + 3) * o.cols_];
        float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
        for (std::size_t k = 0; k < cols_; ++k) {
          const float av = arow[k];
          s0 += av * b0[k];
          s1 += av * b1[k];
          s2 += av * b2[k];
          s3 += av * b3[k];
        }
        orow[c + 0] = s0;
        orow[c + 1] = s1;
        orow[c + 2] = s2;
        orow[c + 3] = s3;
      }
      for (; c < o.rows_; ++c) {
        const float* __restrict brow = &o.data_[c * o.cols_];
        float acc = 0.0f;
        for (std::size_t k = 0; k < cols_; ++k) acc += arow[k] * brow[k];
        orow[c] = acc;
      }
    }
  };
  if (rows_ * cols_ * o.rows_ >= kParallelFlopThreshold) {
    core::parallel_for(0, rows_, row_grain(rows_), kernel);
  } else {
    kernel(0, rows_);
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

void Matrix::init_kaiming(std::mt19937& rng, std::size_t fan_in) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in == 0 ? 1 : fan_in));
  std::uniform_real_distribution<float> dist(-bound, bound);
  for (float& v : data_) v = dist(rng);
}

void Matrix::init_xavier(std::mt19937& rng, std::size_t fan_in,
                         std::size_t fan_out) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out == 0
                                              ? 1
                                              : fan_in + fan_out));
  std::uniform_real_distribution<float> dist(-bound, bound);
  for (float& v : data_) v = dist(rng);
}

}  // namespace affectsys::nn
