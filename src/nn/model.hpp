// Sequential model container, the three paper classifier architectures,
// and binary (de)serialization.
#pragma once

#include <iosfwd>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace affectsys::nn {

/// Reusable activation scratch for the zero-allocation inference path:
/// two matrices the layer outputs ping-pong between, recycled across
/// calls.
struct ForwardWorkspace {
  Matrix a;
  Matrix b;
};

/// A stack of layers executed in order.  Owns its layers.
class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Appends a layer and returns a reference for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  Matrix forward(const Matrix& x);
  /// Forward through layers [first, layer_count()) only.  The batched
  /// inference path uses this to run a stacked (batch x flat) matrix
  /// through the dense stage of a Flatten-headed model: each batch row
  /// is exactly one sample's Flatten output, and the GEMM kernel's
  /// per-element accumulation order is row-count-invariant, so batched
  /// rows match per-sample forward() bit for bit.
  Matrix forward_from(std::size_t first, const Matrix& x);
  /// Inference-only forward_from: activations ping-pong through `ws`
  /// and the returned reference (into ws, or `x` itself when no layer
  /// runs) stays valid until the next call on the same workspace.
  /// Bit-identical to forward_from() by each layer's forward_infer
  /// contract, but allocation-free once the workspace is warm (for
  /// row-wise layer stacks; layers without an override fall back to
  /// their allocating forward()).  Skips the backward caches, so
  /// backward() must not follow this.
  const Matrix& forward_from_infer(std::size_t first, const Matrix& x,
                                   ForwardWorkspace& ws);
  /// Backward through all layers; returns dL/d(input).
  Matrix backward(const Matrix& grad_out);

  std::vector<Param*> params();
  std::size_t param_count();
  /// Weight storage in bytes at the given bytes-per-parameter width
  /// (4 = float32, 1 = int8).  Quantized storage additionally carries one
  /// float scale per parameter tensor.
  std::size_t weight_bytes(std::size_t bytes_per_param) const;

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  /// Serializes architecture + weights to a binary stream.
  void save(std::ostream& os) const;
  /// Reconstructs a model saved with save().
  static Sequential load(std::istream& is);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Hyperparameters shared by the three paper classifiers.
struct ClassifierSpec {
  std::size_t input_features = 0;  ///< features per timestep
  std::size_t timesteps = 0;       ///< fixed sequence length
  std::size_t num_classes = 0;
};

/// 3-layer MLP ("NN" in Fig 3): flatten -> 3 dense+ReLU stages sized to
/// roughly the paper's 260 neurons / ~508k parameters at the default
/// feature geometry -> logits.
Sequential build_mlp(const ClassifierSpec& spec, std::mt19937& rng);

/// CNN: three Conv1D stages of 32/64/128 channels with ReLU + MaxPool,
/// mean-pool head (~649k parameters at paper geometry).
Sequential build_cnn(const ClassifierSpec& spec, std::mt19937& rng);

/// LSTM: two stacked layers totalling 320 units (~429k parameters),
/// last-timestep head.
Sequential build_lstm(const ClassifierSpec& spec, std::mt19937& rng);

/// GRU: extension model (same layout as the LSTM at ~3/4 the parameters)
/// for the architecture ablation — not part of the paper's Fig 3 trio.
Sequential build_gru(const ClassifierSpec& spec, std::mt19937& rng);

enum class ModelKind { kMlp, kCnn, kLstm };

const char* model_kind_name(ModelKind k);

Sequential build_model(ModelKind kind, const ClassifierSpec& spec,
                       std::mt19937& rng);

/// Rough multiply-accumulate count of one forward pass over a
/// `timesteps`-row input: each parameterized layer contributes its
/// parameter count times the number of rows it processes (timestep count
/// before a pooling/flatten head, 1 after).  Used by the offload energy
/// study (power/offload.hpp).
std::size_t estimate_inference_macs(Sequential& model, std::size_t timesteps);

}  // namespace affectsys::nn
