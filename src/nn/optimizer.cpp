#include "nn/optimizer.hpp"

#include <cmath>

namespace affectsys::nn {

void Sgd::step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    if (momentum_ > 0.0f) {
      auto [it, inserted] = velocity_.try_emplace(
          p, Matrix(p->value.rows(), p->value.cols()));
      Matrix& vel = it->second;
      auto v = vel.flat();
      auto g = p->grad.flat();
      auto w = p->value.flat();
      for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = momentum_ * v[i] - lr_ * g[i];
        w[i] += v[i];
      }
    } else {
      auto g = p->grad.flat();
      auto w = p->value.flat();
      for (std::size_t i = 0; i < w.size(); ++i) w[i] -= lr_ * g[i];
    }
    p->zero_grad();
  }
}

void Adam::step(const std::vector<Param*>& params) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (Param* p : params) {
    auto [it, inserted] = state_.try_emplace(
        p, State{Matrix(p->value.rows(), p->value.cols()),
                 Matrix(p->value.rows(), p->value.cols())});
    auto m = it->second.m.flat();
    auto v = it->second.v.flat();
    auto g = p->grad.flat();
    auto w = p->value.flat();
    for (std::size_t i = 0; i < w.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    p->zero_grad();
  }
}

float clip_gradients(const std::vector<Param*>& params, float max_norm) {
  double sq = 0.0;
  for (Param* p : params) {
    for (float g : p->grad.flat()) sq += static_cast<double>(g) * g;
  }
  const auto norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Param* p : params) {
      for (float& g : p->grad.flat()) g *= scale;
    }
  }
  return norm;
}

}  // namespace affectsys::nn
