// Dense row-major float matrix — the only tensor type used by the NN
// substrate.  A sequence sample is a Matrix with one row per timestep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace affectsys::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

  static Matrix zeros(std::size_t rows, std::size_t cols);
  /// Single-row matrix wrapping a vector.
  static Matrix row_vector(std::span<const float> v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  /// Checked element access.
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  std::span<float> row(std::size_t r) { return {&data_[r * cols_], cols_}; }
  std::span<const float> row(std::size_t r) const {
    return {&data_[r * cols_], cols_};
  }
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(float s);
  void fill(float v);

  /// Re-dimensions to (rows x cols) without shrinking the underlying
  /// capacity — element values are unspecified afterwards (callers
  /// overwrite or fill).  The zero-allocation inference path uses this
  /// to recycle one scratch matrix across shapes.
  void reshape(std::size_t rows, std::size_t cols);

  /// this (r x k) times o (k x c) -> (r x c).
  Matrix matmul(const Matrix& o) const;
  /// matmul writing into a caller-owned output (recycled capacity, no
  /// allocation once warm).  Bit-identical to matmul(), which wraps
  /// this.  `out` must not alias either operand.
  void matmul_into(const Matrix& o, Matrix& out) const;
  /// Pre-optimization matmul kernel (k-tiled axpy with zero skip).
  /// Same shape contract as matmul(); results agree to float rounding
  /// (the micro-kernel accumulates each k-tile in registers).  Kept for
  /// bench_kernels and the kernel tolerance suite.
  Matrix matmul_reference(const Matrix& o) const;
  /// this^T (k x r) times o — avoids materializing the transpose.
  Matrix transposed_matmul(const Matrix& o) const;
  /// this (r x k) times o^T (c x k) -> (r x c).
  Matrix matmul_transposed(const Matrix& o) const;
  Matrix transposed() const;

  /// Kaiming-uniform initialization with the given fan-in.
  void init_kaiming(std::mt19937& rng, std::size_t fan_in);
  /// Xavier/Glorot-uniform initialization.
  void init_xavier(std::mt19937& rng, std::size_t fan_in,
                   std::size_t fan_out);

  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// C (m x n, int32) = A (m x k, int8) x B (k x n, int8), all row-major.
/// int32 accumulation never overflows for k <= 131072 (|a*b| <= 127^2).
/// Register-blocked like Matrix::matmul_into (4 x 32 accumulator tile,
/// k-tiled); integer addition is associative, so the blocked kernel is
/// exactly equal to int8_gemm_reference — no tolerance, memcmp-equal.
/// `c` must not alias `a` or `b`.
void int8_gemm(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
               std::size_t m, std::size_t k, std::size_t n);

/// Naive triple loop, kept as the bench baseline and the exact-identity
/// reference for int8_gemm.
void int8_gemm_reference(const std::int8_t* a, const std::int8_t* b,
                         std::int32_t* c, std::size_t m, std::size_t k,
                         std::size_t n);

}  // namespace affectsys::nn
