#include "nn/conv1d.hpp"

#include <stdexcept>

namespace affectsys::nn {

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::mt19937& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      weight_("weight", kernel * in_channels, out_channels),
      bias_("bias", 1, out_channels) {
  if (kernel % 2 == 0 || kernel == 0) {
    throw std::invalid_argument("Conv1D: kernel width must be odd");
  }
  weight_.value.init_kaiming(rng, kernel * in_channels);
}

Matrix Conv1D::forward(const Matrix& x) {
  if (x.cols() != in_channels_) {
    throw std::invalid_argument("Conv1D::forward: channel mismatch");
  }
  input_ = x;
  const std::size_t T = x.rows();
  const auto half = static_cast<long long>(kernel_ / 2);
  Matrix out(T, out_channels_);
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      float acc = bias_.value(0, oc);
      for (std::size_t k = 0; k < kernel_; ++k) {
        const long long src =
            static_cast<long long>(t) + static_cast<long long>(k) - half;
        if (src < 0 || src >= static_cast<long long>(T)) continue;
        for (std::size_t ic = 0; ic < in_channels_; ++ic) {
          acc += x(static_cast<std::size_t>(src), ic) *
                 weight_.value(k * in_channels_ + ic, oc);
        }
      }
      out(t, oc) = acc;
    }
  }
  return out;
}

Matrix Conv1D::backward(const Matrix& grad_out) {
  const std::size_t T = input_.rows();
  const auto half = static_cast<long long>(kernel_ / 2);
  Matrix grad_in(T, in_channels_);
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const float g = grad_out(t, oc);
      if (g == 0.0f) continue;
      bias_.grad(0, oc) += g;
      for (std::size_t k = 0; k < kernel_; ++k) {
        const long long src =
            static_cast<long long>(t) + static_cast<long long>(k) - half;
        if (src < 0 || src >= static_cast<long long>(T)) continue;
        const auto s = static_cast<std::size_t>(src);
        for (std::size_t ic = 0; ic < in_channels_; ++ic) {
          weight_.grad(k * in_channels_ + ic, oc) += g * input_(s, ic);
          grad_in(s, ic) += g * weight_.value(k * in_channels_ + ic, oc);
        }
      }
    }
  }
  return grad_in;
}

}  // namespace affectsys::nn
