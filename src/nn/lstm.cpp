#include "nn/lstm.hpp"

#include <cmath>

#include "nn/activation.hpp"

namespace affectsys::nn {

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size, std::mt19937& rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      wx_("wx", input_size, 4 * hidden_size),
      wh_("wh", hidden_size, 4 * hidden_size),
      bias_("bias", 1, 4 * hidden_size) {
  wx_.value.init_xavier(rng, input_size, hidden_size);
  wh_.value.init_xavier(rng, hidden_size, hidden_size);
  // Forget-gate bias = 1.
  for (std::size_t h = 0; h < hidden_size; ++h) {
    bias_.value(0, hidden_size + h) = 1.0f;
  }
}

Matrix Lstm::forward(const Matrix& x) {
  const std::size_t T = x.rows();
  const std::size_t H = hidden_size_;
  input_ = x;
  gates_ = Matrix(T, 4 * H);
  cells_ = Matrix(T, H);
  hidden_ = Matrix(T, H);

  std::vector<float> h_prev(H, 0.0f), c_prev(H, 0.0f);
  std::vector<float> pre(4 * H);
  for (std::size_t t = 0; t < T; ++t) {
    // pre = x_t * Wx + h_{t-1} * Wh + b
    for (std::size_t j = 0; j < 4 * H; ++j) pre[j] = bias_.value(0, j);
    for (std::size_t i = 0; i < input_size_; ++i) {
      const float xv = x(t, i);
      if (xv == 0.0f) continue;
      for (std::size_t j = 0; j < 4 * H; ++j) pre[j] += xv * wx_.value(i, j);
    }
    for (std::size_t i = 0; i < H; ++i) {
      const float hv = h_prev[i];
      if (hv == 0.0f) continue;
      for (std::size_t j = 0; j < 4 * H; ++j) pre[j] += hv * wh_.value(i, j);
    }
    for (std::size_t h = 0; h < H; ++h) {
      const float ig = sigmoid(pre[h]);
      const float fg = sigmoid(pre[H + h]);
      const float gg = std::tanh(pre[2 * H + h]);
      const float og = sigmoid(pre[3 * H + h]);
      const float c = fg * c_prev[h] + ig * gg;
      const float hh = og * std::tanh(c);
      gates_(t, h) = ig;
      gates_(t, H + h) = fg;
      gates_(t, 2 * H + h) = gg;
      gates_(t, 3 * H + h) = og;
      cells_(t, h) = c;
      hidden_(t, h) = hh;
    }
    for (std::size_t h = 0; h < H; ++h) {
      h_prev[h] = hidden_(t, h);
      c_prev[h] = cells_(t, h);
    }
  }
  return hidden_;
}

Matrix Lstm::backward(const Matrix& grad_out) {
  const std::size_t T = input_.rows();
  const std::size_t H = hidden_size_;
  Matrix grad_in(T, input_size_);
  std::vector<float> dh_next(H, 0.0f), dc_next(H, 0.0f);
  std::vector<float> dpre(4 * H);

  for (std::size_t ti = T; ti-- > 0;) {
    for (std::size_t h = 0; h < H; ++h) {
      const float dh = grad_out(ti, h) + dh_next[h];
      const float c = cells_(ti, h);
      const float tc = std::tanh(c);
      const float og = gates_(ti, 3 * H + h);
      const float ig = gates_(ti, h);
      const float fg = gates_(ti, H + h);
      const float gg = gates_(ti, 2 * H + h);
      const float dc = dh * og * (1.0f - tc * tc) + dc_next[h];
      const float c_prev = ti > 0 ? cells_(ti - 1, h) : 0.0f;

      dpre[h] = dc * gg * ig * (1.0f - ig);                 // input gate
      dpre[H + h] = dc * c_prev * fg * (1.0f - fg);         // forget gate
      dpre[2 * H + h] = dc * ig * (1.0f - gg * gg);         // candidate
      dpre[3 * H + h] = dh * tc * og * (1.0f - og);         // output gate
      dc_next[h] = dc * fg;
    }
    // Parameter gradients and upstream gradients.
    for (std::size_t j = 0; j < 4 * H; ++j) bias_.grad(0, j) += dpre[j];
    for (std::size_t i = 0; i < input_size_; ++i) {
      const float xv = input_(ti, i);
      float dx = 0.0f;
      for (std::size_t j = 0; j < 4 * H; ++j) {
        if (xv != 0.0f) wx_.grad(i, j) += xv * dpre[j];
        dx += wx_.value(i, j) * dpre[j];
      }
      grad_in(ti, i) = dx;
    }
    std::fill(dh_next.begin(), dh_next.end(), 0.0f);
    if (ti > 0) {
      for (std::size_t i = 0; i < H; ++i) {
        const float hv = hidden_(ti - 1, i);
        float dhp = 0.0f;
        for (std::size_t j = 0; j < 4 * H; ++j) {
          if (hv != 0.0f) wh_.grad(i, j) += hv * dpre[j];
          dhp += wh_.value(i, j) * dpre[j];
        }
        dh_next[i] = dhp;
      }
    }
  }
  return grad_in;
}

}  // namespace affectsys::nn
