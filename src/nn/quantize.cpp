#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>

namespace affectsys::nn {
namespace {

std::int8_t quantize_value(float v, float scale) {
  if (scale <= 0.0f) return 0;
  const float q = std::round(v / scale);
  return static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
}

}  // namespace

Matrix QuantizedTensor::dequantize() const {
  Matrix m(rows, cols);
  const bool per_channel = scales.size() == cols && cols > 1;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const float s = per_channel ? scales[c] : scales[0];
      m(r, c) = static_cast<float>(values[r * cols + c]) * s;
    }
  }
  return m;
}

QuantizedTensor quantize_tensor(const Matrix& m, QuantGranularity g) {
  QuantizedTensor q;
  q.rows = m.rows();
  q.cols = m.cols();
  q.values.resize(m.size());
  if (g == QuantGranularity::kPerChannel && m.cols() > 1) {
    q.scales.assign(m.cols(), 0.0f);
    for (std::size_t c = 0; c < m.cols(); ++c) {
      float mx = 0.0f;
      for (std::size_t r = 0; r < m.rows(); ++r) {
        mx = std::max(mx, std::abs(m(r, c)));
      }
      q.scales[c] = mx / 127.0f;
    }
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) {
        q.values[r * m.cols() + c] = quantize_value(m(r, c), q.scales[c]);
      }
    }
  } else {
    float mx = 0.0f;
    for (float v : m.flat()) mx = std::max(mx, std::abs(v));
    q.scales.assign(1, mx / 127.0f);
    auto src = m.flat();
    for (std::size_t i = 0; i < src.size(); ++i) {
      q.values[i] = quantize_value(src[i], q.scales[0]);
    }
  }
  return q;
}

std::size_t quantize_model_inplace(Sequential& model, QuantGranularity g) {
  std::size_t bytes = 0;
  for (Param* p : model.params()) {
    QuantizedTensor q = quantize_tensor(p->value, g);
    bytes += q.bytes();
    p->value = q.dequantize();
  }
  return bytes;
}

float max_quantization_error(const Matrix& m, QuantGranularity g) {
  const Matrix deq = quantize_tensor(m, g).dequantize();
  float err = 0.0f;
  auto a = m.flat();
  auto b = deq.flat();
  for (std::size_t i = 0; i < a.size(); ++i) {
    err = std::max(err, std::abs(a[i] - b[i]));
  }
  return err;
}

}  // namespace affectsys::nn
