#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace affectsys::nn {
namespace {

std::int8_t quantize_value(float v, float scale) {
  if (scale <= 0.0f) return 0;
  const float q = std::round(v / scale);
  // The clamp also absorbs non-finite quotients (overflowing v / tiny
  // scale): saturation at +-127 is the defined behaviour, never UB from
  // a float->int8 cast out of range.
  return static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
}

}  // namespace

Matrix QuantizedTensor::dequantize() const {
  Matrix m(rows, cols);
  const bool per_channel = scales.size() == cols && cols > 1;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const float s = per_channel ? scales[c] : scales[0];
      m(r, c) = static_cast<float>(values[r * cols + c]) * s;
    }
  }
  return m;
}

QuantizedTensor quantize_tensor(const Matrix& m, QuantGranularity g) {
  QuantizedTensor q;
  q.rows = m.rows();
  q.cols = m.cols();
  q.values.resize(m.size());
  if (g == QuantGranularity::kPerChannel && m.cols() > 1) {
    q.scales.assign(m.cols(), 0.0f);
    for (std::size_t c = 0; c < m.cols(); ++c) {
      float mx = 0.0f;
      for (std::size_t r = 0; r < m.rows(); ++r) {
        mx = std::max(mx, std::abs(m(r, c)));
      }
      q.scales[c] = mx / 127.0f;
    }
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) {
        q.values[r * m.cols() + c] = quantize_value(m(r, c), q.scales[c]);
      }
    }
  } else {
    float mx = 0.0f;
    for (float v : m.flat()) mx = std::max(mx, std::abs(v));
    q.scales.assign(1, mx / 127.0f);
    auto src = m.flat();
    for (std::size_t i = 0; i < src.size(); ++i) {
      q.values[i] = quantize_value(src[i], q.scales[0]);
    }
  }
  return q;
}

std::size_t quantize_model_inplace(Sequential& model, QuantGranularity g) {
  std::size_t bytes = 0;
  for (Param* p : model.params()) {
    QuantizedTensor q = quantize_tensor(p->value, g);
    bytes += q.bytes();
    p->value = q.dequantize();
  }
  return bytes;
}

void quantize_rows_into(const Matrix& m, RowQuantized& q) {
  q.rows = m.rows();
  q.cols = m.cols();
  q.values.resize(m.size());
  q.scales.resize(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const std::span<const float> row = m.row(r);
    float mx = 0.0f;
    std::size_t i = 0;
#if defined(__AVX2__)
    // max is exact and order-independent over finite floats, so the
    // vector reduction equals the scalar scan.
    const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    __m256 vmx = _mm256_setzero_ps();
    for (; i + 8 <= row.size(); i += 8) {
      vmx = _mm256_max_ps(vmx,
                          _mm256_and_ps(_mm256_loadu_ps(row.data() + i),
                                        abs_mask));
    }
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, vmx);
    for (const float v : lanes) mx = std::max(mx, v);
#endif
    for (; i < row.size(); ++i) mx = std::max(mx, std::abs(row[i]));
    // A zero-range row quantizes to scale 0 / all-zero values, which
    // dequantizes exactly (0 * scale == the original 0).
    const float scale = mx / 127.0f;
    q.scales[r] = scale;
    std::int8_t* __restrict out = q.values.data() + r * m.cols();
    if (mx <= 0.0f || !std::isfinite(mx)) {
      std::memset(out, 0, row.size());
      continue;
    }
    // Multiply by the reciprocal instead of dividing per element: a
    // float divide per activation is most of quantization's cost on the
    // hot forward path.  |v| <= mx by construction, so v * inv stays in
    // [-127, 127] up to rounding — the clamp only trims the half-ulp
    // spill at the extremes (and keeps the int8 cast defined).
    const float inv = 127.0f / mx;
    std::size_t c = 0;
#if defined(__AVX2__)
    // 32 floats -> 32 int8 per iteration: scale, convert (vcvtps2dq
    // rounds to nearest even), pack with saturation, restore dword
    // order.  |v| <= mx, so |v * inv| <= 127 and the pack saturation
    // never engages past the +-127 the scalar tail clamps to.
    const __m256 vinv = _mm256_set1_ps(inv);
    const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    const float* __restrict src = row.data();
    for (; c + 32 <= row.size(); c += 32) {
      const __m256i i0 =
          _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(src + c), vinv));
      const __m256i i1 = _mm256_cvtps_epi32(
          _mm256_mul_ps(_mm256_loadu_ps(src + c + 8), vinv));
      const __m256i i2 = _mm256_cvtps_epi32(
          _mm256_mul_ps(_mm256_loadu_ps(src + c + 16), vinv));
      const __m256i i3 = _mm256_cvtps_epi32(
          _mm256_mul_ps(_mm256_loadu_ps(src + c + 24), vinv));
      const __m256i packed = _mm256_packs_epi16(_mm256_packs_epi32(i0, i1),
                                                _mm256_packs_epi32(i2, i3));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c),
                          _mm256_permutevar8x32_epi32(packed, order));
    }
#endif
    for (; c < row.size(); ++c) {
      // lrintf: round to nearest even, matching vcvtps2dq above.
      const long qv = std::lrintf(row[c] * inv);
      out[c] = static_cast<std::int8_t>(
          std::clamp<long>(qv, -127, 127));
    }
  }
}

std::optional<QuantizedMlp> QuantizedMlp::from(Sequential& model) {
  if (model.layer_count() < 2 || model.layer(0).kind() != "flatten") {
    return std::nullopt;
  }
  QuantizedMlp q;
  for (std::size_t i = 1; i < model.layer_count(); ++i) {
    const std::string kind = model.layer(i).kind();
    if (kind == "dense") {
      const std::vector<Param*> params = model.layer(i).params();
      if (params.size() != 2) return std::nullopt;
      DenseLayer dl;
      dl.weight = quantize_tensor(params[0]->value,
                                  QuantGranularity::kPerChannel);
      dl.bias.assign(params[1]->value.flat().begin(),
                     params[1]->value.flat().end());
      if (q.layers_.empty()) q.input_features_ = dl.weight.rows;
      q.output_features_ = dl.weight.cols;
      q.layers_.push_back(std::move(dl));
    } else if (kind == "relu") {
      if (q.layers_.empty()) return std::nullopt;
      q.layers_.back().relu = true;
    } else {
      // tanh/sigmoid heads (or CNN/LSTM bodies) stay on fp32.
      return std::nullopt;
    }
  }
  if (q.layers_.empty()) return std::nullopt;
  return q;
}

const Matrix& QuantizedMlp::forward(const Matrix& x, QuantWorkspace& ws) const {
  if (x.cols() != input_features_) {
    throw std::invalid_argument("QuantizedMlp: input width mismatch");
  }
  const Matrix* cur = &x;
  Matrix* next = &ws.a;
  for (const DenseLayer& dl : layers_) {
    // Per-row activation scales: a batch row's result is a function of
    // that row alone, so batched and single-row execution agree exactly
    // (the batcher's homogeneity contract, int8 edition).
    quantize_rows_into(*cur, ws.act);
    const std::size_t m = ws.act.rows;
    const std::size_t k = dl.weight.rows;
    const std::size_t n = dl.weight.cols;
    ws.acc.resize(m * n);
    int8_gemm(ws.act.values.data(), dl.weight.values.data(), ws.acc.data(),
              m, k, n);
    next->reshape(m, n);
    const bool per_channel = dl.weight.scales.size() == n && n > 1;
    const float* __restrict col_scales = dl.weight.scales.data();
    const float* __restrict bias = dl.bias.data();
    for (std::size_t r = 0; r < m; ++r) {
      const float row_scale = ws.act.scales[r];
      const std::int32_t* __restrict acc = ws.acc.data() + r * n;
      float* __restrict out = next->row(r).data();
      if (per_channel) {
        for (std::size_t c = 0; c < n; ++c) {
          out[c] = static_cast<float>(acc[c]) * (row_scale * col_scales[c]) +
                   bias[c];
        }
      } else {
        const float s = row_scale * col_scales[0];
        for (std::size_t c = 0; c < n; ++c) {
          out[c] = static_cast<float>(acc[c]) * s + bias[c];
        }
      }
      if (dl.relu) {
        for (std::size_t c = 0; c < n; ++c) out[c] = std::max(out[c], 0.0f);
      }
    }
    cur = next;
    next = (next == &ws.a) ? &ws.b : &ws.a;
  }
  return *cur;
}

std::size_t QuantizedMlp::bytes() const {
  std::size_t total = 0;
  for (const DenseLayer& dl : layers_) {
    total += dl.weight.bytes() + dl.bias.size() * sizeof(float);
  }
  return total;
}

void truncate_mantissa(std::span<float> v, unsigned bits) {
  if (bits == 0) return;  // byte-identity guarantee: memory untouched
  bits = std::min(bits, 23u);
  const std::uint32_t mask = ~((std::uint32_t{1} << bits) - 1u);
  for (float& f : v) {
    std::uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    if ((u & 0x7f800000u) == 0x7f800000u) continue;  // NaN/inf: keep
    u &= mask;
    std::memcpy(&f, &u, sizeof(u));
  }
}

float max_quantization_error(const Matrix& m, QuantGranularity g) {
  const Matrix deq = quantize_tensor(m, g).dequantize();
  float err = 0.0f;
  auto a = m.flat();
  auto b = deq.flat();
  for (std::size_t i = 0; i < a.size(); ++i) {
    err = std::max(err, std::abs(a[i] - b[i]));
  }
  return err;
}

}  // namespace affectsys::nn
