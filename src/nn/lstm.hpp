// Long short-term memory layer with full backpropagation through time.
//
// Gate layout in the fused weight matrices is [i | f | g | o] where i/f/o
// are sigmoid gates and g is the tanh candidate.  Forget-gate bias is
// initialized to 1 (standard trick for gradient flow on long sequences).
#pragma once

#include <random>

#include "nn/layer.hpp"

namespace affectsys::nn {

class Lstm : public Layer {
 public:
  Lstm(std::size_t input_size, std::size_t hidden_size, std::mt19937& rng);

  /// (T, input) -> (T, hidden); the initial state is zero for every call.
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Param*> params() override { return {&wx_, &wh_, &bias_}; }
  std::string kind() const override { return "lstm"; }

  std::size_t input_size() const { return input_size_; }
  std::size_t hidden_size() const { return hidden_size_; }

 private:
  std::size_t input_size_;
  std::size_t hidden_size_;
  Param wx_;    ///< (input, 4*hidden)
  Param wh_;    ///< (hidden, 4*hidden)
  Param bias_;  ///< (1, 4*hidden)

  // Caches for BPTT (all (T, ...)).
  Matrix input_;
  Matrix gates_;   ///< post-activation gate values, (T, 4*hidden)
  Matrix cells_;   ///< c_t, (T, hidden)
  Matrix hidden_;  ///< h_t, (T, hidden)
};

}  // namespace affectsys::nn
