// 1-D convolution over the time axis of a sequence Matrix.
//
// Input is (T, in_channels); output is (T, out_channels) with "same"
// zero-padding so stacked conv layers keep the timestep count.
#pragma once

#include <random>

#include "nn/layer.hpp"

namespace affectsys::nn {

class Conv1D : public Layer {
 public:
  /// @param kernel  odd kernel width over time
  Conv1D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::mt19937& rng);

  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string kind() const override { return "conv1d"; }

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel() const { return kernel_; }

 private:
  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  Param weight_;  ///< (kernel * in_channels, out_channels)
  Param bias_;    ///< (1, out_channels)
  Matrix input_;  ///< cached (T, in_channels)
};

}  // namespace affectsys::nn
