// Inverted dropout for regularizing the larger classifiers (the CNN in
// particular overfits the small synthesized corpora — see EXPERIMENTS.md
// Fig 3b discussion).
#pragma once

#include <random>

#include "nn/layer.hpp"

namespace affectsys::nn {

class Dropout : public Layer {
 public:
  /// @param rate  probability of zeroing each activation during training
  Dropout(float rate, unsigned seed);

  /// Training mode applies the mask and scales survivors by 1/(1-rate);
  /// inference mode (the default after set_training(false)) is identity.
  void set_training(bool on) { training_ = on; }
  bool training() const { return training_; }

  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::string kind() const override { return "dropout"; }

  float rate() const { return rate_; }

 private:
  float rate_;
  bool training_ = true;
  std::mt19937 rng_;
  Matrix mask_;  ///< scale per element of the last forward
};

/// Flips training mode on every Dropout layer of a model.
void set_training_mode(class Sequential& model, bool on);

}  // namespace affectsys::nn
