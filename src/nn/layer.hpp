// Layer abstraction for the NN substrate.
//
// Layers transform a sequence Matrix (rows = timesteps / flattened sample,
// cols = features) and implement explicit reverse-mode gradients.  Each
// layer owns named parameter tensors exposed through params() so the
// optimizer, serializer and quantizer can iterate them uniformly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.hpp"

namespace affectsys::nn {

/// A trainable tensor plus its gradient accumulator.
struct Param {
  std::string name;
  Matrix value;
  Matrix grad;

  Param(std::string n, std::size_t rows, std::size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void zero_grad() { grad.fill(0.0f); }
  std::size_t count() const { return value.size(); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass; implementations cache what backward() needs.
  virtual Matrix forward(const Matrix& x) = 0;

  /// Inference-only forward into a caller-owned output matrix.  The
  /// contract: bit-identical to forward(), but free to skip the
  /// backward caches and to reuse `out`'s capacity (the serve layer's
  /// zero-allocation steady state).  The default delegates to
  /// forward(); row-wise layers override with allocation-free bodies.
  virtual void forward_infer(const Matrix& x, Matrix& out) {
    out = forward(x);
  }
  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input).  Must be called after forward() on the same input.
  virtual Matrix backward(const Matrix& grad_out) = 0;

  /// All trainable parameters (possibly empty).  Pointers remain valid for
  /// the lifetime of the layer.
  virtual std::vector<Param*> params() { return {}; }

  /// Identifier used by the serializer.
  virtual std::string kind() const = 0;

  std::size_t param_count() {
    std::size_t n = 0;
    for (Param* p : params()) n += p->count();
    return n;
  }
};

}  // namespace affectsys::nn
