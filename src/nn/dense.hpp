// Fully connected layer applied independently to each row of the input.
#pragma once

#include <random>

#include "nn/layer.hpp"

namespace affectsys::nn {

class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, std::mt19937& rng);

  Matrix forward(const Matrix& x) override;
  void forward_infer(const Matrix& x, Matrix& out) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string kind() const override { return "dense"; }

  std::size_t in_features() const { return weight_.value.rows(); }
  std::size_t out_features() const { return weight_.value.cols(); }

 private:
  Param weight_;  ///< (in, out)
  Param bias_;    ///< (1, out)
  Matrix input_;  ///< cached for backward
};

}  // namespace affectsys::nn
