// Elementwise activation layers and the free functions they wrap.
#pragma once

#include "nn/layer.hpp"

namespace affectsys::nn {

float relu(float x);
float sigmoid(float x);
// std::tanh is used directly for tanh.

/// Numerically stable softmax over a row vector, in place.
void softmax_inplace(std::span<float> logits);

enum class ActKind { kReLU, kTanh, kSigmoid };

class Activation : public Layer {
 public:
  explicit Activation(ActKind kind) : kind_(kind) {}

  Matrix forward(const Matrix& x) override;
  void forward_infer(const Matrix& x, Matrix& out) override;
  Matrix backward(const Matrix& grad_out) override;
  std::string kind() const override;

  ActKind act_kind() const { return kind_; }

 private:
  ActKind kind_;
  Matrix output_;  ///< cached activations (all three derivatives use y)
};

}  // namespace affectsys::nn
