// Softmax cross-entropy loss for single-label classification.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/matrix.hpp"

namespace affectsys::nn {

struct LossResult {
  float loss = 0.0f;
  Matrix grad;  ///< dL/d(logits), same shape as the logits
};

/// Softmax + cross-entropy over a (1, num_classes) logits row.
/// @param target  true class index
LossResult softmax_cross_entropy(const Matrix& logits, std::size_t target);

/// Mean-squared-error over a (1, D) prediction row (regression heads,
/// e.g. the valence/arousal/dominance regressor).
LossResult mse_loss(const Matrix& pred, std::span<const float> target);

/// Softmax probabilities of a logits row (convenience for inference).
std::vector<float> softmax_probs(const Matrix& logits);

/// Softmax into a caller-owned vector (recycled capacity — the
/// steady-state serve path's zero-allocation variant).  Bit-identical
/// to softmax_probs(), which wraps this.
void softmax_probs_into(std::span<const float> logits,
                        std::vector<float>& out);

/// Index of the largest logit.
std::size_t argmax(std::span<const float> v);

}  // namespace affectsys::nn
