#include "nn/gru.hpp"

#include <cmath>

#include "nn/activation.hpp"

namespace affectsys::nn {

Gru::Gru(std::size_t input_size, std::size_t hidden_size, std::mt19937& rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      wx_("wx", input_size, 3 * hidden_size),
      wh_("wh", hidden_size, 3 * hidden_size),
      bias_("bias", 1, 3 * hidden_size) {
  wx_.value.init_xavier(rng, input_size, hidden_size);
  wh_.value.init_xavier(rng, hidden_size, hidden_size);
}

Matrix Gru::forward(const Matrix& x) {
  const std::size_t T = x.rows();
  const std::size_t H = hidden_size_;
  input_ = x;
  gates_ = Matrix(T, 3 * H);
  hidden_ = Matrix(T, H);
  h_linear_ = Matrix(T, H);

  std::vector<float> h_prev(H, 0.0f);
  std::vector<float> a(3 * H), u(3 * H);
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t j = 0; j < 3 * H; ++j) {
      a[j] = bias_.value(0, j);
      u[j] = 0.0f;
    }
    for (std::size_t i = 0; i < input_size_; ++i) {
      const float xv = x(t, i);
      if (xv == 0.0f) continue;
      for (std::size_t j = 0; j < 3 * H; ++j) a[j] += xv * wx_.value(i, j);
    }
    for (std::size_t i = 0; i < H; ++i) {
      const float hv = h_prev[i];
      if (hv == 0.0f) continue;
      for (std::size_t j = 0; j < 3 * H; ++j) u[j] += hv * wh_.value(i, j);
    }
    for (std::size_t h = 0; h < H; ++h) {
      const float r = sigmoid(a[h] + u[h]);
      const float z = sigmoid(a[H + h] + u[H + h]);
      const float un = u[2 * H + h];
      const float n = std::tanh(a[2 * H + h] + r * un);
      const float hv = (1.0f - z) * n + z * h_prev[h];
      gates_(t, h) = r;
      gates_(t, H + h) = z;
      gates_(t, 2 * H + h) = n;
      h_linear_(t, h) = un;
      hidden_(t, h) = hv;
    }
    for (std::size_t h = 0; h < H; ++h) h_prev[h] = hidden_(t, h);
  }
  return hidden_;
}

Matrix Gru::backward(const Matrix& grad_out) {
  const std::size_t T = input_.rows();
  const std::size_t H = hidden_size_;
  Matrix grad_in(T, input_size_);
  std::vector<float> dh_next(H, 0.0f);
  std::vector<float> da(3 * H), du(3 * H);

  for (std::size_t ti = T; ti-- > 0;) {
    for (std::size_t h = 0; h < H; ++h) {
      const float dh = grad_out(ti, h) + dh_next[h];
      const float r = gates_(ti, h);
      const float z = gates_(ti, H + h);
      const float n = gates_(ti, 2 * H + h);
      const float un = h_linear_(ti, h);
      const float h_prev = ti > 0 ? hidden_(ti - 1, h) : 0.0f;

      const float dz = dh * (h_prev - n) * z * (1.0f - z);
      const float dn = dh * (1.0f - z) * (1.0f - n * n);
      const float dr = dn * un * r * (1.0f - r);

      da[h] = dr;
      da[H + h] = dz;
      da[2 * H + h] = dn;
      du[h] = dr;
      du[H + h] = dz;
      du[2 * H + h] = dn * r;
      // Direct path of dh into h_{t-1} through the z-blend.
      dh_next[h] = dh * z;
    }
    for (std::size_t j = 0; j < 3 * H; ++j) bias_.grad(0, j) += da[j];
    for (std::size_t i = 0; i < input_size_; ++i) {
      const float xv = input_(ti, i);
      float dx = 0.0f;
      for (std::size_t j = 0; j < 3 * H; ++j) {
        if (xv != 0.0f) wx_.grad(i, j) += xv * da[j];
        dx += wx_.value(i, j) * da[j];
      }
      grad_in(ti, i) = dx;
    }
    if (ti > 0) {
      for (std::size_t i = 0; i < H; ++i) {
        const float hv = hidden_(ti - 1, i);
        float dhp = 0.0f;
        for (std::size_t j = 0; j < 3 * H; ++j) {
          if (hv != 0.0f) wh_.grad(i, j) += hv * du[j];
          dhp += wh_.value(i, j) * du[j];
        }
        dh_next[i] += dhp;
      }
    }
  }
  return grad_in;
}

}  // namespace affectsys::nn
