#include "nn/dense.hpp"

namespace affectsys::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features,
             std::mt19937& rng)
    : weight_("weight", in_features, out_features),
      bias_("bias", 1, out_features) {
  weight_.value.init_kaiming(rng, in_features);
}

Matrix Dense::forward(const Matrix& x) {
  input_ = x;
  Matrix out = x.matmul(weight_.value);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    for (std::size_t c = 0; c < out.cols(); ++c) row[c] += bias_.value(0, c);
  }
  return out;
}

void Dense::forward_infer(const Matrix& x, Matrix& out) {
  // Same GEMM + bias adds as forward(), minus the input_ backward
  // cache and with the output recycled — bit-identical by matmul_into's
  // contract.
  x.matmul_into(weight_.value, out);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    for (std::size_t c = 0; c < out.cols(); ++c) row[c] += bias_.value(0, c);
  }
}

Matrix Dense::backward(const Matrix& grad_out) {
  // dW = x^T * gOut ; db = column sums of gOut ; dX = gOut * W^T
  weight_.grad += input_.transposed_matmul(grad_out);
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    auto row = grad_out.row(r);
    for (std::size_t c = 0; c < grad_out.cols(); ++c) {
      bias_.grad(0, c) += row[c];
    }
  }
  return grad_out.matmul_transposed(weight_.value);
}

}  // namespace affectsys::nn
