// Gated recurrent unit layer (Cho et al. 2014) with full BPTT.
//
// Not part of the paper's model zoo — included as the natural extension
// study: a GRU carries 3/4 of an LSTM's parameters per hidden unit, so
// it probes whether the paper's "LSTM is most attractive" conclusion
// survives an even lighter recurrent architecture
// (bench/ablation_models).
//
// Gate layout in the fused weight matrices is [r | z | n] where r is the
// reset gate, z the update gate and n the tanh candidate.  The candidate
// uses the reset-gated hidden state: n = tanh(Wn x + r .* (Un h) + bn),
// i.e. the "v3" variant used by cuDNN/PyTorch.
#pragma once

#include <random>

#include "nn/layer.hpp"

namespace affectsys::nn {

class Gru : public Layer {
 public:
  Gru(std::size_t input_size, std::size_t hidden_size, std::mt19937& rng);

  /// (T, input) -> (T, hidden); initial state is zero.
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Param*> params() override { return {&wx_, &wh_, &bias_}; }
  std::string kind() const override { return "gru"; }

  std::size_t input_size() const { return input_size_; }
  std::size_t hidden_size() const { return hidden_size_; }

 private:
  std::size_t input_size_;
  std::size_t hidden_size_;
  Param wx_;    ///< (input, 3*hidden)
  Param wh_;    ///< (hidden, 3*hidden)
  Param bias_;  ///< (1, 3*hidden)

  // BPTT caches.
  Matrix input_;
  Matrix gates_;     ///< post-activation r, z, n per step, (T, 3*hidden)
  Matrix hidden_;    ///< h_t, (T, hidden)
  Matrix h_linear_;  ///< Un * h_{t-1} pre-products needed for dr, (T, hidden)
};

}  // namespace affectsys::nn
