#include "nn/activation.hpp"

#include <algorithm>
#include <cmath>

namespace affectsys::nn {

float relu(float x) { return x > 0.0f ? x : 0.0f; }

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

void softmax_inplace(std::span<float> logits) {
  if (logits.empty()) return;
  const float mx = *std::max_element(logits.begin(), logits.end());
  float sum = 0.0f;
  for (float& v : logits) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (float& v : logits) v /= sum;
}

Matrix Activation::forward(const Matrix& x) {
  Matrix out = x;
  for (float& v : out.flat()) {
    switch (kind_) {
      case ActKind::kReLU:
        v = relu(v);
        break;
      case ActKind::kTanh:
        v = std::tanh(v);
        break;
      case ActKind::kSigmoid:
        v = sigmoid(v);
        break;
    }
  }
  output_ = out;
  return out;
}

void Activation::forward_infer(const Matrix& x, Matrix& out) {
  out.reshape(x.rows(), x.cols());
  const auto in = x.flat();
  auto o = out.flat();
  for (std::size_t i = 0; i < in.size(); ++i) {
    switch (kind_) {
      case ActKind::kReLU:
        o[i] = relu(in[i]);
        break;
      case ActKind::kTanh:
        o[i] = std::tanh(in[i]);
        break;
      case ActKind::kSigmoid:
        o[i] = sigmoid(in[i]);
        break;
    }
  }
}

Matrix Activation::backward(const Matrix& grad_out) {
  Matrix grad_in = grad_out;
  auto g = grad_in.flat();
  auto y = output_.flat();
  for (std::size_t i = 0; i < g.size(); ++i) {
    switch (kind_) {
      case ActKind::kReLU:
        g[i] = y[i] > 0.0f ? g[i] : 0.0f;
        break;
      case ActKind::kTanh:
        g[i] *= 1.0f - y[i] * y[i];
        break;
      case ActKind::kSigmoid:
        g[i] *= y[i] * (1.0f - y[i]);
        break;
    }
  }
  return grad_in;
}

std::string Activation::kind() const {
  switch (kind_) {
    case ActKind::kReLU:
      return "relu";
    case ActKind::kTanh:
      return "tanh";
    case ActKind::kSigmoid:
      return "sigmoid";
  }
  return "unknown";
}

}  // namespace affectsys::nn
