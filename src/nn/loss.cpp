#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/activation.hpp"

namespace affectsys::nn {

LossResult softmax_cross_entropy(const Matrix& logits, std::size_t target) {
  if (logits.rows() != 1) {
    throw std::invalid_argument(
        "softmax_cross_entropy: expected a single logits row");
  }
  if (target >= logits.cols()) {
    throw std::invalid_argument("softmax_cross_entropy: bad target index");
  }
  LossResult res;
  res.grad = logits;
  auto probs = res.grad.flat();
  softmax_inplace(probs);
  res.loss = -std::log(std::max(probs[target], 1e-12f));
  probs[target] -= 1.0f;  // dL/dlogits = p - onehot
  return res;
}

LossResult mse_loss(const Matrix& pred, std::span<const float> target) {
  if (pred.rows() != 1 || pred.cols() != target.size()) {
    throw std::invalid_argument("mse_loss: shape mismatch");
  }
  LossResult res;
  res.grad = Matrix(1, pred.cols());
  const float inv = 1.0f / static_cast<float>(pred.cols());
  for (std::size_t i = 0; i < pred.cols(); ++i) {
    const float d = pred(0, i) - target[i];
    res.loss += d * d * inv;
    res.grad(0, i) = 2.0f * d * inv;
  }
  return res;
}

std::vector<float> softmax_probs(const Matrix& logits) {
  std::vector<float> p;
  softmax_probs_into(logits.flat(), p);
  return p;
}

void softmax_probs_into(std::span<const float> logits,
                        std::vector<float>& out) {
  out.assign(logits.begin(), logits.end());
  softmax_inplace(out);
}

std::size_t argmax(std::span<const float> v) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

}  // namespace affectsys::nn
