// Mini-batch training loop for sequence classification.
#pragma once

#include <functional>
#include <random>
#include <vector>

#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"

namespace affectsys::nn {

/// One labelled sequence sample.
struct Sample {
  Matrix features;  ///< (timesteps, features)
  std::size_t label = 0;
};

using Dataset = std::vector<Sample>;

struct TrainConfig {
  std::size_t epochs = 20;
  std::size_t batch_size = 16;
  float learning_rate = 1e-3f;
  float grad_clip = 5.0f;  ///< 0 disables clipping
  unsigned seed = 1;
  /// Called after each epoch with (epoch, mean training loss).
  std::function<void(std::size_t, float)> on_epoch;
};

struct EvalResult {
  double accuracy = 0.0;
  /// confusion[truth][prediction] counts.
  std::vector<std::vector<std::size_t>> confusion;
};

/// Trains `model` on `train` with Adam; returns final mean epoch loss.
float train(Sequential& model, const Dataset& train, const TrainConfig& cfg);

/// Accuracy + confusion matrix on a held-out set.
EvalResult evaluate(Sequential& model, const Dataset& test,
                    std::size_t num_classes);

/// Deterministic stratified split: roughly `test_fraction` of each class
/// goes to the test set.
void split_dataset(const Dataset& all, double test_fraction, unsigned seed,
                   Dataset& train_out, Dataset& test_out);

}  // namespace affectsys::nn
