#include "nn/dropout.hpp"

#include <stdexcept>

#include "nn/model.hpp"

namespace affectsys::nn {

Dropout::Dropout(float rate, unsigned seed) : rate_(rate), rng_(seed) {
  if (rate < 0.0f || rate >= 1.0f) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

Matrix Dropout::forward(const Matrix& x) {
  if (!training_ || rate_ == 0.0f) {
    mask_ = Matrix(x.rows(), x.cols(), 1.0f);
    return x;
  }
  std::bernoulli_distribution keep(1.0 - rate_);
  const float scale = 1.0f / (1.0f - rate_);
  mask_ = Matrix(x.rows(), x.cols());
  Matrix out = x;
  auto m = mask_.flat();
  auto o = out.flat();
  for (std::size_t i = 0; i < o.size(); ++i) {
    m[i] = keep(rng_) ? scale : 0.0f;
    o[i] *= m[i];
  }
  return out;
}

Matrix Dropout::backward(const Matrix& grad_out) {
  Matrix grad_in = grad_out;
  auto g = grad_in.flat();
  auto m = mask_.flat();
  if (g.size() != m.size()) {
    throw std::invalid_argument("Dropout::backward: shape mismatch");
  }
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= m[i];
  return grad_in;
}

void set_training_mode(Sequential& model, bool on) {
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    if (auto* d = dynamic_cast<Dropout*>(&model.layer(i))) {
      d->set_training(on);
    }
  }
}

}  // namespace affectsys::nn
