#include "nn/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "nn/dropout.hpp"

namespace affectsys::nn {

float train(Sequential& model, const Dataset& train, const TrainConfig& cfg) {
  if (train.empty()) return 0.0f;
  set_training_mode(model, true);
  Adam opt(cfg.learning_rate);
  std::mt19937 rng(cfg.seed);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  float epoch_loss = 0.0f;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    double loss_sum = 0.0;
    std::size_t in_batch = 0;
    for (std::size_t idx : order) {
      const Sample& s = train[idx];
      const Matrix logits = model.forward(s.features);
      const LossResult lr = softmax_cross_entropy(logits, s.label);
      loss_sum += lr.loss;
      model.backward(lr.grad);
      if (++in_batch == cfg.batch_size) {
        auto params = model.params();
        // Average accumulated gradients over the batch.
        const float inv = 1.0f / static_cast<float>(in_batch);
        for (Param* p : params) p->grad *= inv;
        if (cfg.grad_clip > 0.0f) clip_gradients(params, cfg.grad_clip);
        opt.step(params);
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      auto params = model.params();
      const float inv = 1.0f / static_cast<float>(in_batch);
      for (Param* p : params) p->grad *= inv;
      if (cfg.grad_clip > 0.0f) clip_gradients(params, cfg.grad_clip);
      opt.step(params);
    }
    epoch_loss = static_cast<float>(loss_sum / static_cast<double>(train.size()));
    if (cfg.on_epoch) cfg.on_epoch(epoch, epoch_loss);
  }
  return epoch_loss;
}

EvalResult evaluate(Sequential& model, const Dataset& test,
                    std::size_t num_classes) {
  set_training_mode(model, false);
  EvalResult res;
  res.confusion.assign(num_classes, std::vector<std::size_t>(num_classes, 0));
  if (test.empty()) return res;
  std::size_t correct = 0;
  for (const Sample& s : test) {
    const Matrix logits = model.forward(s.features);
    const std::size_t pred = argmax(logits.flat());
    if (pred == s.label) ++correct;
    if (s.label < num_classes && pred < num_classes) {
      ++res.confusion[s.label][pred];
    }
  }
  res.accuracy = static_cast<double>(correct) / static_cast<double>(test.size());
  return res;
}

void split_dataset(const Dataset& all, double test_fraction, unsigned seed,
                   Dataset& train_out, Dataset& test_out) {
  train_out.clear();
  test_out.clear();
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (const Sample& s : all) {
    if (coin(rng) < test_fraction) {
      test_out.push_back(s);
    } else {
      train_out.push_back(s);
    }
  }
  // Guarantee both sides are non-empty for small datasets.
  if (train_out.empty() && !test_out.empty()) {
    train_out.push_back(test_out.back());
    test_out.pop_back();
  }
  if (test_out.empty() && !train_out.empty()) {
    test_out.push_back(train_out.back());
    train_out.pop_back();
  }
}

}  // namespace affectsys::nn
