// Minimal streaming JSON writer for metric snapshots and benchmark
// reports.  Emits pretty-printed, deterministic output (callers control
// key order); handles string escaping and non-finite doubles (written as
// null, since JSON has no NaN/Inf).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace affectsys::obs {

class JsonWriter {
 public:
  explicit JsonWriter(int indent_width = 2) : indent_width_(indent_width) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes the key of the next value inside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// Splices a pre-serialized JSON document in value position (e.g. a
  /// Registry::to_json() snapshot).  The caller guarantees validity.
  JsonWriter& raw_value(std::string_view json);

  /// The document so far.  Valid JSON once all containers are closed.
  const std::string& str() const { return out_; }

  static std::string escape(std::string_view s);

 private:
  void before_value();
  void newline_indent();

  std::string out_;
  int indent_width_;
  int depth_ = 0;
  /// Whether the current container already holds a member (drives comma
  /// placement); index 0 is the document root.
  std::vector<bool> has_member_{false};
  bool pending_key_ = false;
};

}  // namespace affectsys::obs
