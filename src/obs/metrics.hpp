// Observability layer: a process-wide metrics registry with counters,
// gauges, fixed-bucket latency histograms and scoped monotonic-clock
// timers, serializable to JSON (see obs/json.hpp).
//
// Metric names follow `subsystem.metric` (e.g. `h264.decode_ns`,
// `affect.windows_classified`); DESIGN.md "Observability" lists the
// conventions.  Instrumentation sites use the AFFECTSYS_* macros below,
// which resolve the registry entry once (function-local static) and then
// touch a single relaxed atomic — and compile to nothing when the build
// is configured with -DAFFECTSYS_METRICS=OFF, so instrumented hot loops
// carry zero cost in stripped builds.
//
// Thread-safety: registration takes a mutex; recorded metrics are relaxed
// atomics, so instrumented code may run concurrently once handles exist.
// Registered metrics are never removed, so references stay valid for the
// registry's lifetime.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>

namespace affectsys::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper edges of the
/// first N buckets; one overflow bucket catches everything above the
/// last bound.  Bucket layout is fixed at registration, so observation
/// is a binary search plus two relaxed atomic adds.
class Histogram {
 public:
  static constexpr std::size_t kMaxBounds = 24;

  explicit Histogram(std::span<const double> bounds);

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }
  std::span<const double> bounds() const noexcept {
    return {bounds_.data(), n_bounds_};
  }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::array<double, kMaxBounds> bounds_{};
  std::size_t n_bounds_ = 0;
  std::array<std::atomic<std::uint64_t>, kMaxBounds + 1> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram edges for durations in nanoseconds: powers of four
/// from 1 us to ~4.4 s.
std::span<const double> default_latency_bounds_ns();

/// Named metrics, registered on first use and kept for the registry's
/// lifetime.  `global()` is the process-wide instance every AFFECTSYS_*
/// macro records into; independent registries can be created for tests.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Default bounds are default_latency_bounds_ns(); explicit bounds are
  /// honoured only on first registration.
  Histogram& histogram(std::string_view name);
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  /// Zeroes every registered metric (registrations survive, so cached
  /// references stay valid).  Benchmarks call this between phases.
  void reset_values();

  /// Serializes all metrics as a JSON object with "counters", "gauges"
  /// and "histograms" sections, keys sorted by metric name.
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Builds the registry name for a metric inside a namespace scope:
/// "scope.name" — or `name` unchanged when `scope` is empty, so code
/// written against the un-prefixed conventions keeps producing the
/// exact names single-session tools already parse.
std::string scoped_metric_name(std::string_view scope, std::string_view name);

/// A per-instance metric namespace: every lookup goes through
/// scoped_metric_name(), so N concurrent sessions each get their own
/// `serve.s3.affect.windows_dropped`-style series instead of colliding
/// into one aggregate counter.  A default-constructed (empty-scope)
/// MetricScope resolves the legacy un-prefixed names, byte-compatible
/// with the AFFECTSYS_* macro sites.
///
/// Lookups take the registry mutex; callers on hot paths should resolve
/// once at construction and cache the returned references (they stay
/// valid for the registry's lifetime).
class MetricScope {
 public:
  MetricScope() : reg_(&Registry::global()) {}
  explicit MetricScope(std::string scope, Registry& reg = Registry::global())
      : scope_(std::move(scope)), reg_(&reg) {}

  Counter& counter(std::string_view name) const {
    return reg_->counter(scoped_metric_name(scope_, name));
  }
  Gauge& gauge(std::string_view name) const {
    return reg_->gauge(scoped_metric_name(scope_, name));
  }
  Histogram& histogram(std::string_view name) const {
    return reg_->histogram(scoped_metric_name(scope_, name));
  }
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds) const {
    return reg_->histogram(scoped_metric_name(scope_, name), bounds);
  }

  const std::string& scope() const { return scope_; }
  Registry& registry() const { return *reg_; }

 private:
  std::string scope_;
  Registry* reg_;
};

/// Records the lifetime of a scope into a histogram, in nanoseconds,
/// using the monotonic (steady) clock.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histogram& h) noexcept
      : h_(&h), t0_(std::chrono::steady_clock::now()) {}
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;
  ~ScopedTimerNs() {
    const auto dt = std::chrono::steady_clock::now() - t0_;
    h_->observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace affectsys::obs

// ---------------------------------------------------------------------------
// Instrumentation macros.  Each expands to a function-local static metric
// handle (one registry lookup per site, ever) plus a relaxed atomic
// operation — or to nothing when AFFECTSYS_METRICS is off.
// ---------------------------------------------------------------------------

#define AFFECTSYS_OBS_CONCAT2_(a, b) a##b
#define AFFECTSYS_OBS_CONCAT_(a, b) AFFECTSYS_OBS_CONCAT2_(a, b)

#if defined(AFFECTSYS_METRICS) && AFFECTSYS_METRICS

/// Adds `n` to counter `name`.
#define AFFECTSYS_COUNT(name, n)                                     \
  do {                                                               \
    static ::affectsys::obs::Counter& obs_counter_ =                 \
        ::affectsys::obs::Registry::global().counter(name);          \
    obs_counter_.add(static_cast<std::uint64_t>(n));                 \
  } while (0)

/// Sets gauge `name` to `v`.
#define AFFECTSYS_GAUGE_SET(name, v)                                 \
  do {                                                               \
    static ::affectsys::obs::Gauge& obs_gauge_ =                     \
        ::affectsys::obs::Registry::global().gauge(name);            \
    obs_gauge_.set(static_cast<double>(v));                          \
  } while (0)

/// Records `v` into histogram `name`.
#define AFFECTSYS_OBSERVE(name, v)                                   \
  do {                                                               \
    static ::affectsys::obs::Histogram& obs_hist_ =                  \
        ::affectsys::obs::Registry::global().histogram(name);        \
    obs_hist_.observe(static_cast<double>(v));                       \
  } while (0)

/// Times the rest of the enclosing scope into histogram `name` (ns).
#define AFFECTSYS_TIME_SCOPE(name)                                           \
  static ::affectsys::obs::Histogram& AFFECTSYS_OBS_CONCAT_(                 \
      obs_timer_hist_, __LINE__) =                                           \
      ::affectsys::obs::Registry::global().histogram(name);                  \
  ::affectsys::obs::ScopedTimerNs AFFECTSYS_OBS_CONCAT_(obs_timer_,          \
                                                        __LINE__)(           \
      AFFECTSYS_OBS_CONCAT_(obs_timer_hist_, __LINE__))

#else  // metrics disabled: instrumentation compiles away entirely.

#define AFFECTSYS_COUNT(name, n) ((void)0)
#define AFFECTSYS_GAUGE_SET(name, v) ((void)0)
#define AFFECTSYS_OBSERVE(name, v) ((void)0)
#define AFFECTSYS_TIME_SCOPE(name) ((void)0)

#endif  // AFFECTSYS_METRICS
