#include "obs/alloc_hooks.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/metrics.hpp"

namespace affectsys::obs {
namespace {

// constinit: the replacement operators below can run before any static
// constructor, so the counters must be constant-initialized.
constinit std::atomic<std::uint64_t> g_news{0};
constinit std::atomic<std::uint64_t> g_frees{0};

}  // namespace

bool alloc_tracking_enabled() noexcept {
#if AFFECTSYS_METRICS
  return true;
#else
  return false;
#endif
}

std::uint64_t alloc_count() noexcept {
  return g_news.load(std::memory_order_relaxed);
}

std::uint64_t free_count() noexcept {
  return g_frees.load(std::memory_order_relaxed);
}

void publish_alloc_gauges() {
  const std::uint64_t news = alloc_count();
  const std::uint64_t frees = free_count();
  AFFECTSYS_GAUGE_SET("obs.alloc.news", static_cast<double>(news));
  AFFECTSYS_GAUGE_SET("obs.alloc.live",
                      static_cast<double>(news) - static_cast<double>(frees));
}

}  // namespace affectsys::obs

#if AFFECTSYS_METRICS

// Replacement global allocation functions.  One strong definition set
// for the whole program: every operator new in every translation unit
// routes here, which is what makes alloc_count() a trustworthy "did
// this region allocate" probe.  malloc/free are the underlying
// allocator (sanitizer builds intercept those, so ASan/TSan still see
// every allocation).
namespace {

void* counted_alloc(std::size_t size) {
  affectsys::obs::g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t al) {
  affectsys::obs::g_news.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  void* p = nullptr;
  // posix_memalign requires a pointer-multiple alignment; every
  // extended-alignment request already satisfies that.
  if (posix_memalign(&p, a < sizeof(void*) ? sizeof(void*) : a,
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;  // delete nullptr is a no-op, not a free
  affectsys::obs::g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(size, al)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(size, al)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, al);
}
void* operator new[](std::size_t size, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, al);
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}

#endif  // AFFECTSYS_METRICS
