#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace affectsys::obs {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  out_ += '\n';
  out_.append(static_cast<std::size_t>(depth_ * indent_width_), ' ');
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // key() already placed the comma and indent
  }
  if (has_member_.back()) out_ += ',';
  if (depth_ > 0) newline_indent();
  has_member_.back() = true;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (has_member_.back()) out_ += ',';
  newline_indent();  // depth_ already counts the enclosing object
  out_ += '"';
  out_ += escape(k);
  out_ += "\": ";
  has_member_.back() = true;
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  ++depth_;
  has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = has_member_.back();
  has_member_.pop_back();
  --depth_;
  if (had) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  ++depth_;
  has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = has_member_.back();
  has_member_.pop_back();
  --depth_;
  if (had) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  before_value();
  out_ += json;
  return *this;
}

}  // namespace affectsys::obs
