#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace affectsys::obs {

Histogram::Histogram(std::span<const double> bounds) {
  if (bounds.size() > kMaxBounds) {
    throw std::invalid_argument("Histogram: too many bucket bounds");
  }
  if (!std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument("Histogram: bounds must be sorted");
  }
  n_bounds_ = bounds.size();
  std::copy(bounds.begin(), bounds.end(), bounds_.begin());
}

void Histogram::observe(double v) noexcept {
  const double* begin = bounds_.data();
  const double* end = begin + n_bounds_;
  const double* it = std::lower_bound(begin, end, v);
  buckets_[static_cast<std::size_t>(it - begin)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= n_bounds_; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::span<const double> default_latency_bounds_ns() {
  // Powers of four from 1 us to ~4.4 s: wide enough for a NAL parse and
  // for a whole mode-profiling decode, in 12 buckets.
  static const double kBounds[] = {1e3,    4e3,    16e3,   64e3,
                                   256e3,  1024e3, 4096e3, 16384e3,
                                   65536e3, 262144e3, 1048576e3, 4194304e3};
  return kBounds;
}

std::string scoped_metric_name(std::string_view scope, std::string_view name) {
  if (scope.empty()) return std::string(name);
  std::string out;
  out.reserve(scope.size() + 1 + name.size());
  out.append(scope);
  out.push_back('.');
  out.append(name);
  return out;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  return histogram(name, default_latency_bounds_ns());
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name),
                             std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

void Registry::reset_values() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string Registry::to_json() const {
  std::lock_guard lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h->count());
    w.key("sum").value(h->sum());
    w.key("mean").value(h->mean());
    w.key("buckets").begin_array();
    const auto bounds = h->bounds();
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
      if (h->bucket_count(i) == 0) continue;  // keep snapshots compact
      w.begin_object();
      if (i < bounds.size()) {
        w.key("le").value(bounds[i]);
      } else {
        w.key("le").value("+inf");
      }
      w.key("count").value(h->bucket_count(i));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace affectsys::obs
