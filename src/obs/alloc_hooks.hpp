// Process-wide allocation counting: global operator new/delete
// replacements (compiled in only under AFFECTSYS_METRICS) feeding two
// relaxed atomic counters, so a steady-state code path can *prove* it
// performs zero heap allocation — the gate the pooled serve path and
// the PR 3 zero-allocation feature extraction run behind.
//
// Cost when enabled: one relaxed fetch_add per new/delete.  When
// AFFECTSYS_METRICS is off the replacement operators are not compiled
// at all and both counts read 0.
//
// Usage pattern (tests / bench):
//   const auto before = obs::alloc_count();
//   ... steady-state region ...
//   EXPECT_EQ(obs::alloc_count() - before, 0u);   // if hooks enabled
#pragma once

#include <cstdint>

namespace affectsys::obs {

/// True when the counting operator new/delete replacements are linked
/// in (AFFECTSYS_METRICS builds).
bool alloc_tracking_enabled() noexcept;

/// operator new invocations (all variants) since process start; 0 when
/// tracking is off.
std::uint64_t alloc_count() noexcept;

/// operator delete invocations since process start; 0 when tracking is
/// off.
std::uint64_t free_count() noexcept;

/// Publishes the counters into the metric registry gauges
/// `obs.alloc.news` and `obs.alloc.live` (news - frees).  Call from a
/// bench/report site; the hooks themselves never touch the registry
/// (the registry allocates).
void publish_alloc_gauges();

}  // namespace affectsys::obs
