#include "net/jitter.hpp"

#include <utility>

namespace affectsys::net {

bool JitterBuffer::insert(MediaPacket p, std::uint64_t now) {
  const std::uint64_t ext = unroller_.unroll(p.seq);
  if (!have_next_) {
    // The stream starts wherever the first arrival says it does.
    next_ext_ = ext;
    have_next_ = true;
  }
  if (ext < next_ext_) {
    ++stats_.late_dropped;
    return false;
  }
  if (buf_.count(ext) != 0) {
    ++stats_.duplicates_dropped;
    return false;
  }
  buf_.emplace(ext, Entry{std::move(p), now});
  ++stats_.inserted;
  return true;
}

bool JitterBuffer::would_accept(std::uint16_t seq) const {
  const std::uint64_t ext = unroller_.peek(seq);
  if (have_next_ && ext < next_ext_) return false;
  return buf_.count(ext) == 0;
}

std::vector<Released> JitterBuffer::pop_due(std::uint64_t now) {
  std::vector<Released> out;
  while (!buf_.empty()) {
    auto head = buf_.begin();
    if (head->first == next_ext_) {
      out.push_back(Released{false,
                             static_cast<std::uint16_t>(head->first & 0xFFFF),
                             std::move(head->second.packet)});
      buf_.erase(head);
      ++next_ext_;
      ++stats_.released;
      continue;
    }
    // Head is blocked on a gap.  Give the missing packets depth_ticks
    // (measured from the oldest buffered arrival) to show up.
    if (now >= head->second.arrival + cfg_.depth_ticks) {
      for (std::uint64_t ext = next_ext_; ext < head->first; ++ext) {
        out.push_back(
            Released{true, static_cast<std::uint16_t>(ext & 0xFFFF), {}});
        ++stats_.lost_declared;
      }
      next_ext_ = head->first;
      continue;
    }
    break;
  }
  return out;
}

}  // namespace affectsys::net
