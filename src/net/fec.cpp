#include "net/fec.hpp"

#include <algorithm>
#include <utility>

namespace affectsys::net {

std::optional<MediaPacket> FecEncoder::add(const MediaPacket& p) {
  if (!cfg_.enabled || cfg_.group == 0) return std::nullopt;
  if (members_ == 0) base_ = p.seq;
  serialize_packet_into(p, blob_);
  if (blob_.size() > acc_.size()) acc_.resize(blob_.size(), 0);
  for (std::size_t i = 0; i < blob_.size(); ++i) acc_[i] ^= blob_[i];
  len_xor_ ^= static_cast<std::uint16_t>(blob_.size());
  if (++members_ < cfg_.group) return std::nullopt;

  MediaPacket parity;
  parity.seq = parity_seq_++;
  parity.timestamp = p.timestamp;
  parity.generation = p.generation;
  // One encoder never mixes layers (the transport runs one per lane),
  // so the group's layer is the last member's.  The receiver routes the
  // parity to the matching lane's recovery by this field.
  parity.layer = p.layer;
  parity.kind = PacketKind::kParity;
  parity.fec_base = base_;
  parity.fec_count = cfg_.group;
  parity.payload.reserve(2 + acc_.size());
  parity.payload.push_back(static_cast<std::uint8_t>(len_xor_ >> 8));
  parity.payload.push_back(static_cast<std::uint8_t>(len_xor_ & 0xFF));
  parity.payload.insert(parity.payload.end(), acc_.begin(), acc_.end());
  acc_.clear();
  len_xor_ = 0;
  members_ = 0;
  ++parity_emitted_;
  return parity;
}

core::BufferRef FecRecovery::make_blob(std::span<const std::uint8_t> bytes) {
  if (!pool_) {
    // Sized for the prune() cap (1024 cached blobs) plus slack for the
    // handful alive mid-recover; 2 KiB blocks cover any MTU-bounded
    // wire packet, with heap fallback beyond.
    pool_ = std::make_unique<core::BufferPool>(
        core::BufferPoolConfig{.block_size = 2048, .blocks = 1100});
  }
  core::BufferRef ref = pool_->acquire(bytes.size());
  std::copy(bytes.begin(), bytes.end(), ref.data());
  return ref;
}

void FecRecovery::add_data(const MediaPacket& p) {
  if (!cfg_.enabled) return;
  ++stats_.data_seen;
  serialize_packet_into(p, wire_scratch_);
  blobs_.emplace(unroller_.unroll(p.seq), make_blob(wire_scratch_));
  prune();
}

void FecRecovery::add_parity(const MediaPacket& p) {
  if (!cfg_.enabled) return;
  ++stats_.parity_seen;
  if (p.fec_count == 0 || p.payload.size() < 2) {
    ++stats_.groups_unrecoverable;
    return;
  }
  parities_.push_back(p);
}

std::vector<MediaPacket> FecRecovery::recover() {
  std::vector<MediaPacket> rebuilt;
  if (!cfg_.enabled) return rebuilt;
  const std::uint64_t horizon =
      blobs_.empty() ? 0 : blobs_.rbegin()->first;
  auto it = parities_.begin();
  while (it != parities_.end()) {
    const MediaPacket& parity = *it;
    const std::uint64_t base = unroller_.peek(parity.fec_base);
    std::uint64_t missing_ext = 0;
    int missing = 0;
    for (std::uint64_t ext = base; ext < base + parity.fec_count; ++ext) {
      if (blobs_.count(ext) == 0) {
        missing_ext = ext;
        ++missing;
      }
    }
    if (missing == 0) {
      ++stats_.groups_complete;
      it = parities_.erase(it);
      continue;
    }
    if (missing > 1) {
      // Stragglers may still arrive; give up once the stream has moved
      // far past the group (bounded memory, deterministic either way).
      if (horizon > base + parity.fec_count + 512) {
        ++stats_.groups_unrecoverable;
        it = parities_.erase(it);
      } else {
        ++it;
      }
      continue;
    }
    // Exactly one member missing: XOR the survivors back out.
    std::vector<std::uint8_t> blob(parity.payload.begin() + 2,
                                   parity.payload.end());
    std::uint16_t len =
        static_cast<std::uint16_t>((parity.payload[0] << 8) |
                                   parity.payload[1]);
    for (std::uint64_t ext = base; ext < base + parity.fec_count; ++ext) {
      if (ext == missing_ext) continue;
      const std::span<const std::uint8_t> member = blobs_.at(ext).span();
      for (std::size_t i = 0; i < member.size() && i < blob.size(); ++i) {
        blob[i] ^= member[i];
      }
      len ^= static_cast<std::uint16_t>(member.size());
    }
    bool ok = len >= kWireHeaderBytes && len <= blob.size();
    if (ok) {
      blob.resize(len);
      if (auto packet = parse_packet(blob)) {
        blobs_.emplace(missing_ext, make_blob(blob));
        rebuilt.push_back(std::move(*packet));
        ++stats_.packets_recovered;
      } else {
        ok = false;
      }
    }
    if (!ok) ++stats_.groups_unrecoverable;
    it = parities_.erase(it);
  }
  prune();
  return rebuilt;
}

void FecRecovery::prune() {
  // Bounded cache: the stream only ever needs the last few groups.
  while (blobs_.size() > 1024) blobs_.erase(blobs_.begin());
}

}  // namespace affectsys::net
