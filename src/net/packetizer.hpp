// RTP-style H.264 packetization (RFC 6184-shaped, wire format ours).
//
// Packetizer: one access unit of NAL units in, MediaPackets out.  NALs
// larger than the MTU are split into kFragStart/kFragMiddle/kFragEnd
// fragments (FU-A analogue: the NAL header byte rides in the packet
// header, payload bytes are split raw).  Runs of two or more small NALs
// are coalesced into one kAggregate packet (STAP-A analogue:
// [u16 size][header byte][payload] per unit).  The marker flag is set
// on the last packet of each access unit.
//
// Depacketizer: consumes the jitter buffer's in-order release stream
// and reassembles NAL units, turning declared losses and broken
// fragment chains into explicit loss events the session forwards to
// Decoder::notify_loss() — a dropped packet produces *missing* data,
// not malformed data, so without this signal the resilient decoder
// would never know to resync.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "h264/nal.hpp"
#include "net/jitter.hpp"
#include "net/wire.hpp"

namespace affectsys::net {

struct PacketizerConfig {
  /// Maximum payload bytes per packet; NALs above this fragment.
  std::size_t mtu = 128;
  /// Coalesce runs of >= 2 small NALs into aggregate packets.
  bool aggregate = true;
};

class Packetizer {
 public:
  explicit Packetizer(const PacketizerConfig& cfg) : cfg_(cfg) {}

  /// Packetizes one access unit; `timestamp`/`generation`/`layer` stamp
  /// every packet, the last packet carries the marker.  Sequence numbers
  /// continue across calls (and wrap at 65535 by design).  Per-layer
  /// sequence spaces come from giving each layer its own Packetizer —
  /// one instance never interleaves layers.
  std::vector<MediaPacket> packetize(std::span<const h264::NalUnit> nals,
                                     std::uint32_t timestamp,
                                     std::uint32_t generation,
                                     std::uint8_t layer = 0);

  std::uint16_t next_seq() const { return seq_; }

 private:
  PacketizerConfig cfg_;
  std::uint16_t seq_ = 0;
};

/// One NAL unit reassembled from the wire, with its media position.
struct ReceivedNal {
  h264::NalUnit nal;
  std::uint32_t timestamp = 0;
  std::uint32_t generation = 0;
  std::uint8_t layer = 0;  ///< simulcast layer the unit arrived on
};

/// One depacketizer output: a NAL unit, or an explicit loss event where
/// media went missing (a declared-lost packet or an unreassemblable
/// fragment chain), in stream order.
struct DepacketizerEvent {
  bool loss = false;
  ReceivedNal nal;  ///< valid when !loss
};

struct DepacketizerStats {
  std::uint64_t nals_out = 0;
  std::uint64_t loss_events = 0;
  std::uint64_t fragments_reassembled = 0;  ///< NALs rebuilt from fragments
  std::uint64_t aggregates_split = 0;       ///< aggregate packets expanded
  std::uint64_t malformed = 0;              ///< undecodable packet contents
};

class Depacketizer {
 public:
  /// Consumes jitter-buffer releases (already in sequence order) and
  /// emits NAL units / loss events in stream order.
  std::vector<DepacketizerEvent> push(std::span<const Released> releases);

  const DepacketizerStats& stats() const { return stats_; }

 private:
  void abort_assembly(std::vector<DepacketizerEvent>& out);

  DepacketizerStats stats_;
  bool assembling_ = false;
  bool dropping_frags_ = false;  ///< chain lost its start; eat the rest
  std::uint8_t frag_header_ = 0;
  std::uint32_t frag_ts_ = 0;
  std::uint32_t frag_gen_ = 0;
  std::uint8_t frag_layer_ = 0;
  std::vector<std::uint8_t> frag_payload_;
};

}  // namespace affectsys::net
