#include "net/channel.hpp"

#include <algorithm>

namespace affectsys::net {

void NetChannel::send(MediaPacket p, std::uint64_t now) {
  ++stats_.sent;
  const bool parity = p.kind == PacketKind::kParity;
  // An armed burst swallows packets without consulting the plan: the
  // whole burst was one fault decision.
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    ++stats_.burst_dropped;
    ++(parity ? stats_.dropped_parity : stats_.dropped_data);
    return;
  }
  std::uint64_t arrival = now;
  std::uint64_t order = (order_ += 2);
  if (plan_ != nullptr) {
    if (const auto kind = plan_->next(fault::kNetKinds)) {
      if (counts_ != nullptr) counts_->record(*kind);
      switch (*kind) {
        case fault::FaultKind::kPacketLoss:
          ++(parity ? stats_.dropped_parity : stats_.dropped_data);
          return;
        case fault::FaultKind::kBurstLoss:
          burst_remaining_ = 1 + plan_->draw(3);
          ++stats_.burst_dropped;
          ++(parity ? stats_.dropped_parity : stats_.dropped_data);
          return;
        case fault::FaultKind::kPacketDelay:
          arrival = now + 1 +
                    plan_->draw(std::max<std::uint64_t>(cfg_.max_delay_ticks, 1));
          ++stats_.delayed;
          break;
        case fault::FaultKind::kPacketDuplicate:
          // The copy lands directly behind the original.
          pending_.emplace(std::make_pair(arrival, order + 1), p);
          ++stats_.duplicated;
          break;
        case fault::FaultKind::kPacketReorder:
          // One slot past the next send's order key (order_ + 2).
          order += 3;
          ++stats_.reordered;
          break;
        default:
          break;  // non-net kinds cannot be returned for this mask
      }
    }
  }
  pending_.emplace(std::make_pair(arrival, order), std::move(p));
}

std::vector<MediaPacket> NetChannel::deliver(std::uint64_t now) {
  std::vector<MediaPacket> out;
  while (!pending_.empty() && pending_.begin()->first.first <= now) {
    out.push_back(std::move(pending_.begin()->second));
    pending_.erase(pending_.begin());
    ++stats_.delivered;
  }
  return out;
}

}  // namespace affectsys::net
