// Deterministic receive-side jitter buffer.
//
// Packets are inserted in network-arrival order and released strictly in
// sequence order.  Time is the serve tick — no wall clock anywhere — so
// a given insertion schedule always produces the identical release
// schedule.  When the head of the buffer is blocked by a missing
// sequence number, the buffer waits until the oldest *buffered* packet
// has aged `depth_ticks` ticks, then declares every sequence in the gap
// lost and resumes.  A delay fault shorter than the configured depth is
// therefore healed silently; a longer one degrades into an explicit
// loss event the depacketizer forwards to the decoder's resync path.
//
// All ordering runs on SeqUnroller's extended axis, so behaviour is
// identical across the 65535 -> 0 wrap (the satellite-2 bug class).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/wire.hpp"

namespace affectsys::net {

struct JitterConfig {
  /// Ticks the oldest buffered packet may wait on a missing predecessor
  /// before the gap is declared lost.  0 releases/declares immediately.
  std::uint64_t depth_ticks = 2;
};

struct JitterStats {
  std::uint64_t inserted = 0;
  std::uint64_t released = 0;
  std::uint64_t lost_declared = 0;      ///< sequence numbers given up on
  std::uint64_t duplicates_dropped = 0; ///< same seq already buffered/seen
  std::uint64_t late_dropped = 0;       ///< arrived after seq was passed
};

/// One jitter-buffer release: either a packet, in sequence order, or an
/// explicit per-sequence loss declaration.
struct Released {
  bool lost = false;  ///< true: `seq` was declared lost, `packet` empty
  std::uint16_t seq = 0;
  MediaPacket packet;
};

class JitterBuffer {
 public:
  explicit JitterBuffer(const JitterConfig& cfg) : cfg_(cfg) {}

  /// Buffers a packet that arrived at tick `now`.  Returns false when
  /// the packet was dropped as a duplicate or as late (its sequence was
  /// already released or declared lost).
  bool insert(MediaPacket p, std::uint64_t now);

  /// True when a packet with this sequence would still be accepted —
  /// the FEC layer uses this to avoid resurrecting already-passed seqs.
  bool would_accept(std::uint16_t seq) const;

  /// Releases everything due at tick `now`: in-order packets plus loss
  /// declarations for gaps that timed out.
  std::vector<Released> pop_due(std::uint64_t now);

  std::size_t buffered() const { return buf_.size(); }
  const JitterStats& stats() const { return stats_; }

 private:
  struct Entry {
    MediaPacket packet;
    std::uint64_t arrival = 0;
  };

  JitterConfig cfg_;
  JitterStats stats_;
  SeqUnroller unroller_;
  std::map<std::uint64_t, Entry> buf_;  ///< extended seq -> entry
  bool have_next_ = false;
  std::uint64_t next_ext_ = 0;  ///< next extended seq to release
};

}  // namespace affectsys::net
