// Media transport wire layer: the packet every other src/net stage
// speaks, its byte-exact serialization (what XOR FEC protects and the
// bench pushes through), and wrap-safe RFC 1982-style serial arithmetic
// for the 16-bit sequence-number space.
//
// The format is RTP-shaped but deliberately minimal: a fixed 16-byte
// header carrying sequence/timestamp/generation plus a kind tag that
// folds the H.264 payload structure (single NAL, FU-style fragment,
// STAP-style aggregate, FEC parity) into one enum instead of RTP's
// payload-type indirection.  Timestamps count access units, not a
// 90 kHz clock: every stage in this repo is tick-driven and wall-clock
// free, and replay identity rests on that.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace affectsys::net {

/// Wrap-safe "a is strictly newer than b" over uint16 sequence numbers:
/// 0 is newer than 65535.  Naive `a > b` breaks at the wrap — the
/// jitter-buffer satellite bug this module exists to prevent.
constexpr bool seq16_newer(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(a - b)) > 0;
}

/// Signed serial distance a - b in [-32768, 32767].
constexpr std::int32_t seq16_delta(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(a - b));
}

/// Unrolls wrap-prone 16-bit sequence numbers onto a monotonic 64-bit
/// axis (nearest-interpretation relative to the highest value seen), so
/// ordered containers can key on sequence without a custom comparator
/// that would violate strict weak ordering across the wrap.
class SeqUnroller {
 public:
  /// Extended sequence for `seq`, updating the high-water mark.
  std::uint64_t unroll(std::uint16_t seq) {
    const std::uint64_t ext = peek(seq);
    if (ext > highest_ || !init_) {
      highest_ = ext;
      init_ = true;
    }
    return ext;
  }

  /// Extended sequence without advancing the high-water mark.
  std::uint64_t peek(std::uint16_t seq) const {
    if (!init_) {
      // Bias the first epoch so a backwards wrap at stream start cannot
      // underflow the extended axis.
      return (1ull << 16) | seq;
    }
    return highest_ +
           seq16_delta(seq, static_cast<std::uint16_t>(highest_ & 0xFFFF));
  }

 private:
  bool init_ = false;
  std::uint64_t highest_ = 0;
};

/// Payload structure tag (collapses RTP payload types + FU/STAP headers).
enum class PacketKind : std::uint8_t {
  kSingle = 0,     ///< one whole NAL unit
  kFragStart = 1,  ///< first fragment of a large NAL
  kFragMiddle = 2, ///< interior fragment
  kFragEnd = 3,    ///< final fragment
  kAggregate = 4,  ///< several small NALs ([u16 size][header][payload])*
  kParity = 5,     ///< XOR FEC parity (its own seq space; see fec.hpp)
};

/// Simulcast layers addressable on the wire.  The layer id shares
/// header byte 11 with the marker flag — (layer << 1) | marker — so a
/// layer-0 packet serializes byte-identically to the pre-simulcast
/// format and single-layer captures replay unchanged.
inline constexpr std::uint8_t kMaxLayers = 4;

/// One transport packet.  Data packets (every kind but kParity) share
/// one sequence space *per layer*; parity packets ride their own
/// counter so a lost parity never shows up as a media gap at the
/// jitter buffer.
struct MediaPacket {
  std::uint16_t seq = 0;
  std::uint32_t timestamp = 0;   ///< access-unit index within generation
  std::uint32_t generation = 0;  ///< clip-loop count (receiver reset cue)
  PacketKind kind = PacketKind::kSingle;
  bool marker = false;           ///< last packet of its access unit
  std::uint8_t layer = 0;        ///< simulcast layer id (< kMaxLayers)
  std::uint8_t nal_header = 0;   ///< NAL header byte for single/fragment
  std::uint16_t fec_base = 0;    ///< kParity: first covered data seq
  std::uint8_t fec_count = 0;    ///< kParity: covered data packets
  std::vector<std::uint8_t> payload;

  bool operator==(const MediaPacket&) const = default;
};

inline constexpr std::size_t kWireHeaderBytes = 16;

/// Byte-exact wire form (16-byte big-endian header + payload).  This is
/// the blob XOR parity protects, so recovery reproduces the entire
/// packet — header fields included — not just the payload.
std::vector<std::uint8_t> serialize_packet(const MediaPacket& p);

/// Serializes into a caller-owned buffer (cleared first, capacity
/// kept), so per-packet senders reuse one wire staging vector.
void serialize_packet_into(const MediaPacket& p,
                           std::vector<std::uint8_t>& out);

/// Parses a wire blob; nullopt on truncation or a malformed header.
std::optional<MediaPacket> parse_packet(std::span<const std::uint8_t> bytes);

}  // namespace affectsys::net
