#include "net/transport.hpp"

#include <utility>

namespace affectsys::net {

void TransportLink::send(std::span<const h264::NalUnit> nals,
                         std::uint32_t timestamp, std::uint32_t generation,
                         std::uint64_t now) {
  nals_sent_ += nals.size();
  std::vector<MediaPacket> packets =
      packetizer_.packetize(nals, timestamp, generation);
  for (MediaPacket& p : packets) {
    ++packets_sent_;
    // Parity covers the packet exactly as sent (pre-channel).
    std::optional<MediaPacket> parity = fec_enc_.add(p);
    channel_.send(std::move(p), now);
    if (parity) channel_.send(std::move(*parity), now);
  }
}

std::vector<DepacketizerEvent> TransportLink::receive(std::uint64_t now) {
  for (MediaPacket& p : channel_.deliver(now)) {
    if (p.kind == PacketKind::kParity) {
      fec_rec_.add_parity(p);
      continue;
    }
    fec_rec_.add_data(p);
    jitter_.insert(std::move(p), now);
  }
  // Feed anything FEC rebuilt back into the buffer — unless its slot
  // already slipped past (the jitter depth gave up before the parity
  // and the survivors all arrived).
  for (MediaPacket& p : fec_rec_.recover()) {
    if (jitter_.would_accept(p.seq)) {
      jitter_.insert(std::move(p), now);
      ++recovered_accepted_;
    } else {
      ++recovered_late_;
    }
  }
  return depack_.push(jitter_.pop_due(now));
}

TransportStats TransportLink::stats() const {
  TransportStats s;
  s.nals_sent = nals_sent_;
  s.packets_sent = packets_sent_;
  s.parity_sent = fec_enc_.parity_emitted();
  s.packets_lost = channel_.stats().dropped();
  s.packets_recovered = recovered_accepted_;
  s.recovered_late = recovered_late_;
  s.nals_received = depack_.stats().nals_out;
  s.loss_events = depack_.stats().loss_events;
  return s;
}

}  // namespace affectsys::net
