#include "net/transport.hpp"

#include <stdexcept>
#include <utility>

namespace affectsys::net {

TransportLink::TransportLink(const TransportConfig& cfg,
                             fault::FaultPlan* plan,
                             fault::FaultCounts* counts)
    : cfg_(cfg), channel_(cfg.channel, plan, counts) {
  if (cfg.layers < 1 || cfg.layers > kMaxLayers) {
    throw std::invalid_argument("TransportLink: layers must be 1..kMaxLayers");
  }
  lanes_.reserve(cfg.layers);
  for (std::uint8_t l = 0; l < cfg.layers; ++l) lanes_.emplace_back(cfg);
}

void TransportLink::send(std::span<const h264::NalUnit> nals,
                         std::uint32_t timestamp, std::uint32_t generation,
                         std::uint64_t now, std::uint8_t layer) {
  if (layer >= lanes_.size()) {
    throw std::invalid_argument("TransportLink: send on unconfigured layer");
  }
  Lane& lane = lanes_[layer];
  nals_sent_ += nals.size();
  std::vector<MediaPacket> packets =
      lane.packetizer.packetize(nals, timestamp, generation, layer);
  for (MediaPacket& p : packets) {
    ++packets_sent_;
    // Parity covers the packet exactly as sent (pre-channel).
    std::optional<MediaPacket> parity = lane.fec_enc.add(p);
    channel_.send(std::move(p), now);
    if (parity) channel_.send(std::move(*parity), now);
  }
}

std::vector<DepacketizerEvent> TransportLink::receive(std::uint64_t now) {
  for (MediaPacket& p : channel_.deliver(now)) {
    if (p.layer >= lanes_.size()) {
      // A lane this link doesn't run (stale sender config or corrupted
      // header): not our media, and no sequence space to account it in.
      ++layer_dropped_;
      continue;
    }
    Lane& lane = lanes_[p.layer];
    if (p.kind == PacketKind::kParity) {
      lane.fec_rec.add_parity(p);
      continue;
    }
    lane.fec_rec.add_data(p);
    lane.jitter.insert(std::move(p), now);
  }
  // Feed anything FEC rebuilt back into its lane's buffer — unless its
  // slot already slipped past (the jitter depth gave up before the
  // parity and the survivors all arrived).
  for (Lane& lane : lanes_) {
    for (MediaPacket& p : lane.fec_rec.recover()) {
      if (p.layer >= lanes_.size()) {
        ++layer_dropped_;
        continue;
      }
      if (lanes_[p.layer].jitter.would_accept(p.seq)) {
        lanes_[p.layer].jitter.insert(std::move(p), now);
        ++recovered_accepted_;
      } else {
        ++recovered_late_;
      }
    }
  }
  std::vector<DepacketizerEvent> out;
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    Lane& lane = lanes_[l];
    std::vector<DepacketizerEvent> evs =
        lane.depack.push(lane.jitter.pop_due(now));
    for (DepacketizerEvent& ev : evs) {
      if (ev.loss) ev.nal.layer = static_cast<std::uint8_t>(l);
      out.push_back(std::move(ev));
    }
  }
  return out;
}

bool TransportLink::idle() const {
  if (!channel_.idle()) return false;
  for (const Lane& lane : lanes_) {
    if (lane.jitter.buffered() != 0) return false;
  }
  return true;
}

TransportStats TransportLink::stats() const {
  TransportStats s;
  s.nals_sent = nals_sent_;
  s.packets_sent = packets_sent_;
  s.packets_lost = channel_.stats().dropped();
  s.packets_recovered = recovered_accepted_;
  s.recovered_late = recovered_late_;
  s.layer_dropped = layer_dropped_;
  for (const Lane& lane : lanes_) {
    s.parity_sent += lane.fec_enc.parity_emitted();
    s.nals_received += lane.depack.stats().nals_out;
    s.loss_events += lane.depack.stats().loss_events;
  }
  return s;
}

}  // namespace affectsys::net
