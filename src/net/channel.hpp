// Deterministic lossy network channel between packetizer and jitter
// buffer.
//
// Every sent packet is one FaultPlan site consulted with kNetKinds:
// loss drops it, burst loss drops it and arms a counter that swallows
// the next 1-3 sends *without* consulting the plan (so a burst is one
// decision, like every other fault), delay pushes its arrival 1..max
// ticks into the future, duplication enqueues a second copy, and
// reorder makes it land just after the next packet sent.  Delivery
// order is a pure function of (arrival tick, send order, fault
// outcomes) — no wall clock, no randomness outside the plan — so a
// seeded run replays byte-identically, and a rate-0 plan never touches
// the RNG (the clean path is the identity function on the send
// sequence).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "net/wire.hpp"

namespace affectsys::net {

struct ChannelConfig {
  /// Upper bound on kPacketDelay holds, in ticks.  Kept below the jitter
  /// depth the delay is healed silently; above it, it becomes a declared
  /// loss at the receiver (and a duplicate when the packet finally
  /// lands).
  std::uint64_t max_delay_ticks = 3;
};

struct ChannelStats {
  std::uint64_t sent = 0;            ///< data + parity handed to the channel
  std::uint64_t delivered = 0;
  std::uint64_t dropped_data = 0;
  std::uint64_t dropped_parity = 0;
  std::uint64_t burst_dropped = 0;   ///< subset of drops from armed bursts
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;

  std::uint64_t dropped() const { return dropped_data + dropped_parity; }
};

class NetChannel {
 public:
  /// `plan` and `counts` may be null (perfect channel).  The plan is
  /// consulted once per send with the kNetKinds site mask.
  NetChannel(const ChannelConfig& cfg, fault::FaultPlan* plan,
             fault::FaultCounts* counts)
      : cfg_(cfg), plan_(plan), counts_(counts) {}

  /// Accepts a packet at tick `now` and applies at most one fault to it.
  void send(MediaPacket p, std::uint64_t now);

  /// Everything whose arrival tick is <= `now`, in delivery order.
  std::vector<MediaPacket> deliver(std::uint64_t now);

  bool idle() const { return pending_.empty(); }
  const ChannelStats& stats() const { return stats_; }

 private:
  ChannelConfig cfg_;
  fault::FaultPlan* plan_;
  fault::FaultCounts* counts_;
  ChannelStats stats_;
  /// (arrival tick, order key) -> packet.  Order keys step by 2 per send
  /// so reorder (+3) lands one slot past the next send and a duplicate
  /// (+1) lands right behind its original.
  std::map<std::pair<std::uint64_t, std::uint64_t>, MediaPacket> pending_;
  std::uint64_t order_ = 0;
  std::uint64_t burst_remaining_ = 0;
};

}  // namespace affectsys::net
