#include "net/wire.hpp"

namespace affectsys::net {

namespace {

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint16_t get16(std::span<const std::uint8_t> b, std::size_t at) {
  return static_cast<std::uint16_t>((b[at] << 8) | b[at + 1]);
}

std::uint32_t get32(std::span<const std::uint8_t> b, std::size_t at) {
  return (static_cast<std::uint32_t>(b[at]) << 24) |
         (static_cast<std::uint32_t>(b[at + 1]) << 16) |
         (static_cast<std::uint32_t>(b[at + 2]) << 8) |
         static_cast<std::uint32_t>(b[at + 3]);
}

}  // namespace

std::vector<std::uint8_t> serialize_packet(const MediaPacket& p) {
  std::vector<std::uint8_t> out;
  serialize_packet_into(p, out);
  return out;
}

void serialize_packet_into(const MediaPacket& p,
                           std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(kWireHeaderBytes + p.payload.size());
  put16(out, p.seq);
  put32(out, p.timestamp);
  put32(out, p.generation);
  out.push_back(static_cast<std::uint8_t>(p.kind));
  out.push_back(static_cast<std::uint8_t>((p.layer << 1) | (p.marker ? 1 : 0)));
  out.push_back(p.nal_header);
  put16(out, p.fec_base);
  out.push_back(p.fec_count);
  out.insert(out.end(), p.payload.begin(), p.payload.end());
}

std::optional<MediaPacket> parse_packet(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kWireHeaderBytes) return std::nullopt;
  const std::uint8_t kind = bytes[10];
  if (kind > static_cast<std::uint8_t>(PacketKind::kParity)) return std::nullopt;
  const std::uint8_t layer_marker = bytes[11];
  if (layer_marker >= (kMaxLayers << 1)) return std::nullopt;
  MediaPacket p;
  p.seq = get16(bytes, 0);
  p.timestamp = get32(bytes, 2);
  p.generation = get32(bytes, 6);
  p.kind = static_cast<PacketKind>(kind);
  p.marker = (layer_marker & 1) != 0;
  p.layer = static_cast<std::uint8_t>(layer_marker >> 1);
  p.nal_header = bytes[12];
  p.fec_base = get16(bytes, 13);
  p.fec_count = bytes[15];
  p.payload.assign(bytes.begin() + kWireHeaderBytes, bytes.end());
  return p;
}

}  // namespace affectsys::net
