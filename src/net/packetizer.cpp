#include "net/packetizer.hpp"

#include <algorithm>
#include <utility>

namespace affectsys::net {

namespace {

std::uint8_t nal_header_byte(const h264::NalUnit& nal) {
  return static_cast<std::uint8_t>(((nal.ref_idc & 0x3u) << 5) |
                                   (static_cast<std::uint8_t>(nal.type) & 0x1Fu));
}

h264::NalUnit nal_from_header(std::uint8_t header,
                              std::vector<std::uint8_t> payload) {
  h264::NalUnit nal;
  nal.type = static_cast<h264::NalType>(header & 0x1Fu);
  nal.ref_idc = static_cast<std::uint8_t>((header >> 5) & 0x3u);
  nal.payload = std::move(payload);
  return nal;
}

}  // namespace

std::vector<MediaPacket> Packetizer::packetize(
    std::span<const h264::NalUnit> nals, std::uint32_t timestamp,
    std::uint32_t generation, std::uint8_t layer) {
  std::vector<MediaPacket> out;
  const std::size_t mtu = std::max<std::size_t>(cfg_.mtu, 1);
  std::size_t i = 0;
  while (i < nals.size()) {
    // Try STAP-style aggregation: how many consecutive NALs fit in one
    // packet at 3 bytes of framing each ([u16 size][header byte])?
    std::size_t agg_end = i;
    if (cfg_.aggregate) {
      std::size_t used = 0;
      while (agg_end < nals.size()) {
        const std::size_t need = 3 + nals[agg_end].payload.size();
        if (used + need > mtu) break;
        used += need;
        ++agg_end;
      }
    }
    if (agg_end - i >= 2) {
      MediaPacket p;
      p.seq = seq_++;
      p.timestamp = timestamp;
      p.generation = generation;
      p.layer = layer;
      p.kind = PacketKind::kAggregate;
      for (; i < agg_end; ++i) {
        const h264::NalUnit& nal = nals[i];
        const std::uint16_t size =
            static_cast<std::uint16_t>(1 + nal.payload.size());
        p.payload.push_back(static_cast<std::uint8_t>(size >> 8));
        p.payload.push_back(static_cast<std::uint8_t>(size & 0xFF));
        p.payload.push_back(nal_header_byte(nal));
        p.payload.insert(p.payload.end(), nal.payload.begin(),
                         nal.payload.end());
      }
      out.push_back(std::move(p));
      continue;
    }

    const h264::NalUnit& nal = nals[i];
    if (nal.payload.size() <= mtu) {
      MediaPacket p;
      p.seq = seq_++;
      p.timestamp = timestamp;
      p.generation = generation;
      p.layer = layer;
      p.kind = PacketKind::kSingle;
      p.nal_header = nal_header_byte(nal);
      p.payload = nal.payload;
      out.push_back(std::move(p));
    } else {
      // FU-style fragmentation: the header byte rides in every
      // fragment's packet header, payload bytes split raw at the MTU.
      std::size_t offset = 0;
      while (offset < nal.payload.size()) {
        const std::size_t take = std::min(mtu, nal.payload.size() - offset);
        MediaPacket p;
        p.seq = seq_++;
        p.timestamp = timestamp;
        p.generation = generation;
        p.layer = layer;
        p.kind = offset == 0 ? PacketKind::kFragStart
                 : offset + take == nal.payload.size() ? PacketKind::kFragEnd
                                                       : PacketKind::kFragMiddle;
        p.nal_header = nal_header_byte(nal);
        p.payload.assign(nal.payload.begin() + offset,
                         nal.payload.begin() + offset + take);
        out.push_back(std::move(p));
        offset += take;
      }
    }
    ++i;
  }
  if (!out.empty()) out.back().marker = true;
  return out;
}

void Depacketizer::abort_assembly(std::vector<DepacketizerEvent>& out) {
  assembling_ = false;
  frag_payload_.clear();
  out.push_back(DepacketizerEvent{true, {}});
  ++stats_.loss_events;
}

std::vector<DepacketizerEvent> Depacketizer::push(
    std::span<const Released> releases) {
  std::vector<DepacketizerEvent> out;
  for (const Released& r : releases) {
    if (r.lost) {
      // The lost packet's kind is unknowable; if fragments follow with
      // no start, eat them — their NAL is covered by this loss event.
      if (assembling_) {
        abort_assembly(out);
      } else {
        out.push_back(DepacketizerEvent{true, {}});
        ++stats_.loss_events;
      }
      dropping_frags_ = true;
      continue;
    }
    const MediaPacket& p = r.packet;
    switch (p.kind) {
      case PacketKind::kSingle: {
        if (assembling_) abort_assembly(out);
        dropping_frags_ = false;
        DepacketizerEvent ev;
        ev.nal = ReceivedNal{nal_from_header(p.nal_header, p.payload),
                             p.timestamp, p.generation, p.layer};
        out.push_back(std::move(ev));
        ++stats_.nals_out;
        break;
      }
      case PacketKind::kAggregate: {
        if (assembling_) abort_assembly(out);
        dropping_frags_ = false;
        std::size_t pos = 0;
        bool bad = false;
        while (pos + 3 <= p.payload.size()) {
          const std::uint16_t size = static_cast<std::uint16_t>(
              (p.payload[pos] << 8) | p.payload[pos + 1]);
          if (size < 1 || pos + 2 + size > p.payload.size()) {
            bad = true;
            break;
          }
          DepacketizerEvent ev;
          ev.nal = ReceivedNal{
              nal_from_header(
                  p.payload[pos + 2],
                  std::vector<std::uint8_t>(
                      p.payload.begin() + pos + 3,
                      p.payload.begin() + pos + 2 + size)),
              p.timestamp, p.generation, p.layer};
          out.push_back(std::move(ev));
          ++stats_.nals_out;
          pos += 2 + size;
        }
        if (bad || pos != p.payload.size()) ++stats_.malformed;
        ++stats_.aggregates_split;
        break;
      }
      case PacketKind::kFragStart: {
        if (assembling_) abort_assembly(out);
        dropping_frags_ = false;
        assembling_ = true;
        frag_header_ = p.nal_header;
        frag_ts_ = p.timestamp;
        frag_gen_ = p.generation;
        frag_layer_ = p.layer;
        frag_payload_ = p.payload;
        break;
      }
      case PacketKind::kFragMiddle: {
        if (dropping_frags_) break;
        if (!assembling_) {
          // Orphan continuation with no declared gap: unreachable from
          // our sender, but account for the NAL it implies.
          out.push_back(DepacketizerEvent{true, {}});
          ++stats_.loss_events;
          dropping_frags_ = true;
          break;
        }
        frag_payload_.insert(frag_payload_.end(), p.payload.begin(),
                             p.payload.end());
        break;
      }
      case PacketKind::kFragEnd: {
        if (dropping_frags_) {
          dropping_frags_ = false;
          break;
        }
        if (!assembling_) {
          out.push_back(DepacketizerEvent{true, {}});
          ++stats_.loss_events;
          break;
        }
        frag_payload_.insert(frag_payload_.end(), p.payload.begin(),
                             p.payload.end());
        DepacketizerEvent ev;
        ev.nal = ReceivedNal{
            nal_from_header(frag_header_, std::move(frag_payload_)),
            frag_ts_, frag_gen_, frag_layer_};
        out.push_back(std::move(ev));
        assembling_ = false;
        frag_payload_ = {};
        ++stats_.fragments_reassembled;
        ++stats_.nals_out;
        break;
      }
      case PacketKind::kParity:
        // Parity never enters the jitter buffer; tolerate anyway.
        ++stats_.malformed;
        break;
    }
  }
  return out;
}

}  // namespace affectsys::net
