// Transport facade: packetizer -> (FEC encoder) -> fault channel ->
// (FEC recovery) -> jitter buffer -> depacketizer, as one object the
// serve layer ticks.
//
// send() packetizes one access unit and pushes it through the channel
// at the current tick; receive() drains the channel, routes parity to
// FEC recovery and data into the jitter buffer, feeds any rebuilt
// packets back in, then releases due packets through the depacketizer.
// Everything is tick-driven and every random choice comes from the one
// FaultPlan the caller passes in, so a seeded run replays
// byte-identically and a rate-0 plan makes the whole stack the identity
// function on the NAL stream (same units, same order, same tick).
//
// Simulcast: the link runs `layers` independent lanes — per-layer
// packetizer (own sequence space), FEC pair, jitter buffer and
// depacketizer — over ONE shared fault channel, so all layers ride the
// same network and the same FaultPlan draw order.  receive() drains
// lanes in ascending layer order each tick; layers=1 collapses every
// lane loop to the pre-simulcast single path and stays byte-identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/plan.hpp"
#include "h264/nal.hpp"
#include "net/channel.hpp"
#include "net/fec.hpp"
#include "net/jitter.hpp"
#include "net/packetizer.hpp"
#include "net/wire.hpp"

namespace affectsys::net {

struct TransportConfig {
  /// Serve-layer switch: when false, Sessions decode in-process and the
  /// rest of this struct is ignored.
  bool enabled = false;
  /// Simulcast lanes (1..kMaxLayers); 1 = pre-simulcast wire behaviour.
  std::uint8_t layers = 1;
  PacketizerConfig packetizer{};
  JitterConfig jitter{};
  ChannelConfig channel{};
  FecConfig fec{};
};

/// Cross-layer roll-up (sub-layer stats stay available via accessors).
struct TransportStats {
  std::uint64_t nals_sent = 0;
  std::uint64_t packets_sent = 0;    ///< data packets handed to the channel
  std::uint64_t parity_sent = 0;
  std::uint64_t packets_lost = 0;    ///< channel drops, data + parity
  std::uint64_t packets_recovered = 0;  ///< FEC rebuilds the jitter accepted
  std::uint64_t recovered_late = 0;  ///< rebuilt after their seq had passed
  std::uint64_t nals_received = 0;
  std::uint64_t loss_events = 0;     ///< depacketizer loss declarations
  std::uint64_t layer_dropped = 0;   ///< packets for a lane we don't run
};

class TransportLink {
 public:
  TransportLink(const TransportConfig& cfg, fault::FaultPlan* plan,
                fault::FaultCounts* counts);

  /// Sends one access unit on `layer`'s lane at tick `now`.
  void send(std::span<const h264::NalUnit> nals, std::uint32_t timestamp,
            std::uint32_t generation, std::uint64_t now,
            std::uint8_t layer = 0);

  /// Receives everything due at tick `now`: lanes drained in ascending
  /// layer order, each lane's stream in stream order.  Loss events are
  /// stamped with the lane they occurred on.
  std::vector<DepacketizerEvent> receive(std::uint64_t now);

  /// True when nothing is in flight or buffered (drain check).
  bool idle() const;

  std::uint8_t layer_count() const {
    return static_cast<std::uint8_t>(lanes_.size());
  }

  TransportStats stats() const;
  const ChannelStats& channel_stats() const { return channel_.stats(); }
  const JitterStats& jitter_stats(std::uint8_t layer = 0) const {
    return lanes_[layer].jitter.stats();
  }
  const FecStats& fec_stats(std::uint8_t layer = 0) const {
    return lanes_[layer].fec_rec.stats();
  }
  const DepacketizerStats& depacketizer_stats(std::uint8_t layer = 0) const {
    return lanes_[layer].depack.stats();
  }
  const TransportConfig& config() const { return cfg_; }

 private:
  struct Lane {
    Lane(const TransportConfig& cfg)
        : packetizer(cfg.packetizer),
          fec_enc(cfg.fec),
          fec_rec(cfg.fec),
          jitter(cfg.jitter) {}
    Packetizer packetizer;
    FecEncoder fec_enc;
    FecRecovery fec_rec;
    JitterBuffer jitter;
    Depacketizer depack;
  };

  TransportConfig cfg_;
  NetChannel channel_;
  std::vector<Lane> lanes_;
  std::uint64_t nals_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t recovered_accepted_ = 0;
  std::uint64_t recovered_late_ = 0;
  std::uint64_t layer_dropped_ = 0;
};

}  // namespace affectsys::net
