// Transport facade: packetizer -> (FEC encoder) -> fault channel ->
// (FEC recovery) -> jitter buffer -> depacketizer, as one object the
// serve layer ticks.
//
// send() packetizes one access unit and pushes it through the channel
// at the current tick; receive() drains the channel, routes parity to
// FEC recovery and data into the jitter buffer, feeds any rebuilt
// packets back in, then releases due packets through the depacketizer.
// Everything is tick-driven and every random choice comes from the one
// FaultPlan the caller passes in, so a seeded run replays
// byte-identically and a rate-0 plan makes the whole stack the identity
// function on the NAL stream (same units, same order, same tick).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/plan.hpp"
#include "h264/nal.hpp"
#include "net/channel.hpp"
#include "net/fec.hpp"
#include "net/jitter.hpp"
#include "net/packetizer.hpp"
#include "net/wire.hpp"

namespace affectsys::net {

struct TransportConfig {
  /// Serve-layer switch: when false, Sessions decode in-process and the
  /// rest of this struct is ignored.
  bool enabled = false;
  PacketizerConfig packetizer{};
  JitterConfig jitter{};
  ChannelConfig channel{};
  FecConfig fec{};
};

/// Cross-layer roll-up (sub-layer stats stay available via accessors).
struct TransportStats {
  std::uint64_t nals_sent = 0;
  std::uint64_t packets_sent = 0;    ///< data packets handed to the channel
  std::uint64_t parity_sent = 0;
  std::uint64_t packets_lost = 0;    ///< channel drops, data + parity
  std::uint64_t packets_recovered = 0;  ///< FEC rebuilds the jitter accepted
  std::uint64_t recovered_late = 0;  ///< rebuilt after their seq had passed
  std::uint64_t nals_received = 0;
  std::uint64_t loss_events = 0;     ///< depacketizer loss declarations
};

class TransportLink {
 public:
  TransportLink(const TransportConfig& cfg, fault::FaultPlan* plan,
                fault::FaultCounts* counts)
      : cfg_(cfg),
        packetizer_(cfg.packetizer),
        fec_enc_(cfg.fec),
        channel_(cfg.channel, plan, counts),
        fec_rec_(cfg.fec),
        jitter_(cfg.jitter) {}

  /// Sends one access unit at tick `now`.
  void send(std::span<const h264::NalUnit> nals, std::uint32_t timestamp,
            std::uint32_t generation, std::uint64_t now);

  /// Receives everything due at tick `now`, in stream order.
  std::vector<DepacketizerEvent> receive(std::uint64_t now);

  /// True when nothing is in flight or buffered (drain check).
  bool idle() const { return channel_.idle() && jitter_.buffered() == 0; }

  TransportStats stats() const;
  const ChannelStats& channel_stats() const { return channel_.stats(); }
  const JitterStats& jitter_stats() const { return jitter_.stats(); }
  const FecStats& fec_stats() const { return fec_rec_.stats(); }
  const DepacketizerStats& depacketizer_stats() const {
    return depack_.stats();
  }
  const TransportConfig& config() const { return cfg_; }

 private:
  TransportConfig cfg_;
  Packetizer packetizer_;
  FecEncoder fec_enc_;
  NetChannel channel_;
  FecRecovery fec_rec_;
  JitterBuffer jitter_;
  Depacketizer depack_;
  std::uint64_t nals_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t recovered_accepted_ = 0;
  std::uint64_t recovered_late_ = 0;
};

}  // namespace affectsys::net
