// XOR-parity forward error correction over fixed-size groups of data
// packets.
//
// Sender: every `group` consecutive data packets produce one parity
// packet whose payload is [u16 xor-of-member-lengths][XOR of the
// members' full wire blobs, zero-padded to the longest].  Because the
// XOR runs over serialize_packet output, recovery reconstructs the
// entire packet — header and payload — bit-exactly, so a recovered
// picture decodes identically to a clean one.
//
// Receiver: caches the wire blob of every data packet it sees (keyed by
// extended sequence).  A parity group with exactly one missing member
// XORs the survivors against the parity to rebuild it; groups with all
// members present are discarded, groups with two or more missing stay
// pending until the stragglers arrive or the group goes stale
// (unrecoverable).  Parity packets ride their own sequence counter and
// never enter the jitter buffer, so losing one costs nothing but its
// protection.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/buffer_pool.hpp"
#include "net/wire.hpp"

namespace affectsys::net {

struct FecConfig {
  bool enabled = false;
  /// Data packets covered per parity packet.  Larger groups cost less
  /// overhead but any two losses inside a group are unrecoverable.
  std::uint8_t group = 4;
};

class FecEncoder {
 public:
  explicit FecEncoder(const FecConfig& cfg) : cfg_(cfg) {}

  /// Accumulates one sent data packet; returns the parity packet when
  /// this packet completes a group, nullopt otherwise (or if disabled).
  std::optional<MediaPacket> add(const MediaPacket& p);

  std::uint64_t parity_emitted() const { return parity_emitted_; }

 private:
  FecConfig cfg_;
  std::vector<std::uint8_t> acc_;       ///< running XOR of member blobs
  std::vector<std::uint8_t> blob_;      ///< per-add wire staging (reused)
  std::uint16_t len_xor_ = 0;           ///< running XOR of member lengths
  std::uint8_t members_ = 0;
  std::uint16_t base_ = 0;              ///< seq of the group's first member
  std::uint16_t parity_seq_ = 0;        ///< parity-space counter
  std::uint64_t parity_emitted_ = 0;
};

struct FecStats {
  std::uint64_t data_seen = 0;
  std::uint64_t parity_seen = 0;
  std::uint64_t packets_recovered = 0;
  std::uint64_t groups_complete = 0;   ///< parity discarded, nothing missing
  std::uint64_t groups_unrecoverable = 0;  ///< >=2 losses or stale/corrupt
};

class FecRecovery {
 public:
  explicit FecRecovery(const FecConfig& cfg) : cfg_(cfg) {}

  /// Records a received (or recovered) data packet's wire blob.
  void add_data(const MediaPacket& p);

  /// Records a received parity packet.
  void add_parity(const MediaPacket& p);

  /// Attempts recovery across all pending parity groups; returns the
  /// packets rebuilt this call (already re-registered via add_data, so
  /// overlapping future groups see them).
  std::vector<MediaPacket> recover();

  const FecStats& stats() const { return stats_; }

 private:
  void prune();
  /// Copies `bytes` into a pooled buffer (the pool is created lazily on
  /// first use, so FEC-off links pay nothing).
  core::BufferRef make_blob(std::span<const std::uint8_t> bytes);

  FecConfig cfg_;
  FecStats stats_;
  SeqUnroller unroller_;  ///< data-seq space
  /// Cached wire blobs live in pooled refcounted buffers instead of
  /// per-entry vectors: the cache holds at most 1024 blobs (see
  /// prune()), so a 1100-block pool keeps the steady state entirely
  /// within one arena.  The pool is declared (and therefore destroyed)
  /// after the map's refs release back into it.
  std::unique_ptr<core::BufferPool> pool_;
  std::map<std::uint64_t, core::BufferRef> blobs_;
  std::vector<std::uint8_t> wire_scratch_;  ///< add_data serialization
  std::vector<MediaPacket> parities_;
};

}  // namespace affectsys::net
