#include "conf/speaker.hpp"

namespace affectsys::conf {

ActiveSpeakerDetector::ActiveSpeakerDetector(const ActiveSpeakerConfig& cfg)
    : cfg_(cfg) {}

void ActiveSpeakerDetector::add(SpeakerId id) { members_.emplace(id, Member{}); }

void ActiveSpeakerDetector::remove(SpeakerId id) {
  members_.erase(id);
  if (has_dominant_ && dominant_ == id) {
    // The floor holder left: next tick elects fresh, without min-hold —
    // an empty floor is not a hold worth protecting.
    has_dominant_ = false;
  }
}

void ActiveSpeakerDetector::observe(SpeakerId id, double energy,
                                    double confidence) {
  const auto it = members_.find(id);
  if (it == members_.end()) return;
  it->second.pending_energy = energy;
  it->second.pending_conf = confidence;
  it->second.observed = true;
  ++stats_.observations;
}

SpeakerId ActiveSpeakerDetector::tick(std::uint64_t now) {
  ++stats_.ticks;
  last_now_ = now;
  bool any_speaking = false;
  for (auto& [id, m] : members_) {
    const bool speaking = m.observed && m.pending_energy > cfg_.energy_floor;
    // Unobserved members decay as silent: a stalled, quarantined or
    // not-due session loses the floor the same way a quiet one does.
    const double activity =
        speaking ? 1.0 + cfg_.affect_weight * m.pending_conf : 0.0;
    m.score = cfg_.decay * m.score + (1.0 - cfg_.decay) * activity;
    if (speaking) {
      m.last_spoke = now;
      m.ever_spoke = true;
      any_speaking = true;
    }
    m.observed = false;
  }
  if (!any_speaking) ++stats_.silent_ticks;
  if (members_.empty()) {
    has_dominant_ = false;
    return 0;
  }

  // argmax score, ties to the lowest id (std::map iterates ascending).
  SpeakerId best = members_.begin()->first;
  double best_score = members_.begin()->second.score;
  for (const auto& [id, m] : members_) {
    if (m.score > best_score) {
      best = id;
      best_score = m.score;
    }
  }

  if (!has_dominant_) {
    // Initial election (or the floor holder left): take the current
    // leader immediately — in a just-created room every score is 0 and
    // the lowest id wins, which is the stable-pinning fallback.
    dominant_ = best;
    has_dominant_ = true;
    last_switch_ = now;
  } else if (best != dominant_) {
    const auto inc = members_.find(dominant_);
    const double inc_score = inc == members_.end() ? 0.0 : inc->second.score;
    // Dwell hysteresis: a challenger needs (a) the hold to have expired,
    // (b) a margin over the incumbent, (c) an absolute activation floor.
    // A silent room fails (c), so the incumbent keeps the floor — no
    // round-robin churn on numeric dust.
    if (now - last_switch_ >= cfg_.min_hold_ticks &&
        best_score > cfg_.margin * inc_score &&
        best_score > cfg_.activation) {
      if (inc != members_.end()) inc->second.last_dominant = now;
      dominant_ = best;
      last_switch_ = now;
      ++stats_.speaker_switches;
    }
  }
  members_.at(dominant_).last_dominant = now;
  return dominant_;
}

simulcast::SpeakerRole ActiveSpeakerDetector::role(SpeakerId id) const {
  if (has_dominant_ && id == dominant_) return simulcast::SpeakerRole::kDominant;
  const auto it = members_.find(id);
  if (it == members_.end()) return simulcast::SpeakerRole::kIdle;
  const Member& m = it->second;
  const std::uint64_t now = last_now_;  // role is as-of the last tick()
  const auto within = [&](std::uint64_t t) {
    return now >= t && now - t <= cfg_.recent_ticks;
  };
  if ((m.ever_spoke && within(m.last_spoke)) ||
      (m.last_dominant != 0 && within(m.last_dominant))) {
    return simulcast::SpeakerRole::kRecent;
  }
  return simulcast::SpeakerRole::kIdle;
}

double ActiveSpeakerDetector::score(SpeakerId id) const {
  const auto it = members_.find(id);
  return it == members_.end() ? 0.0 : it->second.score;
}

}  // namespace affectsys::conf
