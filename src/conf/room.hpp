// A room groups K speakers behind one ActiveSpeakerDetector and keeps
// the replay artifacts: a speaker_trace of (tick, dominant id) pinned
// next to the per-session layer_trace, per-room obs counters, and a
// RoomReport with operator== for two-run identity tests.
//
// The room never touches media — it only decides roles.  The serve
// layer feeds it observations (stage A energies + affect confidence),
// ticks it serially between audio and media stages, and copies the
// resulting roles into each member's switch-policy context; the
// LayerSelector still owns WHEN a role change becomes a layer change
// (switch-only-at-IDR), and per-speaker transport lanes are never
// reset by a dominance move.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "conf/speaker.hpp"
#include "obs/metrics.hpp"

namespace affectsys::conf {

using RoomId = std::uint64_t;

struct RoomConfig {
  ActiveSpeakerConfig detector{};
  /// False drops the speaker_trace (stats still accumulate).
  bool record_trace = true;
  /// Metric namespace for the per-room counters; empty registers
  /// nothing (standalone/unit-test rooms stay registry-silent).
  std::string obs_scope;
};

/// One dominance change (the first entry is the initial election).
struct SpeakerTraceEntry {
  std::uint64_t tick = 0;
  SpeakerId speaker = 0;
  bool operator==(const SpeakerTraceEntry&) const = default;
};

struct RoomReport {
  RoomId room = 0;
  SpeakerId dominant = 0;
  std::vector<SpeakerTraceEntry> speaker_trace;
  /// (member id, role) in ascending id order, as of the last tick.
  std::vector<std::pair<SpeakerId, simulcast::SpeakerRole>> roles;
  std::uint64_t ticks = 0;
  std::uint64_t speaker_switches = 0;
  std::uint64_t silent_ticks = 0;
  std::uint64_t observations = 0;
  bool operator==(const RoomReport&) const = default;
};

class Room {
 public:
  Room(RoomId id, const RoomConfig& cfg);

  Room(const Room&) = delete;
  Room& operator=(const Room&) = delete;

  RoomId id() const { return id_; }
  std::size_t members() const { return detector_.members(); }
  const std::vector<SpeakerId>& member_ids() const { return member_ids_; }

  void add(SpeakerId id);
  void remove(SpeakerId id);

  /// This tick's observation for one member (serve stage A output).
  void observe(SpeakerId id, double energy, double confidence) {
    detector_.observe(id, energy, confidence);
  }

  /// Advances the detector one tick and appends to the speaker_trace on
  /// dominance changes.  Deterministic: callers must feed observations
  /// in a deterministic order between ticks (the server walks its due
  /// list ascending).
  void tick(std::uint64_t now);

  SpeakerId dominant() const { return detector_.dominant(); }
  simulcast::SpeakerRole role(SpeakerId id) const {
    return detector_.role(id);
  }
  const ActiveSpeakerStats& stats() const { return detector_.stats(); }

  RoomReport report() const;

 private:
  RoomId id_;
  RoomConfig cfg_;
  ActiveSpeakerDetector detector_;
  std::vector<SpeakerId> member_ids_;  ///< ascending (mirrors the detector)
  std::vector<SpeakerTraceEntry> trace_;
  obs::MetricScope scope_;
  obs::Counter* c_ticks_ = nullptr;
  obs::Counter* c_switches_ = nullptr;
  obs::Counter* c_silent_ = nullptr;
};

}  // namespace affectsys::conf
