// Active-speaker detection a la medooze's ActiveSpeakerDetector: every
// room member accumulates a leaky score from per-tick (audio energy,
// affect confidence) observations, and dominance moves only when a
// challenger's score beats the incumbent's by a margin AND the
// incumbent has held the floor for at least min_hold_ticks — dwell
// hysteresis, so the floor cannot flap faster than the hold.
//
// Pure state machine over (membership edits, observations, ticks): no
// wall clock, no randomness, deterministic member iteration (ascending
// id), so identical observation schedules replay identically — the
// property the speaker_trace replay pins rely on.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "simulcast/policy.hpp"

namespace affectsys::conf {

/// Matches serve::SessionId (conf stays below serve in the layering, so
/// the alias is redeclared rather than included).
using SpeakerId = std::uint64_t;

struct ActiveSpeakerConfig {
  /// Mean-square chunk energy above this counts as speaking.  Synthetic
  /// utterances sit around 1e-2; scripted silence is exactly 0.
  double energy_floor = 1e-6;
  /// Per-tick score leak: score = decay*score + (1-decay)*activity.
  double decay = 0.85;
  /// Affect half of the activity signal: a speaking member scores
  /// 1 + affect_weight * confidence, so a confidently emotional speaker
  /// out-accumulates a flat one at equal energy.
  double affect_weight = 0.5;
  /// A challenger must beat the incumbent's score by this factor.
  double margin = 1.15;
  /// Absolute score floor a challenger must clear (keeps numeric dust
  /// from stealing the floor in a silent room).
  double activation = 0.1;
  /// Minimum ticks between dominance changes (dwell hysteresis).
  std::uint64_t min_hold_ticks = 10;
  /// A member that spoke (or held the floor) within this many ticks is
  /// kRecent; beyond it, kIdle.
  std::uint64_t recent_ticks = 30;
};

struct ActiveSpeakerStats {
  std::uint64_t ticks = 0;
  std::uint64_t observations = 0;
  std::uint64_t speaker_switches = 0;  ///< dominance changes (not the
                                       ///< initial election)
  std::uint64_t silent_ticks = 0;      ///< ticks with no member speaking
};

class ActiveSpeakerDetector {
 public:
  explicit ActiveSpeakerDetector(const ActiveSpeakerConfig& cfg = {});

  /// Membership edits; removing the dominant speaker forces a fresh
  /// election (no min-hold) on the next tick.
  void add(SpeakerId id);
  void remove(SpeakerId id);
  std::size_t members() const { return members_.size(); }

  /// Records this tick's observation for `id` (latest wins within a
  /// tick).  Members not observed before the next tick() are silent —
  /// which is exactly what a stalled or quarantined session looks like.
  void observe(SpeakerId id, double energy, double confidence);

  /// Advances one tick at time `now` (caller's monotonic tick counter):
  /// folds observations into scores in ascending-id order, then runs
  /// the dominance state machine.  Returns the dominant speaker id (0
  /// if the room is empty).
  SpeakerId tick(std::uint64_t now);

  SpeakerId dominant() const { return has_dominant_ ? dominant_ : 0; }
  bool has_dominant() const { return has_dominant_; }

  /// Role as of the last tick().  Unknown ids are kIdle.
  simulcast::SpeakerRole role(SpeakerId id) const;

  double score(SpeakerId id) const;
  const ActiveSpeakerStats& stats() const { return stats_; }

 private:
  struct Member {
    double score = 0.0;
    double pending_energy = 0.0;
    double pending_conf = 0.0;
    bool observed = false;        ///< observation arrived this tick
    bool ever_spoke = false;
    std::uint64_t last_spoke = 0;     ///< tick of the last speaking frame
    std::uint64_t last_dominant = 0;  ///< tick the member last held the floor
  };

  ActiveSpeakerConfig cfg_;
  std::map<SpeakerId, Member> members_;  ///< ordered: deterministic walks
  SpeakerId dominant_ = 0;
  bool has_dominant_ = false;
  std::uint64_t last_switch_ = 0;  ///< tick of the last dominance change
  std::uint64_t last_now_ = 0;     ///< `now` of the last tick()
  ActiveSpeakerStats stats_;
};

}  // namespace affectsys::conf
