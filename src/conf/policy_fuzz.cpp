#include "conf/policy_fuzz.hpp"

#include "h264/decoder.hpp"
#include "net/transport.hpp"
#include "simulcast/selector.hpp"

namespace affectsys::conf {

namespace {

/// splitmix64 — the same generator FaultPlan uses, but its own stream:
/// context storms must not perturb the fault schedule.
std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t draw(std::uint64_t& s, std::uint64_t n) {
  return n == 0 ? 0 : splitmix64(s) % n;
}

void fnv_plane(std::uint64_t& h, const h264::Plane& p) {
  for (std::uint8_t b : p.data) {
    h ^= b;
    h *= 1099511628211ull;
  }
}

}  // namespace

simulcast::SwitchPolicy random_switch_policy(std::uint64_t seed,
                                             std::size_t layers) {
  std::uint64_t s = seed ^ 0xc0fefe11d00dull;
  simulcast::SwitchPolicy p;
  // Quantization thresholds drawn too: a 0-ish lossy threshold makes
  // "lossy" fire on almost any loss, 0.2 makes it nearly dead — both
  // shapes must keep the invariants.
  const double lossy_choices[] = {0.0, 0.01, 0.05, 0.2};
  const double power_choices[] = {0.0, 0.25, 0.9};
  p.thresholds.lossy = lossy_choices[draw(s, 4)];
  p.thresholds.battery_low = power_choices[draw(s, 3)];
  p.thresholds.thermal_low = power_choices[draw(s, 3)];
  // 0 = degenerate default-target-only table, 1 = single row; both are
  // a third of the space so the edge shapes stay well covered.
  const std::uint64_t shape = draw(s, 3);
  const std::size_t n_rules =
      shape == 0 ? 0 : shape == 1 ? 1 : 2 + draw(s, 5);
  p.rules.reserve(n_rules);
  for (std::size_t i = 0; i < n_rules; ++i) {
    simulcast::SwitchRule r;
    r.mode = draw(s, 2) ? -1 : static_cast<int>(draw(s, 4));
    r.min_pressure = static_cast<int>(draw(s, 4));
    r.lossy = static_cast<int>(draw(s, 3)) - 1;
    r.low_power = static_cast<int>(draw(s, 3)) - 1;
    r.speaker_role = static_cast<int>(draw(s, 4)) - 1;
    // target may overshoot the ladder by up to 2: target_layer clamps,
    // and the no-rung-outside-the-ladder invariant is asserted from the
    // trace, not trusted from the table.
    r.target = draw(s, layers + 2);
    p.rules.push_back(r);
  }
  p.default_target = draw(s, layers + 2);
  return p;
}

PolicyFuzzResult run_policy_fuzz(const simulcast::SimulcastClip& clip,
                                 const simulcast::SwitchPolicy& policy,
                                 const PolicyFuzzConfig& cfg) {
  PolicyFuzzResult res;
  const std::size_t n = clip.layer_count();
  if (n == 0 || clip.pictures() == 0) return res;

  fault::FaultPlan plan(
      fault::FaultConfig{cfg.fault.seed, cfg.fault.rate,
                         cfg.fault.kinds & fault::kNetKinds});
  fault::FaultCounts counts;
  net::TransportConfig tc;
  tc.enabled = true;
  tc.layers = static_cast<std::uint8_t>(n);
  tc.packetizer.mtu = 96;
  tc.jitter.depth_ticks = 2;
  tc.channel.max_delay_ticks = 3;
  tc.fec.enabled = true;
  tc.fec.group = 4;
  net::TransportLink link(tc, &plan, &counts);

  h264::Decoder dec(h264::DecoderConfig{/*enable_deblock=*/true,
                                        /*resilient=*/true});
  simulcast::LayerSelector sel(n, n - 1);
  std::uint64_t ctx_rng = cfg.seed ^ 0x5eed5eed5eed5eedull;

  std::uint32_t send_gen = 0;
  std::uint32_t send_au = 0;
  std::size_t cur_layer = 0;
  bool layer_valid = false;
  std::uint8_t rx_layer = 0;
  std::uint32_t rx_gen = 0;
  bool rx_valid = false;
  std::uint64_t storm_in = 0;  ///< pictures until the next context draw

  std::vector<h264::NalUnit> au;

  const auto decode_one = [&](const h264::NalUnit& u) {
    if (auto pic = dec.decode_nal(u)) {
      fnv_plane(res.decode_digest, pic->frame.y);
      fnv_plane(res.decode_digest, pic->frame.cb);
      fnv_plane(res.decode_digest, pic->frame.cr);
      dec.recycle(std::move(pic->frame));
      ++res.frames_decoded;
    }
  };

  const auto receive_at = [&](std::uint64_t now) {
    for (const net::DepacketizerEvent& ev : link.receive(now)) {
      if (ev.loss) {
        // Same lane discipline as the serve receiver: losses on a lane
        // we are not tuned to are not resync cues.
        if (!rx_valid || ev.nal.layer != rx_layer) continue;
        dec.notify_loss();
        ++res.nals_lost;
        continue;
      }
      const h264::NalUnit& nal = ev.nal.nal;
      if (!rx_valid || ev.nal.layer != rx_layer) {
        const bool entry = nal.type == h264::NalType::kSps ||
                           nal.type == h264::NalType::kSliceIdr;
        if (!entry) continue;
        rx_layer = ev.nal.layer;
        rx_gen = ev.nal.generation;
        rx_valid = true;
        dec.reset(h264::DecoderConfig{true, /*resilient=*/true});
      } else if (ev.nal.generation != rx_gen) {
        rx_gen = ev.nal.generation;
        dec.reset(h264::DecoderConfig{true, /*resilient=*/true});
      }
      decode_one(nal);
    }
  };

  for (std::uint64_t pic = 0; pic < cfg.pictures; ++pic) {
    // Context storm: every 1-4 pictures a fresh random context — mode,
    // pressure, loss quantile, power, speaker role — hits the table and
    // retargets the selector mid-GOP, which is exactly the request
    // cadence a degrade storm plus rapid dominance flips produces.
    if (storm_in == 0) {
      simulcast::ContextVector ctx;
      ctx.pressure = static_cast<int>(draw(ctx_rng, 4));
      ctx.loss_rate = static_cast<double>(draw(ctx_rng, 100)) / 400.0;
      ctx.battery = static_cast<double>(draw(ctx_rng, 100)) / 99.0;
      ctx.thermal_headroom = static_cast<double>(draw(ctx_rng, 100)) / 99.0;
      ctx.speaker_role = static_cast<int>(draw(ctx_rng, 3));
      const auto mode = static_cast<adaptive::DecoderMode>(draw(ctx_rng, 4));
      sel.request(policy.target_layer(mode, ctx, n));
      storm_in = 1 + draw(ctx_rng, 4);
    }
    --storm_in;

    const std::size_t pic_in_clip = pic % clip.pictures();
    if (pic != 0 && pic_in_clip == 0) {
      ++send_gen;
      send_au = 0;
      layer_valid = false;  // clip wrap rejoins, like the serve path
    }
    const bool idr = clip.idr_at(pic_in_clip);
    const std::size_t layer = sel.on_picture(idr);
    au.clear();
    if (!layer_valid || layer != cur_layer) {
      cur_layer = layer;
      layer_valid = true;
      res.layer_trace.emplace_back(pic, static_cast<std::uint8_t>(layer));
      for (const h264::NalUnit& p : clip.layer(layer).params) {
        au.push_back(p);
      }
    }
    au.push_back(clip.layer(layer).slices[pic_in_clip]);
    link.send(au, send_au, send_gen, pic, static_cast<std::uint8_t>(layer));
    ++send_au;
    ++res.pictures_walked;
    receive_at(pic);
  }
  // Drain: jitter depth + channel delay bound how long anything can
  // stay in flight; a fixed margin keeps the drain deterministic.
  for (std::uint64_t t = cfg.pictures; t < cfg.pictures + 16; ++t) {
    receive_at(t);
  }

  const simulcast::LayerSelectorStats& st = sel.stats();
  res.switches_completed = st.switches_completed;
  res.max_wait_pictures = st.max_wait_pictures;
  res.packets_lost = link.stats().packets_lost;
  res.faults_injected = counts.total;
  return res;
}

}  // namespace affectsys::conf
