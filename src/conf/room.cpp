#include "conf/room.hpp"

#include <algorithm>

namespace affectsys::conf {

Room::Room(RoomId id, const RoomConfig& cfg)
    : id_(id), cfg_(cfg), detector_(cfg.detector), scope_(cfg.obs_scope) {
  if (!cfg_.obs_scope.empty()) {
    c_ticks_ = &scope_.counter("conf.ticks");
    c_switches_ = &scope_.counter("conf.speaker_switches");
    c_silent_ = &scope_.counter("conf.silent_ticks");
  }
}

void Room::add(SpeakerId id) {
  detector_.add(id);
  const auto it =
      std::lower_bound(member_ids_.begin(), member_ids_.end(), id);
  if (it == member_ids_.end() || *it != id) member_ids_.insert(it, id);
}

void Room::remove(SpeakerId id) {
  detector_.remove(id);
  const auto it =
      std::lower_bound(member_ids_.begin(), member_ids_.end(), id);
  if (it != member_ids_.end() && *it == id) member_ids_.erase(it);
}

void Room::tick(std::uint64_t now) {
  const bool had = detector_.has_dominant();
  const SpeakerId before = detector_.dominant();
  const std::uint64_t silent_before = detector_.stats().silent_ticks;
  const SpeakerId after = detector_.tick(now);
  if (detector_.has_dominant() && (!had || after != before)) {
    if (cfg_.record_trace) trace_.push_back({now, after});
    if (had && c_switches_ != nullptr) c_switches_->add(1);
  }
  if (c_ticks_ != nullptr) c_ticks_->add(1);
  if (c_silent_ != nullptr &&
      detector_.stats().silent_ticks != silent_before) {
    c_silent_->add(1);
  }
}

RoomReport Room::report() const {
  RoomReport rep;
  rep.room = id_;
  rep.dominant = detector_.dominant();
  rep.speaker_trace = trace_;
  rep.roles.reserve(member_ids_.size());
  for (SpeakerId id : member_ids_) {
    rep.roles.emplace_back(id, detector_.role(id));
  }
  const ActiveSpeakerStats& st = detector_.stats();
  rep.ticks = st.ticks;
  rep.speaker_switches = st.speaker_switches;
  rep.silent_ticks = st.silent_ticks;
  rep.observations = st.observations;
  return rep;
}

}  // namespace affectsys::conf
