// Structured fuzzing of the switch-policy table space: a seeded
// generator produces random SwitchPolicy tables (wildcards, overlapping
// rows, degenerate empty/single-row tables, out-of-range targets) and a
// deterministic runner drives each table through a context storm —
// fresh random (mode, pressure, loss, power, speaker role) every few
// pictures — over the aligned simulcast clip, through a faulted
// TransportLink (FaultPlan kNetKinds: loss, bursts, jitter, dup,
// reorder) into a resilient decoder.
//
// The runner is a pure function of (clip, config): the context RNG is
// its own splitmix64 stream and every network choice comes from the
// FaultPlan, so two runs with equal inputs produce equal
// PolicyFuzzResults — the replay half of the invariant suite.  The
// other half is checked from the returned trace: every forwarded-layer
// change past the first lands on an aligned IDR, and no trace entry
// names a layer outside the clip's ladder, whatever the table said.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "simulcast/encoder.hpp"
#include "simulcast/policy.hpp"

namespace affectsys::conf {

/// Seeded random rule table over the full column space.  Targets may
/// deliberately overshoot the ladder (target_layer clamps); rule count
/// 0 (default-target-only) and 1 (single row) are generated often
/// enough that the degenerate shapes stay covered.
simulcast::SwitchPolicy random_switch_policy(std::uint64_t seed,
                                             std::size_t layers);

struct PolicyFuzzConfig {
  std::uint64_t seed = 1;        ///< context-storm RNG seed
  std::uint64_t pictures = 72;   ///< picture boundaries to walk
  /// Network fault schedule (kNetKinds sites at the channel); rate 0
  /// makes the transport the identity function.
  fault::FaultConfig fault{};
};

struct PolicyFuzzResult {
  /// (picture index, forwarded layer) on every change; entry 0 is the
  /// initial top-layer lock.
  std::vector<std::pair<std::uint64_t, std::uint8_t>> layer_trace;
  std::uint64_t decode_digest = 1469598103934665603ull;  ///< FNV-1a
  std::uint64_t pictures_walked = 0;
  std::uint64_t frames_decoded = 0;
  std::uint64_t switches_completed = 0;
  std::uint64_t max_wait_pictures = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t nals_lost = 0;
  std::uint64_t faults_injected = 0;
  bool operator==(const PolicyFuzzResult&) const = default;
};

/// Drives `policy` through one seeded context storm over `clip`.
PolicyFuzzResult run_policy_fuzz(const simulcast::SimulcastClip& clip,
                                 const simulcast::SwitchPolicy& policy,
                                 const PolicyFuzzConfig& cfg);

}  // namespace affectsys::conf
