#include "power/offload.hpp"

namespace affectsys::power {

PlacementReport OffloadPlanner::plan(std::size_t macs_per_inference,
                                     std::size_t feature_bytes) const {
  PlacementReport r;
  r.local_watch_nj =
      costs_.watch_nj_per_mac * static_cast<double>(macs_per_inference);
  r.offload_watch_nj =
      costs_.ble_nj_per_byte * static_cast<double>(feature_bytes) +
      costs_.ble_nj_per_window;
  r.offload_phone_nj =
      costs_.phone_nj_per_mac * static_cast<double>(macs_per_inference);
  r.watch_optimal = r.local_watch_nj <= r.offload_watch_nj
                        ? ExecutionTarget::kWatch
                        : ExecutionTarget::kPhone;
  r.system_optimal =
      r.local_watch_nj <= r.offload_watch_nj + r.offload_phone_nj
          ? ExecutionTarget::kWatch
          : ExecutionTarget::kPhone;
  return r;
}

double OffloadPlanner::watch_crossover_macs(
    std::size_t feature_bytes) const {
  return (costs_.ble_nj_per_byte * static_cast<double>(feature_bytes) +
          costs_.ble_nj_per_window) /
         costs_.watch_nj_per_mac;
}

}  // namespace affectsys::power
