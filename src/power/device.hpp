// Deterministic battery/thermal device stub: the power half of the
// context vector that joins emotion in the layer-switch policy.
//
// Real devices sample a fuel gauge and a thermal zone; this repo's
// replay discipline forbids reading anything that is not a pure
// function of (config, tick).  The stub models both as linear drains
// from a configured starting point — enough to drive "low battery ->
// downswitch" policy rows and make them replayable — and can be
// swapped for a real sensor feed at the same call site later.
#pragma once

#include <algorithm>
#include <cstdint>

namespace affectsys::power {

struct DeviceStateConfig {
  double battery_start = 1.0;   ///< remaining fraction at tick 0, [0, 1]
  double battery_drain_per_tick = 0.0;
  double thermal_start = 1.0;   ///< thermal headroom fraction at tick 0
  double thermal_drain_per_tick = 0.0;
};

/// Point-in-time device state, both in [0, 1]; 0 = exhausted/throttling.
struct DeviceState {
  double battery = 1.0;
  double thermal_headroom = 1.0;
};

/// Pure function of (config, tick) — the replay contract.
inline DeviceState device_state_at(const DeviceStateConfig& cfg,
                                   std::uint64_t tick) {
  const double t = static_cast<double>(tick);
  DeviceState s;
  s.battery = std::max(0.0, cfg.battery_start - cfg.battery_drain_per_tick * t);
  s.thermal_headroom =
      std::max(0.0, cfg.thermal_start - cfg.thermal_drain_per_tick * t);
  return s;
}

}  // namespace affectsys::power
