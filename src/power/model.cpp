#include "power/model.hpp"

#include <stdexcept>

namespace affectsys::power {

EnergyBreakdown decode_energy(const h264::DecodeActivity& a,
                              const EnergyCoefficients& c) {
  EnergyBreakdown e;
  e.parser_nj = c.per_bit_parsed * static_cast<double>(a.bits_parsed);
  e.cavlc_nj = c.per_residual_block * static_cast<double>(a.residual_blocks) +
               c.per_coefficient * static_cast<double>(a.coefficients);
  e.iqit_nj = c.per_iqit_block * static_cast<double>(a.iqit_blocks);
  e.prediction_nj = c.per_intra_mb * static_cast<double>(a.intra_mbs) +
                    c.per_inter_mb * static_cast<double>(a.inter_mbs) +
                    c.per_skip_mb * static_cast<double>(a.skip_mbs);
  e.deblock_nj =
      c.per_deblock_edge * static_cast<double>(a.deblock_edges_examined) +
      c.per_deblock_pixel * static_cast<double>(a.deblock_pixels);
  e.static_nj = c.static_per_frame * static_cast<double>(a.frames_decoded);
  return e;
}

EnergyCoefficients calibrate_to_deblock_share(
    const EnergyCoefficients& base, const h264::DecodeActivity& reference,
    double target_share) {
  if (target_share <= 0.0 || target_share >= 1.0) {
    throw std::invalid_argument("calibrate: share must be in (0, 1)");
  }
  const EnergyBreakdown e = decode_energy(reference, base);
  const double others = e.total_nj() - e.deblock_nj;
  if (e.deblock_nj <= 0.0 || others <= 0.0) {
    throw std::invalid_argument(
        "calibrate: reference run must include deblocking activity");
  }
  // Solve k * deblock / (others + k * deblock) = share.
  const double k = target_share * others / ((1.0 - target_share) * e.deblock_nj);
  EnergyCoefficients out = base;
  out.per_deblock_edge *= k;
  out.per_deblock_pixel *= k;
  return out;
}

double average_power_mw(const EnergyBreakdown& e, std::uint64_t frames,
                        double fps) {
  if (frames == 0 || fps <= 0.0) return 0.0;
  const double seconds = static_cast<double>(frames) / fps;
  // nJ / s -> nW; convert to mW.
  return e.total_nj() / seconds * 1e-6;
}

}  // namespace affectsys::power
