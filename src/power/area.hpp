// Silicon area model echoing the paper's 65-nm implementation figures:
// 1.9 mm^2 decoder at 1.2 V / 28 MHz, with the added Pre-store Buffer
// costing 4.23% area overhead.
#pragma once

namespace affectsys::power {

struct AreaModel {
  double technology_nm = 65.0;
  double supply_v = 1.2;
  double clock_mhz = 28.0;
  /// Conventional decoder module areas (mm^2); sum ~= 1.9 - prestore.
  double parser_mm2 = 0.26;
  double cavlc_mm2 = 0.33;
  double iqit_mm2 = 0.22;
  double prediction_mm2 = 0.52;
  double deblock_mm2 = 0.31;
  double buffers_mm2 = 0.18;
  /// The affect-adaptation addition: 128 x 16 bit Pre-store Buffer plus
  /// the Input Selector control logic.
  double prestore_buffer_mm2 = 0.0769;

  double conventional_mm2() const {
    return parser_mm2 + cavlc_mm2 + iqit_mm2 + prediction_mm2 +
           deblock_mm2 + buffers_mm2;
  }
  double proposed_mm2() const {
    return conventional_mm2() + prestore_buffer_mm2;
  }
  /// Pre-store Buffer area overhead relative to the conventional design.
  double prestore_overhead() const {
    return prestore_buffer_mm2 / conventional_mm2();
  }
};

}  // namespace affectsys::power
