#include "power/area.hpp"

// AreaModel is a plain aggregate; this translation unit exists so the
// library has a home for future area-estimation logic and to keep the
// build layout uniform.
namespace affectsys::power {}
