// Activity-based energy model for the H.264 decoder.
//
// The paper reports silicon measurements from a 65-nm implementation
// (1.9 mm^2, 1.2 V, 28 MHz); we do not have that die, so module energies
// are computed as activity x per-operation energy coefficients
// (DESIGN.md substitution table).  Coefficients are calibrated once per
// workload with calibrate_to_deblock_share() so the Deblocking Filter's
// share of standard-mode decode energy matches the paper's measured
// ~31.4%; every other number (deletion savings, playback energy, mode
// ordering) then emerges from measured activity rather than being
// hard-coded.
#pragma once

#include "h264/decoder.hpp"

namespace affectsys::power {

/// Energy per activity unit, in nanojoules.  Defaults approximate a 65-nm
/// low-power decoder (Xu & Choy, ISLPED'07 module breakdown).
struct EnergyCoefficients {
  double per_bit_parsed = 0.004;        ///< bitstream parser + buffers
  double per_residual_block = 0.8;      ///< CAVLC fixed per-block cost
  double per_coefficient = 0.35;        ///< CAVLC per decoded coefficient
  double per_iqit_block = 1.1;          ///< inverse quant + transform
  double per_intra_mb = 18.0;           ///< intra prediction per MB
  double per_inter_mb = 26.0;           ///< MC fetch + interpolation per MB
  double per_skip_mb = 6.0;             ///< skip copy per MB
  double per_deblock_edge = 1.6;        ///< BS derivation per edge examined
  double per_deblock_pixel = 0.45;      ///< filtering arithmetic per pixel
  double static_per_frame = 120.0;      ///< clock tree + leakage per frame
};

/// Per-module energies in nanojoules for one decode run.
struct EnergyBreakdown {
  double parser_nj = 0.0;
  double cavlc_nj = 0.0;
  double iqit_nj = 0.0;
  double prediction_nj = 0.0;
  double deblock_nj = 0.0;
  double static_nj = 0.0;

  double total_nj() const {
    return parser_nj + cavlc_nj + iqit_nj + prediction_nj + deblock_nj +
           static_nj;
  }
  double deblock_share() const {
    const double t = total_nj();
    return t > 0.0 ? deblock_nj / t : 0.0;
  }
};

/// Maps decoder activity counters to module energies.
EnergyBreakdown decode_energy(const h264::DecodeActivity& activity,
                              const EnergyCoefficients& coeff);

/// Scales the deblocking coefficients so that on the given reference
/// activity (a standard-mode decode with DF enabled) the DF accounts for
/// `target_share` of total energy.  Returns the adjusted coefficients.
/// @throws std::invalid_argument if the reference run had no DF activity.
EnergyCoefficients calibrate_to_deblock_share(
    const EnergyCoefficients& base, const h264::DecodeActivity& reference,
    double target_share);

/// Average power in milliwatts given total energy and decode wall time
/// derived from frame count at the given frame rate.
double average_power_mw(const EnergyBreakdown& e, std::uint64_t frames,
                        double fps);

}  // namespace affectsys::power
