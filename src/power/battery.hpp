// Battery-life model for wearable-class devices.
//
// Converts decode energy into battery-life terms: the paper motivates the
// adaptive decoder with "the limited battery life of wearable devices",
// so the playback bench reports its savings in hours of a smartwatch
// cell, not just percent.
#pragma once

namespace affectsys::power {

struct BatteryModel {
  double capacity_mah = 300.0;  ///< smartwatch-class cell
  double voltage_v = 3.85;
  /// Fraction of the system power budget the video subsystem draws while
  /// playing back (display + radio take the rest).
  double video_share = 0.30;

  /// Total charge energy in joules.
  double capacity_j() const { return capacity_mah * 3.6 * voltage_v; }

  /// Hours the cell sustains a steady total draw of `total_mw`.
  double hours_at_mw(double total_mw) const {
    if (total_mw <= 0.0) return 0.0;
    return capacity_j() / (total_mw * 1e-3) / 3600.0;
  }

  /// Playback hours when the video subsystem draws `video_mw` and other
  /// subsystems scale per video_share.
  double playback_hours(double video_mw) const {
    if (video_mw <= 0.0 || video_share <= 0.0) return 0.0;
    return hours_at_mw(video_mw / video_share);
  }
};

}  // namespace affectsys::power
