// Classification placement study: run the affect classifier on the watch
// or offload to the smartphone's neural engine?
//
// Section 2.1 of the paper asserts that "power-hungry ... classification
// work may be handled by more powerful smartphone application
// processors"; this module makes that a quantitative decision.  The watch
// pays MCU energy per MAC to classify locally, or BLE radio energy per
// feature byte (plus the phone's neural-engine energy, which matters for
// the system view but not the watch battery) to offload.
#pragma once

#include <cstdint>

namespace affectsys::power {

struct OffloadCosts {
  /// Watch-class MCU inference energy: a general-purpose in-order core
  /// spends ~50 pJ per multiply-accumulate (load/store + ALU at 40-90 nm).
  double watch_nj_per_mac = 50e-3;
  /// Smartphone neural-engine inference energy (~2 pJ/MAC, dedicated
  /// accelerator datapath).
  double phone_nj_per_mac = 2e-3;
  /// BLE transmit energy per payload byte (connection events included).
  double ble_nj_per_byte = 250.0;
  /// Fixed per-window radio wake/handshake overhead.
  double ble_nj_per_window = 30000.0;
};

enum class ExecutionTarget { kWatch, kPhone };

struct PlacementReport {
  ExecutionTarget watch_optimal = ExecutionTarget::kWatch;
  ExecutionTarget system_optimal = ExecutionTarget::kWatch;
  double local_watch_nj = 0.0;    ///< watch energy when classifying locally
  double offload_watch_nj = 0.0;  ///< watch energy when offloading (radio)
  double offload_phone_nj = 0.0;  ///< phone energy when offloading
};

class OffloadPlanner {
 public:
  explicit OffloadPlanner(const OffloadCosts& costs = {}) : costs_(costs) {}

  /// Per-window energies and optimal placements for a classifier of
  /// `macs_per_inference` consuming `feature_bytes` of features.
  PlacementReport plan(std::size_t macs_per_inference,
                       std::size_t feature_bytes) const;

  /// MACs/inference above which offloading wins for the watch battery at
  /// the given feature payload.
  double watch_crossover_macs(std::size_t feature_bytes) const;

  const OffloadCosts& costs() const { return costs_; }

 private:
  OffloadCosts costs_;
};

}  // namespace affectsys::power
