#include "affect/speech_synth.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace affectsys::affect {

VoiceProfile emotion_voice_profile(Emotion e) {
  // Values follow the vocal-affect literature (Scherer 2003): arousal maps
  // to pitch/energy/tempo, valence to spectral tilt and pitch contour.
  switch (e) {
    case Emotion::kNeutral:
      return {120.0, 0.12, 0.50, 4.0, 0.010, 0.70, 0.05};
    case Emotion::kCalm:
      return {105.0, 0.08, 0.40, 3.2, 0.008, 0.80, 0.08};
    case Emotion::kHappy:
      return {165.0, 0.35, 0.70, 5.0, 0.015, 0.55, 0.04};
    case Emotion::kSad:
      return {95.0, 0.06, 0.30, 2.6, 0.012, 0.88, 0.12};
    case Emotion::kAngry:
      return {180.0, 0.30, 0.90, 5.6, 0.030, 0.40, 0.03};
    case Emotion::kFearful:
      return {200.0, 0.40, 0.60, 6.0, 0.040, 0.60, 0.10};
    case Emotion::kDisgust:
      return {110.0, 0.15, 0.55, 3.4, 0.020, 0.75, 0.07};
    case Emotion::kSurprised:
      return {190.0, 0.45, 0.75, 5.2, 0.020, 0.50, 0.05};
    default:
      // Non-speech emotions reuse the closest basic profile.
      return emotion_voice_profile(nearest_basic_emotion(circumplex(e)));
  }
}

CorpusProfile ravdess_profile() {
  // RAVDESS: 24 actors, 8 emotions, speech + song (7356 files total).
  CorpusProfile p;
  p.name = "RAVDESS";
  p.num_speakers = 24;
  p.emotions = {Emotion::kNeutral, Emotion::kCalm,    Emotion::kHappy,
                Emotion::kSad,     Emotion::kAngry,   Emotion::kFearful,
                Emotion::kDisgust, Emotion::kSurprised};
  p.utterances_per_speaker_emotion = 4;
  p.utterance_seconds = 1.6;
  p.speaker_spread = 0.20;
  return p;
}

CorpusProfile emovo_profile() {
  // EMOVO: 6 actors, 7 emotions, 14 Italian sentences.
  CorpusProfile p;
  p.name = "EMOVO";
  p.num_speakers = 6;
  p.emotions = {Emotion::kNeutral, Emotion::kHappy,   Emotion::kSad,
                Emotion::kAngry,   Emotion::kFearful, Emotion::kDisgust,
                Emotion::kSurprised};
  p.utterances_per_speaker_emotion = 14;
  p.utterance_seconds = 1.6;
  p.speaker_spread = 0.15;
  return p;
}

CorpusProfile cremad_profile() {
  // CREMA-D: 91 actors, 6 emotions, 12 sentences (7442 clips).  We keep
  // the speaker diversity but cap per-speaker volume for tractability.
  CorpusProfile p;
  p.name = "CREMA-D";
  p.num_speakers = 91;
  p.emotions = {Emotion::kNeutral, Emotion::kHappy, Emotion::kSad,
                Emotion::kAngry, Emotion::kFearful, Emotion::kDisgust};
  p.utterances_per_speaker_emotion = 1;
  p.utterance_seconds = 1.6;
  p.speaker_spread = 0.30;
  return p;
}

Utterance SpeechSynthesizer::synthesize(Emotion e, int speaker_id,
                                        double seconds, double sample_rate,
                                        double speaker_spread) {
  VoiceProfile vp = emotion_voice_profile(e);

  // Deterministic per-speaker individuality: a fixed pitch/tempo/tilt
  // offset derived from the speaker id, independent of the corpus rng.
  std::mt19937 speaker_rng(static_cast<unsigned>(speaker_id) * 7919u + 13u);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  vp.base_pitch_hz *= 1.0 + speaker_spread * u(speaker_rng);
  vp.tempo *= 1.0 + 0.5 * speaker_spread * u(speaker_rng);
  vp.spectral_tilt =
      std::clamp(vp.spectral_tilt + 0.1 * speaker_spread * u(speaker_rng),
                 0.2, 0.95);

  Utterance utt;
  utt.sample_rate = sample_rate;
  utt.emotion = e;
  utt.speaker_id = speaker_id;
  const auto n = static_cast<std::size_t>(seconds * sample_rate);
  utt.samples.assign(n, 0.0);

  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> unit_lead_(0.0, 1.0);
  std::normal_distribution<double> noise(0.0, 1.0);

  const double syllable_s = 1.0 / vp.tempo;
  // Random lead-in silence: utterances are not time-aligned, so models
  // must be robust to temporal translation (as with the real corpora).
  double t = 0.05 + 0.35 * unit_lead_(rng_);
  while (t + syllable_s < seconds) {
    const double voiced_s = syllable_s * (0.55 + 0.2 * unit(rng_));
    // Per-syllable pitch target within the emotion's range; happy and
    // surprised voices rise, sad voices fall.
    const double excursion = vp.pitch_range * (2.0 * unit(rng_) - 0.5);
    const double f0_start = vp.base_pitch_hz * (1.0 + excursion);
    const double contour = (e == Emotion::kHappy || e == Emotion::kSurprised)
                               ? 0.15
                           : (e == Emotion::kSad) ? -0.10
                                                  : 0.0;
    const auto begin = static_cast<std::size_t>(t * sample_rate);
    const auto len = static_cast<std::size_t>(voiced_s * sample_rate);
    double phase = 0.0;
    for (std::size_t i = 0; i < len && begin + i < n; ++i) {
      const double frac = static_cast<double>(i) / static_cast<double>(len);
      const double f0 =
          f0_start * (1.0 + contour * frac) * (1.0 + vp.jitter * noise(rng_));
      phase += 2.0 * std::numbers::pi * f0 / sample_rate;
      // Harmonic source with emotion-dependent rolloff: harmonic h has
      // amplitude tilt^h, so tense voices (low tilt) are brighter.
      double s = 0.0;
      double amp = 1.0;
      for (int h = 1; h <= 6; ++h) {
        s += amp * std::sin(static_cast<double>(h) * phase);
        amp *= vp.spectral_tilt;
      }
      s += vp.breathiness * noise(rng_);
      // Raised-cosine syllable envelope.
      const double env = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * frac);
      utt.samples[begin + i] += vp.energy * env * s * 0.25;
    }
    t += syllable_s * (1.0 + 0.1 * unit(rng_));
  }
  return utt;
}

std::vector<Utterance> SpeechSynthesizer::synthesize_corpus(
    const CorpusProfile& profile) {
  std::vector<Utterance> out;
  for (int spk = 0; spk < profile.num_speakers; ++spk) {
    for (Emotion e : profile.emotions) {
      for (int rep = 0; rep < profile.utterances_per_speaker_emotion; ++rep) {
        out.push_back(synthesize(e, spk, profile.utterance_seconds,
                                 profile.sample_rate,
                                 profile.speaker_spread));
      }
    }
  }
  return out;
}

}  // namespace affectsys::affect
