// Energy-based voice activity detection with hangover smoothing.
//
// The wearable cannot afford to run the classifier on silence: VAD gates
// feature extraction so only voiced windows reach the neural engine
// (this is the front half of the real-time pipeline in
// affect/realtime.hpp; the offload study in power/offload.hpp counts the
// classification invocations VAD admits).
#pragma once

#include <span>
#include <vector>

namespace affectsys::affect {

struct VadConfig {
  double sample_rate_hz = 16000.0;
  std::size_t frame_len = 400;  ///< 25 ms analysis frames
  std::size_t hop = 160;
  /// Speech threshold as a multiple of the tracked noise floor.
  double snr_threshold = 3.0;
  /// Frames the decision stays "speech" after energy drops (hangover).
  int hangover_frames = 8;
  /// Noise-floor adaptation rate (exponential, per frame).
  double floor_adapt = 0.02;
};

class VoiceActivityDetector {
 public:
  explicit VoiceActivityDetector(const VadConfig& cfg);

  /// Feeds one frame; returns the smoothed speech/non-speech decision.
  bool process_frame(std::span<const double> frame);

  /// Convenience: fraction of frames judged speech over a whole signal.
  /// Adaptation state carries over between calls (continuous operation);
  /// call reset() first for an independent measurement.
  double speech_fraction(std::span<const double> signal);

  double noise_floor() const { return noise_floor_; }
  void reset();

  const VadConfig& config() const { return cfg_; }

 private:
  VadConfig cfg_;
  double noise_floor_ = 1e-4;
  int hangover_ = 0;
  /// Frame scratch reused across speech_fraction() calls (zero
  /// allocation steady-state).
  std::vector<double> frame_buf_;
};

}  // namespace affectsys::affect
