// Real-time classification pipeline: audio ring buffer -> VAD gate ->
// windowed classification -> EmotionStream smoothing.
//
// This is the runtime shape of the Fig 4 signal flow: samples arrive in
// small device-driver chunks, a sliding window is classified only when
// the VAD saw enough speech, and stable emotions pop out the other end.
// The pipeline also counts classifier invocations, which the offload
// energy study consumes.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "affect/classifier.hpp"
#include "affect/stream.hpp"
#include "affect/vad.hpp"

namespace affectsys::affect {

struct RealtimeConfig {
  double sample_rate_hz = 16000.0;
  double window_s = 1.0;        ///< classification window
  double window_stride_s = 0.5; ///< stride between classification attempts
  /// Minimum VAD speech fraction inside a window to spend a classifier
  /// invocation on it.
  double min_speech_fraction = 0.3;
  VadConfig vad{};
  StreamConfig stream{3, 2.0};
};

struct RealtimeStats {
  std::uint64_t samples_in = 0;
  std::uint64_t windows_considered = 0;
  std::uint64_t windows_classified = 0;  ///< survived the VAD gate
  std::uint64_t stable_changes = 0;
};

class RealtimePipeline {
 public:
  /// The classifier must outlive the pipeline.
  RealtimePipeline(AffectClassifier& classifier, const RealtimeConfig& cfg);

  /// Feeds a chunk of audio stamped at `t_s` (chunk start).  Returns the
  /// new stable emotion if this chunk's processing changed it.
  std::optional<Emotion> push_audio(double t_s,
                                    std::span<const double> chunk);

  Emotion stable_emotion() const { return stream_.stable(); }
  const RealtimeStats& stats() const { return stats_; }

  /// Observer of every raw (pre-smoothing) classification.
  void on_raw_label(std::function<void(double, Emotion, float)> cb) {
    raw_cb_ = std::move(cb);
  }

 private:
  AffectClassifier& classifier_;
  RealtimeConfig cfg_;
  VoiceActivityDetector vad_;
  EmotionStream stream_;
  RealtimeStats stats_;
  std::vector<double> buffer_;  ///< sliding window of recent samples
  double buffer_end_t_ = 0.0;
  double next_window_t_ = 0.0;
  /// False until the first full window fires; the first deadline anchors
  /// to that moment and subsequent ones advance by exactly one stride.
  bool window_clock_started_ = false;
  std::function<void(double, Emotion, float)> raw_cb_;
};

}  // namespace affectsys::affect
