// Real-time classification pipeline: audio ring buffer -> VAD gate ->
// windowed classification -> EmotionStream smoothing.
//
// This is the runtime shape of the Fig 4 signal flow: samples arrive in
// small device-driver chunks, a sliding window is classified only when
// the VAD saw enough speech, and stable emotions pop out the other end.
// The pipeline also counts classifier invocations, which the offload
// energy study consumes.
//
// Async mode (RealtimeConfig::async): windows surviving the VAD gate
// are copied into a bounded pending queue and classified by a single
// in-order worker task on the global thread pool, so push_audio() —
// the capture path — never blocks on inference.  At most one worker
// runs at a time (the model caches activations, so inference is not
// reentrant), which also keeps the EmotionStream update order identical
// to the synchronous pipeline; after drain() the stable emotion and
// stats match the sync run exactly.  When the queue is full the newest
// window is dropped and counted, mirroring what a saturated capture
// path must do on-device.
//
// Steady-state the per-window path is allocation-free: feature
// extraction reuses the FeatureWorkspace owned by the AffectClassifier
// (classify() is serialized, so one workspace suffices) and VAD stages
// frames through a reused buffer; only the sliding window copy into the
// async queue allocates, and only until the deque's nodes are warm.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "affect/classifier.hpp"
#include "affect/stream.hpp"
#include "affect/vad.hpp"
#include "obs/metrics.hpp"

namespace affectsys::affect {

struct RealtimeConfig {
  double sample_rate_hz = 16000.0;
  double window_s = 1.0;        ///< classification window
  double window_stride_s = 0.5; ///< stride between classification attempts
  /// Minimum VAD speech fraction inside a window to spend a classifier
  /// invocation on it.
  double min_speech_fraction = 0.3;
  VadConfig vad{};
  StreamConfig stream{3, 2.0};
  /// Capture-gap tolerance: when a pushed chunk starts more than this
  /// many seconds after the end of the buffered audio (a stalled or
  /// faulted capture path), the stale window buffer is discarded and
  /// the window deadline clock re-anchors at the next full window,
  /// instead of spinning stride-by-stride over stale samples to catch
  /// the clock up.  <= 0 disables gap detection (pre-existing
  /// behaviour).  Contiguous feeds never trigger it.
  double gap_tolerance_s = 1.0;
  /// Classify on the global thread pool instead of inside push_audio().
  bool async = false;
  /// Bound on pending (accepted, not yet classified) windows in async
  /// or sink mode; overflow drops the newest window and counts it.
  std::size_t max_inflight = 8;
  /// Optional obs namespace (e.g. "serve.s3"): when non-empty, shed
  /// windows are additionally counted into
  /// `<obs_scope>.affect.windows_dropped`, so concurrent pipelines stay
  /// distinguishable.  The un-prefixed aggregate names are recorded
  /// either way (single-session tools keep working unchanged).
  std::string obs_scope;
};

struct RealtimeStats {
  std::uint64_t samples_in = 0;
  std::uint64_t windows_considered = 0;
  std::uint64_t windows_classified = 0;  ///< survived the VAD gate
  std::uint64_t windows_dropped = 0;     ///< async queue overflow
  std::uint64_t stable_changes = 0;
  std::uint64_t gap_resyncs = 0;  ///< buffer resets after capture gaps
};

class RealtimePipeline {
 public:
  /// The classifier must outlive the pipeline.
  RealtimePipeline(AffectClassifier& classifier, const RealtimeConfig& cfg);
  /// Drains outstanding async work before destruction.
  ~RealtimePipeline();

  RealtimePipeline(const RealtimePipeline&) = delete;
  RealtimePipeline& operator=(const RealtimePipeline&) = delete;

  /// Feeds a chunk of audio stamped at `t_s` (chunk start).  Returns the
  /// new stable emotion if this chunk's processing changed it.  In async
  /// mode classification completes in the background, so this always
  /// returns nullopt; observe results via drain() + stable_emotion() or
  /// the raw-label callback.
  std::optional<Emotion> push_audio(double t_s,
                                    std::span<const double> chunk);

  /// Barrier: blocks until every accepted window has been classified
  /// and applied to the stream.  No-op in sync mode.  Makes async runs
  /// deterministic for tests and benchmarks.
  void drain();

  Emotion stable_emotion() const;
  /// In async mode, call drain() first — the worker updates the
  /// smoothing stream and stable-change counters concurrently.
  const RealtimeStats& stats() const { return stats_; }

  /// Observer of every raw (pre-smoothing) classification.  In async
  /// mode it is invoked from the pool worker (windows in order, calls
  /// never overlapping) and must not call back into the pipeline.
  /// Set before the first push_audio().
  void on_raw_label(std::function<void(double, Emotion, float)> cb) {
    raw_cb_ = std::move(cb);
  }

  /// External-inference (sink) mode: windows surviving the VAD gate are
  /// handed to `sink` instead of being classified here — the session
  /// server routes them through its cross-session batcher and reports
  /// each result back via apply_label().  The drop-newest bound applies
  /// unchanged: while max_inflight windows are outstanding (delivered
  /// to the sink, result not yet applied), further windows are shed and
  /// counted exactly like the async queue overflow.  Sync mode only
  /// (throws std::logic_error if cfg.async); set before the first
  /// push_audio().  The sink runs inline inside push_audio.
  using WindowSink = std::function<void(double, std::span<const double>)>;
  void set_window_sink(WindowSink sink);

  /// Applies one externally-classified raw label (sink mode): retires
  /// the oldest outstanding window and pushes the label through the
  /// smoothing stream, returning the new stable emotion on change —
  /// byte-identical stream evolution to the in-pipeline classify path.
  std::optional<Emotion> apply_label(double t_end, Emotion raw);

  /// Windows shed by the drop-newest bound (async queue overflow or
  /// sink-mode backpressure).  Thread-safe, unlike stats(): the session
  /// server's overload logic polls it while the pipeline runs.
  std::uint64_t dropped() const;

 private:
  struct PendingWindow {
    double t_end = 0.0;
    std::vector<double> samples;
  };

  /// Classifies one window and pushes it through the smoothing stream;
  /// returns the new stable emotion on change.
  std::optional<Emotion> classify_and_apply(double t_end,
                                            std::span<const double> window);
  void enqueue_window(double t_end, std::span<const double> window);
  /// Counts one shed window (aggregate + scoped obs).  Caller holds mu_.
  void record_drop();
  /// Worker body: classifies pending windows FIFO until the queue is
  /// empty, then retires itself.
  void drain_queue();

  AffectClassifier& classifier_;
  RealtimeConfig cfg_;
  VoiceActivityDetector vad_;
  EmotionStream stream_;
  RealtimeStats stats_;
  std::vector<double> buffer_;  ///< sliding window of recent samples
  double buffer_end_t_ = 0.0;
  double next_window_t_ = 0.0;
  /// False until the first full window fires; the first deadline anchors
  /// to that moment and subsequent ones advance by exactly one stride.
  bool window_clock_started_ = false;
  std::function<void(double, Emotion, float)> raw_cb_;
  WindowSink sink_;
  /// Sink-mode windows delivered but not yet retired by apply_label();
  /// guarded by mu_.
  std::size_t outstanding_ = 0;
  /// Scoped drop counter resolved once at construction when
  /// cfg.obs_scope is set (null otherwise).
  obs::Counter* scoped_dropped_ = nullptr;

  /// Guards pending_, worker_active_, stream_ and stats_.stable_changes
  /// against the async worker; uncontended (and the worker path unused)
  /// in sync mode.
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::deque<PendingWindow> pending_;
  bool worker_active_ = false;
};

}  // namespace affectsys::affect
