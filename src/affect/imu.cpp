#include "affect/imu.hpp"

#include <cmath>
#include <numbers>
#include <string_view>

#include "signal/features.hpp"

namespace affectsys::affect {

std::string_view activity_name(ActivityState a) {
  switch (a) {
    case ActivityState::kStill:
      return "still";
    case ActivityState::kWalking:
      return "walking";
    case ActivityState::kRunning:
      return "running";
  }
  return "?";
}

ActivityState ActivityTimeline::at(double t_s) const {
  if (segments.empty()) return ActivityState::kStill;
  for (const auto& seg : segments) {
    if (t_s >= seg.start_s && t_s < seg.end_s) return seg.activity;
  }
  return t_s < segments.front().start_s ? segments.front().activity
                                        : segments.back().activity;
}

GaitProfile gait_profile(ActivityState a) {
  switch (a) {
    case ActivityState::kStill:
      return {0.0, 0.0};
    case ActivityState::kWalking:
      return {1.8, 0.25};
    case ActivityState::kRunning:
      return {2.8, 0.9};
  }
  return {};
}

std::vector<double> ImuGenerator::generate(const ActivityTimeline& timeline) {
  const double dur = timeline.duration_s();
  const auto n = static_cast<std::size_t>(dur * cfg_.sample_rate_hz);
  std::vector<double> out(n, 0.0);
  std::mt19937 rng(cfg_.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / cfg_.sample_rate_hz;
    const GaitProfile g = gait_profile(timeline.at(t));
    double v = cfg_.noise_g * gauss(rng);
    if (g.step_hz > 0.0) {
      // Fundamental + second harmonic of the gait, with slight amplitude
      // breathing.
      const double breathe = 1.0 + 0.1 * std::sin(0.4 * t);
      v += g.amplitude_g * breathe *
           std::sin(2.0 * std::numbers::pi * g.step_hz * t);
      v += 0.4 * g.amplitude_g *
           std::sin(4.0 * std::numbers::pi * g.step_hz * t + 0.7);
    }
    out[i] = v;
  }
  return out;
}

ActivityState classify_activity(std::span<const double> imu_window) {
  const double rms = signal::rms(imu_window);
  // Thresholds sit between the gait amplitudes (0 / 0.25 / 0.9 g peak
  // => ~0 / 0.19 / 0.69 g RMS of the combined harmonics).
  if (rms < 0.08) return ActivityState::kStill;
  if (rms < 0.45) return ActivityState::kWalking;
  return ActivityState::kRunning;
}

void add_motion_artifacts(std::vector<double>& ppg, double ppg_rate_hz,
                          const ActivityTimeline& activity,
                          double artifact_gain, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  for (std::size_t i = 0; i < ppg.size(); ++i) {
    const double t = static_cast<double>(i) / ppg_rate_hz;
    const GaitProfile g = gait_profile(activity.at(t));
    if (g.step_hz <= 0.0) continue;
    // Blood sloshing at the step frequency plus broadband rubbing noise.
    ppg[i] += artifact_gain * g.amplitude_g *
              std::sin(2.0 * std::numbers::pi * g.step_hz * t + 1.1);
    ppg[i] += 0.3 * artifact_gain * g.amplitude_g * gauss(rng);
  }
}

}  // namespace affectsys::affect
