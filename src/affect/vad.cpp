#include "affect/vad.hpp"

#include <algorithm>
#include <stdexcept>

#include "signal/features.hpp"
#include "signal/window.hpp"

namespace affectsys::affect {

VoiceActivityDetector::VoiceActivityDetector(const VadConfig& cfg)
    : cfg_(cfg) {
  if (cfg.frame_len == 0 || cfg.hop == 0) {
    throw std::invalid_argument("VAD: frame geometry must be positive");
  }
}

void VoiceActivityDetector::reset() {
  noise_floor_ = 1e-4;
  hangover_ = 0;
}

bool VoiceActivityDetector::process_frame(std::span<const double> frame) {
  const double energy = signal::rms(frame);
  const bool raw_speech = energy > cfg_.snr_threshold * noise_floor_;
  if (raw_speech) {
    hangover_ = cfg_.hangover_frames;
    // Slow upward creep so a stationary "loud" noise cannot masquerade as
    // speech forever (escapes the floor-never-adapts deadlock).
    noise_floor_ = std::min(noise_floor_ * (1.0 + cfg_.floor_adapt), energy);
    return true;
  }
  // Fast adaptation toward quieter levels on non-speech frames.
  noise_floor_ = (1.0 - cfg_.floor_adapt) * noise_floor_ +
                 cfg_.floor_adapt * std::max(energy, 1e-6);
  if (hangover_ > 0) {
    --hangover_;
    return true;
  }
  return false;
}

double VoiceActivityDetector::speech_fraction(
    std::span<const double> signal) {
  // Deliberately does NOT reset(): the noise floor keeps adapting across
  // calls, which is what a continuously-running wearable detector does.
  // Frames are staged through one reused buffer instead of materializing
  // the whole frame list; the zero-padded copy matches frame_signal's
  // output, so the decisions are identical.
  const std::size_t total =
      signal::frame_count(signal.size(), cfg_.frame_len, cfg_.hop);
  frame_buf_.resize(cfg_.frame_len);
  std::size_t speech = 0;
  for (std::size_t t = 0; t < total; ++t) {
    signal::copy_frame(signal, t, cfg_.hop, frame_buf_);
    speech += process_frame(frame_buf_);
  }
  return total ? static_cast<double>(speech) / static_cast<double>(total)
               : 0.0;
}

}  // namespace affectsys::affect
