#include "affect/ppg.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <numbers>

namespace affectsys::affect {
namespace {

/// Session-state index used by the fusion logic:
/// Relaxed(0) < Distracted(1) < Concentrated(2) < Tense(3).
constexpr std::array<Emotion, 4> kStateOrder = {
    Emotion::kRelaxed, Emotion::kDistracted, Emotion::kConcentrated,
    Emotion::kTense};

int state_index(Emotion e) {
  for (std::size_t i = 0; i < kStateOrder.size(); ++i) {
    if (kStateOrder[i] == e) return static_cast<int>(i);
  }
  return 1;  // default toward low-attention
}

}  // namespace

CardioProfile cardio_profile(Emotion e) {
  const CircumplexPoint p = circumplex(e);
  const double arousal01 = (p.arousal + 1.0) / 2.0;
  CardioProfile c;
  // ~62..86 bpm across the arousal range; negative valence adds a small
  // stress component.  Deliberately modest gain: state means overlap once
  // autonomic wander is added, as in real recordings.
  c.mean_hr_bpm = 62.0 + 24.0 * arousal01 + (p.valence < 0 ? 3.0 : 0.0);
  // HRV collapses with arousal: 60 ms relaxed -> ~15 ms tense.
  c.rmssd_ms = 60.0 - 45.0 * arousal01;
  c.rsa_depth = 0.05 - 0.03 * arousal01;
  return c;
}

std::vector<double> PpgGenerator::generate(const EmotionTimeline& timeline) {
  const double dur = timeline.duration_s();
  const auto n = static_cast<std::size_t>(dur * cfg_.sample_rate_hz);
  std::vector<double> out(n, 0.0);
  rr_.clear();

  std::mt19937 rng(cfg_.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);

  // Generate the beat train first, emotion-dependent per interval, with
  // a slow autonomic random-walk wander on top of the state mean.
  std::vector<double> beat_times;
  double t = 0.2;
  double wander = 0.0;
  while (t < dur) {
    const CardioProfile prof = cardio_profile(timeline.at(t));
    wander = std::clamp(wander + 0.01 * cfg_.hr_wander * gauss(rng),
                        -cfg_.hr_wander, cfg_.hr_wander);
    const double mean_rr = 60.0 / prof.mean_hr_bpm * (1.0 + wander);
    // RR variability: white HRV component (scaled so successive-diff RMS
    // ~= rmssd) + respiratory sinus arrhythmia.
    const double hrv_s = prof.rmssd_ms / 1000.0 / std::numbers::sqrt2;
    const double rsa =
        prof.rsa_depth * std::sin(2.0 * std::numbers::pi *
                                  cfg_.respiration_hz * t);
    double rr = mean_rr * (1.0 + rsa) + hrv_s * gauss(rng);
    rr = std::clamp(rr, 0.33, 1.5);  // 40..180 bpm physiological bounds
    beat_times.push_back(t);
    rr_.push_back(rr);
    t += rr;
  }

  // Render each beat: systolic pulse + dicrotic wave (raised cosines).
  auto add_pulse = [&](double onset, double width, double amp) {
    const auto begin = static_cast<std::size_t>(onset * cfg_.sample_rate_hz);
    const auto len = static_cast<std::size_t>(width * cfg_.sample_rate_hz);
    for (std::size_t i = 0; i < len && begin + i < n; ++i) {
      const double frac = static_cast<double>(i) / static_cast<double>(len);
      out[begin + i] +=
          amp * 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * frac));
    }
  };
  for (double bt : beat_times) {
    add_pulse(bt, cfg_.pulse_width_s, 1.0);
    add_pulse(bt + cfg_.dicrotic_delay_s, cfg_.pulse_width_s * 0.8,
              cfg_.dicrotic_scale);
  }
  for (auto& v : out) v += cfg_.noise * gauss(rng);
  return out;
}

std::vector<double> detect_beats(std::span<const double> ppg,
                                 double sample_rate_hz, double min_rr_s) {
  std::vector<double> beats;
  if (ppg.size() < 3) return beats;
  // Adaptive threshold: half of a running amplitude estimate.
  double amp = 0.0;
  for (double v : ppg) amp = std::max(amp, v);
  const double threshold = 0.45 * amp;
  const auto refractory =
      static_cast<std::size_t>(min_rr_s * sample_rate_hz);
  std::size_t last_beat = 0;
  bool has_beat = false;
  for (std::size_t i = 1; i + 1 < ppg.size(); ++i) {
    const bool is_peak =
        ppg[i] > threshold && ppg[i] >= ppg[i - 1] && ppg[i] > ppg[i + 1];
    if (!is_peak) continue;
    if (has_beat && i - last_beat < refractory) continue;
    beats.push_back(static_cast<double>(i) / sample_rate_hz);
    last_beat = i;
    has_beat = true;
  }
  return beats;
}

HrvFeatures hrv_features(std::span<const double> beat_times_s) {
  HrvFeatures f;
  f.beats = beat_times_s.size();
  if (beat_times_s.size() < 3) return f;
  std::vector<double> rr(beat_times_s.size() - 1);
  for (std::size_t i = 1; i < beat_times_s.size(); ++i) {
    rr[i - 1] = beat_times_s[i] - beat_times_s[i - 1];
  }
  double mean_rr = 0.0;
  for (double v : rr) mean_rr += v;
  mean_rr /= static_cast<double>(rr.size());
  f.mean_hr_bpm = 60.0 / mean_rr;

  double sdnn = 0.0;
  for (double v : rr) sdnn += (v - mean_rr) * (v - mean_rr);
  f.sdnn_ms = std::sqrt(sdnn / static_cast<double>(rr.size())) * 1000.0;

  double rmssd = 0.0;
  for (std::size_t i = 1; i < rr.size(); ++i) {
    const double d = rr[i] - rr[i - 1];
    rmssd += d * d;
  }
  f.rmssd_ms = std::sqrt(rmssd / static_cast<double>(rr.size() - 1)) * 1000.0;
  return f;
}

double MultimodalEstimator::arousal_score_ppg(
    std::span<const double> window) const {
  const auto beats = detect_beats(window, ppg_rate_hz_);
  return hrv_features(beats).mean_hr_bpm;
}

void MultimodalEstimator::calibrate(const std::vector<double>& scl_trace,
                                    double scl_rate_hz,
                                    const std::vector<double>& ppg_trace,
                                    double ppg_rate_hz,
                                    const EmotionTimeline& truth) {
  scl_.calibrate(scl_trace, scl_rate_hz, truth);
  ppg_rate_hz_ = ppg_rate_hz;

  const auto win = static_cast<std::size_t>(30.0 * ppg_rate_hz);
  std::map<Emotion, std::vector<double>> scores;
  for (std::size_t start = 0; start + win <= ppg_trace.size(); start += win) {
    const double t_s = static_cast<double>(start) / ppg_rate_hz;
    scores[truth.at(t_s)].push_back(
        arousal_score_ppg({ppg_trace.data() + start, win}));
  }
  auto median = [](std::vector<double>& v) {
    if (v.empty()) return 0.0;
    std::nth_element(v.begin(), v.begin() + static_cast<long>(v.size() / 2),
                     v.end());
    return v[v.size() / 2];
  };
  std::array<double, 4> med{};
  for (std::size_t i = 0; i < kStateOrder.size(); ++i) {
    med[i] = median(scores[kStateOrder[i]]);
  }
  for (std::size_t i = 1; i < med.size(); ++i) {
    med[i] = std::max(med[i], med[i - 1] + 0.1);
  }
  h1_ = 0.5 * (med[0] + med[1]);
  h2_ = 0.5 * (med[1] + med[2]);
  h3_ = 0.5 * (med[2] + med[3]);

  // Reliability weights: each channel's accuracy on the calibration
  // recording (floored so neither channel is silenced entirely).
  const auto swin = static_cast<std::size_t>(30.0 * scl_rate_hz);
  std::size_t scl_ok = 0, ppg_ok = 0, total = 0;
  for (std::size_t w = 0; (w + 1) * swin <= scl_trace.size() &&
                          (w + 1) * win <= ppg_trace.size();
       ++w) {
    const double t = static_cast<double>(w) * 30.0;
    const Emotion target = truth.at(t);
    scl_ok += scl_.classify({scl_trace.data() + w * swin, swin}) == target;
    ppg_ok += classify_ppg({ppg_trace.data() + w * win, win}) == target;
    ++total;
  }
  if (total > 0) {
    w_scl_ = std::max(0.1, static_cast<double>(scl_ok) / total);
    w_ppg_ = std::max(0.1, static_cast<double>(ppg_ok) / total);
  }
}

Emotion MultimodalEstimator::classify_ppg(
    std::span<const double> window) const {
  const double hr = arousal_score_ppg(window);
  if (hr < h1_) return kStateOrder[0];
  if (hr < h2_) return kStateOrder[1];
  if (hr < h3_) return kStateOrder[2];
  return kStateOrder[3];
}

Emotion MultimodalEstimator::classify(std::span<const double> scl_window,
                                      std::span<const double> ppg_window) const {
  const int i_scl = state_index(scl_.classify(scl_window));
  const int i_ppg = state_index(classify_ppg(ppg_window));
  // Reliability-weighted ordinal average; ties round toward the more
  // reliable channel.
  const double fused =
      (w_scl_ * i_scl + w_ppg_ * i_ppg) / (w_scl_ + w_ppg_);
  int idx = static_cast<int>(std::lround(fused));
  if (std::abs(fused - std::floor(fused) - 0.5) < 1e-9) {
    idx = w_ppg_ >= w_scl_ ? i_ppg : i_scl;
  }
  idx = std::clamp(idx, 0, 3);
  return kStateOrder[static_cast<std::size_t>(idx)];
}

}  // namespace affectsys::affect
