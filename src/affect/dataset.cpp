#include "affect/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace affectsys::affect {

LabelledCorpus build_corpus(const CorpusProfile& profile,
                            const FeatureExtractor& fx, unsigned seed) {
  LabelledCorpus corpus;
  corpus.name = profile.name;
  corpus.label_set = profile.emotions;

  SpeechSynthesizer synth(seed);
  const std::vector<Utterance> utts = synth.synthesize_corpus(profile);
  corpus.samples.reserve(utts.size());
  for (const Utterance& u : utts) {
    const auto it = std::find(profile.emotions.begin(),
                              profile.emotions.end(), u.emotion);
    if (it == profile.emotions.end()) {
      throw std::logic_error("build_corpus: utterance emotion not in label set");
    }
    nn::Sample s;
    s.features = fx.extract(u.samples);
    s.label = static_cast<std::size_t>(it - profile.emotions.begin());
    corpus.samples.push_back(std::move(s));
  }
  return corpus;
}

FeatureConfig default_feature_config() {
  FeatureConfig fc;
  fc.mfcc.sample_rate = 16000.0;
  fc.mfcc.frame_len = 400;
  fc.mfcc.hop = 160;
  fc.mfcc.fft_size = 512;
  fc.mfcc.num_filters = 26;
  fc.mfcc.num_coeffs = 13;
  fc.timesteps = 64;
  fc.standardize = true;
  return fc;
}

}  // namespace affectsys::affect
