// Generative skin-conductance (electrodermal activity) model.
//
// Substitute for the uulmMAC recordings used in the Fig 6 playback case
// study.  The signal is the standard EDA decomposition: a slowly drifting
// tonic skin-conductance level (SCL) plus phasic skin-conductance
// responses (SCRs) — bi-exponential impulses whose rate and amplitude
// scale with the arousal of the active emotion segment.  The paper's
// 40-minute visual-search-task session timeline
// (Distracted 0-14 min, Concentrated 14-20, Tense 20-29, Relaxed 29-40)
// is provided as a canned scenario.
#pragma once

#include <random>
#include <span>
#include <vector>

#include "affect/emotion.hpp"

namespace affectsys::affect {

/// One contiguous emotion interval of a session.
struct EmotionSegment {
  double start_s = 0.0;
  double end_s = 0.0;
  Emotion emotion = Emotion::kNeutral;
};

/// An emotion timeline covering [0, duration_s).
struct EmotionTimeline {
  std::vector<EmotionSegment> segments;

  double duration_s() const {
    return segments.empty() ? 0.0 : segments.back().end_s;
  }
  /// Emotion active at time t (clamps to first/last segment).
  Emotion at(double t_s) const;
};

/// The paper's 40-minute uulmMAC-style session.
EmotionTimeline uulmmac_session_timeline();

struct SclConfig {
  double sample_rate_hz = 4.0;    ///< EDA is conventionally sampled at 4 Hz
  double tonic_base_us = 2.0;     ///< baseline SCL in microsiemens
  double tonic_drift_us = 0.3;    ///< random-walk drift magnitude
  double scr_rise_s = 1.0;        ///< SCR rise time constant
  double scr_decay_s = 4.0;       ///< SCR decay time constant
  unsigned seed = 42;
};

/// SCR event rate (per minute) and amplitude (uS) for an emotion, derived
/// from its circumplex arousal.
struct ScrIntensity {
  double rate_per_min = 0.0;
  double amplitude_us = 0.0;
};
ScrIntensity scr_intensity(Emotion e);

/// Generates an SCL trace over an emotion timeline.
class SclGenerator {
 public:
  explicit SclGenerator(const SclConfig& cfg) : cfg_(cfg) {}

  /// Samples at cfg.sample_rate_hz covering the whole timeline.
  std::vector<double> generate(const EmotionTimeline& timeline);

  const SclConfig& config() const { return cfg_; }

 private:
  SclConfig cfg_;
};

/// Window-level SC features -> emotion inference, the simple magnitude
/// heuristic the paper applies to the uulmMAC trace ("the magnitude of the
/// varying SC signal could be used to derive users' emotions").
///
/// Thresholds are calibrated against SclGenerator's output statistics in
/// calibrate(); classify() then maps windowed SCR activity to the four
/// session states.
class SclEmotionEstimator {
 public:
  /// Fits activity thresholds from a reference trace + its ground truth.
  void calibrate(const std::vector<double>& trace, double sample_rate_hz,
                 const EmotionTimeline& truth);

  /// Emotion estimate for a window of SC samples.
  Emotion classify(std::span<const double> window) const;

  /// Phasic activity score of a window (mean absolute first difference).
  static double activity_score(std::span<const double> window);

 private:
  // Ascending activity thresholds separating Relaxed | Distracted |
  // Concentrated | Tense.
  double t1_ = 0.005, t2_ = 0.02, t3_ = 0.05;
};

}  // namespace affectsys::affect
