#include "affect/realtime.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace affectsys::affect {

RealtimePipeline::RealtimePipeline(AffectClassifier& classifier,
                                   const RealtimeConfig& cfg)
    : classifier_(classifier), cfg_(cfg), vad_(cfg.vad),
      stream_(cfg.stream) {
  if (!cfg_.obs_scope.empty()) {
    scoped_dropped_ =
        &obs::MetricScope(cfg_.obs_scope).counter("affect.windows_dropped");
  }
}

void RealtimePipeline::set_window_sink(WindowSink sink) {
  if (cfg_.async && sink) {
    throw std::logic_error(
        "RealtimePipeline: window sink requires sync mode (async=false)");
  }
  sink_ = std::move(sink);
}

RealtimePipeline::~RealtimePipeline() { drain(); }

std::optional<Emotion> RealtimePipeline::push_audio(
    double t_s, std::span<const double> chunk) {
  if (cfg_.gap_tolerance_s > 0.0 && !buffer_.empty() &&
      t_s > buffer_end_t_ + cfg_.gap_tolerance_s) {
    // Capture gap: the buffered tail is stale audio from before the
    // stall.  Windows spanning the gap would splice unrelated speech,
    // and the anchored deadline clock would classify stride-by-stride
    // through the dead time — drop the tail and re-anchor instead.
    buffer_.clear();
    window_clock_started_ = false;
    ++stats_.gap_resyncs;
    AFFECTSYS_COUNT("affect.gap_resyncs", 1);
  }
  stats_.samples_in += chunk.size();
  AFFECTSYS_COUNT("affect.samples_in", chunk.size());
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
  buffer_end_t_ =
      t_s + static_cast<double>(chunk.size()) / cfg_.sample_rate_hz;

  const auto window_len =
      static_cast<std::size_t>(cfg_.window_s * cfg_.sample_rate_hz);
  // Keep at most one window of history.
  if (buffer_.size() > window_len) {
    buffer_.erase(buffer_.begin(),
                  buffer_.end() - static_cast<long>(window_len));
  }

  std::optional<Emotion> changed;
  while (buffer_.size() >= window_len && buffer_end_t_ >= next_window_t_) {
    // The deadline clock is anchored once, when the first full window is
    // available, and then advances by exactly one stride per considered
    // window.  Advancing from buffer_end_t_ instead would quantize the
    // stride up to the chunk boundary (drift), and a chunk longer than
    // the stride would silently skip classification windows.
    if (!window_clock_started_) {
      window_clock_started_ = true;
      next_window_t_ = buffer_end_t_;
    }
    next_window_t_ += cfg_.window_stride_s;
    ++stats_.windows_considered;
    AFFECTSYS_COUNT("affect.windows_considered", 1);
    const std::span<const double> window{
        buffer_.data() + buffer_.size() - window_len, window_len};
    if (vad_.speech_fraction(window) < cfg_.min_speech_fraction) {
      continue;  // silence: save the classifier invocation
    }
    if (sink_) {
      // Sink mode: the window is classified externally (the session
      // server's batcher); enforce the same drop-newest bound the async
      // queue applies, against the count of results not yet returned
      // via apply_label().
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (outstanding_ >= cfg_.max_inflight) {
          record_drop();
          continue;
        }
        ++outstanding_;
      }
      ++stats_.windows_classified;
      AFFECTSYS_COUNT("affect.windows_classified", 1);
      sink_(buffer_end_t_, window);
      continue;
    }
    ++stats_.windows_classified;
    AFFECTSYS_COUNT("affect.windows_classified", 1);
    if (cfg_.async) {
      enqueue_window(buffer_end_t_, window);
      continue;
    }
    if (auto c = classify_and_apply(buffer_end_t_, window)) changed = c;
  }
  return changed;
}

std::optional<Emotion> RealtimePipeline::classify_and_apply(
    double t_end, std::span<const double> window) {
  AFFECTSYS_TIME_SCOPE("affect.window_classify_ns");
  const ClassificationResult res = classifier_.classify(window);
  if (raw_cb_) raw_cb_(t_end, res.emotion, res.confidence);
  std::lock_guard<std::mutex> lk(mu_);
  if (auto c = stream_.push(t_end, res.emotion)) {
    ++stats_.stable_changes;
    AFFECTSYS_COUNT("affect.stable_changes", 1);
    return c;
  }
  return std::nullopt;
}

void RealtimePipeline::enqueue_window(double t_end,
                                      std::span<const double> window) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (pending_.size() >= cfg_.max_inflight) {
      // Capture must not block on a saturated classifier: shed the
      // newest window and account for it.
      record_drop();
      return;
    }
    pending_.push_back(
        PendingWindow{t_end, std::vector<double>(window.begin(), window.end())});
    AFFECTSYS_GAUGE_SET("affect.inflight_windows", pending_.size());
    if (worker_active_) return;  // running worker will pick it up
    worker_active_ = true;
  }
  // One worker at a time: inference mutates layer activation caches, and
  // FIFO application keeps smoothing identical to the sync pipeline.
  // With an inline (serial) pool this executes before submit returns,
  // degrading async mode to the synchronous behaviour.
  core::global_pool().submit([this] { drain_queue(); });
}

void RealtimePipeline::drain_queue() {
  for (;;) {
    PendingWindow w;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (pending_.empty()) {
        worker_active_ = false;
        idle_cv_.notify_all();
        return;
      }
      w = std::move(pending_.front());
      pending_.pop_front();
      AFFECTSYS_GAUGE_SET("affect.inflight_windows", pending_.size());
    }
    try {
      classify_and_apply(w.t_end, w.samples);
    } catch (...) {
      // A window that fails to classify must not wedge the worker (and
      // with it drain()); count it and keep consuming.
      AFFECTSYS_COUNT("affect.async_classify_errors", 1);
    }
  }
}

void RealtimePipeline::record_drop() {
  // Caller holds mu_.
  ++stats_.windows_dropped;
  AFFECTSYS_COUNT("affect.windows_dropped", 1);
  if (scoped_dropped_) scoped_dropped_->add(1);
}

std::optional<Emotion> RealtimePipeline::apply_label(double t_end,
                                                     Emotion raw) {
  std::lock_guard<std::mutex> lk(mu_);
  if (outstanding_ > 0) --outstanding_;
  if (auto c = stream_.push(t_end, raw)) {
    ++stats_.stable_changes;
    AFFECTSYS_COUNT("affect.stable_changes", 1);
    return c;
  }
  return std::nullopt;
}

std::uint64_t RealtimePipeline::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_.windows_dropped;
}

void RealtimePipeline::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return pending_.empty() && !worker_active_; });
}

Emotion RealtimePipeline::stable_emotion() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stream_.stable();
}

}  // namespace affectsys::affect
