#include "affect/realtime.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace affectsys::affect {

RealtimePipeline::RealtimePipeline(AffectClassifier& classifier,
                                   const RealtimeConfig& cfg)
    : classifier_(classifier), cfg_(cfg), vad_(cfg.vad),
      stream_(cfg.stream) {}

std::optional<Emotion> RealtimePipeline::push_audio(
    double t_s, std::span<const double> chunk) {
  stats_.samples_in += chunk.size();
  AFFECTSYS_COUNT("affect.samples_in", chunk.size());
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
  buffer_end_t_ =
      t_s + static_cast<double>(chunk.size()) / cfg_.sample_rate_hz;

  const auto window_len =
      static_cast<std::size_t>(cfg_.window_s * cfg_.sample_rate_hz);
  // Keep at most one window of history.
  if (buffer_.size() > window_len) {
    buffer_.erase(buffer_.begin(),
                  buffer_.end() - static_cast<long>(window_len));
  }

  std::optional<Emotion> changed;
  while (buffer_.size() >= window_len && buffer_end_t_ >= next_window_t_) {
    // The deadline clock is anchored once, when the first full window is
    // available, and then advances by exactly one stride per considered
    // window.  Advancing from buffer_end_t_ instead would quantize the
    // stride up to the chunk boundary (drift), and a chunk longer than
    // the stride would silently skip classification windows.
    if (!window_clock_started_) {
      window_clock_started_ = true;
      next_window_t_ = buffer_end_t_;
    }
    next_window_t_ += cfg_.window_stride_s;
    ++stats_.windows_considered;
    AFFECTSYS_COUNT("affect.windows_considered", 1);
    const std::span<const double> window{
        buffer_.data() + buffer_.size() - window_len, window_len};
    if (vad_.speech_fraction(window) < cfg_.min_speech_fraction) {
      continue;  // silence: save the classifier invocation
    }
    ++stats_.windows_classified;
    AFFECTSYS_COUNT("affect.windows_classified", 1);
    AFFECTSYS_TIME_SCOPE("affect.window_classify_ns");
    const ClassificationResult res = classifier_.classify(window);
    if (raw_cb_) raw_cb_(buffer_end_t_, res.emotion, res.confidence);
    if (auto c = stream_.push(buffer_end_t_, res.emotion)) {
      ++stats_.stable_changes;
      AFFECTSYS_COUNT("affect.stable_changes", 1);
      changed = c;
    }
  }
  return changed;
}

}  // namespace affectsys::affect
