#include "affect/stream.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace affectsys::affect {

EmotionStream::EmotionStream(const StreamConfig& cfg) : cfg_(cfg) {
  if (cfg.vote_window == 0) {
    throw std::invalid_argument("EmotionStream: vote_window must be >= 1");
  }
  window_.reserve(cfg.vote_window);
}

Emotion EmotionStream::majority() const {
  std::array<std::size_t, kNumEmotions> counts{};
  for (Emotion e : window_) ++counts[static_cast<std::size_t>(e)];
  std::size_t best = 0;
  for (std::size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  return static_cast<Emotion>(best);
}

std::optional<Emotion> EmotionStream::push(double t_s, Emotion raw) {
  if (window_.size() < cfg_.vote_window) {
    window_.push_back(raw);
  } else {
    window_[window_next_] = raw;
    window_next_ = (window_next_ + 1) % cfg_.vote_window;
  }

  const Emotion candidate = majority();
  if (candidate == stable_) return std::nullopt;
  if (t_s - last_change_s_ < cfg_.min_dwell_s) return std::nullopt;

  stable_ = candidate;
  last_change_s_ = t_s;
  ++transitions_;
  for (auto& cb : callbacks_) cb(t_s, stable_);
  return stable_;
}

}  // namespace affectsys::affect
