#include "affect/features.hpp"

#include <cmath>

#include "signal/features.hpp"
#include "signal/window.hpp"

namespace affectsys::affect {

FeatureExtractor::FeatureExtractor(const FeatureConfig& cfg)
    : cfg_(cfg), mfcc_(cfg.mfcc) {}

nn::Matrix FeatureExtractor::extract(std::span<const double> samples) const {
  const auto& mc = cfg_.mfcc;
  const auto frames = signal::frame_signal(samples, mc.frame_len, mc.hop);
  const std::size_t dim = feature_dim();
  nn::Matrix out(cfg_.timesteps, dim);

  const std::size_t T = std::min(frames.size(), cfg_.timesteps);
  for (std::size_t t = 0; t < T; ++t) {
    const auto& frame = frames[t];
    const std::vector<double> mfcc = mfcc_.extract_frame(frame);
    for (std::size_t c = 0; c < mfcc.size(); ++c) {
      out(t, c) = static_cast<float>(mfcc[c]);
    }
    std::size_t c = mfcc.size();
    out(t, c++) = static_cast<float>(signal::zero_crossing_rate(frame));
    out(t, c++) = static_cast<float>(signal::rms(frame));
    const auto pitch =
        signal::estimate_pitch(frame, mc.sample_rate, 60.0, 400.0);
    // Unvoiced frames carry pitch 0; voiced pitch is scaled to O(1).
    out(t, c++) = static_cast<float>(pitch.value_or(0.0) / 400.0);
    out(t, c++) =
        static_cast<float>(signal::mean_magnitude(frame, mc.fft_size));
  }

  if (cfg_.standardize && T > 1) {
    for (std::size_t c = 0; c < dim; ++c) {
      double mean = 0.0;
      for (std::size_t t = 0; t < T; ++t) mean += out(t, c);
      mean /= static_cast<double>(T);
      double var = 0.0;
      for (std::size_t t = 0; t < T; ++t) {
        const double d = out(t, c) - mean;
        var += d * d;
      }
      var /= static_cast<double>(T);
      const double sd = std::sqrt(var) + 1e-6;
      for (std::size_t t = 0; t < cfg_.timesteps; ++t) {
        out(t, c) = static_cast<float>((out(t, c) - mean) / sd);
      }
    }
  }
  return out;
}

}  // namespace affectsys::affect
