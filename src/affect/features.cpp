#include "affect/features.hpp"

#include <cmath>

#include "signal/features.hpp"
#include "signal/fft.hpp"
#include "signal/window.hpp"

namespace affectsys::affect {

FeatureExtractor::FeatureExtractor(const FeatureConfig& cfg)
    : cfg_(cfg), mfcc_(cfg.mfcc) {}

nn::Matrix FeatureExtractor::extract(std::span<const double> samples) const {
  FeatureWorkspace ws;
  return extract_into(samples, ws);  // copies out of the workspace
}

void FeatureExtractor::prepare_workspace(FeatureWorkspace& ws) const {
  const auto& mc = cfg_.mfcc;
  const std::size_t dim = feature_dim();
  // Lazy sizing: no-ops once the workspace has seen one window.
  ws.frame.resize(mc.frame_len);
  ws.mfcc_out.resize(std::min(mc.num_coeffs, mc.num_filters));
  ws.acorr.resize(mc.frame_len);
  ws.acorr_work.resize(signal::next_pow2(2 * mc.frame_len) + 1);
  ws.mag.resize(mc.fft_size / 2 + 1);
  ws.mag_work.resize(mc.fft_size + 1);
  if (ws.features.rows() != cfg_.timesteps || ws.features.cols() != dim) {
    ws.features = nn::Matrix(cfg_.timesteps, dim);
  } else {
    ws.features.fill(0.0f);
  }
}

void FeatureExtractor::compute_frame_row(std::span<const double> frame,
                                         std::span<float> row,
                                         FeatureWorkspace& ws) const {
  const auto& mc = cfg_.mfcc;
  mfcc_.extract_frame(frame, ws.mfcc_out, ws.mfcc);
  for (std::size_t c = 0; c < ws.mfcc_out.size(); ++c) {
    row[c] = static_cast<float>(ws.mfcc_out[c]);
  }
  std::size_t c = ws.mfcc_out.size();
  row[c++] = static_cast<float>(signal::zero_crossing_rate(frame));
  row[c++] = static_cast<float>(signal::rms(frame));
  const auto pitch = signal::estimate_pitch(frame, mc.sample_rate, 60.0,
                                            400.0, 0.3, ws.acorr,
                                            ws.acorr_work);
  // Unvoiced frames carry pitch 0; voiced pitch is scaled to O(1).
  row[c++] = static_cast<float>(pitch.value_or(0.0) / 400.0);
  row[c++] = static_cast<float>(
      signal::mean_magnitude(frame, mc.fft_size, ws.mag, ws.mag_work));
}

void FeatureExtractor::standardize_rows(nn::Matrix& out,
                                        std::size_t frames) const {
  const std::size_t T = std::min(frames, cfg_.timesteps);
  if (!cfg_.standardize || T <= 1) return;
  const std::size_t dim = feature_dim();
  for (std::size_t c = 0; c < dim; ++c) {
    double mean = 0.0;
    for (std::size_t t = 0; t < T; ++t) mean += out(t, c);
    mean /= static_cast<double>(T);
    double var = 0.0;
    for (std::size_t t = 0; t < T; ++t) {
      const double d = out(t, c) - mean;
      var += d * d;
    }
    var /= static_cast<double>(T);
    const double sd = std::sqrt(var) + 1e-6;
    for (std::size_t t = 0; t < cfg_.timesteps; ++t) {
      out(t, c) = static_cast<float>((out(t, c) - mean) / sd);
    }
  }
}

const nn::Matrix& FeatureExtractor::extract_into(
    std::span<const double> samples, FeatureWorkspace& ws) const {
  const auto& mc = cfg_.mfcc;
  prepare_workspace(ws);
  nn::Matrix& out = ws.features;

  const std::size_t frames =
      signal::frame_count(samples.size(), mc.frame_len, mc.hop);
  const std::size_t T = std::min(frames, cfg_.timesteps);
  for (std::size_t t = 0; t < T; ++t) {
    signal::copy_frame(samples, t, mc.hop, ws.frame);
    compute_frame_row(ws.frame, out.row(t), ws);
  }
  standardize_rows(out, T);
  return out;
}

nn::Matrix FeatureExtractor::extract_ref(
    std::span<const double> samples) const {
  const auto& mc = cfg_.mfcc;
  const auto frames = signal::frame_signal(samples, mc.frame_len, mc.hop);
  const std::size_t dim = feature_dim();
  nn::Matrix out(cfg_.timesteps, dim);

  const std::size_t T = std::min(frames.size(), cfg_.timesteps);
  for (std::size_t t = 0; t < T; ++t) {
    const auto& frame = frames[t];
    const std::vector<double> mfcc = mfcc_.extract_frame_ref(frame);
    for (std::size_t c = 0; c < mfcc.size(); ++c) {
      out(t, c) = static_cast<float>(mfcc[c]);
    }
    std::size_t c = mfcc.size();
    out(t, c++) = static_cast<float>(signal::zero_crossing_rate(frame));
    out(t, c++) = static_cast<float>(signal::rms(frame));
    const auto pitch =
        signal::estimate_pitch_ref(frame, mc.sample_rate, 60.0, 400.0);
    out(t, c++) = static_cast<float>(pitch.value_or(0.0) / 400.0);
    // The reference magnitude path goes through the full complex FFT at
    // the configured transform size (the pre-PR magnitude_spectrum).
    std::vector<std::complex<double>> buf(mc.fft_size);
    for (std::size_t i = 0; i < frame.size(); ++i) buf[i] = {frame[i], 0.0};
    signal::fft_inplace(buf);
    double acc = 0.0;
    const std::size_t nbins = mc.fft_size / 2 + 1;
    for (std::size_t k = 0; k < nbins; ++k) acc += std::abs(buf[k]);
    out(t, c++) = static_cast<float>(acc / static_cast<double>(nbins));
  }

  if (cfg_.standardize && T > 1) {
    for (std::size_t c = 0; c < dim; ++c) {
      double mean = 0.0;
      for (std::size_t t = 0; t < T; ++t) mean += out(t, c);
      mean /= static_cast<double>(T);
      double var = 0.0;
      for (std::size_t t = 0; t < T; ++t) {
        const double d = out(t, c) - mean;
        var += d * d;
      }
      var /= static_cast<double>(T);
      const double sd = std::sqrt(var) + 1e-6;
      for (std::size_t t = 0; t < cfg_.timesteps; ++t) {
        out(t, c) = static_cast<float>((out(t, c) - mean) / sd);
      }
    }
  }
  return out;
}

}  // namespace affectsys::affect
