// Persistence for biosignal traces and emotion timelines (CSV), so
// synthetic "recordings" can be archived and replayed like dataset files.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "affect/scl.hpp"

namespace affectsys::affect {

/// Writes a uniformly-sampled trace as CSV: a `# rate_hz=<r>` comment
/// line then one sample per line.
void save_trace_csv(std::ostream& os, std::span<const double> samples,
                    double sample_rate_hz);

/// Parses a trace written by save_trace_csv().
/// @param rate_out receives the sampling rate
std::vector<double> load_trace_csv(std::istream& is, double* rate_out);

/// Writes an emotion timeline as CSV: start_s,end_s,emotion.
void save_timeline_csv(std::ostream& os, const EmotionTimeline& timeline);

/// Parses a timeline written by save_timeline_csv().
EmotionTimeline load_timeline_csv(std::istream& is);

}  // namespace affectsys::affect
