// Electrocardiogram (ECG) channel: waveform synthesis and R-peak
// detection.
//
// The wearable in Fig 2/Fig 4 carries an ECG sensor alongside PPG and
// EDA.  This module synthesizes a P-QRS-T morphology whose rhythm follows
// the same emotion-dependent cardio profile as the PPG channel, and
// recovers beats with a Pan-Tompkins-style detector (derivative ->
// squaring -> moving-window integration -> adaptive threshold).  HRV
// features then come from affect/ppg.hpp's hrv_features(), so ECG slots
// into the multimodal fusion as a drop-in beat source.
#pragma once

#include <random>
#include <span>
#include <vector>

#include "affect/ppg.hpp"  // CardioProfile, HrvFeatures
#include "affect/scl.hpp"  // EmotionTimeline

namespace affectsys::affect {

struct EcgConfig {
  double sample_rate_hz = 250.0;  ///< clinical-wearable class rate
  double noise = 0.01;            ///< baseline noise sigma (mV scale)
  double baseline_wander = 0.05;  ///< respiration-coupled drift amplitude
  double respiration_hz = 0.25;
  /// Slow autonomic heart-rate wander (matches PpgConfig::hr_wander).
  double hr_wander = 0.06;
  unsigned seed = 17;
};

/// Generates an ECG trace over an emotion timeline (amplitude in mV).
class EcgGenerator {
 public:
  explicit EcgGenerator(const EcgConfig& cfg) : cfg_(cfg) {}

  std::vector<double> generate(const EmotionTimeline& timeline);

  /// Ground-truth R-peak times of the last generate() call.
  const std::vector<double>& last_r_peaks() const { return r_peaks_; }

  const EcgConfig& config() const { return cfg_; }

 private:
  EcgConfig cfg_;
  std::vector<double> r_peaks_;
};

/// Pan-Tompkins-style R-peak detector.  Returns peak times in seconds.
std::vector<double> detect_r_peaks(std::span<const double> ecg,
                                   double sample_rate_hz);

}  // namespace affectsys::affect
