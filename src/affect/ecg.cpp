#include "affect/ecg.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace affectsys::affect {
namespace {

/// Gaussian bump helper for the P/Q/R/S/T waves.
double wave(double t, double center, double width, double amp) {
  const double d = (t - center) / width;
  return amp * std::exp(-0.5 * d * d);
}

/// One beat's P-QRS-T morphology at time `t` seconds after beat onset,
/// scaled to the RR interval so waves do not collide at high heart rates.
double pqrst(double t, double rr) {
  const double s = std::min(rr, 1.0);  // morphology compresses above 60 bpm
  double v = 0.0;
  v += wave(t, 0.16 * s, 0.025 * s, 0.15);   // P
  v += wave(t, 0.26 * s, 0.010 * s, -0.12);  // Q
  v += wave(t, 0.28 * s, 0.012 * s, 1.10);   // R
  v += wave(t, 0.30 * s, 0.010 * s, -0.25);  // S
  v += wave(t, 0.50 * s, 0.060 * s, 0.30);   // T
  return v;
}

}  // namespace

std::vector<double> EcgGenerator::generate(const EmotionTimeline& timeline) {
  const double dur = timeline.duration_s();
  const auto n = static_cast<std::size_t>(dur * cfg_.sample_rate_hz);
  std::vector<double> out(n, 0.0);
  r_peaks_.clear();

  std::mt19937 rng(cfg_.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);

  // Beat train from the shared emotion-dependent cardio profile, with a
  // slow autonomic wander as in the PPG generator.
  double t = 0.1;
  double wander = 0.0;
  std::vector<std::pair<double, double>> beats;  // (onset, rr)
  while (t < dur) {
    const CardioProfile prof = cardio_profile(timeline.at(t));
    wander = std::clamp(wander + 0.01 * cfg_.hr_wander * gauss(rng),
                        -cfg_.hr_wander, cfg_.hr_wander);
    const double mean_rr = 60.0 / prof.mean_hr_bpm * (1.0 + wander);
    const double hrv_s = prof.rmssd_ms / 1000.0 / std::numbers::sqrt2;
    const double rsa = prof.rsa_depth *
                       std::sin(2.0 * std::numbers::pi *
                                cfg_.respiration_hz * t);
    double rr = mean_rr * (1.0 + rsa) + hrv_s * gauss(rng);
    rr = std::clamp(rr, 0.33, 1.5);
    beats.push_back({t, rr});
    r_peaks_.push_back(t + 0.28 * std::min(rr, 1.0));  // R-wave center
    t += rr;
  }

  for (const auto& [onset, rr] : beats) {
    const auto begin = static_cast<std::size_t>(onset * cfg_.sample_rate_hz);
    const auto len = static_cast<std::size_t>(rr * cfg_.sample_rate_hz);
    for (std::size_t i = 0; i < len && begin + i < n; ++i) {
      const double tau = static_cast<double>(i) / cfg_.sample_rate_hz;
      out[begin + i] += pqrst(tau, rr);
    }
  }
  // Baseline wander + sensor noise.
  for (std::size_t i = 0; i < n; ++i) {
    const double ts = static_cast<double>(i) / cfg_.sample_rate_hz;
    out[i] += cfg_.baseline_wander *
              std::sin(2.0 * std::numbers::pi * cfg_.respiration_hz * ts);
    out[i] += cfg_.noise * gauss(rng);
  }
  return out;
}

std::vector<double> detect_r_peaks(std::span<const double> ecg,
                                   double sample_rate_hz) {
  std::vector<double> peaks;
  if (ecg.size() < 16) return peaks;

  // 1. Five-point derivative (Pan-Tompkins H(z) approximation).
  std::vector<double> deriv(ecg.size(), 0.0);
  for (std::size_t i = 2; i + 2 < ecg.size(); ++i) {
    deriv[i] = (2.0 * ecg[i + 2] + ecg[i + 1] - ecg[i - 1] -
                2.0 * ecg[i - 2]) / 8.0;
  }
  // 2. Squaring.
  for (double& v : deriv) v = v * v;
  // 3. Moving-window integration (~120 ms).
  const auto win = std::max<std::size_t>(
      1, static_cast<std::size_t>(0.12 * sample_rate_hz));
  std::vector<double> mwi(ecg.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < ecg.size(); ++i) {
    acc += deriv[i];
    if (i >= win) acc -= deriv[i - win];
    mwi[i] = acc / static_cast<double>(win);
  }
  // 4. Adaptive threshold + refractory period.
  double signal_level = 0.0;
  for (double v : mwi) signal_level = std::max(signal_level, v);
  double threshold = 0.3 * signal_level;
  const auto refractory = static_cast<std::size_t>(0.25 * sample_rate_hz);
  std::size_t last_peak = 0;
  bool have_peak = false;
  for (std::size_t i = 1; i + 1 < mwi.size(); ++i) {
    const bool is_peak =
        mwi[i] > threshold && mwi[i] >= mwi[i - 1] && mwi[i] > mwi[i + 1];
    if (!is_peak) continue;
    if (have_peak && i - last_peak < refractory) continue;
    // Refine: locate the ECG maximum inside the integration window (the
    // MWI peak lags the R wave by ~win/2).
    const std::size_t lo = i > win ? i - win : 0;
    std::size_t best = lo;
    for (std::size_t j = lo; j <= i && j < ecg.size(); ++j) {
      if (ecg[j] > ecg[best]) best = j;
    }
    peaks.push_back(static_cast<double>(best) / sample_rate_hz);
    last_peak = i;
    have_peak = true;
    // Track the running signal level so amplitude drift is tolerated.
    threshold = 0.6 * threshold + 0.4 * (0.3 * mwi[i]);
  }
  return peaks;
}

}  // namespace affectsys::affect
