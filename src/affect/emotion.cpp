#include "affect/emotion.hpp"

#include <cmath>
#include <limits>

namespace affectsys::affect {

std::string_view emotion_name(Emotion e) {
  switch (e) {
    case Emotion::kNeutral:
      return "neutral";
    case Emotion::kCalm:
      return "calm";
    case Emotion::kHappy:
      return "happy";
    case Emotion::kSad:
      return "sad";
    case Emotion::kAngry:
      return "angry";
    case Emotion::kFearful:
      return "fearful";
    case Emotion::kDisgust:
      return "disgust";
    case Emotion::kSurprised:
      return "surprised";
    case Emotion::kDistracted:
      return "distracted";
    case Emotion::kConcentrated:
      return "concentrated";
    case Emotion::kTense:
      return "tense";
    case Emotion::kRelaxed:
      return "relaxed";
    case Emotion::kExcited:
      return "excited";
    case Emotion::kSleepy:
      return "sleepy";
  }
  return "unknown";
}

std::optional<Emotion> emotion_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNumEmotions; ++i) {
    const auto e = static_cast<Emotion>(i);
    if (emotion_name(e) == name) return e;
  }
  return std::nullopt;
}

CircumplexPoint circumplex(Emotion e) {
  switch (e) {
    case Emotion::kNeutral:
      return {0.0, 0.0, 0.0};
    case Emotion::kCalm:
      return {0.4, -0.5, 0.2};
    case Emotion::kHappy:
      return {0.8, 0.5, 0.4};
    case Emotion::kSad:
      return {-0.7, -0.4, -0.4};
    case Emotion::kAngry:
      return {-0.6, 0.8, 0.3};
    case Emotion::kFearful:
      return {-0.7, 0.7, -0.6};
    case Emotion::kDisgust:
      return {-0.6, 0.3, 0.1};
    case Emotion::kSurprised:
      return {0.3, 0.8, -0.1};
    case Emotion::kDistracted:
      return {-0.1, 0.2, -0.2};
    case Emotion::kConcentrated:
      return {0.2, 0.6, 0.5};
    case Emotion::kTense:
      return {-0.4, 0.7, -0.3};
    case Emotion::kRelaxed:
      return {0.6, -0.6, 0.3};
    case Emotion::kExcited:
      return {0.7, 0.9, 0.4};
    case Emotion::kSleepy:
      return {0.0, -0.9, -0.2};
  }
  return {};
}

Emotion nearest_basic_emotion(const CircumplexPoint& p) {
  double best = std::numeric_limits<double>::infinity();
  Emotion best_e = Emotion::kNeutral;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto e = static_cast<Emotion>(i);
    const CircumplexPoint q = circumplex(e);
    const double dv = p.valence - q.valence;
    const double da = p.arousal - q.arousal;
    const double dd = p.dominance - q.dominance;
    const double d = dv * dv + da * da + dd * dd;
    if (d < best) {
      best = d;
      best_e = e;
    }
  }
  return best_e;
}

double mood_angle(const CircumplexPoint& p) {
  return std::atan2(p.arousal, p.valence);
}

bool is_attention_critical(Emotion e) {
  switch (e) {
    case Emotion::kConcentrated:
    case Emotion::kTense:
    case Emotion::kExcited:
    case Emotion::kSurprised:
    case Emotion::kAngry:
    case Emotion::kFearful:
      return true;
    default:
      return false;
  }
}

}  // namespace affectsys::affect
