// Inertial measurement unit (accelerometer) model and activity detection.
//
// The wearable of Fig 1(c)/Fig 2 carries a triaxial accelerometer.  Its
// role in the sensing stack is twofold: (1) activity context (still /
// walking / running), and (2) artifact gating — wrist motion corrupts the
// PPG at the step frequency, so emotion windows recorded during vigorous
// motion should be discarded rather than classified.  Both are modeled
// here; ablation coverage lives in the tests (beat detection measurably
// degrades under injected artifacts and recovers when gated).
#pragma once

#include <random>
#include <span>
#include <vector>

namespace affectsys::affect {

enum class ActivityState { kStill, kWalking, kRunning };

std::string_view activity_name(ActivityState a);

struct ActivitySegment {
  double start_s = 0.0;
  double end_s = 0.0;
  ActivityState activity = ActivityState::kStill;
};

struct ActivityTimeline {
  std::vector<ActivitySegment> segments;

  double duration_s() const {
    return segments.empty() ? 0.0 : segments.back().end_s;
  }
  ActivityState at(double t_s) const;
};

struct ImuConfig {
  double sample_rate_hz = 50.0;
  double noise_g = 0.02;  ///< sensor noise sigma in g
  unsigned seed = 23;
};

/// Per-activity gait parameters.
struct GaitProfile {
  double step_hz = 0.0;    ///< fundamental step frequency
  double amplitude_g = 0.0;  ///< vertical acceleration amplitude
};
GaitProfile gait_profile(ActivityState a);

/// Generates the acceleration-magnitude signal (|a| in g, gravity
/// removed) over an activity timeline.
class ImuGenerator {
 public:
  explicit ImuGenerator(const ImuConfig& cfg) : cfg_(cfg) {}

  std::vector<double> generate(const ActivityTimeline& timeline);

  const ImuConfig& config() const { return cfg_; }

 private:
  ImuConfig cfg_;
};

/// Window-level activity classification from the magnitude signal:
/// RMS of the dynamic component against per-class thresholds.
ActivityState classify_activity(std::span<const double> imu_window);

/// Injects gait-coupled motion artifacts into a PPG trace: an additive
/// oscillation at the step frequency whose amplitude follows the
/// activity's intensity.  `ppg_rate_hz` and the timeline align the two
/// sensors.
void add_motion_artifacts(std::vector<double>& ppg, double ppg_rate_hz,
                          const ActivityTimeline& activity,
                          double artifact_gain = 0.6, unsigned seed = 29);

}  // namespace affectsys::affect
