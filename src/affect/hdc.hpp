// Hyperdimensional-computing emotion classifier: the cheapest rung of
// the serve layer's inference ladder.
//
// A feature window is encoded into one D-bit binary hypervector
// (D ~= 8192, stored as uint64_t words) and classified by Hamming
// distance to one majority-bundled prototype per emotion — inference is
// popcount over a few hundred words, no floating point, and the whole
// model (prototypes + codebooks) fits in a few tens of KB.  Following
// "Efficient emotion recognition using hyperdimensional computing with
// combinatorial channel encoding" (PAPERS.md):
//
//   - Channel hypervectors are not stored per channel: channel c is the
//     XOR of an (i, j) pair of random *base* vectors, pairs enumerated
//     combinatorially — nb base vectors cover nb*(nb-1)/2 channels, so
//     1088 channels need 48 vectors instead of 1088 (the paper's
//     memory trick, and XOR-of-random-vectors is itself random-like).
//   - Feature amplitudes quantize to L levels; level vectors flip a
//     progressively larger prefix of a seeded bit permutation, so
//     nearby levels stay similar (linear level encoding).
//   - A window binds channel (+) level per (pooled timestep, feature)
//     slot and bundles all bound vectors by exact bitwise majority,
//     computed via carry-save bit-sliced counters (no per-bit loops).
//   - Class prototypes are the bitwise majority over the training
//     split's encoded windows — the same corpus/split the fp32 and
//     int8 rungs trained on.
//
// Everything is a pure function of (config, seeds): encoding, training
// and inference are deterministic, which the serve replay tests pin.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "affect/classifier.hpp"
#include "affect/dataset.hpp"
#include "affect/emotion.hpp"
#include "nn/matrix.hpp"
#include "nn/trainer.hpp"

namespace affectsys::affect {

struct HdcConfig {
  std::size_t dim_bits = 8192;  ///< D; rounded up to a multiple of 64
  std::size_t levels = 16;      ///< amplitude quantization levels (>= 2)
  /// Timestep rows pool (mean) into this many temporal buckets before
  /// encoding; fewer buckets = fewer bound vectors = faster encode.
  /// 0 encodes every row unpooled.
  std::size_t temporal_pool = 8;
  unsigned seed = 0x51d7u;   ///< base/level/tie-break codebook seed
  float sharpness = 8.0f;    ///< similarity -> pseudo-probability gain
};

/// Per-call scratch: CSA counter planes + the encoded query vector.
/// Caller-owned so concurrent classify_into() calls never share state;
/// warm after one call (no steady-state allocation).
struct HdcWorkspace {
  std::vector<float> pooled;          ///< temporal buckets x feature_dim
  std::vector<std::uint32_t> levels;  ///< per-channel quantized level
  /// Per-channel bound-operand pointers (3 per channel), resolved once
  /// per window so the bundling loop does no index arithmetic.
  std::vector<const std::uint64_t*> bind_ptrs;
  std::vector<std::uint64_t> planes;  ///< bit-sliced majority counters
  std::vector<std::uint64_t> query;   ///< encoded window hypervector
  std::vector<float> sims;            ///< per-class similarity scratch
};

class HdcClassifier {
 public:
  /// Codebooks are generated here from cfg.seed; prototypes are zero
  /// until train().  `label_set` fixes the class order (and the
  /// probability vector order, matching AffectClassifier).
  HdcClassifier(const HdcConfig& cfg, std::size_t timesteps,
                std::size_t feature_dim, std::vector<Emotion> label_set);

  /// Builds class prototypes (and per-channel amplitude ranges) from a
  /// labelled training split; sample labels index label_set.
  void train(const nn::Dataset& train_set);

  /// Encodes `flat` (rows x cols, row-major — exactly an
  /// InferenceRequest's payload) into ws.query.
  void encode(std::span<const float> flat, std::size_t rows, std::size_t cols,
              HdcWorkspace& ws) const;

  /// Hamming-distance inference into a reused result (probabilities are
  /// a softmax over per-class bit-similarities — a confidence shape the
  /// serve pipeline can consume, not a calibrated posterior).
  void classify_into(std::span<const float> flat, std::size_t rows,
                     std::size_t cols, HdcWorkspace& ws,
                     ClassificationResult& out) const;

  /// Convenience wrapper over classify_into() on a member workspace —
  /// non-reentrant, like AffectClassifier::classify_features.
  ClassificationResult classify_features(const nn::Matrix& features);

  std::size_t timesteps() const { return timesteps_; }
  std::size_t feature_dim() const { return feature_dim_; }
  std::size_t words() const { return words_; }
  const std::vector<Emotion>& label_set() const { return label_set_; }
  const HdcConfig& config() const { return cfg_; }
  bool trained() const { return trained_; }
  /// Prototype + codebook storage (the model's whole footprint).
  std::size_t bytes() const;
  /// Class prototype hypervector (words() words) — for round-trip tests.
  std::span<const std::uint64_t> prototype(std::size_t cls) const;

 private:
  std::size_t channel_count() const;
  void majority_from_planes(const std::vector<std::uint64_t>& planes,
                            std::size_t total,
                            std::vector<std::uint64_t>& out) const;

  HdcConfig cfg_;
  std::size_t timesteps_ = 0;
  std::size_t feature_dim_ = 0;
  std::size_t pooled_rows_ = 0;
  std::size_t words_ = 0;
  bool trained_ = false;
  std::vector<Emotion> label_set_;

  std::vector<std::uint64_t> base_;  ///< nb x words random base vectors
  std::vector<std::uint32_t> chan_i_, chan_j_;  ///< channel -> base pair
  std::vector<std::uint64_t> level_;     ///< levels x words
  std::vector<std::uint64_t> tiebreak_;  ///< words (even-count majority)
  std::vector<std::uint64_t> proto_;     ///< classes x words
  std::vector<float> lo_, hi_;  ///< per-channel amplitude range (train)

  HdcWorkspace ws_;  ///< classify_features scratch
};

/// Trains an HDC classifier on the same synthesized corpus (and the
/// same stratified split) train_affect_classifier uses, so per-rung
/// accuracy numbers compare like-for-like.
HdcClassifier train_hdc_classifier(const CorpusProfile& corpus,
                                   const HdcConfig& cfg,
                                   unsigned split_seed = 1,
                                   unsigned corpus_seed = 7);

}  // namespace affectsys::affect
