#include "affect/signal_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace affectsys::affect {

void save_trace_csv(std::ostream& os, std::span<const double> samples,
                    double sample_rate_hz) {
  os << "# rate_hz=" << sample_rate_hz << '\n';
  for (double v : samples) os << v << '\n';
}

std::vector<double> load_trace_csv(std::istream& is, double* rate_out) {
  std::string line;
  if (!std::getline(is, line) || line.rfind("# rate_hz=", 0) != 0) {
    throw std::runtime_error("load_trace_csv: missing rate header");
  }
  const double rate = std::stod(line.substr(10));
  if (rate_out) *rate_out = rate;
  std::vector<double> out;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    out.push_back(std::stod(line));
  }
  return out;
}

void save_timeline_csv(std::ostream& os, const EmotionTimeline& timeline) {
  os << "start_s,end_s,emotion\n";
  for (const auto& seg : timeline.segments) {
    os << seg.start_s << ',' << seg.end_s << ','
       << emotion_name(seg.emotion) << '\n';
  }
}

EmotionTimeline load_timeline_csv(std::istream& is) {
  EmotionTimeline tl;
  std::string line;
  if (!std::getline(is, line) || line.rfind("start_s,", 0) != 0) {
    throw std::runtime_error("load_timeline_csv: missing header");
  }
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string field;
    EmotionSegment seg;
    std::getline(ls, field, ',');
    seg.start_s = std::stod(field);
    std::getline(ls, field, ',');
    seg.end_s = std::stod(field);
    if (!std::getline(ls, field, ',')) {
      throw std::runtime_error("load_timeline_csv: truncated row at line " +
                               std::to_string(line_no));
    }
    const auto e = emotion_from_name(field);
    if (!e) {
      throw std::runtime_error("load_timeline_csv: unknown emotion '" +
                               field + "'");
    }
    seg.emotion = *e;
    tl.segments.push_back(seg);
  }
  return tl;
}

}  // namespace affectsys::affect
