// Assembles the classifier input features from a raw waveform:
// per-frame MFCC + zero-crossing + RMS + pitch + spectral magnitude
// (Section 2.2's feature list), stacked into a fixed-length sequence
// Matrix with per-feature standardization.
#pragma once

#include <span>

#include "nn/matrix.hpp"
#include "signal/mel.hpp"

namespace affectsys::affect {

struct FeatureConfig {
  signal::MfccConfig mfcc;
  std::size_t timesteps = 64;  ///< sequences are cropped/padded to this
  bool standardize = true;     ///< per-feature z-score over the utterance
};

class FeatureExtractor {
 public:
  explicit FeatureExtractor(const FeatureConfig& cfg);

  /// Features per timestep: num_coeffs MFCCs + {zcr, rms, pitch, magnitude}.
  std::size_t feature_dim() const { return cfg_.mfcc.num_coeffs + 4; }
  std::size_t timesteps() const { return cfg_.timesteps; }

  /// (timesteps, feature_dim) feature matrix for a waveform.
  nn::Matrix extract(std::span<const double> samples) const;

  const FeatureConfig& config() const { return cfg_; }

 private:
  FeatureConfig cfg_;
  signal::MfccExtractor mfcc_;
};

}  // namespace affectsys::affect
