// Assembles the classifier input features from a raw waveform:
// per-frame MFCC + zero-crossing + RMS + pitch + spectral magnitude
// (Section 2.2's feature list), stacked into a fixed-length sequence
// Matrix with per-feature standardization.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "nn/matrix.hpp"
#include "signal/mel.hpp"

namespace affectsys::affect {

struct FeatureConfig {
  signal::MfccConfig mfcc;
  std::size_t timesteps = 64;  ///< sequences are cropped/padded to this
  bool standardize = true;     ///< per-feature z-score over the utterance
};

/// Reusable per-window scratch for the zero-allocation feature path:
/// one frame buffer, the MFCC workspace, the pitch autocorrelation
/// buffers, the magnitude-spectrum staging, and the output feature
/// matrix itself.  Sized lazily on first use by the owning
/// FeatureExtractor and stable afterwards, so the steady-state affect
/// pipeline performs no heap allocation per window.
struct FeatureWorkspace {
  std::vector<double> frame;                    ///< frame_len samples
  signal::MfccWorkspace mfcc;                   ///< MFCC scratch
  std::vector<double> mfcc_out;                 ///< num_coeffs values
  std::vector<double> acorr;                    ///< frame_len lags (pitch)
  std::vector<std::complex<double>> acorr_work; ///< next_pow2(2*frame_len)+1
  std::vector<double> mag;                      ///< fft bins (magnitude)
  std::vector<std::complex<double>> mag_work;   ///< fft_size + 1
  nn::Matrix features;                          ///< timesteps x feature_dim
};

class FeatureExtractor {
 public:
  explicit FeatureExtractor(const FeatureConfig& cfg);

  /// Features per timestep: num_coeffs MFCCs + {zcr, rms, pitch, magnitude}.
  std::size_t feature_dim() const { return cfg_.mfcc.num_coeffs + 4; }
  std::size_t timesteps() const { return cfg_.timesteps; }

  /// (timesteps, feature_dim) feature matrix for a waveform.  Routes
  /// through extract_into() on a fresh workspace, so the allocating and
  /// zero-allocation paths are byte-identical.
  nn::Matrix extract(std::span<const double> samples) const;

  /// Zero-allocation extract: fills (and returns) ws.features, reusing
  /// every scratch buffer across calls.  The matrix reference stays
  /// valid until the next extract_into() on the same workspace.
  const nn::Matrix& extract_into(std::span<const double> samples,
                                 FeatureWorkspace& ws) const;

  // Per-frame decomposition of extract_into(), exposed so the serve
  // layer's feature-bank cache can replay cached rows for frames it
  // has seen before and compute only boundary frames live.
  // extract_into() is expressed over these, so cached and live rows
  // are bit-identical by construction.

  /// Sizes ws (no-op once warm) and zero-fills ws.features.
  void prepare_workspace(FeatureWorkspace& ws) const;
  /// Raw (pre-standardization) feature row for one frame_len-sample
  /// frame; `row` must span feature_dim() values.
  void compute_frame_row(std::span<const double> frame, std::span<float> row,
                         FeatureWorkspace& ws) const;
  /// Per-feature z-score over the first `frames` rows of `out`
  /// (writing all timesteps() rows), exactly as extract_into() does.
  void standardize_rows(nn::Matrix& out, std::size_t frames) const;

  /// Pre-optimization reference pipeline (frame_signal materialization,
  /// complex-FFT spectra, per-frame vectors).  Kept callable so
  /// bench_kernels measures the optimized path against the pre-PR
  /// behaviour and the kernel suite bounds their drift.
  nn::Matrix extract_ref(std::span<const double> samples) const;

  const FeatureConfig& config() const { return cfg_; }

 private:
  FeatureConfig cfg_;
  signal::MfccExtractor mfcc_;
};

}  // namespace affectsys::affect
