// Emotion taxonomy and the Russell circumplex model (Fig 1 of the paper).
//
// Every discrete emotion label used anywhere in the system maps to a point
// in (valence, arousal, dominance) space; management policies may consume
// either the discrete label or the continuous coordinates.
#pragma once

#include <array>
#include <optional>
#include <string_view>

namespace affectsys::affect {

/// Discrete emotion labels.  The first eight are the RAVDESS label set;
/// kDistracted/kConcentrated/kTense/kRelaxed are the uulmMAC mental-load
/// states used in the video-playback case study (Fig 6);
/// kExcited/kCalmState are the app-management states (Fig 9).
enum class Emotion {
  kNeutral,
  kCalm,
  kHappy,
  kSad,
  kAngry,
  kFearful,
  kDisgust,
  kSurprised,
  kDistracted,
  kConcentrated,
  kTense,
  kRelaxed,
  kExcited,
  kSleepy,
};

inline constexpr std::size_t kNumEmotions = 14;

std::string_view emotion_name(Emotion e);
std::optional<Emotion> emotion_from_name(std::string_view name);

/// A point in Russell's three-dimensional circumplex.
/// valence: unpleasant (-1) .. pleasant (+1)
/// arousal: deactivated (-1) .. activated (+1)
/// dominance: controlled (-1) .. in-control (+1)
struct CircumplexPoint {
  double valence = 0.0;
  double arousal = 0.0;
  double dominance = 0.0;
};

/// Canonical circumplex coordinates of each discrete emotion.
CircumplexPoint circumplex(Emotion e);

/// Nearest discrete emotion to a circumplex point (Euclidean distance over
/// valence/arousal/dominance), restricted to the first eight basic labels.
Emotion nearest_basic_emotion(const CircumplexPoint& p);

/// Mood angle in radians in the valence-arousal plane, measured
/// counter-clockwise from the +valence axis (the paper's "mood angle").
double mood_angle(const CircumplexPoint& p);

/// True for states where video quality matters to the user
/// (high arousal / attention states per the Section 4 policy).
bool is_attention_critical(Emotion e);

}  // namespace affectsys::affect
