// Builds labelled NN datasets from synthesized emotional-speech corpora.
#pragma once

#include <vector>

#include "affect/features.hpp"
#include "affect/speech_synth.hpp"
#include "nn/trainer.hpp"

namespace affectsys::affect {

/// A corpus rendered into classifier-ready feature sequences.
struct LabelledCorpus {
  std::string name;
  std::vector<Emotion> label_set;  ///< class index -> emotion
  nn::Dataset samples;

  std::size_t num_classes() const { return label_set.size(); }
};

/// Synthesizes `profile` and extracts features for every utterance.
/// Labels are indices into profile.emotions.
LabelledCorpus build_corpus(const CorpusProfile& profile,
                            const FeatureExtractor& fx, unsigned seed);

/// Default feature geometry used across the Fig 3 experiments:
/// 13 MFCCs + 4 scalars, 64 timesteps.
FeatureConfig default_feature_config();

}  // namespace affectsys::affect
