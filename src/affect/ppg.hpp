// Photoplethysmography (PPG) / heart-rate model.
//
// The paper's system setup (Fig 2/Fig 4) lists PPG and ECG among the
// wearable's sensors but evaluates only the skin-conductance path.  This
// module implements the cardiovascular channel as the natural extension:
// a generative PPG model whose heart rate and heart-rate variability
// respond to the emotional state (arousal raises HR and suppresses HRV —
// Shu et al. 2018, the paper's ref [8]), beat detection, standard HRV
// features (RMSSD / SDNN), and a fusion estimator combining PPG with the
// SCL channel (bench/ablation_fusion).
#pragma once

#include <random>
#include <span>
#include <vector>

#include "affect/emotion.hpp"
#include "affect/scl.hpp"

namespace affectsys::affect {

/// Cardiovascular operating point for an emotion.
struct CardioProfile {
  double mean_hr_bpm = 70.0;   ///< heart rate
  double rmssd_ms = 40.0;      ///< short-term HRV (parasympathetic tone)
  double rsa_depth = 0.03;     ///< respiratory sinus arrhythmia depth
};

/// HR rises and HRV falls with arousal; valence modulates mildly.
CardioProfile cardio_profile(Emotion e);

struct PpgConfig {
  double sample_rate_hz = 64.0;
  double pulse_width_s = 0.25;       ///< systolic pulse width
  double dicrotic_delay_s = 0.22;    ///< secondary (dicrotic) wave delay
  double dicrotic_scale = 0.35;
  double noise = 0.02;               ///< sensor/motion noise sigma
  double respiration_hz = 0.25;      ///< breathing rate for RSA
  /// Slow autonomic heart-rate wander (random walk, fraction of mean RR).
  /// Makes adjacent mental states overlap as they do in real recordings.
  double hr_wander = 0.06;
  unsigned seed = 11;
};

/// Generates a PPG waveform over an emotion timeline.
class PpgGenerator {
 public:
  explicit PpgGenerator(const PpgConfig& cfg) : cfg_(cfg) {}

  /// Waveform samples covering the timeline at cfg.sample_rate_hz.
  std::vector<double> generate(const EmotionTimeline& timeline);

  /// The beat-to-beat RR intervals (seconds) of the last generate() call,
  /// exposed for validation.
  const std::vector<double>& last_rr_intervals() const { return rr_; }

  const PpgConfig& config() const { return cfg_; }

 private:
  PpgConfig cfg_;
  std::vector<double> rr_;
};

/// Systolic-peak beat detector: returns peak times in seconds.
std::vector<double> detect_beats(std::span<const double> ppg,
                                 double sample_rate_hz,
                                 double min_rr_s = 0.3);

/// Standard HRV summary of a beat-time series.
struct HrvFeatures {
  double mean_hr_bpm = 0.0;
  double rmssd_ms = 0.0;  ///< RMS of successive RR differences
  double sdnn_ms = 0.0;   ///< standard deviation of RR intervals
  std::size_t beats = 0;
};
HrvFeatures hrv_features(std::span<const double> beat_times_s);

/// Fuses the SCL activity channel with the PPG HR/HRV channel to label
/// the four uulmMAC session states.  Each channel votes an ordinal state
/// index via calibrated thresholds; the fused index is the
/// reliability-weighted average, where each channel's weight is its
/// accuracy on the calibration recording (so an unreliable channel
/// cannot drag the fusion below the better channel).
class MultimodalEstimator {
 public:
  /// Calibrates both channels from reference traces + ground truth.
  void calibrate(const std::vector<double>& scl_trace, double scl_rate_hz,
                 const std::vector<double>& ppg_trace, double ppg_rate_hz,
                 const EmotionTimeline& truth);

  /// Classifies aligned windows from the two sensors.
  Emotion classify(std::span<const double> scl_window,
                   std::span<const double> ppg_window) const;

  /// The PPG-only decision, exposed for the fusion ablation.
  Emotion classify_ppg(std::span<const double> ppg_window) const;

  double ppg_rate_hz() const { return ppg_rate_hz_; }
  double scl_weight() const { return w_scl_; }
  double ppg_weight() const { return w_ppg_; }

 private:
  double arousal_score_ppg(std::span<const double> window) const;

  SclEmotionEstimator scl_;
  double ppg_rate_hz_ = 64.0;
  // Ascending HR-based thresholds separating Relaxed | Distracted |
  // Concentrated | Tense.
  double h1_ = 65.0, h2_ = 72.0, h3_ = 80.0;
  // Calibration-set reliabilities used as fusion weights.
  double w_scl_ = 0.5;
  double w_ppg_ = 0.5;
};

}  // namespace affectsys::affect
