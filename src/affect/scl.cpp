#include "affect/scl.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <span>

namespace affectsys::affect {

Emotion EmotionTimeline::at(double t_s) const {
  if (segments.empty()) return Emotion::kNeutral;
  for (const auto& seg : segments) {
    if (t_s >= seg.start_s && t_s < seg.end_s) return seg.emotion;
  }
  return t_s < segments.front().start_s ? segments.front().emotion
                                        : segments.back().emotion;
}

EmotionTimeline uulmmac_session_timeline() {
  EmotionTimeline tl;
  tl.segments = {
      {0.0, 14.0 * 60.0, Emotion::kDistracted},
      {14.0 * 60.0, 20.0 * 60.0, Emotion::kConcentrated},
      {20.0 * 60.0, 29.0 * 60.0, Emotion::kTense},
      {29.0 * 60.0, 40.0 * 60.0, Emotion::kRelaxed},
  };
  return tl;
}

ScrIntensity scr_intensity(Emotion e) {
  // Arousal in [-1,1] -> SCR rate 1..12 /min, amplitude 0.05..0.6 uS.
  const double a = (circumplex(e).arousal + 1.0) / 2.0;
  return {1.0 + 11.0 * a, 0.05 + 0.55 * a};
}

std::vector<double> SclGenerator::generate(const EmotionTimeline& timeline) {
  const double dur = timeline.duration_s();
  const auto n = static_cast<std::size_t>(dur * cfg_.sample_rate_hz);
  std::vector<double> out(n, cfg_.tonic_base_us);

  std::mt19937 rng(cfg_.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Tonic random walk, low-pass filtered.
  double tonic = cfg_.tonic_base_us;
  const double dt = 1.0 / cfg_.sample_rate_hz;
  for (std::size_t i = 0; i < n; ++i) {
    tonic += cfg_.tonic_drift_us * gauss(rng) * dt * 0.05;
    tonic = std::clamp(tonic, 0.5 * cfg_.tonic_base_us,
                       2.0 * cfg_.tonic_base_us);
    out[i] = tonic;
  }

  // Phasic SCRs: Poisson arrivals per segment, bi-exponential shape.
  for (const auto& seg : timeline.segments) {
    const ScrIntensity si = scr_intensity(seg.emotion);
    const double rate_hz = si.rate_per_min / 60.0;
    double t = seg.start_s;
    while (true) {
      // Exponential inter-arrival times.
      t += -std::log(std::max(unit(rng), 1e-12)) / std::max(rate_hz, 1e-9);
      if (t >= seg.end_s) break;
      const double amp = si.amplitude_us * (0.5 + unit(rng));
      const auto onset = static_cast<std::size_t>(t * cfg_.sample_rate_hz);
      // Add the bi-exponential impulse response (normalized to unit peak).
      const double tpeak =
          std::log(cfg_.scr_decay_s / cfg_.scr_rise_s) /
          (1.0 / cfg_.scr_rise_s - 1.0 / cfg_.scr_decay_s);
      const double peak = std::exp(-tpeak / cfg_.scr_decay_s) -
                          std::exp(-tpeak / cfg_.scr_rise_s);
      const auto span_samples =
          static_cast<std::size_t>(8.0 * cfg_.scr_decay_s * cfg_.sample_rate_hz);
      for (std::size_t i = 0; i < span_samples && onset + i < n; ++i) {
        const double tau = static_cast<double>(i) * dt;
        const double v = std::exp(-tau / cfg_.scr_decay_s) -
                         std::exp(-tau / cfg_.scr_rise_s);
        out[onset + i] += amp * v / std::max(peak, 1e-9);
      }
    }
  }
  return out;
}

double SclEmotionEstimator::activity_score(std::span<const double> window) {
  if (window.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < window.size(); ++i) {
    acc += std::abs(window[i] - window[i - 1]);
  }
  return acc / static_cast<double>(window.size() - 1);
}

void SclEmotionEstimator::calibrate(const std::vector<double>& trace,
                                    double sample_rate_hz,
                                    const EmotionTimeline& truth) {
  // Median activity per ground-truth state, then midpoints as thresholds.
  const auto win = static_cast<std::size_t>(30.0 * sample_rate_hz);
  std::map<Emotion, std::vector<double>> scores;
  for (std::size_t start = 0; start + win <= trace.size(); start += win) {
    const double t_s = static_cast<double>(start) / sample_rate_hz;
    const Emotion e = truth.at(t_s);
    scores[e].push_back(
        activity_score({trace.data() + start, win}));
  }
  auto median = [](std::vector<double>& v) {
    if (v.empty()) return 0.0;
    std::nth_element(v.begin(), v.begin() + static_cast<long>(v.size() / 2),
                     v.end());
    return v[v.size() / 2];
  };
  const std::array<Emotion, 4> order = {Emotion::kRelaxed,
                                        Emotion::kDistracted,
                                        Emotion::kConcentrated,
                                        Emotion::kTense};
  std::array<double, 4> med{};
  for (std::size_t i = 0; i < order.size(); ++i) med[i] = median(scores[order[i]]);
  // Enforce monotone ordering before taking midpoints.
  for (std::size_t i = 1; i < med.size(); ++i) {
    med[i] = std::max(med[i], med[i - 1] * 1.01 + 1e-6);
  }
  t1_ = 0.5 * (med[0] + med[1]);
  t2_ = 0.5 * (med[1] + med[2]);
  t3_ = 0.5 * (med[2] + med[3]);
}

Emotion SclEmotionEstimator::classify(std::span<const double> window) const {
  const double a = activity_score(window);
  if (a < t1_) return Emotion::kRelaxed;
  if (a < t2_) return Emotion::kDistracted;
  if (a < t3_) return Emotion::kConcentrated;
  return Emotion::kTense;
}

}  // namespace affectsys::affect
