#include "affect/regressor.hpp"

#include <algorithm>
#include <random>

#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/gru.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/pooling.hpp"

namespace affectsys::affect {

AffectRegressor::AffectRegressor(nn::Sequential model,
                                 FeatureConfig feature_cfg)
    : model_(std::move(model)), fx_(feature_cfg) {}

CircumplexPoint AffectRegressor::estimate_features(
    const nn::Matrix& features) {
  const nn::Matrix out = model_.forward(features);
  CircumplexPoint p;
  p.valence = out(0, 0);
  p.arousal = out(0, 1);
  p.dominance = out(0, 2);
  return p;
}

CircumplexPoint AffectRegressor::estimate(std::span<const double> samples) {
  return estimate_features(fx_.extract(samples));
}

Emotion AffectRegressor::classify(std::span<const double> samples) {
  return nearest_basic_emotion(estimate(samples));
}

AffectRegressor train_affect_regressor(const CorpusProfile& corpus,
                                       const RegressorTrainConfig& cfg,
                                       unsigned corpus_seed,
                                       float* final_loss) {
  const FeatureConfig fc = default_feature_config();
  const FeatureExtractor fx(fc);
  const LabelledCorpus data = build_corpus(corpus, fx, corpus_seed);

  // Regression targets: circumplex coordinates with label jitter.
  std::mt19937 rng(cfg.seed);
  std::normal_distribution<double> jitter(0.0, cfg.target_noise);
  std::vector<std::array<float, 3>> targets(data.samples.size());
  for (std::size_t i = 0; i < data.samples.size(); ++i) {
    const CircumplexPoint p = circumplex(data.label_set[data.samples[i].label]);
    targets[i] = {static_cast<float>(std::clamp(p.valence + jitter(rng), -1.0, 1.0)),
                  static_cast<float>(std::clamp(p.arousal + jitter(rng), -1.0, 1.0)),
                  static_cast<float>(std::clamp(p.dominance + jitter(rng), -1.0, 1.0))};
  }

  // GRU backbone with a tanh-squashed 3-way regression head.
  nn::Sequential model;
  model.add(std::make_unique<nn::Gru>(fx.feature_dim(), 48, rng))
      .add(std::make_unique<nn::LastTimestep>())
      .add(std::make_unique<nn::Dense>(48, 24, rng))
      .add(std::make_unique<nn::Activation>(nn::ActKind::kReLU))
      .add(std::make_unique<nn::Dense>(24, 3, rng))
      .add(std::make_unique<nn::Activation>(nn::ActKind::kTanh));

  nn::Adam opt(cfg.learning_rate);
  std::vector<std::size_t> order(data.samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  float epoch_loss = 0.0f;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    double loss_sum = 0.0;
    std::size_t in_batch = 0;
    for (std::size_t idx : order) {
      const nn::Matrix out = model.forward(data.samples[idx].features);
      const auto lr = nn::mse_loss(out, targets[idx]);
      loss_sum += lr.loss;
      model.backward(lr.grad);
      if (++in_batch == cfg.batch_size) {
        auto params = model.params();
        const float inv = 1.0f / static_cast<float>(in_batch);
        for (nn::Param* p : params) p->grad *= inv;
        if (cfg.grad_clip > 0.0f) nn::clip_gradients(params, cfg.grad_clip);
        opt.step(params);
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      auto params = model.params();
      const float inv = 1.0f / static_cast<float>(in_batch);
      for (nn::Param* p : params) p->grad *= inv;
      if (cfg.grad_clip > 0.0f) nn::clip_gradients(params, cfg.grad_clip);
      opt.step(params);
    }
    epoch_loss =
        static_cast<float>(loss_sum / static_cast<double>(data.samples.size()));
  }
  if (final_loss) *final_loss = epoch_loss;
  return AffectRegressor(std::move(model), fc);
}

}  // namespace affectsys::affect
