// Parametric emotional speech synthesizer.
//
// Substitute for the RAVDESS / EMOVO / CREMA-D corpora (see DESIGN.md):
// utterances are built from voiced "syllables" (harmonic glottal source +
// formant resonances) separated by pauses, with the prosodic parameters —
// base pitch, pitch range, energy, tempo, jitter, spectral tilt,
// breathiness — driven by the emotion label.  The mapping follows the
// standard vocal-affect literature (angry/fearful: high pitch + high
// energy + fast tempo; sad: low pitch, low energy, slow; happy: raised
// pitch with wide range, etc.), so the classifier comparison of Fig 3
// exercises the same acoustic feature structure as the real corpora.
#pragma once

#include <random>
#include <string>
#include <vector>

#include "affect/emotion.hpp"

namespace affectsys::affect {

/// Prosodic/acoustic parameters of one emotional speaking style.
struct VoiceProfile {
  double base_pitch_hz = 120.0;   ///< mean F0
  double pitch_range = 0.15;      ///< relative F0 excursion per syllable
  double energy = 0.5;            ///< amplitude scale, (0, 1]
  double tempo = 4.0;             ///< syllables per second
  double jitter = 0.01;           ///< cycle-to-cycle F0 perturbation
  double spectral_tilt = 0.7;     ///< harmonic rolloff (higher = darker)
  double breathiness = 0.05;      ///< aspiration-noise mix
};

/// Voice profile for an emotion, before speaker individuality is applied.
VoiceProfile emotion_voice_profile(Emotion e);

/// One synthesized utterance.
struct Utterance {
  std::vector<double> samples;
  double sample_rate = 16000.0;
  Emotion emotion = Emotion::kNeutral;
  int speaker_id = 0;
};

/// Statistical profile of a corpus (speakers, emotion set, utterance
/// geometry) mirroring the three datasets in Section 2.2.
struct CorpusProfile {
  std::string name;
  int num_speakers = 0;
  std::vector<Emotion> emotions;
  int utterances_per_speaker_emotion = 4;
  double utterance_seconds = 1.6;
  double sample_rate = 16000.0;
  /// Inter-speaker variability of pitch/tempo (RAVDESS actors vary more
  /// than EMOVO's six speakers, etc.).
  double speaker_spread = 0.2;
};

/// Profiles approximating the three paper corpora.
CorpusProfile ravdess_profile();
CorpusProfile emovo_profile();
CorpusProfile cremad_profile();

class SpeechSynthesizer {
 public:
  explicit SpeechSynthesizer(unsigned seed) : rng_(seed) {}

  /// Synthesizes one utterance of `seconds` length for the emotion, with a
  /// speaker-specific pitch/tempo offset derived from speaker_id.
  Utterance synthesize(Emotion e, int speaker_id, double seconds,
                       double sample_rate, double speaker_spread);

  /// Synthesizes the full corpus described by `profile`.
  std::vector<Utterance> synthesize_corpus(const CorpusProfile& profile);

 private:
  std::mt19937 rng_;
};

}  // namespace affectsys::affect
