// Continuous affect estimation: regressing Russell-circumplex coordinates
// (valence, arousal, dominance) from biosignal features.
//
// Extension beyond the paper's discrete classifiers: a regression head
// outputs a point on the Fig 1 circumplex, so management policies can act
// on graded arousal instead of hard labels (mode_for_circumplex in
// adaptive/modes.hpp).  Discrete labels remain recoverable through
// nearest_basic_emotion(), which the tests use to score the regressor
// against the classifier on the same corpus.
#pragma once

#include <span>

#include "affect/dataset.hpp"
#include "affect/emotion.hpp"
#include "affect/features.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace affectsys::affect {

class AffectRegressor {
 public:
  AffectRegressor(nn::Sequential model, FeatureConfig feature_cfg);

  /// Circumplex estimate (tanh-squashed into [-1, 1]^3) for a raw window.
  CircumplexPoint estimate(std::span<const double> samples);
  CircumplexPoint estimate_features(const nn::Matrix& features);

  /// Discrete label via nearest basic emotion.
  Emotion classify(std::span<const double> samples);

  nn::Sequential& model() { return model_; }

 private:
  nn::Sequential model_;
  FeatureExtractor fx_;
};

struct RegressorTrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 8;
  float learning_rate = 1.5e-3f;
  float grad_clip = 5.0f;
  unsigned seed = 1;
  /// Label jitter: emotions are regions, not points, on the circumplex.
  double target_noise = 0.05;
};

/// Trains a GRU-based circumplex regressor on a synthesized corpus: each
/// utterance's target is circumplex(emotion) plus jitter.  Returns the
/// trained regressor and writes the final epoch MSE through `final_loss`
/// when non-null.
AffectRegressor train_affect_regressor(const CorpusProfile& corpus,
                                       const RegressorTrainConfig& cfg,
                                       unsigned corpus_seed = 7,
                                       float* final_loss = nullptr);

}  // namespace affectsys::affect
