// Temporal smoothing of raw per-window emotion labels.
//
// Raw classifier output flickers; hardware knobs must not.  EmotionStream
// combines a sliding majority vote with a minimum dwell time (hysteresis)
// so downstream decoder/app-manager mode switches happen at most once per
// dwell period.  The ablation bench measures the mode-thrash cost of
// disabling this.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "affect/emotion.hpp"

namespace affectsys::affect {

struct StreamConfig {
  std::size_t vote_window = 5;  ///< labels per majority vote (>=1)
  double min_dwell_s = 10.0;    ///< minimum time between emitted changes
};

class EmotionStream {
 public:
  explicit EmotionStream(const StreamConfig& cfg);

  /// Feeds one raw label observed at time `t_s` (monotonically
  /// non-decreasing).  Returns the new stable emotion if the stable state
  /// changed, std::nullopt otherwise.
  std::optional<Emotion> push(double t_s, Emotion raw);

  Emotion stable() const { return stable_; }
  std::size_t transitions() const { return transitions_; }

  /// Registered callbacks fire on every stable-state change.
  void on_change(std::function<void(double, Emotion)> cb) {
    callbacks_.push_back(std::move(cb));
  }

 private:
  Emotion majority() const;

  StreamConfig cfg_;
  /// Ring of the newest vote_window labels (order is irrelevant to the
  /// majority count, so overwrite-oldest suffices); reserved up front,
  /// so the steady-state push is allocation-free.
  std::vector<Emotion> window_;
  std::size_t window_next_ = 0;  ///< overwrite cursor once the ring is full
  Emotion stable_ = Emotion::kNeutral;
  double last_change_s_ = -1e18;
  std::size_t transitions_ = 0;
  std::vector<std::function<void(double, Emotion)>> callbacks_;
};

}  // namespace affectsys::affect
