#include "affect/scl_nn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/pooling.hpp"
#include "nn/trainer.hpp"
#include "signal/stats.hpp"

namespace affectsys::affect {

std::vector<double> scl_window_features(std::span<const double> window) {
  std::vector<double> out;
  out.reserve(kSclFeatureDim);
  signal::RunningStats amp;
  for (double v : window) amp.add(v);

  signal::RunningStats diff;
  double max_diff = 0.0;
  for (std::size_t i = 1; i < window.size(); ++i) {
    const double d = std::abs(window[i] - window[i - 1]);
    diff.add(d);
    max_diff = std::max(max_diff, d);
  }
  out.push_back(amp.mean());
  out.push_back(amp.stddev());
  out.push_back(amp.max() - amp.min());
  out.push_back(diff.mean());  // the paper's SC "magnitude" cue
  out.push_back(max_diff);

  // First-difference histogram (SCR slope distribution).
  signal::Histogram dh(0.0, std::max(max_diff, 1e-6), 6);
  for (std::size_t i = 1; i < window.size(); ++i) {
    dh.add(std::abs(window[i] - window[i - 1]));
  }
  for (double v : dh.normalized()) out.push_back(v);

  // Amplitude histogram around the window mean.
  const double lo = amp.mean() - 3.0 * amp.stddev() - 1e-6;
  const double hi = amp.mean() + 3.0 * amp.stddev() + 1e-6;
  signal::Histogram ah(lo, hi, 6);
  ah.add_all(window);
  for (double v : ah.normalized()) out.push_back(v);
  return out;
}

const std::vector<Emotion>& scl_state_labels() {
  static const std::vector<Emotion> labels = {
      Emotion::kRelaxed, Emotion::kDistracted, Emotion::kConcentrated,
      Emotion::kTense};
  return labels;
}

SclNnClassifier::SclNnClassifier(nn::Sequential model)
    : model_(std::move(model)) {}

Emotion SclNnClassifier::classify(std::span<const double> window) {
  const auto probs = probabilities(window);
  return scl_state_labels()[nn::argmax(probs)];
}

std::vector<float> SclNnClassifier::probabilities(
    std::span<const double> window) {
  const auto feats = scl_window_features(window);
  nn::Matrix x(1, feats.size());
  for (std::size_t i = 0; i < feats.size(); ++i) {
    x(0, i) = static_cast<float>(feats[i]);
  }
  return nn::softmax_probs(model_.forward(x));
}

SclNnClassifier train_scl_classifier(const EmotionTimeline& timeline,
                                     const SclConfig& scl_cfg,
                                     const SclTrainConfig& cfg) {
  const auto win =
      static_cast<std::size_t>(cfg.window_s * scl_cfg.sample_rate_hz);
  const auto& labels = scl_state_labels();

  nn::Dataset data;
  for (std::size_t s = 0; s < cfg.training_traces; ++s) {
    SclConfig c = scl_cfg;
    c.seed = scl_cfg.seed + static_cast<unsigned>(s) * 101u;
    SclGenerator gen(c);
    const auto trace = gen.generate(timeline);
    for (std::size_t start = 0; start + win <= trace.size(); start += win) {
      const double t = static_cast<double>(start) / scl_cfg.sample_rate_hz;
      const Emotion truth = timeline.at(t);
      const auto it = std::find(labels.begin(), labels.end(), truth);
      if (it == labels.end()) continue;
      const auto feats =
          scl_window_features({trace.data() + start, win});
      nn::Sample sample;
      sample.features = nn::Matrix(1, feats.size());
      for (std::size_t i = 0; i < feats.size(); ++i) {
        sample.features(0, i) = static_cast<float>(feats[i]);
      }
      sample.label = static_cast<std::size_t>(it - labels.begin());
      data.push_back(std::move(sample));
    }
  }
  if (data.empty()) {
    throw std::invalid_argument("train_scl_classifier: no training windows");
  }

  std::mt19937 rng(cfg.seed);
  nn::Sequential model;
  model.add(std::make_unique<nn::Flatten>())
      .add(std::make_unique<nn::Dense>(kSclFeatureDim, 24, rng))
      .add(std::make_unique<nn::Activation>(nn::ActKind::kReLU))
      .add(std::make_unique<nn::Dense>(24, 16, rng))
      .add(std::make_unique<nn::Activation>(nn::ActKind::kReLU))
      .add(std::make_unique<nn::Dense>(16, labels.size(), rng));

  nn::TrainConfig tc;
  tc.epochs = cfg.epochs;
  tc.batch_size = 16;
  tc.learning_rate = cfg.learning_rate;
  tc.seed = cfg.seed;
  nn::train(model, data, tc);
  return SclNnClassifier(std::move(model));
}

}  // namespace affectsys::affect
