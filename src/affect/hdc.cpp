#include "affect/hdc.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace affectsys::affect {

namespace {

/// Bit planes needed to count up to `total` (value range [0, total]).
std::size_t planes_for(std::size_t total) {
  std::size_t p = 1;
  while ((std::size_t{1} << p) <= total) ++p;
  return p;
}

/// Adds one binary vector into bit-sliced carry-save counters: plane p
/// holds bit p of every per-bit count.  Amortized ~2 word ops per word
/// (the carry chain is geometrically short), which is what makes exact
/// majority over a thousand vectors cheap enough for the hot path.
void csa_add(std::vector<std::uint64_t>& planes, std::size_t nplanes,
             std::size_t words, const std::uint64_t* v) {
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t carry = v[w];
    for (std::size_t p = 0; carry != 0 && p < nplanes; ++p) {
      std::uint64_t& slot = planes[p * words + w];
      const std::uint64_t t = slot;
      slot = t ^ carry;
      carry &= t;
    }
  }
}

}  // namespace

HdcClassifier::HdcClassifier(const HdcConfig& cfg, std::size_t timesteps,
                             std::size_t feature_dim,
                             std::vector<Emotion> label_set)
    : cfg_(cfg),
      timesteps_(timesteps),
      feature_dim_(feature_dim),
      label_set_(std::move(label_set)) {
  if (timesteps_ == 0 || feature_dim_ == 0) {
    throw std::invalid_argument("HdcClassifier: empty feature geometry");
  }
  if (label_set_.empty()) {
    throw std::invalid_argument("HdcClassifier: empty label set");
  }
  words_ = std::max<std::size_t>(1, (cfg_.dim_bits + 63) / 64);
  cfg_.dim_bits = words_ * 64;
  cfg_.levels = std::max<std::size_t>(2, cfg_.levels);
  pooled_rows_ = cfg_.temporal_pool == 0
                     ? timesteps_
                     : std::min(cfg_.temporal_pool, timesteps_);

  std::mt19937_64 rng(cfg_.seed);
  const std::size_t channels = channel_count();

  // Combinatorial channel encoding: nb base vectors whose XOR pairs
  // (i < j, lexicographic) name the channels — nb*(nb-1)/2 >= channels.
  std::size_t nb = 2;
  while (nb * (nb - 1) / 2 < channels) ++nb;
  base_.resize(nb * words_);
  for (std::uint64_t& w : base_) w = rng();
  chan_i_.reserve(channels);
  chan_j_.reserve(channels);
  for (std::uint32_t i = 0; chan_i_.size() < channels; ++i) {
    for (std::uint32_t j = i + 1; j < nb && chan_i_.size() < channels; ++j) {
      chan_i_.push_back(i);
      chan_j_.push_back(j);
    }
  }

  // Linear level encoding: level l flips the first l/(L-1) * D/2 bits of
  // a seeded permutation off level 0, so adjacent levels are similar and
  // the extremes are orthogonal (D/2 apart).
  level_.assign(cfg_.levels * words_, 0);
  for (std::size_t w = 0; w < words_; ++w) level_[w] = rng();
  std::vector<std::uint32_t> perm(cfg_.dim_bits);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    perm[i] = static_cast<std::uint32_t>(i);
  }
  // Self-contained Fisher-Yates (no std::shuffle: its draw sequence is
  // implementation-defined, and the codebooks must be reproducible).
  for (std::size_t i = perm.size() - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng() % (i + 1)]);
  }
  for (std::size_t l = 1; l < cfg_.levels; ++l) {
    std::copy_n(level_.begin(), words_,
                level_.begin() + static_cast<std::ptrdiff_t>(l * words_));
    const std::size_t flips = l * (cfg_.dim_bits / 2) / (cfg_.levels - 1);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::uint32_t bit = perm[f];
      level_[l * words_ + bit / 64] ^= std::uint64_t{1} << (bit % 64);
    }
  }

  tiebreak_.resize(words_);
  for (std::uint64_t& w : tiebreak_) w = rng();

  proto_.assign(label_set_.size() * words_, 0);
  // Standardized features mostly live in [-3, 3]; train() replaces this
  // with the observed per-channel range.
  lo_.assign(channels, -3.0f);
  hi_.assign(channels, 3.0f);
}

std::size_t HdcClassifier::channel_count() const {
  return pooled_rows_ * feature_dim_;
}

std::size_t HdcClassifier::bytes() const {
  return (base_.size() + level_.size() + tiebreak_.size() + proto_.size()) *
             sizeof(std::uint64_t) +
         (lo_.size() + hi_.size()) * sizeof(float) +
         (chan_i_.size() + chan_j_.size()) * sizeof(std::uint32_t);
}

std::span<const std::uint64_t> HdcClassifier::prototype(
    std::size_t cls) const {
  return {proto_.data() + cls * words_, words_};
}

void HdcClassifier::majority_from_planes(
    const std::vector<std::uint64_t>& planes, std::size_t total,
    std::vector<std::uint64_t>& out) const {
  // Bit-sliced compare of every per-bit count against K = total/2:
  // count > K sets the bit; an exact K tie (possible only for even
  // totals) defers to the fixed tie-break vector, so bundling never
  // biases toward 0.
  const std::size_t nplanes = planes.size() / words_;
  const std::uint64_t k = total / 2;
  const bool even = (total % 2) == 0;
  out.resize(words_);
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t gt = 0;
    std::uint64_t eq = ~std::uint64_t{0};
    for (std::size_t p = nplanes; p-- > 0;) {
      const std::uint64_t x = planes[p * words_ + w];
      const std::uint64_t kbit =
          ((k >> p) & 1) ? ~std::uint64_t{0} : std::uint64_t{0};
      gt |= eq & x & ~kbit;
      eq &= ~(x ^ kbit);
    }
    out[w] = gt | (even ? (eq & tiebreak_[w]) : std::uint64_t{0});
  }
}

void HdcClassifier::encode(std::span<const float> flat, std::size_t rows,
                           std::size_t cols, HdcWorkspace& ws) const {
  if (rows != timesteps_ || cols != feature_dim_) {
    throw std::invalid_argument("HdcClassifier: feature geometry mismatch");
  }
  // Temporal pooling: mean over each bucket's rows.  Emotion prosody
  // varies far slower than the 10 ms frame hop, so pooling trades
  // temporal resolution the classes don't need for an ~8x cheaper
  // bundle.
  const std::size_t p_rows = pooled_rows_;
  ws.pooled.resize(p_rows * cols);
  for (std::size_t p = 0; p < p_rows; ++p) {
    const std::size_t r0 = p * rows / p_rows;
    const std::size_t r1 = (p + 1) * rows / p_rows;
    float* __restrict out = ws.pooled.data() + p * cols;
    for (std::size_t c = 0; c < cols; ++c) out[c] = 0.0f;
    for (std::size_t r = r0; r < r1; ++r) {
      const float* __restrict src = flat.data() + r * cols;
      for (std::size_t c = 0; c < cols; ++c) out[c] += src[c];
    }
    const float inv = 1.0f / static_cast<float>(r1 - r0);
    for (std::size_t c = 0; c < cols; ++c) out[c] *= inv;
  }

  const std::size_t channels = channel_count();
  const std::size_t nplanes = planes_for(channels);
  // No zero-fill: every bundling path below overwrites all plane words
  // (the fallback fills explicitly before csa_add).
  ws.planes.resize(nplanes * words_);

  // Amplitude -> level index, one pass up front so the bundling loop
  // below touches only integer codebook state.
  ws.levels.resize(channels);
  const auto levels = static_cast<float>(cfg_.levels);
  for (std::size_t ch = 0; ch < channels; ++ch) {
    const float t = (ws.pooled[ch] - lo_[ch]) / (hi_[ch] - lo_[ch]);
    auto li = static_cast<std::ptrdiff_t>(t * levels);
    li = std::clamp<std::ptrdiff_t>(
        li, 0, static_cast<std::ptrdiff_t>(cfg_.levels) - 1);
    ws.levels[ch] = static_cast<std::uint32_t>(li);
  }

  bool bundled = false;
#if defined(__AVX2__)
  // Block-resident Harley-Seal bundling: 256 bits of every counter
  // plane stay in registers while all channels stream past.  Channels
  // reduce in fully branchless groups of sixteen through a carry-save
  // adder tree (ones/twos/fours/eights live in registers, 5 logic ops
  // per full adder); only every sixteenth channel spills one
  // "sixteens" vector into the higher planes, and the spill itself is a
  // fixed-depth ripple — no data-dependent break to mispredict, which
  // is what makes the naive per-channel CSA slow.  Identical per-bit
  // counts (and therefore an identical majority) to the word-serial
  // fallback below: only the summation schedule differs.
  constexpr std::size_t kMaxPlanes = 16;
  if (nplanes <= kMaxPlanes) {
    const auto csa = [](__m256i& h, __m256i& l, __m256i a, __m256i b) {
      const __m256i u = _mm256_xor_si256(l, a);
      h = _mm256_or_si256(_mm256_and_si256(l, a), _mm256_and_si256(u, b));
      l = _mm256_xor_si256(u, b);
    };
    // Per-channel operand pointers resolved once per window (not once
    // per block): the bind in the hot loop is then three loads and two
    // XORs with no index arithmetic.
    ws.bind_ptrs.resize(channels * 3);
    for (std::size_t c = 0; c < channels; ++c) {
      ws.bind_ptrs[c * 3 + 0] = base_.data() + chan_i_[c] * words_;
      ws.bind_ptrs[c * 3 + 1] = base_.data() + chan_j_[c] * words_;
      ws.bind_ptrs[c * 3 + 2] = level_.data() + ws.levels[c] * words_;
    }
    std::size_t w = 0;
    for (; w + 4 <= words_; w += 4) {
      const auto bind = [&](std::size_t c) {
        const std::uint64_t* const* p3 = ws.bind_ptrs.data() + c * 3;
        const auto ld = [&](const std::uint64_t* p) {
          return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + w));
        };
        return _mm256_xor_si256(_mm256_xor_si256(ld(p3[0]), ld(p3[1])),
                                ld(p3[2]));
      };
      // Fixed-depth ripple: iterations past the carry's reach just XOR
      // and AND with zero — cheaper than a mispredicting early exit.
      const auto spill = [&](__m256i pl[], __m256i carry, std::size_t from) {
        for (std::size_t p = from; p < nplanes; ++p) {
          const __m256i t = pl[p];
          pl[p] = _mm256_xor_si256(t, carry);
          carry = _mm256_and_si256(t, carry);
        }
      };
      __m256i pl[kMaxPlanes];
      for (std::size_t p = 0; p < nplanes; ++p) pl[p] = _mm256_setzero_si256();
      __m256i ones = _mm256_setzero_si256();
      __m256i twos = ones;
      __m256i fours = ones;
      __m256i eights = ones;
      std::size_t ch = 0;
      for (; ch + 16 <= channels; ch += 16) {
        __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b,
            sixteens;
        csa(twos_a, ones, bind(ch), bind(ch + 1));
        csa(twos_b, ones, bind(ch + 2), bind(ch + 3));
        csa(fours_a, twos, twos_a, twos_b);
        csa(twos_a, ones, bind(ch + 4), bind(ch + 5));
        csa(twos_b, ones, bind(ch + 6), bind(ch + 7));
        csa(fours_b, twos, twos_a, twos_b);
        csa(eights_a, fours, fours_a, fours_b);
        csa(twos_a, ones, bind(ch + 8), bind(ch + 9));
        csa(twos_b, ones, bind(ch + 10), bind(ch + 11));
        csa(fours_a, twos, twos_a, twos_b);
        csa(twos_a, ones, bind(ch + 12), bind(ch + 13));
        csa(twos_b, ones, bind(ch + 14), bind(ch + 15));
        csa(fours_b, twos, twos_a, twos_b);
        csa(eights_b, fours, fours_a, fours_b);
        csa(sixteens, eights, eights_a, eights_b);
        // A 16-group only runs when channels >= 16, so nplanes >= 5 and
        // the sixteens spill always has a plane to land in.
        spill(pl, sixteens, 4);
      }
      for (; ch + 8 <= channels; ch += 8) {  // one possible 8-group
        __m256i twos_a, twos_b, fours_a, fours_b, e;
        csa(twos_a, ones, bind(ch), bind(ch + 1));
        csa(twos_b, ones, bind(ch + 2), bind(ch + 3));
        csa(fours_a, twos, twos_a, twos_b);
        csa(twos_a, ones, bind(ch + 4), bind(ch + 5));
        csa(twos_b, ones, bind(ch + 6), bind(ch + 7));
        csa(fours_b, twos, twos_a, twos_b);
        csa(e, fours, fours_a, fours_b);
        const __m256i t = eights;
        eights = _mm256_xor_si256(t, e);
        // Carry out of the eights register needs count >= 16 at that
        // bit, which requires nplanes >= 5 — spill() is then a no-op
        // on an all-zero carry when nplanes == 4.
        spill(pl, _mm256_and_si256(t, e), 4);
      }
      for (; ch < channels; ++ch) {  // tail group (< 8 channels)
        __m256i carry = bind(ch);
        __m256i t = ones;
        ones = _mm256_xor_si256(t, carry);
        carry = _mm256_and_si256(t, carry);
        t = twos;
        twos = _mm256_xor_si256(t, carry);
        carry = _mm256_and_si256(t, carry);
        t = fours;
        fours = _mm256_xor_si256(t, carry);
        carry = _mm256_and_si256(t, carry);
        t = eights;
        eights = _mm256_xor_si256(t, carry);
        carry = _mm256_and_si256(t, carry);
        spill(pl, carry, 4);
      }
      // ones/twos/fours/eights ARE count bits 0-3; planes 4+ took the
      // spills.
      if (nplanes > 0) pl[0] = ones;
      if (nplanes > 1) pl[1] = twos;
      if (nplanes > 2) pl[2] = fours;
      if (nplanes > 3) pl[3] = eights;
      for (std::size_t p = 0; p < nplanes; ++p) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(ws.planes.data() + p * words_ + w),
            pl[p]);
      }
    }
    for (; w < words_; ++w) {  // word tail (words_ % 4)
      std::uint64_t pl[kMaxPlanes] = {};
      for (std::size_t ch = 0; ch < channels; ++ch) {
        std::uint64_t carry = base_[chan_i_[ch] * words_ + w] ^
                              base_[chan_j_[ch] * words_ + w] ^
                              level_[ws.levels[ch] * words_ + w];
        for (std::size_t p = 0; carry != 0 && p < nplanes; ++p) {
          const std::uint64_t t = pl[p];
          pl[p] = t ^ carry;
          carry &= t;
        }
      }
      for (std::size_t p = 0; p < nplanes; ++p) {
        ws.planes[p * words_ + w] = pl[p];
      }
    }
    bundled = true;
  }
#endif
  if (!bundled) {
    std::fill(ws.planes.begin(), ws.planes.end(), 0);
    std::vector<std::uint64_t>& bound = ws.query;  // reuse as bind scratch
    bound.resize(words_);
    for (std::size_t ch = 0; ch < channels; ++ch) {
      const std::uint64_t* __restrict bi = base_.data() + chan_i_[ch] * words_;
      const std::uint64_t* __restrict bj = base_.data() + chan_j_[ch] * words_;
      const std::uint64_t* __restrict lv =
          level_.data() + ws.levels[ch] * words_;
      for (std::size_t w = 0; w < words_; ++w) {
        bound[w] = bi[w] ^ bj[w] ^ lv[w];
      }
      csa_add(ws.planes, nplanes, words_, bound.data());
    }
  }
  majority_from_planes(ws.planes, channels, ws.query);
}

void HdcClassifier::train(const nn::Dataset& train_set) {
  if (train_set.empty()) {
    throw std::invalid_argument("HdcClassifier: empty training set");
  }
  const std::size_t channels = channel_count();
  const std::size_t classes = label_set_.size();
  HdcWorkspace ws;

  // Pass 1: per-channel amplitude range over the pooled training
  // features — the level quantizer's input domain.
  lo_.assign(channels, std::numeric_limits<float>::infinity());
  hi_.assign(channels, -std::numeric_limits<float>::infinity());
  for (const nn::Sample& s : train_set) {
    // Pool via encode()'s exact loop by reusing its pooling stage:
    // duplicating the arithmetic here would let the two drift.
    const std::size_t rows = s.features.rows();
    const std::size_t cols = s.features.cols();
    if (rows != timesteps_ || cols != feature_dim_) {
      throw std::invalid_argument("HdcClassifier: sample geometry mismatch");
    }
    ws.pooled.resize(pooled_rows_ * cols);
    for (std::size_t p = 0; p < pooled_rows_; ++p) {
      const std::size_t r0 = p * rows / pooled_rows_;
      const std::size_t r1 = (p + 1) * rows / pooled_rows_;
      for (std::size_t c = 0; c < cols; ++c) {
        float acc = 0.0f;
        for (std::size_t r = r0; r < r1; ++r) acc += s.features(r, c);
        const float v = acc / static_cast<float>(r1 - r0);
        const std::size_t ch = p * cols + c;
        lo_[ch] = std::min(lo_[ch], v);
        hi_[ch] = std::max(hi_[ch], v);
      }
    }
  }
  for (std::size_t ch = 0; ch < channels; ++ch) {
    if (!(hi_[ch] > lo_[ch])) hi_[ch] = lo_[ch] + 1.0f;  // flat channel
  }

  // Pass 2: majority-bundle each class's encoded windows into its
  // prototype (plain integer counters — training is offline).
  std::vector<std::uint32_t> counts(classes * cfg_.dim_bits, 0);
  std::vector<std::size_t> per_class(classes, 0);
  for (const nn::Sample& s : train_set) {
    if (s.label >= classes) {
      throw std::invalid_argument("HdcClassifier: label out of range");
    }
    encode(s.features.flat(), s.features.rows(), s.features.cols(), ws);
    ++per_class[s.label];
    std::uint32_t* __restrict cls_counts =
        counts.data() + s.label * cfg_.dim_bits;
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t bits = ws.query[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        ++cls_counts[w * 64 + static_cast<std::size_t>(b)];
        bits &= bits - 1;
      }
    }
  }
  proto_.assign(classes * words_, 0);
  for (std::size_t cls = 0; cls < classes; ++cls) {
    const std::size_t n = per_class[cls];
    if (n == 0) continue;  // class absent from the split: zero prototype
    for (std::size_t bit = 0; bit < cfg_.dim_bits; ++bit) {
      const std::uint64_t cnt = counts[cls * cfg_.dim_bits + bit];
      const std::uint64_t tb =
          (tiebreak_[bit / 64] >> (bit % 64)) & 1;
      const bool set = cnt * 2 > n || (cnt * 2 == n && tb != 0);
      if (set) {
        proto_[cls * words_ + bit / 64] |= std::uint64_t{1} << (bit % 64);
      }
    }
  }
  trained_ = true;
}

void HdcClassifier::classify_into(std::span<const float> flat,
                                  std::size_t rows, std::size_t cols,
                                  HdcWorkspace& ws,
                                  ClassificationResult& out) const {
  encode(flat, rows, cols, ws);
  const std::size_t classes = label_set_.size();
  ws.sims.resize(classes);
  for (std::size_t cls = 0; cls < classes; ++cls) {
    const std::uint64_t* __restrict p = proto_.data() + cls * words_;
    std::size_t ham = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      ham += static_cast<std::size_t>(std::popcount(ws.query[w] ^ p[w]));
    }
    // Similarity in [-1, 1]: 1 = identical, 0 = orthogonal (random).
    ws.sims[cls] = 1.0f - 2.0f * static_cast<float>(ham) /
                              static_cast<float>(cfg_.dim_bits);
  }
  // Softmax over sharpness-scaled similarities: a confidence-shaped
  // score the smoothing/policy pipeline consumes like any classifier's.
  float mx = ws.sims[0];
  for (float s : ws.sims) mx = std::max(mx, s);
  out.probabilities.resize(classes);
  float sum = 0.0f;
  for (std::size_t cls = 0; cls < classes; ++cls) {
    const float e = std::exp(cfg_.sharpness * (ws.sims[cls] - mx));
    out.probabilities[cls] = e;
    sum += e;
  }
  std::size_t best = 0;
  for (std::size_t cls = 0; cls < classes; ++cls) {
    out.probabilities[cls] /= sum;
    if (out.probabilities[cls] > out.probabilities[best]) best = cls;
  }
  out.emotion = label_set_[best];
  out.confidence = out.probabilities[best];
}

ClassificationResult HdcClassifier::classify_features(
    const nn::Matrix& features) {
  ClassificationResult out;
  classify_into(features.flat(), features.rows(), features.cols(), ws_, out);
  return out;
}

HdcClassifier train_hdc_classifier(const CorpusProfile& corpus,
                                   const HdcConfig& cfg, unsigned split_seed,
                                   unsigned corpus_seed) {
  const FeatureConfig fc = default_feature_config();
  const FeatureExtractor fx(fc);
  const LabelledCorpus data = build_corpus(corpus, fx, corpus_seed);

  nn::Dataset train_set, test_set;
  nn::split_dataset(data.samples, 0.2, split_seed, train_set, test_set);

  HdcClassifier h(cfg, fx.timesteps(), fx.feature_dim(), data.label_set);
  h.train(train_set);
  return h;
}

}  // namespace affectsys::affect
