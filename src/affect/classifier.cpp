#include "affect/classifier.hpp"

#include <stdexcept>

#include "nn/loss.hpp"
#include "obs/metrics.hpp"

namespace affectsys::affect {

AffectClassifier::AffectClassifier(nn::Sequential model,
                                   std::vector<Emotion> label_set,
                                   FeatureConfig feature_cfg)
    : model_(std::move(model)),
      label_set_(std::move(label_set)),
      fx_(feature_cfg) {
  if (label_set_.empty()) {
    throw std::invalid_argument("AffectClassifier: empty label set");
  }
}

ClassificationResult AffectClassifier::classify(
    std::span<const double> samples) {
  const nn::Matrix& features = [&]() -> const nn::Matrix& {
    AFFECTSYS_TIME_SCOPE("affect.feature_extract_ns");
    return fx_.extract_into(samples, fx_ws_);
  }();
  return classify_features(features);
}

ClassificationResult AffectClassifier::classify_features(
    const nn::Matrix& features) {
  AFFECTSYS_COUNT("affect.inferences", 1);
  AFFECTSYS_TIME_SCOPE("affect.inference_ns");
  const nn::Matrix logits = model_.forward(features);
  ClassificationResult res;
  res.probabilities = nn::softmax_probs(logits);
  const std::size_t idx = nn::argmax(res.probabilities);
  if (idx >= label_set_.size()) {
    throw std::logic_error("AffectClassifier: model output wider than labels");
  }
  res.emotion = label_set_[idx];
  res.confidence = res.probabilities[idx];
  return res;
}

AffectClassifier train_affect_classifier(nn::ModelKind kind,
                                         const CorpusProfile& corpus,
                                         const nn::TrainConfig& train_cfg,
                                         unsigned corpus_seed) {
  const FeatureConfig fc = default_feature_config();
  const FeatureExtractor fx(fc);
  const LabelledCorpus data = build_corpus(corpus, fx, corpus_seed);

  nn::Dataset train_set, test_set;
  nn::split_dataset(data.samples, 0.2, train_cfg.seed, train_set, test_set);

  nn::ClassifierSpec spec;
  spec.input_features = fx.feature_dim();
  spec.timesteps = fx.timesteps();
  spec.num_classes = data.num_classes();

  std::mt19937 rng(train_cfg.seed);
  nn::Sequential model = nn::build_model(kind, spec, rng);
  nn::train(model, train_set, train_cfg);
  return AffectClassifier(std::move(model), data.label_set, fc);
}

}  // namespace affectsys::affect
