// End-to-end affect classifier: waveform -> features -> model -> emotion.
//
// This is the software stand-in for the smartphone "neural engine" path in
// Fig 2/Fig 4: biosignals arrive from the wearable, features are extracted
// and a small on-device model emits an emotion label with confidence.
#pragma once

#include <span>
#include <vector>

#include "affect/dataset.hpp"
#include "affect/emotion.hpp"
#include "affect/features.hpp"
#include "nn/model.hpp"

namespace affectsys::affect {

struct ClassificationResult {
  Emotion emotion = Emotion::kNeutral;
  float confidence = 0.0f;           ///< softmax probability of the winner
  std::vector<float> probabilities;  ///< per-class, in label_set order
};

class AffectClassifier {
 public:
  /// Takes ownership of a trained model whose output order matches
  /// `label_set`.
  AffectClassifier(nn::Sequential model, std::vector<Emotion> label_set,
                   FeatureConfig feature_cfg);

  /// Classifies a raw audio/biosignal window.
  ClassificationResult classify(std::span<const double> samples);

  /// Classifies an already-extracted feature sequence.
  ClassificationResult classify_features(const nn::Matrix& features);

  const std::vector<Emotion>& label_set() const { return label_set_; }
  nn::Sequential& model() { return model_; }
  /// Feature geometry this classifier was trained with — the session
  /// server builds per-session extractors from it so concurrent feature
  /// extraction never contends on (or diverges from) fx_.
  const FeatureConfig& feature_config() const { return fx_.config(); }

 private:
  nn::Sequential model_;
  std::vector<Emotion> label_set_;
  FeatureExtractor fx_;
  /// Reused across classify() calls so the steady-state path performs no
  /// per-window heap allocation.  Makes classify() non-reentrant, which
  /// it already was (model forward state).
  FeatureWorkspace fx_ws_;
};

/// Convenience: trains a classifier of the given kind on a synthesized
/// corpus (used by examples and integration tests).
AffectClassifier train_affect_classifier(nn::ModelKind kind,
                                         const CorpusProfile& corpus,
                                         const nn::TrainConfig& train_cfg,
                                         unsigned corpus_seed = 7);

}  // namespace affectsys::affect
