// Learned skin-conductance classifier.
//
// Section 3 of the paper lists "time-based features such as mean,
// histogram, and variance" as classifier inputs.  This module implements
// exactly that path for the SCL channel: windowed statistical features
// (RunningStats + Histogram from the DSP substrate) feeding a small MLP
// that labels the four session states — a learned upgrade of the
// threshold-based SclEmotionEstimator, ablated in bench/ablation_fusion.
#pragma once

#include <span>
#include <vector>

#include "affect/scl.hpp"
#include "nn/model.hpp"

namespace affectsys::affect {

/// Fixed-dimension statistical feature vector of one SC window:
/// mean, stddev, min-max range, mean |first difference| (SCR activity),
/// max |first difference|, plus a 6-bin histogram of first differences
/// and a 6-bin histogram of amplitudes (both normalized).
std::vector<double> scl_window_features(std::span<const double> window);

inline constexpr std::size_t kSclFeatureDim = 5 + 6 + 6;

/// The four session states in ordinal order (shared with the threshold
/// estimator).
const std::vector<Emotion>& scl_state_labels();

class SclNnClassifier {
 public:
  explicit SclNnClassifier(nn::Sequential model);

  Emotion classify(std::span<const double> window);
  /// Per-state probabilities in scl_state_labels() order.
  std::vector<float> probabilities(std::span<const double> window);

  nn::Sequential& model() { return model_; }

 private:
  nn::Sequential model_;
};

struct SclTrainConfig {
  double window_s = 30.0;
  std::size_t training_traces = 6;  ///< independent session recordings
  std::size_t epochs = 30;
  float learning_rate = 2e-3f;
  unsigned seed = 1;
};

/// Trains on SCL traces generated for the given timeline with distinct
/// generator seeds (distinct "recording sessions" of the same protocol).
SclNnClassifier train_scl_classifier(const EmotionTimeline& timeline,
                                     const SclConfig& scl_cfg,
                                     const SclTrainConfig& cfg);

/// Window-level accuracy of any window classifier against ground truth.
template <typename Classify>
double scl_window_accuracy(const std::vector<double>& trace,
                           double sample_rate_hz,
                           const EmotionTimeline& truth, double window_s,
                           Classify&& classify) {
  const auto win = static_cast<std::size_t>(window_s * sample_rate_hz);
  std::size_t correct = 0, total = 0;
  for (std::size_t start = 0; start + win <= trace.size(); start += win) {
    const double t = static_cast<double>(start) / sample_rate_hz;
    correct += classify(std::span<const double>{trace.data() + start, win}) ==
               truth.at(t);
    ++total;
  }
  return total ? static_cast<double>(correct) / static_cast<double>(total)
               : 0.0;
}

}  // namespace affectsys::affect
