#include "simulcast/policy.hpp"

#include <algorithm>

namespace affectsys::simulcast {

std::size_t SwitchPolicy::target_layer(adaptive::DecoderMode mode,
                                       const ContextVector& ctx,
                                       std::size_t layers) const {
  if (layers == 0) return 0;
  const bool lossy = ctx.loss_rate > thresholds.lossy;
  const bool low_power = ctx.battery < thresholds.battery_low ||
                         ctx.thermal_headroom < thresholds.thermal_low;
  for (const SwitchRule& r : rules) {
    if (r.mode != -1 && r.mode != static_cast<int>(mode)) continue;
    if (ctx.pressure < r.min_pressure) continue;
    if (r.lossy != -1 && (r.lossy == 1) != lossy) continue;
    if (r.low_power != -1 && (r.low_power == 1) != low_power) continue;
    if (r.speaker_role != -1 && r.speaker_role != ctx.speaker_role) continue;
    return std::min(r.target, layers - 1);
  }
  return std::min(default_target, layers - 1);
}

SwitchPolicy default_switch_policy(std::size_t layers) {
  const std::size_t top = layers ? layers - 1 : 0;
  const std::size_t mid = layers >= 3 ? top - 1 : 0;
  SwitchPolicy p;
  p.default_target = top;
  p.rules = {
      // Power beats everything: a dying battery or a throttling SoC
      // wants the cheapest representation regardless of emotion.
      {.low_power = 1, .target = 0},
      // Heavy backlog: the server is already degrading modes; give it
      // the bottom lane before it has to shed frames.
      {.min_pressure = 2, .target = 0},
      // Moderate backlog on a lossy link compounds: go to the bottom.
      {.min_pressure = 1, .lossy = 1, .target = 0},
      // Either alone steps one rung down.
      {.min_pressure = 1, .target = mid},
      {.lossy = 1, .target = mid},
      // Emotion-derived mode caps quality the same way it gates NAL
      // deletion: the cheaper the mode, the lower the lane.
      {.mode = static_cast<int>(adaptive::DecoderMode::kCombined),
       .target = 0},
      {.mode = static_cast<int>(adaptive::DecoderMode::kDeletion),
       .target = mid},
      {.mode = static_cast<int>(adaptive::DecoderMode::kDeblockOff),
       .target = mid},
  };
  return p;
}

SwitchPolicy conference_switch_policy(std::size_t layers) {
  const std::size_t top = layers ? layers - 1 : 0;
  const std::size_t mid = layers >= 3 ? top - 1 : 0;
  SwitchPolicy p = default_switch_policy(layers);
  // Role rows go after the bottom-pinning emergency rows (power, heavy
  // backlog, moderate backlog + loss) and before the single-step-down
  // rows: an idle or recent speaker never outbids a dying battery, and
  // a dominant speaker falls through to exactly the default table —
  // role kDominant matches no role row, so a K=1 room reduces to
  // default_switch_policy verbatim.
  const std::vector<SwitchRule> role_rows = {
      {.target = 0,
       .speaker_role = static_cast<int>(SpeakerRole::kIdle)},
      {.target = mid,
       .speaker_role = static_cast<int>(SpeakerRole::kRecent)},
  };
  p.rules.insert(p.rules.begin() + 3, role_rows.begin(), role_rows.end());
  return p;
}

}  // namespace affectsys::simulcast
