// Simulcast encoding: 2-3 rate-controlled quality layers of the same
// synthetic scene, GOP-aligned so a receiver can switch between them at
// any IDR boundary.
//
// The scene is generated ONCE at the top layer's resolution from the
// shared seed, then box-filtered down for the smaller layers — every
// layer shows the same content at a different (resolution, bitrate)
// operating point, which is what makes per-layer digests comparable and
// switches visually coherent.  Encoding runs in GOP-sized segments: each
// segment is a fresh Encoder::encode_rate_controlled() call, so every
// segment opens on an IDR at the same picture index in every layer
// (aligned switch points), and the RateController is told about the
// forced keyframe so bucket debt from the previous GOP's IDR does not
// spike QP into the new one (see RateController::begin_forced_idr).
#pragma once

#include <cstdint>
#include <vector>

#include "h264/encoder.hpp"
#include "h264/testvideo.hpp"

namespace affectsys::simulcast {

/// Hard cap on layers; matches the wire format's layer-id field
/// (net::kMaxLayers — asserted where the two meet in the serve layer).
inline constexpr std::size_t kMaxSimulcastLayers = 4;

struct SimulcastLayerConfig {
  /// Power-of-two downscale from the scene resolution (1 = full size).
  int scale = 1;
  double target_bps = 200000.0;  ///< rate-control target
  int initial_qp = 30;
};

struct SimulcastConfig {
  /// Scene at the TOP layer's resolution; `seed` is the shared scene
  /// seed all layers encode from.
  h264::VideoConfig scene{64, 64, 48, 1.2, 0.6, 2.5, 77};
  double quiet_fraction = 0.25;  ///< mixed-clip busy/quiet split
  double fps = 25.0;
  /// Pictures per GOP segment: every layer emits an IDR at each multiple
  /// of this, which is exactly the set of legal switch points.
  int gop_frames = 12;
  int b_frames = 2;
  /// Ascending quality: layers[0] is the cheapest (largest scale),
  /// layers.back() the full-resolution top layer.
  std::vector<SimulcastLayerConfig> layers;
};

/// The stock 3-layer ladder over the serve workload's 64x64 scene:
/// 16x16 / 32x32 / 64x64 with roughly area-scaled bitrate targets.
SimulcastConfig default_simulcast_config();

/// One encoded representation.
struct LayerStream {
  int width = 0;
  int height = 0;
  int scale = 1;
  std::vector<h264::NalUnit> params;   ///< SPS, PPS for this resolution
  std::vector<h264::NalUnit> slices;   ///< decode order, one per picture
  std::vector<std::uint8_t> idr;       ///< parallel: slice is an IDR
  std::uint64_t bytes = 0;             ///< total slice bytes
  double mean_pb_bytes = 0.0;          ///< mean non-IDR slice size
  double achieved_bps = 0.0;           ///< rate controller's measurement
};

/// All layers of one encoded scene, picture-aligned: every layer has the
/// same number of slices in the same decode order and IDRs land at the
/// same indices (verified at construction).
class SimulcastClip {
 public:
  explicit SimulcastClip(std::vector<LayerStream> streams);

  std::size_t layer_count() const { return streams_.size(); }
  std::size_t pictures() const {
    return streams_.empty() ? 0 : streams_[0].slices.size();
  }
  /// True when picture index `pic` is a legal switch point (IDR in every
  /// layer — alignment makes this layer-invariant).
  bool idr_at(std::size_t pic) const {
    return streams_[0].idr[pic] != 0;
  }
  const LayerStream& layer(std::size_t l) const { return streams_[l]; }

  /// Relative P/B slice size of layer `l` vs the top layer, for scaling
  /// the Input Selector's S_th (InputSelector::set_layer_scale).
  double selector_scale(std::size_t l) const;

 private:
  std::vector<LayerStream> streams_;
};

/// Deterministic box-filter downscale by a power-of-two factor (also
/// used to build per-layer references for PSNR reporting).
h264::YuvFrame downscale_frame(const h264::YuvFrame& src, int scale);

/// Encodes the configured scene into aligned layers.  Pure function of
/// the config (scene seed included), so two calls with equal configs
/// produce byte-identical clips.
SimulcastClip encode_simulcast(const SimulcastConfig& cfg);

}  // namespace affectsys::simulcast
