// Layer selection a la medooze's VideoLayerSelector: the forwarded
// stream may only change at an IDR of the *target* layer, because a
// decoder joining mid-GOP has no reference pictures.  Between the
// request and the next IDR the selector sits in a waiting-for-keyframe
// state and keeps forwarding the current layer; the wait is counted so
// switch latency is observable (and bounded by one GOP by
// construction — every simulcast GOP opens on an aligned IDR).
//
// Pure state machine over (requests, picture boundaries): no clock, no
// randomness, so identical request/IDR schedules replay identically.
#pragma once

#include <cstdint>

namespace affectsys::simulcast {

struct LayerSelectorStats {
  std::uint64_t switches_requested = 0;  ///< target changed away from current
  std::uint64_t switches_completed = 0;
  std::uint64_t upswitches = 0;
  std::uint64_t downswitches = 0;
  std::uint64_t switches_cancelled = 0;  ///< re-targeted back before the IDR
  std::uint64_t pictures_waited = 0;     ///< total waiting-for-keyframe pics
  std::uint64_t max_wait_pictures = 0;   ///< worst single switch
  std::uint64_t last_wait_pictures = 0;  ///< most recent completed switch
};

class LayerSelector {
 public:
  LayerSelector(std::size_t layers, std::size_t initial)
      : layers_(layers ? layers : 1),
        current_(initial < layers_ ? initial : layers_ - 1),
        target_(current_) {}

  /// Requests a switch to `layer` (clamped).  Idempotent; re-requesting
  /// the current layer cancels a pending switch.
  void request(std::size_t layer);

  /// Advances one picture boundary; `idr` marks an aligned keyframe.
  /// Completes a pending switch exactly when `idr` is true.  Returns the
  /// layer to forward for this picture.
  std::size_t on_picture(bool idr);

  std::size_t current() const { return current_; }
  std::size_t target() const { return target_; }
  bool waiting() const { return target_ != current_; }
  std::size_t layer_count() const { return layers_; }
  const LayerSelectorStats& stats() const { return stats_; }

 private:
  std::size_t layers_;
  std::size_t current_;
  std::size_t target_;
  std::uint64_t wait_ = 0;
  LayerSelectorStats stats_;
};

}  // namespace affectsys::simulcast
