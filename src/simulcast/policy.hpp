// Declarative switch policy: (emotion-derived decoder mode x quantized
// context) -> target simulcast layer.
//
// Scenarios are DATA, not code (ROADMAP item 2): a policy is an ordered
// rule table, first match wins, every field wildcardable.  The context
// vector quantizes into three booleans/levels before matching —
// backlog pressure (the serve degrade ladder level), link lossiness
// (loss rate above a threshold) and low power (battery or thermal
// headroom below a floor) — so a policy's behaviour is enumerable and
// the switch-only-at-IDR invariant can be pinned across ALL policies by
// sweeping the table space.  target_layer() is a pure function of its
// arguments: no state, no clock, replay-safe by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "adaptive/modes.hpp"

namespace affectsys::simulcast {

/// Conference role of the speaker a policy is deciding for.  Non-room
/// sessions are always kDominant, so single-session behaviour is the
/// role-blind PR 9 behaviour by construction.
enum class SpeakerRole : int {
  kDominant = 0,  ///< current active speaker — earns the top rung
  kRecent = 1,    ///< spoke (or held the floor) within recent_ticks
  kIdle = 2,      ///< silent long enough to pin to the bottom rung
};

/// Raw context sampled once per tick by the session.
struct ContextVector {
  int pressure = 0;             ///< serve degrade-ladder level (0..3)
  double loss_rate = 0.0;       ///< lost / sent on the transport link
  double battery = 1.0;         ///< remaining fraction, [0, 1]
  double thermal_headroom = 1.0;
  int speaker_role = 0;         ///< SpeakerRole as int (kDominant default)
};

/// Quantization thresholds applied before rule matching.
struct ContextThresholds {
  double lossy = 0.02;        ///< loss_rate above this = "lossy"
  double battery_low = 0.25;  ///< battery below this = "low power"
  double thermal_low = 0.25;  ///< headroom below this = "low power"
};

/// One row.  -1 wildcards a field; `min_pressure` matches when the
/// context's pressure is >= it (0 = any).
struct SwitchRule {
  int mode = -1;          ///< adaptive::DecoderMode as int, -1 = any
  int min_pressure = 0;
  int lossy = -1;         ///< -1 any, 0 require clean, 1 require lossy
  int low_power = -1;     ///< -1 any, 0 require ok, 1 require low
  std::size_t target = 0; ///< layer to forward (clamped to the clip)
  int speaker_role = -1;  ///< SpeakerRole as int, -1 = any.  Declared
                          ///< last so pre-conference positional
                          ///< initializers keep their meaning.
};

struct SwitchPolicy {
  ContextThresholds thresholds{};
  std::vector<SwitchRule> rules;   ///< ordered, first match wins
  std::size_t default_target = 0;  ///< when no rule matches

  /// The layer this policy wants under (mode, ctx) for a clip with
  /// `layers` layers.  Pure function.
  std::size_t target_layer(adaptive::DecoderMode mode,
                           const ContextVector& ctx,
                           std::size_t layers) const;
};

/// Stock policy for an N-layer ladder: low power or heavy backlog pins
/// the bottom layer, moderate pressure or a lossy link steps one down,
/// and the emotion-derived mode caps quality the same way it drives NAL
/// deletion (Combined -> bottom, Deletion/DeblockOff -> mid).
SwitchPolicy default_switch_policy(std::size_t layers);

/// Conference policy: identical to default_switch_policy for the
/// dominant speaker (so a K=1 room is byte-identical to a plain
/// session), but pins idle speakers to the bottom rung and recent
/// speakers to the mid rung.  The role rows sit AFTER the power /
/// heavy-backlog / lossy-bottom rows — a dying battery or a degrade
/// storm still outranks holding the floor.
SwitchPolicy conference_switch_policy(std::size_t layers);

}  // namespace affectsys::simulcast
