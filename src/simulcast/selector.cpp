#include "simulcast/selector.hpp"

#include <algorithm>

namespace affectsys::simulcast {

void LayerSelector::request(std::size_t layer) {
  layer = std::min(layer, layers_ - 1);
  if (layer == target_) return;
  if (layer == current_) {
    // Re-targeted back to what we are already forwarding: the pending
    // switch never happened.
    ++stats_.switches_cancelled;
    target_ = current_;
    wait_ = 0;
    return;
  }
  if (target_ == current_) ++stats_.switches_requested;
  // else: a pending switch is being re-aimed; it stays one request.
  target_ = layer;
}

std::size_t LayerSelector::on_picture(bool idr) {
  if (target_ != current_) {
    if (idr) {
      ++stats_.switches_completed;
      if (target_ > current_) {
        ++stats_.upswitches;
      } else {
        ++stats_.downswitches;
      }
      stats_.last_wait_pictures = wait_;
      stats_.max_wait_pictures = std::max(stats_.max_wait_pictures, wait_);
      current_ = target_;
      wait_ = 0;
    } else {
      ++wait_;
      ++stats_.pictures_waited;
    }
  }
  return current_;
}

}  // namespace affectsys::simulcast
