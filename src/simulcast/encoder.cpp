#include "simulcast/encoder.hpp"

#include <stdexcept>

#include "h264/ratecontrol.hpp"

namespace affectsys::simulcast {

SimulcastConfig default_simulcast_config() {
  SimulcastConfig cfg;
  cfg.layers = {
      {4, 30000.0, 34},   // 16x16 thumbnail lane
      {2, 80000.0, 32},   // 32x32 mid lane
      {1, 200000.0, 30},  // 64x64 top lane
  };
  return cfg;
}

h264::YuvFrame downscale_frame(const h264::YuvFrame& src, int scale) {
  if (scale <= 1) return src;
  h264::YuvFrame dst(src.width() / scale, src.height() / scale);
  const auto box = [scale](const h264::Plane& in, h264::Plane& out) {
    const int area = scale * scale;
    for (int y = 0; y < out.height; ++y) {
      for (int x = 0; x < out.width; ++x) {
        int sum = 0;
        for (int dy = 0; dy < scale; ++dy) {
          for (int dx = 0; dx < scale; ++dx) {
            sum += in.at(x * scale + dx, y * scale + dy);
          }
        }
        // +area/2: round-to-nearest keeps the mean level, so layer
        // references stay comparable to the full-resolution scene.
        out.at(x, y) = static_cast<std::uint8_t>((sum + area / 2) / area);
      }
    }
  };
  box(src.y, dst.y);
  box(src.cb, dst.cb);
  box(src.cr, dst.cr);
  return dst;
}

namespace {

void validate(const SimulcastConfig& cfg) {
  if (cfg.layers.empty() || cfg.layers.size() > kMaxSimulcastLayers) {
    throw std::invalid_argument("simulcast: need 1..4 layers");
  }
  if (cfg.gop_frames < 1 || cfg.scene.frames < 1) {
    throw std::invalid_argument("simulcast: bad gop/frame count");
  }
  for (const SimulcastLayerConfig& l : cfg.layers) {
    if (l.scale < 1 || (l.scale & (l.scale - 1)) != 0) {
      throw std::invalid_argument("simulcast: scale must be a power of two");
    }
    if (cfg.scene.width % (l.scale * h264::kMbSize) != 0 ||
        cfg.scene.height % (l.scale * h264::kMbSize) != 0) {
      throw std::invalid_argument(
          "simulcast: scaled dimensions must be multiples of 16");
    }
  }
}

}  // namespace

SimulcastClip::SimulcastClip(std::vector<LayerStream> streams)
    : streams_(std::move(streams)) {
  if (streams_.empty()) throw std::invalid_argument("simulcast: no layers");
  for (const LayerStream& s : streams_) {
    if (s.slices.size() != streams_[0].slices.size() ||
        s.idr != streams_[0].idr) {
      throw std::logic_error("simulcast: layers are not picture-aligned");
    }
  }
}

double SimulcastClip::selector_scale(std::size_t l) const {
  const double top = streams_.back().mean_pb_bytes;
  if (top <= 0.0) return 1.0;
  const double mine = streams_[l].mean_pb_bytes;
  return mine > 0.0 ? mine / top : 1.0;
}

SimulcastClip encode_simulcast(const SimulcastConfig& cfg) {
  validate(cfg);
  // One scene, top resolution, shared seed: the content every layer
  // represents.
  const std::vector<h264::YuvFrame> scene =
      h264::generate_mixed_video(cfg.scene, cfg.quiet_fraction);

  std::vector<LayerStream> streams;
  streams.reserve(cfg.layers.size());
  for (const SimulcastLayerConfig& lc : cfg.layers) {
    std::vector<h264::YuvFrame> frames;
    frames.reserve(scene.size());
    for (const h264::YuvFrame& f : scene) {
      frames.push_back(downscale_frame(f, lc.scale));
    }

    h264::EncoderConfig ec;
    ec.width = cfg.scene.width / lc.scale;
    ec.height = cfg.scene.height / lc.scale;
    ec.qp = lc.initial_qp;
    ec.gop_size = cfg.gop_frames;
    ec.b_frames = cfg.b_frames;
    h264::Encoder enc(ec);

    h264::RateControlConfig rcc;
    rcc.target_bps = lc.target_bps;
    rcc.fps = cfg.fps;
    rcc.initial_qp = lc.initial_qp;
    h264::RateController rc(rcc);

    LayerStream out;
    out.width = ec.width;
    out.height = ec.height;
    out.scale = lc.scale;
    out.params = enc.parameter_sets();

    // Segment-wise encode: each encode() call starts a fresh GOP on an
    // IDR, so segment boundaries are the aligned switch points.
    for (std::size_t seg = 0; seg < frames.size();
         seg += static_cast<std::size_t>(cfg.gop_frames)) {
      const std::size_t end = std::min(
          frames.size(), seg + static_cast<std::size_t>(cfg.gop_frames));
      const std::vector<h264::YuvFrame> segment(frames.begin() + seg,
                                                frames.begin() + end);
      rc.begin_forced_idr();
      for (h264::EncodedPicture& pic :
           enc.encode_rate_controlled(segment, rc)) {
        out.idr.push_back(pic.nal.type == h264::NalType::kSliceIdr ? 1 : 0);
        out.bytes += pic.nal.byte_size();
        out.slices.push_back(std::move(pic.nal));
      }
    }

    std::uint64_t pb_bytes = 0, pb_count = 0;
    for (std::size_t i = 0; i < out.slices.size(); ++i) {
      if (out.idr[i]) continue;
      pb_bytes += out.slices[i].byte_size();
      ++pb_count;
    }
    out.mean_pb_bytes =
        pb_count ? static_cast<double>(pb_bytes) / pb_count : 0.0;
    out.achieved_bps = rc.achieved_bps();
    streams.push_back(std::move(out));
  }
  return SimulcastClip(std::move(streams));
}

}  // namespace affectsys::simulcast
