#include "adaptive/input_selector.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace affectsys::adaptive {

InputSelector::InputSelector(const SelectorParams& params) : params_(params) {
  if (params.f == 0) {
    throw std::invalid_argument("InputSelector: f must be >= 1");
  }
}

void InputSelector::reset() {
  stats_ = {};
  candidate_counter_ = 0;
}

void InputSelector::set_layer_scale(double scale) {
  if (!(scale > 0.0)) {
    throw std::invalid_argument("InputSelector: layer scale must be > 0");
  }
  layer_scale_ = scale;
}

std::size_t InputSelector::effective_s_th() const {
  if (layer_scale_ == 1.0) return params_.s_th;
  const double scaled = std::llround(static_cast<double>(params_.s_th) *
                                     layer_scale_);
  return scaled < 1.0 ? 1 : static_cast<std::size_t>(scaled);
}

bool InputSelector::should_delete(const h264::NalUnit& nal) {
  if (!h264::is_slice(nal)) return false;
  const auto type = h264::peek_slice_type(nal);
  if (!type || *type == h264::SliceType::kI) return false;
  if (nal.byte_size() > effective_s_th()) return false;
  ++stats_.candidates;
  // Delete one candidate in every f: the first of each group of f.
  const bool del = candidate_counter_ == 0;
  candidate_counter_ = (candidate_counter_ + 1) % params_.f;
  return del;
}

bool InputSelector::keeps(const h264::NalUnit& nal) {
  AFFECTSYS_TIME_SCOPE("adaptive.selector_filter_ns");
  ++stats_.units_in;
  stats_.bytes_in += nal.byte_size();
  AFFECTSYS_COUNT("adaptive.selector_units_in", 1);
  AFFECTSYS_COUNT("adaptive.selector_bytes_in", nal.byte_size());
  if (should_delete(nal)) {
    ++stats_.deleted;
    AFFECTSYS_COUNT("adaptive.selector_units_deleted", 1);
    AFFECTSYS_COUNT("adaptive.selector_bytes_deleted", nal.byte_size());
    return false;
  }
  stats_.bytes_out += nal.byte_size();
  ++stats_.units_out;
  return true;
}

std::vector<h264::NalUnit> InputSelector::filter(
    std::vector<h264::NalUnit> units) {
  AFFECTSYS_TIME_SCOPE("adaptive.selector_filter_ns");
  [[maybe_unused]] const SelectorStats before = stats_;
  std::vector<h264::NalUnit> kept;
  kept.reserve(units.size());
  for (h264::NalUnit& nal : units) {
    ++stats_.units_in;
    stats_.bytes_in += nal.byte_size();
    if (should_delete(nal)) {
      ++stats_.deleted;
      continue;
    }
    stats_.bytes_out += nal.byte_size();
    ++stats_.units_out;
    kept.push_back(std::move(nal));
  }
  AFFECTSYS_COUNT("adaptive.selector_units_in", stats_.units_in - before.units_in);
  AFFECTSYS_COUNT("adaptive.selector_units_deleted",
                  stats_.deleted - before.deleted);
  AFFECTSYS_COUNT("adaptive.selector_bytes_in", stats_.bytes_in - before.bytes_in);
  AFFECTSYS_COUNT("adaptive.selector_bytes_deleted",
                  (stats_.bytes_in - before.bytes_in) -
                      (stats_.bytes_out - before.bytes_out));
  return kept;
}

std::vector<std::uint8_t> InputSelector::filter_annexb(
    std::span<const std::uint8_t> stream) {
  return h264::pack_annexb(filter(h264::unpack_annexb(stream)));
}

}  // namespace affectsys::adaptive
