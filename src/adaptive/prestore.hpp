// The Pre-store Buffer of Fig 5: a 128 x 16-bit ring inserted between the
// Input Selector and the decoder's Circular Buffer, with a producer /
// consumer handshake that prevents read-write conflicts.
//
// The buffer carries raw bitstream bytes (two per 16-bit word).  When the
// Input Selector decides to drop a NAL unit it rewinds its write pointer
// over the unit's already-written words — the "adjust the writing
// address" mechanism described in Section 4 — which is only possible for
// words the consumer has not yet crossed; the handshake guarantees that.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace affectsys::adaptive {

struct PreStoreStats {
  std::uint64_t words_written = 0;
  std::uint64_t words_read = 0;
  std::uint64_t producer_stalls = 0;  ///< writes refused: buffer full
  std::uint64_t consumer_stalls = 0;  ///< reads refused: buffer empty
  std::uint64_t rewinds = 0;          ///< NAL deletions via write rewind
};

class PreStoreBuffer {
 public:
  static constexpr std::size_t kWords = 128;
  static constexpr std::size_t kBytesPerWord = 2;
  static constexpr std::size_t kCapacityBytes = kWords * kBytesPerWord;

  /// Attempts to enqueue bytes; returns the number actually accepted
  /// (producer must retry the remainder after the consumer drains —
  /// a refused write is counted as a producer stall).
  std::size_t write(std::span<const std::uint8_t> bytes);

  /// Dequeues up to max_bytes; returns the bytes read (may be empty, which
  /// counts as a consumer stall).
  std::vector<std::uint8_t> read(std::size_t max_bytes);

  /// Rewinds the write pointer by `bytes` (deleting an uncommitted NAL
  /// unit).  Fails (returns false) if that many bytes are not pending.
  bool rewind(std::size_t bytes);

  std::size_t size_bytes() const { return fill_; }
  bool empty() const { return fill_ == 0; }
  bool full() const { return fill_ == kCapacityBytes; }

  const PreStoreStats& stats() const { return stats_; }

 private:
  std::uint8_t data_[kCapacityBytes] = {};
  std::size_t head_ = 0;  ///< consumer position
  std::size_t fill_ = 0;
  PreStoreStats stats_;
};

/// Streams a byte sequence through a PreStoreBuffer with a fixed
/// consumer/producer rate ratio, returning the handshake statistics.
/// Models the decoder fetching from the Circular Buffer while the Input
/// Selector refills the Pre-store Buffer.
PreStoreStats simulate_stream_through(std::span<const std::uint8_t> bytes,
                                      std::size_t producer_chunk,
                                      std::size_t consumer_chunk);

}  // namespace affectsys::adaptive
