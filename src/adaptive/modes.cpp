#include "adaptive/modes.hpp"

namespace affectsys::adaptive {

using affect::Emotion;

std::string_view mode_name(DecoderMode m) {
  switch (m) {
    case DecoderMode::kStandard:
      return "Standard";
    case DecoderMode::kDeletion:
      return "Deletion";
    case DecoderMode::kDeblockOff:
      return "DF-Deactivated";
    case DecoderMode::kCombined:
      return "Combined";
  }
  return "?";
}

ModeConfig mode_config(DecoderMode m, std::size_t s_th, unsigned f) {
  ModeConfig cfg;
  cfg.selector = {s_th, f};
  switch (m) {
    case DecoderMode::kStandard:
      break;
    case DecoderMode::kDeletion:
      cfg.delete_nals = true;
      break;
    case DecoderMode::kDeblockOff:
      cfg.deblock = false;
      break;
    case DecoderMode::kCombined:
      cfg.deblock = false;
      cfg.delete_nals = true;
      break;
  }
  return cfg;
}

DecoderMode degraded_mode(DecoderMode m, int level) {
  if (level <= 0) return m;
  if (level >= 2) return DecoderMode::kCombined;
  // Level 1: add NAL deletion on top of whatever the policy chose.
  switch (m) {
    case DecoderMode::kStandard:
      return DecoderMode::kDeletion;
    case DecoderMode::kDeblockOff:
      return DecoderMode::kCombined;
    case DecoderMode::kDeletion:
    case DecoderMode::kCombined:
      return m;
  }
  return m;
}

DecoderMode mode_for_circumplex(const affect::CircumplexPoint& p) {
  if (p.arousal > 0.5) return DecoderMode::kStandard;
  if (p.arousal > 0.0) return DecoderMode::kDeletion;
  if (p.arousal > -0.5) return DecoderMode::kDeblockOff;
  return DecoderMode::kCombined;
}

AffectVideoPolicy::AffectVideoPolicy() {
  map_.fill(DecoderMode::kStandard);
  auto set = [this](Emotion e, DecoderMode m) {
    map_[static_cast<std::size_t>(e)] = m;
  };
  // Section 4 case-study states.
  set(Emotion::kDistracted, DecoderMode::kCombined);
  set(Emotion::kConcentrated, DecoderMode::kDeletion);
  set(Emotion::kTense, DecoderMode::kStandard);
  set(Emotion::kRelaxed, DecoderMode::kDeblockOff);
  // Defaults for other states: quality where attention is high, saving
  // where it is not.
  set(Emotion::kNeutral, DecoderMode::kDeletion);
  set(Emotion::kCalm, DecoderMode::kDeblockOff);
  set(Emotion::kSleepy, DecoderMode::kCombined);
  set(Emotion::kSad, DecoderMode::kDeblockOff);
  set(Emotion::kHappy, DecoderMode::kDeletion);
  set(Emotion::kExcited, DecoderMode::kStandard);
  set(Emotion::kAngry, DecoderMode::kStandard);
  set(Emotion::kFearful, DecoderMode::kStandard);
  set(Emotion::kSurprised, DecoderMode::kStandard);
  set(Emotion::kDisgust, DecoderMode::kDeletion);
}

DecoderMode AffectVideoPolicy::mode_for(Emotion e) const {
  return map_[static_cast<std::size_t>(e)];
}

void AffectVideoPolicy::set_mode(Emotion e, DecoderMode m) {
  map_[static_cast<std::size_t>(e)] = m;
}

}  // namespace affectsys::adaptive
