// Affect-driven video playback simulation (Fig 6 bottom).
//
// A prototype clip is encoded once; each decoder mode is then profiled by
// actually decoding the (possibly Input-Selector-edited) stream and
// feeding the measured module activity through the calibrated power
// model.  A playback session integrates per-mode energy over an emotion
// timeline, switching modes through the AffectVideoPolicy exactly as the
// paper's case study does.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "adaptive/modes.hpp"
#include "affect/scl.hpp"
#include "affect/stream.hpp"
#include "h264/encoder.hpp"
#include "h264/testvideo.hpp"
#include "power/model.hpp"

namespace affectsys::adaptive {

struct PlaybackConfig {
  /// Prototype clip content.  Defaults are calibrated (DESIGN.md) so the
  /// four mode powers land near the paper's Fig 6 measurements with
  /// S_th = 140: busy scenes produce B NALs just above the threshold,
  /// quiet scenes just below it.
  h264::VideoConfig video{64, 64, 48, 1.2, 0.6, 2.5, 77};
  h264::EncoderConfig encoder{64, 64, 24, 12, 2, 4, true};
  double fps = 25.0;                  ///< playback rate
  std::size_t s_th = 140;             ///< Input Selector threshold (bytes)
  unsigned f = 1;                     ///< Input Selector deletion frequency
  double deblock_power_share = 0.314; ///< calibration target (paper: 31.4%)
  /// Fraction of the prototype clip rendered as quiet/low-motion scenes
  /// (their small P/B NAL units are the Input Selector's candidates).
  double quiet_fraction = 0.25;
};

/// Measured characteristics of one decoder mode on the prototype clip.
struct ModeProfile {
  DecoderMode mode = DecoderMode::kStandard;
  power::EnergyBreakdown energy;  ///< one pass over the prototype clip
  double psnr_db = 0.0;           ///< vs the uncompressed source
  /// Energy relative to Standard; 0 until assigned by profile() (every
  /// mode, Standard included, gets an explicit value there).
  double norm_power = 0.0;
  SelectorStats selector;         ///< deletion statistics (if any)
};

/// Owns the prototype stream, the calibrated power model, and the four
/// mode profiles.
class AdaptiveDecoderSystem {
 public:
  explicit AdaptiveDecoderSystem(const PlaybackConfig& cfg);

  /// Profile for a mode (measured lazily, cached).
  const ModeProfile& profile(DecoderMode m);

  const power::EnergyCoefficients& coefficients() const { return coeff_; }
  const PlaybackConfig& config() const { return cfg_; }
  std::size_t clip_frames() const { return source_.size(); }

 private:
  ModeProfile measure(DecoderMode m) const;

  PlaybackConfig cfg_;
  std::vector<h264::YuvFrame> source_;
  std::vector<std::uint8_t> stream_;
  power::EnergyCoefficients coeff_;
  std::array<std::optional<ModeProfile>, kNumDecoderModes> profiles_;
};

struct PlaybackSegment {
  double start_s = 0.0;
  double end_s = 0.0;
  affect::Emotion emotion = affect::Emotion::kNeutral;
  DecoderMode mode = DecoderMode::kStandard;
  double energy_nj = 0.0;
  double psnr_db = 0.0;
};

struct PlaybackReport {
  std::vector<PlaybackSegment> segments;
  double total_energy_nj = 0.0;
  double standard_energy_nj = 0.0;  ///< whole session in Standard mode

  double energy_saving() const {
    return standard_energy_nj > 0.0
               ? 1.0 - total_energy_nj / standard_energy_nj
               : 0.0;
  }
};

/// Integrates mode energy over an emotion timeline.
PlaybackReport simulate_playback(AdaptiveDecoderSystem& system,
                                 const affect::EmotionTimeline& timeline,
                                 const AffectVideoPolicy& policy);

/// End-to-end variant: derives the emotion timeline from a skin-
/// conductance trace via the calibrated SclEmotionEstimator and an
/// EmotionStream (window votes + hysteresis), then simulates playback.
PlaybackReport simulate_playback_from_scl(
    AdaptiveDecoderSystem& system, const std::vector<double>& scl_trace,
    double scl_rate_hz, const affect::SclEmotionEstimator& estimator,
    const AffectVideoPolicy& policy, double window_s = 30.0);

}  // namespace affectsys::adaptive
