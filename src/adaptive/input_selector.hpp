// The Input Selector of Fig 5: the affect-driven front-end that deletes
// non-critical NAL units from the compressed bitstream before it reaches
// the Circular Buffer.
//
// Deletion policy (Section 4): a NAL unit is a deletion *candidate* when
// it carries a P or B slice and its byte size is <= S_th.  With m
// candidates in the stream, m/f of them are deleted — larger S_th and
// smaller f delete more data, saving more power at more quality loss.
// I slices and parameter sets are never touched.
#pragma once

#include <cstdint>
#include <vector>

#include "h264/nal.hpp"

namespace affectsys::adaptive {

struct SelectorParams {
  std::size_t s_th = 140;  ///< candidate threshold in bytes
  unsigned f = 1;          ///< delete one candidate in every f (f >= 1)
};

struct SelectorStats {
  std::size_t units_in = 0;
  std::size_t units_out = 0;
  std::size_t candidates = 0;  ///< m in the paper
  std::size_t deleted = 0;     ///< m / f
  std::size_t bytes_in = 0;
  std::size_t bytes_out = 0;

  double deletion_ratio() const {
    return bytes_in ? 1.0 - static_cast<double>(bytes_out) / bytes_in : 0.0;
  }
};

class InputSelector {
 public:
  explicit InputSelector(const SelectorParams& params);

  /// Filters a stream of NAL units, dropping every f-th qualifying P/B
  /// slice unit of size <= S_th.  Stateless between calls to reset().
  std::vector<h264::NalUnit> filter(std::vector<h264::NalUnit> units);

  /// Single-unit, non-destructive form of filter(): true when the unit
  /// survives selection.  Stats, metrics, and the candidate counter
  /// evolve exactly as a one-element filter() call would, so callers
  /// that previously staged each unit in a one-element vector can test
  /// it in place with no allocation and no behavioural change.
  bool keeps(const h264::NalUnit& nal);

  /// Convenience: unpack an Annex-B stream, filter, and repack.
  std::vector<std::uint8_t> filter_annexb(
      std::span<const std::uint8_t> stream);

  const SelectorStats& stats() const { return stats_; }
  void reset();

  const SelectorParams& params() const { return params_; }

  /// Rescales the candidate threshold for a stream whose P/B slices run
  /// `scale`x the size of the reference layer's.  S_th is calibrated
  /// against one slice-size distribution; applied unscaled to a
  /// downswitched (smaller-resolution) simulcast layer it would classify
  /// nearly every slice as a candidate and deletion would gut the
  /// stream.  The effective threshold becomes max(1, round(s_th *
  /// scale)).  Stats and the one-in-f cadence carry across a scale
  /// change, so switching layers mid-stream keeps the deletion rhythm.
  void set_layer_scale(double scale);
  double layer_scale() const { return layer_scale_; }
  /// Threshold actually applied: params().s_th scaled by layer_scale().
  std::size_t effective_s_th() const;

 private:
  bool should_delete(const h264::NalUnit& nal);

  SelectorParams params_;
  SelectorStats stats_;
  unsigned candidate_counter_ = 0;
  double layer_scale_ = 1.0;
};

}  // namespace affectsys::adaptive
