#include "adaptive/playback.hpp"

#include <stdexcept>

#include "h264/decoder.hpp"
#include "h264/quality.hpp"
#include "obs/metrics.hpp"

namespace affectsys::adaptive {

AdaptiveDecoderSystem::AdaptiveDecoderSystem(const PlaybackConfig& cfg)
    : cfg_(cfg) {
  source_ = h264::generate_mixed_video(cfg_.video, cfg_.quiet_fraction);
  h264::Encoder enc(cfg_.encoder);
  stream_ = enc.encode_annexb(source_);

  // Calibrate the power model on a standard-mode reference decode.
  h264::Decoder ref({.enable_deblock = true});
  ref.decode_annexb(stream_);
  coeff_ = power::calibrate_to_deblock_share(
      power::EnergyCoefficients{}, ref.activity(), cfg_.deblock_power_share);
}

const ModeProfile& AdaptiveDecoderSystem::profile(DecoderMode m) {
  auto& slot = profiles_[static_cast<std::size_t>(m)];
  if (!slot) {
    slot = measure(m);
    // norm_power needs the Standard reference; compute it on demand.
    // Standard itself is assigned explicitly (it is 1.0 by definition)
    // rather than relying on the ModeProfile default, so the value is
    // correct no matter which mode is profiled first.
    if (m == DecoderMode::kStandard) {
      slot->norm_power = 1.0;
    } else {
      auto& std_slot = profiles_[static_cast<std::size_t>(DecoderMode::kStandard)];
      if (!std_slot) {
        std_slot = measure(DecoderMode::kStandard);
        std_slot->norm_power = 1.0;
      }
      slot->norm_power =
          slot->energy.total_nj() / std_slot->energy.total_nj();
    }
  }
  return *slot;
}

ModeProfile AdaptiveDecoderSystem::measure(DecoderMode m) const {
  AFFECTSYS_COUNT("adaptive.modes_profiled", 1);
  AFFECTSYS_TIME_SCOPE("adaptive.mode_profile_ns");
  const ModeConfig mc = mode_config(m, cfg_.s_th, cfg_.f);
  ModeProfile prof;
  prof.mode = m;

  std::vector<std::uint8_t> stream = stream_;
  if (mc.delete_nals) {
    InputSelector selector(mc.selector);
    stream = selector.filter_annexb(stream);
    prof.selector = selector.stats();
  }

  h264::Decoder dec({.enable_deblock = mc.deblock});
  auto decoded = dec.decode_annexb(stream);
  prof.energy = power::decode_energy(dec.activity(), coeff_);

  const auto display = h264::assemble_display_sequence(
      std::move(decoded), static_cast<int>(source_.size()));
  if (display.size() != source_.size()) {
    throw std::logic_error("AdaptiveDecoderSystem: display sequence underrun");
  }
  std::vector<h264::YuvFrame> frames;
  frames.reserve(display.size());
  for (const auto& p : display) frames.push_back(p.frame);
  prof.psnr_db = h264::sequence_psnr(source_, frames);
  return prof;
}

PlaybackReport simulate_playback(AdaptiveDecoderSystem& system,
                                 const affect::EmotionTimeline& timeline,
                                 const AffectVideoPolicy& policy) {
  PlaybackReport report;
  const double clip_seconds =
      static_cast<double>(system.clip_frames()) / system.config().fps;
  const double std_energy_per_clip =
      system.profile(DecoderMode::kStandard).energy.total_nj();

  for (const auto& seg : timeline.segments) {
    const double duration = seg.end_s - seg.start_s;
    if (duration <= 0.0) continue;
    const DecoderMode mode = policy.mode_for(seg.emotion);
    const ModeProfile& prof = system.profile(mode);
    const double clips = duration / clip_seconds;

    PlaybackSegment out;
    out.start_s = seg.start_s;
    out.end_s = seg.end_s;
    out.emotion = seg.emotion;
    out.mode = mode;
    out.energy_nj = prof.energy.total_nj() * clips;
    out.psnr_db = prof.psnr_db;
    report.segments.push_back(out);

    report.total_energy_nj += out.energy_nj;
    report.standard_energy_nj += std_energy_per_clip * clips;
  }
  AFFECTSYS_COUNT("adaptive.playback_sessions", 1);
  AFFECTSYS_COUNT("adaptive.playback_segments", report.segments.size());
  AFFECTSYS_GAUGE_SET("adaptive.playback_energy_saving",
                      report.energy_saving());
  return report;
}

PlaybackReport simulate_playback_from_scl(
    AdaptiveDecoderSystem& system, const std::vector<double>& scl_trace,
    double scl_rate_hz, const affect::SclEmotionEstimator& estimator,
    const AffectVideoPolicy& policy, double window_s) {
  // Classify fixed windows of the SC trace, smooth with an EmotionStream,
  // and emit a segment each time the stable emotion changes.
  const auto win = static_cast<std::size_t>(window_s * scl_rate_hz);
  if (win == 0 || scl_trace.size() < win) {
    throw std::invalid_argument("simulate_playback_from_scl: trace too short");
  }
  affect::StreamConfig sc;
  sc.vote_window = 3;
  sc.min_dwell_s = 2.0 * window_s;
  affect::EmotionStream stream(sc);

  affect::EmotionTimeline timeline;
  double seg_start = 0.0;
  affect::Emotion current = affect::Emotion::kRelaxed;
  bool first = true;
  for (std::size_t start = 0; start + win <= scl_trace.size(); start += win) {
    const double t = static_cast<double>(start) / scl_rate_hz;
    const affect::Emotion raw =
        estimator.classify({scl_trace.data() + start, win});
    if (first) {
      // Seed the stable state with the first observation.
      current = raw;
      first = false;
    }
    if (auto changed = stream.push(t, raw)) {
      if (t > seg_start) {
        timeline.segments.push_back({seg_start, t, current});
        seg_start = t;
      }
      current = *changed;
    }
  }
  const double end_s = static_cast<double>(scl_trace.size()) / scl_rate_hz;
  if (end_s > seg_start) {
    timeline.segments.push_back({seg_start, end_s, current});
  }
  return simulate_playback(system, timeline, policy);
}

}  // namespace affectsys::adaptive
