#include "adaptive/prestore.hpp"

#include <algorithm>

namespace affectsys::adaptive {

std::size_t PreStoreBuffer::write(std::span<const std::uint8_t> bytes) {
  const std::size_t space = kCapacityBytes - fill_;
  const std::size_t n = std::min(space, bytes.size());
  if (n < bytes.size()) ++stats_.producer_stalls;
  for (std::size_t i = 0; i < n; ++i) {
    data_[(head_ + fill_ + i) % kCapacityBytes] = bytes[i];
  }
  fill_ += n;
  stats_.words_written += (n + kBytesPerWord - 1) / kBytesPerWord;
  return n;
}

std::vector<std::uint8_t> PreStoreBuffer::read(std::size_t max_bytes) {
  const std::size_t n = std::min(fill_, max_bytes);
  if (n == 0 && max_bytes > 0) ++stats_.consumer_stalls;
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = data_[(head_ + i) % kCapacityBytes];
  }
  head_ = (head_ + n) % kCapacityBytes;
  fill_ -= n;
  stats_.words_read += (n + kBytesPerWord - 1) / kBytesPerWord;
  return out;
}

bool PreStoreBuffer::rewind(std::size_t bytes) {
  if (bytes > fill_) return false;
  fill_ -= bytes;
  ++stats_.rewinds;
  return true;
}

PreStoreStats simulate_stream_through(std::span<const std::uint8_t> bytes,
                                      std::size_t producer_chunk,
                                      std::size_t consumer_chunk) {
  PreStoreBuffer buf;
  std::size_t wr = 0;
  std::size_t rd = 0;
  // Alternate producer and consumer turns until the stream drains.
  while (rd < bytes.size()) {
    if (wr < bytes.size()) {
      const std::size_t want = std::min(producer_chunk, bytes.size() - wr);
      wr += buf.write(bytes.subspan(wr, want));
    }
    rd += buf.read(consumer_chunk).size();
  }
  return buf.stats();
}

}  // namespace affectsys::adaptive
