// Decoder working modes (Fig 6 middle) and the emotion -> mode policy.
#pragma once

#include <array>
#include <string_view>

#include "adaptive/input_selector.hpp"
#include "affect/emotion.hpp"

namespace affectsys::adaptive {

/// The four working modes the affect-driven decoder provides.
enum class DecoderMode {
  kStandard,    ///< all NAL units processed, DF active: best quality
  kDeletion,    ///< Input Selector drops small P/B NALs (S_th, f)
  kDeblockOff,  ///< Deblocking Filter deactivated
  kCombined,    ///< deletion + DF off: maximum power saving
};

inline constexpr std::size_t kNumDecoderModes = 4;

std::string_view mode_name(DecoderMode m);

/// Knob settings realizing a mode.
struct ModeConfig {
  bool deblock = true;
  bool delete_nals = false;
  SelectorParams selector{};  ///< used when delete_nals
};

/// The paper's mode parameterization: S_th = 140 bytes, f = 1.
ModeConfig mode_config(DecoderMode m, std::size_t s_th = 140, unsigned f = 1);

/// Overload degradation ladder for the session server: forces a mode at
/// least as cheap as the affect policy chose.  Level 0 returns `m`
/// unchanged; level 1 turns NAL deletion on (Standard -> Deletion,
/// DeblockOff -> Combined); level >= 2 forces Combined (deletion + DF
/// off).  Frame dropping — the step *after* every affect-adaptive knob
/// is exhausted — is the server's decision, not a decoder mode.
DecoderMode degraded_mode(DecoderMode m, int level);

/// Programmable mapping from detected emotion to decoder mode.  The
/// default implements the Section 4 case-study policy:
///   distracted           -> Combined (max saving; quality not critical)
///   concentrated         -> Deletion (DF back on)
///   tense / highly conc. -> Standard (best quality)
///   relaxed              -> DeblockOff
/// plus sensible defaults for the basic emotions (attention-critical
/// emotions get Standard, low-arousal ones DeblockOff).
/// Continuous-policy variant for the circumplex regressor: decoder mode
/// as a function of graded arousal (attention).  High arousal buys
/// quality; deep deactivation buys power.  Thresholds are the natural
/// quartiles of the arousal axis.
DecoderMode mode_for_circumplex(const affect::CircumplexPoint& p);

class AffectVideoPolicy {
 public:
  AffectVideoPolicy();

  DecoderMode mode_for(affect::Emotion e) const;
  void set_mode(affect::Emotion e, DecoderMode m);

 private:
  std::array<DecoderMode, affect::kNumEmotions> map_;
};

}  // namespace affectsys::adaptive
