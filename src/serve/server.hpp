// SessionManager: the multi-tenant session server.  Runs N concurrent
// end-to-end sessions in one process on the existing thread pool, with
// cross-session batched inference, admission control and graceful load
// shedding.
//
// One tick is three stages:
//   A. pump_audio over every due session (parallel_for; session state
//      is private, shared state read-only),
//   B. collect staged windows in session-id order (serial, so batch
//      assembly is deterministic), feed each session's shard batcher,
//      flush at most one batch per shard (service capacity = max_batch
//      rows per shard per tick) and route the results back (serial —
//      the model's activation caches make inference non-reentrant),
//   C. tick_media over every due session (parallel_for) under the
//      current degrade level.
//
// Scheduling has two modes:
//   - compat (wheel=false, the default): every open session is due
//     every tick — the pre-PR 7 global tick, byte-identical to it.
//   - event-driven (wheel=true): a hierarchical timer wheel
//     (core/timer_wheel) holds one wake-up entry per session; a tick
//     only touches sessions the wheel hands back, so a fleet of
//     mostly-idle (duty-cycled) sessions costs O(due) per tick instead
//     of O(open).  Sessions run on their *local* tick clock, which
//     advances only when they run, so a session's per-run behaviour is
//     independent of how long it slept.
//
// Sharding (shards=K): sessions partition statically by id % K and
// each shard owns a private InferenceBatcher (metric scope
// "serve.shard<k>" when K > 1).  Stage B drains and flushes shards in
// ascending shard order, and batch assembly within a shard follows
// session-id order, so the result stream is a deterministic function
// of (config, seeds) — replaying a K-shard run reproduces it exactly.
// work_steal=true runs stages A/C as one parallel_for over the merged
// due list (idle shards donate their workers); false runs one
// parallel_for per shard.  Both produce identical results — the flag
// only reshapes work distribution.
//
// Determinism: nothing in the control loop reads a wall clock.  The
// flush deadline is counted in ticks, service capacity is max_batch
// rows per flush, and the degrade level is a pure function of the
// global backlog vs. the watermarks — so an overloaded run is exactly
// replayable under a fixed seed, which is what the shedding tests
// assert.
//
// Load shedding ladder (cheapest first), per the paper's own
// affect-adaptive knobs before anything user-visible is dropped:
//   level 0: every session runs its affect-chosen mode;
//   level 1: NAL deletion forced on (Standard->Deletion,
//            DeblockOff->Combined);
//   level 2: Combined forced (deletion + deblocking off);
//   level 3: this tick's frames shed outright.
// Per-session window backpressure is separate: each session's
// RealtimePipeline drops the newest window once max_inflight are
// outstanding, so one chatty tenant cannot monopolize the batcher.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "conf/room.hpp"
#include "core/buffer_pool.hpp"
#include "core/timer_wheel.hpp"
#include "serve/batcher.hpp"
#include "serve/feature_cache.hpp"
#include "serve/session.hpp"
#include "serve/workload.hpp"

namespace affectsys::serve {

/// Typed admission failure: thrown by create_session() once the server
/// is at capacity.  Callers treat this as backpressure, not a bug.
class AdmissionError : public std::runtime_error {
 public:
  AdmissionError(std::size_t open, std::size_t limit)
      : std::runtime_error("session server at capacity: " +
                          std::to_string(open) + "/" +
                          std::to_string(limit) + " sessions open"),
        open_(open),
        limit_(limit) {}

  std::size_t open_sessions() const { return open_; }
  std::size_t limit() const { return limit_; }

 private:
  std::size_t open_;
  std::size_t limit_;
};

struct ServerConfig {
  /// Admission limit: create_session() past this throws AdmissionError.
  std::size_t max_sessions = 64;
  /// Global backlog watermarks (windows staged + in flight, summed over
  /// sessions).  Crossing `hi` raises the degrade level one step per
  /// tick; falling below `lo` lowers it one step per tick.  The
  /// hysteresis gap keeps the ladder from oscillating every tick.
  std::size_t backlog_hi = 48;
  std::size_t backlog_lo = 16;
  BatcherConfig batcher{};
  /// Defaults applied to sessions created without an explicit config
  /// (seed is replaced by a per-session value derived from the id).
  SessionConfig session{};
  /// Error-budget ladder, alongside the backlog ladder: a session whose
  /// pipeline faults (decode errors + dropped audio chunks) exceed
  /// `error_budget` within a rolling `error_window_ticks` window is
  /// quarantined — skipped by every tick stage for `quarantine_ticks`
  /// ticks, its in-flight batcher results dropped on arrival — then
  /// auto-restarted from its admission config (same id, same seed,
  /// fresh state).  error_budget == 0 disables the ladder.
  std::uint64_t error_budget = 0;
  std::uint64_t error_window_ticks = 50;
  std::uint64_t quarantine_ticks = 20;
  /// Server-level fault injection (kBatcherFallback fires here); the
  /// per-session kinds ride in each session's own config.
  fault::FaultConfig fault{};
  /// Session shards (id % shards).  Each shard owns its own batcher;
  /// 1 (the default) reproduces the single global batcher, including
  /// its legacy un-prefixed metric names, byte-for-byte.
  std::size_t shards = 1;
  /// Event-driven scheduling via the timer wheel (see the header
  /// comment).  False = compat: every session runs every tick.
  bool wheel = false;
  /// One merged parallel_for across shards for stages A/C (true) vs.
  /// a barrier per shard (false).  Identical results either way.
  bool work_steal = true;
  /// Build the shared feature-bank cache for quantized workloads
  /// (sessions fall back to live extraction when false — byte-identical
  /// output, the A/B the cache-identity test runs).
  bool feature_bank_cache = true;
  /// Approximate-inference ladder (serve/ladder.hpp).  Disabled by
  /// default: every window serves on fp32 and the pre-ladder byte
  /// identity holds.  When enabled, the server builds the int8 model
  /// from the classifier at construction; the HDC rung additionally
  /// needs a trained classifier in SessionEnv::hdc — max_rung is capped
  /// at the highest rung that actually has a model.
  LadderConfig ladder{};
};

struct ServerStats {
  std::uint64_t ticks = 0;
  std::uint64_t sessions_created = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t sessions_rejected = 0;
  std::uint64_t results_routed = 0;
  std::uint64_t degrade_ticks = 0;  ///< ticks spent at level >= 1
  int max_degrade_level = 0;
  // Error-budget ladder (zero unless ServerConfig::error_budget is set).
  std::uint64_t sessions_quarantined = 0;
  std::uint64_t sessions_restarted = 0;
  std::uint64_t results_dropped_quarantined = 0;
  // Conference rooms.
  std::uint64_t rooms_created = 0;
  /// Session-ticks actually executed (sum of due-list sizes).  Equals
  /// ticks * open_sessions under compat scheduling; far smaller for a
  /// duty-cycled fleet on the wheel — the bench's idling evidence.
  std::uint64_t session_runs = 0;
  // Inference-ladder pressure (both zero with the ladder off).
  std::uint64_t ladder_pressure_ticks = 0;  ///< ticks at pressure >= 1
  int max_ladder_pressure = 0;
};

class SessionManager {
 public:
  /// The env members (workload, classifier, optional app table/catalog)
  /// must outlive the manager.
  SessionManager(const ServerConfig& cfg, const SessionEnv& env);

  /// Admits a new session, or throws AdmissionError at capacity.
  /// Returns the session id (monotonic; never reused even after
  /// close_session frees the capacity slot).
  SessionId create_session(const SessionConfig& cfg);
  /// Admits with the server's default session config and a seed derived
  /// from the new id.
  SessionId create_session();

  /// Creates a conference room.  Members join via the create_session
  /// overload below; the room's active-speaker detector runs as a
  /// serial stage between audio and media in tick(), so every member's
  /// speaker role is set before its switch policy is evaluated.
  conf::RoomId create_room(const conf::RoomConfig& cfg = {});
  /// Admits a session INTO a room: requires simulcast (the multiplexer
  /// pins non-dominant speakers to lower rungs, which needs a ladder)
  /// and, when the session uses the default policy, swaps in the
  /// conference table (role rows).  Throws std::out_of_range for
  /// unknown rooms, std::invalid_argument without simulcast, and
  /// AdmissionError at capacity — membership is only recorded once the
  /// session is actually admitted.
  SessionId create_session(const SessionConfig& cfg, conf::RoomId room);

  bool has_room(conf::RoomId id) const { return rooms_.contains(id); }
  std::size_t open_rooms() const { return rooms_.size(); }
  /// Throws std::out_of_range for unknown rooms.
  const conf::Room& room(conf::RoomId id) const;
  conf::RoomReport room_report(conf::RoomId id) const;

  /// Closes a session, freeing its admission slot.  Results still in
  /// the batcher for it are dropped on arrival.  Throws
  /// std::out_of_range for unknown ids.
  void close_session(SessionId id);

  bool has_session(SessionId id) const { return sessions_.contains(id); }
  std::size_t open_sessions() const { return sessions_.size(); }

  /// Advances every open session by one tick (stages A/B/C above).
  void tick();

  /// Runs the batcher dry: flushes until no windows are pending and
  /// routes everything back.  Call after the last tick so reports see
  /// every staged window applied.
  void drain();

  /// Snapshot of one session's run; throws std::out_of_range for
  /// unknown (including closed) ids.
  SessionReport report(SessionId id) const;
  const Session& session(SessionId id) const;

  /// True while a session is serving its quarantine (still admitted,
  /// not ticked; auto-restarts when the quarantine expires).
  bool is_quarantined(SessionId id) const;

  int degrade_level() const { return degrade_level_; }
  /// Current precision-pressure level (0..max_rung; 0 with the ladder
  /// off).  Sessions clamp this by their own stability.
  int ladder_pressure() const { return ladder_pressure_; }
  /// Highest rung the ladder can actually serve (what the env's
  /// sessions see as max_rung).
  Rung max_rung() const { return env_.max_rung; }
  /// Windows pending inference summed over shard batchers (after stage
  /// B every session's staging buffer is empty, so this is the whole
  /// backlog).
  std::size_t backlog() const;
  const ServerStats& stats() const { return stats_; }
  /// Batcher counters aggregated across shards (max_batch_rows is the
  /// max over shards, everything else sums).
  BatcherStats batcher_stats() const;
  const ServerConfig& config() const { return cfg_; }
  /// The pool backing staged feature windows (for allocation tests).
  const core::BufferPool& feature_pool() const { return *feature_pool_ptr_; }
  /// Non-null when the shared feature-bank cache was built and usable.
  const FeatureBankCache* feature_cache() const { return env_.feature_cache; }

 private:
  /// One admitted tenant: the live session plus the quarantine state
  /// and the config needed to auto-restart it.
  struct Slot {
    std::unique_ptr<Session> session;
    SessionConfig cfg;  ///< admission config, for restart
    bool quarantined = false;
    std::uint64_t release_tick = 0;       ///< first tick after quarantine
    std::uint64_t window_start_tick = 0;  ///< rolling error-window origin
    std::uint64_t window_start_errors = 0;
    /// Batcher results still in flight at quarantine time; dropped on
    /// arrival so a restarted session never sees a stale window.
    std::size_t results_to_drop = 0;
    /// Room membership (0 = none).  Survives quarantine restarts: the
    /// fresh session rejoins the same room under the same id.
    conf::RoomId room = 0;
    /// Wheel state: the tick of this slot's one valid wake entry (stale
    /// wheel entries fail the comparison and are ignored) and the last
    /// tick it was put on the due list (dedup).
    std::uint64_t next_wake = 0;
    std::uint64_t last_run = std::numeric_limits<std::uint64_t>::max();
  };

  /// One session shard: a private batcher plus scratch for the shard's
  /// slice of the due list.
  struct Shard {
    std::unique_ptr<InferenceBatcher> batcher;
    std::vector<Session*> due;  ///< scratch, rebuilt every tick
  };

  // Wheel keys: (kind << 56) | session id.  Quarantine releases sort
  // (and therefore run) before wake-ups on the same tick, so a freshly
  // restarted session joins this tick's due list.
  static constexpr std::uint64_t kKindShift = 56;
  static std::uint64_t wake_key(SessionId id) {
    return (std::uint64_t{1} << kKindShift) | id;
  }
  static std::uint64_t quarantine_key(SessionId id) { return id; }

  void build_due_compat();
  void build_due_wheel();
  void tick_rooms();
  void restart_slot(SessionId id, Slot& slot);
  void route(std::span<const RoutedResult> results);
  void update_degrade_level();
  void update_ladder_pressure();
  void update_error_budget();
  static std::uint64_t session_errors(const Session& s);

  ServerConfig cfg_;
  SessionEnv env_;

  // Pooled feature staging + shared feature-bank cache (built here when
  // the caller's env leaves them null; env_ is patched to point at them
  // before any session is created).  Declared BEFORE the shards and the
  // session map: sessions' staging rings and shard batchers hold
  // BufferRefs pooled from feature_pool_, so the pool must be destroyed
  // after them (members destroy in reverse declaration order).
  std::unique_ptr<core::BufferPool> feature_pool_;
  std::unique_ptr<FeatureBankCache> feature_cache_;
  core::BufferPool* feature_pool_ptr_ = nullptr;

  /// Ladder runtime: the int8 capture of the classifier (built here
  /// when the ladder is enabled and the model shape quantizes) plus the
  /// caller's HDC model.  Declared before shards_ — the batchers copy
  /// ladder_rt_ at construction but the models must outlive them.
  std::optional<nn::QuantizedMlp> quantized_;
  LadderRuntime ladder_rt_;

  std::vector<Shard> shards_;
  /// Ordered by id: iteration order (and thus batch assembly and
  /// parallel_for indexing) is deterministic.
  std::map<SessionId, Slot> sessions_;
  /// Conference rooms, ordered by id (the room stage ticks them in this
  /// order — deterministic).  unique_ptr: Room pins cached obs handles.
  std::map<conf::RoomId, std::unique_ptr<conf::Room>> rooms_;
  conf::RoomId next_room_ = 1;
  fault::FaultPlan fault_plan_;  ///< server-level faults (batcher)
  fault::FaultCounts fault_counts_;
  SessionId next_id_ = 1;
  std::uint64_t now_tick_ = 0;
  int degrade_level_ = 0;
  int ladder_pressure_ = 0;
  ServerStats stats_;

  // Event-driven scheduling.
  core::TimerWheel wheel_;
  std::vector<std::uint64_t> due_keys_;  ///< collect() scratch

  // Per-tick scratch (capacity reused across ticks).
  std::vector<Session*> order_;        ///< merged due list, id-ascending
  std::vector<RoutedResult> results_;  ///< flush_into() scratch
};

}  // namespace affectsys::serve
