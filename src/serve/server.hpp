// SessionManager: the multi-tenant session server.  Runs N concurrent
// end-to-end sessions in one process on the existing thread pool, with
// cross-session batched inference, admission control and graceful load
// shedding.
//
// One tick is three stages:
//   A. pump_audio over every open session (parallel_for; session state
//      is private, shared state read-only),
//   B. collect staged windows in session-id order (serial, so batch
//      assembly is deterministic), feed the batcher, flush at most one
//      batch (service capacity = max_batch rows per tick) and route the
//      results back (serial — the model's activation caches make
//      inference non-reentrant),
//   C. tick_media over every open session (parallel_for) under the
//      current degrade level.
//
// Determinism: nothing in the control loop reads a wall clock.  The
// flush deadline is counted in ticks, service capacity is max_batch
// rows per flush, and the degrade level is a pure function of the
// global backlog vs. the watermarks — so an overloaded run is exactly
// replayable under a fixed seed, which is what the shedding tests
// assert.
//
// Load shedding ladder (cheapest first), per the paper's own
// affect-adaptive knobs before anything user-visible is dropped:
//   level 0: every session runs its affect-chosen mode;
//   level 1: NAL deletion forced on (Standard->Deletion,
//            DeblockOff->Combined);
//   level 2: Combined forced (deletion + deblocking off);
//   level 3: this tick's frames shed outright.
// Per-session window backpressure is separate: each session's
// RealtimePipeline drops the newest window once max_inflight are
// outstanding, so one chatty tenant cannot monopolize the batcher.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/session.hpp"
#include "serve/workload.hpp"

namespace affectsys::serve {

/// Typed admission failure: thrown by create_session() once the server
/// is at capacity.  Callers treat this as backpressure, not a bug.
class AdmissionError : public std::runtime_error {
 public:
  AdmissionError(std::size_t open, std::size_t limit)
      : std::runtime_error("session server at capacity: " +
                          std::to_string(open) + "/" +
                          std::to_string(limit) + " sessions open"),
        open_(open),
        limit_(limit) {}

  std::size_t open_sessions() const { return open_; }
  std::size_t limit() const { return limit_; }

 private:
  std::size_t open_;
  std::size_t limit_;
};

struct ServerConfig {
  /// Admission limit: create_session() past this throws AdmissionError.
  std::size_t max_sessions = 64;
  /// Global backlog watermarks (windows staged + in flight, summed over
  /// sessions).  Crossing `hi` raises the degrade level one step per
  /// tick; falling below `lo` lowers it one step per tick.  The
  /// hysteresis gap keeps the ladder from oscillating every tick.
  std::size_t backlog_hi = 48;
  std::size_t backlog_lo = 16;
  BatcherConfig batcher{};
  /// Defaults applied to sessions created without an explicit config
  /// (seed is replaced by a per-session value derived from the id).
  SessionConfig session{};
  /// Error-budget ladder, alongside the backlog ladder: a session whose
  /// pipeline faults (decode errors + dropped audio chunks) exceed
  /// `error_budget` within a rolling `error_window_ticks` window is
  /// quarantined — skipped by every tick stage for `quarantine_ticks`
  /// ticks, its in-flight batcher results dropped on arrival — then
  /// auto-restarted from its admission config (same id, same seed,
  /// fresh state).  error_budget == 0 disables the ladder.
  std::uint64_t error_budget = 0;
  std::uint64_t error_window_ticks = 50;
  std::uint64_t quarantine_ticks = 20;
  /// Server-level fault injection (kBatcherFallback fires here); the
  /// per-session kinds ride in each session's own config.
  fault::FaultConfig fault{};
};

struct ServerStats {
  std::uint64_t ticks = 0;
  std::uint64_t sessions_created = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t sessions_rejected = 0;
  std::uint64_t results_routed = 0;
  std::uint64_t degrade_ticks = 0;  ///< ticks spent at level >= 1
  int max_degrade_level = 0;
  // Error-budget ladder (zero unless ServerConfig::error_budget is set).
  std::uint64_t sessions_quarantined = 0;
  std::uint64_t sessions_restarted = 0;
  std::uint64_t results_dropped_quarantined = 0;
};

class SessionManager {
 public:
  /// The env members (workload, classifier, optional app table/catalog)
  /// must outlive the manager.
  SessionManager(const ServerConfig& cfg, const SessionEnv& env);

  /// Admits a new session, or throws AdmissionError at capacity.
  /// Returns the session id (monotonic; never reused even after
  /// close_session frees the capacity slot).
  SessionId create_session(const SessionConfig& cfg);
  /// Admits with the server's default session config and a seed derived
  /// from the new id.
  SessionId create_session();

  /// Closes a session, freeing its admission slot.  Results still in
  /// the batcher for it are dropped on arrival.  Throws
  /// std::out_of_range for unknown ids.
  void close_session(SessionId id);

  bool has_session(SessionId id) const { return sessions_.contains(id); }
  std::size_t open_sessions() const { return sessions_.size(); }

  /// Advances every open session by one tick (stages A/B/C above).
  void tick();

  /// Runs the batcher dry: flushes until no windows are pending and
  /// routes everything back.  Call after the last tick so reports see
  /// every staged window applied.
  void drain();

  /// Snapshot of one session's run; throws std::out_of_range for
  /// unknown (including closed) ids.
  SessionReport report(SessionId id) const;
  const Session& session(SessionId id) const;

  /// True while a session is serving its quarantine (still admitted,
  /// not ticked; auto-restarts when the quarantine expires).
  bool is_quarantined(SessionId id) const;

  int degrade_level() const { return degrade_level_; }
  /// Windows pending inference at the batcher (after stage B every
  /// session's staging buffer is empty, so this is the whole backlog).
  std::size_t backlog() const;
  const ServerStats& stats() const { return stats_; }
  const BatcherStats& batcher_stats() const { return batcher_.stats(); }
  const ServerConfig& config() const { return cfg_; }

 private:
  /// One admitted tenant: the live session plus the quarantine state
  /// and the config needed to auto-restart it.
  struct Slot {
    std::unique_ptr<Session> session;
    SessionConfig cfg;  ///< admission config, for restart
    bool quarantined = false;
    std::uint64_t release_tick = 0;       ///< first tick after quarantine
    std::uint64_t window_start_tick = 0;  ///< rolling error-window origin
    std::uint64_t window_start_errors = 0;
    /// Batcher results still in flight at quarantine time; dropped on
    /// arrival so a restarted session never sees a stale window.
    std::size_t results_to_drop = 0;
  };

  void route(const std::vector<RoutedResult>& results);
  void update_degrade_level();
  void update_error_budget();
  static std::uint64_t session_errors(const Session& s);

  ServerConfig cfg_;
  SessionEnv env_;
  InferenceBatcher batcher_;
  /// Ordered by id: iteration order (and thus batch assembly and
  /// parallel_for indexing) is deterministic.
  std::map<SessionId, Slot> sessions_;
  fault::FaultPlan fault_plan_;  ///< server-level faults (batcher)
  fault::FaultCounts fault_counts_;
  SessionId next_id_ = 1;
  std::uint64_t now_tick_ = 0;
  int degrade_level_ = 0;
  ServerStats stats_;
};

}  // namespace affectsys::serve
