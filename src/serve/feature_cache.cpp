#include "serve/feature_cache.hpp"

#include "nn/quantize.hpp"

namespace affectsys::serve {

FeatureBankCache::FeatureBankCache(const SharedWorkload& workload,
                                   const affect::FeatureConfig& fc,
                                   unsigned truncate_bits)
    : fc_(fc), truncate_bits_(truncate_bits) {
  offset_.fill(kNone);
  utt_len_.fill(0);

  const std::size_t hop = fc_.mfcc.hop;
  const std::size_t frame_len = fc_.mfcc.frame_len;
  const std::size_t q = workload.config().script_quantum_samples;
  if (hop == 0 || frame_len == 0 || q == 0 || q % hop != 0) return;
  for (affect::Emotion e : workload.config().emotions) {
    const std::span<const double> utt = workload.utterance(e);
    if (utt.empty() || utt.size() % hop != 0) return;
  }

  affect::FeatureExtractor fx(fc_);
  dim_ = fx.feature_dim();
  affect::FeatureWorkspace ws;
  fx.prepare_workspace(ws);
  std::vector<double> frame(frame_len, 0.0);

  // Silence first: one all-zero frame covers every silent span.
  silence_.resize(dim_);
  fx.compute_frame_row(frame, silence_, ws);

  for (affect::Emotion e : workload.config().emotions) {
    const std::size_t ei = static_cast<std::size_t>(e);
    if (offset_[ei] != kNone) continue;  // duplicate emotion in config
    const std::span<const double> utt = workload.utterance(e);
    const std::size_t phases = utt.size() / hop;
    offset_[ei] = rows_.size();
    utt_len_[ei] = utt.size();
    rows_.resize(rows_.size() + phases * dim_);
    for (std::size_t p = 0; p < phases; ++p) {
      // The banked utterance loops modulo its length inside a speech
      // span (fill_chunk indexes it with `offset % utt.size()`), so the
      // cached frame wraps the same way.
      const std::size_t start = p * hop;
      for (std::size_t i = 0; i < frame_len; ++i) {
        frame[i] = utt[(start + i) % utt.size()];
      }
      const std::size_t base = offset_[ei] + p * dim_;
      fx.compute_frame_row(frame, {rows_.data() + base, dim_}, ws);
    }
  }
  // Approximate storage: truncate once at build time, so every cached
  // row a session assembles is already truncated — matching the staged
  // copy the live path truncates.  0 bits touches nothing.
  nn::truncate_mantissa(rows_, truncate_bits_);
  nn::truncate_mantissa(silence_, truncate_bits_);
  usable_ = true;
}

}  // namespace affectsys::serve
