#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "affect/speech_synth.hpp"

namespace affectsys::serve {

SharedWorkload::SharedWorkload(const WorkloadConfig& cfg) : cfg_(cfg) {
  if (cfg_.emotions.empty()) {
    throw std::invalid_argument("SharedWorkload: empty emotion set");
  }
  affect::SpeechSynthesizer synth(cfg_.synth_seed);
  bank_.reserve(cfg_.emotions.size());
  for (std::size_t i = 0; i < cfg_.emotions.size(); ++i) {
    // Distinct speaker ids keep the bank acoustically diverse; spread 0
    // would collapse every emotion onto one voice.
    bank_.push_back(synth
                        .synthesize(cfg_.emotions[i], static_cast<int>(i),
                                    cfg_.utterance_s, cfg_.sample_rate_hz, 0.1)
                        .samples);
  }

  const auto source = h264::generate_mixed_video(cfg_.video,
                                                 cfg_.quiet_fraction);
  h264::Encoder enc(cfg_.encoder);
  nals_ = h264::unpack_annexb(enc.encode_annexb(source));
  for (const auto& nal : nals_) {
    if (h264::is_slice(nal)) ++clip_pictures_;
  }

  if (!cfg_.simulcast.layers.empty()) {
    sim_clip_ = std::make_unique<simulcast::SimulcastClip>(
        simulcast::encode_simulcast(cfg_.simulcast));
  }
}

std::span<const double> SharedWorkload::utterance(affect::Emotion e) const {
  for (std::size_t i = 0; i < cfg_.emotions.size(); ++i) {
    if (cfg_.emotions[i] == e) return bank_[i];
  }
  throw std::out_of_range("SharedWorkload: emotion not in bank");
}

std::vector<ScriptSegment> SharedWorkload::make_script(
    unsigned seed, std::size_t segments) const {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, cfg_.emotions.size() - 1);
  std::uniform_real_distribution<double> speech(2.0, 4.0);
  std::uniform_real_distribution<double> silence(0.25, 1.0);
  std::vector<ScriptSegment> script;
  script.reserve(segments);
  for (std::size_t i = 0; i < segments; ++i) {
    ScriptSegment seg;
    seg.emotion = cfg_.emotions[pick(rng)];
    seg.speech_s = speech(rng);
    seg.silence_s = silence(rng);
    if (const std::size_t q = cfg_.script_quantum_samples; q != 0) {
      // Quantized script: segment lengths become whole quanta (speech
      // keeps at least one so every segment still speaks), and the
      // seconds fields are re-derived so both views agree.
      const double rate = cfg_.sample_rate_hz;
      const auto quanta = [&](double seconds) {
        return static_cast<std::size_t>(
            std::llround(seconds * rate / static_cast<double>(q)));
      };
      seg.speech_samples = std::max<std::size_t>(1, quanta(seg.speech_s)) * q;
      seg.silence_samples = quanta(seg.silence_s) * q;
      seg.speech_s = static_cast<double>(seg.speech_samples) / rate;
      seg.silence_s = static_cast<double>(seg.silence_samples) / rate;
    }
    script.push_back(seg);
  }
  return script;
}

}  // namespace affectsys::serve
