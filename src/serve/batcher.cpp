#include "serve/batcher.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/loss.hpp"

namespace affectsys::serve {

namespace {

/// Layers whose forward is an independent per-row map, so a stacked
/// batch runs them bit-identically to row-at-a-time execution.
bool row_wise(const std::string& kind) {
  return kind == "dense" || kind == "relu" || kind == "tanh" ||
         kind == "sigmoid";
}

}  // namespace

InferenceBatcher::InferenceBatcher(affect::AffectClassifier& classifier,
                                   const BatcherConfig& cfg,
                                   const LadderRuntime& ladder)
    : classifier_(classifier), cfg_(cfg), ladder_(ladder) {
  if (cfg_.max_batch == 0) {
    throw std::invalid_argument("InferenceBatcher: max_batch must be >= 1");
  }
  nn::Sequential& model = classifier_.model();
  batchable_ = model.layer_count() >= 2 && model.layer(0).kind() == "flatten";
  for (std::size_t i = 1; batchable_ && i < model.layer_count(); ++i) {
    batchable_ = row_wise(model.layer(i).kind());
  }
  pending_.reserve(cfg_.max_batch * 2);

  const obs::MetricScope scope(cfg_.obs_scope);
  c_flushes_ = &scope.counter("serve.batch.flushes");
  c_inferences_ = &scope.counter("affect.inferences");
  c_forced_fallbacks_ = &scope.counter("serve.batch.forced_fallbacks");
  c_int8_windows_ = &scope.counter("serve.batch.int8_windows");
  c_hdc_windows_ = &scope.counter("serve.batch.hdc_windows");
  h_rows_ = &scope.histogram("serve.batch.rows");
  h_infer_ns_ = &scope.histogram("serve.batch.infer_ns");
}

void InferenceBatcher::enqueue(InferenceRequest req) {
  pending_.push_back(std::move(req));
}

bool InferenceBatcher::should_flush(std::uint64_t now_tick) const {
  if (pending() == 0) return false;
  if (pending() >= cfg_.max_batch) return true;
  return now_tick - pending_[head_].enqueue_tick >= cfg_.max_delay_ticks;
}

void InferenceBatcher::row_result_into(std::span<const float> logits_row,
                                       RoutedResult& out) const {
  affect::ClassificationResult& res = out.result;
  nn::softmax_probs_into(logits_row, res.probabilities);
  const std::size_t idx = nn::argmax(res.probabilities);
  if (idx >= classifier_.label_set().size()) {
    throw std::logic_error("InferenceBatcher: model output wider than labels");
  }
  res.emotion = classifier_.label_set()[idx];
  res.confidence = res.probabilities[idx];
}

std::size_t InferenceBatcher::flush_into(std::span<RoutedResult> out) {
  std::size_t n = std::min({pending(), cfg_.max_batch, out.size()});
  if (n == 0) return 0;

  // Rung-homogeneous batches: serve the longest FIFO prefix on the head
  // window's rung.  Mixed queues flush in segments across ticks, but
  // global FIFO order is never reordered — so the result stream (and
  // every per-session seq order) is exactly the unsegmented stream, and
  // an all-fp32 queue (ladder off) takes this loop without effect.
  const Rung rung = pending_[head_].rung;
  for (std::size_t r = 1; r < n; ++r) {
    if (pending_[head_ + r].rung != rung) {
      n = r;
      break;
    }
  }

  ++stats_.flushes;
  stats_.windows += n;
  stats_.max_batch_rows = std::max(stats_.max_batch_rows, n);
  c_flushes_->add(1);
  h_rows_->observe(static_cast<double>(n));
  c_inferences_->add(n);
  obs::ScopedTimerNs timer(*h_infer_ns_);

  // The fault-forced fallback only exists on the fp32 rung: it pushes
  // windows through the reference full forward, and the cheap rungs
  // have no second implementation to fall back to (their accuracy cost
  // is the ladder's, not a fault's).
  if (force_fallback_ && rung == Rung::kFp32) {
    ++stats_.forced_fallback_flushes;
    c_forced_fallbacks_->add(1);
  }
  const InferenceRequest* reqs = pending_.data() + head_;
  if (rung == Rung::kInt8) {
    if (ladder_.int8_model == nullptr) {
      throw std::logic_error("InferenceBatcher: int8 window without model");
    }
    stats_.windows_int8 += n;
    c_int8_windows_->add(n);
    // Stacked int8 forward.  Per-row activation scales make a batch row
    // a function of that row alone, so this is bit-identical to running
    // each window through the quantized model individually.
    const std::size_t flat = reqs[0].size();
    batch_.reshape(n, flat);
    for (std::size_t r = 0; r < n; ++r) {
      const InferenceRequest& req = reqs[r];
      if (req.size() != flat) {
        throw std::invalid_argument(
            "InferenceBatcher: inconsistent feature geometry in batch");
      }
      std::memcpy(batch_.row(r).data(), req.flat().data(),
                  flat * sizeof(float));
    }
    if (n > 1) stats_.batched_windows += n;
    const nn::Matrix& logits = ladder_.int8_model->forward(batch_, qws_);
    for (std::size_t r = 0; r < n; ++r) {
      const InferenceRequest& req = reqs[r];
      out[r].session = req.session;
      out[r].seq = req.seq;
      out[r].t_end = req.t_end;
      row_result_into(logits.row(r), out[r]);
    }
  } else if (rung == Rung::kHdc) {
    if (ladder_.hdc == nullptr) {
      throw std::logic_error("InferenceBatcher: hdc window without model");
    }
    stats_.windows_hdc += n;
    c_hdc_windows_->add(n);
    // HDC has no batched form (each window is one encode + popcount
    // scan); per-window is already the cheap path.
    for (std::size_t r = 0; r < n; ++r) {
      const InferenceRequest& req = reqs[r];
      out[r].session = req.session;
      out[r].seq = req.seq;
      out[r].t_end = req.t_end;
      ladder_.hdc->classify_into(req.flat(), req.rows, req.cols, hws_,
                                 out[r].result);
    }
  } else if (cfg_.batched && batchable_ && !force_fallback_) {
    // Stacked path (also taken for a single row, where "stack of one"
    // and full forward are trivially the same product; batched_windows
    // keeps its historical meaning of rows that shared a GEMM).
    if (n > 1) stats_.batched_windows += n;
    const std::size_t flat = reqs[0].size();
    batch_.reshape(n, flat);
    for (std::size_t r = 0; r < n; ++r) {
      const InferenceRequest& req = reqs[r];
      if (req.size() != flat) {
        throw std::invalid_argument(
            "InferenceBatcher: inconsistent feature geometry in batch");
      }
      // Flatten is a row-major copy, so the sample's flat() span IS its
      // Flatten output.
      std::memcpy(batch_.row(r).data(), req.flat().data(),
                  flat * sizeof(float));
    }
    const nn::Matrix& logits =
        classifier_.model().forward_from_infer(1, batch_, ws_);
    for (std::size_t r = 0; r < n; ++r) {
      const InferenceRequest& req = reqs[r];
      out[r].session = req.session;
      out[r].seq = req.seq;
      out[r].t_end = req.t_end;
      row_result_into(logits.row(r), out[r]);
    }
  } else {
    // Per-window fallback: non-batchable models, batched=false, or a
    // fault-forced flush — the full reference forward per request.
    for (std::size_t r = 0; r < n; ++r) {
      const InferenceRequest& req = reqs[r];
      fallback_.reshape(req.rows, req.cols);
      std::memcpy(fallback_.flat().data(), req.flat().data(),
                  req.size() * sizeof(float));
      const nn::Matrix logits = classifier_.model().forward(fallback_);
      out[r].session = req.session;
      out[r].seq = req.seq;
      out[r].t_end = req.t_end;
      row_result_into(logits.flat(), out[r]);
    }
  }

  // Release the consumed prefix's buffers now (a flushed window must
  // not pin its pool block until compaction) and compact once drained
  // or once the dead prefix dominates.
  for (std::size_t r = 0; r < n; ++r) {
    pending_[head_ + r].features.reset();
  }
  head_ += n;
  if (head_ == pending_.size()) {
    pending_.clear();
    head_ = 0;
  } else if (head_ >= 64 && head_ * 2 >= pending_.size()) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return n;
}

std::vector<RoutedResult> InferenceBatcher::flush() {
  std::vector<RoutedResult> out(std::min(pending(), cfg_.max_batch));
  const std::size_t n = flush_into(out);
  out.resize(n);
  return out;
}

}  // namespace affectsys::serve
