#include "serve/batcher.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "obs/metrics.hpp"

namespace affectsys::serve {

namespace {

/// Layers whose forward is an independent per-row map, so a stacked
/// batch runs them bit-identically to row-at-a-time execution.
bool row_wise(const std::string& kind) {
  return kind == "dense" || kind == "relu" || kind == "tanh" ||
         kind == "sigmoid";
}

}  // namespace

InferenceBatcher::InferenceBatcher(affect::AffectClassifier& classifier,
                                   const BatcherConfig& cfg)
    : classifier_(classifier), cfg_(cfg) {
  if (cfg_.max_batch == 0) {
    throw std::invalid_argument("InferenceBatcher: max_batch must be >= 1");
  }
  nn::Sequential& model = classifier_.model();
  batchable_ = model.layer_count() >= 2 && model.layer(0).kind() == "flatten";
  for (std::size_t i = 1; batchable_ && i < model.layer_count(); ++i) {
    batchable_ = row_wise(model.layer(i).kind());
  }
}

void InferenceBatcher::enqueue(InferenceRequest req) {
  pending_.push_back(std::move(req));
}

bool InferenceBatcher::should_flush(std::uint64_t now_tick) const {
  if (pending_.empty()) return false;
  if (pending_.size() >= cfg_.max_batch) return true;
  return now_tick - pending_.front().enqueue_tick >= cfg_.max_delay_ticks;
}

affect::ClassificationResult InferenceBatcher::row_result(
    const nn::Matrix& logits_row) const {
  affect::ClassificationResult res;
  res.probabilities = nn::softmax_probs(logits_row);
  const std::size_t idx = nn::argmax(res.probabilities);
  if (idx >= classifier_.label_set().size()) {
    throw std::logic_error("InferenceBatcher: model output wider than labels");
  }
  res.emotion = classifier_.label_set()[idx];
  res.confidence = res.probabilities[idx];
  return res;
}

std::vector<RoutedResult> InferenceBatcher::flush() {
  const std::size_t n = std::min(pending_.size(), cfg_.max_batch);
  std::vector<RoutedResult> out;
  if (n == 0) return out;
  out.reserve(n);

  ++stats_.flushes;
  stats_.windows += n;
  stats_.max_batch_rows = std::max(stats_.max_batch_rows, n);
  AFFECTSYS_COUNT("serve.batch.flushes", 1);
  AFFECTSYS_OBSERVE("serve.batch.rows", n);
  AFFECTSYS_COUNT("affect.inferences", n);
  AFFECTSYS_TIME_SCOPE("serve.batch.infer_ns");

  if (force_fallback_) {
    ++stats_.forced_fallback_flushes;
    AFFECTSYS_COUNT("serve.batch.forced_fallbacks", 1);
  }
  if (cfg_.batched && batchable_ && !force_fallback_ && n > 1) {
    stats_.batched_windows += n;
    const std::size_t flat = pending_.front().features.size();
    nn::Matrix batch(n, flat);
    for (std::size_t r = 0; r < n; ++r) {
      const nn::Matrix& f = pending_[r].features;
      if (f.size() != flat) {
        throw std::invalid_argument(
            "InferenceBatcher: inconsistent feature geometry in batch");
      }
      // Flatten is a row-major copy, so the sample's flat() span IS its
      // Flatten output.
      std::memcpy(batch.row(r).data(), f.flat().data(),
                  flat * sizeof(float));
    }
    const nn::Matrix logits = classifier_.model().forward_from(1, batch);
    for (std::size_t r = 0; r < n; ++r) {
      const InferenceRequest& req = pending_[r];
      out.push_back(RoutedResult{req.session, req.seq, req.t_end,
                                 row_result(nn::Matrix::row_vector(
                                     logits.row(r)))});
    }
  } else {
    for (std::size_t r = 0; r < n; ++r) {
      const InferenceRequest& req = pending_[r];
      const nn::Matrix logits = classifier_.model().forward(req.features);
      out.push_back(
          RoutedResult{req.session, req.seq, req.t_end, row_result(logits)});
    }
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

}  // namespace affectsys::serve
