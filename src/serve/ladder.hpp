// The serve layer's approximate-inference ladder: precision as a
// managed resource, alongside the decode-quality degrade ladder.
//
// Three rungs, cheapest last:
//   0  fp32  — the reference classifier through the batched GEMM,
//   1  int8  — the same model's weights on the register-blocked int8
//              GEMM (nn/quantize QuantizedMlp),
//   2  hdc   — the binary hyperdimensional classifier (affect/hdc):
//              popcount Hamming distance, no floating point.
//
// The server steps a global *pressure* level through the rungs on
// backlog watermarks (one step per tick, hysteresis band, exactly the
// degrade ladder's shape), and each session clamps that pressure by its
// own emotion stability: only sessions whose recent classifications are
// confident and calm ride the cheap rungs, so precision is spent where
// the emotion signal is actually uncertain.  Rung choices are stamped
// onto staged windows and honoured by the shard batchers, which keep
// batches rung-homogeneous (FIFO prefix) so every batch is still
// bit-identical to its rung's single-window execution.
//
// Everything here is deterministic: pressure is a pure function of the
// backlog history, per-session rungs are pure functions of (pressure,
// that session's own result stream, local tick), so a ladder-on run
// replays exactly — and with enabled=false (the default) no control
// flow changes anywhere, which the byte-identity tests pin against the
// pre-ladder server.
#pragma once

#include <cstddef>
#include <cstdint>

#include "affect/hdc.hpp"
#include "nn/quantize.hpp"

namespace affectsys::serve {

/// Inference precision rung; higher = cheaper and more approximate.
enum class Rung : std::uint8_t { kFp32 = 0, kInt8 = 1, kHdc = 2 };

inline constexpr std::size_t kNumRungs = 3;

inline const char* rung_name(Rung r) {
  switch (r) {
    case Rung::kFp32: return "fp32";
    case Rung::kInt8: return "int8";
    case Rung::kHdc:  return "hdc";
  }
  return "?";
}

struct LadderConfig {
  /// Master switch.  False keeps every window on fp32 and makes every
  /// ladder code path a no-op (byte-identical to the pre-ladder server).
  bool enabled = false;
  /// Backlog watermarks for the global pressure level (windows pending
  /// across shard batchers, same quantity the degrade ladder reads).
  /// Crossing `hi` raises pressure one rung per tick; falling to `lo`
  /// lowers it — the gap is the anti-flap hysteresis band.
  std::size_t backlog_hi = 32;
  std::size_t backlog_lo = 8;
  /// Per-session eligibility: a session may run int8 once its
  /// confidence EMA reaches conf_int8 with calm_windows results since
  /// the last stable-emotion switch, and HDC at conf_hdc with twice
  /// that calm streak.  Volatile sessions stay on fp32 regardless of
  /// pressure.
  float conf_int8 = 0.55f;
  float conf_hdc = 0.70f;
  std::size_t calm_windows = 2;
  /// Minimum local ticks between a session's rung moves (dwell time) —
  /// one step per move, so a session cannot flap between rungs inside
  /// the dwell window.
  std::uint64_t hysteresis_ticks = 10;
  /// Approximate feature storage: low mantissa bits cleared from staged
  /// feature windows and the shared feature-bank cache
  /// (nn::truncate_mantissa).  0 (the default) leaves every byte
  /// untouched — the byte-identity guarantee.  Independent of
  /// `enabled`: truncation is a storage knob, not a rung.
  unsigned truncate_bits = 0;
};

/// Non-owning handles to the cheap-rung models, shared by every shard
/// batcher.  A null model keeps its rung unreachable (the server caps
/// max_rung accordingly).
struct LadderRuntime {
  const nn::QuantizedMlp* int8_model = nullptr;
  const affect::HdcClassifier* hdc = nullptr;
};

}  // namespace affectsys::serve
