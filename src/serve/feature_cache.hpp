// Feature-bank cache: precomputed per-frame feature rows for the shared
// utterance bank.
//
// Profiling the serve tick shows ~70% of active-session CPU in per-frame
// feature extraction (MFCC FFTs dominating) — yet every session plays
// the *same* banked utterances, so the audio under a frame is a pure
// function of (emotion, phase within the utterance) whenever the frame
// lies entirely inside one script segment's speech (or silence) span.
// With quantized scripts (WorkloadConfig::script_quantum_samples a
// multiple of the feature hop) every segment boundary falls on a frame
// boundary, so a session can classify each of its window's frames by
// script position and memcpy the precomputed raw feature row instead of
// recomputing it; only frames straddling a speech/silence or segment
// boundary (a few per window) are computed live.  Rows are cached
// *before* standardization — the per-window z-score still runs on the
// assembled matrix — and every cached row was produced by the same
// FeatureExtractor::compute_frame_row the live path calls, so cached
// and recomputed windows are byte-identical by construction.
//
// The cache is immutable after construction and therefore shared
// read-only across all sessions and shards.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "affect/emotion.hpp"
#include "affect/features.hpp"
#include "serve/workload.hpp"

namespace affectsys::serve {

class FeatureBankCache {
 public:
  /// Builds rows for every banked emotion.  When the workload's script
  /// quantum or utterance lengths do not align to the feature hop the
  /// cache marks itself unusable (and builds nothing) instead of
  /// throwing — callers fall back to live extraction.
  /// `truncate_bits` applies nn::truncate_mantissa to every cached row
  /// (speech and silence) — the approximate-storage knob from the
  /// inference ladder; 0 (the default) stores the exact rows, byte for
  /// byte.
  FeatureBankCache(const SharedWorkload& workload,
                   const affect::FeatureConfig& fc,
                   unsigned truncate_bits = 0);

  /// Mantissa bits cleared from every cached row (0 = exact).
  unsigned truncate_bits() const { return truncate_bits_; }

  /// False when script quantization is off or any geometry is
  /// hop-misaligned; no row accessors may be called.
  bool usable() const { return usable_; }

  const affect::FeatureConfig& feature_config() const { return fc_; }
  std::size_t hop() const { return fc_.mfcc.hop; }
  std::size_t frame_len() const { return fc_.mfcc.frame_len; }
  std::size_t feature_dim() const { return dim_; }

  bool covers(affect::Emotion e) const {
    return offset_[static_cast<std::size_t>(e)] != kNone;
  }
  /// Banked utterance length in samples (covered emotions only).
  std::size_t utterance_len(affect::Emotion e) const {
    return utt_len_[static_cast<std::size_t>(e)];
  }

  /// Raw (pre-standardization) feature row for an interior-speech frame
  /// of `e` starting `phase` samples into the utterance (phase must be
  /// a hop multiple below utterance_len; frames wrapping past the
  /// utterance end are covered — the bank loops modulo its length).
  std::span<const float> speech_row(affect::Emotion e,
                                    std::size_t phase) const {
    const std::size_t base = offset_[static_cast<std::size_t>(e)];
    return {rows_.data() + base + (phase / fc_.mfcc.hop) * dim_, dim_};
  }

  /// Raw feature row of an all-zero (silence) frame.
  std::span<const float> silence_row() const { return silence_; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  affect::FeatureConfig fc_;
  bool usable_ = false;
  unsigned truncate_bits_ = 0;
  std::size_t dim_ = 0;
  std::array<std::size_t, affect::kNumEmotions> offset_{};   ///< into rows_
  std::array<std::size_t, affect::kNumEmotions> utt_len_{};  ///< samples
  std::vector<float> rows_;  ///< [emotion][phase][feature], flattened
  std::vector<float> silence_;
};

}  // namespace affectsys::serve
