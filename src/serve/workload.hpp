// Deterministic multi-tenant load: the read-only media assets every
// session shares, and the per-session seeded script that drives one
// user's traffic over them.
//
// The server's scaling story depends on sessions sharing immutable
// state: one synthesized utterance bank (a few hundred KB) and one
// encoded prototype clip stand in for the per-user audio capture and
// video stream, so 64 concurrent sessions cost 64 cursors — not 64
// copies of the media.  Each session derives its entire behaviour
// (emotion script, silence gaps, app-launch trace) from a single seed,
// which is what makes server runs replayable: same seed, same traffic,
// same sheds, byte for byte.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "affect/emotion.hpp"
#include "h264/encoder.hpp"
#include "h264/nal.hpp"
#include "h264/testvideo.hpp"
#include "simulcast/encoder.hpp"

namespace affectsys::serve {

struct WorkloadConfig {
  double sample_rate_hz = 16000.0;
  /// Length of each banked utterance.
  double utterance_s = 1.2;
  /// Emotions with a banked utterance; session scripts draw from these.
  /// Defaults to the uulmMAC-style pair the small test classifiers are
  /// trained on.
  std::vector<affect::Emotion> emotions = {affect::Emotion::kAngry,
                                           affect::Emotion::kCalm};
  unsigned synth_seed = 7;
  /// Prototype clip (matches adaptive::PlaybackConfig calibration: busy
  /// scenes produce B NALs just above S_th = 140, quiet scenes below).
  h264::VideoConfig video{64, 64, 48, 1.2, 0.6, 2.5, 77};
  h264::EncoderConfig encoder{64, 64, 24, 12, 2, 4, true};
  double quiet_fraction = 0.25;
  /// When nonzero, make_script() rounds every segment's speech and
  /// silence length to a whole number of this many samples (speech to at
  /// least one quantum) and records the exact integer counts in the
  /// segment.  Aligning the quantum to the feature hop keeps every
  /// speech/silence boundary on a frame boundary, which is what lets
  /// the serve layer's feature-bank cache classify frames by script
  /// phase.  0 (the default) leaves scripts exactly as previous
  /// releases generated them.
  std::size_t script_quantum_samples = 0;
  /// Simulcast ladder built alongside the single-layer prototype clip.
  /// Layers empty (the default) skips the build entirely; sessions with
  /// SimulcastSessionConfig::enabled require a workload that set this
  /// (e.g. simulcast::default_simulcast_config()).
  simulcast::SimulcastConfig simulcast{};
};

/// One segment of a session's emotion script: `speech_s` seconds of the
/// banked utterance for `emotion`, then `silence_s` seconds of silence.
struct ScriptSegment {
  affect::Emotion emotion = affect::Emotion::kNeutral;
  double speech_s = 2.0;
  double silence_s = 0.5;
  /// Exact integer sample counts.  Zero (the unquantized default) means
  /// "derive from the seconds fields" — the session fills them with the
  /// same `static_cast<std::size_t>(seconds * rate)` truncation the
  /// pre-integer code applied per chunk, so playback is digest-
  /// identical.  make_script() fills them directly when
  /// WorkloadConfig::script_quantum_samples is set.
  std::size_t speech_samples = 0;
  std::size_t silence_samples = 0;
};

/// Immutable assets shared by every session of one server: the
/// per-emotion utterance bank and the encoded prototype clip, unpacked
/// to NAL units once.  Thread-safe by construction (read-only after the
/// constructor).
class SharedWorkload {
 public:
  explicit SharedWorkload(const WorkloadConfig& cfg);

  const WorkloadConfig& config() const { return cfg_; }
  /// Banked utterance samples for an emotion in config().emotions.
  std::span<const double> utterance(affect::Emotion e) const;
  const std::vector<h264::NalUnit>& nal_units() const { return nals_; }
  /// Coded pictures per loop of the clip (slice NAL count).
  std::size_t clip_pictures() const { return clip_pictures_; }
  /// Aligned multi-layer clip; null unless config().simulcast.layers was
  /// populated.
  const simulcast::SimulcastClip* simulcast_clip() const {
    return sim_clip_.get();
  }

  /// Deterministic per-session emotion script: `segments` entries drawn
  /// from config().emotions with seeded speech/silence jitter.
  std::vector<ScriptSegment> make_script(unsigned seed,
                                         std::size_t segments) const;

 private:
  WorkloadConfig cfg_;
  std::vector<std::vector<double>> bank_;  ///< parallel to cfg_.emotions
  std::vector<h264::NalUnit> nals_;
  std::size_t clip_pictures_ = 0;
  std::unique_ptr<simulcast::SimulcastClip> sim_clip_;
};

}  // namespace affectsys::serve
