#include "serve/server.hpp"

#include <algorithm>

#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace affectsys::serve {

SessionManager::SessionManager(const ServerConfig& cfg, const SessionEnv& env)
    : cfg_(cfg),
      env_(env),
      fault_plan_(cfg.fault) {
  if (cfg_.max_sessions == 0) {
    throw std::invalid_argument("SessionManager: max_sessions must be >= 1");
  }
  if (cfg_.backlog_lo > cfg_.backlog_hi) {
    throw std::invalid_argument(
        "SessionManager: backlog_lo must not exceed backlog_hi");
  }
  if (cfg_.shards == 0) {
    throw std::invalid_argument("SessionManager: shards must be >= 1");
  }
  if (env_.workload == nullptr || env_.classifier == nullptr) {
    throw std::invalid_argument(
        "SessionManager: workload and classifier required");
  }

  // Inference ladder: capture the classifier's weights as an int8 model
  // (rung 1) and adopt the caller's trained HDC classifier (rung 2).
  // max_rung stops at the first missing model — rung moves are one step
  // at a time, so an unreachable middle rung would strand the ladder.
  env_.ladder = &cfg_.ladder;
  env_.max_rung = Rung::kFp32;
  if (cfg_.ladder.enabled) {
    quantized_ = nn::QuantizedMlp::from(env_.classifier->model());
    if (quantized_.has_value()) {
      ladder_rt_.int8_model = &*quantized_;
      env_.max_rung = Rung::kInt8;
      if (env_.hdc != nullptr && env_.hdc->trained()) {
        ladder_rt_.hdc = env_.hdc;
        env_.max_rung = Rung::kHdc;
      }
    }
  }

  shards_.resize(cfg_.shards);
  for (std::size_t k = 0; k < cfg_.shards; ++k) {
    BatcherConfig bc = cfg_.batcher;
    // One shard keeps the legacy un-prefixed metric names; K shards
    // publish distinct per-shard series.
    if (cfg_.shards > 1) bc.obs_scope = "serve.shard" + std::to_string(k);
    shards_[k].batcher =
        std::make_unique<InferenceBatcher>(*env_.classifier, bc, ladder_rt_);
  }

  // Pool backing staged feature windows: one block holds one window's
  // feature matrix.  Sized for a busy fleet's worst realistic backlog;
  // exhaustion degrades to per-request heap buffers, never failure.
  if (env_.feature_pool == nullptr) {
    const affect::FeatureConfig& fc = env_.classifier->feature_config();
    core::BufferPoolConfig pc;
    pc.block_size =
        fc.timesteps * (fc.mfcc.num_coeffs + 4) * sizeof(float);
    pc.blocks = std::clamp<std::size_t>(4 * cfg_.max_sessions + 64, 128, 4096);
    feature_pool_ = std::make_unique<core::BufferPool>(pc);
    env_.feature_pool = feature_pool_.get();
  }
  feature_pool_ptr_ = env_.feature_pool;

  // Shared feature-bank cache: only meaningful for quantized workload
  // scripts (otherwise it marks itself unusable and sessions extract
  // live).
  if (cfg_.feature_bank_cache && env_.feature_cache == nullptr &&
      env_.workload->config().script_quantum_samples != 0) {
    feature_cache_ = std::make_unique<FeatureBankCache>(
        *env_.workload, env_.classifier->feature_config(),
        cfg_.ladder.truncate_bits);
    if (feature_cache_->usable()) env_.feature_cache = feature_cache_.get();
  }

  results_.resize(cfg_.batcher.max_batch);
}

SessionId SessionManager::create_session(const SessionConfig& cfg) {
  if (sessions_.size() >= cfg_.max_sessions) {
    ++stats_.sessions_rejected;
    AFFECTSYS_COUNT("serve.sessions_rejected", 1);
    throw AdmissionError(sessions_.size(), cfg_.max_sessions);
  }
  const SessionId id = next_id_++;
  Slot slot;
  slot.session = std::make_unique<Session>(id, cfg, env_,
                                           /*inline_inference=*/false,
                                           /*start_tick=*/now_tick_);
  slot.cfg = cfg;
  slot.window_start_tick = now_tick_;
  if (cfg_.wheel) {
    slot.next_wake = now_tick_;
    wheel_.schedule_at(now_tick_, wake_key(id));
  }
  sessions_.emplace(id, std::move(slot));
  ++stats_.sessions_created;
  AFFECTSYS_COUNT("serve.sessions_created", 1);
  AFFECTSYS_GAUGE_SET("serve.sessions_open",
                      static_cast<double>(sessions_.size()));
  return id;
}

SessionId SessionManager::create_session() {
  SessionConfig cfg = cfg_.session;
  cfg.seed = static_cast<unsigned>(next_id_);
  return create_session(cfg);
}

conf::RoomId SessionManager::create_room(const conf::RoomConfig& cfg) {
  const conf::RoomId id = next_room_++;
  conf::RoomConfig rc = cfg;
  if (rc.obs_scope.empty()) {
    rc.obs_scope = "serve.room" + std::to_string(id);
  }
  rooms_.emplace(id, std::make_unique<conf::Room>(id, rc));
  ++stats_.rooms_created;
  AFFECTSYS_COUNT("serve.rooms_created", 1);
  return id;
}

SessionId SessionManager::create_session(const SessionConfig& cfg,
                                         conf::RoomId room) {
  const auto rit = rooms_.find(room);
  if (rit == rooms_.end()) {
    throw std::out_of_range("SessionManager: unknown room id");
  }
  if (!cfg.simulcast.enabled) {
    throw std::invalid_argument(
        "SessionManager: room members need simulcast (the multiplexer "
        "pins speakers to ladder rungs)");
  }
  SessionConfig c = cfg;
  // The default policy becomes the conference table; an explicit policy
  // is the caller's to shape (the fuzz suite feeds random ones).
  c.simulcast.conference = true;
  const SessionId id = create_session(c);  // may throw AdmissionError
  sessions_.at(id).room = room;
  rit->second->add(id);
  return id;
}

const conf::Room& SessionManager::room(conf::RoomId id) const {
  const auto it = rooms_.find(id);
  if (it == rooms_.end()) {
    throw std::out_of_range("SessionManager: unknown room id");
  }
  return *it->second;
}

conf::RoomReport SessionManager::room_report(conf::RoomId id) const {
  return room(id).report();
}

void SessionManager::close_session(SessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("SessionManager: unknown session id");
  }
  if (it->second.room != 0) {
    const auto rit = rooms_.find(it->second.room);
    if (rit != rooms_.end()) rit->second->remove(id);
  }
  // Any wheel entry the slot still has goes stale and is ignored when
  // it fires (no matching slot / next_wake mismatch).
  sessions_.erase(it);
  ++stats_.sessions_closed;
  AFFECTSYS_COUNT("serve.sessions_closed", 1);
  AFFECTSYS_GAUGE_SET("serve.sessions_open",
                      static_cast<double>(sessions_.size()));
}

std::size_t SessionManager::backlog() const {
  std::size_t total = 0;
  for (const Shard& sh : shards_) total += sh.batcher->pending();
  return total;
}

BatcherStats SessionManager::batcher_stats() const {
  BatcherStats agg;
  for (const Shard& sh : shards_) {
    const BatcherStats& s = sh.batcher->stats();
    agg.flushes += s.flushes;
    agg.windows += s.windows;
    agg.batched_windows += s.batched_windows;
    agg.forced_fallback_flushes += s.forced_fallback_flushes;
    agg.max_batch_rows = std::max(agg.max_batch_rows, s.max_batch_rows);
    agg.windows_int8 += s.windows_int8;
    agg.windows_hdc += s.windows_hdc;
  }
  return agg;
}

bool SessionManager::is_quarantined(SessionId id) const {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("SessionManager: unknown session id");
  }
  return it->second.quarantined;
}

void SessionManager::update_degrade_level() {
  // One step per tick in either direction: the ladder reacts within a
  // few ticks but cannot thrash inside the hysteresis band.
  const std::size_t b = backlog();
  if (b >= cfg_.backlog_hi) {
    degrade_level_ = std::min(degrade_level_ + 1, kFrameShedLevel);
  } else if (b <= cfg_.backlog_lo && degrade_level_ > 0) {
    --degrade_level_;
  }
  stats_.max_degrade_level = std::max(stats_.max_degrade_level,
                                      degrade_level_);
  if (degrade_level_ > 0) ++stats_.degrade_ticks;
  AFFECTSYS_GAUGE_SET("serve.degrade_level",
                      static_cast<double>(degrade_level_));
  AFFECTSYS_GAUGE_SET("serve.backlog", static_cast<double>(b));
}

// Same one-step-per-tick hysteresis shape as the degrade ladder, on its
// own (lower) watermarks: precision is the cheaper knob, so it gives
// before decode quality does.  Runs before stage A, so the pressure a
// session sees is a pure function of the backlog at tick entry —
// deterministic and replayable.
void SessionManager::update_ladder_pressure() {
  if (!cfg_.ladder.enabled) return;
  const std::size_t b = backlog();
  if (b >= cfg_.ladder.backlog_hi) {
    ladder_pressure_ =
        std::min(ladder_pressure_ + 1, static_cast<int>(env_.max_rung));
  } else if (b <= cfg_.ladder.backlog_lo && ladder_pressure_ > 0) {
    --ladder_pressure_;
  }
  stats_.max_ladder_pressure =
      std::max(stats_.max_ladder_pressure, ladder_pressure_);
  if (ladder_pressure_ > 0) ++stats_.ladder_pressure_ticks;
  AFFECTSYS_GAUGE_SET("serve.ladder.pressure",
                      static_cast<double>(ladder_pressure_));
}

std::uint64_t SessionManager::session_errors(const Session& s) {
  return s.stats().decode_errors + s.stats().chunks_dropped;
}

void SessionManager::update_error_budget() {
  if (cfg_.error_budget == 0) return;
  for (auto& [id, slot] : sessions_) {
    if (slot.quarantined) continue;
    if (now_tick_ - slot.window_start_tick >= cfg_.error_window_ticks) {
      slot.window_start_tick = now_tick_;
      slot.window_start_errors = session_errors(*slot.session);
    }
    const std::uint64_t in_window =
        session_errors(*slot.session) - slot.window_start_errors;
    if (in_window > cfg_.error_budget) {
      slot.quarantined = true;
      slot.release_tick = now_tick_ + 1 + cfg_.quarantine_ticks;
      slot.results_to_drop = slot.session->inflight();
      ++stats_.sessions_quarantined;
      AFFECTSYS_COUNT("serve.sessions_quarantined", 1);
      if (cfg_.wheel) {
        wheel_.schedule_at(slot.release_tick, quarantine_key(id));
      }
    }
  }
}

void SessionManager::route(std::span<const RoutedResult> results) {
  for (const RoutedResult& r : results) {
    const auto it = sessions_.find(r.session);
    // A result for a since-closed session is dropped; its slot owner is
    // gone and nobody is waiting.
    if (it == sessions_.end()) continue;
    Slot& slot = it->second;
    if (slot.results_to_drop > 0) {
      // Stale window from before a quarantine: the session that staged
      // it was (or is about to be) replaced.
      --slot.results_to_drop;
      ++stats_.results_dropped_quarantined;
      AFFECTSYS_COUNT("serve.results_dropped_quarantined", 1);
      continue;
    }
    slot.session->apply_result(r);
    ++stats_.results_routed;
  }
}

void SessionManager::restart_slot(SessionId id, Slot& slot) {
  slot.session = std::make_unique<Session>(id, slot.cfg, env_,
                                           /*inline_inference=*/false,
                                           /*start_tick=*/now_tick_);
  slot.quarantined = false;
  slot.window_start_tick = now_tick_;
  slot.window_start_errors = 0;
  ++stats_.sessions_restarted;
  AFFECTSYS_COUNT("serve.sessions_restarted", 1);
}

// Compat scheduling: every open, non-quarantined session is due, in id
// order (map iteration) — the pre-PR 7 tick loop exactly.
void SessionManager::build_due_compat() {
  // Quarantine releases due this tick restart before anything runs, so
  // the fresh session sees the full tick.
  for (auto& [id, slot] : sessions_) {
    if (slot.quarantined && now_tick_ >= slot.release_tick) {
      restart_slot(id, slot);
    }
  }
  for (auto& [id, slot] : sessions_) {
    if (!slot.quarantined) order_.push_back(slot.session.get());
  }
}

// Wheel scheduling: only the keys the wheel fires are touched.  A wake
// key is honoured iff its slot still exists, is not quarantined, and
// scheduled exactly this wake (next_wake == now) — anything else is a
// stale entry from a closed/restarted/rescheduled slot and is skipped.
// collect() returns keys ascending, so quarantine releases (kind 0)
// process before wake-ups (kind 1) and the restarted session joins this
// tick's due list; last_run dedups a same-tick release + stale wake.
void SessionManager::build_due_wheel() {
  due_keys_.clear();
  wheel_.collect(now_tick_, due_keys_);
  for (const std::uint64_t key : due_keys_) {
    const SessionId id = key & ((std::uint64_t{1} << kKindShift) - 1);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) continue;
    Slot& slot = it->second;
    const bool is_wake = (key >> kKindShift) != 0;
    if (is_wake) {
      if (slot.quarantined || slot.next_wake != now_tick_ ||
          slot.last_run == now_tick_) {
        continue;
      }
    } else {
      if (!slot.quarantined || now_tick_ < slot.release_tick) continue;
      restart_slot(id, slot);
      slot.next_wake = now_tick_;
    }
    slot.last_run = now_tick_;
    order_.push_back(slot.session.get());
  }
  // Keys arrive (quarantine..., wake...) each id-ascending within kind;
  // batch assembly wants one id-ascending list.
  std::sort(order_.begin(), order_.end(),
            [](const Session* a, const Session* b) { return a->id() < b->id(); });
}

// Stage R (serial, between stages A and B): conference dominance.
// Observations walk this tick's due list in id order (a member not due
// — sleeping on the wheel or quarantined — is unobserved and decays as
// silent), rooms tick in ascending room id, and roles copy back into
// the sessions before stage C evaluates any switch policy.  The stage
// consults NO fault plan: room-level sites would sit between stage A's
// audio sites and stage C's net/NAL sites in every member's stream, so
// keeping the stage plan-free is what lets pre-conference fault
// schedules replay unchanged (the consultation-order contract below is
// not renumbered).  Roles only retarget the per-session LayerSelector,
// so the switch-only-at-IDR invariant and the per-speaker transport
// lanes (jitter/FEC state) are untouched by dominance moves.
void SessionManager::tick_rooms() {
  for (Session* s : order_) {
    const Slot& slot = sessions_.at(s->id());
    if (slot.room != 0) {
      rooms_.at(slot.room)->observe(s->id(), s->audio_energy(),
                                    s->affect_confidence());
    }
  }
  for (auto& [rid, room] : rooms_) room->tick(now_tick_);
  for (Session* s : order_) {
    const Slot& slot = sessions_.at(s->id());
    if (slot.room != 0) {
      s->set_speaker_role(rooms_.at(slot.room)->role(s->id()));
    }
  }
}

// Fault consultation contract (replay identity depends on this):
// every plan is consulted at a FIXED per-tick site order, and every
// site passes a mask DISJOINT from every other suite's sites.
//
//   per-session plan (one logical stream, session ticked serially):
//     1. stage A  pump_audio:            kSessionStall site, then the
//                                        kAudioKinds chunk site;
//     2. stage C  tick_transport_media:  kNetKinds site per packet sent
//                                        (transport mode only), then
//     3.          decode:                kNalUnitKinds site per NAL
//                                        reaching the decoder.
//   server plan: one kBatcherFallback site in stage B — consulted ONCE
//   per tick regardless of shard count, with the decision applied to
//   every shard's batcher.  The server plan's decision stream is
//   therefore invariant across shards/wheel/work_steal, and a session's
//   plan advances only on ticks the session actually runs (its sites
//   live inside its own stages), so per-session fault schedules are a
//   function of the session's local tick — identical across scheduler
//   configurations by construction.
//
// Because the masks are disjoint and a non-intersecting consultation
// never advances the RNG (FaultPlan::next), two identities hold by
// construction, not by test luck: a rate-0 run is byte-identical to a
// no-fault-code run, and enabling one suite's kinds cannot perturb the
// decision stream any other suite draws — e.g. pre-transport plans
// replay unchanged with kNetKinds compiled in (tests/test_net.cpp
// pins both).
void SessionManager::tick() {
  AFFECTSYS_TIME_SCOPE("serve.tick_ns");
  ++stats_.ticks;

  // Stage 0 (serial): build this tick's due list.
  order_.clear();
  if (cfg_.wheel) {
    build_due_wheel();
  } else {
    build_due_compat();
  }
  stats_.session_runs += order_.size();

  // Precision pressure for this tick, from the backlog the last tick
  // left behind (stage A reads it per session).
  update_ladder_pressure();
  const int pressure = ladder_pressure_;

  // Stage A: audio in parallel over the due list (its indexing keeps
  // parallel_for's chunking stable).
  if (cfg_.work_steal || cfg_.shards == 1) {
    core::parallel_for(0, order_.size(), 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        order_[i]->pump_audio(now_tick_, pressure);
      }
    });
  } else {
    for (Shard& sh : shards_) sh.due.clear();
    for (Session* s : order_) {
      shards_[s->id() % cfg_.shards].due.push_back(s);
    }
    for (Shard& sh : shards_) {
      core::parallel_for(0, sh.due.size(), 1,
                         [&](std::size_t b, std::size_t e) {
                           for (std::size_t i = b; i < e; ++i) {
                             sh.due[i]->pump_audio(now_tick_, pressure);
                           }
                         });
    }
  }

  // Stage R: room dominance (serial; see tick_rooms above).
  if (!rooms_.empty()) tick_rooms();

  // Stage B: deterministic batch assembly + serialized inference,
  // shards in ascending order, sessions in id order within each.
  if (cfg_.shards == 1) {
    for (Session* s : order_) s->drain_staged(*shards_[0].batcher);
  } else {
    for (std::size_t k = 0; k < cfg_.shards; ++k) {
      for (Session* s : order_) {
        if (s->id() % cfg_.shards == k) s->drain_staged(*shards_[k].batcher);
      }
    }
  }
  if (fault_plan_.enabled()) {
    const bool fallback =
        fault_plan_.next(fault::kind_bit(fault::FaultKind::kBatcherFallback))
            .has_value();
    if (fallback) fault_counts_.record(fault::FaultKind::kBatcherFallback);
    for (Shard& sh : shards_) sh.batcher->force_fallback(fallback);
  }
  // At most one flush per shard per tick: the service capacity is
  // max_batch rows per shard per tick, so sustained offered load beyond
  // that grows the backlog and trips the shedding watermarks instead of
  // silently stretching the tick.
  for (Shard& sh : shards_) {
    if (sh.batcher->should_flush(now_tick_)) {
      const std::size_t n = sh.batcher->flush_into(results_);
      route({results_.data(), n});
    }
  }

  update_degrade_level();

  // Stage C: media in parallel under the shared degrade level.
  const int level = degrade_level_;
  if (cfg_.work_steal || cfg_.shards == 1) {
    core::parallel_for(0, order_.size(), 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        order_[i]->tick_media(now_tick_, level);
      }
    });
  } else {
    for (Shard& sh : shards_) {
      core::parallel_for(0, sh.due.size(), 1,
                         [&](std::size_t b, std::size_t e) {
                           for (std::size_t i = b; i < e; ++i) {
                             sh.due[i]->tick_media(now_tick_, level);
                           }
                         });
    }
  }

  // Error-budget ladder (serial): offenders spend the next
  // quarantine_ticks ticks benched, then restart fresh.
  update_error_budget();

  // Reschedule: every session that ran (and was not just quarantined)
  // files its next wake-up.  Quarantined slots already filed their
  // release key in update_error_budget().
  if (cfg_.wheel) {
    for (Session* s : order_) {
      const auto it = sessions_.find(s->id());
      if (it == sessions_.end() || it->second.quarantined) continue;
      const std::uint64_t at = now_tick_ + s->next_wake_delay();
      it->second.next_wake = at;
      wheel_.schedule_at(at, wake_key(s->id()));
    }
  }

  ++now_tick_;
}

void SessionManager::drain() {
  for (Shard& sh : shards_) {
    while (sh.batcher->pending() > 0) {
      const std::size_t n = sh.batcher->flush_into(results_);
      route({results_.data(), n});
    }
  }
}

const Session& SessionManager::session(SessionId id) const {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("SessionManager: unknown session id");
  }
  return *it->second.session;
}

SessionReport SessionManager::report(SessionId id) const {
  return session(id).report();
}

}  // namespace affectsys::serve
