#include "serve/server.hpp"

#include <algorithm>

#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace affectsys::serve {

SessionManager::SessionManager(const ServerConfig& cfg, const SessionEnv& env)
    : cfg_(cfg),
      env_(env),
      batcher_(*env.classifier, cfg.batcher),
      fault_plan_(cfg.fault) {
  if (cfg_.max_sessions == 0) {
    throw std::invalid_argument("SessionManager: max_sessions must be >= 1");
  }
  if (cfg_.backlog_lo > cfg_.backlog_hi) {
    throw std::invalid_argument(
        "SessionManager: backlog_lo must not exceed backlog_hi");
  }
}

SessionId SessionManager::create_session(const SessionConfig& cfg) {
  if (sessions_.size() >= cfg_.max_sessions) {
    ++stats_.sessions_rejected;
    AFFECTSYS_COUNT("serve.sessions_rejected", 1);
    throw AdmissionError(sessions_.size(), cfg_.max_sessions);
  }
  const SessionId id = next_id_++;
  Slot slot;
  slot.session = std::make_unique<Session>(id, cfg, env_,
                                           /*inline_inference=*/false);
  slot.cfg = cfg;
  slot.window_start_tick = now_tick_;
  sessions_.emplace(id, std::move(slot));
  ++stats_.sessions_created;
  AFFECTSYS_COUNT("serve.sessions_created", 1);
  AFFECTSYS_GAUGE_SET("serve.sessions_open",
                      static_cast<double>(sessions_.size()));
  return id;
}

SessionId SessionManager::create_session() {
  SessionConfig cfg = cfg_.session;
  cfg.seed = static_cast<unsigned>(next_id_);
  return create_session(cfg);
}

void SessionManager::close_session(SessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("SessionManager: unknown session id");
  }
  sessions_.erase(it);
  ++stats_.sessions_closed;
  AFFECTSYS_COUNT("serve.sessions_closed", 1);
  AFFECTSYS_GAUGE_SET("serve.sessions_open",
                      static_cast<double>(sessions_.size()));
}

std::size_t SessionManager::backlog() const { return batcher_.pending(); }

bool SessionManager::is_quarantined(SessionId id) const {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("SessionManager: unknown session id");
  }
  return it->second.quarantined;
}

void SessionManager::update_degrade_level() {
  // One step per tick in either direction: the ladder reacts within a
  // few ticks but cannot thrash inside the hysteresis band.
  const std::size_t b = backlog();
  if (b >= cfg_.backlog_hi) {
    degrade_level_ = std::min(degrade_level_ + 1, kFrameShedLevel);
  } else if (b <= cfg_.backlog_lo && degrade_level_ > 0) {
    --degrade_level_;
  }
  stats_.max_degrade_level = std::max(stats_.max_degrade_level,
                                      degrade_level_);
  if (degrade_level_ > 0) ++stats_.degrade_ticks;
  AFFECTSYS_GAUGE_SET("serve.degrade_level",
                      static_cast<double>(degrade_level_));
  AFFECTSYS_GAUGE_SET("serve.backlog", static_cast<double>(b));
}

std::uint64_t SessionManager::session_errors(const Session& s) {
  return s.stats().decode_errors + s.stats().chunks_dropped;
}

void SessionManager::update_error_budget() {
  if (cfg_.error_budget == 0) return;
  for (auto& [id, slot] : sessions_) {
    if (slot.quarantined) continue;
    if (now_tick_ - slot.window_start_tick >= cfg_.error_window_ticks) {
      slot.window_start_tick = now_tick_;
      slot.window_start_errors = session_errors(*slot.session);
    }
    const std::uint64_t in_window =
        session_errors(*slot.session) - slot.window_start_errors;
    if (in_window > cfg_.error_budget) {
      slot.quarantined = true;
      slot.release_tick = now_tick_ + 1 + cfg_.quarantine_ticks;
      slot.results_to_drop = slot.session->inflight();
      ++stats_.sessions_quarantined;
      AFFECTSYS_COUNT("serve.sessions_quarantined", 1);
    }
  }
}

void SessionManager::route(const std::vector<RoutedResult>& results) {
  for (const RoutedResult& r : results) {
    const auto it = sessions_.find(r.session);
    // A result for a since-closed session is dropped; its slot owner is
    // gone and nobody is waiting.
    if (it == sessions_.end()) continue;
    Slot& slot = it->second;
    if (slot.results_to_drop > 0) {
      // Stale window from before a quarantine: the session that staged
      // it was (or is about to be) replaced.
      --slot.results_to_drop;
      ++stats_.results_dropped_quarantined;
      AFFECTSYS_COUNT("serve.results_dropped_quarantined", 1);
      continue;
    }
    slot.session->apply_result(r);
    ++stats_.results_routed;
  }
}

// Fault consultation contract (replay identity depends on this):
// every plan is consulted at a FIXED per-tick site order, and every
// site passes a mask DISJOINT from every other suite's sites.
//
//   per-session plan (one logical stream, session ticked serially):
//     1. stage A  pump_audio:            kSessionStall site, then the
//                                        kAudioKinds chunk site;
//     2. stage C  tick_transport_media:  kNetKinds site per packet sent
//                                        (transport mode only), then
//     3.          decode:                kNalUnitKinds site per NAL
//                                        reaching the decoder.
//   server plan: one kBatcherFallback site in stage B.
//
// Because the masks are disjoint and a non-intersecting consultation
// never advances the RNG (FaultPlan::next), two identities hold by
// construction, not by test luck: a rate-0 run is byte-identical to a
// no-fault-code run, and enabling one suite's kinds cannot perturb the
// decision stream any other suite draws — e.g. pre-transport plans
// replay unchanged with kNetKinds compiled in (tests/test_net.cpp
// pins both).
void SessionManager::tick() {
  AFFECTSYS_TIME_SCOPE("serve.tick_ns");
  ++stats_.ticks;

  // Stage 0 (serial): quarantine releases due this tick restart before
  // anything runs, so the fresh session sees the full tick.
  for (auto& [id, slot] : sessions_) {
    if (slot.quarantined && now_tick_ >= slot.release_tick) {
      slot.session = std::make_unique<Session>(id, slot.cfg, env_,
                                               /*inline_inference=*/false);
      slot.quarantined = false;
      slot.window_start_tick = now_tick_;
      slot.window_start_errors = 0;
      ++stats_.sessions_restarted;
      AFFECTSYS_COUNT("serve.sessions_restarted", 1);
    }
  }

  // Stage A: audio in parallel.  Indexing through a snapshot of the
  // active (non-quarantined) session pointers keeps parallel_for's
  // chunking stable.
  std::vector<Session*> order;
  order.reserve(sessions_.size());
  for (auto& [id, slot] : sessions_) {
    if (!slot.quarantined) order.push_back(slot.session.get());
  }
  core::parallel_for(0, order.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) order[i]->pump_audio(now_tick_);
  });

  // Stage B: deterministic batch assembly + serialized inference.
  for (Session* s : order) {
    for (InferenceRequest& req : s->take_staged()) {
      batcher_.enqueue(std::move(req));
    }
  }
  if (fault_plan_.enabled()) {
    const bool fallback =
        fault_plan_.next(fault::kind_bit(fault::FaultKind::kBatcherFallback))
            .has_value();
    if (fallback) fault_counts_.record(fault::FaultKind::kBatcherFallback);
    batcher_.force_fallback(fallback);
  }
  // At most one flush per tick: the service capacity is max_batch rows
  // per tick, so sustained offered load beyond that grows the backlog
  // and trips the shedding watermarks instead of silently stretching
  // the tick.
  if (batcher_.should_flush(now_tick_)) route(batcher_.flush());

  update_degrade_level();

  // Stage C: media in parallel under the shared degrade level.
  const int level = degrade_level_;
  core::parallel_for(0, order.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) order[i]->tick_media(now_tick_, level);
  });

  // Error-budget ladder (serial): offenders spend the next
  // quarantine_ticks ticks benched, then restart fresh.
  update_error_budget();

  ++now_tick_;
}

void SessionManager::drain() {
  while (batcher_.pending() > 0) route(batcher_.flush());
}

const Session& SessionManager::session(SessionId id) const {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("SessionManager: unknown session id");
  }
  return *it->second.session;
}

SessionReport SessionManager::report(SessionId id) const {
  return session(id).report();
}

}  // namespace affectsys::serve
