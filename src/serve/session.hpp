// One tenant of the session server: a seeded end-to-end pipeline
// (audio affect stream -> emotion state -> adaptive decode + emotional
// app manager) advanced in fixed media-time ticks.
//
// A session owns only cursors and per-user state — the media it
// consumes lives in the shared read-only SharedWorkload.  Its audio
// path IS the standalone RealtimePipeline (embedded in sync mode with
// a window sink), so the windowing/VAD/smoothing behaviour of a served
// session is the standalone behaviour by construction; the sink hands
// extracted feature windows to the server's cross-session batcher, and
// batched results come back through apply_result().  With
// inline_inference (the standalone reference configuration) the sink
// classifies immediately instead — tests prove the served single-
// session run byte-identical to this.
//
// Thread-safety: the server advances sessions concurrently
// (parallel_for over sessions), but each Session instance is only ever
// touched by one task at a time, and everything it shares is read-only
// — except the classifier, which only the inline_inference path calls
// (the server never sets that flag, so its sessions never touch the
// shared model; the serialized batcher does).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <random>
#include <span>
#include <utility>
#include <vector>

#include "adaptive/input_selector.hpp"
#include "adaptive/modes.hpp"
#include "affect/realtime.hpp"
#include "android/process.hpp"
#include "core/emotional_policy.hpp"
#include "fault/audio_faults.hpp"
#include "fault/bitstream_faults.hpp"
#include "fault/plan.hpp"
#include "h264/decoder.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "power/device.hpp"
#include "serve/batcher.hpp"
#include "serve/feature_cache.hpp"
#include "serve/ladder.hpp"
#include "serve/workload.hpp"
#include "simulcast/policy.hpp"
#include "simulcast/selector.hpp"

namespace affectsys::serve {

/// Degrade level at which tick_media() stops decoding and sheds the
/// tick's frames outright — one past the deepest affect-adaptive mode
/// (level 2 = forced Combined).
inline constexpr int kFrameShedLevel = 3;

/// Simulcast layer switching for one session (requires a workload whose
/// SimulcastClip was built — see WorkloadConfig::simulcast).  Media
/// ticks walk the aligned multi-layer clip picture by picture: the
/// switch policy is evaluated once per tick over (affect mode, context
/// vector) and the LayerSelector changes the forwarded layer only at
/// aligned IDRs.  Off (the default) leaves the single-stream media
/// paths byte-identical to pre-simulcast builds.
struct SimulcastSessionConfig {
  bool enabled = false;
  /// When true, `policy` is ignored and the session builds
  /// simulcast::default_switch_policy(clip layer count) — or
  /// conference_switch_policy when `conference` is also set.
  bool use_default_policy = true;
  /// Room member: the default policy becomes the conference table (role
  /// rows for recent/idle speakers).  The server sets this when a
  /// session is created into a room; for the dominant speaker the table
  /// reduces to the default one, so a K=1 room stays byte-identical.
  bool conference = false;
  simulcast::SwitchPolicy policy{};
  /// Deterministic battery/thermal stub feeding the context vector (the
  /// default never triggers the low-power rows).
  power::DeviceStateConfig device{};
};

struct SessionConfig {
  /// Drives the emotion script, silence gaps and app-launch trace;
  /// everything a session does is a pure function of this seed plus the
  /// server's scheduling decisions.
  unsigned seed = 1;
  double tick_s = 0.1;   ///< media time advanced per tick
  double fps = 25.0;     ///< video frames per media second
  std::size_t script_segments = 6;
  /// Launch one app from the seeded trace every N ticks (0 = no app
  /// manager traffic).
  std::size_t app_launch_period_ticks = 25;
  /// Audio pipeline shape; async must stay false (the server supplies
  /// the window sink).  max_inflight is the per-session queue bound —
  /// the drop-newest shedding knob.
  affect::RealtimeConfig realtime{};
  adaptive::SelectorParams selector{140, 1};
  /// Per-session fault injection (disabled by default).  The effective
  /// plan seed mixes in the session id, so identically-configured
  /// tenants still fault independently; the session's decoder runs
  /// resilient either way, which is byte-identical on clean streams.
  fault::FaultConfig fault{};
  /// Transport-fed media mode: when enabled, tick_media packetizes the
  /// clip through an in-session TransportLink (driven by the same fault
  /// plan, kNetKinds sites) and decodes what survives the jitter buffer
  /// instead of decoding in-process.  Input Selector NAL deletion moves
  /// to the sender (shed slices never cost network bytes), and
  /// transport losses reach the decoder as notify_loss() resync cues.
  /// With a rate-0 plan the link is the identity function, so the
  /// decode digest matches the in-process path exactly.
  net::TransportConfig transport{};
  /// Simulcast layer switching; with transport also enabled,
  /// transport.layers must equal the workload clip's layer count.
  SimulcastSessionConfig simulcast{};
  /// Duty cycle for timer-wheel scheduling: after `duty_active_ticks`
  /// consecutive local ticks the session asks to sleep for
  /// `duty_idle_ticks` server ticks (next_wake_delay()).  0 idle ticks
  /// (the default) keeps the session always-on.  Because all session
  /// timing runs on the *local* tick, a duty-cycled session's outputs
  /// per local tick are identical to an always-on session's — idle
  /// phases stretch wall/server time, not media behaviour.
  std::size_t duty_active_ticks = 1;
  std::size_t duty_idle_ticks = 0;
  /// False drops the per-window replay log (windows + stable trace) —
  /// the large-fleet benches keep thousands of mostly-idle sessions
  /// allocation-free this way.  Digests and counters still accumulate.
  bool record_trace = true;
};

struct SessionStats {
  std::uint64_t ticks = 0;
  std::uint64_t windows_enqueued = 0;  ///< handed to the batcher
  std::uint64_t results_applied = 0;
  std::uint64_t frames_decoded = 0;
  std::uint64_t frames_dropped = 0;  ///< shed by overload level >= 3
  std::uint64_t nals_deleted = 0;
  std::uint64_t app_launches = 0;
  std::uint64_t mode_switches = 0;
  // Fault exposure and recovery (all zero without fault injection).
  std::uint64_t decode_errors = 0;   ///< malformed NALs the decoder swallowed
  std::uint64_t pictures_lost = 0;   ///< display slots lost to faulted slices
  std::uint64_t chunks_dropped = 0;  ///< audio chunks lost to drop faults
  std::uint64_t stall_ticks = 0;     ///< ticks spent in an injected stall
  // Transport exposure (all zero without cfg.transport.enabled).  Lost
  // packets deliberately do NOT feed the server's error budget: network
  // loss is a channel property, not tenant misbehaviour — the decoder's
  // resync path absorbs it instead of quarantine.
  std::uint64_t packets_sent = 0;       ///< data + parity sent
  std::uint64_t packets_lost = 0;       ///< dropped by the channel
  std::uint64_t packets_recovered = 0;  ///< rebuilt by FEC in time
  std::uint64_t nals_lost = 0;          ///< loss events fed to notify_loss
  // Feature-bank cache effectiveness (both zero when the cache is off).
  std::uint64_t feature_rows_cached = 0;  ///< rows copied from the bank cache
  std::uint64_t feature_rows_live = 0;    ///< rows computed by the extractor
  // Inference-ladder exposure (windows_int8/hdc/rung_switches all zero
  // when the ladder is off; windows_fp32 then equals windows_enqueued
  // for sink-mode sessions).
  std::uint64_t windows_fp32 = 0;   ///< staged on the reference rung
  std::uint64_t windows_int8 = 0;   ///< staged on the quantized rung
  std::uint64_t windows_hdc = 0;    ///< staged on the HDC rung
  std::uint64_t rung_switches = 0;  ///< ladder moves (either direction)
  // Simulcast exposure (all zero with simulcast off).
  std::uint64_t layer_switches = 0;       ///< completed layer changes
  std::uint64_t layer_wait_pictures = 0;  ///< pictures waiting for the IDR
  std::uint64_t frames_downswitched = 0;  ///< shed slots saved by a downswitch
  std::array<std::uint64_t, 4> layer_pictures{};  ///< forwarded per layer
  std::array<std::uint64_t, 4> layer_bytes{};     ///< slice bytes per layer
};

/// Raw per-window classification, recorded for replay comparison.
struct WindowRecord {
  std::uint64_t seq = 0;
  double t_end = 0.0;
  affect::Emotion emotion = affect::Emotion::kNeutral;
  float confidence = 0.0f;
  std::vector<float> probabilities;
};

/// Everything a byte-identity comparison needs: raw windows, the
/// smoothed emotion trace, a digest of every decoded pixel, and the
/// counters.
struct SessionReport {
  /// Which session this report pins: multi-session (room) replay
  /// comparisons need traces keyed by id, not by vector position.
  SessionId session_id = 0;
  std::vector<WindowRecord> windows;
  std::vector<std::pair<double, affect::Emotion>> stable_trace;
  /// (local tick, new rung) for every ladder move — the replay-identity
  /// fingerprint of the session's rung schedule (empty ladder-off, or
  /// when record_trace is false).
  std::vector<std::pair<std::uint64_t, Rung>> rung_trace;
  /// (global picture index, new layer) for every forwarded-layer change
  /// — by the selector contract each index past the first of a
  /// generation lands on an aligned IDR, which the invariant tests pin.
  /// Empty with simulcast off or record_trace false.
  std::vector<std::pair<std::uint64_t, std::uint8_t>> layer_trace;
  /// Selector roll-up (all zero with simulcast off).
  simulcast::LayerSelectorStats layer_selector;
  std::uint64_t decode_digest = 1469598103934665603ull;  ///< FNV-1a basis
  SessionStats stats;
  affect::RealtimeStats realtime;
  android::LoadingMetrics apps;
  net::TransportStats transport;  ///< zeroes without transport mode
};

/// Shared server context handed to every session; must outlive them.
struct SessionEnv {
  const SharedWorkload* workload = nullptr;
  affect::AffectClassifier* classifier = nullptr;
  /// Both null disables app-manager traffic.
  const core::AppAffectTable* app_table = nullptr;
  const std::vector<android::App>* catalog = nullptr;
  /// Optional feature-bank cache (must have been built from the
  /// classifier's FeatureConfig).  Sessions use it only when its
  /// geometry aligns with their audio cadence AND fault injection is
  /// off (faulted audio diverges from the script the cache indexes);
  /// otherwise they extract live, byte-identically.
  const FeatureBankCache* feature_cache = nullptr;
  /// Optional pool backing staged feature windows; null falls back to
  /// per-request heap buffers (same bytes, more allocator traffic).
  core::BufferPool* feature_pool = nullptr;
  /// Inference-ladder policy (null or !enabled = every window fp32 and
  /// no ladder state advances).  The server points this at its config.
  const LadderConfig* ladder = nullptr;
  /// Highest rung with a live model behind it (the server caps this by
  /// what it could actually build); sessions never pick above it.
  Rung max_rung = Rung::kFp32;
  /// Trained HDC classifier for the top rung (caller-owned, optional).
  /// Sessions never call it — the server hands it to the shard
  /// batchers; it rides in the env because that is the one context the
  /// caller hands the server.
  const affect::HdcClassifier* hdc = nullptr;
};

class Session {
 public:
  /// `inline_inference` classifies windows synchronously at the sink
  /// (the standalone reference path); the server always passes false.
  /// `start_tick` is the server tick the session is admitted at: the
  /// session's *local* clock starts there, so in compat scheduling
  /// (every session runs every server tick) local and server time stay
  /// equal forever — byte-identical to the pre-shard server — while
  /// wheel scheduling advances local time only on ticks that actually
  /// run.
  Session(SessionId id, const SessionConfig& cfg, const SessionEnv& env,
          bool inline_inference, std::uint64_t start_tick = 0);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  SessionId id() const { return id_; }

  /// Stage A (parallel across sessions): advance one tick of audio
  /// through the embedded pipeline.  Surviving windows are feature-
  /// extracted here (per-session workspace) and staged for the batcher
  /// — or classified inline in standalone mode.  `ladder_pressure` is
  /// the server's global precision-pressure level this tick (0 with the
  /// ladder off — the default keeps external callers unchanged); the
  /// session clamps it by its own emotion stability to pick this tick's
  /// rung before any window is staged.
  void pump_audio(std::uint64_t tick, int ladder_pressure = 0);

  /// Moves this tick's staged windows out (server: serial, in session
  /// order, so batch assembly is deterministic).
  std::vector<InferenceRequest> take_staged();

  /// Zero-allocation variant of take_staged(): enqueues this tick's
  /// staged windows directly into `b` (FIFO), leaving the staging ring's
  /// slots (and their pool blocks' refs, once released) for reuse.
  void drain_staged(InferenceBatcher& b);

  /// Delivers one batched classification (seq order per session).
  void apply_result(const RoutedResult& r);

  /// Stage C (parallel across sessions): decode this tick's share of
  /// video under degraded_mode(policy mode, degrade_level) — level >= 3
  /// sheds the frames outright — and replay the app-launch trace.
  void tick_media(std::uint64_t tick, int degrade_level);

  /// Pending windows this session is responsible for (staged here plus
  /// in flight at the batcher) — the server's backlog input.
  std::size_t outstanding() const { return staged_count_ + inflight_; }

  /// Server ticks until this session next needs to run, per its duty
  /// cycle (always 1 with duty_idle_ticks == 0).  Consulted by the
  /// timer-wheel scheduler after tick_media(); compat scheduling
  /// ignores it.
  std::uint64_t next_wake_delay() const {
    if (cfg_.duty_idle_ticks == 0) return 1;
    const std::uint64_t runs = local_tick_ - start_tick_;
    const std::uint64_t active = cfg_.duty_active_ticks ? cfg_.duty_active_ticks : 1;
    return (runs % active == 0) ? cfg_.duty_idle_ticks + 1 : 1;
  }

  /// Local (media) tick count: how many ticks this session has actually
  /// run plus its admission tick.  Equals the server tick under compat
  /// scheduling.
  std::uint64_t local_tick() const { return local_tick_; }

  /// True when this session's windows can be served from the shared
  /// feature-bank cache (geometry aligned, faults off).
  bool using_feature_cache() const { return use_cache_; }
  /// Windows at the batcher with no result applied yet; the quarantine
  /// path must drop exactly this many stale results on arrival.
  std::size_t inflight() const { return inflight_; }
  std::uint64_t dropped_windows() const { return pipeline_.dropped(); }

  /// Faults the per-session plan has actually injected so far.
  const fault::FaultCounts& fault_counts() const { return fault_counts_; }

  adaptive::DecoderMode policy_mode() const { return policy_mode_; }
  adaptive::DecoderMode last_effective_mode() const { return effective_mode_; }

  /// Mean-square energy of the last tick's audio chunk (0 during an
  /// injected stall or a dropped chunk) — the active-speaker detector's
  /// per-tick observation.  Valid after pump_audio().
  double audio_energy() const { return last_energy_; }
  /// EMA of applied-result confidence: the affect half of the
  /// active-speaker score.
  float affect_confidence() const { return conf_ema_; }
  /// Conference role for this tick's switch-policy context.  Non-room
  /// sessions stay kDominant forever, so the role column never fires
  /// for them.  Set by the server's room stage before tick_media().
  void set_speaker_role(simulcast::SpeakerRole role) {
    speaker_role_ = static_cast<int>(role);
  }
  simulcast::SpeakerRole speaker_role() const {
    return static_cast<simulcast::SpeakerRole>(speaker_role_);
  }
  /// Precision rung new windows are currently staged on (kFp32 forever
  /// when the ladder is off).
  Rung rung() const { return rung_; }
  const SessionStats& stats() const { return stats_; }

  /// Drains nothing — snapshots the run so far.  Call only between
  /// ticks (or after close) with no results in flight.
  SessionReport report() const;

 private:
  void on_window(double t_end, std::span<const double> window);
  /// Steps rung_ one rung toward min(server pressure, own eligibility,
  /// env max_rung), at most once per hysteresis dwell.  No-op with the
  /// ladder off.
  void update_rung(int ladder_pressure);
  /// Feature matrix for one window: the bank-cache assembly when
  /// use_cache_ (byte-identical by construction), extract_into()
  /// otherwise.  Returned reference lives in fx_ws_.
  const nn::Matrix& extract_features(std::span<const double> window);
  /// Copies the cached raw row for the frame starting at absolute
  /// script sample `abs` into `row`; false when the frame straddles a
  /// segment/speech boundary (caller computes it live).
  bool cached_row(std::size_t abs, std::span<float> row) const;
  void record_result(std::uint64_t seq, double t_end,
                     const affect::ClassificationResult& res);
  void fill_chunk(std::vector<double>& chunk);
  void decode_pictures(std::size_t budget, const adaptive::ModeConfig& mc);
  bool decode_unit(const h264::NalUnit& unit);
  void tick_transport_media(std::size_t slots, const adaptive::ModeConfig& mc,
                            std::uint64_t tick);
  /// Evaluates the switch policy for this tick (context vector sampled
  /// once) and applies the downswitch-before-shed override.  Returns
  /// whether this tick still sheds (only when already on the bottom
  /// layer).
  bool sim_request_layer(std::size_t budget, int degrade_level, bool shed);
  /// Advances one picture boundary: runs the selector, handles layer
  /// joins (selector rescale, trace, decoder adoption in-process /
  /// params staging in transport).  Returns the layer to forward and
  /// sets `joined` when this picture (re)joined a layer — a layer
  /// change OR a generation wrap — so the transport sender knows to
  /// ship parameter sets.
  std::size_t sim_advance_picture(const adaptive::ModeConfig& mc,
                                  bool transport, bool& joined);
  void decode_sim_pictures(std::size_t budget, const adaptive::ModeConfig& mc);
  void tick_sim_transport_media(std::size_t slots,
                                const adaptive::ModeConfig& mc,
                                std::uint64_t tick);
  /// Rolls cumulative selector stats into stats_/obs counters (deltas).
  void sim_sync_counters();

  SessionId id_;
  SessionConfig cfg_;
  SessionEnv env_;
  bool inline_inference_;
  obs::MetricScope scope_;

  // Audio/affect path.
  affect::RealtimePipeline pipeline_;
  affect::FeatureExtractor fx_;
  affect::FeatureWorkspace fx_ws_;
  std::vector<ScriptSegment> script_;
  std::size_t script_idx_ = 0;
  std::size_t script_offset_ = 0;  ///< samples into the current segment
  std::vector<double> chunk_;
  std::uint64_t current_tick_ = 0;  ///< stamped onto staged requests
  /// Local (media) clock: starts at the admission tick and advances by
  /// one per executed tick.  All media timing (audio timestamps, frame
  /// budgets, app-launch cadence, transport ticks) runs on this clock,
  /// so a duty-cycled session behaves per-run exactly like an always-on
  /// one — and compat scheduling keeps it equal to the server tick.
  std::uint64_t local_tick_ = 0;
  std::uint64_t start_tick_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t inflight_ = 0;  ///< at the batcher, result not yet applied
  /// Staging ring: the first staged_count_ elements are this tick's
  /// windows; slots are reused across ticks so staging is allocation-
  /// free once warm.
  std::vector<InferenceRequest> staged_;
  std::size_t staged_count_ = 0;

  // Feature-bank cache state (all unused when use_cache_ is false).
  bool use_cache_ = false;
  std::uint64_t samples_pushed_ = 0;  ///< total samples handed to the pipeline
  std::vector<std::size_t> seg_start_;  ///< script-sample prefix sums (n+1)
  std::size_t script_len_ = 0;          ///< samples per full script pass

  // Fault injection (plan disabled unless cfg.fault.rate > 0).
  fault::FaultPlan fault_plan_;
  fault::FaultCounts fault_counts_;
  std::uint64_t stall_remaining_ = 0;  ///< injected-stall ticks left

  // Inference-ladder state (frozen at kFp32 when env_.ladder is null or
  // disabled).  conf_ema_ and calm_results_ track the session's emotion
  // stability from its own result stream; both feed eligibility only,
  // never the classification output, so maintaining them ladder-off
  // cannot perturb byte identity.
  Rung rung_ = Rung::kFp32;
  float conf_ema_ = 0.0f;          ///< EMA of applied-result confidence
  std::size_t calm_results_ = 0;   ///< results since last stable switch
  std::uint64_t last_rung_change_ = 0;  ///< local tick of the last move
  std::vector<std::pair<std::uint64_t, Rung>> rung_trace_;

  // Emotion -> mode state.
  adaptive::AffectVideoPolicy policy_;
  adaptive::DecoderMode policy_mode_ = adaptive::DecoderMode::kStandard;
  adaptive::DecoderMode effective_mode_ = adaptive::DecoderMode::kStandard;

  // Video path.
  h264::Decoder decoder_;
  adaptive::InputSelector selector_;
  std::size_t nal_cursor_ = 0;
  double frame_carry_ = 0.0;

  // Conference inputs (inert outside a room: energy is tracked but
  // unread, and the role stays kDominant).
  double last_energy_ = 0.0;
  int speaker_role_ = static_cast<int>(simulcast::SpeakerRole::kDominant);

  // Simulcast path (all dormant unless cfg.simulcast.enabled).
  const simulcast::SimulcastClip* sim_clip_ = nullptr;
  simulcast::LayerSelector sim_selector_{1, 0};
  simulcast::SwitchPolicy sim_policy_;
  std::size_t sim_pic_ = 0;          ///< next picture index within the clip
  std::uint64_t sim_pic_global_ = 0; ///< pictures forwarded since admission
  std::size_t sim_cur_layer_ = 0;    ///< layer the media path is locked to
  bool sim_layer_valid_ = false;     ///< false forces a (re)join next picture
  std::vector<std::pair<std::uint64_t, std::uint8_t>> layer_trace_;

  // Transport-fed media mode (null unless cfg.transport.enabled).
  std::unique_ptr<net::TransportLink> link_;
  std::uint32_t send_au_ = 0;   ///< access-unit timestamp within generation
  std::uint32_t send_gen_ = 0;  ///< sender clip-loop count
  std::uint32_t rx_gen_ = 0;    ///< last generation the receiver decoded
  std::uint8_t rx_layer_ = 0;   ///< lane the receiver's decoder is tuned to
  bool rx_layer_valid_ = false; ///< adopt the first usable lane seen
  /// Access-unit assembly ring (first au_count_ elements valid); slots
  /// copy-assign NalUnits so payload capacity is reused across ticks.
  std::vector<h264::NalUnit> au_;
  std::size_t au_count_ = 0;

  // App/memory manager path (optional; both null when SessionEnv does
  // not supply a table + catalog).
  std::unique_ptr<core::EmotionalKillPolicy> kill_policy_;
  std::unique_ptr<android::ProcessManager> pm_;
  std::mt19937 app_rng_;

  // Replay log.
  std::vector<WindowRecord> windows_;
  std::vector<std::pair<double, affect::Emotion>> stable_trace_;
  std::uint64_t digest_ = 1469598103934665603ull;
  SessionStats stats_;

  // Cached scoped metric handles (one registry lookup each, ever).
  obs::Counter* c_windows_ = nullptr;
  obs::Counter* c_frames_ = nullptr;
  obs::Counter* c_frames_dropped_ = nullptr;
  obs::Counter* c_nals_deleted_ = nullptr;
  obs::Counter* c_mode_switches_ = nullptr;
  obs::Counter* c_faults_ = nullptr;
  obs::Counter* c_decode_errors_ = nullptr;
  obs::Counter* c_chunks_dropped_ = nullptr;
  // Transport counters (registered only in transport mode, so sessions
  // without it expose an unchanged metric set).
  obs::Counter* c_packets_sent_ = nullptr;
  obs::Counter* c_packets_lost_ = nullptr;
  obs::Counter* c_packets_recovered_ = nullptr;
  obs::Counter* c_nals_lost_ = nullptr;
  // Simulcast counters (registered only with simulcast enabled).
  obs::Counter* c_layer_switches_ = nullptr;
  obs::Counter* c_layer_wait_ = nullptr;
  obs::Counter* c_downswitch_sheds_ = nullptr;
  std::array<obs::Counter*, 4> c_layer_pictures_{};
  std::array<obs::Counter*, 4> c_layer_bytes_{};
};

}  // namespace affectsys::serve
