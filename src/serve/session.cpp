#include "serve/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "signal/window.hpp"

namespace affectsys::serve {

namespace {

/// FNV-1a over a byte plane; order-sensitive, so two digests match only
/// when every decoded pixel matched in sequence.
void fnv_plane(std::uint64_t& h, const h264::Plane& p) {
  for (std::uint8_t b : p.data) {
    h ^= b;
    h *= 1099511628211ull;
  }
}

}  // namespace

Session::Session(SessionId id, const SessionConfig& cfg, const SessionEnv& env,
                 bool inline_inference, std::uint64_t start_tick)
    : id_(id),
      cfg_([&] {
        SessionConfig c = cfg;
        if (c.realtime.async) {
          throw std::invalid_argument(
              "Session: realtime.async must be false (server owns inference)");
        }
        if (c.realtime.obs_scope.empty()) {
          c.realtime.obs_scope = "serve.s" + std::to_string(id);
        }
        return c;
      }()),
      env_([&] {
        // Checked here (not in the body): members below dereference both.
        if (env.workload == nullptr || env.classifier == nullptr) {
          throw std::invalid_argument(
              "Session: workload and classifier required");
        }
        return env;
      }()),
      inline_inference_(inline_inference),
      scope_(cfg_.realtime.obs_scope),
      pipeline_(*env.classifier, cfg_.realtime),
      fx_(env.classifier->feature_config()),
      fault_plan_([&] {
        // Mix the session id into the plan seed so identically
        // configured tenants fault independently (and a restarted
        // session replays its own schedule, not a neighbour's).
        fault::FaultConfig fc = cfg.fault;
        fc.seed ^= 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(id) + 1);
        return fc;
      }()),
      decoder_(h264::DecoderConfig{/*enable_deblock=*/true,
                                   /*resilient=*/true}),
      selector_(cfg_.selector),
      app_rng_(cfg_.seed ^ 0x9e3779b9u) {
  local_tick_ = start_tick;
  start_tick_ = start_tick;
  last_rung_change_ = start_tick;
  script_ = env_.workload->make_script(cfg_.seed, cfg_.script_segments);
  if (script_.empty()) {
    throw std::invalid_argument("Session: script_segments must be >= 1");
  }
  chunk_.resize(static_cast<std::size_t>(
      std::llround(cfg_.tick_s * cfg_.realtime.sample_rate_hz)));

  // Integer per-segment sample counts.  Quantized workloads fill these;
  // for legacy (unquantized) scripts derive them with exactly the
  // truncating casts fill_chunk historically applied per sample, so the
  // generated audio is bit-identical either way.
  const double rate = cfg_.realtime.sample_rate_hz;
  seg_start_.reserve(script_.size() + 1);
  seg_start_.push_back(0);
  for (ScriptSegment& seg : script_) {
    if (seg.speech_samples == 0 && seg.silence_samples == 0) {
      seg.speech_samples = static_cast<std::size_t>(seg.speech_s * rate);
      seg.silence_samples = static_cast<std::size_t>(seg.silence_s * rate);
    }
    seg_start_.push_back(seg_start_.back() + seg.speech_samples +
                         seg.silence_samples);
  }
  script_len_ = seg_start_.back();

  // Feature-bank cache eligibility: sink-mode inference, no fault plan
  // (faulted audio diverges from the script the cache indexes), and
  // every geometry the frame classifier relies on hop-aligned.
  if (const FeatureBankCache* cache = env_.feature_cache;
      cache != nullptr && cache->usable() && !inline_inference_ &&
      !fault_plan_.enabled() && script_len_ > 0) {
    const auto& mc = env_.classifier->feature_config().mfcc;
    bool ok = cache->hop() == mc.hop && cache->frame_len() == mc.frame_len &&
              cache->feature_dim() == fx_.feature_dim() && mc.hop != 0 &&
              chunk_.size() % mc.hop == 0 && script_len_ % mc.hop == 0;
    for (const ScriptSegment& seg : script_) {
      if (!ok) break;
      ok = cache->covers(seg.emotion) &&
           cache->utterance_len(seg.emotion) ==
               env_.workload->utterance(seg.emotion).size() &&
           seg.speech_samples % mc.hop == 0 &&
           (seg.speech_samples + seg.silence_samples) % mc.hop == 0;
    }
    use_cache_ = ok;
  }

  if (env_.app_table != nullptr && env_.catalog != nullptr &&
      !env_.catalog->empty()) {
    kill_policy_ = std::make_unique<core::EmotionalKillPolicy>(*env_.app_table);
    pm_ = std::make_unique<android::ProcessManager>(
        *env_.catalog, android::ProcessManagerConfig{}, *kill_policy_);
  }

  c_windows_ = &scope_.counter("serve.windows");
  c_frames_ = &scope_.counter("serve.frames_decoded");
  c_frames_dropped_ = &scope_.counter("serve.frames_dropped");
  c_nals_deleted_ = &scope_.counter("serve.nals_deleted");
  c_mode_switches_ = &scope_.counter("serve.mode_switches");
  c_faults_ = &scope_.counter("serve.faults_injected");
  c_decode_errors_ = &scope_.counter("serve.decode_errors");
  c_chunks_dropped_ = &scope_.counter("serve.audio_chunks_dropped");

  if (cfg_.simulcast.enabled) {
    sim_clip_ = env_.workload->simulcast_clip();
    if (sim_clip_ == nullptr) {
      throw std::invalid_argument(
          "Session: simulcast enabled but the workload built no clip "
          "(set WorkloadConfig::simulcast.layers)");
    }
    const std::size_t n = sim_clip_->layer_count();
    if (cfg_.transport.enabled &&
        static_cast<std::size_t>(cfg_.transport.layers) != n) {
      throw std::invalid_argument(
          "Session: transport.layers must equal the simulcast clip's "
          "layer count");
    }
    sim_policy_ = !cfg_.simulcast.use_default_policy
                      ? cfg_.simulcast.policy
                  : cfg_.simulcast.conference
                      ? simulcast::conference_switch_policy(n)
                      : simulcast::default_switch_policy(n);
    // Sessions join on the top layer; the first picture's join path
    // (sim_layer_valid_ starts false) tunes the decoder to it.
    sim_selector_ = simulcast::LayerSelector(n, n - 1);
    c_layer_switches_ = &scope_.counter("serve.sim.layer_switches");
    c_layer_wait_ = &scope_.counter("serve.sim.wait_pictures");
    c_downswitch_sheds_ = &scope_.counter("serve.sim.downswitch_sheds");
    for (std::size_t l = 0; l < n; ++l) {
      const std::string prefix = "serve.sim.layer" + std::to_string(l);
      c_layer_pictures_[l] = &scope_.counter(prefix + ".pictures");
      c_layer_bytes_[l] = &scope_.counter(prefix + ".bytes");
    }
  }

  if (cfg_.transport.enabled) {
    link_ = std::make_unique<net::TransportLink>(cfg_.transport, &fault_plan_,
                                                 &fault_counts_);
    c_packets_sent_ = &scope_.counter("serve.net.packets_sent");
    c_packets_lost_ = &scope_.counter("serve.net.packets_lost");
    c_packets_recovered_ = &scope_.counter("serve.net.packets_recovered");
    c_nals_lost_ = &scope_.counter("serve.net.nals_lost");
  }

  pipeline_.set_window_sink(
      [this](double t_end, std::span<const double> window) {
        on_window(t_end, window);
      });
}

void Session::fill_chunk(std::vector<double>& chunk) {
  for (double& sample : chunk) {
    const ScriptSegment* seg = &script_[script_idx_];
    std::size_t total_n = seg->speech_samples + seg->silence_samples;
    while (script_offset_ >= total_n) {
      script_offset_ = 0;
      script_idx_ = (script_idx_ + 1) % script_.size();
      seg = &script_[script_idx_];
      total_n = seg->speech_samples + seg->silence_samples;
    }
    if (script_offset_ < seg->speech_samples) {
      const std::span<const double> utt = env_.workload->utterance(seg->emotion);
      sample = utt[script_offset_ % utt.size()];
    } else {
      sample = 0.0;
    }
    ++script_offset_;
  }
}

void Session::update_rung(int ladder_pressure) {
  const LadderConfig* lc = env_.ladder;
  if (lc == nullptr || !lc->enabled) return;
  // Eligibility from the session's own emotion stability: the ladder
  // spends precision where the signal is volatile and saves it where
  // recent classifications were confident and calm.
  int eligible = 0;
  if (conf_ema_ >= lc->conf_int8 && calm_results_ >= lc->calm_windows) {
    eligible = 1;
  }
  if (conf_ema_ >= lc->conf_hdc && calm_results_ >= 2 * lc->calm_windows) {
    eligible = 2;
  }
  const int target = std::min({ladder_pressure, eligible,
                               static_cast<int>(env_.max_rung)});
  const int cur = static_cast<int>(rung_);
  if (target == cur) return;
  // Dwell hysteresis on the local clock: one step per move, no move
  // inside the dwell window — a session cannot flap between rungs
  // faster than hysteresis_ticks, whatever the backlog does.
  if (local_tick_ - last_rung_change_ < lc->hysteresis_ticks) return;
  rung_ = static_cast<Rung>(cur + (target > cur ? 1 : -1));
  last_rung_change_ = local_tick_;
  ++stats_.rung_switches;
  if (cfg_.record_trace) rung_trace_.emplace_back(local_tick_, rung_);
}

void Session::pump_audio(std::uint64_t tick, int ladder_pressure) {
  ++stats_.ticks;
  current_tick_ = tick;
  // A tick that delivers no audio (stall, dropped chunk) is silence to
  // the active-speaker detector.
  last_energy_ = 0.0;
  // Rung chosen before any audio is pushed, so every window this tick
  // stages (the sink fires inside push_audio) carries one rung.
  update_rung(ladder_pressure);
  if (fault_plan_.enabled()) {
    if (stall_remaining_ > 0) {
      // Injected stall: media time passes, no audio arrives.  The
      // pipeline sees the gap when audio resumes and resyncs.
      --stall_remaining_;
      ++stats_.stall_ticks;
      return;
    }
    if (fault_plan_.next(fault::kind_bit(fault::FaultKind::kSessionStall))) {
      fault_counts_.record(fault::FaultKind::kSessionStall);
      c_faults_->add(1);
      // 1-3 s of media time at the default 0.1 s tick — long enough to
      // exceed the pipeline's gap tolerance sometimes, not always.
      stall_remaining_ = 9 + fault_plan_.draw(21);
      ++stats_.stall_ticks;
      return;
    }
  }
  fill_chunk(chunk_);
  if (fault_plan_.enabled()) {
    const std::uint64_t before = fault_counts_.total;
    if (!fault::maybe_fault_audio(chunk_, fault_plan_, fault_counts_)) {
      c_faults_->add(1);
      ++stats_.chunks_dropped;
      c_chunks_dropped_->add(1);
      return;  // capture gap: the chunk never reaches the pipeline
    }
    if (fault_counts_.total != before) c_faults_->add(1);
  }
  // Active-speaker observation: mean-square energy of the chunk that
  // actually reaches the pipeline (post-fault, so a zeroed chunk reads
  // as silence — the detector hears what the pipeline hears).
  if (!chunk_.empty()) {
    double acc = 0.0;
    for (double s : chunk_) acc += s * s;
    last_energy_ = acc / static_cast<double>(chunk_.size());
  }
  // Media time runs on the *local* clock: under compat scheduling it
  // equals the server tick, under wheel scheduling it advances only on
  // ticks that run, so idle phases never appear as capture gaps.
  samples_pushed_ += chunk_.size();
  pipeline_.push_audio(static_cast<double>(local_tick_) * cfg_.tick_s, chunk_);
}

// The pipeline emits windows after the whole chunk is buffered, so
// every window this push produces ends exactly at samples_pushed_ —
// which pins the window's absolute script position for cached_row().
const nn::Matrix& Session::extract_features(std::span<const double> window) {
  if (use_cache_) {
    const FeatureBankCache& cache = *env_.feature_cache;
    const std::size_t hop = cache.hop();
    const std::size_t frame_len = cache.frame_len();
    const std::size_t start_abs = samples_pushed_ - window.size();
    if (window.size() <= samples_pushed_ && start_abs % hop == 0) {
      fx_.prepare_workspace(fx_ws_);
      nn::Matrix& out = fx_ws_.features;
      const std::size_t frames =
          signal::frame_count(window.size(), frame_len, hop);
      const std::size_t T = std::min(frames, fx_.timesteps());
      for (std::size_t t = 0; t < T; ++t) {
        const std::span<float> row = out.row(t);
        if (t * hop + frame_len <= window.size() &&
            cached_row(start_abs + t * hop, row)) {
          ++stats_.feature_rows_cached;
          continue;
        }
        // Boundary (or zero-padded tail) frame: compute live, exactly
        // as extract_into() would.
        signal::copy_frame(window, t, hop, fx_ws_.frame);
        fx_.compute_frame_row(fx_ws_.frame, row, fx_ws_);
        ++stats_.feature_rows_live;
      }
      fx_.standardize_rows(out, T);
      return out;
    }
  }
  return fx_.extract_into(window, fx_ws_);
}

bool Session::cached_row(std::size_t abs, std::span<float> row) const {
  const FeatureBankCache& cache = *env_.feature_cache;
  const std::size_t frame_len = cache.frame_len();
  const std::size_t o = abs % script_len_;
  if (o + frame_len > script_len_) return false;  // wraps the script pass
  const auto it = std::upper_bound(seg_start_.begin(), seg_start_.end(), o);
  const std::size_t s = static_cast<std::size_t>(it - seg_start_.begin()) - 1;
  const ScriptSegment& seg = script_[s];
  const std::size_t rel = o - seg_start_[s];
  if (rel < seg.speech_samples) {
    // Interior-speech frame: the speech span plays the banked utterance
    // looped modulo its length, so the row is a pure function of the
    // phase within the utterance.
    if (o + frame_len > seg_start_[s] + seg.speech_samples) return false;
    const std::span<const float> src = cache.speech_row(
        seg.emotion, rel % cache.utterance_len(seg.emotion));
    std::memcpy(row.data(), src.data(), src.size() * sizeof(float));
    return true;
  }
  if (o + frame_len > seg_start_[s + 1]) return false;
  const std::span<const float> src = cache.silence_row();
  std::memcpy(row.data(), src.data(), src.size() * sizeof(float));
  return true;
}

void Session::on_window(double t_end, std::span<const double> window) {
  const nn::Matrix& features = extract_features(window);
  ++stats_.windows_enqueued;
  c_windows_->add(1);
  if (inline_inference_) {
    // Standalone reference path: classify at the sink, exactly where a
    // non-served pipeline would.
    record_result(next_seq_++, t_end,
                  env_.classifier->classify_features(features));
    return;
  }
  if (staged_count_ == staged_.size()) staged_.emplace_back();
  InferenceRequest& req = staged_[staged_count_++];
  req.session = id_;
  req.seq = next_seq_++;
  req.enqueue_tick = current_tick_;
  req.t_end = t_end;
  req.set_features(features, env_.feature_pool);
  req.rung = rung_;
  switch (rung_) {
    case Rung::kFp32: ++stats_.windows_fp32; break;
    case Rung::kInt8: ++stats_.windows_int8; break;
    case Rung::kHdc:  ++stats_.windows_hdc;  break;
  }
  // Approximate storage: the staged copy (the bytes that sit in the
  // pool and feed inference) is bit-truncated; bits == 0 — the default
  // — touches nothing, which the byte-identity tests pin.
  if (env_.ladder != nullptr && env_.ladder->truncate_bits > 0) {
    nn::truncate_mantissa(
        {reinterpret_cast<float*>(req.features.data()), req.size()},
        env_.ladder->truncate_bits);
  }
}

std::vector<InferenceRequest> Session::take_staged() {
  inflight_ += staged_count_;
  std::vector<InferenceRequest> out;
  out.reserve(staged_count_);
  for (std::size_t i = 0; i < staged_count_; ++i) {
    out.push_back(std::move(staged_[i]));
  }
  staged_count_ = 0;
  return out;
}

void Session::drain_staged(InferenceBatcher& b) {
  inflight_ += staged_count_;
  for (std::size_t i = 0; i < staged_count_; ++i) {
    b.enqueue(std::move(staged_[i]));
  }
  staged_count_ = 0;
}

void Session::apply_result(const RoutedResult& r) {
  if (inflight_ == 0) {
    throw std::logic_error("Session: result applied with nothing in flight");
  }
  --inflight_;
  record_result(r.seq, r.t_end, r.result);
}

void Session::record_result(std::uint64_t seq, double t_end,
                            const affect::ClassificationResult& res) {
  if (cfg_.record_trace) {
    windows_.push_back(WindowRecord{seq, t_end, res.emotion, res.confidence,
                                    res.probabilities});
  }
  ++stats_.results_applied;
  // Ladder stability inputs (pure bookkeeping: nothing downstream of
  // the classification reads these, so they are free to advance even
  // ladder-off).
  conf_ema_ = 0.75f * conf_ema_ + 0.25f * res.confidence;
  ++calm_results_;
  if (const auto stable = pipeline_.apply_label(t_end, res.emotion)) {
    if (cfg_.record_trace) stable_trace_.emplace_back(t_end, *stable);
    policy_mode_ = policy_.mode_for(*stable);
    if (kill_policy_) kill_policy_->set_emotion(*stable);
    ++stats_.mode_switches;
    c_mode_switches_->add(1);
    // A stable-emotion switch is volatility: the calm streak restarts,
    // pulling the session back toward the precise rungs.
    calm_results_ = 0;
  }
}

void Session::tick_media(std::uint64_t /*tick*/, int degrade_level) {
  const bool sim = cfg_.simulcast.enabled;
  // Simulcast sessions gain a degrade rung *below* NAL deletion: level 1
  // is downswitch-only (the policy sees pressure 1 but the decoder mode
  // is not forced yet), so the whole mode ladder shifts one level deeper.
  const int mode_level = sim ? std::max(0, degrade_level - 1) : degrade_level;
  effective_mode_ = adaptive::degraded_mode(policy_mode_, mode_level);
  frame_carry_ += cfg_.fps * cfg_.tick_s;
  const auto budget = static_cast<std::size_t>(frame_carry_);
  frame_carry_ -= static_cast<double>(budget);

  bool shed = degrade_level >= kFrameShedLevel;
  if (sim) shed = sim_request_layer(budget, degrade_level, shed);
  const adaptive::ModeConfig mc = adaptive::mode_config(
      effective_mode_, cfg_.selector.s_th, cfg_.selector.f);
  if (link_) {
    // Transport-fed media: under overload the *sender* sheds (nothing
    // is packetized, so shed frames cost no network bytes), but the
    // receive side still drains in-flight packets every tick.
    if (sim) {
      tick_sim_transport_media(shed ? 0 : budget, mc, local_tick_);
    } else {
      tick_transport_media(shed ? 0 : budget, mc, local_tick_);
    }
    if (shed) {
      stats_.frames_dropped += budget;
      c_frames_dropped_->add(budget);
    }
  } else if (shed) {
    // Every affect-adaptive knob is already exhausted at Combined;
    // beyond that the server sheds this tick's frames outright.
    stats_.frames_dropped += budget;
    c_frames_dropped_->add(budget);
  } else if (budget > 0) {
    if (sim) {
      decode_sim_pictures(budget, mc);
    } else {
      decode_pictures(budget, mc);
    }
  }
  if (sim) sim_sync_counters();

  if (pm_ && cfg_.app_launch_period_ticks != 0 &&
      local_tick_ % cfg_.app_launch_period_ticks == 0) {
    std::uniform_int_distribution<std::size_t> pick(0,
                                                    env_.catalog->size() - 1);
    pm_->launch((*env_.catalog)[pick(app_rng_)].id,
                static_cast<double>(local_tick_) * cfg_.tick_s);
    ++stats_.app_launches;
  }
  ++local_tick_;
}

void Session::decode_pictures(std::size_t budget,
                              const adaptive::ModeConfig& mc) {
  const std::vector<h264::NalUnit>& nals = env_.workload->nal_units();
  decoder_.set_deblock_enabled(mc.deblock);
  std::size_t pictures = 0;

  // Decodes one (possibly faulted) unit.  Every slice consumes its
  // display slot whether it decoded, erred or was skipped during
  // resync — a fault storm must not stall the tick loop.
  const auto decode_one = [&](const h264::NalUnit& unit) {
    if (decode_unit(unit)) ++pictures;
  };

  while (pictures < budget) {
    if (nal_cursor_ >= nals.size()) {
      // Loop the clip with fresh decoder/selector state so every pass
      // is decoded the same way (mode changes aside).
      nal_cursor_ = 0;
      decoder_.reset(h264::DecoderConfig{mc.deblock, /*resilient=*/true});
      selector_.reset();
    }
    const h264::NalUnit& nal = nals[nal_cursor_++];
    const bool slice = h264::is_slice(nal);
    if (slice && mc.delete_nals && !selector_.keeps(nal)) {
      ++stats_.nals_deleted;
      c_nals_deleted_->add(1);
      ++pictures;  // the deleted picture consumed its display slot
      continue;
    }
    if (fault_plan_.enabled()) {
      if (auto faulted =
              fault::maybe_fault_nal(nal, fault_plan_, fault_counts_)) {
        c_faults_->add(1);
        for (const h264::NalUnit& u : *faulted) decode_one(u);
        continue;
      }
    }
    decode_one(nal);
  }
}

// Decodes one unit, digesting decoded pixels.  Returns true when the
// unit consumed a display slot (every slice does — decoded, erred or
// skipped during resync).
bool Session::decode_unit(const h264::NalUnit& unit) {
  const std::uint64_t errs_before = decoder_.activity().nal_errors;
  if (auto pic = decoder_.decode_nal(unit)) {
    fnv_plane(digest_, pic->frame.y);
    fnv_plane(digest_, pic->frame.cb);
    fnv_plane(digest_, pic->frame.cr);
    decoder_.recycle(std::move(pic->frame));
    ++stats_.frames_decoded;
    c_frames_->add(1);
    return true;
  }
  if (h264::is_slice(unit)) {
    ++stats_.pictures_lost;
    if (decoder_.activity().nal_errors != errs_before) {
      ++stats_.decode_errors;
      c_decode_errors_->add(1);
    }
    return true;
  }
  return false;
}

// Transport-fed media tick: packetize `slots` display slots of the
// shared clip onto the link, then decode everything the network
// released at this tick.  Per-tick fault consultation order (see the
// SessionManager::tick contract): the net sites here run after stage
// A's stall/audio sites and before the receive side's per-NAL
// bitstream sites, all on this session's one plan.
void Session::tick_transport_media(std::size_t slots,
                                   const adaptive::ModeConfig& mc,
                                   std::uint64_t tick) {
  const std::vector<h264::NalUnit>& nals = env_.workload->nal_units();

  // Sender.  The Input Selector's NAL deletion happens here — sender-
  // side shedding — so a deleted slice never costs network bytes; any
  // parameter sets in front of it still ship.
  // Access units assemble into a reused ring (payload capacity kept
  // across ticks), so the steady-state sender never allocates.
  const auto append_au = [&](const h264::NalUnit& nal) {
    if (au_count_ < au_.size()) {
      au_[au_count_] = nal;  // copy-assign reuses payload capacity
    } else {
      au_.push_back(nal);
    }
    ++au_count_;
  };

  std::size_t sent_slots = 0;
  while (sent_slots < slots) {
    if (nal_cursor_ >= nals.size()) {
      // Clip wrap: new generation, fresh selector.  The receiver swaps
      // in a fresh decoder when it sees the generation change, so the
      // wrap behaves exactly like the in-process path's reset.
      nal_cursor_ = 0;
      ++send_gen_;
      send_au_ = 0;
      selector_.reset();
    }
    au_count_ = 0;
    bool have_slice = false;
    while (nal_cursor_ < nals.size()) {
      const h264::NalUnit& nal = nals[nal_cursor_++];
      if (!h264::is_slice(nal)) {
        append_au(nal);
        continue;
      }
      have_slice = true;
      if (mc.delete_nals && !selector_.keeps(nal)) {
        ++stats_.nals_deleted;
        c_nals_deleted_->add(1);
        break;  // slice shed before packetization
      }
      append_au(nal);
      break;
    }
    if (au_count_ > 0) {
      link_->send(std::span<const h264::NalUnit>(au_.data(), au_count_),
                  send_au_, send_gen_, tick);
    }
    ++send_au_;
    if (have_slice) ++sent_slots;
  }

  // Receiver: decode in release order.  Declared losses reach the
  // decoder as resync cues — a dropped packet yields *missing* data,
  // not malformed data, so without notify_loss it would drift silently.
  decoder_.set_deblock_enabled(mc.deblock);
  for (const net::DepacketizerEvent& ev : link_->receive(tick)) {
    if (ev.loss) {
      decoder_.notify_loss();
      ++stats_.nals_lost;
      c_nals_lost_->add(1);
      continue;
    }
    if (ev.nal.generation != rx_gen_) {
      rx_gen_ = ev.nal.generation;
      decoder_.reset(h264::DecoderConfig{mc.deblock, /*resilient=*/true});
    }
    const h264::NalUnit& nal = ev.nal.nal;
    if (fault_plan_.enabled()) {
      if (auto faulted =
              fault::maybe_fault_nal(nal, fault_plan_, fault_counts_)) {
        c_faults_->add(1);
        for (const h264::NalUnit& u : *faulted) decode_unit(u);
        continue;
      }
    }
    decode_unit(nal);
  }

  // Roll link totals into the stats block (obs counters get deltas —
  // stats_ still holds the previous tick's totals here).
  const net::TransportStats ts = link_->stats();
  const std::uint64_t sent = ts.packets_sent + ts.parity_sent;
  c_packets_sent_->add(sent - stats_.packets_sent);
  c_packets_lost_->add(ts.packets_lost - stats_.packets_lost);
  c_packets_recovered_->add(ts.packets_recovered - stats_.packets_recovered);
  stats_.packets_sent = sent;
  stats_.packets_lost = ts.packets_lost;
  stats_.packets_recovered = ts.packets_recovered;
}

// Evaluates the switch policy over this tick's context and applies the
// downswitch-before-shed override: a shed verdict from the server first
// becomes a request for the bottom layer, and only a session already
// locked there (switch complete, nothing pending) actually drops frames.
bool Session::sim_request_layer(std::size_t budget, int degrade_level,
                                bool shed) {
  simulcast::ContextVector ctx;
  ctx.pressure = degrade_level;
  if (link_) {
    const net::TransportStats ts = link_->stats();
    const std::uint64_t sent = ts.packets_sent + ts.parity_sent;
    ctx.loss_rate = sent != 0 ? static_cast<double>(ts.packets_lost) /
                                    static_cast<double>(sent)
                              : 0.0;
  }
  const power::DeviceState dev =
      power::device_state_at(cfg_.simulcast.device, local_tick_);
  ctx.battery = dev.battery;
  ctx.thermal_headroom = dev.thermal_headroom;
  ctx.speaker_role = speaker_role_;
  sim_selector_.request(
      sim_policy_.target_layer(policy_mode_, ctx, sim_clip_->layer_count()));
  if (shed) {
    if (sim_selector_.current() == 0 && !sim_selector_.waiting()) return true;
    sim_selector_.request(0);
    stats_.frames_downswitched += budget;
    c_downswitch_sheds_->add(budget);
    return false;
  }
  return shed;
}

// One picture boundary of the aligned clip: wraps the loop, runs the
// selector, and handles layer joins.  In-process joins retune the
// decoder (reset + parameter sets) here; transport joins only update
// the selector state — the caller ships the new layer's parameter sets
// in the same access unit so the receiver can retune.
std::size_t Session::sim_advance_picture(const adaptive::ModeConfig& mc,
                                         bool transport, bool& joined) {
  joined = false;
  if (sim_pic_ >= sim_clip_->pictures()) {
    // Clip wrap: fresh selector cadence and (in-process) decoder state,
    // exactly like the single-stream paths; the transport side bumps
    // the generation so the receiver resets on arrival.
    sim_pic_ = 0;
    sim_layer_valid_ = false;
    selector_.reset();
    if (transport) {
      ++send_gen_;
      send_au_ = 0;
    } else {
      decoder_.reset(h264::DecoderConfig{mc.deblock, /*resilient=*/true});
    }
  }
  const bool idr = sim_clip_->idr_at(sim_pic_);
  const std::size_t layer = sim_selector_.on_picture(idr);
  if (!sim_layer_valid_ || layer != sim_cur_layer_) {
    joined = true;
    sim_cur_layer_ = layer;
    sim_layer_valid_ = true;
    // Deletion thresholds are layer-relative: S_th calibrated for the
    // top layer rescales by this layer's mean P/B slice size.
    selector_.set_layer_scale(sim_clip_->selector_scale(layer));
    if (cfg_.record_trace) {
      layer_trace_.emplace_back(sim_pic_global_,
                                static_cast<std::uint8_t>(layer));
    }
    if (!transport) {
      decoder_.reset(h264::DecoderConfig{mc.deblock, /*resilient=*/true});
      for (const h264::NalUnit& p : sim_clip_->layer(layer).params) {
        decode_unit(p);
      }
    }
  }
  return layer;
}

void Session::decode_sim_pictures(std::size_t budget,
                                  const adaptive::ModeConfig& mc) {
  decoder_.set_deblock_enabled(mc.deblock);
  // Each walked picture index consumes exactly one display slot —
  // deleted, faulted or decoded — so a switch storm cannot stall the
  // tick loop.
  for (std::size_t pictures = 0; pictures < budget; ++pictures) {
    bool joined = false;  // in-process joins are handled inside
    const std::size_t layer = sim_advance_picture(mc, /*transport=*/false,
                                                  joined);
    const h264::NalUnit& nal = sim_clip_->layer(layer).slices[sim_pic_];
    ++sim_pic_;
    ++sim_pic_global_;
    ++stats_.layer_pictures[layer];
    c_layer_pictures_[layer]->add(1);
    if (mc.delete_nals && !selector_.keeps(nal)) {
      ++stats_.nals_deleted;
      c_nals_deleted_->add(1);
      continue;
    }
    stats_.layer_bytes[layer] += nal.byte_size();
    c_layer_bytes_[layer]->add(nal.byte_size());
    if (fault_plan_.enabled()) {
      if (auto faulted =
              fault::maybe_fault_nal(nal, fault_plan_, fault_counts_)) {
        c_faults_->add(1);
        for (const h264::NalUnit& u : *faulted) decode_unit(u);
        continue;
      }
    }
    decode_unit(nal);
  }
}

// Simulcast transport tick: the sender walks the aligned clip picture
// by picture, forwarding the selected layer on its own lane (per-layer
// sequence space), and the receiver follows lane changes at decodable
// entry points.  Layer_bytes counts exactly the slice bytes handed to
// the packetizer — the bytes-on-wire the benches compare against
// deletion-only shedding.
void Session::tick_sim_transport_media(std::size_t slots,
                                       const adaptive::ModeConfig& mc,
                                       std::uint64_t tick) {
  const auto append_au = [&](const h264::NalUnit& nal) {
    if (au_count_ < au_.size()) {
      au_[au_count_] = nal;  // copy-assign reuses payload capacity
    } else {
      au_.push_back(nal);
    }
    ++au_count_;
  };

  for (std::size_t sent_slots = 0; sent_slots < slots; ++sent_slots) {
    bool joined = false;
    const std::size_t layer = sim_advance_picture(mc, /*transport=*/true,
                                                  joined);
    const h264::NalUnit& nal = sim_clip_->layer(layer).slices[sim_pic_];
    ++sim_pic_;
    ++sim_pic_global_;
    ++stats_.layer_pictures[layer];
    c_layer_pictures_[layer]->add(1);
    au_count_ = 0;
    if (joined) {
      // New lane (or new generation): ship the layer's parameter sets
      // in front of the slice so the receiver can retune mid-stream.
      for (const h264::NalUnit& p : sim_clip_->layer(layer).params) {
        append_au(p);
      }
    }
    if (mc.delete_nals && !selector_.keeps(nal)) {
      ++stats_.nals_deleted;
      c_nals_deleted_->add(1);
    } else {
      append_au(nal);
      stats_.layer_bytes[layer] += nal.byte_size();
      c_layer_bytes_[layer]->add(nal.byte_size());
    }
    if (au_count_ > 0) {
      link_->send(std::span<const h264::NalUnit>(au_.data(), au_count_),
                  send_au_, send_gen_, tick, static_cast<std::uint8_t>(layer));
    }
    ++send_au_;
  }

  // Receiver: decode in release order, following the sender's lane.
  // Packets from a lane the decoder is not tuned to are adopted only at
  // a decodable entry point (SPS or IDR slice — exactly what the sender
  // ships on a join); anything else from a stale lane is skipped, as
  // are its loss events — a loss on a lane we stopped watching is not a
  // resync cue.
  decoder_.set_deblock_enabled(mc.deblock);
  for (const net::DepacketizerEvent& ev : link_->receive(tick)) {
    if (ev.loss) {
      if (!rx_layer_valid_ || ev.nal.layer != rx_layer_) continue;
      decoder_.notify_loss();
      ++stats_.nals_lost;
      c_nals_lost_->add(1);
      continue;
    }
    const h264::NalUnit& nal = ev.nal.nal;
    if (!rx_layer_valid_ || ev.nal.layer != rx_layer_) {
      const bool entry = nal.type == h264::NalType::kSps ||
                         nal.type == h264::NalType::kSliceIdr;
      if (!entry) continue;
      rx_layer_ = ev.nal.layer;
      rx_layer_valid_ = true;
      rx_gen_ = ev.nal.generation;
      decoder_.reset(h264::DecoderConfig{mc.deblock, /*resilient=*/true});
    } else if (ev.nal.generation != rx_gen_) {
      rx_gen_ = ev.nal.generation;
      decoder_.reset(h264::DecoderConfig{mc.deblock, /*resilient=*/true});
    }
    if (fault_plan_.enabled()) {
      if (auto faulted =
              fault::maybe_fault_nal(nal, fault_plan_, fault_counts_)) {
        c_faults_->add(1);
        for (const h264::NalUnit& u : *faulted) decode_unit(u);
        continue;
      }
    }
    decode_unit(nal);
  }

  const net::TransportStats ts = link_->stats();
  const std::uint64_t sent = ts.packets_sent + ts.parity_sent;
  c_packets_sent_->add(sent - stats_.packets_sent);
  c_packets_lost_->add(ts.packets_lost - stats_.packets_lost);
  c_packets_recovered_->add(ts.packets_recovered - stats_.packets_recovered);
  stats_.packets_sent = sent;
  stats_.packets_lost = ts.packets_lost;
  stats_.packets_recovered = ts.packets_recovered;
}

void Session::sim_sync_counters() {
  const simulcast::LayerSelectorStats& st = sim_selector_.stats();
  c_layer_switches_->add(st.switches_completed - stats_.layer_switches);
  c_layer_wait_->add(st.pictures_waited - stats_.layer_wait_pictures);
  stats_.layer_switches = st.switches_completed;
  stats_.layer_wait_pictures = st.pictures_waited;
}

SessionReport Session::report() const {
  SessionReport rep;
  rep.session_id = id_;
  rep.windows = windows_;
  rep.stable_trace = stable_trace_;
  rep.rung_trace = rung_trace_;
  rep.layer_trace = layer_trace_;
  if (cfg_.simulcast.enabled) rep.layer_selector = sim_selector_.stats();
  rep.decode_digest = digest_;
  rep.stats = stats_;
  rep.realtime = pipeline_.stats();
  if (pm_) rep.apps = pm_->metrics();
  if (link_) rep.transport = link_->stats();
  return rep;
}

}  // namespace affectsys::serve
