// Cross-session inference batcher: coalesces pending classifier
// windows from many sessions into one stacked GEMM.
//
// The PR 3 micro-kernel made a single-window forward fast; what it
// cannot do from inside one session is amortize the weight-matrix
// traffic — a (1 x 1088) x (1088 x 416) product streams 1.8 MB of
// weights from L2/L3 for 0.9 MFLOP of work.  Stacking B windows from B
// sessions into a (B x 1088) activation matrix re-uses every weight
// read across the kernel's 4-row register block, which is where the
// batched-vs-per-session throughput win in BENCH_serve.json comes
// from.
//
// Correctness contract: a batch row's result is bit-identical to
// AffectClassifier::classify_features() on the same feature matrix.
// This holds because (a) Flatten is a row-major copy, so batch row i is
// exactly sample i's Flatten output, and (b) the GEMM kernel performs
// the identical per-output-element accumulation sequence regardless of
// how many rows the product has (see nn/matrix.cpp) — bias adds and
// activations are elementwise.  Models that are not Flatten-headed
// row-wise stacks (CNN/LSTM) fall back to per-window forward through
// the same queue, so the serving layer works for every ModelKind and
// batches where it is provably safe.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "affect/classifier.hpp"
#include "core/buffer_pool.hpp"
#include "nn/matrix.hpp"
#include "nn/model.hpp"
#include "nn/quantize.hpp"
#include "obs/metrics.hpp"
#include "serve/ladder.hpp"

namespace affectsys::serve {

/// Monotonically assigned session handle (never reused within one
/// SessionManager; reuse of capacity slots still mints a fresh id).
using SessionId = std::uint64_t;

/// One VAD-surviving window awaiting inference.  The feature matrix
/// travels as a refcounted pooled buffer (row-major rows x cols floats)
/// so staging a window moves a pointer instead of copying — and so the
/// steady-state serve path stays heap-allocation-free.
struct InferenceRequest {
  SessionId session = 0;
  std::uint64_t seq = 0;          ///< per-session window sequence number
  std::uint64_t enqueue_tick = 0; ///< server tick the window was staged
  double t_end = 0.0;             ///< media-time window end
  core::BufferRef features;       ///< rows*cols floats, row-major
  std::size_t rows = 0;           ///< timesteps
  std::size_t cols = 0;           ///< feature_dim
  /// Precision rung this window is served on (stamped by the session
  /// from the ladder state at staging time; kFp32 when the ladder is
  /// off).  Batches stay rung-homogeneous — see flush_into().
  Rung rung = Rung::kFp32;

  /// Copies a feature matrix into `features` (from `pool` when given,
  /// heap-backed otherwise).
  void set_features(const nn::Matrix& m, core::BufferPool* pool = nullptr) {
    rows = m.rows();
    cols = m.cols();
    const std::size_t bytes = rows * cols * sizeof(float);
    features = pool ? pool->acquire(bytes) : core::BufferRef::heap(bytes);
    std::memcpy(features.data(), m.flat().data(), bytes);
  }

  /// The row-major float view (exactly what Flatten would produce).
  std::span<const float> flat() const {
    return {reinterpret_cast<const float*>(features.data()), rows * cols};
  }
  std::size_t size() const { return rows * cols; }
};

/// A classified window routed back to its session.
struct RoutedResult {
  SessionId session = 0;
  std::uint64_t seq = 0;
  double t_end = 0.0;
  affect::ClassificationResult result;
};

struct BatcherConfig {
  /// Rows per batched forward; also the per-flush service capacity, so
  /// it bounds how fast the server drains backlog (the admission /
  /// shedding tests overload exactly this).
  std::size_t max_batch = 16;
  /// Flush deadline: a flush is due once the oldest pending window has
  /// waited this many ticks (0 = flush every tick something is
  /// pending — the single-session bit-exactness configuration).
  std::uint64_t max_delay_ticks = 1;
  /// False runs every window through an individual forward (the
  /// per-session baseline the bench compares against).
  bool batched = true;
  /// Metric namespace for this batcher's counters/histograms.  Empty
  /// resolves the legacy un-prefixed names ("serve.batch.flushes", ...);
  /// the sharded server sets "serve.shard<k>" so per-shard batchers
  /// publish distinct series.
  std::string obs_scope;
};

struct BatcherStats {
  std::uint64_t flushes = 0;
  std::uint64_t windows = 0;
  std::uint64_t batched_windows = 0;  ///< went through the stacked GEMM
  std::uint64_t forced_fallback_flushes = 0;  ///< fault-forced per-window path
  std::size_t max_batch_rows = 0;
  // Ladder rung breakdown (fp32 windows = windows - int8 - hdc).
  std::uint64_t windows_int8 = 0;
  std::uint64_t windows_hdc = 0;
};

class InferenceBatcher {
 public:
  /// The classifier must outlive the batcher.  Inference is serialized
  /// through flush(); the model's activation caches are never touched
  /// concurrently.  `ladder` carries the cheap-rung models (both null —
  /// the default — serves every window on fp32; a non-fp32 request with
  /// its model missing is a logic error, the server caps max_rung).
  InferenceBatcher(affect::AffectClassifier& classifier,
                   const BatcherConfig& cfg, const LadderRuntime& ladder = {});

  /// True when the model shape admits stacked-row batching (Flatten
  /// head followed by dense/elementwise layers only).
  bool batchable() const { return batchable_; }

  void enqueue(InferenceRequest req);
  std::size_t pending() const { return pending_.size() - head_; }

  /// True when a flush is due: the batch is full, or the oldest pending
  /// window has aged past the deadline.
  bool should_flush(std::uint64_t now_tick) const;

  /// Classifies up to min(max_batch, out.size()) pending windows (FIFO)
  /// into the caller's scratch, reusing each slot's probability-vector
  /// capacity, and returns how many results were written.  The
  /// steady-state serving path: no allocation once scratch is warm.
  /// Batches are rung-homogeneous: a flush serves the longest FIFO
  /// prefix sharing the head window's rung, so global FIFO order is
  /// preserved exactly (ladder-off queues are all-fp32 and the prefix
  /// is always the whole batch — the byte-identity path).
  std::size_t flush_into(std::span<RoutedResult> out);

  /// Allocating convenience wrapper over flush_into() (classifies up to
  /// max_batch pending windows, results in enqueue order).
  std::vector<RoutedResult> flush();

  /// Fault-injection hook: while set, flush() routes every window
  /// through the per-window fallback path even for batchable models.
  /// Results stay bit-identical (the batching contract), so a flaky
  /// batcher only costs throughput — which is exactly the degradation
  /// the fault suite exercises.
  void force_fallback(bool on) { force_fallback_ = on; }
  bool forced_fallback() const { return force_fallback_; }

  const BatcherStats& stats() const { return stats_; }
  const BatcherConfig& config() const { return cfg_; }

 private:
  /// Fills `out.result` from one logits row, reusing the probability
  /// vector's capacity.
  void row_result_into(std::span<const float> logits_row,
                       RoutedResult& out) const;

  affect::AffectClassifier& classifier_;
  BatcherConfig cfg_;
  LadderRuntime ladder_;
  bool batchable_ = false;
  bool force_fallback_ = false;
  /// FIFO as a vector plus a consumed-prefix cursor: flushes advance
  /// head_ and the buffer compacts (capacity kept) once drained or once
  /// the dead prefix dominates, so steady-state enqueue/flush never
  /// reallocates.
  std::vector<InferenceRequest> pending_;
  std::size_t head_ = 0;
  BatcherStats stats_;

  // Inference scratch, reused across flushes.
  nn::Matrix batch_;            ///< stacked flat rows
  nn::ForwardWorkspace ws_;     ///< forward_from_infer ping-pong
  nn::Matrix fallback_;         ///< per-window matrix for the full forward
  nn::QuantWorkspace qws_;      ///< int8-rung forward scratch
  affect::HdcWorkspace hws_;    ///< HDC-rung encode/classify scratch

  // Cached metric handles (one registry lookup each, at construction).
  obs::Counter* c_flushes_ = nullptr;
  obs::Counter* c_inferences_ = nullptr;
  obs::Counter* c_forced_fallbacks_ = nullptr;
  obs::Counter* c_int8_windows_ = nullptr;
  obs::Counter* c_hdc_windows_ = nullptr;
  obs::Histogram* h_rows_ = nullptr;
  obs::Histogram* h_infer_ns_ = nullptr;
};

}  // namespace affectsys::serve
