// Cross-session inference batcher: coalesces pending classifier
// windows from many sessions into one stacked GEMM.
//
// The PR 3 micro-kernel made a single-window forward fast; what it
// cannot do from inside one session is amortize the weight-matrix
// traffic — a (1 x 1088) x (1088 x 416) product streams 1.8 MB of
// weights from L2/L3 for 0.9 MFLOP of work.  Stacking B windows from B
// sessions into a (B x 1088) activation matrix re-uses every weight
// read across the kernel's 4-row register block, which is where the
// batched-vs-per-session throughput win in BENCH_serve.json comes
// from.
//
// Correctness contract: a batch row's result is bit-identical to
// AffectClassifier::classify_features() on the same feature matrix.
// This holds because (a) Flatten is a row-major copy, so batch row i is
// exactly sample i's Flatten output, and (b) the GEMM kernel performs
// the identical per-output-element accumulation sequence regardless of
// how many rows the product has (see nn/matrix.cpp) — bias adds and
// activations are elementwise.  Models that are not Flatten-headed
// row-wise stacks (CNN/LSTM) fall back to per-window forward through
// the same queue, so the serving layer works for every ModelKind and
// batches where it is provably safe.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "affect/classifier.hpp"
#include "nn/matrix.hpp"

namespace affectsys::serve {

/// Monotonically assigned session handle (never reused within one
/// SessionManager; reuse of capacity slots still mints a fresh id).
using SessionId = std::uint64_t;

/// One VAD-surviving window awaiting inference.
struct InferenceRequest {
  SessionId session = 0;
  std::uint64_t seq = 0;          ///< per-session window sequence number
  std::uint64_t enqueue_tick = 0; ///< server tick the window was staged
  double t_end = 0.0;             ///< media-time window end
  nn::Matrix features;            ///< (timesteps x feature_dim)
};

/// A classified window routed back to its session.
struct RoutedResult {
  SessionId session = 0;
  std::uint64_t seq = 0;
  double t_end = 0.0;
  affect::ClassificationResult result;
};

struct BatcherConfig {
  /// Rows per batched forward; also the per-flush service capacity, so
  /// it bounds how fast the server drains backlog (the admission /
  /// shedding tests overload exactly this).
  std::size_t max_batch = 16;
  /// Flush deadline: a flush is due once the oldest pending window has
  /// waited this many ticks (0 = flush every tick something is
  /// pending — the single-session bit-exactness configuration).
  std::uint64_t max_delay_ticks = 1;
  /// False runs every window through an individual forward (the
  /// per-session baseline the bench compares against).
  bool batched = true;
};

struct BatcherStats {
  std::uint64_t flushes = 0;
  std::uint64_t windows = 0;
  std::uint64_t batched_windows = 0;  ///< went through the stacked GEMM
  std::uint64_t forced_fallback_flushes = 0;  ///< fault-forced per-window path
  std::size_t max_batch_rows = 0;
};

class InferenceBatcher {
 public:
  /// The classifier must outlive the batcher.  Inference is serialized
  /// through flush(); the model's activation caches are never touched
  /// concurrently.
  InferenceBatcher(affect::AffectClassifier& classifier,
                   const BatcherConfig& cfg);

  /// True when the model shape admits stacked-row batching (Flatten
  /// head followed by dense/elementwise layers only).
  bool batchable() const { return batchable_; }

  void enqueue(InferenceRequest req);
  std::size_t pending() const { return pending_.size(); }

  /// True when a flush is due: the batch is full, or the oldest pending
  /// window has aged past the deadline.
  bool should_flush(std::uint64_t now_tick) const;

  /// Classifies up to max_batch pending windows (FIFO) and returns the
  /// routed results in (enqueue) order.
  std::vector<RoutedResult> flush();

  /// Fault-injection hook: while set, flush() routes every window
  /// through the per-window fallback path even for batchable models.
  /// Results stay bit-identical (the batching contract), so a flaky
  /// batcher only costs throughput — which is exactly the degradation
  /// the fault suite exercises.
  void force_fallback(bool on) { force_fallback_ = on; }
  bool forced_fallback() const { return force_fallback_; }

  const BatcherStats& stats() const { return stats_; }
  const BatcherConfig& config() const { return cfg_; }

 private:
  affect::ClassificationResult row_result(const nn::Matrix& logits_row) const;

  affect::AffectClassifier& classifier_;
  BatcherConfig cfg_;
  bool batchable_ = false;
  bool force_fallback_ = false;
  std::deque<InferenceRequest> pending_;
  BatcherStats stats_;
};

}  // namespace affectsys::serve
