#include "android/trace.hpp"

#include <algorithm>
#include <sstream>

namespace affectsys::android {

void Tracer::record(double time_s, TraceEventType type, AppId app,
                    std::string detail) {
  events_.push_back({time_s, type, app, std::move(detail)});
}

std::vector<ProcessSpan> Tracer::process_spans(double end_s) const {
  std::map<AppId, double> alive_since;
  std::vector<ProcessSpan> spans;
  for (const TraceEvent& e : events_) {
    switch (e.type) {
      case TraceEventType::kColdStart:
        if (!alive_since.contains(e.app)) alive_since[e.app] = e.time_s;
        break;
      case TraceEventType::kKill: {
        auto it = alive_since.find(e.app);
        if (it != alive_since.end()) {
          spans.push_back({e.app, it->second, e.time_s});
          alive_since.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }
  for (const auto& [app, since] : alive_since) {
    spans.push_back({app, since, end_s});
  }
  std::sort(spans.begin(), spans.end(), [](const auto& a, const auto& b) {
    return a.app != b.app ? a.app < b.app : a.start_s < b.start_s;
  });
  return spans;
}

std::string Tracer::render_timeline(const std::vector<App>& catalog,
                                    double end_s, int columns) const {
  const auto spans = process_spans(end_s);
  std::map<AppId, std::vector<const ProcessSpan*>> by_app;
  for (const auto& s : spans) by_app[s.app].push_back(&s);

  auto name_of = [&](AppId id) -> std::string {
    for (const App& a : catalog) {
      if (a.id == id) return a.name;
    }
    return "app_" + std::to_string(id);
  };

  std::ostringstream os;
  for (const auto& [app, app_spans] : by_app) {
    std::string row(static_cast<std::size_t>(columns), '.');
    for (const ProcessSpan* s : app_spans) {
      const int c0 = std::clamp(
          static_cast<int>(s->start_s / end_s * columns), 0, columns - 1);
      const int c1 = std::clamp(
          static_cast<int>(s->end_s / end_s * columns), c0, columns - 1);
      for (int c = c0; c <= c1; ++c) row[static_cast<std::size_t>(c)] = '=';
    }
    std::string name = name_of(app);
    name.resize(24, ' ');
    os << name << " |" << row << "|\n";
  }
  return os.str();
}

namespace {

std::string_view event_name(TraceEventType t) {
  switch (t) {
    case TraceEventType::kColdStart:
      return "cold_start";
    case TraceEventType::kWarmStart:
      return "warm_start";
    case TraceEventType::kKill:
      return "kill";
    case TraceEventType::kForeground:
      return "foreground";
    case TraceEventType::kEmotionChange:
      return "emotion_change";
    case TraceEventType::kCompress:
      return "compress";
    case TraceEventType::kDecompress:
      return "decompress";
  }
  return "unknown";
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

}  // namespace

std::string Tracer::to_json(const std::vector<App>& catalog) const {
  auto name_of = [&](AppId id) -> std::string {
    for (const App& a : catalog) {
      if (a.id == id) return a.name;
    }
    return "app_" + std::to_string(id);
  };
  std::ostringstream os;
  os << "[\n";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"ts\": " << static_cast<long long>(e.time_s * 1e6)
       << ", \"ph\": \"i\", \"name\": \"" << event_name(e.type)
       << "\", \"pid\": " << e.app << ", \"args\": {\"app\": \""
       << json_escape(e.app ? name_of(e.app) : std::string("system"))
       << "\", \"detail\": \"" << json_escape(e.detail) << "\"}}";
  }
  os << "\n]\n";
  return os.str();
}

std::size_t Tracer::count(TraceEventType type) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [&](const TraceEvent& e) { return e.type == type; }));
}

}  // namespace affectsys::android
