// Process and memory manager: the foreground/background service model of
// Fig 8 with a pluggable background-kill policy.
//
// Launch semantics follow Android: a launch of a cached background app is
// a warm start (no flash traffic); a launch of a dead app is a cold start
// that reads the app image from flash, allocates its resident set, and —
// when the process limit or RAM budget is exceeded — first kills victims
// chosen by the KillPolicy.  Protected apps and the current foreground
// app are never killed.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "android/catalog.hpp"
#include "android/flash.hpp"
#include "android/policy.hpp"
#include "android/trace.hpp"

namespace affectsys::android {

struct ProcessState {
  AppId app = 0;
  double loaded_at_s = 0.0;
  double last_used_s = 0.0;
  std::size_t launch_count = 0;
  bool foreground = false;
  /// Resident set swapped into compressed RAM (zram-style): the process
  /// survives at a fraction of its footprint but pays a decompress
  /// latency on its next foreground switch.
  bool compressed = false;
};

/// Aggregate loading metrics — the Fig 10 quantities.
struct LoadingMetrics {
  std::uint64_t cold_starts = 0;
  std::uint64_t warm_starts = 0;
  std::uint64_t kills = 0;
  /// "Total memory loaded at App start": flash image + allocated RAM,
  /// summed over cold starts.
  std::uint64_t memory_loaded_bytes = 0;
  /// "Total App loading time": flash read + fixed init, over cold starts.
  /// This is the user-visible wait; background prefetch work is tracked
  /// separately below.
  double loading_time_s = 0.0;
  double flash_energy_nj = 0.0;
  // Speculative background loads (the prefetch extension).
  std::uint64_t prefetches = 0;
  std::uint64_t prefetch_bytes = 0;
  double prefetch_time_s = 0.0;
  double prefetch_energy_nj = 0.0;
  // zram-style compression (the compression extension).
  std::uint64_t compressions = 0;
  std::uint64_t decompressions = 0;
  double compression_time_s = 0.0;  ///< CPU time spent (de)compressing
};

struct ProcessManagerConfig {
  std::size_t process_limit = 20;
  std::uint64_t ram_bytes = 4096ull * 1024 * 1024;
  /// RAM held by the OS and services, unavailable to apps.
  std::uint64_t reserved_bytes = 1024ull * 1024 * 1024;
  /// zram extension: under memory pressure, compress the victim's
  /// resident set instead of killing it (process-limit pressure still
  /// kills).  Off by default to match stock behaviour.
  bool compress_instead_of_kill = false;
  double compression_ratio = 0.35;   ///< compressed size / original
  double compress_mbps = 800.0;      ///< LZ4-class throughput
  double decompress_mbps = 2400.0;
};

class ProcessManager {
 public:
  ProcessManager(std::vector<App> catalog, ProcessManagerConfig cfg,
                 KillPolicy& policy, Tracer* tracer = nullptr);

  /// User opens an app at `time_s`.  Returns the cold-start cost, or an
  /// empty cost for warm starts.
  LoadCost launch(AppId app, double time_s);

  /// Speculatively loads an app into the background cache (no foreground
  /// switch, cost booked as prefetch work, not user wait).  Refuses —
  /// returning false — when the app is already resident, or when making
  /// room would require killing anything (prefetch must never evict).
  bool preload(AppId app, double time_s);

  bool is_running(AppId app) const { return running_.contains(app); }
  std::size_t running_count() const { return running_.size(); }
  /// Processes that count against the background process limit (protected
  /// system/persistent processes are exempt, as on Android).
  std::size_t killable_count() const;
  /// Background processes currently swapped into compressed RAM.
  std::size_t compressed_count() const;
  std::uint64_t used_ram() const;
  std::optional<AppId> foreground() const { return foreground_; }

  const LoadingMetrics& metrics() const { return metrics_; }
  const std::vector<App>& catalog() const { return catalog_; }
  const App& app_info(AppId id) const;

  /// Invariant checks (used by property tests): process limit respected,
  /// RAM budget respected, exactly one foreground process.
  bool invariants_hold() const;

 private:
  void make_room(std::uint64_t need_bytes, double time_s, AppId incoming);
  void kill(AppId app, double time_s, std::string_view reason);

  std::vector<App> catalog_;
  ProcessManagerConfig cfg_;
  KillPolicy& policy_;
  Tracer* tracer_;
  std::map<AppId, ProcessState> running_;
  std::map<AppId, std::size_t> lifetime_launches_;
  std::optional<AppId> foreground_;
  FlashStorage flash_;
  LoadingMetrics metrics_;
};

}  // namespace affectsys::android
