// Background-kill policies: which cached process dies when the process
// limit or memory budget is exceeded.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "android/app.hpp"

namespace affectsys::android {

/// Snapshot of one background process offered to the policy.
struct VictimCandidate {
  AppId app = 0;
  double loaded_at_s = 0.0;     ///< cold-start time of this residency
  double last_used_s = 0.0;     ///< most recent foreground time
  std::uint64_t memory_bytes = 0;
  std::size_t launch_count = 0; ///< lifetime launches of this app
};

class KillPolicy {
 public:
  virtual ~KillPolicy() = default;
  /// Picks the victim among candidates (never empty).  Returning nullopt
  /// means "refuse to kill" and the manager will evict the oldest as a
  /// last resort.
  virtual std::optional<AppId> select_victim(
      const std::vector<VictimCandidate>& candidates) = 0;
  virtual std::string_view name() const = 0;
};

/// Android-default-like behaviour per Section 5.2: "the system follows
/// mostly a first-in-first-out killing strategy".
class FifoKillPolicy : public KillPolicy {
 public:
  std::optional<AppId> select_victim(
      const std::vector<VictimCandidate>& candidates) override;
  std::string_view name() const override { return "fifo"; }
};

/// Least-recently-used alternative baseline.
class LruKillPolicy : public KillPolicy {
 public:
  std::optional<AppId> select_victim(
      const std::vector<VictimCandidate>& candidates) override;
  std::string_view name() const override { return "lru"; }
};

/// Emotion-agnostic frequency baseline: kill the least-launched app.
class FrequencyKillPolicy : public KillPolicy {
 public:
  std::optional<AppId> select_victim(
      const std::vector<VictimCandidate>& candidates) override;
  std::string_view name() const override { return "frequency"; }
};

}  // namespace affectsys::android
