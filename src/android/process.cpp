#include "android/process.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace affectsys::android {

ProcessManager::ProcessManager(std::vector<App> catalog,
                               ProcessManagerConfig cfg, KillPolicy& policy,
                               Tracer* tracer)
    : catalog_(std::move(catalog)),
      cfg_(cfg),
      policy_(policy),
      tracer_(tracer) {
  // Protected system processes boot with the device.
  for (const App& a : catalog_) {
    if (a.protected_from_kill) {
      running_[a.id] = {a.id, 0.0, 0.0, 0, false};
    }
  }
}

const App& ProcessManager::app_info(AppId id) const {
  const auto it =
      std::find_if(catalog_.begin(), catalog_.end(),
                   [&](const App& a) { return a.id == id; });
  if (it == catalog_.end()) {
    throw std::invalid_argument("ProcessManager: unknown app id");
  }
  return *it;
}

std::size_t ProcessManager::killable_count() const {
  std::size_t n = 0;
  for (const auto& [id, st] : running_) {
    n += app_info(id).protected_from_kill ? 0 : 1;
  }
  return n;
}

std::uint64_t ProcessManager::used_ram() const {
  std::uint64_t total = cfg_.reserved_bytes;
  for (const auto& [id, st] : running_) {
    const std::uint64_t full = app_info(id).memory_bytes;
    total += st.compressed
                 ? static_cast<std::uint64_t>(
                       static_cast<double>(full) * cfg_.compression_ratio)
                 : full;
  }
  return total;
}

std::size_t ProcessManager::compressed_count() const {
  std::size_t n = 0;
  for (const auto& [id, st] : running_) n += st.compressed ? 1 : 0;
  return n;
}

void ProcessManager::kill(AppId app, double time_s, std::string_view reason) {
  running_.erase(app);
  ++metrics_.kills;
  AFFECTSYS_COUNT("android.kills", 1);
  if (tracer_) {
    tracer_->record(time_s, TraceEventType::kKill, app, std::string(reason));
  }
}

void ProcessManager::make_room(std::uint64_t need_bytes, double time_s,
                               AppId incoming) {
  auto limit_pressure = [&] {
    return killable_count() + 1 > cfg_.process_limit;
  };
  auto ram_pressure = [&] {
    return used_ram() + need_bytes > cfg_.ram_bytes;
  };
  auto pick_victim =
      [&](bool uncompressed_only) -> std::optional<AppId> {
    std::vector<VictimCandidate> candidates;
    for (const auto& [id, st] : running_) {
      const App& a = app_info(id);
      if (a.protected_from_kill || st.foreground || id == incoming) continue;
      if (uncompressed_only && st.compressed) continue;
      candidates.push_back({id, st.loaded_at_s, st.last_used_s,
                            a.memory_bytes, st.launch_count});
    }
    if (candidates.empty()) return std::nullopt;
    std::optional<AppId> victim = policy_.select_victim(candidates);
    if (!victim) {
      // Last resort: FIFO.
      victim = std::min_element(candidates.begin(), candidates.end(),
                                [](const auto& a, const auto& b) {
                                  return a.loaded_at_s < b.loaded_at_s;
                                })
                   ->app;
    }
    return victim;
  };

  while (limit_pressure() || ram_pressure()) {
    // zram path: pure RAM pressure compresses before killing.
    if (cfg_.compress_instead_of_kill && !limit_pressure()) {
      if (const auto victim = pick_victim(/*uncompressed_only=*/true)) {
        ProcessState& st = running_[*victim];
        st.compressed = true;
        ++metrics_.compressions;
        metrics_.compression_time_s +=
            static_cast<double>(app_info(*victim).memory_bytes) /
            (cfg_.compress_mbps * 1e6);
        if (tracer_) {
          tracer_->record(time_s, TraceEventType::kCompress, *victim);
        }
        continue;
      }
      // Everything killable is already compressed: fall through to kill.
    }
    const auto victim = pick_victim(/*uncompressed_only=*/false);
    if (!victim) return;  // only protected processes remain
    kill(*victim, time_s, "pressure");
  }
}

LoadCost ProcessManager::launch(AppId app, double time_s) {
  AFFECTSYS_TIME_SCOPE("android.launch_ns");
  const App& info = app_info(app);
  ++lifetime_launches_[app];

  // Previous foreground app retreats to the background cache.
  if (foreground_ && running_.contains(*foreground_)) {
    running_[*foreground_].foreground = false;
  }

  LoadCost cost;
  if (auto it = running_.find(app); it != running_.end()) {
    // Warm start; a compressed resident set must be decompressed first.
    ++metrics_.warm_starts;
    AFFECTSYS_COUNT("android.warm_starts", 1);
    if (it->second.compressed) {
      it->second.compressed = false;
      ++metrics_.decompressions;
      if (tracer_) tracer_->record(time_s, TraceEventType::kDecompress, app);
      const double t_decompress =
          static_cast<double>(info.memory_bytes) /
          (cfg_.decompress_mbps * 1e6);
      metrics_.compression_time_s += t_decompress;
      metrics_.loading_time_s += t_decompress;  // user-visible stall
      cost.time_s += t_decompress;
      // Decompressing grows the footprint back: make room if needed.
      make_room(0, time_s, app);
    }
    it->second.last_used_s = time_s;
    it->second.launch_count = lifetime_launches_[app];
    it->second.foreground = true;
    if (tracer_) tracer_->record(time_s, TraceEventType::kWarmStart, app);
  } else {
    // Cold start: make room, then page in from flash and allocate.
    make_room(info.memory_bytes, time_s, app);
    cost = flash_.read_and_account(info.image_bytes);
    cost.time_s += info.init_time_s;
    ++metrics_.cold_starts;
    AFFECTSYS_COUNT("android.cold_starts", 1);
    AFFECTSYS_COUNT("android.memory_loaded_bytes",
                    info.image_bytes + info.memory_bytes);
    metrics_.memory_loaded_bytes += info.image_bytes + info.memory_bytes;
    metrics_.loading_time_s += cost.time_s;
    metrics_.flash_energy_nj += cost.energy_nj;
    running_[app] = {app, time_s, time_s, lifetime_launches_[app], true};
    if (tracer_) tracer_->record(time_s, TraceEventType::kColdStart, app);
  }
  foreground_ = app;
  if (tracer_) tracer_->record(time_s, TraceEventType::kForeground, app);
  return cost;
}

bool ProcessManager::preload(AppId app, double time_s) {
  const App& info = app_info(app);
  if (running_.contains(app)) return false;
  // Prefetch must be free of side effects on resident apps: only proceed
  // when both budgets have headroom without any eviction.
  if (killable_count() + 1 > cfg_.process_limit ||
      used_ram() + info.memory_bytes > cfg_.ram_bytes) {
    return false;
  }
  const LoadCost cost = flash_.read(info.image_bytes);
  ++metrics_.prefetches;
  metrics_.prefetch_bytes += info.image_bytes + info.memory_bytes;
  metrics_.prefetch_time_s += cost.time_s + info.init_time_s;
  metrics_.prefetch_energy_nj += cost.energy_nj;
  running_[app] = {app, time_s, time_s, lifetime_launches_[app], false};
  if (tracer_) {
    tracer_->record(time_s, TraceEventType::kColdStart, app, "prefetch");
  }
  return true;
}

bool ProcessManager::invariants_hold() const {
  if (killable_count() > cfg_.process_limit + 1) return false;  // +1: fg app
  if (used_ram() > cfg_.ram_bytes + (1ull << 30)) return false;
  std::size_t fg = 0;
  for (const auto& [id, st] : running_) fg += st.foreground ? 1 : 0;
  return fg <= 1;
}

}  // namespace affectsys::android
