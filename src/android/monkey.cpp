#include "android/monkey.hpp"

#include <algorithm>

#include "android/catalog.hpp"

namespace affectsys::android {

MonkeyScript::MonkeyScript(std::vector<App> catalog, MonkeyConfig cfg)
    : catalog_(std::move(catalog)), cfg_(cfg), rng_(cfg.seed) {}

AppId MonkeyScript::sample_app(const SubjectProfile& profile) {
  // Draw a category from the profile weights.
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  double r = unit(rng_);
  AppCategory chosen = AppCategory::kMessaging;
  for (const auto& [cat, w] : profile.category_weights) {
    if (r < w) {
      chosen = cat;
      break;
    }
    r -= w;
  }
  std::vector<AppId> apps = apps_in_category(catalog_, chosen);
  if (apps.empty()) {
    // Profile references a category with no installed app; fall back to
    // the first messaging app.
    apps = apps_in_category(catalog_, AppCategory::kMessaging);
  }
  // Zipf-like preference within the category, rotated by subject id so
  // different subjects favour different concrete apps.
  std::vector<double> weights(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const std::size_t rank =
        (i + static_cast<std::size_t>(profile.subject_id)) % apps.size();
    weights[i] = 1.0 / static_cast<double>(rank + 1);
  }
  std::discrete_distribution<std::size_t> pick(weights.begin(), weights.end());
  return apps[pick(rng_)];
}

std::vector<UsageEvent> MonkeyScript::generate(
    const affect::EmotionTimeline& timeline) {
  std::vector<UsageEvent> events;
  std::exponential_distribution<double> dwell(1.0 / cfg_.mean_dwell_s);
  double t = 0.0;
  const double end = timeline.duration_s();
  while (t < end) {
    const affect::Emotion e = timeline.at(t);
    const SubjectProfile& profile = profile_for_emotion(e);
    UsageEvent ev;
    ev.time_s = t;
    ev.app = sample_app(profile);
    ev.dwell_s = std::max(1.0, dwell(rng_));
    ev.emotion = e;
    events.push_back(ev);
    t += ev.dwell_s;
  }
  return events;
}

std::map<AppCategory, std::size_t> MonkeyScript::sample_category_histogram(
    const SubjectProfile& profile, std::size_t launches) {
  std::map<AppCategory, std::size_t> hist;
  for (std::size_t i = 0; i < launches; ++i) {
    const AppId id = sample_app(profile);
    const auto it = std::find_if(catalog_.begin(), catalog_.end(),
                                 [&](const App& a) { return a.id == id; });
    ++hist[it->category];
  }
  return hist;
}

}  // namespace affectsys::android
