#include "android/catalog.hpp"

#include <random>
#include <stdexcept>

namespace affectsys::android {
namespace {

struct CategoryPlan {
  AppCategory category;
  int count;                 ///< apps of this category to install
  double image_mb;           ///< nominal cold-start flash read
  double memory_mb;          ///< nominal resident set
  double init_s;             ///< fixed start latency
  bool protected_from_kill;  ///< survives background pressure
};

// 44 apps total; mixes follow the category shares visible in Fig 7.
constexpr CategoryPlan kPlan[] = {
    {AppCategory::kMessaging, 3, 90.0, 180.0, 0.35, true},
    {AppCategory::kInternetBrowser, 2, 160.0, 320.0, 0.50, false},
    {AppCategory::kSocialNetworks, 3, 170.0, 300.0, 0.55, false},
    {AppCategory::kEMail, 2, 80.0, 150.0, 0.30, false},
    {AppCategory::kCalling, 2, 60.0, 120.0, 0.25, true},
    {AppCategory::kMusicAudioRadio, 3, 100.0, 160.0, 0.40, false},
    {AppCategory::kPhoto, 2, 70.0, 140.0, 0.30, false},
    {AppCategory::kGallery, 2, 75.0, 160.0, 0.30, false},
    {AppCategory::kCamera, 2, 85.0, 200.0, 0.35, false},
    {AppCategory::kVideoApps, 3, 150.0, 280.0, 0.50, false},
    {AppCategory::kTv, 2, 140.0, 260.0, 0.50, false},
    {AppCategory::kShopping, 3, 120.0, 220.0, 0.45, false},
    {AppCategory::kSharingCloud, 2, 95.0, 170.0, 0.35, false},
    {AppCategory::kSharedTransport, 2, 110.0, 190.0, 0.40, false},
    {AppCategory::kCalculator, 1, 15.0, 40.0, 0.10, false},
    {AppCategory::kCalendarApps, 2, 45.0, 90.0, 0.20, false},
    {AppCategory::kTimerClocks, 2, 20.0, 50.0, 0.12, false},
    {AppCategory::kSettings, 2, 30.0, 80.0, 0.15, true},
    {AppCategory::kSystemApp, 3, 40.0, 100.0, 0.15, true},
    {AppCategory::kGames, 1, 250.0, 400.0, 0.70, false},
};

}  // namespace

std::vector<App> build_catalog(const EmulatorSpec& spec, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> jitter(0.8, 1.25);
  std::vector<App> catalog;
  AppId next_id = 1;
  for (const CategoryPlan& plan : kPlan) {
    for (int i = 0; i < plan.count; ++i) {
      App app;
      app.id = next_id++;
      app.name = std::string(category_name(plan.category)) + "_" +
                 std::to_string(i + 1);
      app.category = plan.category;
      app.image_bytes = static_cast<std::uint64_t>(
          plan.image_mb * jitter(rng) * 1024.0 * 1024.0);
      app.memory_bytes = static_cast<std::uint64_t>(
          plan.memory_mb * jitter(rng) * 1024.0 * 1024.0);
      app.init_time_s = plan.init_s * jitter(rng);
      app.protected_from_kill = plan.protected_from_kill;
      catalog.push_back(std::move(app));
    }
  }
  if (static_cast<int>(catalog.size()) != spec.total_apps) {
    throw std::logic_error("build_catalog: plan does not sum to total_apps");
  }
  return catalog;
}

std::vector<AppId> apps_in_category(const std::vector<App>& catalog,
                                    AppCategory c) {
  std::vector<AppId> out;
  for (const App& a : catalog) {
    if (a.category == c) out.push_back(a.id);
  }
  return out;
}

}  // namespace affectsys::android
