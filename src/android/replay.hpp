// Record/replay of usage workloads.
//
// Monkey-generated usage sequences can be saved as CSV and replayed
// later, so a management-policy comparison can run on the exact workload
// a bug report or prior experiment captured — the moral equivalent of
// shipping the paper's monkey script alongside the results.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "android/monkey.hpp"

namespace affectsys::android {

/// Writes events as CSV: time_s,app,dwell_s,emotion (header included).
void save_usage_events(std::ostream& os, std::span<const UsageEvent> events);

/// Parses a CSV produced by save_usage_events().
/// @throws std::runtime_error on malformed rows or unknown emotions
std::vector<UsageEvent> load_usage_events(std::istream& is);

}  // namespace affectsys::android
