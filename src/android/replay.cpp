#include "android/replay.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace affectsys::android {

void save_usage_events(std::ostream& os,
                       std::span<const UsageEvent> events) {
  os << "time_s,app,dwell_s,emotion\n";
  for (const UsageEvent& ev : events) {
    os << ev.time_s << ',' << ev.app << ',' << ev.dwell_s << ','
       << affect::emotion_name(ev.emotion) << '\n';
  }
}

std::vector<UsageEvent> load_usage_events(std::istream& is) {
  std::vector<UsageEvent> out;
  std::string line;
  bool first = true;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (first) {  // header
      first = false;
      if (line.rfind("time_s,", 0) != 0) {
        throw std::runtime_error("load_usage_events: missing CSV header");
      }
      continue;
    }
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string field;
    UsageEvent ev;
    try {
      std::getline(ls, field, ',');
      ev.time_s = std::stod(field);
      std::getline(ls, field, ',');
      ev.app = static_cast<AppId>(std::stoul(field));
      std::getline(ls, field, ',');
      ev.dwell_s = std::stod(field);
    } catch (const std::exception&) {
      throw std::runtime_error("load_usage_events: bad numeric field at line " +
                               std::to_string(line_no));
    }
    if (!std::getline(ls, field, ',')) {
      throw std::runtime_error("load_usage_events: truncated row at line " +
                               std::to_string(line_no));
    }
    const auto emotion = affect::emotion_from_name(field);
    if (!emotion) {
      throw std::runtime_error("load_usage_events: unknown emotion '" +
                               field + "' at line " + std::to_string(line_no));
    }
    ev.emotion = *emotion;
    out.push_back(ev);
  }
  return out;
}

}  // namespace affectsys::android
