#include "android/policy.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace affectsys::android {

std::optional<AppId> FifoKillPolicy::select_victim(
    const std::vector<VictimCandidate>& candidates) {
  AFFECTSYS_COUNT("android.victim_selections", 1);
  const auto it = std::min_element(
      candidates.begin(), candidates.end(),
      [](const auto& a, const auto& b) { return a.loaded_at_s < b.loaded_at_s; });
  return it == candidates.end() ? std::nullopt
                                : std::make_optional(it->app);
}

std::optional<AppId> LruKillPolicy::select_victim(
    const std::vector<VictimCandidate>& candidates) {
  AFFECTSYS_COUNT("android.victim_selections", 1);
  const auto it = std::min_element(
      candidates.begin(), candidates.end(),
      [](const auto& a, const auto& b) { return a.last_used_s < b.last_used_s; });
  return it == candidates.end() ? std::nullopt
                                : std::make_optional(it->app);
}

std::optional<AppId> FrequencyKillPolicy::select_victim(
    const std::vector<VictimCandidate>& candidates) {
  AFFECTSYS_COUNT("android.victim_selections", 1);
  const auto it = std::min_element(
      candidates.begin(), candidates.end(), [](const auto& a, const auto& b) {
        return a.launch_count != b.launch_count
                   ? a.launch_count < b.launch_count
                   : a.last_used_s < b.last_used_s;
      });
  return it == candidates.end() ? std::nullopt
                                : std::make_optional(it->app);
}

}  // namespace affectsys::android
