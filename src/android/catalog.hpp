// Builds the emulator's installed-app set: 44 apps across the Fig 7
// categories with realistic image/memory footprints.
#pragma once

#include <vector>

#include "android/app.hpp"

namespace affectsys::android {

/// Emulator configuration mirroring Fig 7 (right).
struct EmulatorSpec {
  int cpu_cores = 4;
  std::uint64_t ram_bytes = 4096ull * 1024 * 1024;  ///< 4096 MB
  std::uint64_t rom_bytes = 32ull * 1024 * 1024 * 1024;
  int total_apps = 44;
  int process_limit = 20;  ///< default Android background process limit
  int resolution_w = 1920;
  int resolution_h = 1080;
};

/// Deterministic 44-app catalog.  Per-category size ranges approximate
/// real Android apps (browsers and social apps are heavy, utilities are
/// light); a seed varies individual apps within those ranges.
std::vector<App> build_catalog(const EmulatorSpec& spec, unsigned seed = 2022);

/// Apps of one category within a catalog.
std::vector<AppId> apps_in_category(const std::vector<App>& catalog,
                                    AppCategory c);

}  // namespace affectsys::android
