#include "android/personality.hpp"

#include <stdexcept>

namespace affectsys::android {
namespace {

using C = AppCategory;

std::map<C, double> normalize(std::map<C, double> w) {
  double sum = 0.0;
  for (const auto& [c, v] : w) sum += v;
  for (auto& [c, v] : w) v /= sum;
  return w;
}

std::vector<SubjectProfile> build_subjects() {
  std::vector<SubjectProfile> subjects(4);

  // Subject 1: high agreeableness / willingness to trust — radio, sharing
  // cloud and TV/video apps stand out in the tail.
  subjects[0].subject_id = 1;
  subjects[0].trait_summary = "agreeableness / willingness to trust";
  subjects[0].scores = {0.55, 0.50, 0.45, 0.90, 0.55};
  subjects[0].emulated_emotion = affect::Emotion::kHappy;
  subjects[0].category_weights = normalize({
      {C::kMessaging, 0.38}, {C::kInternetBrowser, 0.27},
      {C::kMusicAudioRadio, 0.08}, {C::kSharingCloud, 0.07},
      {C::kTv, 0.05}, {C::kVideoApps, 0.04}, {C::kSocialNetworks, 0.03},
      {C::kEMail, 0.02}, {C::kPhoto, 0.02}, {C::kSettings, 0.01},
      {C::kCalling, 0.01}, {C::kCalendarApps, 0.01}, {C::kGallery, 0.01},
  });

  // Subject 2: median scores everywhere; flat tail over sharing cloud,
  // browsing and TV/video.
  subjects[1].subject_id = 2;
  subjects[1].trait_summary = "median / average";
  subjects[1].scores = {0.50, 0.50, 0.50, 0.50, 0.50};
  subjects[1].emulated_emotion = affect::Emotion::kNeutral;
  subjects[1].category_weights = normalize({
      {C::kMessaging, 0.35}, {C::kInternetBrowser, 0.30},
      {C::kSharingCloud, 0.06}, {C::kTv, 0.06}, {C::kVideoApps, 0.05},
      {C::kEMail, 0.04}, {C::kSocialNetworks, 0.04}, {C::kCamera, 0.03},
      {C::kGallery, 0.02}, {C::kSettings, 0.02}, {C::kTimerClocks, 0.02},
      {C::kCalculator, 0.01},
  });

  // Subject 3: high cheerfulness / positive mood ("excited") — calling and
  // shared transportation are elevated.
  subjects[2].subject_id = 3;
  subjects[2].trait_summary = "cheerfulness / happiness (excited)";
  subjects[2].scores = {0.60, 0.45, 0.85, 0.60, 0.70};
  subjects[2].emulated_emotion = affect::Emotion::kExcited;
  subjects[2].category_weights = normalize({
      {C::kMessaging, 0.34}, {C::kInternetBrowser, 0.26},
      {C::kCalling, 0.10}, {C::kSharedTransport, 0.08},
      {C::kSocialNetworks, 0.07}, {C::kCamera, 0.04}, {C::kPhoto, 0.03},
      {C::kMusicAudioRadio, 0.03}, {C::kShopping, 0.02},
      {C::kGallery, 0.02}, {C::kSettings, 0.01},
  });

  // Subject 4: median scores, calm / emotionally robust — very even tail.
  subjects[3].subject_id = 4;
  subjects[3].trait_summary = "calm / emotion robustness";
  subjects[3].scores = {0.50, 0.55, 0.45, 0.50, 0.80};
  subjects[3].emulated_emotion = affect::Emotion::kCalm;
  subjects[3].category_weights = normalize({
      {C::kMessaging, 0.36}, {C::kInternetBrowser, 0.28},
      {C::kEMail, 0.05}, {C::kCalendarApps, 0.04}, {C::kTimerClocks, 0.04},
      {C::kSettings, 0.04}, {C::kGallery, 0.04}, {C::kShopping, 0.04},
      {C::kMusicAudioRadio, 0.03}, {C::kCalculator, 0.03},
      {C::kSystemApp, 0.03}, {C::kVideoApps, 0.02},
  });
  return subjects;
}

const std::vector<SubjectProfile>& subjects_singleton() {
  static const std::vector<SubjectProfile> s = build_subjects();
  return s;
}

}  // namespace

std::vector<SubjectProfile> paper_subjects() { return subjects_singleton(); }

const SubjectProfile& subject(int id) {
  if (id < 1 || id > 4) throw std::invalid_argument("subject: id must be 1..4");
  return subjects_singleton()[static_cast<std::size_t>(id - 1)];
}

const SubjectProfile& profile_for_emotion(affect::Emotion e) {
  for (const SubjectProfile& p : subjects_singleton()) {
    if (p.emulated_emotion == e) return p;
  }
  // Map related emotions onto the nearest subject.
  switch (e) {
    case affect::Emotion::kSurprised:
    case affect::Emotion::kAngry:
    case affect::Emotion::kTense:
    case affect::Emotion::kConcentrated:
      return subject(3);
    case affect::Emotion::kRelaxed:
    case affect::Emotion::kSleepy:
    case affect::Emotion::kSad:
      return subject(4);
    case affect::Emotion::kDistracted:
      return subject(1);
    default:
      return subject(2);
  }
}

double messaging_browsing_share(const SubjectProfile& p) {
  double share = 0.0;
  for (const auto& [c, w] : p.category_weights) {
    if (c == AppCategory::kMessaging || c == AppCategory::kInternetBrowser) {
      share += w;
    }
  }
  return share;
}

}  // namespace affectsys::android
