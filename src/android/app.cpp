#include "android/app.hpp"

namespace affectsys::android {

std::string_view category_name(AppCategory c) {
  switch (c) {
    case AppCategory::kMessaging:
      return "Messaging";
    case AppCategory::kInternetBrowser:
      return "Internet_Browser";
    case AppCategory::kSocialNetworks:
      return "Social_Networks";
    case AppCategory::kEMail:
      return "E_Mail";
    case AppCategory::kCalling:
      return "Calling";
    case AppCategory::kMusicAudioRadio:
      return "Music_Audio_Radio";
    case AppCategory::kPhoto:
      return "Foto";
    case AppCategory::kGallery:
      return "Gallery";
    case AppCategory::kCamera:
      return "Camera";
    case AppCategory::kVideoApps:
      return "Video_Apps";
    case AppCategory::kTv:
      return "TV";
    case AppCategory::kShopping:
      return "Shopping";
    case AppCategory::kSharingCloud:
      return "Sharing_Cloud";
    case AppCategory::kSharedTransport:
      return "Shared_Transport";
    case AppCategory::kCalculator:
      return "Calculator";
    case AppCategory::kCalendarApps:
      return "Calendar_Apps";
    case AppCategory::kTimerClocks:
      return "Timer_Clocks";
    case AppCategory::kSettings:
      return "Settings";
    case AppCategory::kSystemApp:
      return "System_App";
    case AppCategory::kGames:
      return "Games";
  }
  return "?";
}

}  // namespace affectsys::android
