// Perfetto-style event tracing for the smartphone simulator: records
// process starts/kills/foreground switches and can render the Fig 9
// process-lifespan diagram as ASCII.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "android/app.hpp"

namespace affectsys::android {

enum class TraceEventType : std::uint8_t {
  kColdStart,
  kWarmStart,
  kKill,
  kForeground,
  kEmotionChange,
  kCompress,
  kDecompress,
};

struct TraceEvent {
  double time_s = 0.0;
  TraceEventType type = TraceEventType::kColdStart;
  AppId app = 0;
  std::string detail;
};

/// One contiguous alive interval of a process.
struct ProcessSpan {
  AppId app = 0;
  double start_s = 0.0;
  double end_s = 0.0;  ///< kill time, or trace end if still alive
};

class Tracer {
 public:
  void record(double time_s, TraceEventType type, AppId app,
              std::string detail = {});

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Reconstructs per-app alive intervals up to `end_s`.
  std::vector<ProcessSpan> process_spans(double end_s) const;

  /// Renders a Fig 9-style lifespan chart: one row per app that ever ran,
  /// `====` while alive and `....` while dead, `columns` characters wide.
  std::string render_timeline(const std::vector<App>& catalog, double end_s,
                              int columns = 72) const;

  std::size_t count(TraceEventType type) const;

  /// Serializes the event list as Chrome-trace/Perfetto-style JSON
  /// (an array of {"ts": us, "name", "ph", "pid"(app), "args"} objects),
  /// loadable by chrome://tracing for inspection.
  std::string to_json(const std::vector<App>& catalog) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace affectsys::android
