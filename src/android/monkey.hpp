// Monkey-script workload generator (Section 5.2): synthesizes an app
// launch sequence whose category frequencies match a subject/emotion
// usage profile, with idle time removed ("we shortened the operation time
// of each app and remove the idle time of the users").
#pragma once

#include <random>
#include <vector>

#include "affect/scl.hpp"
#include "android/app.hpp"
#include "android/personality.hpp"

namespace affectsys::android {

struct UsageEvent {
  double time_s = 0.0;
  AppId app = 0;
  double dwell_s = 0.0;  ///< time spent in the app before the next launch
  affect::Emotion emotion = affect::Emotion::kNeutral;
};

struct MonkeyConfig {
  double mean_dwell_s = 12.0;  ///< compressed per-app interaction time
  unsigned seed = 99;
};

/// Generates launches over an emotion timeline: at each step the active
/// emotion picks the usage profile, a category is drawn from its weights,
/// and an app within the category is drawn from a per-profile Zipf
/// preference (each subject has stable favourite apps, which is what the
/// App Affect Table learns).
class MonkeyScript {
 public:
  MonkeyScript(std::vector<App> catalog, MonkeyConfig cfg);

  std::vector<UsageEvent> generate(const affect::EmotionTimeline& timeline);

  /// Launch-count histogram per category for a plain profile run of
  /// `launches` events (used to validate Fig 7 shapes).
  std::map<AppCategory, std::size_t> sample_category_histogram(
      const SubjectProfile& profile, std::size_t launches);

 private:
  AppId sample_app(const SubjectProfile& profile);

  std::vector<App> catalog_;
  MonkeyConfig cfg_;
  std::mt19937 rng_;
};

}  // namespace affectsys::android
