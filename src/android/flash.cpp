#include "android/flash.hpp"

namespace affectsys::android {

LoadCost FlashStorage::read(std::uint64_t bytes) const {
  LoadCost cost;
  cost.bytes = bytes;
  cost.time_s = cfg_.setup_latency_s +
                static_cast<double>(bytes) / (cfg_.read_bandwidth_mbps * 1e6);
  cost.energy_nj =
      cfg_.read_energy_nj_per_kb * static_cast<double>(bytes) / 1024.0;
  return cost;
}

LoadCost FlashStorage::read_and_account(std::uint64_t bytes) {
  const LoadCost cost = read(bytes);
  totals_.time_s += cost.time_s;
  totals_.energy_nj += cost.energy_nj;
  totals_.bytes += cost.bytes;
  return cost;
}

}  // namespace affectsys::android
