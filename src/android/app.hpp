// Application model for the smartphone simulator: categories follow the
// Fig 7 taxonomy from the Stachl et al. phone-usage study.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace affectsys::android {

/// App categories as plotted in Fig 7 (left).
enum class AppCategory : std::uint8_t {
  kMessaging,
  kInternetBrowser,
  kSocialNetworks,
  kEMail,
  kCalling,
  kMusicAudioRadio,
  kPhoto,
  kGallery,
  kCamera,
  kVideoApps,
  kTv,
  kShopping,
  kSharingCloud,
  kSharedTransport,
  kCalculator,
  kCalendarApps,
  kTimerClocks,
  kSettings,
  kSystemApp,
  kGames,
};

inline constexpr std::size_t kNumAppCategories = 20;

std::string_view category_name(AppCategory c);

using AppId = std::uint32_t;

/// One installed application.
struct App {
  AppId id = 0;
  std::string name;
  AppCategory category = AppCategory::kSystemApp;
  /// Bytes read from flash on a cold start (code + resources paged in).
  std::uint64_t image_bytes = 0;
  /// Resident RAM once running.
  std::uint64_t memory_bytes = 0;
  /// Fixed cold-start initialization latency independent of image size.
  double init_time_s = 0.0;
  /// System/periodic apps (launcher, Android Messages, ...) that the OS
  /// never kills (Section 5.2: "never killed due to the periodic usage").
  bool protected_from_kill = false;
};

}  // namespace affectsys::android
