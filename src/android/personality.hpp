// Subject personality profiles and their app-usage distributions (Fig 7
// left) — the substitute for the Stachl et al. 640-subject dataset.
//
// The paper uses personality as a proxy for long-term affect: subject 3
// (high cheerfulness) emulates the *excited* emotion state, subject 4
// (calm/median) the *calm* state, and so on.  Each profile is an
// app-category weight vector dominated by messaging + browsing (60-70%
// combined, as reported) with a personality-dependent tail.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "affect/emotion.hpp"
#include "android/app.hpp"

namespace affectsys::android {

/// Big Five (OCEAN) scores on a 0-1 scale.
struct BigFiveScores {
  double openness = 0.5;
  double conscientiousness = 0.5;
  double extraversion = 0.5;
  double agreeableness = 0.5;
  double emotional_stability = 0.5;
};

struct SubjectProfile {
  int subject_id = 0;
  std::string trait_summary;
  BigFiveScores scores;
  /// The emotion state this subject's usage pattern emulates (Section 5.1:
  /// "we use different subject's personality to emulate the impact of
  /// different affects").
  affect::Emotion emulated_emotion = affect::Emotion::kNeutral;
  /// Normalized category usage weights (sums to 1).
  std::map<AppCategory, double> category_weights;
};

/// The four randomly-picked subjects of Section 5.1.
std::vector<SubjectProfile> paper_subjects();

/// Subject by 1-based id (1..4).
const SubjectProfile& subject(int id);

/// Usage profile emulating a given emotion (nearest subject by emulated
/// emotion; defaults to subject 2's median pattern).
const SubjectProfile& profile_for_emotion(affect::Emotion e);

/// Fraction of weight on messaging + internet browsing (paper: 0.6-0.7).
double messaging_browsing_share(const SubjectProfile& p);

}  // namespace affectsys::android
