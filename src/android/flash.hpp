// Flash-storage cost model: the energy and latency of reloading an app
// image from flash into RAM — the cost the affect-driven manager avoids.
#pragma once

#include <cstdint>

namespace affectsys::android {

struct FlashConfig {
  double read_bandwidth_mbps = 300.0;  ///< sequential read MB/s (eMMC-class)
  double read_energy_nj_per_kb = 150.0;
  double setup_latency_s = 0.015;      ///< per-request controller overhead
};

struct LoadCost {
  double time_s = 0.0;
  double energy_nj = 0.0;
  std::uint64_t bytes = 0;
};

class FlashStorage {
 public:
  explicit FlashStorage(const FlashConfig& cfg = {}) : cfg_(cfg) {}

  /// Cost of reading `bytes` from flash.
  LoadCost read(std::uint64_t bytes) const;

  /// Cumulative totals across all read() calls.
  const LoadCost& totals() const { return totals_; }
  void reset_totals() { totals_ = {}; }

  /// Records a read in the running totals and returns its cost.
  LoadCost read_and_account(std::uint64_t bytes);

 private:
  FlashConfig cfg_;
  LoadCost totals_;
};

}  // namespace affectsys::android
