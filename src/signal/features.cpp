#include "signal/features.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "signal/fft.hpp"
#include "signal/window.hpp"

namespace affectsys::signal {

double zero_crossing_rate(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  std::size_t crossings = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if ((x[i - 1] >= 0.0) != (x[i] >= 0.0)) ++crossings;
  }
  return static_cast<double>(crossings) / static_cast<double>(x.size() - 1);
}

double rms(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return std::sqrt(acc / static_cast<double>(x.size()));
}

std::vector<double> rms_contour(std::span<const double> x,
                                std::size_t frame_len, std::size_t hop) {
  std::vector<double> out;
  for (const auto& f : frame_signal(x, frame_len, hop)) out.push_back(rms(f));
  return out;
}

namespace {

/// Peak search + parabolic interpolation shared by the optimized and
/// reference pitch paths (identical on identical autocorrelations).
std::optional<double> pitch_from_autocorrelation(std::span<const double> r,
                                                 double sample_rate,
                                                 double fmin, double fmax,
                                                 double voicing_threshold) {
  if (r[0] <= 1e-12) return std::nullopt;  // silence
  const auto lag_min = static_cast<std::size_t>(sample_rate / fmax);
  const auto lag_max = std::min(
      static_cast<std::size_t>(sample_rate / fmin), r.size() - 1);
  if (lag_min >= lag_max || lag_min == 0) return std::nullopt;
  std::size_t best = lag_min;
  for (std::size_t lag = lag_min; lag <= lag_max; ++lag) {
    if (r[lag] > r[best]) best = lag;
  }
  if (r[best] / r[0] < voicing_threshold) return std::nullopt;
  // Parabolic interpolation around the peak for sub-sample lag accuracy.
  double lag = static_cast<double>(best);
  if (best > 0 && best + 1 < r.size()) {
    const double denom = r[best - 1] - 2.0 * r[best] + r[best + 1];
    if (std::abs(denom) > 1e-12) {
      lag += 0.5 * (r[best - 1] - r[best + 1]) / denom;
    }
  }
  return sample_rate / lag;
}

}  // namespace

std::optional<double> estimate_pitch(std::span<const double> x,
                                     double sample_rate, double fmin,
                                     double fmax, double voicing_threshold) {
  if (x.size() < 16 || fmin <= 0.0 || fmax <= fmin) return std::nullopt;
  std::vector<double> r(x.size());
  std::vector<std::complex<double>> work(next_pow2(2 * x.size()) + 1);
  return estimate_pitch(x, sample_rate, fmin, fmax, voicing_threshold, r,
                        work);
}

std::optional<double> estimate_pitch(std::span<const double> x,
                                     double sample_rate, double fmin,
                                     double fmax, double voicing_threshold,
                                     std::span<double> r_buf,
                                     std::span<std::complex<double>> work) {
  if (x.size() < 16 || fmin <= 0.0 || fmax <= fmin) return std::nullopt;
  if (r_buf.size() < x.size()) {
    throw std::invalid_argument("estimate_pitch: r buffer too small");
  }
  const std::span<double> r = r_buf.first(x.size());
  autocorrelation(x, r, work);
  return pitch_from_autocorrelation(r, sample_rate, fmin, fmax,
                                    voicing_threshold);
}

std::optional<double> estimate_pitch_ref(std::span<const double> x,
                                         double sample_rate, double fmin,
                                         double fmax,
                                         double voicing_threshold) {
  if (x.size() < 16 || fmin <= 0.0 || fmax <= fmin) return std::nullopt;
  const std::vector<double> r = autocorrelation_ref(x);
  return pitch_from_autocorrelation(r, sample_rate, fmin, fmax,
                                    voicing_threshold);
}

double spectral_centroid(std::span<const double> magnitude,
                         double sample_rate, std::size_t fft_size) {
  const double bin_hz = sample_rate / static_cast<double>(fft_size);
  double num = 0.0, den = 0.0;
  for (std::size_t k = 0; k < magnitude.size(); ++k) {
    num += bin_hz * static_cast<double>(k) * magnitude[k];
    den += magnitude[k];
  }
  return den > 1e-12 ? num / den : 0.0;
}

double mean_magnitude(std::span<const double> x, std::size_t fft_size) {
  std::vector<double> mag(fft_size / 2 + 1);
  std::vector<std::complex<double>> work(fft_size + 1);
  return mean_magnitude(x, fft_size, mag, work);
}

double mean_magnitude(std::span<const double> x, std::size_t fft_size,
                      std::span<double> mag,
                      std::span<std::complex<double>> work) {
  const std::size_t nbins = fft_size / 2 + 1;
  magnitude_spectrum(x, fft_size, mag, work);
  double acc = 0.0;
  for (std::size_t k = 0; k < nbins; ++k) acc += mag[k];
  return acc / static_cast<double>(nbins);
}

double spectral_rolloff(std::span<const double> magnitude, double sample_rate,
                        std::size_t fft_size, double fraction) {
  double total = 0.0;
  for (double m : magnitude) total += m * m;
  if (total <= 1e-12) return 0.0;
  const double bin_hz = sample_rate / static_cast<double>(fft_size);
  double acc = 0.0;
  for (std::size_t k = 0; k < magnitude.size(); ++k) {
    acc += magnitude[k] * magnitude[k];
    if (acc >= fraction * total) return bin_hz * static_cast<double>(k);
  }
  return bin_hz * static_cast<double>(magnitude.size() - 1);
}

}  // namespace affectsys::signal
