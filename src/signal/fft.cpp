#include "signal/fft.hpp"

#include <bit>
#include <cmath>
#include <map>
#include <mutex>
#include <numbers>
#include <stdexcept>

namespace affectsys::signal {

std::size_t next_pow2(std::size_t n) {
  if (n <= 1) return 1;
  return std::bit_ceil(n);
}

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (n == 0 || !std::has_single_bit(n)) {
    throw std::invalid_argument("FftPlan: size must be a power of two");
  }
  bitrev_.resize(n);
  bitrev_[0] = 0;
  for (std::size_t i = 1; i < n; ++i) {
    bitrev_[i] = static_cast<std::uint32_t>(
        (bitrev_[i >> 1] >> 1) | ((i & 1) ? (n >> 1) : 0));
  }
  twiddle_.reserve(n > 1 ? n - 1 : 0);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    for (std::size_t k = 0; k < len / 2; ++k) {
      twiddle_.push_back(std::polar(
          1.0, -2.0 * std::numbers::pi * static_cast<double>(k) /
                   static_cast<double>(len)));
    }
  }
}

void FftPlan::execute(std::span<std::complex<double>> data,
                      bool inverse) const {
  if (data.size() != n_) {
    throw std::invalid_argument("FftPlan::execute: buffer/plan size mismatch");
  }
  // Bit-reversal permutation from the cached index table.
  for (std::size_t i = 1; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  // Danielson-Lanczos butterflies, twiddles from the plan table.
  const std::complex<double>* w_stage = twiddle_.data();
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n_; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const std::complex<double> w =
            inverse ? std::conj(w_stage[k]) : w_stage[k];
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + half] * w;
        data[i + k] = u + v;
        data[i + k + half] = u - v;
      }
    }
    w_stage += half;
  }
}

std::shared_ptr<const FftPlan> FftPlan::cached(std::size_t n) {
  static std::mutex mu;
  static std::map<std::size_t, std::shared_ptr<const FftPlan>> plans;
  std::lock_guard<std::mutex> lk(mu);
  auto it = plans.find(n);
  if (it == plans.end()) {
    it = plans.emplace(n, std::make_shared<const FftPlan>(n)).first;
  }
  return it->second;
}

void fft_inplace(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0 || !std::has_single_bit(n)) {
    throw std::invalid_argument("fft_inplace: size must be a power of two");
  }
  FftPlan::cached(n)->execute(data, inverse);
}

std::vector<std::complex<double>> fft_real(std::span<const double> x) {
  const std::size_t n = next_pow2(x.size());
  std::vector<std::complex<double>> buf(n);
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = {x[i], 0.0};
  fft_inplace(buf);
  return buf;
}

std::vector<double> ifft_real(std::span<const std::complex<double>> spectrum) {
  std::vector<std::complex<double>> buf(spectrum.begin(), spectrum.end());
  fft_inplace(buf, /*inverse=*/true);
  std::vector<double> out(buf.size());
  const double scale = 1.0 / static_cast<double>(buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) out[i] = buf[i].real() * scale;
  return out;
}

std::vector<double> magnitude_spectrum(std::span<const double> x,
                                       std::size_t fft_size) {
  if (!std::has_single_bit(fft_size) || fft_size < x.size()) {
    throw std::invalid_argument(
        "magnitude_spectrum: fft_size must be a power of two >= x.size()");
  }
  std::vector<std::complex<double>> buf(fft_size);
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = {x[i], 0.0};
  fft_inplace(buf);
  std::vector<double> mag(fft_size / 2 + 1);
  for (std::size_t k = 0; k < mag.size(); ++k) mag[k] = std::abs(buf[k]);
  return mag;
}

std::vector<double> power_spectrum(std::span<const double> x,
                                   std::size_t fft_size) {
  std::vector<double> mag = magnitude_spectrum(x, fft_size);
  for (double& m : mag) m = m * m;
  return mag;
}

std::vector<double> autocorrelation(std::span<const double> x) {
  if (x.empty()) return {};
  // Zero-pad to 2N to turn circular correlation into linear correlation.
  const std::size_t n = next_pow2(2 * x.size());
  std::vector<std::complex<double>> buf(n);
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = {x[i], 0.0};
  fft_inplace(buf);
  for (auto& c : buf) c = c * std::conj(c);
  fft_inplace(buf, /*inverse=*/true);
  std::vector<double> r(x.size());
  const double scale = 1.0 / static_cast<double>(n);
  for (std::size_t k = 0; k < r.size(); ++k) r[k] = buf[k].real() * scale;
  return r;
}

}  // namespace affectsys::signal
