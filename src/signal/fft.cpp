#include "signal/fft.hpp"

#include <bit>
#include <cmath>
#include <map>
#include <mutex>
#include <numbers>
#include <stdexcept>

namespace affectsys::signal {

std::size_t next_pow2(std::size_t n) {
  if (n <= 1) return 1;
  return std::bit_ceil(n);
}

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (n == 0 || !std::has_single_bit(n)) {
    throw std::invalid_argument("FftPlan: size must be a power of two");
  }
  bitrev_.resize(n);
  bitrev_[0] = 0;
  for (std::size_t i = 1; i < n; ++i) {
    bitrev_[i] = static_cast<std::uint32_t>(
        (bitrev_[i >> 1] >> 1) | ((i & 1) ? (n >> 1) : 0));
  }
  twiddle_.reserve(n > 1 ? n - 1 : 0);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    for (std::size_t k = 0; k < len / 2; ++k) {
      twiddle_.push_back(std::polar(
          1.0, -2.0 * std::numbers::pi * static_cast<double>(k) /
                   static_cast<double>(len)));
    }
  }
}

void FftPlan::execute(std::span<std::complex<double>> data,
                      bool inverse) const {
  if (data.size() != n_) {
    throw std::invalid_argument("FftPlan::execute: buffer/plan size mismatch");
  }
  // Bit-reversal permutation from the cached index table.
  for (std::size_t i = 1; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  // Danielson-Lanczos butterflies, twiddles from the plan table.
  const std::complex<double>* w_stage = twiddle_.data();
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n_; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const std::complex<double> w =
            inverse ? std::conj(w_stage[k]) : w_stage[k];
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + half] * w;
        data[i + k] = u + v;
        data[i + k + half] = u - v;
      }
    }
    w_stage += half;
  }
}

std::shared_ptr<const FftPlan> FftPlan::cached(std::size_t n) {
  static std::mutex mu;
  static std::map<std::size_t, std::shared_ptr<const FftPlan>> plans;
  std::lock_guard<std::mutex> lk(mu);
  auto it = plans.find(n);
  if (it == plans.end()) {
    it = plans.emplace(n, std::make_shared<const FftPlan>(n)).first;
  }
  return it->second;
}

RfftPlan::RfftPlan(std::size_t n) : n_(n) {
  if (n < 2 || !std::has_single_bit(n)) {
    throw std::invalid_argument("RfftPlan: size must be a power of two >= 2");
  }
  half_ = FftPlan::cached(n / 2);
  unpack_.reserve(n / 2 + 1);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    unpack_.push_back(std::polar(
        1.0, -2.0 * std::numbers::pi * static_cast<double>(k) /
                 static_cast<double>(n)));
  }
}

void RfftPlan::execute(std::span<const double> x,
                       std::span<std::complex<double>> out,
                       std::span<std::complex<double>> work) const {
  const std::size_t half = n_ / 2;
  if (x.size() > n_ || out.size() < bins() || work.size() < half) {
    throw std::invalid_argument("RfftPlan::execute: buffer size mismatch");
  }
  // Pack pairs of real samples into the half-size complex buffer,
  // zero-padding the tail.
  for (std::size_t j = 0; j < half; ++j) {
    const std::size_t e = 2 * j, o = 2 * j + 1;
    work[j] = {e < x.size() ? x[e] : 0.0, o < x.size() ? x[o] : 0.0};
  }
  half_->forward(work.first(half));
  // Hermitian unpacking into the one-sided spectrum.  Z[half] aliases
  // Z[0]; the even part of X is (Z[k] + conj(Z[half-k]))/2 and the odd
  // part (Z[k] - conj(Z[half-k]))/(2i) = -i/2 * (Z[k] - conj(..)).
  const std::complex<double> z0 = work[0];
  out[0] = {z0.real() + z0.imag(), 0.0};
  out[half] = {z0.real() - z0.imag(), 0.0};
  for (std::size_t k = 1; k < half; ++k) {
    const std::complex<double> zk = work[k];
    const std::complex<double> zc = std::conj(work[half - k]);
    const std::complex<double> even = 0.5 * (zk + zc);
    const std::complex<double> diff = zk - zc;
    const std::complex<double> odd{0.5 * diff.imag(), -0.5 * diff.real()};
    out[k] = even + unpack_[k] * odd;
  }
}

void RfftPlan::inverse(std::span<const std::complex<double>> spec,
                       std::span<double> out,
                       std::span<std::complex<double>> work) const {
  const std::size_t half = n_ / 2;
  if (spec.size() < bins() || work.size() < half) {
    throw std::invalid_argument("RfftPlan::inverse: buffer size mismatch");
  }
  // Undo the Hermitian unpacking: with E[k] = (X[k] + conj(X[N/2-k]))/2
  // and O[k] = exp(+2*pi*i*k/N) * (X[k] - conj(X[N/2-k]))/2, the packed
  // sequence Z[k] = E[k] + i*O[k] is the forward half-size FFT of
  // z[j] = x[2j] + i*x[2j+1], so one inverse half-size FFT (scaled by
  // 2/N) recovers the interleaved signal.
  for (std::size_t k = 0; k < half; ++k) {
    const std::complex<double> xk = spec[k];
    const std::complex<double> xc = std::conj(spec[half - k]);
    const std::complex<double> even = 0.5 * (xk + xc);
    const std::complex<double> odd = std::conj(unpack_[k]) * (0.5 * (xk - xc));
    work[k] = even + std::complex<double>(-odd.imag(), odd.real());
  }
  half_->execute(work.first(half), /*inverse=*/true);
  const double scale = 1.0 / static_cast<double>(half);
  const std::size_t count = std::min(n_, out.size());
  for (std::size_t j = 0; 2 * j < count; ++j) {
    out[2 * j] = work[j].real() * scale;
    if (2 * j + 1 < count) out[2 * j + 1] = work[j].imag() * scale;
  }
}

std::shared_ptr<const RfftPlan> RfftPlan::cached(std::size_t n) {
  static std::mutex mu;
  static std::map<std::size_t, std::shared_ptr<const RfftPlan>> plans;
  std::lock_guard<std::mutex> lk(mu);
  auto it = plans.find(n);
  if (it == plans.end()) {
    it = plans.emplace(n, std::make_shared<const RfftPlan>(n)).first;
  }
  return it->second;
}

void fft_inplace(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0 || !std::has_single_bit(n)) {
    throw std::invalid_argument("fft_inplace: size must be a power of two");
  }
  FftPlan::cached(n)->execute(data, inverse);
}

std::vector<std::complex<double>> fft_real(std::span<const double> x) {
  const std::size_t n = next_pow2(x.size());
  std::vector<std::complex<double>> buf(n);
  fft_real(x, buf);
  return buf;
}

void fft_real(std::span<const double> x,
              std::span<std::complex<double>> out) {
  if (out.size() < x.size()) {
    throw std::invalid_argument("fft_real: output shorter than input");
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = {i < x.size() ? x[i] : 0.0, 0.0};
  }
  fft_inplace(out);
}

std::vector<double> ifft_real(std::span<const std::complex<double>> spectrum) {
  std::vector<std::complex<double>> buf(spectrum.begin(), spectrum.end());
  fft_inplace(buf, /*inverse=*/true);
  std::vector<double> out(buf.size());
  const double scale = 1.0 / static_cast<double>(buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) out[i] = buf[i].real() * scale;
  return out;
}

namespace {

void check_spectrum_args(std::span<const double> x, std::size_t fft_size) {
  if (!std::has_single_bit(fft_size) || fft_size < x.size()) {
    throw std::invalid_argument(
        "magnitude_spectrum: fft_size must be a power of two >= x.size()");
  }
}

}  // namespace

std::vector<double> magnitude_spectrum(std::span<const double> x,
                                       std::size_t fft_size) {
  std::vector<double> mag(fft_size / 2 + 1);
  std::vector<std::complex<double>> work(fft_size + 1);
  magnitude_spectrum(x, fft_size, mag, work);
  return mag;
}

void magnitude_spectrum(std::span<const double> x, std::size_t fft_size,
                        std::span<double> out,
                        std::span<std::complex<double>> work) {
  power_spectrum(x, fft_size, out, work);
  const std::size_t nbins = fft_size / 2 + 1;
  for (std::size_t k = 0; k < nbins; ++k) out[k] = std::sqrt(out[k]);
}

std::vector<double> power_spectrum(std::span<const double> x,
                                   std::size_t fft_size) {
  std::vector<double> ps(fft_size / 2 + 1);
  std::vector<std::complex<double>> work(fft_size + 1);
  power_spectrum(x, fft_size, ps, work);
  return ps;
}

void power_spectrum(std::span<const double> x, std::size_t fft_size,
                    std::span<double> out,
                    std::span<std::complex<double>> work) {
  check_spectrum_args(x, fft_size);
  const std::size_t nbins = fft_size / 2 + 1;
  if (out.size() < nbins) {
    throw std::invalid_argument("power_spectrum: output too small");
  }
  if (fft_size == 1) {
    const double v = x.empty() ? 0.0 : x[0];
    out[0] = v * v;
    return;
  }
  // `work` carries both the half-size FFT scratch and the one-sided
  // complex spectrum: fft_size/2 + (fft_size/2 + 1) elements total.
  if (work.size() < fft_size + 1) {
    throw std::invalid_argument("power_spectrum: work buffer too small");
  }
  const std::span<std::complex<double>> scratch = work.first(fft_size / 2);
  const std::span<std::complex<double>> spec =
      work.subspan(fft_size / 2, nbins);
  RfftPlan::cached(fft_size)->execute(x, spec, scratch);
  for (std::size_t k = 0; k < nbins; ++k) out[k] = std::norm(spec[k]);
}

std::vector<double> power_spectrum_ref(std::span<const double> x,
                                       std::size_t fft_size) {
  check_spectrum_args(x, fft_size);
  std::vector<std::complex<double>> buf(fft_size);
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = {x[i], 0.0};
  fft_inplace(buf);
  std::vector<double> mag(fft_size / 2 + 1);
  for (std::size_t k = 0; k < mag.size(); ++k) {
    mag[k] = std::abs(buf[k]);
    mag[k] = mag[k] * mag[k];
  }
  return mag;
}

std::vector<double> autocorrelation(std::span<const double> x) {
  if (x.empty()) return {};
  const std::size_t n = next_pow2(2 * x.size());
  std::vector<double> r(x.size());
  std::vector<std::complex<double>> work(n + 1);
  autocorrelation(x, r, work);
  return r;
}

void autocorrelation(std::span<const double> x, std::span<double> r,
                     std::span<std::complex<double>> work) {
  if (x.empty()) return;
  if (r.size() > x.size()) {
    throw std::invalid_argument("autocorrelation: r longer than x");
  }
  // Zero-pad to 2N to turn circular correlation into linear correlation.
  // Both directions ride the real-input plan: the power spectrum of a
  // real signal is real and even, so the inverse is a real signal too
  // and the half-size packed transforms apply on the way back as well.
  const std::size_t n = next_pow2(2 * x.size());
  const std::size_t half = n / 2;
  if (work.size() < n + 1) {
    throw std::invalid_argument("autocorrelation: work buffer too small");
  }
  const auto plan = RfftPlan::cached(n);
  const std::span<std::complex<double>> spec = work.first(half + 1);
  const std::span<std::complex<double>> scratch = work.subspan(half + 1, half);
  plan->execute(x, spec, scratch);
  for (std::size_t k = 0; k <= half; ++k) {
    spec[k] = {std::norm(spec[k]), 0.0};
  }
  // The requested lags (r.size() <= x.size() <= n/2) are the leading
  // samples of the inverse; inverse() applies the normalization.
  plan->inverse(spec, r, scratch);
}

std::vector<double> autocorrelation_ref(std::span<const double> x) {
  if (x.empty()) return {};
  const std::size_t n = next_pow2(2 * x.size());
  std::vector<std::complex<double>> buf(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = {i < x.size() ? x[i] : 0.0, 0.0};
  }
  fft_inplace(buf);
  for (auto& c : buf) c = c * std::conj(c);
  fft_inplace(buf, /*inverse=*/true);
  std::vector<double> r(x.size());
  const double scale = 1.0 / static_cast<double>(n);
  for (std::size_t k = 0; k < r.size(); ++k) r[k] = buf[k].real() * scale;
  return r;
}

}  // namespace affectsys::signal
