#include "signal/fft.hpp"

#include <bit>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace affectsys::signal {

std::size_t next_pow2(std::size_t n) {
  if (n <= 1) return 1;
  return std::bit_ceil(n);
}

void fft_inplace(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0 || !std::has_single_bit(n)) {
    throw std::invalid_argument("fft_inplace: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Danielson-Lanczos butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<std::complex<double>> fft_real(std::span<const double> x) {
  const std::size_t n = next_pow2(x.size());
  std::vector<std::complex<double>> buf(n);
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = {x[i], 0.0};
  fft_inplace(buf);
  return buf;
}

std::vector<double> ifft_real(std::span<const std::complex<double>> spectrum) {
  std::vector<std::complex<double>> buf(spectrum.begin(), spectrum.end());
  fft_inplace(buf, /*inverse=*/true);
  std::vector<double> out(buf.size());
  const double scale = 1.0 / static_cast<double>(buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) out[i] = buf[i].real() * scale;
  return out;
}

std::vector<double> magnitude_spectrum(std::span<const double> x,
                                       std::size_t fft_size) {
  if (!std::has_single_bit(fft_size) || fft_size < x.size()) {
    throw std::invalid_argument(
        "magnitude_spectrum: fft_size must be a power of two >= x.size()");
  }
  std::vector<std::complex<double>> buf(fft_size);
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = {x[i], 0.0};
  fft_inplace(buf);
  std::vector<double> mag(fft_size / 2 + 1);
  for (std::size_t k = 0; k < mag.size(); ++k) mag[k] = std::abs(buf[k]);
  return mag;
}

std::vector<double> power_spectrum(std::span<const double> x,
                                   std::size_t fft_size) {
  std::vector<double> mag = magnitude_spectrum(x, fft_size);
  for (double& m : mag) m = m * m;
  return mag;
}

std::vector<double> autocorrelation(std::span<const double> x) {
  if (x.empty()) return {};
  // Zero-pad to 2N to turn circular correlation into linear correlation.
  const std::size_t n = next_pow2(2 * x.size());
  std::vector<std::complex<double>> buf(n);
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = {x[i], 0.0};
  fft_inplace(buf);
  for (auto& c : buf) c = c * std::conj(c);
  fft_inplace(buf, /*inverse=*/true);
  std::vector<double> r(x.size());
  const double scale = 1.0 / static_cast<double>(n);
  for (std::size_t k = 0; k < r.size(); ++k) r[k] = buf[k].real() * scale;
  return r;
}

}  // namespace affectsys::signal
