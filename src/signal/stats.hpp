// Running statistics and histograms for time-based biosignal features
// ("mean, histogram, and variance" in Section 3 of the paper).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace affectsys::signal {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const;
  /// Sample variance (divides by n-1); 0 when n < 2.
  double sample_variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-range histogram with uniform bins.  Out-of-range samples clamp to
/// the edge bins so no sample is ever dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  /// Normalized bin frequencies; all zeros when empty.
  std::vector<double> normalized() const;
  /// Center value of bin `i`.
  double bin_center(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace affectsys::signal
