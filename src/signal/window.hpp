// Analysis windows and frame segmentation for short-time feature extraction.
#pragma once

#include <span>
#include <vector>

namespace affectsys::signal {

enum class WindowType { kRectangular, kHann, kHamming };

/// Window coefficients of the given length (periodic form, suitable for
/// STFT analysis).
std::vector<double> make_window(WindowType type, std::size_t length);

/// Multiplies `frame` elementwise by `window`; sizes must match.
void apply_window(std::span<double> frame, std::span<const double> window);

/// Splits `x` into overlapping frames of `frame_len` samples advancing by
/// `hop` samples.  The final partial frame is zero-padded.  Returns at
/// least one frame for non-empty input.
std::vector<std::vector<double>> frame_signal(std::span<const double> x,
                                              std::size_t frame_len,
                                              std::size_t hop);

/// Number of frames frame_signal() would produce for a signal of
/// `size` samples — lets callers reserve/iterate without materializing
/// the frame vectors (the zero-allocation feature path, and the
/// reserve() fix in MfccExtractor::extract).
std::size_t frame_count(std::size_t size, std::size_t frame_len,
                        std::size_t hop);

/// Copies frame `t` (samples [t*hop, t*hop + buf.size())) of `x` into
/// `buf`, zero-padding past the end of the signal — the allocation-free
/// equivalent of frame_signal()[t] when buf.size() == frame_len.
void copy_frame(std::span<const double> x, std::size_t t, std::size_t hop,
                std::span<double> buf);

}  // namespace affectsys::signal
