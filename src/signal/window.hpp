// Analysis windows and frame segmentation for short-time feature extraction.
#pragma once

#include <span>
#include <vector>

namespace affectsys::signal {

enum class WindowType { kRectangular, kHann, kHamming };

/// Window coefficients of the given length (periodic form, suitable for
/// STFT analysis).
std::vector<double> make_window(WindowType type, std::size_t length);

/// Multiplies `frame` elementwise by `window`; sizes must match.
void apply_window(std::span<double> frame, std::span<const double> window);

/// Splits `x` into overlapping frames of `frame_len` samples advancing by
/// `hop` samples.  The final partial frame is zero-padded.  Returns at
/// least one frame for non-empty input.
std::vector<std::vector<double>> frame_signal(std::span<const double> x,
                                              std::size_t frame_len,
                                              std::size_t hop);

}  // namespace affectsys::signal
