// Time-domain and spectral scalar features used by the affect classifier
// front-end: zero-crossing rate, RMS energy, pitch, spectral magnitude
// statistics (Section 2.2: "MFCC, zero crossing, rmse, sound pitch, and
// magnitude").
#pragma once

#include <complex>
#include <optional>
#include <span>
#include <vector>

namespace affectsys::signal {

/// Fraction of adjacent sample pairs with a sign change, in [0, 1].
double zero_crossing_rate(std::span<const double> x);

/// Root-mean-square amplitude.
double rms(std::span<const double> x);

/// Per-frame RMS contour.
std::vector<double> rms_contour(std::span<const double> x,
                                std::size_t frame_len, std::size_t hop);

/// Autocorrelation pitch estimator.
///
/// Searches lags corresponding to [fmin, fmax] Hz for the autocorrelation
/// peak.  Returns std::nullopt for silent or aperiodic frames (peak below
/// `voicing_threshold` relative to r[0]).
std::optional<double> estimate_pitch(std::span<const double> x,
                                     double sample_rate, double fmin = 60.0,
                                     double fmax = 500.0,
                                     double voicing_threshold = 0.3);

/// Allocation-free estimate_pitch: `r` must hold x.size() doubles and
/// `work` next_pow2(2 * x.size()) + 1 complex elements (the
/// autocorrelation buffers).  Bit-identical to the allocating overload.
std::optional<double> estimate_pitch(std::span<const double> x,
                                     double sample_rate, double fmin,
                                     double fmax, double voicing_threshold,
                                     std::span<double> r,
                                     std::span<std::complex<double>> work);

/// Reference pitch estimator over the complex-FFT autocorrelation (the
/// pre-RfftPlan pipeline); agrees with estimate_pitch() to rounding.
/// Kept callable for bench_kernels and the kernel tolerance suite.
std::optional<double> estimate_pitch_ref(std::span<const double> x,
                                         double sample_rate,
                                         double fmin = 60.0,
                                         double fmax = 500.0,
                                         double voicing_threshold = 0.3);

/// Spectral centroid in Hz of the one-sided magnitude spectrum.
double spectral_centroid(std::span<const double> magnitude,
                         double sample_rate, std::size_t fft_size);

/// Mean of the one-sided magnitude spectrum (the paper's "magnitude"
/// feature).
double mean_magnitude(std::span<const double> x, std::size_t fft_size);

/// Allocation-free mean_magnitude: `mag` must hold fft_size/2 + 1
/// doubles and `work` fft_size + 1 complex elements (the
/// magnitude_spectrum span contract).  Bit-identical to the allocating
/// overload.
double mean_magnitude(std::span<const double> x, std::size_t fft_size,
                      std::span<double> mag,
                      std::span<std::complex<double>> work);

/// Spectral rolloff frequency: lowest Hz below which `fraction` of the
/// total spectral energy lies.
double spectral_rolloff(std::span<const double> magnitude, double sample_rate,
                        std::size_t fft_size, double fraction = 0.85);

}  // namespace affectsys::signal
