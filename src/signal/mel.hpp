// Mel filterbank and MFCC extraction.
//
// MFCCs are the primary spectral feature fed to the affect classifiers
// (Section 2.2 of the paper lists MFCC among the input features).
#pragma once

#include <span>
#include <vector>

#include "signal/window.hpp"

namespace affectsys::signal {

/// Hz -> mel (HTK convention).
double hz_to_mel(double hz);
/// mel -> Hz (HTK convention).
double mel_to_hz(double mel);

/// Triangular mel filterbank.
///
/// Each row maps the one-sided power spectrum (fft_size/2 + 1 bins) onto
/// one mel band.  Filters are unit-peak triangles between successive mel
/// center frequencies.
class MelFilterbank {
 public:
  /// @param num_filters  number of mel bands
  /// @param fft_size     FFT length used for the power spectra (power of two)
  /// @param sample_rate  sampling rate in Hz
  /// @param fmin,fmax    band edges in Hz (fmax <= sample_rate/2)
  MelFilterbank(std::size_t num_filters, std::size_t fft_size,
                double sample_rate, double fmin, double fmax);

  /// Applies the filterbank to a one-sided power spectrum.
  /// Returns num_filters band energies.
  std::vector<double> apply(std::span<const double> power_spec) const;

  std::size_t num_filters() const { return weights_.size(); }
  std::size_t num_bins() const { return num_bins_; }
  /// Filter weights for band `f` (size = num_bins()).
  std::span<const double> filter(std::size_t f) const { return weights_.at(f); }

 private:
  std::size_t num_bins_;
  std::vector<std::vector<double>> weights_;
};

/// Orthonormal DCT-II of `x`, returning the first `num_coeffs` coefficients.
std::vector<double> dct2(std::span<const double> x, std::size_t num_coeffs);

/// Configuration for MfccExtractor.
struct MfccConfig {
  double sample_rate = 16000.0;
  std::size_t frame_len = 400;   ///< 25 ms @ 16 kHz
  std::size_t hop = 160;         ///< 10 ms @ 16 kHz
  std::size_t fft_size = 512;
  std::size_t num_filters = 26;
  std::size_t num_coeffs = 13;
  double fmin = 20.0;
  double fmax = 8000.0;
  WindowType window = WindowType::kHamming;
};

/// Frame-by-frame MFCC extraction: window -> power spectrum -> mel bands ->
/// log -> DCT-II.
class MfccExtractor {
 public:
  explicit MfccExtractor(const MfccConfig& cfg);

  /// MFCCs for one frame of cfg.frame_len samples (shorter input is
  /// zero-padded).  Returns cfg.num_coeffs values.
  std::vector<double> extract_frame(std::span<const double> frame) const;

  /// MFCC matrix for a whole signal: one row of cfg.num_coeffs values per
  /// analysis frame.
  std::vector<std::vector<double>> extract(std::span<const double> x) const;

  const MfccConfig& config() const { return cfg_; }

 private:
  MfccConfig cfg_;
  std::vector<double> window_;
  MelFilterbank bank_;
};

}  // namespace affectsys::signal
