// Mel filterbank and MFCC extraction.
//
// MFCCs are the primary spectral feature fed to the affect classifiers
// (Section 2.2 of the paper lists MFCC among the input features).
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "signal/window.hpp"

namespace affectsys::signal {

/// Hz -> mel (HTK convention).
double hz_to_mel(double hz);
/// mel -> Hz (HTK convention).
double mel_to_hz(double mel);

/// Triangular mel filterbank.
///
/// Each row maps the one-sided power spectrum (fft_size/2 + 1 bins) onto
/// one mel band.  Filters are unit-peak triangles between successive mel
/// center frequencies.  Rows are stored flat (one contiguous
/// num_filters x num_bins block) with the nonzero bin range of each
/// triangle precomputed, so apply() touches only the support of each
/// filter — bit-identical to the dense sum, since the skipped terms are
/// exact zeros.
class MelFilterbank {
 public:
  /// @param num_filters  number of mel bands
  /// @param fft_size     FFT length used for the power spectra (power of two)
  /// @param sample_rate  sampling rate in Hz
  /// @param fmin,fmax    band edges in Hz (fmax <= sample_rate/2)
  MelFilterbank(std::size_t num_filters, std::size_t fft_size,
                double sample_rate, double fmin, double fmax);

  /// Applies the filterbank to a one-sided power spectrum.
  /// Returns num_filters band energies.
  std::vector<double> apply(std::span<const double> power_spec) const;

  /// Allocation-free apply(): writes num_filters() band energies into
  /// `out`.  Bit-identical to the allocating overload.
  void apply(std::span<const double> power_spec, std::span<double> out) const;

  std::size_t num_filters() const { return num_filters_; }
  std::size_t num_bins() const { return num_bins_; }
  /// Filter weights for band `f` (size = num_bins()).
  std::span<const double> filter(std::size_t f) const;

 private:
  std::size_t num_bins_;
  std::size_t num_filters_;
  /// Row-major num_filters x num_bins triangle weights.
  std::vector<double> weights_;
  /// Per-filter [begin, end) bin range outside of which the row is zero.
  std::vector<std::size_t> band_begin_;
  std::vector<std::size_t> band_end_;
};

/// Orthonormal DCT-II of `x`, returning the first `num_coeffs` coefficients.
std::vector<double> dct2(std::span<const double> x, std::size_t num_coeffs);

/// Configuration for MfccExtractor.
struct MfccConfig {
  double sample_rate = 16000.0;
  std::size_t frame_len = 400;   ///< 25 ms @ 16 kHz
  std::size_t hop = 160;         ///< 10 ms @ 16 kHz
  std::size_t fft_size = 512;
  std::size_t num_filters = 26;
  std::size_t num_coeffs = 13;
  double fmin = 20.0;
  double fmax = 8000.0;
  WindowType window = WindowType::kHamming;
};

/// Reusable scratch for the allocation-free MFCC path: sized on first
/// use by MfccExtractor and then stable, so the steady-state per-frame
/// cost is pure arithmetic (the workspace idiom of DESIGN.md "Kernel
/// optimization").
struct MfccWorkspace {
  std::vector<double> frame;                   ///< frame_len windowed copy
  std::vector<std::complex<double>> fft_work;  ///< fft_size + 1 (rfft scratch)
  std::vector<double> power;                   ///< fft_size/2 + 1 bins
  std::vector<double> bands;                   ///< num_filters log energies
};

/// Frame-by-frame MFCC extraction: window -> power spectrum -> mel bands ->
/// log -> DCT-II.
class MfccExtractor {
 public:
  explicit MfccExtractor(const MfccConfig& cfg);

  /// MFCCs for one frame of cfg.frame_len samples (shorter input is
  /// zero-padded).  Returns cfg.num_coeffs values.  Routes through the
  /// workspace overload, so both paths are byte-identical.
  std::vector<double> extract_frame(std::span<const double> frame) const;

  /// Allocation-free extract_frame: writes cfg.num_coeffs values into
  /// `out`, reusing (and lazily sizing) `ws` buffers.
  void extract_frame(std::span<const double> frame, std::span<double> out,
                     MfccWorkspace& ws) const;

  /// Pre-optimization reference (full complex FFT, per-call vectors,
  /// trig-evaluating DCT).  Kept callable so bench_kernels and the
  /// kernel suite measure/validate the optimized path against it.
  std::vector<double> extract_frame_ref(std::span<const double> frame) const;

  /// MFCC matrix for a whole signal: one row of cfg.num_coeffs values per
  /// analysis frame.
  std::vector<std::vector<double>> extract(std::span<const double> x) const;

  const MfccConfig& config() const { return cfg_; }
  const MelFilterbank& filterbank() const { return bank_; }

 private:
  MfccConfig cfg_;
  std::vector<double> window_;
  MelFilterbank bank_;
  /// Raw DCT-II basis cos(pi/N * (i + 0.5) * k), row-major
  /// num_coeffs x num_filters — the per-frame trig of dct2() hoisted to
  /// construction.  Norm factors are applied after the dot product, so
  /// the table path is bit-identical to dct2().
  std::vector<double> dct_cos_;
};

}  // namespace affectsys::signal
