#include "signal/window.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace affectsys::signal {

std::vector<double> make_window(WindowType type, std::size_t length) {
  if (length == 0) throw std::invalid_argument("make_window: zero length");
  std::vector<double> w(length, 1.0);
  const double n = static_cast<double>(length);
  switch (type) {
    case WindowType::kRectangular:
      break;
    case WindowType::kHann:
      for (std::size_t i = 0; i < length; ++i) {
        w[i] = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * i / n);
      }
      break;
    case WindowType::kHamming:
      for (std::size_t i = 0; i < length; ++i) {
        w[i] = 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * i / n);
      }
      break;
  }
  return w;
}

void apply_window(std::span<double> frame, std::span<const double> window) {
  if (frame.size() != window.size()) {
    throw std::invalid_argument("apply_window: size mismatch");
  }
  for (std::size_t i = 0; i < frame.size(); ++i) frame[i] *= window[i];
}

std::vector<std::vector<double>> frame_signal(std::span<const double> x,
                                              std::size_t frame_len,
                                              std::size_t hop) {
  if (frame_len == 0 || hop == 0) {
    throw std::invalid_argument("frame_signal: frame_len and hop must be > 0");
  }
  std::vector<std::vector<double>> frames;
  if (x.empty()) return frames;
  frames.reserve(frame_count(x.size(), frame_len, hop));
  for (std::size_t start = 0; start < x.size(); start += hop) {
    std::vector<double> f(frame_len, 0.0);
    const std::size_t take = std::min(frame_len, x.size() - start);
    for (std::size_t i = 0; i < take; ++i) f[i] = x[start + i];
    frames.push_back(std::move(f));
    if (start + frame_len >= x.size()) break;
  }
  return frames;
}

std::size_t frame_count(std::size_t size, std::size_t frame_len,
                        std::size_t hop) {
  if (frame_len == 0 || hop == 0) {
    throw std::invalid_argument("frame_count: frame_len and hop must be > 0");
  }
  if (size == 0) return 0;
  // frame_signal() emits one frame per hop start while start < size,
  // stopping early once a frame reaches the end of the signal.
  const std::size_t starts = (size - 1) / hop + 1;
  if (size <= frame_len) return 1;
  const std::size_t covering = (size - frame_len + hop - 1) / hop + 1;
  return std::min(starts, covering);
}

void copy_frame(std::span<const double> x, std::size_t t, std::size_t hop,
                std::span<double> buf) {
  const std::size_t start = t * hop;
  const std::size_t take =
      start < x.size() ? std::min(buf.size(), x.size() - start) : 0;
  for (std::size_t i = 0; i < take; ++i) buf[i] = x[start + i];
  for (std::size_t i = take; i < buf.size(); ++i) buf[i] = 0.0;
}

}  // namespace affectsys::signal
