#include "signal/window.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace affectsys::signal {

std::vector<double> make_window(WindowType type, std::size_t length) {
  if (length == 0) throw std::invalid_argument("make_window: zero length");
  std::vector<double> w(length, 1.0);
  const double n = static_cast<double>(length);
  switch (type) {
    case WindowType::kRectangular:
      break;
    case WindowType::kHann:
      for (std::size_t i = 0; i < length; ++i) {
        w[i] = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * i / n);
      }
      break;
    case WindowType::kHamming:
      for (std::size_t i = 0; i < length; ++i) {
        w[i] = 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * i / n);
      }
      break;
  }
  return w;
}

void apply_window(std::span<double> frame, std::span<const double> window) {
  if (frame.size() != window.size()) {
    throw std::invalid_argument("apply_window: size mismatch");
  }
  for (std::size_t i = 0; i < frame.size(); ++i) frame[i] *= window[i];
}

std::vector<std::vector<double>> frame_signal(std::span<const double> x,
                                              std::size_t frame_len,
                                              std::size_t hop) {
  if (frame_len == 0 || hop == 0) {
    throw std::invalid_argument("frame_signal: frame_len and hop must be > 0");
  }
  std::vector<std::vector<double>> frames;
  if (x.empty()) return frames;
  for (std::size_t start = 0; start < x.size(); start += hop) {
    std::vector<double> f(frame_len, 0.0);
    const std::size_t take = std::min(frame_len, x.size() - start);
    for (std::size_t i = 0; i < take; ++i) f[i] = x[start + i];
    frames.push_back(std::move(f));
    if (start + frame_len >= x.size()) break;
  }
  return frames;
}

}  // namespace affectsys::signal
