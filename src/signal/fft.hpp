// Radix-2 FFT and helpers for spectral feature extraction.
//
// This is the lowest layer of the DSP substrate used by the affect
// classifier front-end (MFCC, spectral magnitude).  Only power-of-two
// transform sizes are supported; callers zero-pad via next_pow2().
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace affectsys::signal {

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// Precomputed transform of one power-of-two size: the bit-reversal
/// permutation and per-stage twiddle tables.  Each twiddle is generated
/// directly as exp(-2*pi*i*k/len) (std::polar), not via the
/// multiplicative `w *= wlen` recurrence the unplanned kernel used —
/// that recurrence accumulates one rounding error per butterfly, which
/// shows up as ~1e-10-level drift in long transforms.  Feature
/// extraction calls the FFT once per analysis window, so planning also
/// removes every per-call cos/sin evaluation from the hot path.
///
/// The plan is immutable after construction; execute() is const and
/// safe to share across pool threads.
class FftPlan {
 public:
  /// @throws std::invalid_argument unless n is a power of two (n >= 1).
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place transform of a buffer of exactly size() samples.
  /// @throws std::invalid_argument on size mismatch
  void execute(std::span<std::complex<double>> data,
               bool inverse = false) const;
  void forward(std::span<std::complex<double>> data) const {
    execute(data, false);
  }
  /// Unscaled inverse transform (callers divide by size()).
  void inverse(std::span<std::complex<double>> data) const {
    execute(data, true);
  }

  /// Process-wide plan cache keyed by size; thread-safe.  The handful
  /// of distinct sizes in use (analysis windows, autocorrelation pads)
  /// keeps the cache tiny, and plans are shared, never evicted.
  static std::shared_ptr<const FftPlan> cached(std::size_t n);

 private:
  std::size_t n_;
  std::vector<std::uint32_t> bitrev_;
  /// Stage-major forward twiddles: for each len = 2,4,...,n the len/2
  /// factors exp(-2*pi*i*k/len); n-1 entries total.  The inverse
  /// transform conjugates on the fly.
  std::vector<std::complex<double>> twiddle_;
};

/// In-place iterative radix-2 Cooley-Tukey FFT (via the cached plan for
/// the buffer's size).
/// @param data  complex buffer whose size must be a power of two
/// @param inverse  when true computes the unscaled inverse transform
/// @throws std::invalid_argument if size is not a power of two
void fft_inplace(std::span<std::complex<double>> data, bool inverse = false);

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum (size = padded length).
std::vector<std::complex<double>> fft_real(std::span<const double> x);

/// Inverse FFT returning the real part, scaled by 1/N.
std::vector<double> ifft_real(std::span<const std::complex<double>> spectrum);

/// Magnitude of the one-sided spectrum (bins 0..N/2 inclusive) of a real
/// signal zero-padded to `fft_size` (must be a power of two >= x.size()).
std::vector<double> magnitude_spectrum(std::span<const double> x,
                                       std::size_t fft_size);

/// Power spectrum |X[k]|^2 over the one-sided range, same layout as
/// magnitude_spectrum().
std::vector<double> power_spectrum(std::span<const double> x,
                                   std::size_t fft_size);

/// Circular autocorrelation via FFT; r[k] for k in [0, x.size()).
/// Used by the pitch estimator.
std::vector<double> autocorrelation(std::span<const double> x);

}  // namespace affectsys::signal
