// Radix-2 FFT and helpers for spectral feature extraction.
//
// This is the lowest layer of the DSP substrate used by the affect
// classifier front-end (MFCC, spectral magnitude).  Only power-of-two
// transform sizes are supported; callers zero-pad via next_pow2().
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace affectsys::signal {

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// Precomputed transform of one power-of-two size: the bit-reversal
/// permutation and per-stage twiddle tables.  Each twiddle is generated
/// directly as exp(-2*pi*i*k/len) (std::polar), not via the
/// multiplicative `w *= wlen` recurrence the unplanned kernel used —
/// that recurrence accumulates one rounding error per butterfly, which
/// shows up as ~1e-10-level drift in long transforms.  Feature
/// extraction calls the FFT once per analysis window, so planning also
/// removes every per-call cos/sin evaluation from the hot path.
///
/// The plan is immutable after construction; execute() is const and
/// safe to share across pool threads.
class FftPlan {
 public:
  /// @throws std::invalid_argument unless n is a power of two (n >= 1).
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place transform of a buffer of exactly size() samples.
  /// @throws std::invalid_argument on size mismatch
  void execute(std::span<std::complex<double>> data,
               bool inverse = false) const;
  void forward(std::span<std::complex<double>> data) const {
    execute(data, false);
  }
  /// Unscaled inverse transform (callers divide by size()).
  void inverse(std::span<std::complex<double>> data) const {
    execute(data, true);
  }

  /// Process-wide plan cache keyed by size; thread-safe.  The handful
  /// of distinct sizes in use (analysis windows, autocorrelation pads)
  /// keeps the cache tiny, and plans are shared, never evicted.
  static std::shared_ptr<const FftPlan> cached(std::size_t n);

 private:
  std::size_t n_;
  std::vector<std::uint32_t> bitrev_;
  /// Stage-major forward twiddles: for each len = 2,4,...,n the len/2
  /// factors exp(-2*pi*i*k/len); n-1 entries total.  The inverse
  /// transform conjugates on the fly.
  std::vector<std::complex<double>> twiddle_;
};

/// Real-input FFT plan: an N-point real transform computed as an
/// N/2-point complex FFT of the even/odd-packed signal plus Hermitian
/// unpacking, halving the butterfly work of the complex path for every
/// spectral-feature call.  Only the one-sided spectrum (bins 0..N/2) is
/// produced — exactly what power/magnitude consumers read.
///
/// The unpacking identity: with z[j] = x[2j] + i*x[2j+1] and Z = FFT(z),
///   X[k] = (Z[k] + conj(Z[N/2-k]))/2
///        + exp(-2*pi*i*k/N) * (Z[k] - conj(Z[N/2-k]))/(2i)
/// for k in [0, N/2], reading Z[N/2] as Z[0].  The twiddles
/// exp(-2*pi*i*k/N) are precomputed, so execute() does no trig.
///
/// Like FftPlan the plan is immutable after construction; execute() is
/// const and shares across threads.  The caller provides both the output
/// and the N/2-element scratch buffer, so steady-state use allocates
/// nothing (the workspace idiom of DESIGN.md "Kernel optimization").
class RfftPlan {
 public:
  /// @throws std::invalid_argument unless n is a power of two >= 2.
  explicit RfftPlan(std::size_t n);

  std::size_t size() const { return n_; }
  /// One-sided output bins: n/2 + 1.
  std::size_t bins() const { return n_ / 2 + 1; }
  /// Required scratch elements for execute(): n/2.
  std::size_t work_size() const { return n_ / 2; }

  /// One-sided spectrum of `x` zero-padded to size().  `out` receives
  /// bins() values; `work` must hold at least work_size() elements.
  /// @throws std::invalid_argument if x is longer than size() or a
  ///         buffer is too small
  void execute(std::span<const double> x, std::span<std::complex<double>> out,
               std::span<std::complex<double>> work) const;

  /// Inverse real FFT: reconstructs the real signal whose one-sided
  /// Hermitian spectrum is `spec` (bins() values, normalized like
  /// execute()'s output).  Packs the spectrum into an N/2-point complex
  /// sequence, runs one half-size inverse FFT, and interleaves —
  /// mirroring execute().  Writes min(size(), out.size()) leading
  /// samples, so callers needing only a prefix (autocorrelation lags)
  /// can pass a short buffer.  `spec` and `work` must not overlap;
  /// `work` needs work_size() elements.
  void inverse(std::span<const std::complex<double>> spec,
               std::span<double> out,
               std::span<std::complex<double>> work) const;

  /// Process-wide plan cache keyed by size; thread-safe (same policy as
  /// FftPlan::cached).
  static std::shared_ptr<const RfftPlan> cached(std::size_t n);

 private:
  std::size_t n_;
  std::shared_ptr<const FftPlan> half_;  ///< N/2-point complex plan
  /// exp(-2*pi*i*k/N) for k in [0, n/2] (unpacking twiddles).
  std::vector<std::complex<double>> unpack_;
};

/// In-place iterative radix-2 Cooley-Tukey FFT (via the cached plan for
/// the buffer's size).
/// @param data  complex buffer whose size must be a power of two
/// @param inverse  when true computes the unscaled inverse transform
/// @throws std::invalid_argument if size is not a power of two
void fft_inplace(std::span<std::complex<double>> data, bool inverse = false);

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum (size = padded length).
std::vector<std::complex<double>> fft_real(std::span<const double> x);

/// Allocation-free fft_real: computes the full complex spectrum of `x`
/// zero-padded to out.size() in place in `out` (whose size must be a
/// power of two >= x.size()).
void fft_real(std::span<const double> x, std::span<std::complex<double>> out);

/// Inverse FFT returning the real part, scaled by 1/N.
std::vector<double> ifft_real(std::span<const std::complex<double>> spectrum);

/// Magnitude of the one-sided spectrum (bins 0..N/2 inclusive) of a real
/// signal zero-padded to `fft_size` (must be a power of two >= x.size()).
/// Computed via RfftPlan; bit-identical to the span overload below.
std::vector<double> magnitude_spectrum(std::span<const double> x,
                                       std::size_t fft_size);

/// Allocation-free magnitude_spectrum: `out` receives fft_size/2 + 1
/// bins, `work` must hold at least fft_size + 1 complex elements (the
/// half-size FFT scratch plus the staged one-sided complex spectrum).
void magnitude_spectrum(std::span<const double> x, std::size_t fft_size,
                        std::span<double> out,
                        std::span<std::complex<double>> work);

/// Power spectrum |X[k]|^2 over the one-sided range, same layout as
/// magnitude_spectrum().
std::vector<double> power_spectrum(std::span<const double> x,
                                   std::size_t fft_size);

/// Allocation-free power_spectrum (same buffer contract as the
/// magnitude_spectrum span overload).
void power_spectrum(std::span<const double> x, std::size_t fft_size,
                    std::span<double> out,
                    std::span<std::complex<double>> work);

/// Reference power spectrum via the full complex FFT (the pre-RfftPlan
/// implementation).  Kept callable so bench_kernels and the kernel test
/// suite measure/validate the optimized path against it in-repo.
std::vector<double> power_spectrum_ref(std::span<const double> x,
                                       std::size_t fft_size);

/// Circular autocorrelation via FFT; r[k] for k in [0, x.size()).
/// Used by the pitch estimator.  Computed with the real-input plan in
/// both directions (forward RfftPlan, half-size packed inverse), so the
/// transforms are half the length of the complex path's.
std::vector<double> autocorrelation(std::span<const double> x);

/// Allocation-free autocorrelation: writes r[k] for k in [0, r.size())
/// (r.size() <= x.size()); `work` must hold next_pow2(2 * x.size()) + 1
/// complex elements (one-sided spectrum plus half-size scratch).
/// Bit-identical to the allocating overload.
void autocorrelation(std::span<const double> x, std::span<double> r,
                     std::span<std::complex<double>> work);

/// Reference autocorrelation via the full complex FFT (the pre-RfftPlan
/// implementation); agrees with autocorrelation() to rounding.  Kept
/// callable for bench_kernels and the kernel tolerance suite.
std::vector<double> autocorrelation_ref(std::span<const double> x);

}  // namespace affectsys::signal
