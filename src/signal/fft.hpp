// Radix-2 FFT and helpers for spectral feature extraction.
//
// This is the lowest layer of the DSP substrate used by the affect
// classifier front-end (MFCC, spectral magnitude).  Only power-of-two
// transform sizes are supported; callers zero-pad via next_pow2().
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace affectsys::signal {

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// In-place iterative radix-2 Cooley-Tukey FFT.
/// @param data  complex buffer whose size must be a power of two
/// @param inverse  when true computes the unscaled inverse transform
/// @throws std::invalid_argument if size is not a power of two
void fft_inplace(std::span<std::complex<double>> data, bool inverse = false);

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum (size = padded length).
std::vector<std::complex<double>> fft_real(std::span<const double> x);

/// Inverse FFT returning the real part, scaled by 1/N.
std::vector<double> ifft_real(std::span<const std::complex<double>> spectrum);

/// Magnitude of the one-sided spectrum (bins 0..N/2 inclusive) of a real
/// signal zero-padded to `fft_size` (must be a power of two >= x.size()).
std::vector<double> magnitude_spectrum(std::span<const double> x,
                                       std::size_t fft_size);

/// Power spectrum |X[k]|^2 over the one-sided range, same layout as
/// magnitude_spectrum().
std::vector<double> power_spectrum(std::span<const double> x,
                                   std::size_t fft_size);

/// Circular autocorrelation via FFT; r[k] for k in [0, x.size()).
/// Used by the pitch estimator.
std::vector<double> autocorrelation(std::span<const double> x);

}  // namespace affectsys::signal
