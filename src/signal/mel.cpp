#include "signal/mel.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "signal/fft.hpp"

namespace affectsys::signal {

double hz_to_mel(double hz) { return 2595.0 * std::log10(1.0 + hz / 700.0); }

double mel_to_hz(double mel) {
  return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

MelFilterbank::MelFilterbank(std::size_t num_filters, std::size_t fft_size,
                             double sample_rate, double fmin, double fmax)
    : num_bins_(fft_size / 2 + 1) {
  if (num_filters == 0) {
    throw std::invalid_argument("MelFilterbank: num_filters must be > 0");
  }
  if (fmax > sample_rate / 2.0 || fmin < 0.0 || fmin >= fmax) {
    throw std::invalid_argument("MelFilterbank: invalid band edges");
  }
  // num_filters + 2 equally spaced points on the mel scale.
  const double mel_lo = hz_to_mel(fmin);
  const double mel_hi = hz_to_mel(fmax);
  std::vector<double> centers_hz(num_filters + 2);
  for (std::size_t i = 0; i < centers_hz.size(); ++i) {
    const double mel =
        mel_lo + (mel_hi - mel_lo) * static_cast<double>(i) /
                     static_cast<double>(num_filters + 1);
    centers_hz[i] = mel_to_hz(mel);
  }
  const double bin_hz = sample_rate / static_cast<double>(fft_size);
  weights_.assign(num_filters, std::vector<double>(num_bins_, 0.0));
  for (std::size_t f = 0; f < num_filters; ++f) {
    const double lo = centers_hz[f], mid = centers_hz[f + 1],
                 hi = centers_hz[f + 2];
    for (std::size_t k = 0; k < num_bins_; ++k) {
      const double hz = bin_hz * static_cast<double>(k);
      if (hz > lo && hz < mid) {
        weights_[f][k] = (hz - lo) / (mid - lo);
      } else if (hz >= mid && hz < hi) {
        weights_[f][k] = (hi - hz) / (hi - mid);
      }
    }
  }
}

std::vector<double> MelFilterbank::apply(
    std::span<const double> power_spec) const {
  if (power_spec.size() != num_bins_) {
    throw std::invalid_argument("MelFilterbank::apply: wrong spectrum size");
  }
  std::vector<double> bands(weights_.size(), 0.0);
  for (std::size_t f = 0; f < weights_.size(); ++f) {
    double acc = 0.0;
    const auto& w = weights_[f];
    for (std::size_t k = 0; k < num_bins_; ++k) acc += w[k] * power_spec[k];
    bands[f] = acc;
  }
  return bands;
}

std::vector<double> dct2(std::span<const double> x, std::size_t num_coeffs) {
  const std::size_t n = x.size();
  if (n == 0) throw std::invalid_argument("dct2: empty input");
  num_coeffs = std::min(num_coeffs, n);
  std::vector<double> out(num_coeffs, 0.0);
  const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
  const double norm = std::sqrt(2.0 / static_cast<double>(n));
  for (std::size_t k = 0; k < num_coeffs; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += x[i] * std::cos(std::numbers::pi / static_cast<double>(n) *
                             (static_cast<double>(i) + 0.5) *
                             static_cast<double>(k));
    }
    out[k] = acc * (k == 0 ? norm0 : norm);
  }
  return out;
}

MfccExtractor::MfccExtractor(const MfccConfig& cfg)
    : cfg_(cfg),
      window_(make_window(cfg.window, cfg.frame_len)),
      bank_(cfg.num_filters, cfg.fft_size, cfg.sample_rate, cfg.fmin,
            cfg.fmax) {
  if (cfg.fft_size < cfg.frame_len) {
    throw std::invalid_argument("MfccExtractor: fft_size < frame_len");
  }
}

std::vector<double> MfccExtractor::extract_frame(
    std::span<const double> frame) const {
  std::vector<double> buf(cfg_.frame_len, 0.0);
  const std::size_t take = std::min(frame.size(), cfg_.frame_len);
  for (std::size_t i = 0; i < take; ++i) buf[i] = frame[i];
  apply_window(buf, window_);
  const std::vector<double> ps = power_spectrum(buf, cfg_.fft_size);
  std::vector<double> bands = bank_.apply(ps);
  for (double& b : bands) b = std::log(b + 1e-10);
  return dct2(bands, cfg_.num_coeffs);
}

std::vector<std::vector<double>> MfccExtractor::extract(
    std::span<const double> x) const {
  std::vector<std::vector<double>> out;
  for (const auto& frame : frame_signal(x, cfg_.frame_len, cfg_.hop)) {
    out.push_back(extract_frame(frame));
  }
  return out;
}

}  // namespace affectsys::signal
