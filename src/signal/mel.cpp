#include "signal/mel.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "signal/fft.hpp"

namespace affectsys::signal {

double hz_to_mel(double hz) { return 2595.0 * std::log10(1.0 + hz / 700.0); }

double mel_to_hz(double mel) {
  return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

MelFilterbank::MelFilterbank(std::size_t num_filters, std::size_t fft_size,
                             double sample_rate, double fmin, double fmax)
    : num_bins_(fft_size / 2 + 1), num_filters_(num_filters) {
  if (num_filters == 0) {
    throw std::invalid_argument("MelFilterbank: num_filters must be > 0");
  }
  if (fmax > sample_rate / 2.0 || fmin < 0.0 || fmin >= fmax) {
    throw std::invalid_argument("MelFilterbank: invalid band edges");
  }
  // num_filters + 2 equally spaced points on the mel scale.
  const double mel_lo = hz_to_mel(fmin);
  const double mel_hi = hz_to_mel(fmax);
  std::vector<double> centers_hz(num_filters + 2);
  for (std::size_t i = 0; i < centers_hz.size(); ++i) {
    const double mel =
        mel_lo + (mel_hi - mel_lo) * static_cast<double>(i) /
                     static_cast<double>(num_filters + 1);
    centers_hz[i] = mel_to_hz(mel);
  }
  const double bin_hz = sample_rate / static_cast<double>(fft_size);
  weights_.assign(num_filters * num_bins_, 0.0);
  band_begin_.assign(num_filters, num_bins_);
  band_end_.assign(num_filters, 0);
  for (std::size_t f = 0; f < num_filters; ++f) {
    const double lo = centers_hz[f], mid = centers_hz[f + 1],
                 hi = centers_hz[f + 2];
    double* row = &weights_[f * num_bins_];
    for (std::size_t k = 0; k < num_bins_; ++k) {
      const double hz = bin_hz * static_cast<double>(k);
      if (hz > lo && hz < mid) {
        row[k] = (hz - lo) / (mid - lo);
      } else if (hz >= mid && hz < hi) {
        row[k] = (hi - hz) / (hi - mid);
      }
      if (row[k] != 0.0) {
        band_begin_[f] = std::min(band_begin_[f], k);
        band_end_[f] = k + 1;
      }
    }
    // Degenerate triangle (no nonzero bin): empty range.
    if (band_end_[f] <= band_begin_[f]) {
      band_begin_[f] = 0;
      band_end_[f] = 0;
    }
  }
}

std::span<const double> MelFilterbank::filter(std::size_t f) const {
  if (f >= num_filters_) {
    throw std::out_of_range("MelFilterbank::filter: band index");
  }
  return {&weights_[f * num_bins_], num_bins_};
}

std::vector<double> MelFilterbank::apply(
    std::span<const double> power_spec) const {
  std::vector<double> bands(num_filters_);
  apply(power_spec, bands);
  return bands;
}

void MelFilterbank::apply(std::span<const double> power_spec,
                          std::span<double> out) const {
  if (power_spec.size() != num_bins_) {
    throw std::invalid_argument("MelFilterbank::apply: wrong spectrum size");
  }
  if (out.size() < num_filters_) {
    throw std::invalid_argument("MelFilterbank::apply: output too small");
  }
  for (std::size_t f = 0; f < num_filters_; ++f) {
    const double* __restrict w = &weights_[f * num_bins_];
    double acc = 0.0;
    // Summing only the triangle's support skips terms that are exactly
    // 0.0 * p[k]; adding those cannot change a finite accumulator, so
    // the restricted sum matches the dense one bit for bit.
    const std::size_t end = band_end_[f];
    for (std::size_t k = band_begin_[f]; k < end; ++k) {
      acc += w[k] * power_spec[k];
    }
    out[f] = acc;
  }
}

std::vector<double> dct2(std::span<const double> x, std::size_t num_coeffs) {
  const std::size_t n = x.size();
  if (n == 0) throw std::invalid_argument("dct2: empty input");
  num_coeffs = std::min(num_coeffs, n);
  std::vector<double> out(num_coeffs, 0.0);
  const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
  const double norm = std::sqrt(2.0 / static_cast<double>(n));
  for (std::size_t k = 0; k < num_coeffs; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += x[i] * std::cos(std::numbers::pi / static_cast<double>(n) *
                             (static_cast<double>(i) + 0.5) *
                             static_cast<double>(k));
    }
    out[k] = acc * (k == 0 ? norm0 : norm);
  }
  return out;
}

MfccExtractor::MfccExtractor(const MfccConfig& cfg)
    : cfg_(cfg),
      window_(make_window(cfg.window, cfg.frame_len)),
      bank_(cfg.num_filters, cfg.fft_size, cfg.sample_rate, cfg.fmin,
            cfg.fmax) {
  if (cfg.fft_size < cfg.frame_len) {
    throw std::invalid_argument("MfccExtractor: fft_size < frame_len");
  }
  // Hoist the DCT-II basis out of the per-frame loop.  Arguments match
  // dct2() exactly, so table and trig paths agree bit for bit.
  const std::size_t n = cfg.num_filters;
  const std::size_t nc = std::min(cfg.num_coeffs, n);
  dct_cos_.resize(nc * n);
  for (std::size_t k = 0; k < nc; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      dct_cos_[k * n + i] =
          std::cos(std::numbers::pi / static_cast<double>(n) *
                   (static_cast<double>(i) + 0.5) * static_cast<double>(k));
    }
  }
}

std::vector<double> MfccExtractor::extract_frame(
    std::span<const double> frame) const {
  MfccWorkspace ws;
  std::vector<double> out(std::min(cfg_.num_coeffs, cfg_.num_filters));
  extract_frame(frame, out, ws);
  return out;
}

void MfccExtractor::extract_frame(std::span<const double> frame,
                                  std::span<double> out,
                                  MfccWorkspace& ws) const {
  const std::size_t nc = std::min(cfg_.num_coeffs, cfg_.num_filters);
  if (out.size() < nc) {
    throw std::invalid_argument("MfccExtractor::extract_frame: out too small");
  }
  ws.frame.resize(cfg_.frame_len);
  ws.fft_work.resize(cfg_.fft_size + 1);
  ws.power.resize(cfg_.fft_size / 2 + 1);
  ws.bands.resize(cfg_.num_filters);

  const std::size_t take = std::min(frame.size(), cfg_.frame_len);
  for (std::size_t i = 0; i < take; ++i) ws.frame[i] = frame[i];
  for (std::size_t i = take; i < cfg_.frame_len; ++i) ws.frame[i] = 0.0;
  apply_window(ws.frame, window_);
  power_spectrum(ws.frame, cfg_.fft_size, ws.power, ws.fft_work);
  bank_.apply(ws.power, ws.bands);
  for (double& b : ws.bands) b = std::log(b + 1e-10);

  // DCT-II from the precomputed basis (same accumulation order as
  // dct2()).
  const std::size_t n = cfg_.num_filters;
  const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
  const double norm = std::sqrt(2.0 / static_cast<double>(n));
  const double* __restrict bands = ws.bands.data();
  for (std::size_t k = 0; k < nc; ++k) {
    const double* __restrict row = &dct_cos_[k * n];
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += bands[i] * row[i];
    out[k] = acc * (k == 0 ? norm0 : norm);
  }
}

std::vector<double> MfccExtractor::extract_frame_ref(
    std::span<const double> frame) const {
  std::vector<double> buf(cfg_.frame_len, 0.0);
  const std::size_t take = std::min(frame.size(), cfg_.frame_len);
  for (std::size_t i = 0; i < take; ++i) buf[i] = frame[i];
  apply_window(buf, window_);
  const std::vector<double> ps = power_spectrum_ref(buf, cfg_.fft_size);
  std::vector<double> bands = bank_.apply(ps);
  for (double& b : bands) b = std::log(b + 1e-10);
  return dct2(bands, cfg_.num_coeffs);
}

std::vector<std::vector<double>> MfccExtractor::extract(
    std::span<const double> x) const {
  std::vector<std::vector<double>> out;
  out.reserve(frame_count(x.size(), cfg_.frame_len, cfg_.hop));
  MfccWorkspace ws;
  const std::size_t nc = std::min(cfg_.num_coeffs, cfg_.num_filters);
  for (const auto& frame : frame_signal(x, cfg_.frame_len, cfg_.hop)) {
    std::vector<double> coeffs(nc);
    extract_frame(frame, coeffs, ws);
    out.push_back(std::move(coeffs));
  }
  return out;
}

}  // namespace affectsys::signal
