#include "signal/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace affectsys::signal {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: need bins > 0 and hi > lo");
  }
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<long long>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<long long>(bin, 0,
                              static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

std::vector<double> Histogram::normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

double Histogram::bin_center(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * (static_cast<double>(i) + 0.5);
}

}  // namespace affectsys::signal
