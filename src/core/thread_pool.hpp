// Parallel runtime: a fixed-size thread pool with a future-returning
// submit() and a caller-participating parallel_for().
//
// This is the scaling substrate the hot paths share: row-parallel
// deblocking (h264/deblock.cpp), blocked GEMM (nn/matrix.cpp) and the
// async affect pipeline (affect/realtime.cpp) all dispatch through the
// process-wide pool returned by global_pool().  The build flag
// -DAFFECTSYS_THREADS=OFF turns every pool into inline (serial)
// execution so the serial build stays the bit-exact reference; all
// parallel decompositions in this codebase are chosen so that results
// are identical for any thread count (see DESIGN.md "Parallel
// runtime").
//
// Semantics:
//  - submit(fn) enqueues fn and returns a std::future; with no worker
//    threads fn runs inline on the caller before submit() returns.
//  - parallel_for(begin, end, grain, fn) splits [begin, end) into
//    contiguous chunks of ~grain indices and invokes fn(lo, hi) for
//    each.  The caller participates in chunk execution, so the call
//    never deadlocks even when every worker is busy.  A parallel_for
//    issued from inside a pool task of the same pool runs inline
//    (nested parallelism does not oversubscribe or deadlock).
//  - The first exception thrown by any chunk is rethrown on the caller
//    after all claimed chunks finished; remaining chunks are skipped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace affectsys::core {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means inline (serial) execution.  When
  /// the build is configured with -DAFFECTSYS_THREADS=OFF the requested
  /// count is clamped to 0, so no build-gated call site needs an #if.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 = inline mode).
  std::size_t size() const { return workers_.size(); }

  /// True when called from one of this pool's worker threads.
  bool on_pool_thread() const;

  /// Runs `fn` asynchronously; the returned future carries the result
  /// or exception.  Inline mode executes before returning.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    if (workers_.empty()) {
      (*task)();
    } else {
      enqueue([task] { (*task)(); });
    }
    return fut;
  }

  /// Chunked loop over [begin, end); fn(lo, hi) receives half-open
  /// subranges whose boundaries depend only on (begin, end, grain) —
  /// never on the thread count — so decompositions that are
  /// order-independent per chunk produce identical results at any pool
  /// size.  Blocks until every chunk completed.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool used by the instrumented hot paths.  Created on
/// first use with default_thread_count() workers.
ThreadPool& global_pool();

/// Replaces the global pool with one of `n` workers (clamped to 0 when
/// AFFECTSYS_THREADS is off).  Not safe while work is in flight; meant
/// for benchmarks and tests that sweep thread counts.
void set_global_threads(std::size_t n);

/// Worker count of the global pool (0 = serial).
std::size_t global_threads();

/// Default worker count: 0 when built with -DAFFECTSYS_THREADS=OFF,
/// otherwise the AFFECTSYS_NUM_THREADS environment variable, otherwise
/// hardware_concurrency() (0 on single-core hosts, where a pool only
/// adds overhead).
std::size_t default_thread_count();

/// Convenience: parallel_for on the global pool.
inline void parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  global_pool().parallel_for(begin, end, grain, fn);
}

}  // namespace affectsys::core
