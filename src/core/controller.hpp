// SystemController: the top-level wiring of Fig 4 — classifier output
// flows through an EmotionStream into both the video-decoder mode policy
// and the emotional app manager.
#pragma once

#include <functional>
#include <optional>

#include "adaptive/modes.hpp"
#include "affect/stream.hpp"
#include "core/emotional_policy.hpp"

namespace affectsys::core {

struct ControllerEvent {
  double time_s = 0.0;
  affect::Emotion emotion = affect::Emotion::kNeutral;
  adaptive::DecoderMode video_mode = adaptive::DecoderMode::kStandard;
};

/// Consumes raw classifier labels, maintains the smoothed system emotion,
/// and pushes mode/rank updates to the managed subsystems.
class SystemController {
 public:
  SystemController(const affect::StreamConfig& stream_cfg,
                   adaptive::AffectVideoPolicy video_policy,
                   EmotionalKillPolicy* app_policy = nullptr);

  /// Feeds one raw classification at time t.  Returns the event if the
  /// stable emotion (and therefore the system configuration) changed.
  std::optional<ControllerEvent> on_classification(double t_s,
                                                   affect::Emotion raw);

  /// Confidence-gated variant: classifications below `min_confidence` are
  /// dropped before smoothing (hardware should not react to guesses).
  std::optional<ControllerEvent> on_classification(double t_s,
                                                   affect::Emotion raw,
                                                   float confidence);

  /// Threshold for the confidence-gated path (default accepts all).
  void set_min_confidence(float c) { min_confidence_ = c; }
  float min_confidence() const { return min_confidence_; }
  std::size_t gated_count() const { return gated_; }

  affect::Emotion current_emotion() const { return stream_.stable(); }
  adaptive::DecoderMode current_video_mode() const {
    return video_policy_.mode_for(stream_.stable());
  }
  std::size_t mode_changes() const { return stream_.transitions(); }

  /// Observers notified on every stable change (e.g. loggers, benches).
  void subscribe(std::function<void(const ControllerEvent&)> cb) {
    observers_.push_back(std::move(cb));
  }

 private:
  affect::EmotionStream stream_;
  adaptive::AffectVideoPolicy video_policy_;
  EmotionalKillPolicy* app_policy_;
  std::vector<std::function<void(const ControllerEvent&)>> observers_;
  float min_confidence_ = 0.0f;
  std::size_t gated_ = 0;
};

}  // namespace affectsys::core
