#include "core/affect_table.hpp"

#include <algorithm>

#include "android/catalog.hpp"

namespace affectsys::core {

void AppAffectTable::observe(affect::Emotion e, android::AppId app,
                             double weight) {
  scores_[e][app] += weight;
}

void AppAffectTable::learn_from_profile(
    affect::Emotion e, const android::SubjectProfile& profile,
    const std::vector<android::App>& catalog) {
  for (const auto& [cat, cat_weight] : profile.category_weights) {
    const auto apps = android::apps_in_category(catalog, cat);
    if (apps.empty()) continue;
    // Within-category Zipf preference with the same subject-id rotation
    // as the monkey generator, normalized to the category weight.
    double norm = 0.0;
    std::vector<double> w(apps.size());
    for (std::size_t i = 0; i < apps.size(); ++i) {
      const std::size_t rank =
          (i + static_cast<std::size_t>(profile.subject_id)) % apps.size();
      w[i] = 1.0 / static_cast<double>(rank + 1);
      norm += w[i];
    }
    for (std::size_t i = 0; i < apps.size(); ++i) {
      scores_[e][apps[i]] += cat_weight * w[i] / norm;
    }
  }
}

double AppAffectTable::score(affect::Emotion e, android::AppId app) const {
  const auto eit = scores_.find(e);
  if (eit == scores_.end()) return 0.0;
  const auto ait = eit->second.find(app);
  return ait == eit->second.end() ? 0.0 : ait->second;
}

std::vector<android::AppId> AppAffectTable::rank(affect::Emotion e) const {
  std::vector<android::AppId> out;
  const auto eit = scores_.find(e);
  if (eit == scores_.end()) return out;
  for (const auto& [app, s] : eit->second) out.push_back(app);
  std::sort(out.begin(), out.end(),
            [&](android::AppId a, android::AppId b) {
              const double sa = score(e, a), sb = score(e, b);
              return sa != sb ? sa > sb : a < b;
            });
  return out;
}

bool AppAffectTable::knows(affect::Emotion e) const {
  const auto it = scores_.find(e);
  return it != scores_.end() && !it->second.empty();
}

}  // namespace affectsys::core
