// Whole-system simulation: one biosignal stream drives both management
// subsystems through a single SystemController, end to end.
//
// This goes one step beyond the paper's two separate case studies: the
// skin-conductance trace is classified online, smoothed once, and the
// SAME stable-emotion stream reconfigures the video decoder and re-ranks
// the app manager's kill priorities.  The user's app behaviour follows
// the ground-truth timeline while the manager only ever sees the
// classifier output — so classification errors propagate into the
// measured savings, as they would on a real device.
#pragma once

#include <string>
#include <vector>

#include "adaptive/playback.hpp"
#include "affect/scl.hpp"
#include "android/monkey.hpp"
#include "android/process.hpp"
#include "core/controller.hpp"
#include "core/manager_experiment.hpp"

namespace affectsys::core {

struct SystemScenarioConfig {
  /// Ground-truth emotion timeline of the session.
  affect::EmotionTimeline timeline;
  affect::SclConfig scl{};
  double scl_window_s = 30.0;
  adaptive::PlaybackConfig playback{};
  android::EmulatorSpec emulator{};
  android::MonkeyConfig monkey{};
  affect::StreamConfig smoothing{3, 60.0};
  unsigned catalog_seed = 2022;

  SystemScenarioConfig();
};

struct SystemScenarioReport {
  /// Emotion sensing.
  affect::EmotionTimeline estimated_timeline;
  double window_accuracy = 0.0;  ///< raw classifier vs ground truth
  std::size_t mode_changes = 0;  ///< stable transitions after smoothing

  /// Video subsystem.
  adaptive::PlaybackReport playback;

  /// App/memory subsystem (baseline FIFO vs emotional manager driven by
  /// the *estimated* emotion).
  android::LoadingMetrics app_baseline;
  android::LoadingMetrics app_proposed;
  double app_memory_saving() const {
    return app_baseline.memory_loaded_bytes
               ? 1.0 -
                     static_cast<double>(app_proposed.memory_loaded_bytes) /
                         static_cast<double>(app_baseline.memory_loaded_bytes)
               : 0.0;
  }
  double app_time_saving() const {
    return app_baseline.loading_time_s > 0.0
               ? 1.0 - app_proposed.loading_time_s /
                           app_baseline.loading_time_s
               : 0.0;
  }
};

/// Runs the full scenario.  The AdaptiveDecoderSystem is passed in so its
/// (expensive) mode profiling can be shared across scenarios.
SystemScenarioReport run_system_scenario(const SystemScenarioConfig& cfg,
                                         adaptive::AdaptiveDecoderSystem& dec);

}  // namespace affectsys::core
