// Hierarchical timer wheel: O(1) schedule/fire of per-tick wake-ups
// for the event-driven serve layer.
//
// The serve scaling wall (BENCH_serve.json pre-PR 7) was the global
// tick visiting every admitted session three times per tick, idle or
// not.  The wheel inverts that: a session schedules its next wake-up
// tick and the server only touches the keys the wheel hands back, so
// an idle session costs one slot entry instead of three stage visits.
//
// Geometry: kLevels levels of kSlots slots, each level spanning
// kSlots^level ticks per slot (the classic hashed hierarchical wheel).
// An entry is filed at the lowest level whose span still distinguishes
// its due tick from `now`; when the clock crosses a slot boundary the
// matching higher-level slot cascades — every entry is re-filed by its
// true due tick, so a cascaded entry lands either in the level-0 slot
// firing this tick or further down the hierarchy.  Entries due beyond
// the top level's horizon are clamped into the top level and re-filed
// on each wrap until they come into range.
//
// Determinism contract: collect() returns the due keys sorted
// ascending, regardless of scheduling order or cascade history — the
// server's replay identity across shard counts depends on it.  Slot
// vectors keep their capacity across fires, so a steady-state
// schedule/fire cycle performs no heap allocation.
//
// Not thread-safe: the wheel belongs to the (serial) scheduling stage.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace affectsys::core {

class TimerWheel {
 public:
  static constexpr std::size_t kLevelBits = 8;
  static constexpr std::size_t kSlots = 1u << kLevelBits;  // 256
  static constexpr std::size_t kLevels = 3;

  /// Every slot (and the cascade scratch) is pre-reserved for a few
  /// entries, so sparse fleets never allocate after construction; dense
  /// slots grow once and keep their capacity.
  TimerWheel();

  /// Files `key` to fire at `tick`.  A tick at or before now() fires on
  /// the next collect() (late schedules never get lost).  Keys are
  /// opaque; duplicates are allowed and fire once each.
  void schedule_at(std::uint64_t tick, std::uint64_t key);

  /// Fires one tick: `tick` must equal now() (the wheel advances one
  /// tick per call, in lockstep with the server clock).  Appends every
  /// due key to `due` in ascending key order and advances now() by one.
  void collect(std::uint64_t tick, std::vector<std::uint64_t>& due);

  std::uint64_t now() const { return now_; }
  /// Entries filed and not yet fired.
  std::size_t scheduled() const { return scheduled_; }

 private:
  struct Entry {
    std::uint64_t due = 0;
    std::uint64_t key = 0;
  };

  void place(std::uint64_t due, std::uint64_t key);
  void cascade(std::size_t level, std::size_t slot);

  std::array<std::array<std::vector<Entry>, kSlots>, kLevels> slots_{};
  std::vector<Entry> cascade_scratch_;
  std::uint64_t now_ = 0;
  std::size_t scheduled_ = 0;
};

}  // namespace affectsys::core
