// The Section 5.2 app-management experiment: replay an identical monkey
// usage sequence under the system-default policy and under the emotional
// background manager, and compare loading metrics (Fig 9 / Fig 10).
#pragma once

#include <memory>
#include <string>

#include "affect/scl.hpp"
#include "android/monkey.hpp"
#include "android/process.hpp"
#include "core/affect_table.hpp"

namespace affectsys::core {

/// How the App Affect Table is populated before the measured run.
enum class AffectTableSource {
  /// Analytic long-term usage distribution per emotion (an idealized
  /// "App Running Record" after unbounded observation).
  kAnalytic,
  /// Learned online from a separate warm-up usage sequence (finite,
  /// noisy observation — the literal Fig 8 record path).
  kOnlineWarmup,
};

struct ManagerExperimentConfig {
  android::EmulatorSpec emulator{};
  /// Excited for the first 12 minutes, calm for the following 8 (Fig 9).
  affect::EmotionTimeline timeline;
  android::MonkeyConfig monkey{};
  unsigned catalog_seed = 2022;
  /// Baseline policy name: "fifo" (paper default), "lru" or "frequency".
  std::string baseline = "fifo";
  AffectTableSource table_source = AffectTableSource::kAnalytic;
  /// Warm-up observation length (multiples of the timeline) for
  /// kOnlineWarmup.
  int warmup_repeats = 3;
  /// Extension: on every emotion change, speculatively preload the top-k
  /// ranked apps for the new emotion (never evicting anything).
  bool prefetch_on_emotion_change = false;
  int prefetch_top_k = 3;
  /// Extension: zram-style compression before killing under RAM pressure
  /// (applies to both the baseline and the proposed run).
  bool zram = false;

  ManagerExperimentConfig();
};

struct ManagerExperimentResult {
  android::LoadingMetrics baseline;
  android::LoadingMetrics proposed;
  android::Tracer baseline_trace;
  android::Tracer proposed_trace;
  std::vector<android::UsageEvent> events;
  std::vector<android::App> catalog;
  double duration_s = 0.0;

  double memory_saving() const {
    return baseline.memory_loaded_bytes
               ? 1.0 - static_cast<double>(proposed.memory_loaded_bytes) /
                           static_cast<double>(baseline.memory_loaded_bytes)
               : 0.0;
  }
  double time_saving() const {
    return baseline.loading_time_s > 0.0
               ? 1.0 - proposed.loading_time_s / baseline.loading_time_s
               : 0.0;
  }
};

/// Runs both policies on the same usage sequence.  The App Affect Table is
/// seeded from the subjects' analytic usage profiles (long-term "App
/// Running Record"); the emotional policy tracks the timeline's emotion.
ManagerExperimentResult run_manager_experiment(
    const ManagerExperimentConfig& cfg);

/// Constructs a baseline KillPolicy by name ("fifo" / "lru" / "frequency").
std::unique_ptr<android::KillPolicy> make_baseline_policy(
    const std::string& name);

}  // namespace affectsys::core
