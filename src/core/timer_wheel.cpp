#include "core/timer_wheel.hpp"

#include <algorithm>
#include <stdexcept>

namespace affectsys::core {

TimerWheel::TimerWheel() {
  // ~100 KB up front buys allocation-free steady state for sparse
  // fleets (a slot's first entry would otherwise heap-grow it, and with
  // 768 slots "first" keeps happening at test/bench timescales).
  constexpr std::size_t kReserve = 8;
  for (auto& level : slots_) {
    for (auto& slot : level) slot.reserve(kReserve);
  }
  cascade_scratch_.reserve(kReserve);
}

void TimerWheel::schedule_at(std::uint64_t tick, std::uint64_t key) {
  place(std::max(tick, now_), key);
  ++scheduled_;
}

void TimerWheel::place(std::uint64_t due, std::uint64_t key) {
  // File at the lowest level whose slot index still distinguishes this
  // due tick from now; clamp anything beyond the top level's horizon
  // into the top level (the cascade re-files it by its true due tick
  // each wrap until it comes into range).
  std::size_t level = kLevels - 1;
  for (std::size_t l = 0; l < kLevels; ++l) {
    if ((due >> ((l + 1) * kLevelBits)) == (now_ >> ((l + 1) * kLevelBits))) {
      level = l;
      break;
    }
  }
  const std::uint64_t horizon =
      now_ + (std::uint64_t{1} << (kLevels * kLevelBits)) - 1;
  const std::uint64_t eff = std::min(due, horizon);
  const std::size_t idx =
      static_cast<std::size_t>(eff >> (level * kLevelBits)) & (kSlots - 1);
  slots_[level][idx].push_back(Entry{due, key});
}

void TimerWheel::cascade(std::size_t level, std::size_t slot) {
  auto& src = slots_[level][slot];
  if (src.empty()) return;
  // Copy into the scratch first: place() may legally re-file a clamped
  // far-future entry back into the very slot being cascaded.  (Copy
  // rather than swap — swapping would trade the slot's warmed capacity
  // for the scratch's, churning allocations every cascade.)
  cascade_scratch_.assign(src.begin(), src.end());
  src.clear();
  for (const Entry& e : cascade_scratch_) place(e.due, e.key);
  cascade_scratch_.clear();
}

void TimerWheel::collect(std::uint64_t tick, std::vector<std::uint64_t>& due) {
  if (tick != now_) {
    throw std::logic_error("TimerWheel::collect: tick must equal now()");
  }
  const std::size_t idx0 = static_cast<std::size_t>(now_) & (kSlots - 1);
  if (idx0 == 0) {
    // Crossing a level-0 block boundary: cascade higher levels first
    // (top down, so a level-2 entry can land in level 1 and then level
    // 0 within the same boundary crossing).
    if ((static_cast<std::size_t>(now_ >> kLevelBits) & (kSlots - 1)) == 0) {
      cascade(2, static_cast<std::size_t>(now_ >> (2 * kLevelBits)) &
                     (kSlots - 1));
    }
    cascade(1, static_cast<std::size_t>(now_ >> kLevelBits) & (kSlots - 1));
  }
  auto& slot = slots_[0][idx0];
  if (!slot.empty()) {
    // Every entry here is due exactly now (level 0 only holds entries
    // inside the current block, distinguished by their low bits).
    std::sort(slot.begin(), slot.end(),
              [](const Entry& a, const Entry& b) { return a.key < b.key; });
    for (const Entry& e : slot) due.push_back(e.key);
    scheduled_ -= slot.size();
    slot.clear();  // capacity retained
  }
  ++now_;
}

}  // namespace affectsys::core
