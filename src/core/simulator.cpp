#include "core/simulator.hpp"

#include <set>

#include "core/emotional_policy.hpp"

namespace affectsys::core {

SystemScenarioConfig::SystemScenarioConfig() {
  // Default session: the uulmMAC 40-minute protocol.
  timeline = affect::uulmmac_session_timeline();
}

SystemScenarioReport run_system_scenario(const SystemScenarioConfig& cfg,
                                         adaptive::AdaptiveDecoderSystem& dec) {
  SystemScenarioReport report;

  // ---- 1. Sense: SCL trace -> windowed labels -> controller ------------
  affect::SclGenerator scl_gen(cfg.scl);
  const auto trace = scl_gen.generate(cfg.timeline);
  affect::SclEmotionEstimator estimator;
  estimator.calibrate(trace, cfg.scl.sample_rate_hz, cfg.timeline);

  const auto catalog = android::build_catalog(cfg.emulator, cfg.catalog_seed);
  AppAffectTable table;
  std::set<affect::Emotion> seen;
  for (const auto& seg : cfg.timeline.segments) {
    if (seen.insert(seg.emotion).second) {
      table.learn_from_profile(seg.emotion,
                               android::profile_for_emotion(seg.emotion),
                               catalog);
    }
  }
  EmotionalKillPolicy emotional_policy(table);
  SystemController controller(cfg.smoothing, adaptive::AffectVideoPolicy{},
                              &emotional_policy);

  const auto win =
      static_cast<std::size_t>(cfg.scl_window_s * cfg.scl.sample_rate_hz);
  std::size_t correct = 0, total = 0;
  double seg_start = 0.0;
  affect::Emotion current = affect::Emotion::kNeutral;
  bool first = true;
  for (std::size_t start = 0; start + win <= trace.size(); start += win) {
    const double t = static_cast<double>(start) / cfg.scl.sample_rate_hz;
    const affect::Emotion raw = estimator.classify({trace.data() + start, win});
    correct += raw == cfg.timeline.at(t);
    ++total;
    if (first) {
      current = raw;
      first = false;
    }
    if (const auto ev = controller.on_classification(t, raw)) {
      if (t > seg_start) {
        report.estimated_timeline.segments.push_back({seg_start, t, current});
        seg_start = t;
      }
      current = ev->emotion;
    }
  }
  const double end_s = cfg.timeline.duration_s();
  if (end_s > seg_start) {
    report.estimated_timeline.segments.push_back({seg_start, end_s, current});
  }
  report.window_accuracy =
      total ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
  report.mode_changes = controller.mode_changes();

  // ---- 2. Video: playback over the controller's stable emotions --------
  report.playback = adaptive::simulate_playback(
      dec, report.estimated_timeline, adaptive::AffectVideoPolicy{});

  // ---- 3. Apps: user behaves per ground truth, manager sees estimates --
  android::MonkeyScript monkey(catalog, cfg.monkey);
  const auto events = monkey.generate(cfg.timeline);

  android::ProcessManagerConfig pm_cfg;
  pm_cfg.process_limit = static_cast<std::size_t>(cfg.emulator.process_limit);
  pm_cfg.ram_bytes = cfg.emulator.ram_bytes;
  {
    android::FifoKillPolicy fifo;
    android::ProcessManager pm(catalog, pm_cfg, fifo);
    for (const auto& ev : events) pm.launch(ev.app, ev.time_s);
    report.app_baseline = pm.metrics();
  }
  {
    android::ProcessManager pm(catalog, pm_cfg, emotional_policy);
    for (const auto& ev : events) {
      // The policy's emotion follows the controller's estimate for the
      // launch time, not the ground truth.
      emotional_policy.set_emotion(report.estimated_timeline.at(ev.time_s));
      pm.launch(ev.app, ev.time_s);
    }
    report.app_proposed = pm.metrics();
  }
  return report;
}

}  // namespace affectsys::core
