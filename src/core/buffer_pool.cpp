#include "core/buffer_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <new>
#include <stdexcept>

namespace affectsys::core {

void BufferRef::reset() {
  if (block_ == nullptr) {
    size_ = 0;
    return;
  }
  BufferBlock* b = block_;
  block_ = nullptr;
  size_ = 0;
  // acq_rel: the last releaser must observe every write the other
  // handles made into the payload before the block is reused or freed.
  if (b->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (b->pool != nullptr) {
      b->pool->release(b);
    } else {
      b->~BufferBlock();
      ::operator delete(static_cast<void*>(b));
    }
  }
}

BufferRef BufferRef::heap(std::size_t size) {
  if (size == 0) return {};
  void* mem = ::operator new(BufferBlock::payload_offset() + size);
  auto* block = new (mem) BufferBlock;
  block->refs.store(1, std::memory_order_relaxed);
  block->capacity = static_cast<std::uint32_t>(size);
  block->pool = nullptr;
  return BufferRef(block, size);
}

BufferPool::BufferPool(const BufferPoolConfig& cfg) : cfg_(cfg) {
  if (cfg_.block_size == 0 || cfg_.blocks == 0) {
    throw std::invalid_argument("BufferPool: block_size and blocks >= 1");
  }
  const std::size_t stride = BufferBlock::payload_offset() + cfg_.block_size;
  arena_ = static_cast<std::uint8_t*>(::operator new(
      stride * cfg_.blocks, std::align_val_t{alignof(std::max_align_t)}));
  // Thread the free list front to back, so the first acquires walk the
  // arena in address order (warm, predictable strides).
  for (std::size_t i = cfg_.blocks; i > 0; --i) {
    auto* block = new (arena_ + (i - 1) * stride) BufferBlock;
    block->capacity = static_cast<std::uint32_t>(cfg_.block_size);
    block->pool = this;
    block->next = free_head_;
    free_head_ = block;
  }
}

BufferPool::~BufferPool() {
  // Contract: the pool outlives every BufferRef it issued; by now all
  // blocks are back on the free list and the control records are
  // trivially destructible.
  ::operator delete(static_cast<void*>(arena_),
                    std::align_val_t{alignof(std::max_align_t)});
}

BufferRef BufferPool::acquire(std::size_t size) {
  if (size == 0) return {};
  if (size <= cfg_.block_size) {
    std::lock_guard<std::mutex> lk(mu_);
    if (free_head_ != nullptr) {
      BufferBlock* block = free_head_;
      free_head_ = block->next;
      block->next = nullptr;
      block->refs.store(1, std::memory_order_relaxed);
      ++stats_.acquires;
      ++stats_.in_use;
      stats_.high_water = std::max(stats_.high_water, stats_.in_use);
      return BufferRef(block, size);
    }
    ++stats_.heap_fallbacks;
  } else {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.heap_fallbacks;
  }
  return BufferRef::heap(size);
}

void BufferPool::release(BufferBlock* block) {
  std::lock_guard<std::mutex> lk(mu_);
  block->next = free_head_;
  free_head_ = block;
  --stats_.in_use;
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace affectsys::core
