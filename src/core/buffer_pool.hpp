// Pooled refcounted byte buffers: one arena, a free list, and an
// intrusive-refcount handle, so steady-state media payloads (staged
// feature windows, wire-format packet blobs) move by pointer with zero
// heap allocation.
//
// Layout: the arena is carved into fixed-size blocks, each headed by a
// BufferBlock control record (refcount, capacity, owning pool,
// free-list link) with the payload following at max_align_t alignment.
// acquire() pops the free list; the last BufferRef release pushes the
// block back.  Requests larger than the block size — or arriving with
// the free list empty — fall back to a heap-backed block with a null
// pool pointer (released straight to the allocator), so exhaustion
// degrades to the pre-pool behaviour instead of failing; the stats
// record how often.
//
// Thread-safety: acquire() and release are mutex-serialized (a block
// acquired on the serve thread may take its last release on a pool
// worker), and the refcount itself is atomic, so BufferRef copies can
// be dropped from any thread.  The pool must outlive every BufferRef
// it issued.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>

namespace affectsys::core {

class BufferPool;

/// Intrusive control record at the head of every block (pooled or
/// heap-fallback).  Internal to BufferPool/BufferRef.
struct BufferBlock {
  std::atomic<std::uint32_t> refs{0};
  std::uint32_t capacity = 0;  ///< payload bytes following the header
  BufferPool* pool = nullptr;  ///< null = heap fallback block
  BufferBlock* next = nullptr; ///< free-list link (pooled blocks only)

  std::uint8_t* payload() {
    return reinterpret_cast<std::uint8_t*>(this) + payload_offset();
  }
  static constexpr std::size_t payload_offset() {
    // Header rounded up so the payload is max_align_t-aligned (the
    // serve layer stages float matrices through these blocks).
    constexpr std::size_t a = alignof(std::max_align_t);
    return (sizeof(BufferBlock) + a - 1) / a * a;
  }
};

/// Shared handle to one buffer: copies bump the refcount, the last
/// destruction returns the block to its pool (or the heap).  A
/// default-constructed ref is empty (data() == nullptr, size() == 0).
class BufferRef {
 public:
  BufferRef() = default;
  ~BufferRef() { reset(); }

  BufferRef(const BufferRef& o) : block_(o.block_), size_(o.size_) {
    if (block_) block_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  BufferRef(BufferRef&& o) noexcept : block_(o.block_), size_(o.size_) {
    o.block_ = nullptr;
    o.size_ = 0;
  }
  BufferRef& operator=(const BufferRef& o) {
    if (this != &o) {
      if (o.block_) o.block_->refs.fetch_add(1, std::memory_order_relaxed);
      reset();
      block_ = o.block_;
      size_ = o.size_;
    }
    return *this;
  }
  BufferRef& operator=(BufferRef&& o) noexcept {
    if (this != &o) {
      reset();
      block_ = o.block_;
      size_ = o.size_;
      o.block_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }

  /// Drops this handle (releasing the block on the last one) and
  /// becomes empty.
  void reset();

  /// Heap-backed buffer with no pool behind it — the fallback the pool
  /// uses on exhaustion, also usable standalone where no pool exists.
  static BufferRef heap(std::size_t size);

  std::uint8_t* data() { return block_ ? block_->payload() : nullptr; }
  const std::uint8_t* data() const {
    return block_ ? block_->payload() : nullptr;
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::span<std::uint8_t> span() { return {data(), size_}; }
  std::span<const std::uint8_t> span() const { return {data(), size_}; }

  /// Handles (including this one) currently sharing the block.
  std::uint32_t use_count() const {
    return block_ ? block_->refs.load(std::memory_order_relaxed) : 0;
  }
  /// True when the block came from a pool free list (false for empty
  /// refs and heap fallbacks).
  bool pooled() const { return block_ != nullptr && block_->pool != nullptr; }

 private:
  friend class BufferPool;
  BufferRef(BufferBlock* block, std::size_t size)
      : block_(block), size_(size) {}

  BufferBlock* block_ = nullptr;
  std::size_t size_ = 0;
};

struct BufferPoolConfig {
  std::size_t block_size = 4096;  ///< payload bytes per pooled block
  std::size_t blocks = 256;       ///< blocks carved from the arena
};

struct BufferPoolStats {
  std::uint64_t acquires = 0;        ///< pooled blocks handed out
  std::uint64_t heap_fallbacks = 0;  ///< oversize or exhausted requests
  std::size_t in_use = 0;            ///< pooled blocks not on the free list
  std::size_t high_water = 0;        ///< max in_use ever
};

class BufferPool {
 public:
  explicit BufferPool(const BufferPoolConfig& cfg);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer of exactly `size` bytes: pooled when size fits a block
  /// and one is free, heap-backed otherwise (never fails short of the
  /// allocator failing).  acquire(0) returns an empty ref.
  BufferRef acquire(std::size_t size);

  std::size_t block_size() const { return cfg_.block_size; }
  std::size_t blocks() const { return cfg_.blocks; }
  BufferPoolStats stats() const;

 private:
  friend class BufferRef;
  void release(BufferBlock* block);

  BufferPoolConfig cfg_;
  std::uint8_t* arena_ = nullptr;
  mutable std::mutex mu_;
  BufferBlock* free_head_ = nullptr;
  BufferPoolStats stats_;
};

}  // namespace affectsys::core
