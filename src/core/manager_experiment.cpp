#include "core/manager_experiment.hpp"

#include <set>
#include <stdexcept>

#include "core/emotional_policy.hpp"

namespace affectsys::core {

ManagerExperimentConfig::ManagerExperimentConfig() {
  timeline.segments = {
      {0.0, 12.0 * 60.0, affect::Emotion::kExcited},
      {12.0 * 60.0, 20.0 * 60.0, affect::Emotion::kCalm},
  };
}

std::unique_ptr<android::KillPolicy> make_baseline_policy(
    const std::string& name) {
  if (name == "fifo") return std::make_unique<android::FifoKillPolicy>();
  if (name == "lru") return std::make_unique<android::LruKillPolicy>();
  if (name == "frequency") {
    return std::make_unique<android::FrequencyKillPolicy>();
  }
  throw std::invalid_argument("unknown baseline policy: " + name);
}

ManagerExperimentResult run_manager_experiment(
    const ManagerExperimentConfig& cfg) {
  ManagerExperimentResult res;
  res.catalog = android::build_catalog(cfg.emulator, cfg.catalog_seed);
  res.duration_s = cfg.timeline.duration_s();

  // One monkey sequence, replayed identically under both policies.
  android::MonkeyScript monkey(res.catalog, cfg.monkey);
  res.events = monkey.generate(cfg.timeline);

  android::ProcessManagerConfig pm_cfg;
  pm_cfg.process_limit = static_cast<std::size_t>(cfg.emulator.process_limit);
  pm_cfg.ram_bytes = cfg.emulator.ram_bytes;
  pm_cfg.compress_instead_of_kill = cfg.zram;

  // ---- Baseline run ---------------------------------------------------
  {
    auto policy = make_baseline_policy(cfg.baseline);
    android::ProcessManager pm(res.catalog, pm_cfg, *policy,
                               &res.baseline_trace);
    for (const android::UsageEvent& ev : res.events) {
      pm.launch(ev.app, ev.time_s);
    }
    res.baseline = pm.metrics();
  }

  // ---- Proposed run ---------------------------------------------------
  {
    AppAffectTable table;
    if (cfg.table_source == AffectTableSource::kAnalytic) {
      // Seed the table with the analytic profiles of every emotion
      // appearing in the timeline.
      std::set<affect::Emotion> seen;
      for (const auto& seg : cfg.timeline.segments) {
        if (seen.insert(seg.emotion).second) {
          table.learn_from_profile(
              seg.emotion, android::profile_for_emotion(seg.emotion),
              res.catalog);
        }
      }
    } else {
      // Learn online from warm-up sessions generated with a different
      // seed (finite observation of the same user behaviour).
      android::MonkeyConfig warm_cfg = cfg.monkey;
      warm_cfg.seed = cfg.monkey.seed ^ 0x5bd1e995u;
      android::MonkeyScript warm_monkey(res.catalog, warm_cfg);
      for (int rep = 0; rep < cfg.warmup_repeats; ++rep) {
        for (const android::UsageEvent& ev :
             warm_monkey.generate(cfg.timeline)) {
          table.observe(ev.emotion, ev.app);
        }
      }
    }
    EmotionalKillPolicy policy(table);
    android::ProcessManager pm(res.catalog, pm_cfg, policy,
                               &res.proposed_trace);
    for (const android::UsageEvent& ev : res.events) {
      // The classifier's stable emotion drives the rank generator.
      if (policy.emotion() != ev.emotion) {
        policy.set_emotion(ev.emotion);
        res.proposed_trace.record(ev.time_s,
                                  android::TraceEventType::kEmotionChange, 0,
                                  std::string(affect::emotion_name(ev.emotion)));
        if (cfg.prefetch_on_emotion_change) {
          int loaded = 0;
          for (android::AppId app : table.rank(ev.emotion)) {
            if (loaded >= cfg.prefetch_top_k) break;
            if (pm.preload(app, ev.time_s)) ++loaded;
          }
        }
      }
      pm.launch(ev.app, ev.time_s);
    }
    res.proposed = pm.metrics();
  }
  return res;
}

}  // namespace affectsys::core
