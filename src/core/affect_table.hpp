// The Background "App Affect Table" and App Rank Generator of Fig 8:
// per-emotion app-usage statistics that the emotional background manager
// turns into kill priorities.
#pragma once

#include <map>
#include <vector>

#include "affect/emotion.hpp"
#include "android/personality.hpp"

namespace affectsys::core {

/// Per-emotion, per-app usage scores.  Higher score = more likely to be
/// used while the user is in that emotion = higher priority to keep
/// cached.
class AppAffectTable {
 public:
  /// Online learning: records one observed launch under an emotion
  /// (the "App Running Record with Emotion Conditions" path of Fig 8).
  void observe(affect::Emotion e, android::AppId app, double weight = 1.0);

  /// Seeds the table from a personality profile's analytic launch
  /// distribution over the catalog (category weight x within-category
  /// Zipf preference, mirroring the monkey generator).
  void learn_from_profile(affect::Emotion e,
                          const android::SubjectProfile& profile,
                          const std::vector<android::App>& catalog);

  /// Usage score of an app under an emotion (0 when never seen).
  double score(affect::Emotion e, android::AppId app) const;

  /// Apps ranked most-likely-first for an emotion (the App Rank
  /// Generator output).
  std::vector<android::AppId> rank(affect::Emotion e) const;

  /// True when the table has any data for the emotion.
  bool knows(affect::Emotion e) const;

 private:
  std::map<affect::Emotion, std::map<android::AppId, double>> scores_;
};

}  // namespace affectsys::core
