#include "core/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/metrics.hpp"

namespace affectsys::core {
namespace {

/// Owning pool of the current thread, for nested-parallel_for detection.
thread_local const ThreadPool* tls_pool = nullptr;

constexpr bool threads_enabled() {
#if defined(AFFECTSYS_THREADS) && AFFECTSYS_THREADS
  return true;
#else
  return false;
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (!threads_enabled()) threads = 0;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::on_pool_thread() const { return tls_pool == this; }

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push_back(std::move(task));
    AFFECTSYS_GAUGE_SET("core.pool_queue_depth", tasks_.size());
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  tls_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      AFFECTSYS_GAUGE_SET("core.pool_queue_depth", tasks_.size());
    }
    AFFECTSYS_COUNT("core.pool_tasks", 1);
    {
      // Tasks never throw: submit() routes exceptions through the
      // packaged_task future and parallel_for chunks catch internally.
      AFFECTSYS_TIME_SCOPE("core.pool_task_ns");
      task();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  // Inline when serial, when the range is one chunk, or when nested
  // inside a task of this pool (workers waiting on workers deadlocks a
  // bounded pool; inner loops of an already-parallel outer loop gain
  // nothing from further splitting).  The inline path still walks the
  // same chunk boundaries as the pooled path, keeping fn invocations a
  // pure function of (begin, end, grain) at every thread count.
  if (workers_.empty() || n <= grain || on_pool_thread()) {
    for (std::size_t lo = begin; lo < end; lo += grain) {
      fn(lo, std::min(end, lo + grain));
    }
    return;
  }

  struct State {
    std::size_t begin, end, grain, n_chunks;
    const std::function<void(std::size_t, std::size_t)>* fn;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::size_t done = 0;  // guarded by mu
    std::exception_ptr eptr;  // guarded by mu
    std::mutex mu;
    std::condition_variable cv;
  };
  auto st = std::make_shared<State>();
  st->begin = begin;
  st->end = end;
  st->grain = grain;
  st->n_chunks = (n + grain - 1) / grain;
  st->fn = &fn;

  auto run_chunks = [st] {
    for (;;) {
      const std::size_t i = st->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= st->n_chunks) return;
      if (!st->failed.load(std::memory_order_acquire)) {
        const std::size_t lo = st->begin + i * st->grain;
        const std::size_t hi = std::min(st->end, lo + st->grain);
        try {
          (*st->fn)(lo, hi);
        } catch (...) {
          std::lock_guard<std::mutex> lk(st->mu);
          if (!st->eptr) st->eptr = std::current_exception();
          st->failed.store(true, std::memory_order_release);
        }
      }
      std::lock_guard<std::mutex> lk(st->mu);
      if (++st->done == st->n_chunks) st->cv.notify_all();
    }
  };

  // Helpers share the chunk counter; the caller participates too, so
  // progress is guaranteed even if no worker ever picks a helper up.
  const std::size_t helpers = std::min(workers_.size(), st->n_chunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) enqueue(run_chunks);
  run_chunks();

  std::unique_lock<std::mutex> lk(st->mu);
  st->cv.wait(lk, [&] { return st->done == st->n_chunks; });
  if (st->eptr) std::rethrow_exception(st->eptr);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

ThreadPool* ensure_global_pool() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_thread_count());
  return g_pool.get();
}

}  // namespace

ThreadPool& global_pool() { return *ensure_global_pool(); }

void set_global_threads(std::size_t n) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool = std::make_unique<ThreadPool>(n);
  AFFECTSYS_GAUGE_SET("core.pool_threads", g_pool->size());
}

std::size_t global_threads() { return ensure_global_pool()->size(); }

std::size_t default_thread_count() {
  if (!threads_enabled()) return 0;
  if (const char* env = std::getenv("AFFECTSYS_NUM_THREADS")) {
    char* tail = nullptr;
    const long v = std::strtol(env, &tail, 10);
    if (tail != env && v >= 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  // On a single-core host a pool cannot add throughput, only dispatch
  // overhead, so the default is the inline path.
  return hw > 1 ? hw : 0;
}

}  // namespace affectsys::core
