// The Emotional App Manager kill policy (Fig 8): victims are the cached
// apps least likely to be used under the *current* emotion according to
// the App Affect Table.
#pragma once

#include "android/policy.hpp"
#include "core/affect_table.hpp"

namespace affectsys::core {

class EmotionalKillPolicy : public android::KillPolicy {
 public:
  /// The table must outlive the policy.
  explicit EmotionalKillPolicy(const AppAffectTable& table)
      : table_(table) {}

  /// Called by the system controller when the classifier reports a new
  /// stable emotion ("when the emotion changes, the preferred Apps based
  /// on the new emotion state will be given a higher priority").
  void set_emotion(affect::Emotion e) { emotion_ = e; }
  affect::Emotion emotion() const { return emotion_; }

  std::optional<android::AppId> select_victim(
      const std::vector<android::VictimCandidate>& candidates) override;
  std::string_view name() const override { return "emotional"; }

 private:
  const AppAffectTable& table_;
  affect::Emotion emotion_ = affect::Emotion::kNeutral;
};

}  // namespace affectsys::core
