#include "core/controller.hpp"

namespace affectsys::core {

SystemController::SystemController(const affect::StreamConfig& stream_cfg,
                                   adaptive::AffectVideoPolicy video_policy,
                                   EmotionalKillPolicy* app_policy)
    : stream_(stream_cfg),
      video_policy_(video_policy),
      app_policy_(app_policy) {}

std::optional<ControllerEvent> SystemController::on_classification(
    double t_s, affect::Emotion raw, float confidence) {
  if (confidence < min_confidence_) {
    ++gated_;
    return std::nullopt;
  }
  return on_classification(t_s, raw);
}

std::optional<ControllerEvent> SystemController::on_classification(
    double t_s, affect::Emotion raw) {
  const auto changed = stream_.push(t_s, raw);
  if (!changed) return std::nullopt;

  ControllerEvent ev;
  ev.time_s = t_s;
  ev.emotion = *changed;
  ev.video_mode = video_policy_.mode_for(*changed);
  if (app_policy_) app_policy_->set_emotion(*changed);
  for (auto& cb : observers_) cb(ev);
  return ev;
}

}  // namespace affectsys::core
