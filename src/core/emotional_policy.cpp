#include "core/emotional_policy.hpp"

#include <algorithm>

namespace affectsys::core {

std::optional<android::AppId> EmotionalKillPolicy::select_victim(
    const std::vector<android::VictimCandidate>& candidates) {
  if (candidates.empty()) return std::nullopt;
  if (!table_.knows(emotion_)) return std::nullopt;  // fall back to FIFO
  const auto it = std::min_element(
      candidates.begin(), candidates.end(),
      [&](const android::VictimCandidate& a,
          const android::VictimCandidate& b) {
        const double sa = table_.score(emotion_, a.app);
        const double sb = table_.score(emotion_, b.app);
        // Lowest emotional relevance dies first; FIFO breaks ties.
        return sa != sb ? sa < sb : a.loaded_at_s < b.loaded_at_s;
      });
  return it->app;
}

}  // namespace affectsys::core
