#include "fault/scenario.hpp"

#include <cmath>
#include <cstring>

#include "affect/classifier.hpp"
#include "affect/realtime.hpp"
#include "affect/speech_synth.hpp"
#include "android/catalog.hpp"
#include "android/personality.hpp"
#include "core/affect_table.hpp"
#include "fault/audio_faults.hpp"
#include "fault/bitstream_faults.hpp"
#include "h264/encoder.hpp"
#include "h264/testvideo.hpp"
#include "nn/model.hpp"
#include "serve/server.hpp"

namespace affectsys::fault {

namespace {

/// Process-lifetime fixtures shared by every scenario run: synthesis
/// and training are the expensive parts and both are deterministic, so
/// building them once changes nothing about replay identity.
struct ScenarioWorld {
  serve::SharedWorkload workload;
  affect::AffectClassifier classifier;
  std::vector<android::App> catalog;
  core::AppAffectTable table;
  std::vector<std::uint8_t> clip;

  ScenarioWorld()
      : workload(serve::WorkloadConfig{}),
        classifier([] {
          affect::CorpusProfile prof;
          prof.name = "fault";
          prof.num_speakers = 4;
          prof.emotions = {affect::Emotion::kAngry, affect::Emotion::kCalm};
          prof.utterances_per_speaker_emotion = 6;
          prof.utterance_seconds = 1.0;
          prof.speaker_spread = 0.1;
          nn::TrainConfig tc;
          tc.epochs = 8;
          tc.batch_size = 8;
          tc.learning_rate = 2e-3f;
          return affect::train_affect_classifier(nn::ModelKind::kMlp, prof,
                                                 tc);
        }()),
        catalog(android::build_catalog(android::EmulatorSpec{})) {
    for (const auto e : {affect::Emotion::kAngry, affect::Emotion::kCalm}) {
      table.learn_from_profile(e, android::profile_for_emotion(e), catalog);
    }
    const h264::VideoConfig vc{64, 64, 12, 1.0, 0.5, 1.0, 5};
    h264::Encoder enc(h264::EncoderConfig{64, 64, 26, 12, 2, 4, true});
    clip = enc.encode_annexb(h264::generate_test_video(vc));
  }
};

ScenarioWorld& world() {
  static ScenarioWorld w;
  return w;
}

void fnv_mix(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
}

/// Scripted capture audio: the session fill_chunk logic, flattened.
std::vector<double> make_scenario_audio(double seconds) {
  const serve::SharedWorkload& wl = world().workload;
  const double rate = wl.config().sample_rate_hz;
  const auto script = wl.make_script(/*seed=*/42, /*segments=*/8);
  std::vector<double> out(static_cast<std::size_t>(seconds * rate));
  std::size_t idx = 0;
  std::size_t offset = 0;
  for (double& sample : out) {
    const serve::ScriptSegment* seg = &script[idx];
    auto speech_n = static_cast<std::size_t>(seg->speech_s * rate);
    auto total_n = speech_n + static_cast<std::size_t>(seg->silence_s * rate);
    while (offset >= total_n) {
      offset = 0;
      idx = (idx + 1) % script.size();
      seg = &script[idx];
      speech_n = static_cast<std::size_t>(seg->speech_s * rate);
      total_n = speech_n + static_cast<std::size_t>(seg->silence_s * rate);
    }
    if (offset < speech_n) {
      const std::span<const double> utt = wl.utterance(seg->emotion);
      sample = utt[offset % utt.size()];
    } else {
      sample = 0.0;
    }
    ++offset;
  }
  return out;
}

}  // namespace

std::uint64_t fnv1a_bytes(std::span<const std::uint8_t> bytes,
                          std::uint64_t h) {
  fnv_mix(h, bytes.data(), bytes.size());
  return h;
}

std::uint64_t digest_pictures(std::span<const h264::DecodedPicture> pics,
                              std::uint64_t h) {
  for (const h264::DecodedPicture& pic : pics) {
    fnv_mix(h, &pic.poc, sizeof(pic.poc));
    const auto type = static_cast<std::uint8_t>(pic.type);
    fnv_mix(h, &type, sizeof(type));
    fnv_mix(h, pic.frame.y.data.data(), pic.frame.y.data.size());
    fnv_mix(h, pic.frame.cb.data.data(), pic.frame.cb.data.size());
    fnv_mix(h, pic.frame.cr.data.data(), pic.frame.cr.data.size());
  }
  return h;
}

std::span<const std::uint8_t> scenario_reference_stream() {
  return world().clip;
}

serve::SessionEnv scenario_env() {
  ScenarioWorld& w = world();
  serve::SessionEnv env;
  env.workload = &w.workload;
  env.classifier = &w.classifier;
  env.app_table = &w.table;
  env.catalog = &w.catalog;
  return env;
}

BitstreamScenarioResult run_bitstream_scenario(const ScenarioConfig& cfg) {
  FaultPlan plan(
      FaultConfig{cfg.seed, cfg.rate, cfg.kinds & kBitstreamKinds});
  FaultCounts counts;
  const std::vector<std::uint8_t> faulted =
      inject_annexb_faults(scenario_reference_stream(), plan, counts);

  h264::Decoder dec(h264::DecoderConfig{/*enable_deblock=*/true,
                                        /*resilient=*/true});
  const std::vector<h264::DecodedPicture> pics = dec.decode_annexb(faulted);

  BitstreamScenarioResult res;
  res.stream_digest = fnv1a_bytes(faulted);
  res.pixel_digest = digest_pictures(pics);
  res.pictures = pics.size();
  res.faults = counts.total;
  res.nal_errors = dec.activity().nal_errors;
  res.resyncs = dec.activity().resyncs;
  return res;
}

AudioScenarioResult run_audio_scenario(const ScenarioConfig& cfg) {
  FaultPlan plan(FaultConfig{cfg.seed, cfg.rate, cfg.kinds & kAudioKinds});
  FaultCounts counts;

  affect::RealtimeConfig rc;
  rc.gap_tolerance_s = 0.25;  // reachable by 3+ consecutive chunk drops
  affect::RealtimePipeline pipe(world().classifier, rc);

  AudioScenarioResult res;
  pipe.on_raw_label([&res](double t_end, affect::Emotion e, float conf) {
    fnv_mix(res.label_digest, &t_end, sizeof(t_end));
    const auto emo = static_cast<std::uint8_t>(e);
    fnv_mix(res.label_digest, &emo, sizeof(emo));
    fnv_mix(res.label_digest, &conf, sizeof(conf));
  });
  res.label_digest = kFnvBasis;

  static const std::vector<double> audio = make_scenario_audio(8.0);
  const double chunk_s = 0.1;
  const auto chunk_len = static_cast<std::size_t>(
      chunk_s * world().workload.config().sample_rate_hz);
  std::vector<double> chunk(chunk_len);
  for (std::size_t start = 0; start + chunk_len <= audio.size();
       start += chunk_len) {
    std::memcpy(chunk.data(), audio.data() + start,
                chunk_len * sizeof(double));
    // Time advances whether or not the chunk is delivered: a dropped
    // chunk is a genuine capture gap, not a pause.
    const double t_s =
        static_cast<double>(start) / world().workload.config().sample_rate_hz;
    if (!maybe_fault_audio(chunk, plan, counts)) {
      ++res.chunks_dropped;
      continue;
    }
    pipe.push_audio(t_s, chunk);
  }

  res.windows_classified = pipe.stats().windows_classified;
  res.gap_resyncs = pipe.stats().gap_resyncs;
  res.stable_changes = pipe.stats().stable_changes;
  res.faults = counts.total;
  return res;
}

ServeScenarioResult run_serve_scenario(const ScenarioConfig& cfg) {
  const serve::SessionEnv env = scenario_env();

  serve::ServerConfig sc;
  sc.max_sessions = kServeScenarioSessions;
  // Watermarks far above the offered load: the backlog ladder must stay
  // at level 0 so clean-tenant byte identity isolates quarantine
  // behaviour (the ladder is global and would legitimately couple
  // tenants).  Capacity drains every staged window the same tick.
  sc.backlog_hi = 1000;
  sc.backlog_lo = 10;
  sc.batcher.max_batch = 16;
  sc.batcher.max_delay_ticks = 0;
  sc.error_budget = 3;
  sc.error_window_ticks = 40;
  sc.quarantine_ticks = 10;
  sc.fault = FaultConfig{cfg.seed ^ 0xb47c4e12ull, cfg.rate,
                         cfg.kinds & kind_bit(FaultKind::kBatcherFallback)};

  serve::SessionManager server(sc, env);
  std::vector<serve::SessionId> ids;
  for (std::size_t i = 0; i < kServeScenarioSessions; ++i) {
    serve::SessionConfig scfg;
    scfg.seed = static_cast<unsigned>(100 + i);
    if (i % 2 == 1) {
      // Odd-index tenants take the per-session fault kinds; even-index
      // tenants are the clean neighbours the identity check protects.
      scfg.fault = FaultConfig{
          cfg.seed, cfg.rate,
          cfg.kinds & (kNalUnitKinds | kAudioKinds |
                       kind_bit(FaultKind::kSessionStall))};
    }
    ids.push_back(server.create_session(scfg));
  }

  for (int t = 0; t < 40; ++t) server.tick();
  server.drain();

  ServeScenarioResult res;
  for (const serve::SessionId id : ids) {
    const serve::SessionReport rep = server.report(id);
    res.decode_digests.push_back(rep.decode_digest);
    std::uint64_t wh = kFnvBasis;
    for (const serve::WindowRecord& rec : rep.windows) {
      fnv_mix(wh, &rec.seq, sizeof(rec.seq));
      fnv_mix(wh, &rec.t_end, sizeof(rec.t_end));
      const auto emo = static_cast<std::uint8_t>(rec.emotion);
      fnv_mix(wh, &emo, sizeof(emo));
      fnv_mix(wh, &rec.confidence, sizeof(rec.confidence));
      if (!rec.probabilities.empty()) {
        fnv_mix(wh, rec.probabilities.data(),
                rec.probabilities.size() * sizeof(float));
      }
    }
    res.window_digests.push_back(wh);
    res.session_faults.push_back(server.session(id).fault_counts().total);
  }
  res.results_routed = server.stats().results_routed;
  res.sessions_quarantined = server.stats().sessions_quarantined;
  res.sessions_restarted = server.stats().sessions_restarted;
  res.degrade_ticks = server.stats().degrade_ticks;
  res.max_degrade_level = server.stats().max_degrade_level;
  return res;
}

net::TransportConfig net_scenario_transport(bool fec) {
  net::TransportConfig tc;
  tc.enabled = true;
  tc.packetizer.mtu = 96;  // slices fragment, SPS+PPS aggregate
  tc.jitter.depth_ticks = 2;
  tc.channel.max_delay_ticks = 3;
  tc.fec.enabled = fec;
  tc.fec.group = 4;
  return tc;
}

NetScenarioResult run_net_scenario(const ScenarioConfig& cfg,
                                   const net::TransportConfig& tcfg) {
  FaultPlan plan(FaultConfig{cfg.seed, cfg.rate, cfg.kinds & kNetKinds});
  FaultCounts counts;
  net::TransportLink link(tcfg, &plan, &counts);

  const std::vector<h264::NalUnit> units =
      h264::unpack_annexb(scenario_reference_stream());
  h264::Decoder dec(h264::DecoderConfig{/*enable_deblock=*/true,
                                        /*resilient=*/true});
  std::vector<h264::DecodedPicture> pics;

  const auto drain = [&](std::uint64_t now) {
    for (const net::DepacketizerEvent& ev : link.receive(now)) {
      if (ev.loss) {
        dec.notify_loss();
        continue;
      }
      if (auto pic = dec.decode_nal(ev.nal.nal)) {
        pics.push_back(std::move(*pic));
      }
    }
  };

  // One access unit (leading parameter sets + their slice) per tick.
  std::uint64_t tick = 0;
  std::uint32_t au = 0;
  std::size_t i = 0;
  while (i < units.size()) {
    std::vector<h264::NalUnit> au_units;
    while (i < units.size()) {
      const h264::NalUnit& u = units[i++];
      au_units.push_back(u);
      if (h264::is_slice(u)) break;
    }
    link.send(au_units, au++, /*generation=*/0, tick);
    drain(tick);
    ++tick;
  }
  // Flush delayed packets and timed-out gaps (delay and jitter depth
  // are both bounded, so this converges quickly).
  for (int extra = 0; extra < 64 && !link.idle(); ++extra) drain(tick++);
  drain(tick + tcfg.jitter.depth_ticks + 1);

  NetScenarioResult res;
  res.pixel_digest = digest_pictures(pics);
  res.pictures = pics.size();
  const net::TransportStats ts = link.stats();
  res.packets_sent = ts.packets_sent + ts.parity_sent;
  res.packets_dropped = ts.packets_lost;
  res.packets_recovered = ts.packets_recovered;
  res.loss_events = ts.loss_events;
  res.loss_signals = dec.activity().loss_signals;
  res.resyncs = dec.activity().resyncs;
  res.faults = counts.total;
  return res;
}

NetScenarioResult run_net_scenario(const ScenarioConfig& cfg) {
  return run_net_scenario(cfg, net_scenario_transport());
}

}  // namespace affectsys::fault
