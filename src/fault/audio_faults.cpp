#include "fault/audio_faults.hpp"

#include <algorithm>

namespace affectsys::fault {

bool maybe_fault_audio(std::span<double> chunk, FaultPlan& plan,
                       FaultCounts& counts) {
  const auto kind = plan.next(kAudioKinds);
  if (!kind) return true;
  counts.record(*kind);
  switch (*kind) {
    case FaultKind::kAudioDrop:
      return false;
    case FaultKind::kAudioZero:
      std::fill(chunk.begin(), chunk.end(), 0.0);
      return true;
    case FaultKind::kAudioClip:
      // Overdriven capture: 8x gain into a hard limiter.
      for (double& s : chunk) s = std::clamp(8.0 * s, -1.0, 1.0);
      return true;
    case FaultKind::kAudioRateGlitch:
      // Sample-and-hold at half rate: a clock glitch halving the
      // effective sample rate for this chunk.
      for (std::size_t i = 1; i < chunk.size(); i += 2) {
        chunk[i] = chunk[i - 1];
      }
      return true;
    default:
      return true;  // masked out by kAudioKinds
  }
}

}  // namespace affectsys::fault
