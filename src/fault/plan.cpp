#include "fault/plan.hpp"

#include <bit>
#include <stdexcept>

namespace affectsys::fault {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNalBitFlip: return "nal_bit_flip";
    case FaultKind::kNalTruncate: return "nal_truncate";
    case FaultKind::kNalDuplicate: return "nal_duplicate";
    case FaultKind::kNalReorder: return "nal_reorder";
    case FaultKind::kStartCodeDamage: return "start_code_damage";
    case FaultKind::kAudioDrop: return "audio_drop";
    case FaultKind::kAudioZero: return "audio_zero";
    case FaultKind::kAudioClip: return "audio_clip";
    case FaultKind::kAudioRateGlitch: return "audio_rate_glitch";
    case FaultKind::kSessionStall: return "session_stall";
    case FaultKind::kBatcherFallback: return "batcher_fallback";
    case FaultKind::kAdmissionBurst: return "admission_burst";
    case FaultKind::kPacketLoss: return "packet_loss";
    case FaultKind::kBurstLoss: return "burst_loss";
    case FaultKind::kPacketDelay: return "packet_delay";
    case FaultKind::kPacketDuplicate: return "packet_duplicate";
    case FaultKind::kPacketReorder: return "packet_reorder";
  }
  return "unknown";
}

FaultCounts& FaultCounts::operator+=(const FaultCounts& o) {
  for (std::size_t i = 0; i < kNumFaultKinds; ++i) by_kind[i] += o.by_kind[i];
  total += o.total;
  return *this;
}

FaultPlan::FaultPlan(const FaultConfig& cfg) : cfg_(cfg), state_(cfg.seed) {
  if (cfg_.rate < 0.0 || cfg_.rate > 1.0) {
    throw std::invalid_argument("FaultPlan: rate must be in [0, 1]");
  }
}

std::uint64_t FaultPlan::next_u64() {
  // splitmix64: tiny, seedable, and every output is a pure function of
  // (seed, step) — the whole replay guarantee rests on this.
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t FaultPlan::draw(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("FaultPlan::draw: n must be >= 1");
  // Modulo bias is irrelevant for fault shaping; determinism is not.
  return next_u64() % n;
}

std::optional<FaultKind> FaultPlan::next(std::uint32_t site_mask) {
  const std::uint32_t mask = cfg_.kinds & site_mask;
  if (!enabled() || mask == 0) return std::nullopt;
  ++decisions_;
  // 53-bit mantissa draw in [0, 1).
  const double u =
      static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  if (u >= cfg_.rate) return std::nullopt;
  auto pick = static_cast<int>(draw(static_cast<std::uint64_t>(
      std::popcount(mask))));
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    if ((mask & (1u << k)) == 0) continue;
    if (pick-- == 0) {
      ++faults_;
      return static_cast<FaultKind>(k);
    }
  }
  return std::nullopt;  // unreachable: popcount bounds the pick
}

}  // namespace affectsys::fault
