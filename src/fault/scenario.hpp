// Replayable fuzz scenarios: the end-to-end runs the fault suite
// executes, factored out of the tests so the same seed reproduces the
// same run everywhere — tests/test_fault.cpp, bench/bench_fault.cpp and
// `affectsys_cli fault-replay <suite> <seed> [rate]` all call these.
//
// Every scenario is a pure function of its ScenarioConfig: it builds
// its media from process-lifetime shared fixtures (seeded synthesis,
// trained classifier), injects plan-driven faults and digests what came
// out.  Result structs compare with ==, which is the replay-identity
// check: same config, same result, bit for bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/plan.hpp"
#include "h264/decoder.hpp"
#include "net/transport.hpp"
#include "serve/session.hpp"

namespace affectsys::fault {

inline constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;

/// FNV-1a over bytes (chainable via `h`): the digest primitive every
/// scenario and identity test shares.
std::uint64_t fnv1a_bytes(std::span<const std::uint8_t> bytes,
                          std::uint64_t h = kFnvBasis);

/// Order-sensitive digest of decoded pictures (poc, type, every pixel).
std::uint64_t digest_pictures(std::span<const h264::DecodedPicture> pics,
                              std::uint64_t h = kFnvBasis);

/// The 12-frame reference clip the bitstream suite corrupts (encoded
/// once per process).
std::span<const std::uint8_t> scenario_reference_stream();

/// The scenarios' process-lifetime serve fixtures (workload, trained
/// classifier, app table, catalog), for tests that build their own
/// SessionManager against the same world.  Valid for the process
/// lifetime.
serve::SessionEnv scenario_env();

struct ScenarioConfig {
  std::uint64_t seed = 1;
  double rate = 0.1;
  /// Intersected with each suite's own kind mask.
  std::uint32_t kinds = kAllKinds;
};

struct BitstreamScenarioResult {
  std::uint64_t stream_digest = 0;  ///< faulted Annex-B bytes
  std::uint64_t pixel_digest = 0;   ///< every decoded picture, in order
  std::uint64_t pictures = 0;
  std::uint64_t faults = 0;
  std::uint64_t nal_errors = 0;
  std::uint64_t resyncs = 0;

  bool operator==(const BitstreamScenarioResult&) const = default;
};

/// Injects plan-driven faults into the reference clip and decodes the
/// result with a resilient decoder.  Never throws BitstreamError: any
/// escape is a recovery-policy bug the fuzz suite must surface.
BitstreamScenarioResult run_bitstream_scenario(const ScenarioConfig& cfg);

struct AudioScenarioResult {
  std::uint64_t label_digest = 0;  ///< every raw label (t, emotion, conf)
  std::uint64_t windows_classified = 0;
  std::uint64_t gap_resyncs = 0;
  std::uint64_t stable_changes = 0;
  std::uint64_t faults = 0;
  std::uint64_t chunks_dropped = 0;

  bool operator==(const AudioScenarioResult&) const = default;
};

/// Streams a scripted 8 s capture through a RealtimePipeline in 100 ms
/// chunks, damaging chunks per the plan (drops open real time gaps).
AudioScenarioResult run_audio_scenario(const ScenarioConfig& cfg);

struct ServeScenarioResult {
  /// Per session, in id order (the fault-free baseline aligns by index).
  std::vector<std::uint64_t> decode_digests;
  std::vector<std::uint64_t> window_digests;
  std::vector<std::uint64_t> session_faults;
  std::uint64_t results_routed = 0;
  std::uint64_t sessions_quarantined = 0;
  std::uint64_t sessions_restarted = 0;
  std::uint64_t degrade_ticks = 0;
  int max_degrade_level = 0;

  bool operator==(const ServeScenarioResult&) const = default;
};

inline constexpr std::size_t kServeScenarioSessions = 4;

/// Multi-tenant run: kServeScenarioSessions sessions for 40 ticks with
/// cfg.rate applied to the odd-index sessions only (even-index tenants
/// run clean) plus server-level batcher-fallback faults.  Watermarks
/// are set high so the backlog ladder never engages — any difference in
/// a clean session's digests vs. the rate-0 baseline is quarantine
/// isolation failing, not shared-ladder coupling.
ServeScenarioResult run_serve_scenario(const ScenarioConfig& cfg);

struct NetScenarioResult {
  std::uint64_t pixel_digest = 0;  ///< every decoded picture, decode order
  std::uint64_t pictures = 0;
  std::uint64_t packets_sent = 0;  ///< data + parity
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_recovered = 0;
  std::uint64_t loss_events = 0;   ///< depacketizer loss declarations
  std::uint64_t loss_signals = 0;  ///< notify_loss calls into the decoder
  std::uint64_t resyncs = 0;
  std::uint64_t faults = 0;

  bool operator==(const NetScenarioResult&) const = default;
};

/// The transport shape the net scenario (and its bench/CLI twins) runs:
/// MTU small enough that slices fragment and parameter sets aggregate,
/// jitter depth 2 ticks, channel delays up to 3, XOR FEC over groups of
/// 4 when `fec` is set.
net::TransportConfig net_scenario_transport(bool fec = true);

/// Streams the reference clip through a TransportLink — one access unit
/// per tick, plan-driven packet faults (cfg.kinds & kNetKinds) — into a
/// resilient decoder fed loss events via notify_loss, then drains the
/// pipe.  Pure function of (cfg, tcfg).
NetScenarioResult run_net_scenario(const ScenarioConfig& cfg,
                                   const net::TransportConfig& tcfg);
NetScenarioResult run_net_scenario(const ScenarioConfig& cfg);

}  // namespace affectsys::fault
