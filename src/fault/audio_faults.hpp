// Audio fault injector: plan-driven damage to one capture chunk, in
// place.  Models the capture-path failures an edge device actually
// sees: lost DMA buffers (drop), muted or dead mics (zero), overdriven
// input (clip) and clock glitches (effective sample-rate halving).
#pragma once

#include <span>

#include "fault/plan.hpp"

namespace affectsys::fault {

/// Consults the plan for this chunk site (kAudioKinds).  Mutates the
/// chunk in place for delivered-but-damaged kinds; returns false when
/// the chunk is dropped entirely — the caller must skip delivery, which
/// opens a real time gap in the stream.
bool maybe_fault_audio(std::span<double> chunk, FaultPlan& plan,
                       FaultCounts& counts);

}  // namespace affectsys::fault
