// Deterministic fault planning: a FaultPlan is a seeded, wall-clock-free
// schedule of fault decisions.  Every injector in src/fault consults the
// plan at well-defined sites (one NAL unit, one audio chunk, one server
// tick...) and the plan answers "inject kind K here" or "no fault" as a
// pure function of (seed, rate, kind mask, decision index) — so any run,
// however hostile, replays bit-identically from its seed.  A disabled
// plan (rate 0 or empty kind mask) never advances its RNG and costs one
// branch per site, which is what makes the rate-0 byte-identity property
// (faulted path == clean path) hold by construction.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

namespace affectsys::fault {

/// Every injectable fault, across the three suites.  The numeric value
/// doubles as the bit position in kind masks.
enum class FaultKind : std::uint8_t {
  // Bitstream faults (per NAL unit / per start code).
  kNalBitFlip = 0,      ///< flip 1-7 payload bits mid-NAL
  kNalTruncate = 1,     ///< cut the payload short (possibly to zero bytes)
  kNalDuplicate = 2,    ///< deliver the unit twice
  kNalReorder = 3,      ///< swap the unit with its successor
  kStartCodeDamage = 4, ///< corrupt one byte of an Annex-B start code
  // Audio faults (per capture chunk).
  kAudioDrop = 5,       ///< chunk lost entirely (capture gap)
  kAudioZero = 6,       ///< chunk delivered as silence
  kAudioClip = 7,       ///< hard-clipped samples (overdriven capture)
  kAudioRateGlitch = 8, ///< sample-and-hold at half rate for one chunk
  // Serve faults (per session tick / per server tick).
  kSessionStall = 9,     ///< session produces no audio for 1-3 s of media
  kBatcherFallback = 10, ///< batcher forced through per-window forwards
  kAdmissionBurst = 11,  ///< admission storm pressure (driven by tests)
  // Network faults (per media packet at the transport channel).
  kPacketLoss = 12,      ///< drop one packet
  kBurstLoss = 13,       ///< drop this packet and the next 1-3 sent
  kPacketDelay = 14,     ///< hold the packet 1..max_delay ticks (jitter)
  kPacketDuplicate = 15, ///< deliver the packet twice
  kPacketReorder = 16,   ///< deliver after the next-sent packet
};

inline constexpr std::size_t kNumFaultKinds = 17;

constexpr std::uint32_t kind_bit(FaultKind k) {
  return 1u << static_cast<unsigned>(k);
}

inline constexpr std::uint32_t kBitstreamKinds =
    kind_bit(FaultKind::kNalBitFlip) | kind_bit(FaultKind::kNalTruncate) |
    kind_bit(FaultKind::kNalDuplicate) | kind_bit(FaultKind::kNalReorder) |
    kind_bit(FaultKind::kStartCodeDamage);
inline constexpr std::uint32_t kAudioKinds =
    kind_bit(FaultKind::kAudioDrop) | kind_bit(FaultKind::kAudioZero) |
    kind_bit(FaultKind::kAudioClip) | kind_bit(FaultKind::kAudioRateGlitch);
inline constexpr std::uint32_t kServeKinds =
    kind_bit(FaultKind::kSessionStall) | kind_bit(FaultKind::kBatcherFallback) |
    kind_bit(FaultKind::kAdmissionBurst);
inline constexpr std::uint32_t kNetKinds =
    kind_bit(FaultKind::kPacketLoss) | kind_bit(FaultKind::kBurstLoss) |
    kind_bit(FaultKind::kPacketDelay) | kind_bit(FaultKind::kPacketDuplicate) |
    kind_bit(FaultKind::kPacketReorder);
/// Adding kNetKinds here cannot perturb pre-existing plans: every site
/// passes its own mask and the suite masks are disjoint, so a bitstream
/// (or audio, or serve) site's `cfg.kinds & site_mask` intersection is
/// unchanged by the new bits, and net sites consulted with a plan whose
/// mask excludes them never advance the RNG (see FaultPlan::next).
inline constexpr std::uint32_t kAllKinds =
    kBitstreamKinds | kAudioKinds | kServeKinds | kNetKinds;

/// Per-NAL faults a session's decode loop can apply in place (reorder
/// needs the whole stream, start-code damage needs packed bytes).
inline constexpr std::uint32_t kNalUnitKinds =
    kind_bit(FaultKind::kNalBitFlip) | kind_bit(FaultKind::kNalTruncate) |
    kind_bit(FaultKind::kNalDuplicate);

const char* fault_kind_name(FaultKind k);

struct FaultConfig {
  std::uint64_t seed = 1;
  /// Probability a consulted site faults, in [0, 1].  0 disables the
  /// plan entirely (no RNG state is ever advanced).
  double rate = 0.0;
  /// Which FaultKinds may fire (bitmask of kind_bit values).  Sites pass
  /// their own mask; the intersection is drawn from uniformly.
  std::uint32_t kinds = kAllKinds;

  bool enabled() const { return rate > 0.0 && kinds != 0; }
};

/// Tallies per kind; every injector records what it actually applied.
struct FaultCounts {
  std::array<std::uint64_t, kNumFaultKinds> by_kind{};
  std::uint64_t total = 0;

  void record(FaultKind k) {
    ++by_kind[static_cast<std::size_t>(k)];
    ++total;
  }
  std::uint64_t count(FaultKind k) const {
    return by_kind[static_cast<std::size_t>(k)];
  }
  FaultCounts& operator+=(const FaultCounts& o);
};

/// The stateful fault schedule: splitmix64 under the hood, advanced only
/// by fault decisions and fault-parameter draws — never by time, thread
/// id or allocation addresses.  One plan must only be consulted from one
/// logical stream of sites (e.g. one session), which the serve layer
/// guarantees because a session is touched by one task at a time.
class FaultPlan {
 public:
  explicit FaultPlan(const FaultConfig& cfg);

  const FaultConfig& config() const { return cfg_; }
  bool enabled() const { return cfg_.enabled(); }

  /// One injection site: returns the kind to inject, or nullopt for "no
  /// fault".  `site_mask` restricts the draw to kinds meaningful at this
  /// site; kinds outside the plan's configured mask never fire.  When
  /// the plan is disabled or the masks don't intersect, the RNG does not
  /// advance — the clean path stays bit-identical and pays one branch.
  std::optional<FaultKind> next(std::uint32_t site_mask);

  /// Uniform draw in [0, n) for fault parameters (positions, lengths,
  /// values).  Call only while applying a fault `next()` returned, so
  /// the clean path never spends RNG state.
  std::uint64_t draw(std::uint64_t n);

  /// Sites consulted / faults fired so far.
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t faults() const { return faults_; }

 private:
  std::uint64_t next_u64();

  FaultConfig cfg_;
  std::uint64_t state_;
  std::uint64_t decisions_ = 0;
  std::uint64_t faults_ = 0;
};

}  // namespace affectsys::fault
