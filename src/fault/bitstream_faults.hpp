// Bitstream fault injectors: plan-driven corruption of NAL units and
// Annex-B byte streams.  Two granularities:
//
//  - maybe_fault_nal(): one NAL unit about to be decoded (the session
//    server's hot path).  Returns nothing when no fault fires, so the
//    clean path never copies a payload.
//  - inject_annexb_faults(): a whole packed stream (the fuzz harness's
//    path) — adds the cross-unit kinds (reorder, start-code damage) the
//    per-unit site cannot express.
//
// Both consume RNG state only when a fault actually fires, and record
// what they applied into FaultCounts.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fault/plan.hpp"
#include "h264/nal.hpp"

namespace affectsys::fault {

/// Consults the plan for this NAL-unit site (kNalUnitKinds: bit flip,
/// truncate, duplicate).  Returns nullopt when no fault fires — the
/// caller decodes the original unit untouched — or the faulted unit
/// sequence replacing it (two entries for a duplicate).
std::optional<std::vector<h264::NalUnit>> maybe_fault_nal(
    const h264::NalUnit& nal, FaultPlan& plan, FaultCounts& counts);

/// Applies the full bitstream fault taxonomy to a packed Annex-B
/// stream: per-unit faults plus adjacent-unit reorder, then byte-level
/// start-code damage on the repacked stream.  With a disabled plan the
/// input is returned byte-identically.
std::vector<std::uint8_t> inject_annexb_faults(
    std::span<const std::uint8_t> stream, FaultPlan& plan,
    FaultCounts& counts);

}  // namespace affectsys::fault
