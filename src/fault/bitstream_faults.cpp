#include "fault/bitstream_faults.hpp"

#include <utility>

namespace affectsys::fault {

namespace {

void flip_payload_bits(h264::NalUnit& nal, FaultPlan& plan) {
  if (nal.payload.empty()) {
    // Header-only unit: the only bits to damage are the type/ref_idc
    // fields, so re-type it to a random (possibly reserved) value.
    nal.type = static_cast<h264::NalType>(plan.draw(32));
    nal.ref_idc = static_cast<std::uint8_t>(plan.draw(4));
    return;
  }
  const std::uint64_t flips = 1 + plan.draw(7);
  for (std::uint64_t f = 0; f < flips; ++f) {
    const std::uint64_t pos = plan.draw(nal.payload.size());
    nal.payload[pos] ^= static_cast<std::uint8_t>(1u << plan.draw(8));
  }
}

}  // namespace

std::optional<std::vector<h264::NalUnit>> maybe_fault_nal(
    const h264::NalUnit& nal, FaultPlan& plan, FaultCounts& counts) {
  const auto kind = plan.next(kNalUnitKinds);
  if (!kind) return std::nullopt;
  counts.record(*kind);
  h264::NalUnit copy = nal;
  switch (*kind) {
    case FaultKind::kNalBitFlip:
      flip_payload_bits(copy, plan);
      break;
    case FaultKind::kNalTruncate:
      // 0..size surviving bytes: zero models a start code immediately
      // followed by the next start code (header-only unit lost too).
      copy.payload.resize(plan.draw(copy.payload.size() + 1));
      break;
    case FaultKind::kNalDuplicate: {
      std::vector<h264::NalUnit> two;
      two.push_back(copy);
      two.push_back(std::move(copy));
      return two;
    }
    default:
      break;  // masked out by kNalUnitKinds
  }
  std::vector<h264::NalUnit> one;
  one.push_back(std::move(copy));
  return one;
}

std::vector<std::uint8_t> inject_annexb_faults(
    std::span<const std::uint8_t> stream, FaultPlan& plan,
    FaultCounts& counts) {
  if (!plan.enabled()) return {stream.begin(), stream.end()};

  std::vector<h264::NalUnit> units = h264::unpack_annexb(stream);
  std::vector<h264::NalUnit> out;
  out.reserve(units.size() + 4);
  for (std::size_t i = 0; i < units.size(); ++i) {
    // Reorder is a cross-unit fault: decided first, and the swap
    // consumes both units before their per-unit sites are drawn.
    if (i + 1 < units.size() &&
        plan.next(kind_bit(FaultKind::kNalReorder))) {
      counts.record(FaultKind::kNalReorder);
      out.push_back(std::move(units[i + 1]));
      out.push_back(std::move(units[i]));
      ++i;
      continue;
    }
    if (auto faulted = maybe_fault_nal(units[i], plan, counts)) {
      for (h264::NalUnit& u : *faulted) out.push_back(std::move(u));
    } else {
      out.push_back(std::move(units[i]));
    }
  }

  std::vector<std::uint8_t> bytes = h264::pack_annexb(out);
  // Start-code damage: every code in the repacked stream is a site.  A
  // damaged code fuses its unit into the previous payload — exactly the
  // framing loss a corrupted transport produces.
  for (std::size_t i = 0; i + 2 < bytes.size(); ++i) {
    if (bytes[i] == 0 && bytes[i + 1] == 0 && bytes[i + 2] == 1) {
      if (plan.next(kind_bit(FaultKind::kStartCodeDamage))) {
        counts.record(FaultKind::kStartCodeDamage);
        bytes[i + plan.draw(3)] =
            static_cast<std::uint8_t>(2 + plan.draw(254));
      }
      i += 2;
    }
  }
  return bytes;
}

}  // namespace affectsys::fault
