// 4x4 integer transform and quantization (the "IQIT" stage of Fig 5).
//
// Implements the H.264 core transform: the integer DCT approximation
// C X C^T with the norm correction folded into quantization, and the
// standard QP-dependent quantization ladder (quantization step doubles
// every 6 QP).
#pragma once

#include <array>
#include <cstdint>

namespace affectsys::h264 {

using Block4x4 = std::array<std::array<int, 4>, 4>;

/// Forward core transform (no scaling).
Block4x4 forward_transform(const Block4x4& residual);

/// Inverse core transform including the final >>6 rounding.
Block4x4 inverse_transform(const Block4x4& coeffs);

/// Quantizes transform coefficients at the given QP (0..51).
Block4x4 quantize(const Block4x4& coeffs, int qp);

/// Dequantizes levels at the given QP.
Block4x4 dequantize(const Block4x4& levels, int qp);

/// Convenience: transform + quantize.
Block4x4 transform_quantize(const Block4x4& residual, int qp);

/// Convenience: dequantize + inverse transform.
Block4x4 dequantize_inverse(const Block4x4& levels, int qp);

/// Number of nonzero entries.
int count_nonzero(const Block4x4& b);

}  // namespace affectsys::h264
