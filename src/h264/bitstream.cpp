#include "h264/bitstream.hpp"

#include <bit>

namespace affectsys::h264 {

void BitWriter::put_bit(bool b) {
  if (spare_ == 0) {
    bytes_.push_back(0);
    spare_ = 8;
  }
  --spare_;
  if (b) bytes_.back() |= static_cast<std::uint8_t>(1u << spare_);
}

void BitWriter::put_bits(std::uint32_t value, unsigned count) {
  if (count > 32) throw std::invalid_argument("put_bits: count > 32");
  for (unsigned i = count; i-- > 0;) {
    put_bit((value >> i) & 1u);
  }
}

void BitWriter::put_ue(std::uint32_t value) {
  // code_num = value; write leading zeros then (value+1) in binary.
  const std::uint64_t v = static_cast<std::uint64_t>(value) + 1;
  const int len = std::bit_width(v);
  for (int i = 0; i < len - 1; ++i) put_bit(false);
  for (int i = len; i-- > 0;) put_bit((v >> i) & 1u);
}

void BitWriter::put_se(std::int32_t value) {
  // Mapping per spec 9.1.1: k>0 -> 2k-1, k<=0 -> -2k.
  const std::uint32_t code =
      value > 0 ? static_cast<std::uint32_t>(2 * value - 1)
                : static_cast<std::uint32_t>(-2 * static_cast<std::int64_t>(value));
  put_ue(code);
}

void BitWriter::finish_rbsp() {
  put_bit(true);
  while (spare_ != 0) put_bit(false);
}

bool BitReader::get_bit() {
  if (pos_ >= data_.size() * 8) {
    throw BitstreamError("BitReader: read past end of stream");
  }
  const std::uint8_t byte = data_[pos_ / 8];
  const bool b = (byte >> (7 - pos_ % 8)) & 1u;
  ++pos_;
  return b;
}

std::uint32_t BitReader::get_bits(unsigned count) {
  if (count > 32) throw std::invalid_argument("get_bits: count > 32");
  std::uint32_t v = 0;
  for (unsigned i = 0; i < count; ++i) {
    v = (v << 1) | static_cast<std::uint32_t>(get_bit());
  }
  return v;
}

std::uint32_t BitReader::get_ue() {
  unsigned zeros = 0;
  while (!get_bit()) {
    if (++zeros > 31) throw BitstreamError("get_ue: malformed Exp-Golomb");
  }
  std::uint32_t suffix = zeros ? get_bits(zeros) : 0;
  return (1u << zeros) - 1 + suffix;
}

std::int32_t BitReader::get_se() {
  const std::uint32_t code = get_ue();
  const auto k = static_cast<std::int64_t>((code + 1) / 2);
  return static_cast<std::int32_t>(code % 2 == 1 ? k : -k);
}

std::vector<std::uint8_t> add_emulation_prevention(
    std::span<const std::uint8_t> rbsp) {
  std::vector<std::uint8_t> out;
  out.reserve(rbsp.size() + rbsp.size() / 64);
  int zeros = 0;
  for (std::uint8_t b : rbsp) {
    if (zeros >= 2 && b <= 0x03) {
      out.push_back(0x03);
      zeros = 0;
    }
    out.push_back(b);
    zeros = (b == 0x00) ? zeros + 1 : 0;
  }
  // An RBSP ending in 00 00 needs a trailing guard byte, or the EBSP's
  // final zeros are indistinguishable from Annex-B framing (the next
  // unit's start-code prefix / stream padding) and unpack_annexb would
  // trim them — the asymmetry the transport round-trip tests caught.
  // Conforming RBSPs end with rbsp_trailing_bits (nonzero last byte), so
  // this fires only for raw payloads, but the invariant unpack_annexb
  // relies on — an EBSP never ends in 00 00 — now holds for everything
  // this function produces.
  if (zeros >= 2) out.push_back(0x03);
  return out;
}

std::vector<std::uint8_t> remove_emulation_prevention(
    std::span<const std::uint8_t> ebsp) {
  std::vector<std::uint8_t> out;
  remove_emulation_prevention_into(ebsp, out);
  return out;
}

void remove_emulation_prevention_into(std::span<const std::uint8_t> ebsp,
                                      std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(ebsp.size());
  int zeros = 0;
  for (std::size_t i = 0; i < ebsp.size(); ++i) {
    // A 0x03 after two zeros is an emulation-prevention byte when the
    // byte after it is <= 0x03 — or when there is no byte after it at
    // all (the trailing guard add_emulation_prevention appends for an
    // RBSP ending in 00 00; a *data* 0x03 in that position would itself
    // have been escaped, so stripping here is unambiguous).
    if (zeros >= 2 && ebsp[i] == 0x03 &&
        (i + 1 == ebsp.size() || ebsp[i + 1] <= 0x03)) {
      zeros = 0;
      continue;  // skip the emulation-prevention byte
    }
    out.push_back(ebsp[i]);
    zeros = (ebsp[i] == 0x00) ? zeros + 1 : 0;
  }
}

}  // namespace affectsys::h264
