#include "h264/entropy.hpp"

#include "obs/metrics.hpp"

namespace affectsys::h264 {

const int kZigzagRow[16] = {0, 0, 1, 2, 1, 0, 0, 1, 2, 3, 3, 2, 1, 2, 3, 3};
const int kZigzagCol[16] = {0, 1, 0, 0, 1, 2, 3, 2, 1, 0, 1, 2, 3, 3, 2, 3};

std::size_t encode_residual_block(BitWriter& bw, const Block4x4& levels) {
  const std::size_t start_bits = bw.bit_count();
  // Scan into zig-zag order.
  int scan[16];
  int last = -1;
  int total = 0;
  for (int i = 0; i < 16; ++i) {
    scan[i] = levels[kZigzagRow[i]][kZigzagCol[i]];
    if (scan[i] != 0) {
      last = i;
      ++total;
    }
  }
  bw.put_ue(static_cast<std::uint32_t>(total));
  if (total > 0) {
    bw.put_ue(static_cast<std::uint32_t>(last));
    // Levels coded from the highest-frequency coefficient toward DC
    // (CAVLC order); after each level except the final one, run_before
    // gives the number of zeros separating it from the next coefficient.
    int emitted = 0;
    for (int i = last; i >= 0; --i) {
      if (scan[i] == 0) continue;
      bw.put_se(scan[i]);
      if (++emitted == total) break;
      int run = 0;
      for (int j = i - 1; j >= 0 && scan[j] == 0; --j) ++run;
      bw.put_ue(static_cast<std::uint32_t>(run));
    }
  }
  return bw.bit_count() - start_bits;
}

Block4x4 decode_residual_block(BitReader& br, int* nonzero_out) {
  Block4x4 out{};
  AFFECTSYS_COUNT("h264.residual_blocks_decoded", 1);
  const std::uint32_t total = br.get_ue();
  if (total > 16) throw BitstreamError("decode_residual_block: total > 16");
  if (nonzero_out) *nonzero_out = static_cast<int>(total);
  if (total == 0) return out;

  const std::uint32_t last = br.get_ue();
  if (last > 15 || total > last + 1) {
    throw BitstreamError("decode_residual_block: bad last position");
  }
  int pos = static_cast<int>(last);
  for (std::uint32_t k = 0; k < total; ++k) {
    if (pos < 0) throw BitstreamError("decode_residual_block: position underflow");
    const int level = br.get_se();
    if (level == 0) throw BitstreamError("decode_residual_block: zero level");
    out[kZigzagRow[pos]][kZigzagCol[pos]] = level;
    if (k + 1 < total) {
      const std::uint32_t run = br.get_ue();
      pos -= 1 + static_cast<int>(run);
    }
  }
  return out;
}

}  // namespace affectsys::h264
