#include "h264/inter.hpp"

#include <cstdlib>
#include <limits>
#include <vector>

#include "h264/intra.hpp"  // sad_block

namespace affectsys::h264 {

void motion_compensate(const Plane& ref, int x0, int y0, int size,
                       MotionVector mv, std::uint8_t* pred) {
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      pred[y * size + x] = ref.at_clamped(x0 + x + mv.dx, y0 + y + mv.dy);
    }
  }
}

void average_predictions(const std::uint8_t* a, const std::uint8_t* b,
                         std::uint8_t* out, int count) {
  for (int i = 0; i < count; ++i) {
    out[i] = static_cast<std::uint8_t>((static_cast<int>(a[i]) + b[i] + 1) / 2);
  }
}

namespace {

/// 6-tap filter over six consecutive integer samples.
int six_tap(int a, int b, int c, int d, int e, int f) {
  return a - 5 * b + 20 * c + 20 * d - 5 * e + f;
}

/// Horizontal half-pel value at integer row y between (x, y) and
/// (x+1, y), unclipped and unshifted (scale 32).
int half_h_raw(const Plane& ref, int x, int y) {
  return six_tap(ref.at_clamped(x - 2, y), ref.at_clamped(x - 1, y),
                 ref.at_clamped(x, y), ref.at_clamped(x + 1, y),
                 ref.at_clamped(x + 2, y), ref.at_clamped(x + 3, y));
}

}  // namespace

std::uint8_t sample_halfpel(const Plane& ref, int hx, int hy) {
  // Floor division so negative half-pel coordinates resolve correctly.
  const int x = hx >> 1;
  const int y = hy >> 1;
  const bool fx = hx & 1;
  const bool fy = hy & 1;
  if (!fx && !fy) return ref.at_clamped(x, y);
  if (fx && !fy) {
    return clamp_pixel((half_h_raw(ref, x, y) + 16) >> 5);
  }
  if (!fx && fy) {
    const int v = six_tap(ref.at_clamped(x, y - 2), ref.at_clamped(x, y - 1),
                          ref.at_clamped(x, y), ref.at_clamped(x, y + 1),
                          ref.at_clamped(x, y + 2), ref.at_clamped(x, y + 3));
    return clamp_pixel((v + 16) >> 5);
  }
  // Diagonal: 6-tap vertically over horizontal half-pel intermediates.
  const int j = six_tap(half_h_raw(ref, x, y - 2), half_h_raw(ref, x, y - 1),
                        half_h_raw(ref, x, y), half_h_raw(ref, x, y + 1),
                        half_h_raw(ref, x, y + 2), half_h_raw(ref, x, y + 3));
  return clamp_pixel((j + 512) >> 10);
}

void motion_compensate_halfpel(const Plane& ref, int x0, int y0, int size,
                               MotionVector mv_half, std::uint8_t* pred) {
  if ((mv_half.dx & 1) == 0 && (mv_half.dy & 1) == 0) {
    // Integer vector: plain copy path (fast and bit-identical to the
    // full-pel compensator).
    motion_compensate(ref, x0, y0, size, {mv_half.dx >> 1, mv_half.dy >> 1},
                      pred);
    return;
  }
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      pred[y * size + x] = sample_halfpel(ref, 2 * (x0 + x) + mv_half.dx,
                                          2 * (y0 + y) + mv_half.dy);
    }
  }
}

MotionVector motion_search_halfpel(const Plane& src, const Plane& ref,
                                   int x0, int y0, int size, int range,
                                   int* out_sad) {
  int best_sad = 0;
  const MotionVector full = motion_search(src, ref, x0, y0, size, range,
                                          &best_sad);
  MotionVector best{2 * full.dx, 2 * full.dy};
  std::vector<std::uint8_t> pred(static_cast<std::size_t>(size) * size);
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const MotionVector cand{2 * full.dx + dx, 2 * full.dy + dy};
      motion_compensate_halfpel(ref, x0, y0, size, cand, pred.data());
      // Same zero-bias units as the full-pel search (half-pel costs less).
      const int sad = sad_block(src, x0, y0, size, pred.data()) +
                      (std::abs(cand.dx) + std::abs(cand.dy));
      if (sad < best_sad) {
        best_sad = sad;
        best = cand;
      }
    }
  }
  if (out_sad) *out_sad = best_sad;
  return best;
}

MotionVector motion_search(const Plane& src, const Plane& ref, int x0,
                           int y0, int size, int range, int* out_sad) {
  MotionVector best{};
  int best_sad = std::numeric_limits<int>::max();
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      int sad = 0;
      for (int y = 0; y < size && sad < best_sad; ++y) {
        for (int x = 0; x < size; ++x) {
          sad += std::abs(
              static_cast<int>(src.at(x0 + x, y0 + y)) -
              static_cast<int>(ref.at_clamped(x0 + x + dx, y0 + y + dy)));
        }
      }
      // Slight zero-bias so static content prefers the null vector.
      sad += 2 * (std::abs(dx) + std::abs(dy));
      if (sad < best_sad) {
        best_sad = sad;
        best = {dx, dy};
      }
    }
  }
  if (out_sad) *out_sad = best_sad;
  return best;
}

}  // namespace affectsys::h264
