#include "h264/encoder.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "h264/bitstream.hpp"
#include "h264/deblock.hpp"
#include "h264/entropy.hpp"
#include "h264/inter.hpp"
#include "h264/intra.hpp"
#include "h264/intra4.hpp"
#include "h264/transform.hpp"

namespace affectsys::h264 {
namespace {

// mb_type codes written to the slice data.
constexpr std::uint32_t kMbSkip = 0;
constexpr std::uint32_t kMbInterFwd = 1;   // P: the only inter type
constexpr std::uint32_t kMbInterBwd = 2;   // B only
constexpr std::uint32_t kMbInterBi = 3;    // B only
constexpr std::uint32_t kMbIntra = 4;

// intra partition codes (after the intra signal).
constexpr std::uint32_t kIntra16x16 = 0;
constexpr std::uint32_t kIntra4x4 = 1;

/// Extracts a size x size block from a plane into a row-major buffer.
void load_block(const Plane& p, int x0, int y0, int size, std::uint8_t* out) {
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) out[y * size + x] = p.at(x0 + x, y0 + y);
  }
}

/// Writes a reconstructed block back into a plane.
void store_block(Plane& p, int x0, int y0, int size, const std::uint8_t* in) {
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) p.at(x0 + x, y0 + y) = in[y * size + x];
  }
}

struct BlockCoder {
  /// Transform+quantize the (src - pred) residual of one 4x4 sub-block,
  /// reconstruct into recon, and return the quantized levels.
  static Block4x4 code(const std::uint8_t* src, const std::uint8_t* pred,
                       std::uint8_t* recon, int stride, int bx, int by,
                       int qp) {
    Block4x4 residual{};
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        const int idx = (by + y) * stride + bx + x;
        residual[y][x] = static_cast<int>(src[idx]) - pred[idx];
      }
    }
    const Block4x4 levels = transform_quantize(residual, qp);
    const Block4x4 rec = dequantize_inverse(levels, qp);
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        const int idx = (by + y) * stride + bx + x;
        recon[idx] = clamp_pixel(pred[idx] + rec[y][x]);
      }
    }
    return levels;
  }
};

/// Codes one intra-4x4 luma block directly against the recon plane:
/// choose mode, emit syntax + residual, reconstruct in place.
/// Returns true when the block has coded coefficients.
bool code_intra4x4_block(BitWriter& bw, const Plane& src, Plane& recon,
                         int x0, int y0, int qp) {
  const Intra4Mode mode = choose_intra4_mode(src, recon, x0, y0);
  bw.put_ue(static_cast<std::uint32_t>(mode));
  std::uint8_t pred[16];
  intra4_predict(recon, x0, y0, mode, pred);
  Block4x4 residual{};
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      residual[y][x] =
          static_cast<int>(src.at(x0 + x, y0 + y)) - pred[y * 4 + x];
    }
  }
  const Block4x4 levels = transform_quantize(residual, qp);
  encode_residual_block(bw, levels);
  const Block4x4 rec = dequantize_inverse(levels, qp);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      recon.at(x0 + x, y0 + y) = clamp_pixel(pred[y * 4 + x] + rec[y][x]);
    }
  }
  return count_nonzero(levels) > 0;
}

/// Estimated SAD of coding the MB as 16 intra-4x4 blocks, using source
/// neighbours as a stand-in for not-yet-final reconstructions.
int estimate_intra4x4_sad(const Plane& src, int x0, int y0) {
  int total = 0;
  for (int by = 0; by < 4; ++by) {
    for (int bx = 0; bx < 4; ++bx) {
      const Intra4Mode mode =
          choose_intra4_mode(src, src, x0 + bx * 4, y0 + by * 4);
      std::uint8_t pred[16];
      intra4_predict(src, x0 + bx * 4, y0 + by * 4, mode, pred);
      total += sad_block(src, x0 + bx * 4, y0 + by * 4, 4, pred);
    }
  }
  return total;
}

}  // namespace

Encoder::Encoder(const EncoderConfig& cfg) : cfg_(cfg) {
  if (cfg.width % kMbSize || cfg.height % kMbSize || cfg.width <= 0 ||
      cfg.height <= 0) {
    throw std::invalid_argument("Encoder: bad frame dimensions");
  }
  if (cfg.qp < 0 || cfg.qp > 51) {
    throw std::invalid_argument("Encoder: qp out of range");
  }
  if (cfg.gop_size < 1 || cfg.b_frames < 0 ||
      cfg.b_frames >= cfg.gop_size) {
    throw std::invalid_argument("Encoder: bad GOP structure");
  }
}

std::vector<NalUnit> Encoder::parameter_sets() const {
  std::vector<NalUnit> out;
  {
    // Simplified SPS: profile/level bytes + MB geometry.
    BitWriter bw;
    bw.put_bits(66, 8);  // profile_idc: baseline
    bw.put_bits(0, 8);   // constraint flags
    bw.put_bits(30, 8);  // level_idc 3.0
    bw.put_ue(0);        // sps_id
    bw.put_ue(static_cast<std::uint32_t>(cfg_.width / kMbSize - 1));
    bw.put_ue(static_cast<std::uint32_t>(cfg_.height / kMbSize - 1));
    bw.finish_rbsp();
    NalUnit sps;
    sps.type = NalType::kSps;
    sps.ref_idc = 3;
    sps.payload = add_emulation_prevention(bw.bytes());
    out.push_back(std::move(sps));
  }
  {
    BitWriter bw;
    bw.put_ue(0);  // pps_id
    bw.put_ue(0);  // sps_id
    bw.put_se(cfg_.qp - 26);            // pic_init_qp_minus26
    bw.put_bit(cfg_.deblock_in_loop);   // deblocking_filter_control
    bw.finish_rbsp();
    NalUnit pps;
    pps.type = NalType::kPps;
    pps.ref_idc = 3;
    pps.payload = add_emulation_prevention(bw.bytes());
    out.push_back(std::move(pps));
  }
  return out;
}

EncodedPicture Encoder::encode_picture(const YuvFrame& src, SliceType type,
                                       int poc, const YuvFrame* fwd_ref,
                                       const YuvFrame* bwd_ref,
                                       YuvFrame* recon_out) {
  const int qp = qp_hook_ ? std::clamp(qp_hook_(type), 0, 51) : cfg_.qp;
  YuvFrame recon(cfg_.width, cfg_.height);
  std::vector<MbInfo> mb_info(static_cast<std::size_t>(src.mb_count()));

  BitWriter bw;
  // Slice header.
  bw.put_ue(0);  // first_mb_in_slice
  bw.put_ue(static_cast<std::uint32_t>(type));
  bw.put_ue(static_cast<std::uint32_t>(frame_num_));
  bw.put_ue(static_cast<std::uint32_t>(poc));
  bw.put_se(qp - cfg_.qp);  // slice_qp_delta vs pic_init_qp

  std::uint8_t src_mb[kMbSize * kMbSize];
  std::uint8_t pred[kMbSize * kMbSize];
  std::uint8_t pred_b[kMbSize * kMbSize];
  std::uint8_t rec_mb[kMbSize * kMbSize];
  std::uint8_t src_c[8 * 8], pred_c[8 * 8], pred_c2[8 * 8], rec_c[8 * 8];

  for (int mby = 0; mby < src.mb_rows(); ++mby) {
    for (int mbx = 0; mbx < src.mb_cols(); ++mbx) {
      const int x0 = mbx * kMbSize;
      const int y0 = mby * kMbSize;
      MbInfo& info = mb_info[static_cast<std::size_t>(mby) * src.mb_cols() + mbx];
      load_block(src.y, x0, y0, kMbSize, src_mb);

      // ---- Mode decision (motion vectors in HALF-PEL units) -------------
      std::uint32_t mb_type = kMbIntra;
      MotionVector mv{}, mv_bwd{};
      IntraMode luma_mode = IntraMode::kDc;
      IntraMode chroma_mode = IntraMode::kDc;
      int inter_sad = std::numeric_limits<int>::max();
      int intra16_sad = std::numeric_limits<int>::max();

      auto search = [&](const Plane& ref, int* sad) {
        return cfg_.halfpel_mc
                   ? motion_search_halfpel(src.y, ref, x0, y0, kMbSize,
                                           cfg_.search_range, sad)
                   : [&] {
                       MotionVector full = motion_search(
                           src.y, ref, x0, y0, kMbSize, cfg_.search_range,
                           sad);
                       return MotionVector{2 * full.dx, 2 * full.dy};
                     }();
      };

      if (type != SliceType::kI && fwd_ref) {
        int sad_f = 0;
        const MotionVector mvf = search(fwd_ref->y, &sad_f);
        mb_type = kMbInterFwd;
        mv = mvf;
        inter_sad = sad_f;
        if (type == SliceType::kB && bwd_ref) {
          int sad_b = 0;
          const MotionVector mvb = search(bwd_ref->y, &sad_b);
          if (sad_b < inter_sad) {
            mb_type = kMbInterBwd;
            mv = mvb;
            inter_sad = sad_b;
          }
          // Bi-prediction with the two best vectors.
          motion_compensate_halfpel(fwd_ref->y, x0, y0, kMbSize, mvf, pred);
          motion_compensate_halfpel(bwd_ref->y, x0, y0, kMbSize, mvb, pred_b);
          average_predictions(pred, pred_b, rec_mb, kMbSize * kMbSize);
          const int sad_bi = sad_block(src.y, x0, y0, kMbSize, rec_mb);
          if (sad_bi < inter_sad) {
            mb_type = kMbInterBi;
            mv = mvf;
            mv_bwd = mvb;
            inter_sad = sad_bi;
          }
        }
        // Compare with the best intra-16x16 mode.
        luma_mode = choose_intra_mode(src.y, recon.y, x0, y0, kMbSize);
        intra_predict(recon.y, x0, y0, kMbSize, luma_mode, pred);
        intra16_sad = sad_block(src.y, x0, y0, kMbSize, pred);
        if (intra16_sad < inter_sad) mb_type = kMbIntra;
      } else {
        luma_mode = choose_intra_mode(src.y, recon.y, x0, y0, kMbSize);
        intra_predict(recon.y, x0, y0, kMbSize, luma_mode, pred);
        intra16_sad = sad_block(src.y, x0, y0, kMbSize, pred);
      }

      // ---- Intra-4x4 path (interleaved syntax, in-place recon) ----------
      if (mb_type == kMbIntra && cfg_.intra4x4) {
        // Prefer 4x4 partitions when they predict markedly better; the
        // +offset charges the 16 extra mode codewords.
        const int sad4 = estimate_intra4x4_sad(src.y, x0, y0);
        if (sad4 + 64 < intra16_sad) {
          if (type != SliceType::kI) bw.put_ue(kMbIntra);
          bw.put_ue(kIntra4x4);
          info.intra = true;
          for (int by = 0; by < 4; ++by) {
            for (int bx = 0; bx < 4; ++bx) {
              info.nonzero[static_cast<std::size_t>(by * 4 + bx)] =
                  code_intra4x4_block(bw, src.y, recon.y, x0 + bx * 4,
                                      y0 + by * 4, qp);
            }
          }
          // Chroma: one 8x8 mode + 4+4 residual blocks, as in 16x16 MBs.
          chroma_mode = choose_intra_mode(src.cb, recon.cb, x0 / 2, y0 / 2, 8);
          bw.put_ue(static_cast<std::uint32_t>(chroma_mode));
          intra_predict(recon.cb, x0 / 2, y0 / 2, 8, chroma_mode, pred_c);
          intra_predict(recon.cr, x0 / 2, y0 / 2, 8, chroma_mode, pred_c2);
          std::uint8_t rec_cb4[64], rec_cr4[64];
          load_block(src.cb, x0 / 2, y0 / 2, 8, src_c);
          for (int b = 0; b < 4; ++b) {
            const Block4x4 lv = BlockCoder::code(src_c, pred_c, rec_cb4, 8,
                                                 (b % 2) * 4, (b / 2) * 4, qp);
            encode_residual_block(bw, lv);
          }
          load_block(src.cr, x0 / 2, y0 / 2, 8, src_c);
          for (int b = 0; b < 4; ++b) {
            const Block4x4 lv = BlockCoder::code(src_c, pred_c2, rec_cr4, 8,
                                                 (b % 2) * 4, (b / 2) * 4, qp);
            encode_residual_block(bw, lv);
          }
          store_block(recon.cb, x0 / 2, y0 / 2, 8, rec_cb4);
          store_block(recon.cr, x0 / 2, y0 / 2, 8, rec_cr4);
          continue;  // MB fully coded
        }
      }

      // ---- Build prediction (16x16 partitions) ---------------------------
      if (mb_type == kMbIntra) {
        intra_predict(recon.y, x0, y0, kMbSize, luma_mode, pred);
        chroma_mode = choose_intra_mode(src.cb, recon.cb, x0 / 2, y0 / 2, 8);
        intra_predict(recon.cb, x0 / 2, y0 / 2, 8, chroma_mode, pred_c);
        intra_predict(recon.cr, x0 / 2, y0 / 2, 8, chroma_mode, pred_c2);
        info.intra = true;
      } else {
        // Chroma offset: half-pel luma vector / 4 = full-pel chroma.
        const MotionVector cmv{mv.dx / 4, mv.dy / 4};
        if (mb_type == kMbInterBi) {
          motion_compensate_halfpel(fwd_ref->y, x0, y0, kMbSize, mv, pred);
          motion_compensate_halfpel(bwd_ref->y, x0, y0, kMbSize, mv_bwd,
                                    pred_b);
          average_predictions(pred, pred_b, pred, kMbSize * kMbSize);
          const MotionVector cmvb{mv_bwd.dx / 4, mv_bwd.dy / 4};
          motion_compensate(fwd_ref->cb, x0 / 2, y0 / 2, 8, cmv, pred_c);
          motion_compensate(bwd_ref->cb, x0 / 2, y0 / 2, 8, cmvb, rec_c);
          average_predictions(pred_c, rec_c, pred_c, 64);
          motion_compensate(fwd_ref->cr, x0 / 2, y0 / 2, 8, cmv, pred_c2);
          motion_compensate(bwd_ref->cr, x0 / 2, y0 / 2, 8, cmvb, rec_c);
          average_predictions(pred_c2, rec_c, pred_c2, 64);
        } else {
          const YuvFrame* ref = mb_type == kMbInterBwd ? bwd_ref : fwd_ref;
          motion_compensate_halfpel(ref->y, x0, y0, kMbSize, mv, pred);
          motion_compensate(ref->cb, x0 / 2, y0 / 2, 8, cmv, pred_c);
          motion_compensate(ref->cr, x0 / 2, y0 / 2, 8, cmv, pred_c2);
        }
        info.mv = mv;
      }

      // ---- Residual coding (into scratch first, to allow skip) -----------
      Block4x4 luma_levels[16];
      bool any_nonzero = false;
      for (int by = 0; by < 4; ++by) {
        for (int bx = 0; bx < 4; ++bx) {
          luma_levels[by * 4 + bx] = BlockCoder::code(
              src_mb, pred, rec_mb, kMbSize, bx * 4, by * 4, qp);
          const bool nz = count_nonzero(luma_levels[by * 4 + bx]) > 0;
          info.nonzero[static_cast<std::size_t>(by * 4 + bx)] = nz;
          any_nonzero |= nz;
        }
      }
      load_block(src.cb, x0 / 2, y0 / 2, 8, src_c);
      Block4x4 cb_levels[4], cr_levels[4];
      std::uint8_t rec_cb[64], rec_cr[64];
      for (int b = 0; b < 4; ++b) {
        cb_levels[b] = BlockCoder::code(src_c, pred_c, rec_cb, 8,
                                        (b % 2) * 4, (b / 2) * 4, qp);
        any_nonzero |= count_nonzero(cb_levels[b]) > 0;
      }
      load_block(src.cr, x0 / 2, y0 / 2, 8, src_c);
      for (int b = 0; b < 4; ++b) {
        cr_levels[b] = BlockCoder::code(src_c, pred_c2, rec_cr, 8,
                                        (b % 2) * 4, (b / 2) * 4, qp);
        any_nonzero |= count_nonzero(cr_levels[b]) > 0;
      }

      // Skip: inter MB with null residual and (for P) zero motion.
      const bool skippable =
          type != SliceType::kI && mb_type != kMbIntra && !any_nonzero &&
          ((type == SliceType::kP && mv == MotionVector{}) ||
           (type == SliceType::kB && mb_type == kMbInterBi &&
            mv == MotionVector{} && mv_bwd == MotionVector{}));

      // ---- Emit syntax ----------------------------------------------------
      if (type == SliceType::kI) {
        bw.put_ue(kIntra16x16);
        bw.put_ue(static_cast<std::uint32_t>(luma_mode));
        bw.put_ue(static_cast<std::uint32_t>(chroma_mode));
      } else if (skippable) {
        bw.put_ue(kMbSkip);
        info.skipped = true;
      } else {
        bw.put_ue(mb_type);
        if (mb_type == kMbIntra) {
          bw.put_ue(kIntra16x16);
          bw.put_ue(static_cast<std::uint32_t>(luma_mode));
          bw.put_ue(static_cast<std::uint32_t>(chroma_mode));
        } else {
          bw.put_se(mv.dx);
          bw.put_se(mv.dy);
          if (mb_type == kMbInterBi) {
            bw.put_se(mv_bwd.dx);
            bw.put_se(mv_bwd.dy);
          }
        }
      }
      if (!info.skipped) {
        for (const auto& blk : luma_levels) encode_residual_block(bw, blk);
        for (const auto& blk : cb_levels) encode_residual_block(bw, blk);
        for (const auto& blk : cr_levels) encode_residual_block(bw, blk);
      }

      // ---- Reconstruction -------------------------------------------------
      if (info.skipped) {
        store_block(recon.y, x0, y0, kMbSize, pred);
        store_block(recon.cb, x0 / 2, y0 / 2, 8, pred_c);
        store_block(recon.cr, x0 / 2, y0 / 2, 8, pred_c2);
      } else {
        store_block(recon.y, x0, y0, kMbSize, rec_mb);
        store_block(recon.cb, x0 / 2, y0 / 2, 8, rec_cb);
        store_block(recon.cr, x0 / 2, y0 / 2, 8, rec_cr);
      }
    }
  }
  bw.finish_rbsp();

  // In-loop deblocking of the reconstruction used for referencing.
  if (cfg_.deblock_in_loop) deblock_frame(recon, mb_info, qp);
  if (recon_out) *recon_out = std::move(recon);

  EncodedPicture pic;
  pic.type = type;
  pic.poc = poc;
  pic.nal.type = type == SliceType::kI ? NalType::kSliceIdr
                                       : NalType::kSliceNonIdr;
  pic.nal.ref_idc = type == SliceType::kB ? 0 : (type == SliceType::kI ? 3 : 2);
  pic.nal.payload = add_emulation_prevention(bw.bytes());
  ++frame_num_;
  if (coded_hook_) coded_hook_(pic);
  return pic;
}

std::vector<EncodedPicture> Encoder::encode_rate_controlled(
    const std::vector<YuvFrame>& frames, RateController& rc) {
  qp_hook_ = [&rc](SliceType type) {
    // References deserve a finer QP than disposable pictures.
    return type == SliceType::kB ? rc.next_qp() + 2 : rc.next_qp();
  };
  coded_hook_ = [&rc](const EncodedPicture& pic) {
    rc.picture_coded(pic.nal.byte_size());
  };
  auto out = encode(frames);
  qp_hook_ = nullptr;
  coded_hook_ = nullptr;
  return out;
}

std::vector<EncodedPicture> Encoder::encode(
    const std::vector<YuvFrame>& frames) {
  std::vector<EncodedPicture> out;
  if (frames.empty()) return out;
  frame_num_ = 0;

  YuvFrame ref_a;  // older reference (forward for B)
  YuvFrame ref_b;  // newer reference
  bool have_ref = false;

  std::vector<int> pending_b;  // display indices awaiting a future ref

  auto flush_bs = [&](const YuvFrame& fwd, const YuvFrame& bwd) {
    for (int bidx : pending_b) {
      out.push_back(encode_picture(frames[static_cast<std::size_t>(bidx)],
                                   SliceType::kB, bidx, &fwd, &bwd, nullptr));
    }
    pending_b.clear();
  };

  const int step = cfg_.b_frames + 1;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const int disp = static_cast<int>(i);
    const bool is_idr = disp % cfg_.gop_size == 0;
    const bool is_ref = is_idr || disp % step == 0;
    if (!is_ref) {
      pending_b.push_back(disp);
      continue;
    }
    const SliceType type = is_idr ? SliceType::kI : SliceType::kP;
    YuvFrame recon;
    out.push_back(encode_picture(frames[i], type, disp,
                                 have_ref ? &ref_b : nullptr, nullptr,
                                 &recon));
    if (have_ref) {
      flush_bs(ref_b, recon);  // Bs between the previous ref and this one
    } else {
      pending_b.clear();  // no forward reference available (stream start)
    }
    ref_a = std::move(ref_b);
    ref_b = std::move(recon);
    have_ref = true;
  }
  // Trailing Bs with no future reference: encode as P against the last ref.
  for (int bidx : pending_b) {
    out.push_back(encode_picture(frames[static_cast<std::size_t>(bidx)],
                                 SliceType::kP, bidx, &ref_b, nullptr,
                                 nullptr));
  }
  return out;
}

std::vector<std::uint8_t> Encoder::encode_annexb(
    const std::vector<YuvFrame>& frames) {
  std::vector<NalUnit> units = parameter_sets();
  for (EncodedPicture& pic : encode(frames)) {
    units.push_back(std::move(pic.nal));
  }
  return pack_annexb(units);
}

}  // namespace affectsys::h264
