// Per-picture rate control: adapts QP so the stream tracks a target
// bitrate.
//
// Extension beyond the paper (their decoder consumes fixed-QP streams):
// real mobile content is rate-controlled, which shapes the NAL-size
// distribution the Input Selector keys on.  The controller is the classic
// leaky-bucket proportional scheme: a virtual buffer accumulates
// (actual - budget) bits per picture and QP steps up or down with the
// buffer fullness, clamped to +-2 per picture to avoid quality pumping.
#pragma once

#include <cstdint>

namespace affectsys::h264 {

struct RateControlConfig {
  double target_bps = 200000.0;  ///< target bitrate
  double fps = 25.0;
  int initial_qp = 28;
  int min_qp = 12;
  int max_qp = 48;
  /// Buffer fullness (in picture-budgets) that forces a QP step.
  double reaction = 1.0;
};

class RateController {
 public:
  explicit RateController(const RateControlConfig& cfg);

  /// QP to use for the next picture.
  int next_qp() const { return qp_; }

  /// Reports the size of the picture just coded; updates the state.
  void picture_coded(std::size_t bytes);

  /// Call before coding a keyframe forced outside the normal GOP cadence
  /// (simulcast segment starts, stream-switch points).  The IDR that
  /// closed the previous GOP leaves the virtual buffer holding several
  /// picture-budgets of debt; carrying that into the new GOP would spike
  /// QP on its opening pictures even though the overshoot belongs to a
  /// GOP that no longer exists.  Forgives all but +-reaction
  /// picture-budgets of accumulated error (one QP step of pressure), so
  /// the new GOP starts near-neutral while a genuine sustained trend
  /// still carries.
  void begin_forced_idr();

  /// Bits currently over (+) or under (-) budget.
  double buffer_bits() const { return buffer_bits_; }
  /// Average bitrate so far.
  double achieved_bps() const;

 private:
  RateControlConfig cfg_;
  int qp_;
  double buffer_bits_ = 0.0;
  std::uint64_t pictures_ = 0;
  std::uint64_t total_bits_ = 0;
};

}  // namespace affectsys::h264
