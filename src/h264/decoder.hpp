// H.264 decoder mirroring the Fig 5 pipeline: bitstream parser ->
// CAVLC/variable-length decoding -> IQIT -> intra/inter prediction ->
// deblocking filter, with per-module activity counters feeding the power
// model and a runtime-deactivatable Deblocking Filter (the paper's second
// power knob).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "h264/bitstream.hpp"
#include "h264/deblock.hpp"
#include "h264/frame.hpp"
#include "h264/nal.hpp"

namespace affectsys::h264 {

/// Typed decode failure: a malformed (possibly fault-injected) NAL unit
/// the decoder refused to act on.  Derives from BitstreamError so every
/// existing parse-error handler keeps working; carries the offending
/// NAL type for triage.
class DecodeError : public BitstreamError {
 public:
  DecodeError(const std::string& what, NalType type)
      : BitstreamError(what), type_(type) {}

  NalType nal_type() const { return type_; }

 private:
  NalType type_;
};

/// Per-module activity counters incremented while decoding.  The power
/// model (src/power) converts these into module energies.
struct DecodeActivity {
  // Bitstream parser / circular-buffer path.
  std::uint64_t nal_units = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bits_parsed = 0;
  // CAVLC / variable-length decoder.
  std::uint64_t residual_blocks = 0;
  std::uint64_t coefficients = 0;
  // IQIT.
  std::uint64_t iqit_blocks = 0;
  // Prediction.
  std::uint64_t intra_mbs = 0;
  std::uint64_t inter_mbs = 0;
  std::uint64_t skip_mbs = 0;
  // Deblocking filter.
  std::uint64_t deblock_edges_examined = 0;
  std::uint64_t deblock_edges_filtered = 0;
  std::uint64_t deblock_pixels = 0;
  // Frame-level.
  std::uint64_t frames_decoded = 0;
  std::uint64_t frames_concealed = 0;
  // Error recovery (resilient mode; see DecoderConfig::resilient).
  std::uint64_t nal_errors = 0;    ///< malformed NALs swallowed or thrown
  std::uint64_t resync_skips = 0;  ///< non-IDR slices skipped awaiting resync
  std::uint64_t resyncs = 0;       ///< recoveries completed at an IDR
  std::uint64_t loss_signals = 0;  ///< upstream losses reported via notify_loss

  DecodeActivity& operator+=(const DecodeActivity& o);
};

struct DecodedPicture {
  YuvFrame frame;
  int poc = 0;
  SliceType type = SliceType::kI;
  bool concealed = false;  ///< frame-copy substituted for a missing picture
};

struct DecoderConfig {
  /// Affect-driven DF knob: when false the Deblocking Filter module is
  /// powered down regardless of the PPS flag.
  bool enable_deblock = true;
  /// Error resilience: when true a malformed NAL is counted and
  /// swallowed (the picture is lost) instead of raising DecodeError, and
  /// the decoder drops its references and skips non-IDR slices until the
  /// next keyframe decodes — resync-to-next-keyframe recovery.  On a
  /// well-formed stream the resilient decoder is byte-identical to the
  /// strict one (the error path never runs).
  bool resilient = false;
};

class Decoder {
 public:
  explicit Decoder(const DecoderConfig& cfg = {}) : cfg_(cfg) {}

  /// Feeds one NAL unit (parameter set or slice).  Returns the decoded
  /// picture for slice units, nullopt otherwise.  Malformed units raise
  /// DecodeError — or, with DecoderConfig::resilient, are counted in
  /// activity().nal_errors and swallowed (nullopt) while the decoder
  /// resyncs at the next keyframe.
  std::optional<DecodedPicture> decode_nal(const NalUnit& nal);

  /// Decodes an entire Annex-B stream (decode order).
  std::vector<DecodedPicture> decode_annexb(
      std::span<const std::uint8_t> stream);

  const DecodeActivity& activity() const { return activity_; }
  void reset_activity() { activity_ = {}; }

  bool deblock_enabled() const { return cfg_.enable_deblock && pps_deblock_; }
  void set_deblock_enabled(bool on) { cfg_.enable_deblock = on; }

  int width() const { return width_; }
  int height() const { return height_; }

  /// True while a resilient decoder is discarding non-IDR slices after
  /// an error, waiting for the next keyframe.
  bool awaiting_keyframe() const { return awaiting_keyframe_; }

  /// Re-initializes decode state (parameter sets, references, resync
  /// state, activity counters) exactly as constructing a fresh
  /// Decoder(cfg) would, but keeps the scratch buffers' and recycled
  /// frames' capacity — the allocation-free equivalent of the old
  /// `decoder = Decoder(cfg)` stream restart.
  void reset(const DecoderConfig& cfg);

  /// Returns a retired frame to the decoder's spare list.  decode_slice
  /// reuses spare frames of the current geometry for reconstruction
  /// (zero-filled first, so recycled and fresh frames are
  /// byte-identical) instead of allocating a new YuvFrame per picture.
  void recycle(YuvFrame&& frame);

  /// Upstream loss report: a transport depacketizer (or any feeder) has
  /// detected that a unit it cannot even present was lost — a dropped
  /// packet, an unreassemblable fragment set.  A resilient decoder
  /// reacts exactly as it does to a malformed slice: references are
  /// dropped and non-IDR slices are skipped until the next keyframe, so
  /// every picture decoded after the resync is bit-exact against a
  /// clean decode.  A strict decoder only counts the signal (the caller
  /// opted out of recovery).
  void notify_loss();

 private:
  std::optional<DecodedPicture> decode_nal_checked(const NalUnit& nal);
  DecodedPicture decode_slice(const NalUnit& nal);
  /// Zero-filled frame at the current geometry, reusing a recycled
  /// frame's storage when one fits.
  YuvFrame take_frame();

  DecoderConfig cfg_;
  DecodeActivity activity_;
  int width_ = 0;
  int height_ = 0;
  int qp_ = 26;
  bool pps_deblock_ = true;
  bool have_sps_ = false;
  bool awaiting_keyframe_ = false;

  YuvFrame ref_a_;  ///< older reference (forward for B pictures)
  YuvFrame ref_b_;  ///< newer reference
  int refs_held_ = 0;

  // Steady-state scratch (capacity survives reset()): RBSP de-escape
  // staging, per-slice macroblock info, and recycled reconstruction
  // frames.
  std::vector<std::uint8_t> rbsp_;
  std::vector<MbInfo> mb_info_;
  std::vector<YuvFrame> spare_frames_;
};

/// Reorders decode-order pictures into display order over pocs
/// [0, expected_pictures) and fills gaps left by deleted NAL units with a
/// copy of the nearest earlier displayed frame (frame-copy concealment).
std::vector<DecodedPicture> assemble_display_sequence(
    std::vector<DecodedPicture> decoded, int expected_pictures);

}  // namespace affectsys::h264
