// H.264 decoder mirroring the Fig 5 pipeline: bitstream parser ->
// CAVLC/variable-length decoding -> IQIT -> intra/inter prediction ->
// deblocking filter, with per-module activity counters feeding the power
// model and a runtime-deactivatable Deblocking Filter (the paper's second
// power knob).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "h264/frame.hpp"
#include "h264/nal.hpp"

namespace affectsys::h264 {

/// Per-module activity counters incremented while decoding.  The power
/// model (src/power) converts these into module energies.
struct DecodeActivity {
  // Bitstream parser / circular-buffer path.
  std::uint64_t nal_units = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bits_parsed = 0;
  // CAVLC / variable-length decoder.
  std::uint64_t residual_blocks = 0;
  std::uint64_t coefficients = 0;
  // IQIT.
  std::uint64_t iqit_blocks = 0;
  // Prediction.
  std::uint64_t intra_mbs = 0;
  std::uint64_t inter_mbs = 0;
  std::uint64_t skip_mbs = 0;
  // Deblocking filter.
  std::uint64_t deblock_edges_examined = 0;
  std::uint64_t deblock_edges_filtered = 0;
  std::uint64_t deblock_pixels = 0;
  // Frame-level.
  std::uint64_t frames_decoded = 0;
  std::uint64_t frames_concealed = 0;

  DecodeActivity& operator+=(const DecodeActivity& o);
};

struct DecodedPicture {
  YuvFrame frame;
  int poc = 0;
  SliceType type = SliceType::kI;
  bool concealed = false;  ///< frame-copy substituted for a missing picture
};

struct DecoderConfig {
  /// Affect-driven DF knob: when false the Deblocking Filter module is
  /// powered down regardless of the PPS flag.
  bool enable_deblock = true;
};

class Decoder {
 public:
  explicit Decoder(const DecoderConfig& cfg = {}) : cfg_(cfg) {}

  /// Feeds one NAL unit (parameter set or slice).  Returns the decoded
  /// picture for slice units, nullopt otherwise.
  std::optional<DecodedPicture> decode_nal(const NalUnit& nal);

  /// Decodes an entire Annex-B stream (decode order).
  std::vector<DecodedPicture> decode_annexb(
      std::span<const std::uint8_t> stream);

  const DecodeActivity& activity() const { return activity_; }
  void reset_activity() { activity_ = {}; }

  bool deblock_enabled() const { return cfg_.enable_deblock && pps_deblock_; }
  void set_deblock_enabled(bool on) { cfg_.enable_deblock = on; }

  int width() const { return width_; }
  int height() const { return height_; }

 private:
  DecodedPicture decode_slice(const NalUnit& nal);

  DecoderConfig cfg_;
  DecodeActivity activity_;
  int width_ = 0;
  int height_ = 0;
  int qp_ = 26;
  bool pps_deblock_ = true;
  bool have_sps_ = false;

  YuvFrame ref_a_;  ///< older reference (forward for B pictures)
  YuvFrame ref_b_;  ///< newer reference
  int refs_held_ = 0;
};

/// Reorders decode-order pictures into display order over pocs
/// [0, expected_pictures) and fills gaps left by deleted NAL units with a
/// copy of the nearest earlier displayed frame (frame-copy concealment).
std::vector<DecodedPicture> assemble_display_sequence(
    std::vector<DecodedPicture> decoded, int expected_pictures);

}  // namespace affectsys::h264
