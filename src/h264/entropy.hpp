// CAVLC-style entropy coding of quantized 4x4 residual blocks.
//
// Structure follows CAVLC — zig-zag scan, total-coefficient token, levels
// coded back-to-front, run_before codes — but uses Exp-Golomb codewords
// instead of the spec's context-adaptive VLC tables.  The bit-level
// variable-length behaviour (small/zero blocks cost few bits, busy blocks
// cost many) is what the power model and the Input Selector's NAL-size
// distribution depend on, and that behaviour is preserved.
#pragma once

#include <cstdint>

#include "h264/bitstream.hpp"
#include "h264/transform.hpp"

namespace affectsys::h264 {

/// Zig-zag scan order for 4x4 blocks: index -> (row, col).
extern const int kZigzagRow[16];
extern const int kZigzagCol[16];

/// Encodes one quantized block.  Returns bits written.
std::size_t encode_residual_block(BitWriter& bw, const Block4x4& levels);

/// Decodes one block.  `nonzero_out` receives the coefficient count
/// (CAVLC activity metric).
Block4x4 decode_residual_block(BitReader& br, int* nonzero_out = nullptr);

}  // namespace affectsys::h264
