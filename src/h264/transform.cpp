#include "h264/transform.hpp"

namespace affectsys::h264 {
namespace {

// Quantization tables from the spec (8.5.9 / 8.5.10), indexed by QP%6 and
// coefficient position class: 0 = (0,0),(0,2),(2,0),(2,2); 1 = odd/odd;
// 2 = the rest.
constexpr int kMf[6][3] = {
    {13107, 5243, 8066}, {11916, 4660, 7490}, {10082, 4194, 6554},
    {9362, 3647, 5825},  {8192, 3355, 5243},  {7282, 2893, 4559},
};
constexpr int kV[6][3] = {
    {10, 16, 13}, {11, 18, 14}, {13, 20, 16},
    {14, 23, 18}, {16, 25, 20}, {18, 29, 23},
};

int coeff_class(int i, int j) {
  const bool ei = i % 2 == 0, ej = j % 2 == 0;
  if (ei && ej) return 0;
  if (!ei && !ej) return 1;
  return 2;
}

}  // namespace

Block4x4 forward_transform(const Block4x4& x) {
  // C = [1 1 1 1; 2 1 -1 -2; 1 -1 -1 1; 1 -2 2 -1]
  Block4x4 tmp{}, out{};
  for (int i = 0; i < 4; ++i) {
    const int a = x[i][0] + x[i][3];
    const int b = x[i][1] + x[i][2];
    const int c = x[i][1] - x[i][2];
    const int d = x[i][0] - x[i][3];
    tmp[i][0] = a + b;
    tmp[i][1] = 2 * d + c;
    tmp[i][2] = a - b;
    tmp[i][3] = d - 2 * c;
  }
  for (int j = 0; j < 4; ++j) {
    const int a = tmp[0][j] + tmp[3][j];
    const int b = tmp[1][j] + tmp[2][j];
    const int c = tmp[1][j] - tmp[2][j];
    const int d = tmp[0][j] - tmp[3][j];
    out[0][j] = a + b;
    out[1][j] = 2 * d + c;
    out[2][j] = a - b;
    out[3][j] = d - 2 * c;
  }
  return out;
}

Block4x4 inverse_transform(const Block4x4& c) {
  Block4x4 tmp{}, out{};
  for (int i = 0; i < 4; ++i) {
    const int a = c[i][0] + c[i][2];
    const int b = c[i][0] - c[i][2];
    const int d = (c[i][1] >> 1) - c[i][3];
    const int e = c[i][1] + (c[i][3] >> 1);
    tmp[i][0] = a + e;
    tmp[i][1] = b + d;
    tmp[i][2] = b - d;
    tmp[i][3] = a - e;
  }
  for (int j = 0; j < 4; ++j) {
    const int a = tmp[0][j] + tmp[2][j];
    const int b = tmp[0][j] - tmp[2][j];
    const int d = (tmp[1][j] >> 1) - tmp[3][j];
    const int e = tmp[1][j] + (tmp[3][j] >> 1);
    out[0][j] = (a + e + 32) >> 6;
    out[1][j] = (b + d + 32) >> 6;
    out[2][j] = (b - d + 32) >> 6;
    out[3][j] = (a - e + 32) >> 6;
  }
  return out;
}

Block4x4 quantize(const Block4x4& coeffs, int qp) {
  Block4x4 out{};
  const int rem = qp % 6;
  const int shift = 15 + qp / 6;
  const int offset = (1 << shift) / 3;  // intra-style rounding offset
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const int w = coeffs[i][j];
      const int mf = kMf[rem][coeff_class(i, j)];
      const long long mag =
          (static_cast<long long>(w < 0 ? -w : w) * mf + offset) >> shift;
      out[i][j] = w < 0 ? static_cast<int>(-mag) : static_cast<int>(mag);
    }
  }
  return out;
}

Block4x4 dequantize(const Block4x4& levels, int qp) {
  Block4x4 out{};
  const int rem = qp % 6;
  const int shift = qp / 6;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      out[i][j] = levels[i][j] * kV[rem][coeff_class(i, j)] << shift;
    }
  }
  return out;
}

Block4x4 transform_quantize(const Block4x4& residual, int qp) {
  return quantize(forward_transform(residual), qp);
}

Block4x4 dequantize_inverse(const Block4x4& levels, int qp) {
  return inverse_transform(dequantize(levels, qp));
}

int count_nonzero(const Block4x4& b) {
  int n = 0;
  for (const auto& row : b) {
    for (int v : row) n += v != 0;
  }
  return n;
}

}  // namespace affectsys::h264
