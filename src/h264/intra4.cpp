#include "h264/intra4.hpp"

#include <cstdlib>
#include <limits>

#include "h264/intra.hpp"  // sad_block

namespace affectsys::h264 {
namespace {

/// Neighbour samples: T[-1..7] is the row above (T[-1] = corner), L[0..3]
/// the column to the left.  Out-of-frame positions clamp, so every mode
/// is always available.
struct Neighbours {
  int t[9];  ///< t[i+1] = top sample at horizontal offset i, i in [-1, 7]
  int l[4];

  int T(int i) const { return t[i + 1]; }
  int L(int i) const { return l[i]; }
};

Neighbours fetch(const Plane& recon, int x0, int y0) {
  Neighbours n{};
  for (int i = -1; i <= 7; ++i) {
    n.t[i + 1] = recon.at_clamped(x0 + i, y0 - 1);
  }
  for (int j = 0; j < 4; ++j) {
    n.l[j] = recon.at_clamped(x0 - 1, y0 + j);
  }
  return n;
}

}  // namespace

void intra4_predict(const Plane& recon, int x0, int y0, Intra4Mode mode,
                    std::uint8_t pred[16]) {
  const Neighbours n = fetch(recon, x0, y0);
  switch (mode) {
    case Intra4Mode::kVertical:
      for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
          pred[y * 4 + x] = static_cast<std::uint8_t>(n.T(x));
        }
      }
      break;
    case Intra4Mode::kHorizontal:
      for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
          pred[y * 4 + x] = static_cast<std::uint8_t>(n.L(y));
        }
      }
      break;
    case Intra4Mode::kDc: {
      int sum = 0;
      for (int i = 0; i < 4; ++i) sum += n.T(i) + n.L(i);
      const auto dc = static_cast<std::uint8_t>((sum + 4) >> 3);
      for (int i = 0; i < 16; ++i) pred[i] = dc;
      break;
    }
    case Intra4Mode::kDiagonalDownLeft:
      // 8.3.1.2.4: averages along the down-left diagonal over the
      // extended top row.
      for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
          int v;
          if (x == 3 && y == 3) {
            v = (n.T(6) + 3 * n.T(7) + 2) >> 2;
          } else {
            v = (n.T(x + y) + 2 * n.T(x + y + 1) + n.T(x + y + 2) + 2) >> 2;
          }
          pred[y * 4 + x] = clamp_pixel(v);
        }
      }
      break;
    case Intra4Mode::kDiagonalDownRight:
      // 8.3.1.2.5: averages along the down-right diagonal through the
      // corner sample.
      for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
          int v;
          if (x > y) {
            const int i = x - y;
            v = (n.T(i - 2) + 2 * n.T(i - 1) + n.T(i) + 2) >> 2;
          } else if (x < y) {
            const int j = y - x;
            const int a = j >= 3 ? n.L(3) : n.L(j);       // clamp tail
            const int b = n.L(j - 1);
            const int c = j - 2 >= 0 ? n.L(j - 2) : n.T(-1);
            v = (a + 2 * b + c + 2) >> 2;
          } else {
            v = (n.T(0) + 2 * n.T(-1) + n.L(0) + 2) >> 2;
          }
          pred[y * 4 + x] = clamp_pixel(v);
        }
      }
      break;
  }
}

Intra4Mode choose_intra4_mode(const Plane& src, const Plane& recon, int x0,
                              int y0) {
  std::uint8_t pred[16];
  int best_sad = std::numeric_limits<int>::max();
  Intra4Mode best = Intra4Mode::kDc;
  for (int m = 0; m < kNumIntra4Modes; ++m) {
    const auto mode = static_cast<Intra4Mode>(m);
    intra4_predict(recon, x0, y0, mode, pred);
    const int sad = sad_block(src, x0, y0, 4, pred);
    if (sad < best_sad) {
      best_sad = sad;
      best = mode;
    }
  }
  return best;
}

}  // namespace affectsys::h264
