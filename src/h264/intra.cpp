#include "h264/intra.hpp"

#include <cstdlib>
#include <limits>

namespace affectsys::h264 {

void intra_predict(const Plane& recon, int x0, int y0, int size,
                   IntraMode mode, std::uint8_t* pred) {
  const bool has_top = y0 > 0;
  const bool has_left = x0 > 0;

  switch (mode) {
    case IntraMode::kVertical: {
      for (int x = 0; x < size; ++x) {
        const std::uint8_t v =
            has_top ? recon.at(x0 + x, y0 - 1) : std::uint8_t{128};
        for (int y = 0; y < size; ++y) pred[y * size + x] = v;
      }
      break;
    }
    case IntraMode::kHorizontal: {
      for (int y = 0; y < size; ++y) {
        const std::uint8_t v =
            has_left ? recon.at(x0 - 1, y0 + y) : std::uint8_t{128};
        for (int x = 0; x < size; ++x) pred[y * size + x] = v;
      }
      break;
    }
    case IntraMode::kDc: {
      int sum = 0, count = 0;
      if (has_top) {
        for (int x = 0; x < size; ++x) sum += recon.at(x0 + x, y0 - 1);
        count += size;
      }
      if (has_left) {
        for (int y = 0; y < size; ++y) sum += recon.at(x0 - 1, y0 + y);
        count += size;
      }
      const std::uint8_t dc =
          count ? static_cast<std::uint8_t>((sum + count / 2) / count)
                : std::uint8_t{128};
      for (int i = 0; i < size * size; ++i) pred[i] = dc;
      break;
    }
  }
}

int sad_block(const Plane& src, int x0, int y0, int size,
              const std::uint8_t* pred) {
  int sad = 0;
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      sad += std::abs(static_cast<int>(src.at(x0 + x, y0 + y)) -
                      static_cast<int>(pred[y * size + x]));
    }
  }
  return sad;
}

IntraMode choose_intra_mode(const Plane& src, const Plane& recon, int x0,
                            int y0, int size) {
  std::vector<std::uint8_t> pred(static_cast<std::size_t>(size) * size);
  int best_sad = std::numeric_limits<int>::max();
  IntraMode best = IntraMode::kDc;
  for (int m = 0; m < kNumIntraModes; ++m) {
    const auto mode = static_cast<IntraMode>(m);
    intra_predict(recon, x0, y0, size, mode, pred.data());
    const int sad = sad_block(src, x0, y0, size, pred.data());
    if (sad < best_sad) {
      best_sad = sad;
      best = mode;
    }
  }
  return best;
}

}  // namespace affectsys::h264
