#include "h264/deblock.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace affectsys::h264 {
namespace {

// Table 8-16 (alpha/beta as a function of indexA/indexB == QP here).
constexpr int kAlpha[52] = {
    0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,   0,   0,   0,  4,
    4,  5,  6,  7,  8,  9,  10, 12, 13, 15, 17, 20, 22,  25,  28,  32, 36,
    40, 45, 50, 56, 63, 71, 80, 90, 101, 113, 127, 144, 162, 182, 203, 226,
    255, 255};
constexpr int kBeta[52] = {
    0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  2,
    2,  2,  3,  3,  3,  3,  4,  4,  4,  6,  6,  7,  7,  8,  8,  9,  9,
    10, 10, 11, 11, 12, 12, 13, 13, 14, 14, 15, 15, 16, 16, 17, 17, 18, 18};

// tc0 clipping table (Table 8-17), rows are bs 1..3.
constexpr int kTc0[3][52] = {
    {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
     1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 4, 4, 4, 5, 6,
     6, 7, 8, 9},
    {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
     1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 4, 4, 5, 6, 7,
     8, 8, 10, 11},
    {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
     1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 4, 4, 5, 6, 7,
     9, 10, 11, 13}};

struct EdgePixels {
  // p3..p0 on one side, q0..q3 on the other, fetched via an accessor.
  int p[4];
  int q[4];
};

/// Filters one line of an edge; returns number of pixels modified.
/// This is the pre-optimization accessor-based core, retained for
/// deblock_frame_reference (the bit-exactness baseline).
template <typename Get, typename Set>
int filter_line(int bs, int qp, Get get, Set set) {
  const int alpha = kAlpha[qp];
  const int beta = kBeta[qp];
  EdgePixels e{};
  for (int i = 0; i < 4; ++i) {
    e.p[i] = get(-1 - i);
    e.q[i] = get(i);
  }
  if (std::abs(e.p[0] - e.q[0]) >= alpha || std::abs(e.p[1] - e.p[0]) >= beta ||
      std::abs(e.q[1] - e.q[0]) >= beta) {
    return 0;
  }
  int modified = 0;
  if (bs == 4) {
    // Strong filter (8.7.2.4 luma path, simplified to the 3-tap branch
    // plus the 5-tap branch under the spatial-activity condition).
    const bool strong_p = std::abs(e.p[2] - e.p[0]) < beta &&
                          std::abs(e.p[0] - e.q[0]) < (alpha >> 2) + 2;
    const bool strong_q = std::abs(e.q[2] - e.q[0]) < beta &&
                          std::abs(e.p[0] - e.q[0]) < (alpha >> 2) + 2;
    if (strong_p) {
      set(-1, (e.p[2] + 2 * e.p[1] + 2 * e.p[0] + 2 * e.q[0] + e.q[1] + 4) >> 3);
      set(-2, (e.p[2] + e.p[1] + e.p[0] + e.q[0] + 2) >> 2);
      set(-3, (2 * e.p[3] + 3 * e.p[2] + e.p[1] + e.p[0] + e.q[0] + 4) >> 3);
      modified += 3;
    } else {
      set(-1, (2 * e.p[1] + e.p[0] + e.q[1] + 2) >> 2);
      modified += 1;
    }
    if (strong_q) {
      set(0, (e.q[2] + 2 * e.q[1] + 2 * e.q[0] + 2 * e.p[0] + e.p[1] + 4) >> 3);
      set(1, (e.q[2] + e.q[1] + e.q[0] + e.p[0] + 2) >> 2);
      set(2, (2 * e.q[3] + 3 * e.q[2] + e.q[1] + e.q[0] + e.p[0] + 4) >> 3);
      modified += 3;
    } else {
      set(0, (2 * e.q[1] + e.q[0] + e.p[1] + 2) >> 2);
      modified += 1;
    }
  } else {
    const int ap = std::abs(e.p[2] - e.p[0]);
    const int aq = std::abs(e.q[2] - e.q[0]);
    const int tc0 = kTc0[bs - 1][qp];
    const int tc = tc0 + (ap < beta ? 1 : 0) + (aq < beta ? 1 : 0);
    const int delta = std::clamp(
        ((e.q[0] - e.p[0]) * 4 + (e.p[1] - e.q[1]) + 4) >> 3, -tc, tc);
    set(-1, std::clamp(e.p[0] + delta, 0, 255));
    set(0, std::clamp(e.q[0] - delta, 0, 255));
    modified += 2;
    if (ap < beta && tc0 > 0) {
      const int dp = std::clamp(
          (e.p[2] + ((e.p[0] + e.q[0] + 1) >> 1) - 2 * e.p[1]) >> 1, -tc0,
          tc0);
      set(-2, e.p[1] + dp);
      ++modified;
    }
    if (aq < beta && tc0 > 0) {
      const int dq = std::clamp(
          (e.q[2] + ((e.p[0] + e.q[0] + 1) >> 1) - 2 * e.q[1]) >> 1, -tc0,
          tc0);
      set(1, e.q[1] + dq);
      ++modified;
    }
  }
  return modified;
}

// ---------------------------------------------------------------------------
// Optimized strided-pointer core.
//
// deblock_frame below works directly on plane memory: `q0` points at the
// first q-side pixel of an edge line, `pix` strides across the edge
// (p-side at negative multiples) and `line` advances to the next line of
// the same edge.  Every footprint is in-bounds by construction — luma
// edges start at x (or y) >= 4 and YuvFrame luma dimensions are
// multiples of 16; chroma only filters macroblock edges (x, y >= 8 in
// half-resolution planes) — so the reference's at_clamped reads and
// guarded writes are no-ops there and the pointer core is byte-identical.
// All eight pixels are loaded before any store, matching the reference's
// up-front EdgePixels fetch.

/// Per-frame thresholds: QP is constant across a frame, so the table
/// lookups happen once instead of once per filtered line.
struct EdgeThresholds {
  int alpha = 0;
  int beta = 0;
  int tc0_by_bs[4] = {0, 0, 0, 0};  ///< index by bs (1..3)

  explicit EdgeThresholds(int qp)
      : alpha(kAlpha[qp]), beta(kBeta[qp]),
        tc0_by_bs{0, kTc0[0][qp], kTc0[1][qp], kTc0[2][qp]} {}
};

inline int filter_line_strong(const int alpha, const int beta,
                              std::uint8_t* __restrict q0p,
                              const std::ptrdiff_t pix) {
  const int p0 = q0p[-pix], p1 = q0p[-2 * pix], p2 = q0p[-3 * pix],
            p3 = q0p[-4 * pix];
  const int q0 = q0p[0], q1 = q0p[pix], q2 = q0p[2 * pix], q3 = q0p[3 * pix];
  if (std::abs(p0 - q0) >= alpha || std::abs(p1 - p0) >= beta ||
      std::abs(q1 - q0) >= beta) {
    return 0;
  }
  const bool strong_p =
      std::abs(p2 - p0) < beta && std::abs(p0 - q0) < (alpha >> 2) + 2;
  const bool strong_q =
      std::abs(q2 - q0) < beta && std::abs(p0 - q0) < (alpha >> 2) + 2;
  int modified = 0;
  if (strong_p) {
    q0p[-pix] = clamp_pixel((p2 + 2 * p1 + 2 * p0 + 2 * q0 + q1 + 4) >> 3);
    q0p[-2 * pix] = clamp_pixel((p2 + p1 + p0 + q0 + 2) >> 2);
    q0p[-3 * pix] = clamp_pixel((2 * p3 + 3 * p2 + p1 + p0 + q0 + 4) >> 3);
    modified += 3;
  } else {
    q0p[-pix] = clamp_pixel((2 * p1 + p0 + q1 + 2) >> 2);
    modified += 1;
  }
  if (strong_q) {
    q0p[0] = clamp_pixel((q2 + 2 * q1 + 2 * q0 + 2 * p0 + p1 + 4) >> 3);
    q0p[pix] = clamp_pixel((q2 + q1 + q0 + p0 + 2) >> 2);
    q0p[2 * pix] = clamp_pixel((2 * q3 + 3 * q2 + q1 + q0 + p0 + 4) >> 3);
    modified += 3;
  } else {
    q0p[0] = clamp_pixel((2 * q1 + q0 + p1 + 2) >> 2);
    modified += 1;
  }
  return modified;
}

inline int filter_line_normal(const int alpha, const int beta, const int tc0,
                              std::uint8_t* __restrict q0p,
                              const std::ptrdiff_t pix) {
  const int p0 = q0p[-pix], p1 = q0p[-2 * pix], p2 = q0p[-3 * pix];
  const int q0 = q0p[0], q1 = q0p[pix], q2 = q0p[2 * pix];
  if (std::abs(p0 - q0) >= alpha || std::abs(p1 - p0) >= beta ||
      std::abs(q1 - q0) >= beta) {
    return 0;
  }
  const int ap = std::abs(p2 - p0);
  const int aq = std::abs(q2 - q0);
  const int tc = tc0 + (ap < beta ? 1 : 0) + (aq < beta ? 1 : 0);
  const int delta =
      std::clamp(((q0 - p0) * 4 + (p1 - q1) + 4) >> 3, -tc, tc);
  q0p[-pix] = clamp_pixel(std::clamp(p0 + delta, 0, 255));
  q0p[0] = clamp_pixel(std::clamp(q0 - delta, 0, 255));
  int modified = 2;
  if (ap < beta && tc0 > 0) {
    const int dp = std::clamp(
        (p2 + ((p0 + q0 + 1) >> 1) - 2 * p1) >> 1, -tc0, tc0);
    q0p[-2 * pix] = clamp_pixel(p1 + dp);
    ++modified;
  }
  if (aq < beta && tc0 > 0) {
    const int dq = std::clamp(
        (q2 + ((p0 + q0 + 1) >> 1) - 2 * q1) >> 1, -tc0, tc0);
    q0p[pix] = clamp_pixel(q1 + dq);
    ++modified;
  }
  return modified;
}

/// Filters `nlines` consecutive lines of one edge; the bs==4 branch
/// decision is hoisted out of the line loop.  Returns pixels modified.
inline int filter_edge(const int bs, const EdgeThresholds& th,
                       std::uint8_t* q0, const std::ptrdiff_t pix,
                       const std::ptrdiff_t line, const int nlines) {
  int modified = 0;
  if (bs == 4) {
    for (int l = 0; l < nlines; ++l, q0 += line) {
      modified += filter_line_strong(th.alpha, th.beta, q0, pix);
    }
  } else {
    const int tc0 = th.tc0_by_bs[bs];
    for (int l = 0; l < nlines; ++l, q0 += line) {
      modified += filter_line_normal(th.alpha, th.beta, tc0, q0, pix);
    }
  }
  return modified;
}

}  // namespace

int deblock_alpha(int qp) { return kAlpha[std::clamp(qp, 0, 51)]; }
int deblock_beta(int qp) { return kBeta[std::clamp(qp, 0, 51)]; }

int boundary_strength(const MbInfo& p, int p_blk, const MbInfo& q, int q_blk,
                      bool mb_edge) {
  if (p.intra || q.intra) return mb_edge ? 4 : 3;
  if (p.nonzero[static_cast<std::size_t>(p_blk)] ||
      q.nonzero[static_cast<std::size_t>(q_blk)]) {
    return 2;
  }
  // Vectors are in half-pel units: a difference of one full sample
  // (>= 2 half-pels) marks a motion edge (spec 8.7.2 uses 4 quarter-pels).
  const int dmx = std::abs(p.mv.dx - q.mv.dx);
  const int dmy = std::abs(p.mv.dy - q.mv.dy);
  if (dmx >= 2 || dmy >= 2) return 1;
  return 0;
}

DeblockStats deblock_frame(YuvFrame& frame, const std::vector<MbInfo>& mb_info,
                           int qp) {
  AFFECTSYS_TIME_SCOPE("h264.deblock_ns");
  DeblockStats stats;
  qp = std::clamp(qp, 0, 51);
  const EdgeThresholds th(qp);
  const int mb_cols = frame.mb_cols();
  const int mb_rows = frame.mb_rows();
  Plane& Y = frame.y;
  const std::ptrdiff_t yw = Y.width;
  std::uint8_t* const ydata = Y.data.data();

  auto mb_at = [&](int mbx, int mby) -> const MbInfo& {
    return mb_info[static_cast<std::size_t>(mby) * mb_cols + mbx];
  };

  // Vertical edges (filter across x = 4k boundaries), then horizontal —
  // the spec's pass ordering.  The vertical pass only touches pixels
  // inside its own 16-line macroblock row, so it runs parallel over MB
  // rows.  The horizontal pass filters each pixel column independently
  // (every filtered line is vertical, at a fixed x), so it runs
  // parallel over MB columns; within a column the serial top-to-bottom
  // edge order is preserved, which keeps the output bit-exact against
  // the serial build for any thread count.  Each task accumulates stats
  // into its own slot; the deterministic sum below keeps DecodeActivity
  // identical too.
  // Per-task stat slots live in thread-local scratch (capacity kept
  // across frames) and the pool-less build runs the task body directly:
  // a steady-state decode must not allocate (the serve layer pins
  // this).  Summing slots in index order — or accumulating serially —
  // gives the same integer totals either way.
  const bool serial = core::global_threads() == 0;
  static thread_local std::vector<DeblockStats> pass_stats;
  {
    AFFECTSYS_TIME_SCOPE("h264.deblock_v_ns");
    std::vector<DeblockStats>& row_stats = pass_stats;
    row_stats.assign(static_cast<std::size_t>(mb_rows), DeblockStats{});
    const auto v_task =
        [&](std::size_t r0, std::size_t r1) {
          for (std::size_t r = r0; r < r1; ++r) {
            const int mby = static_cast<int>(r);
            DeblockStats& st = row_stats[r];
            for (int mbx = 0; mbx < mb_cols; ++mbx) {
              const MbInfo& cur = mb_at(mbx, mby);
              for (int edge = 0; edge < 4; ++edge) {
                const int x = mbx * kMbSize + edge * 4;
                if (x == 0) continue;  // frame boundary
                const bool mb_edge = edge == 0;
                const MbInfo& left = mb_edge ? mb_at(mbx - 1, mby) : cur;
                for (int y4 = 0; y4 < 4; ++y4) {
                  const int q_blk = y4 * 4 + edge;
                  const int p_blk = mb_edge ? y4 * 4 + 3 : y4 * 4 + edge - 1;
                  const int bs =
                      boundary_strength(left, p_blk, cur, q_blk, mb_edge);
                  ++st.edges_examined;
                  if (bs == 0) continue;
                  ++st.edges_filtered;
                  const int y0 = mby * kMbSize + y4 * 4;
                  // Edge lines run down the plane: pixel stride 1,
                  // line stride = row pitch.
                  st.pixels_modified += static_cast<std::uint64_t>(
                      filter_edge(bs, th, ydata + y0 * yw + x, 1, yw, 4));
                }
              }
            }
          }
        };
    if (serial) {
      v_task(0, static_cast<std::size_t>(mb_rows));
    } else {
      core::parallel_for(0, static_cast<std::size_t>(mb_rows), 1, v_task);
    }
    for (const DeblockStats& st : row_stats) stats += st;
  }
  {
    AFFECTSYS_TIME_SCOPE("h264.deblock_h_ns");
    std::vector<DeblockStats>& col_stats = pass_stats;
    col_stats.assign(static_cast<std::size_t>(mb_cols), DeblockStats{});
    const auto h_task =
        [&](std::size_t c0, std::size_t c1) {
          for (std::size_t c = c0; c < c1; ++c) {
            const int mbx = static_cast<int>(c);
            DeblockStats& st = col_stats[c];
            for (int mby = 0; mby < mb_rows; ++mby) {
              const MbInfo& cur = mb_at(mbx, mby);
              for (int edge = 0; edge < 4; ++edge) {
                const int y = mby * kMbSize + edge * 4;
                if (y == 0) continue;
                const bool mb_edge = edge == 0;
                const MbInfo& top = mb_edge ? mb_at(mbx, mby - 1) : cur;
                for (int x4 = 0; x4 < 4; ++x4) {
                  const int q_blk = edge * 4 + x4;
                  const int p_blk = mb_edge ? 3 * 4 + x4 : (edge - 1) * 4 + x4;
                  const int bs =
                      boundary_strength(top, p_blk, cur, q_blk, mb_edge);
                  ++st.edges_examined;
                  if (bs == 0) continue;
                  ++st.edges_filtered;
                  const int x0 = mbx * kMbSize + x4 * 4;
                  // Edge lines run across the plane: pixel stride =
                  // row pitch, line stride 1.
                  st.pixels_modified += static_cast<std::uint64_t>(
                      filter_edge(bs, th, ydata + y * yw + x0, yw, 1, 4));
                }
              }
            }
          }
        };
    if (serial) {
      h_task(0, static_cast<std::size_t>(mb_cols));
    } else {
      core::parallel_for(0, static_cast<std::size_t>(mb_cols), 1, h_task);
    }
    for (const DeblockStats& st : col_stats) stats += st;
  }

  AFFECTSYS_TIME_SCOPE("h264.deblock_chroma_ns");
  // Chroma: filter macroblock-boundary edges only, using the bs of the
  // co-located luma edge class (2 if either MB coded, 4 if intra).
  for (Plane* C : {&frame.cb, &frame.cr}) {
    const std::ptrdiff_t cw = C->width;
    std::uint8_t* const cdata = C->data.data();
    for (int mby = 0; mby < mb_rows; ++mby) {
      for (int mbx = 0; mbx < mb_cols; ++mbx) {
        const MbInfo& cur = mb_at(mbx, mby);
        if (mbx > 0) {
          const MbInfo& left = mb_at(mbx - 1, mby);
          const int bs = boundary_strength(left, 3, cur, 0, true);
          ++stats.edges_examined;
          if (bs > 0) {
            ++stats.edges_filtered;
            const int x = mbx * 8;
            stats.pixels_modified += static_cast<std::uint64_t>(filter_edge(
                std::min(bs, 3), th, cdata + (mby * 8) * cw + x, 1, cw, 8));
          }
        }
        if (mby > 0) {
          const MbInfo& top = mb_at(mbx, mby - 1);
          const int bs = boundary_strength(top, 12, cur, 0, true);
          ++stats.edges_examined;
          if (bs > 0) {
            ++stats.edges_filtered;
            const int y = mby * 8;
            stats.pixels_modified += static_cast<std::uint64_t>(filter_edge(
                std::min(bs, 3), th, cdata + y * cw + mbx * 8, cw, 1, 8));
          }
        }
      }
    }
  }
  AFFECTSYS_COUNT("h264.deblock_edges_examined", stats.edges_examined);
  AFFECTSYS_COUNT("h264.deblock_edges_filtered", stats.edges_filtered);
  AFFECTSYS_COUNT("h264.deblock_pixels", stats.pixels_modified);
  return stats;
}

DeblockStats deblock_frame_reference(YuvFrame& frame,
                                     const std::vector<MbInfo>& mb_info,
                                     int qp) {
  DeblockStats stats;
  qp = std::clamp(qp, 0, 51);
  const int mb_cols = frame.mb_cols();
  const int mb_rows = frame.mb_rows();
  Plane& Y = frame.y;

  auto mb_at = [&](int mbx, int mby) -> const MbInfo& {
    return mb_info[static_cast<std::size_t>(mby) * mb_cols + mbx];
  };

  for (int mby = 0; mby < mb_rows; ++mby) {
    for (int mbx = 0; mbx < mb_cols; ++mbx) {
      const MbInfo& cur = mb_at(mbx, mby);
      for (int edge = 0; edge < 4; ++edge) {
        const int x = mbx * kMbSize + edge * 4;
        if (x == 0) continue;  // frame boundary
        const bool mb_edge = edge == 0;
        const MbInfo& left = mb_edge ? mb_at(mbx - 1, mby) : cur;
        for (int y4 = 0; y4 < 4; ++y4) {
          const int q_blk = y4 * 4 + edge;
          const int p_blk = mb_edge ? y4 * 4 + 3 : y4 * 4 + edge - 1;
          const int bs = boundary_strength(left, p_blk, cur, q_blk, mb_edge);
          ++stats.edges_examined;
          if (bs == 0) continue;
          ++stats.edges_filtered;
          const int y0 = mby * kMbSize + y4 * 4;
          for (int line = 0; line < 4; ++line) {
            const int yy = y0 + line;
            stats.pixels_modified += static_cast<std::uint64_t>(filter_line(
                bs, qp,
                [&](int off) { return static_cast<int>(Y.at(x + off, yy)); },
                [&](int off, int v) { Y.at(x + off, yy) = clamp_pixel(v); }));
          }
        }
      }
    }
  }
  for (int mbx = 0; mbx < mb_cols; ++mbx) {
    for (int mby = 0; mby < mb_rows; ++mby) {
      const MbInfo& cur = mb_at(mbx, mby);
      for (int edge = 0; edge < 4; ++edge) {
        const int y = mby * kMbSize + edge * 4;
        if (y == 0) continue;
        const bool mb_edge = edge == 0;
        const MbInfo& top = mb_edge ? mb_at(mbx, mby - 1) : cur;
        for (int x4 = 0; x4 < 4; ++x4) {
          const int q_blk = edge * 4 + x4;
          const int p_blk = mb_edge ? 3 * 4 + x4 : (edge - 1) * 4 + x4;
          const int bs = boundary_strength(top, p_blk, cur, q_blk, mb_edge);
          ++stats.edges_examined;
          if (bs == 0) continue;
          ++stats.edges_filtered;
          const int x0 = mbx * kMbSize + x4 * 4;
          for (int line = 0; line < 4; ++line) {
            const int xx = x0 + line;
            stats.pixels_modified += static_cast<std::uint64_t>(filter_line(
                bs, qp,
                [&](int off) { return static_cast<int>(Y.at(xx, y + off)); },
                [&](int off, int v) { Y.at(xx, y + off) = clamp_pixel(v); }));
          }
        }
      }
    }
  }
  for (Plane* C : {&frame.cb, &frame.cr}) {
    for (int mby = 0; mby < mb_rows; ++mby) {
      for (int mbx = 0; mbx < mb_cols; ++mbx) {
        const MbInfo& cur = mb_at(mbx, mby);
        if (mbx > 0) {
          const MbInfo& left = mb_at(mbx - 1, mby);
          const int bs = boundary_strength(left, 3, cur, 0, true);
          ++stats.edges_examined;
          if (bs > 0) {
            ++stats.edges_filtered;
            const int x = mbx * 8;
            for (int yy = mby * 8; yy < (mby + 1) * 8; ++yy) {
              stats.pixels_modified += static_cast<std::uint64_t>(filter_line(
                  std::min(bs, 3), qp,
                  [&](int off) {
                    return static_cast<int>(C->at_clamped(x + off, yy));
                  },
                  [&](int off, int v) {
                    if (x + off >= 0 && x + off < C->width)
                      C->at(x + off, yy) = clamp_pixel(v);
                  }));
            }
          }
        }
        if (mby > 0) {
          const MbInfo& top = mb_at(mbx, mby - 1);
          const int bs = boundary_strength(top, 12, cur, 0, true);
          ++stats.edges_examined;
          if (bs > 0) {
            ++stats.edges_filtered;
            const int y = mby * 8;
            for (int xx = mbx * 8; xx < (mbx + 1) * 8; ++xx) {
              stats.pixels_modified += static_cast<std::uint64_t>(filter_line(
                  std::min(bs, 3), qp,
                  [&](int off) {
                    return static_cast<int>(C->at_clamped(xx, y + off));
                  },
                  [&](int off, int v) {
                    if (y + off >= 0 && y + off < C->height)
                      C->at(xx, y + off) = clamp_pixel(v);
                  }));
            }
          }
        }
      }
    }
  }
  return stats;
}

}  // namespace affectsys::h264
