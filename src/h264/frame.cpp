#include "h264/frame.hpp"

#include <algorithm>
#include <stdexcept>

namespace affectsys::h264 {

std::uint8_t Plane::at_clamped(int x, int y) const {
  x = std::clamp(x, 0, width - 1);
  y = std::clamp(y, 0, height - 1);
  return at(x, y);
}

YuvFrame::YuvFrame(int width, int height)
    : y(width, height, 16), cb(width / 2, height / 2, 128),
      cr(width / 2, height / 2, 128) {
  if (width <= 0 || height <= 0 || width % kMbSize || height % kMbSize) {
    throw std::invalid_argument(
        "YuvFrame: dimensions must be positive multiples of 16");
  }
}

std::uint8_t clamp_pixel(int v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0, 255));
}

}  // namespace affectsys::h264
