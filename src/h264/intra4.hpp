// Directional intra prediction for 4x4 luma blocks.
//
// The spec defines nine Intra_4x4 modes; this implements the five that
// dominate mode-decision statistics — Vertical, Horizontal, DC,
// Diagonal-Down-Left and Diagonal-Down-Right (8.3.1.2.1-8.3.1.2.5) — with
// neighbour samples fetched clamped, so every mode is always "available"
// and the encoder/decoder stay trivially consistent.  The 16x16/chroma
// path keeps the simpler 3-mode predictor in intra.hpp.
#pragma once

#include <cstdint>

#include "h264/frame.hpp"

namespace affectsys::h264 {

enum class Intra4Mode : std::uint8_t {
  kVertical = 0,
  kHorizontal = 1,
  kDc = 2,
  kDiagonalDownLeft = 3,
  kDiagonalDownRight = 4,
};
inline constexpr int kNumIntra4Modes = 5;

/// Predicts the 4x4 block at (x0, y0) from reconstructed neighbours.
void intra4_predict(const Plane& recon, int x0, int y0, Intra4Mode mode,
                    std::uint8_t pred[16]);

/// SAD-minimal mode for the block.
Intra4Mode choose_intra4_mode(const Plane& src, const Plane& recon, int x0,
                              int y0);

}  // namespace affectsys::h264
