#include "h264/nal.hpp"

#include "h264/bitstream.hpp"

namespace affectsys::h264 {

std::vector<std::uint8_t> pack_annexb(std::span<const NalUnit> units) {
  std::vector<std::uint8_t> out;
  std::size_t total = 0;
  for (const NalUnit& nal : units) total += nal.payload.size() + 5;
  out.reserve(total);
  bool first = true;
  for (const NalUnit& nal : units) {
    const bool long_code =
        first || nal.type == NalType::kSps || nal.type == NalType::kPps;
    if (long_code) out.push_back(0x00);
    out.push_back(0x00);
    out.push_back(0x00);
    out.push_back(0x01);
    // nal header: forbidden_zero(1) | ref_idc(2) | type(5)
    out.push_back(static_cast<std::uint8_t>((nal.ref_idc & 0x3) << 5 |
                                            (static_cast<unsigned>(nal.type) & 0x1F)));
    out.insert(out.end(), nal.payload.begin(), nal.payload.end());
    first = false;
  }
  return out;
}

std::vector<NalUnit> unpack_annexb(std::span<const std::uint8_t> stream) {
  std::vector<NalUnit> units;
  // A start code needs 3 bytes and a unit needs at least a header byte
  // after it, so anything shorter (including a truncated, partial start
  // code like "00 00") carries no units at all.
  if (stream.size() < 4) return units;
  // Find all start-code positions.  A 4-byte code (00 00 00 01) matches
  // here at its last three bytes; the leading zero is trimmed below.
  std::vector<std::size_t> starts;  // index of first byte AFTER a start code
  for (std::size_t i = 0; i + 2 < stream.size();) {
    if (stream[i] == 0 && stream[i + 1] == 0 && stream[i + 2] == 1) {
      starts.push_back(i + 3);
      i += 3;
    } else {
      ++i;
    }
  }
  units.reserve(starts.size());
  for (std::size_t s = 0; s < starts.size(); ++s) {
    std::size_t begin = starts[s];
    std::size_t end = s + 1 < starts.size() ? starts[s + 1] : stream.size();
    // Trim the next start code from end, plus — only where pack_annexb
    // writes the 4-byte form (before SPS/PPS units; the stream head's
    // long code sits before any unit region) — that code's one leading
    // zero.  Trailing zeros are otherwise payload: stripping them all
    // used to eat the final 0x00 of a guarded EBSP such as 00 00 03 00
    // (RBSP 00 00 00), the pack/unpack asymmetry the transport
    // round-trip tests caught.  add_emulation_prevention guarantees an
    // EBSP never ends in 00 00, so the single conditional zero is
    // exactly the framing ambiguity that remains; a payload-final 0x00
    // before a 4-byte code stays with the payload, because the code's
    // own leading zero is the one consumed.  Adjacent start codes can
    // make end meet begin — that region holds no unit, not even a
    // header, and is skipped below rather than indexed.
    if (s + 1 < starts.size()) {
      end -= 3;  // the 0x000001 itself
      const std::size_t next = starts[s + 1];
      const bool next_long =
          next < stream.size() &&
          ((stream[next] & 0x1F) ==
               static_cast<unsigned>(NalType::kSps) ||
           (stream[next] & 0x1F) == static_cast<unsigned>(NalType::kPps));
      if (next_long && end > begin && stream[end - 1] == 0x00) --end;
    }
    if (begin >= end) continue;  // truncated/empty region: no header byte
    NalUnit nal;
    const std::uint8_t header = stream[begin];
    nal.ref_idc = (header >> 5) & 0x3;
    nal.type = static_cast<NalType>(header & 0x1F);
    // begin + 1 == end is a header-only unit: preserved with an empty
    // payload (the decoder rejects it cleanly if it needed a body).
    nal.payload.assign(stream.begin() + static_cast<long>(begin) + 1,
                       stream.begin() + static_cast<long>(end));
    units.push_back(std::move(nal));
  }
  return units;
}

bool is_slice(const NalUnit& nal) {
  return nal.type == NalType::kSliceIdr || nal.type == NalType::kSliceNonIdr;
}

std::optional<SliceType> peek_slice_type(const NalUnit& nal) {
  if (!is_slice(nal)) return std::nullopt;
  try {
    const std::vector<std::uint8_t> rbsp =
        remove_emulation_prevention(nal.payload);
    BitReader br(rbsp);
    br.get_ue();  // first_mb_in_slice
    const std::uint32_t st = br.get_ue() % 5;  // slice_type (5..9 alias 0..4)
    if (st > 2) return std::nullopt;
    return static_cast<SliceType>(st);
  } catch (const BitstreamError&) {
    return std::nullopt;
  }
}

}  // namespace affectsys::h264
