// Adaptive binary arithmetic coding (CABAC-style) for residual blocks.
//
// H.264's main profile replaces CAVLC with CABAC for ~10-15% bitrate
// savings.  This module implements the three CABAC ingredients — a binary
// range coder, adaptive context models, and a significance-map
// binarization for 4x4 residual blocks — as a standalone entropy library.
// It is benched against the CAVLC-style coder (bench/ablation_entropy);
// the streaming slice syntax keeps the CAVLC-style coder, as in the
// paper's baseline-profile decoder.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "h264/transform.hpp"

namespace affectsys::h264 {

/// Adaptive probability estimate of one binary decision.
class ContextModel {
 public:
  /// Probability of the bit being 1, in [0, 1].
  double p1() const { return static_cast<double>(prob_) / 65536.0; }
  std::uint32_t prob() const { return prob_; }

  /// Exponential update toward the observed bit (rate 1/32).
  void update(bool bit) {
    if (bit) {
      prob_ += (65536 - prob_) >> 5;
    } else {
      prob_ -= prob_ >> 5;
    }
    // Keep the estimate away from certainty so the coder stays finite.
    prob_ = std::min<std::uint32_t>(std::max<std::uint32_t>(prob_, 256),
                                    65280);
  }

 private:
  std::uint32_t prob_ = 32768;  ///< P(bit=1) in 1/65536 units
};

/// Binary range encoder (carry-less, byte-oriented renormalization).
class ArithEncoder {
 public:
  void encode_bit(ContextModel& ctx, bool bit);
  /// Equiprobable bit (sign bits, suffixes) — no context adaptation.
  void encode_bypass(bool bit);
  /// Fixed-width bypass value, MSB first.
  void encode_bypass_bits(std::uint32_t value, unsigned count);
  /// Flushes the final range; call exactly once.
  std::vector<std::uint8_t> finish();

  std::size_t bytes_so_far() const { return out_.size(); }

 private:
  // LZMA-style carry handling: 64-bit low, cache byte + pending-0xFF run.
  std::uint64_t low64_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;  ///< first flush emits one dummy byte
  std::vector<std::uint8_t> out_;
};

/// Matching decoder.
class ArithDecoder {
 public:
  explicit ArithDecoder(std::span<const std::uint8_t> data);

  bool decode_bit(ContextModel& ctx);
  bool decode_bypass();
  std::uint32_t decode_bypass_bits(unsigned count);

 private:
  void renormalize();
  std::uint8_t next_byte();

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint32_t code_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
};

/// Context set for residual blocks: significance per scan-position class,
/// last-coefficient flags, and level-magnitude bins.
struct ResidualContexts {
  ContextModel sig[6];
  ContextModel last[6];
  ContextModel level_gt1[4];
  ContextModel level_unary[4];
};

/// Encodes one quantized 4x4 block with the significance-map scheme.
void encode_residual_block_cabac(ArithEncoder& enc, ResidualContexts& ctx,
                                 const Block4x4& levels);

/// Decodes one block.
Block4x4 decode_residual_block_cabac(ArithDecoder& dec,
                                     ResidualContexts& ctx);

}  // namespace affectsys::h264
