#include "h264/sei.hpp"

#include <cstring>

#include "h264/bitstream.hpp"

namespace affectsys::h264 {

const std::uint8_t kAffectSeiUuid[16] = {0xAF, 0xFE, 0xC7, 0x5E, 0xED, 0x0A,
                                         0x4B, 0x21, 0x8D, 0x11, 0x2E, 0x5C,
                                         0x01, 0x23, 0x45, 0x67};

namespace {

/// ff-coded value per Annex D: N bytes of 0xFF then a terminal byte.
void write_ff_coded(std::vector<std::uint8_t>& out, std::uint32_t value) {
  while (value >= 255) {
    out.push_back(0xFF);
    value -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::optional<std::uint32_t> read_ff_coded(
    std::span<const std::uint8_t> data, std::size_t& pos) {
  std::uint32_t value = 0;
  while (pos < data.size() && data[pos] == 0xFF) {
    value += 255;
    ++pos;
  }
  if (pos >= data.size()) return std::nullopt;
  value += data[pos++];
  return value;
}

}  // namespace

NalUnit make_affect_sei(const AffectSei& payload) {
  // Payload body: UUID + 7 bytes of annotation.
  std::vector<std::uint8_t> body(std::begin(kAffectSeiUuid),
                                 std::end(kAffectSeiUuid));
  body.push_back(static_cast<std::uint8_t>(payload.time_ms >> 24));
  body.push_back(static_cast<std::uint8_t>(payload.time_ms >> 16));
  body.push_back(static_cast<std::uint8_t>(payload.time_ms >> 8));
  body.push_back(static_cast<std::uint8_t>(payload.time_ms));
  body.push_back(payload.emotion);
  body.push_back(payload.decoder_mode);
  body.push_back(payload.confidence_pct);

  std::vector<std::uint8_t> rbsp;
  write_ff_coded(rbsp, kSeiUserDataUnregistered);            // payload type
  write_ff_coded(rbsp, static_cast<std::uint32_t>(body.size()));  // size
  rbsp.insert(rbsp.end(), body.begin(), body.end());
  rbsp.push_back(0x80);  // rbsp_trailing_bits

  NalUnit nal;
  nal.type = NalType::kSei;
  nal.ref_idc = 0;
  nal.payload = add_emulation_prevention(rbsp);
  return nal;
}

std::optional<AffectSei> parse_affect_sei(const NalUnit& nal) {
  if (nal.type != NalType::kSei) return std::nullopt;
  const std::vector<std::uint8_t> rbsp =
      remove_emulation_prevention(nal.payload);
  std::size_t pos = 0;
  const auto type = read_ff_coded(rbsp, pos);
  const auto size = read_ff_coded(rbsp, pos);
  if (!type || !size || *type != kSeiUserDataUnregistered) {
    return std::nullopt;
  }
  if (*size < 16 + 7 || pos + *size > rbsp.size()) return std::nullopt;
  if (std::memcmp(rbsp.data() + pos, kAffectSeiUuid, 16) != 0) {
    return std::nullopt;
  }
  pos += 16;
  AffectSei out;
  out.time_ms = static_cast<std::uint32_t>(rbsp[pos]) << 24 |
                static_cast<std::uint32_t>(rbsp[pos + 1]) << 16 |
                static_cast<std::uint32_t>(rbsp[pos + 2]) << 8 |
                static_cast<std::uint32_t>(rbsp[pos + 3]);
  out.emotion = rbsp[pos + 4];
  out.decoder_mode = rbsp[pos + 5];
  out.confidence_pct = rbsp[pos + 6];
  return out;
}

}  // namespace affectsys::h264
