// Baseline-style H.264 encoder producing Annex-B bitstreams the adaptive
// decoder consumes.
//
// Simplified profile (documented in DESIGN.md): intra 16x16 (DC/V/H) and
// directional intra 4x4 partitions, 16x16 inter partitions with half-pel
// motion compensation (6-tap interpolation), one reference per direction,
// 4x4 integer transform, CAVLC-style entropy coding, optional leaky-
// bucket rate control, IPPP or IBBP GOP structures.  The emitted stream
// uses genuine NAL syntax: Annex-B start codes, nal_ref_idc/type header
// byte, emulation prevention, SPS/PPS, Exp-Golomb slice headers — so the
// Input Selector's NAL-level editing is exercised exactly as in the
// paper.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "h264/frame.hpp"
#include "h264/nal.hpp"
#include "h264/ratecontrol.hpp"

namespace affectsys::h264 {

struct EncoderConfig {
  int width = 64;
  int height = 64;
  int qp = 28;              ///< 0..51
  int gop_size = 12;        ///< I-frame period (in display order)
  int b_frames = 2;         ///< consecutive B pictures between references
  int search_range = 4;     ///< full-pel ME range
  bool deblock_in_loop = true;  ///< apply DF to reference reconstructions
  /// Refine motion vectors to half-sample accuracy (6-tap interpolation).
  /// Vectors are coded in half-pel units either way.
  bool halfpel_mc = true;
  /// Allow intra-4x4 partitions where they beat 16x16 prediction.
  bool intra4x4 = true;
};

/// One encoded access unit.
struct EncodedPicture {
  NalUnit nal;
  SliceType type = SliceType::kI;
  int poc = 0;  ///< display (output) order index
};

class Encoder {
 public:
  explicit Encoder(const EncoderConfig& cfg);

  /// Encodes a whole sequence (display order in, decode order out).
  std::vector<EncodedPicture> encode(const std::vector<YuvFrame>& frames);

  /// Encodes with per-picture QP chosen by the rate controller; the
  /// controller is updated with every coded picture size.  Per-picture QP
  /// deltas are carried in the slice headers, so the output is decodable
  /// by the unmodified Decoder.
  std::vector<EncodedPicture> encode_rate_controlled(
      const std::vector<YuvFrame>& frames, RateController& rc);

  /// Convenience: full Annex-B stream with SPS/PPS prepended.
  std::vector<std::uint8_t> encode_annexb(const std::vector<YuvFrame>& frames);

  /// SPS/PPS parameter-set NAL units for the current config.
  std::vector<NalUnit> parameter_sets() const;

  const EncoderConfig& config() const { return cfg_; }

 private:
  EncodedPicture encode_picture(const YuvFrame& src, SliceType type, int poc,
                                const YuvFrame* fwd_ref,
                                const YuvFrame* bwd_ref,
                                YuvFrame* recon_out);

  EncoderConfig cfg_;
  int frame_num_ = 0;
  /// When set, supplies the QP for each picture (rate control).
  std::function<int(SliceType)> qp_hook_;
  /// When set, observes every coded picture (rate-control feedback).
  std::function<void(const EncodedPicture&)> coded_hook_;
};

}  // namespace affectsys::h264
