#include "h264/testvideo.hpp"

#include <cmath>
#include <numbers>
#include <random>

namespace affectsys::h264 {
namespace {

struct Blob {
  double x, y, vx, vy, radius, brightness;
};

void render_frame(YuvFrame& f, const std::vector<Blob>& blobs, double detail,
                  double noise, std::mt19937& rng, double phase) {
  std::normal_distribution<double> n(0.0, noise);
  for (int y = 0; y < f.height(); ++y) {
    for (int x = 0; x < f.width(); ++x) {
      // Textured background: two sinusoid gratings.
      double v = 110.0 +
                 detail * 40.0 *
                     (std::sin(0.19 * x + phase * 0.02) *
                      std::cos(0.23 * y - phase * 0.01));
      for (const Blob& b : blobs) {
        const double dx = x - b.x;
        const double dy = y - b.y;
        const double d2 = dx * dx + dy * dy;
        v += b.brightness * std::exp(-d2 / (2.0 * b.radius * b.radius));
      }
      v += n(rng);
      f.y.at(x, y) = clamp_pixel(static_cast<int>(std::lround(v)));
    }
  }
  for (int y = 0; y < f.cb.height; ++y) {
    for (int x = 0; x < f.cb.width; ++x) {
      double u = 128.0 + detail * 12.0 * std::sin(0.11 * x + 0.07 * y);
      double w = 128.0 - detail * 12.0 * std::cos(0.13 * x - 0.05 * y);
      for (const Blob& b : blobs) {
        const double dx = 2.0 * x - b.x;
        const double dy = 2.0 * y - b.y;
        const double d2 = dx * dx + dy * dy;
        u += 10.0 * std::exp(-d2 / (2.0 * b.radius * b.radius));
      }
      f.cb.at(x, y) = clamp_pixel(static_cast<int>(std::lround(u)));
      f.cr.at(x, y) = clamp_pixel(static_cast<int>(std::lround(w)));
    }
  }
}

std::vector<Blob> make_blobs(const VideoConfig& cfg, std::mt19937& rng) {
  std::uniform_real_distribution<double> ux(0.0, cfg.width);
  std::uniform_real_distribution<double> uy(0.0, cfg.height);
  std::uniform_real_distribution<double> ang(0.0, 2.0 * std::numbers::pi);
  std::vector<Blob> blobs;
  const int count = 3;
  for (int i = 0; i < count; ++i) {
    const double a = ang(rng);
    blobs.push_back({ux(rng), uy(rng), cfg.motion * std::cos(a),
                     cfg.motion * std::sin(a), 3.0 + i, 60.0});
  }
  return blobs;
}

}  // namespace

std::vector<YuvFrame> generate_test_video(const VideoConfig& cfg) {
  std::mt19937 rng(cfg.seed);
  std::vector<Blob> blobs = make_blobs(cfg, rng);
  std::vector<YuvFrame> out;
  out.reserve(static_cast<std::size_t>(cfg.frames));
  for (int i = 0; i < cfg.frames; ++i) {
    YuvFrame f(cfg.width, cfg.height);
    render_frame(f, blobs, cfg.detail, cfg.noise, rng, static_cast<double>(i));
    out.push_back(std::move(f));
    for (Blob& b : blobs) {
      b.x += b.vx;
      b.y += b.vy;
      // Bounce off frame edges.
      if (b.x < 0 || b.x >= cfg.width) b.vx = -b.vx;
      if (b.y < 0 || b.y >= cfg.height) b.vy = -b.vy;
    }
  }
  return out;
}

std::vector<YuvFrame> generate_mixed_video(const VideoConfig& cfg,
                                           double quiet_fraction,
                                           double quiet_motion,
                                           double quiet_noise) {
  std::mt19937 rng(cfg.seed);
  std::vector<Blob> blobs = make_blobs(cfg, rng);
  std::vector<YuvFrame> out;
  out.reserve(static_cast<std::size_t>(cfg.frames));
  const int busy_frames =
      static_cast<int>(static_cast<double>(cfg.frames) * (1.0 - quiet_fraction));
  for (int i = 0; i < cfg.frames; ++i) {
    const bool quiet = i >= busy_frames;
    const double noise = quiet ? quiet_noise : cfg.noise;
    const double speed_scale =
        quiet ? quiet_motion / std::max(cfg.motion, 1e-9) : 1.0;
    YuvFrame f(cfg.width, cfg.height);
    render_frame(f, blobs, cfg.detail, noise, rng,
                 quiet ? static_cast<double>(busy_frames)
                       : static_cast<double>(i));
    out.push_back(std::move(f));
    for (Blob& b : blobs) {
      b.x += b.vx * speed_scale;
      b.y += b.vy * speed_scale;
      if (b.x < 0 || b.x >= cfg.width) b.vx = -b.vx;
      if (b.y < 0 || b.y >= cfg.height) b.vy = -b.vy;
    }
  }
  return out;
}

std::vector<YuvFrame> generate_static_video(const VideoConfig& cfg) {
  VideoConfig c = cfg;
  c.motion = 0.0;
  std::mt19937 rng(c.seed);
  std::vector<Blob> blobs = make_blobs(c, rng);
  std::vector<YuvFrame> out;
  out.reserve(static_cast<std::size_t>(c.frames));
  for (int i = 0; i < c.frames; ++i) {
    YuvFrame f(c.width, c.height);
    render_frame(f, blobs, c.detail, c.noise, rng, 0.0);
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace affectsys::h264
