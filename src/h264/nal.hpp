// Network Abstraction Layer framing: NAL unit types, Annex-B start-code
// packing/unpacking and frame-type identification.
//
// This is the layer the affect-driven Input Selector (Section 4) operates
// on: it inspects each NAL unit's type and byte size and deletes small
// P/B-frame units.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace affectsys::h264 {

/// nal_unit_type values we emit (subset of Table 7-1).
enum class NalType : std::uint8_t {
  kUnspecified = 0,
  kSliceNonIdr = 1,  ///< coded slice of a non-IDR picture (P or B)
  kSliceIdr = 5,     ///< coded slice of an IDR picture (I)
  kSei = 6,
  kSps = 7,
  kPps = 8,
};

/// Picture/slice type carried in the slice header (Table 7-6, values 0-2).
enum class SliceType : std::uint8_t { kP = 0, kB = 1, kI = 2 };

/// One NAL unit: header fields + EBSP payload (emulation bytes included).
struct NalUnit {
  NalType type = NalType::kUnspecified;
  std::uint8_t ref_idc = 0;  ///< nal_ref_idc: 0 = disposable
  std::vector<std::uint8_t> payload;  ///< EBSP (after the 1-byte header)

  /// Size in bytes as it appears in the Annex-B stream, excluding the
  /// start code (header byte + payload).  This is the size the Input
  /// Selector compares against S_th.
  std::size_t byte_size() const { return 1 + payload.size(); }
};

/// Serializes NAL units into an Annex-B byte stream.  The first NAL after
/// stream start and each SPS/PPS get a 4-byte start code (0x00000001);
/// other units get the 3-byte code (0x000001), matching common encoders.
std::vector<std::uint8_t> pack_annexb(std::span<const NalUnit> units);

/// Splits an Annex-B stream back into NAL units.  Tolerates both start
/// code lengths and trailing zero padding.  Inverse of pack_annexb for
/// every payload produced by add_emulation_prevention (which never ends
/// in 00 00); payloads ending in a bare 0x00 — only reachable through
/// deliberate fault truncation — lose their trailing zeros to the
/// padding trim.
std::vector<NalUnit> unpack_annexb(std::span<const std::uint8_t> stream);

/// Reads the slice_type from a coded slice NAL unit's header without
/// decoding the slice body.  Returns nullopt for non-slice units.
std::optional<SliceType> peek_slice_type(const NalUnit& nal);

/// True when the unit is a coded slice (IDR or non-IDR).
bool is_slice(const NalUnit& nal);

}  // namespace affectsys::h264
