// Inter prediction: full-pel motion estimation and compensation for P and
// B macroblocks.
#pragma once

#include <cstdint>

#include "h264/frame.hpp"

namespace affectsys::h264 {

struct MotionVector {
  int dx = 0;
  int dy = 0;

  bool operator==(const MotionVector&) const = default;
};

/// Copies the motion-compensated `size`x`size` block at (x0+mv, y0+mv)
/// from `ref` into `pred` with edge clamping.
void motion_compensate(const Plane& ref, int x0, int y0, int size,
                       MotionVector mv, std::uint8_t* pred);

/// Averages two predictions (B-frame bi-prediction), rounding to nearest.
void average_predictions(const std::uint8_t* a, const std::uint8_t* b,
                         std::uint8_t* out, int count);

/// Full-search motion estimation over [-range, +range]^2 minimizing SAD.
/// Returns the best vector and writes the SAD through `out_sad` if given.
MotionVector motion_search(const Plane& src, const Plane& ref, int x0,
                           int y0, int size, int range,
                           int* out_sad = nullptr);

// ---- half-pel path ---------------------------------------------------
//
// Vectors below are in HALF-PEL units (mv.dx == 3 means +1.5 luma
// samples).  Half-sample positions are interpolated with the spec's
// 6-tap filter (1, -5, 20, 20, -5, 1)/32; the diagonal position applies
// the filter horizontally then vertically, as in 8.4.2.2.1.

/// Interpolated luma sample at half-pel resolution.
/// (hx, hy) are plane coordinates in half-pel units.
std::uint8_t sample_halfpel(const Plane& ref, int hx, int hy);

/// Motion compensation with a half-pel vector.
void motion_compensate_halfpel(const Plane& ref, int x0, int y0, int size,
                               MotionVector mv_half, std::uint8_t* pred);

/// Full-pel full search followed by half-pel refinement over the 8
/// surrounding half-sample positions.  Returns a HALF-PEL vector.
MotionVector motion_search_halfpel(const Plane& src, const Plane& ref,
                                   int x0, int y0, int size, int range,
                                   int* out_sad = nullptr);

}  // namespace affectsys::h264
