// Intra prediction (16x16 luma, 8x8 chroma): DC / Vertical / Horizontal
// modes predicted from reconstructed neighbour pixels.
#pragma once

#include <cstdint>

#include "h264/frame.hpp"

namespace affectsys::h264 {

enum class IntraMode : std::uint8_t { kDc = 0, kVertical = 1, kHorizontal = 2 };
inline constexpr int kNumIntraModes = 3;

/// Writes the intra prediction for the `size`x`size` block at (x0, y0)
/// into `pred` (row-major, size*size).  Neighbours come from `recon`, the
/// partially reconstructed plane; unavailable neighbours fall back per the
/// spec (DC=128, V/H replicate what exists or 128).
void intra_predict(const Plane& recon, int x0, int y0, int size,
                   IntraMode mode, std::uint8_t* pred);

/// Sum of absolute differences between the source block and a prediction.
int sad_block(const Plane& src, int x0, int y0, int size,
              const std::uint8_t* pred);

/// Picks the SAD-minimal intra mode for a block.
IntraMode choose_intra_mode(const Plane& src, const Plane& recon, int x0,
                            int y0, int size);

}  // namespace affectsys::h264
