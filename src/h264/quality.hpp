// Objective video-quality metrics.
#pragma once

#include <vector>

#include "h264/frame.hpp"

namespace affectsys::h264 {

/// Mean squared error over a plane pair.
double plane_mse(const Plane& a, const Plane& b);

/// Luma PSNR in dB (capped at 100 dB for identical planes).
double psnr_luma(const YuvFrame& a, const YuvFrame& b);

/// 6:1:1-weighted YUV PSNR.
double psnr_yuv(const YuvFrame& a, const YuvFrame& b);

/// Global SSIM on luma (single window over 8x8 tiles, averaged).
double ssim_luma(const YuvFrame& a, const YuvFrame& b);

/// Mean luma PSNR across a sequence (frames must pair up by index).
double sequence_psnr(const std::vector<YuvFrame>& ref,
                     const std::vector<YuvFrame>& test);

}  // namespace affectsys::h264
