// In-loop deblocking filter with boundary-strength derivation (the "DF"
// block of Fig 5 — the module the affect-driven controller can deactivate
// for a ~31% decoder power saving).
//
// Boundary strength follows 8.7.2: 4 at intra macroblock edges, 3 at
// internal intra edges, 2 when either side has coded residual, 1 when
// motion differs, 0 otherwise (skip filtering).  Edge filtering uses the
// spec's strong filter at bs==4 and the clipped normal filter otherwise;
// alpha/beta thresholds are the spec tables indexed by QP.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "h264/frame.hpp"
#include "h264/inter.hpp"

namespace affectsys::h264 {

/// Per-macroblock reconstruction metadata the filter needs.
struct MbInfo {
  bool intra = false;
  bool skipped = false;
  MotionVector mv{};  ///< in half-pel units
  /// One flag per 4x4 luma block (raster within the MB): coded residual.
  std::array<bool, 16> nonzero{};
};

/// Boundary strength between two 4x4 luma blocks sharing an edge.
/// `mb_edge` marks macroblock-boundary edges.
int boundary_strength(const MbInfo& p, int p_blk, const MbInfo& q, int q_blk,
                      bool mb_edge);

struct DeblockStats {
  std::uint64_t edges_examined = 0;
  std::uint64_t edges_filtered = 0;
  std::uint64_t pixels_modified = 0;

  DeblockStats& operator+=(const DeblockStats& o) {
    edges_examined += o.edges_examined;
    edges_filtered += o.edges_filtered;
    pixels_modified += o.pixels_modified;
    return *this;
  }
};

/// Filters a reconstructed frame in place.  `mb_info` is raster-ordered
/// (mb_rows x mb_cols).  Returns activity statistics for the power model.
DeblockStats deblock_frame(YuvFrame& frame, const std::vector<MbInfo>& mb_info,
                           int qp);

/// Pre-optimization accessor-based filter (serial, at()/at_clamped pixel
/// access, per-line table lookups).  Byte-identical to deblock_frame;
/// kept callable so the kernel suite proves it and bench_kernels
/// measures the strided-pointer core against the pre-PR behaviour.
DeblockStats deblock_frame_reference(YuvFrame& frame,
                                     const std::vector<MbInfo>& mb_info,
                                     int qp);

/// Spec alpha/beta thresholds (Table 8-16), exposed for tests.
int deblock_alpha(int qp);
int deblock_beta(int qp);

}  // namespace affectsys::h264
