#include "h264/arith.hpp"

#include <stdexcept>

#include "h264/bitstream.hpp"  // BitstreamError
#include "h264/entropy.hpp"    // zig-zag tables

namespace affectsys::h264 {
namespace {

constexpr std::uint32_t kTopValue = 1u << 24;

}  // namespace

namespace {

// The renormalization follows the classic LZMA-style range coder: a cache
// byte plus a run of pending 0xFF bytes absorb carries out of `low`.
void shift_low(std::uint64_t& low, std::vector<std::uint8_t>& out,
               std::uint8_t& cache, std::uint64_t& cache_size) {
  if (static_cast<std::uint32_t>(low) < 0xFF000000u || (low >> 32) != 0) {
    std::uint8_t temp = cache;
    const auto carry = static_cast<std::uint8_t>(low >> 32);
    do {
      out.push_back(static_cast<std::uint8_t>(temp + carry));
      temp = 0xFF;
    } while (--cache_size);
    cache = static_cast<std::uint8_t>(low >> 24);
  }
  ++cache_size;
  low = (low << 8) & 0xFFFFFFFFull;
}

}  // namespace

void ArithEncoder::encode_bit(ContextModel& ctx, bool bit) {
  const std::uint32_t p0 = 65536u - ctx.prob();
  const std::uint32_t bound =
      static_cast<std::uint32_t>((static_cast<std::uint64_t>(range_) >> 16) * p0);
  std::uint64_t low64 = low64_;
  if (!bit) {
    range_ = bound;
  } else {
    low64 += bound;
    range_ -= bound;
  }
  ctx.update(bit);
  while (range_ < kTopValue) {
    range_ <<= 8;
    shift_low(low64, out_, cache_, cache_size_);
  }
  low64_ = low64;
}

void ArithEncoder::encode_bypass(bool bit) {
  const std::uint32_t bound = range_ >> 1;
  std::uint64_t low64 = low64_;
  if (!bit) {
    range_ = bound;
  } else {
    low64 += bound;
    range_ -= bound;
  }
  while (range_ < kTopValue) {
    range_ <<= 8;
    shift_low(low64, out_, cache_, cache_size_);
  }
  low64_ = low64;
}

void ArithEncoder::encode_bypass_bits(std::uint32_t value, unsigned count) {
  for (unsigned i = count; i-- > 0;) {
    encode_bypass((value >> i) & 1u);
  }
}

std::vector<std::uint8_t> ArithEncoder::finish() {
  std::uint64_t low64 = low64_;
  for (int i = 0; i < 5; ++i) {
    shift_low(low64, out_, cache_, cache_size_);
  }
  low64_ = low64;
  return std::move(out_);
}

ArithDecoder::ArithDecoder(std::span<const std::uint8_t> data)
    : data_(data) {
  // The encoder's first flushed byte is a dummy; prime code_ with the
  // next four.
  next_byte();
  for (int i = 0; i < 4; ++i) {
    code_ = (code_ << 8) | next_byte();
  }
}

std::uint8_t ArithDecoder::next_byte() {
  if (pos_ >= data_.size()) {
    throw BitstreamError("ArithDecoder: out of data");
  }
  return data_[pos_++];
}

void ArithDecoder::renormalize() {
  while (range_ < kTopValue) {
    code_ = (code_ << 8) | next_byte();
    range_ <<= 8;
  }
}

bool ArithDecoder::decode_bit(ContextModel& ctx) {
  const std::uint32_t p0 = 65536u - ctx.prob();
  const std::uint32_t bound =
      static_cast<std::uint32_t>((static_cast<std::uint64_t>(range_) >> 16) * p0);
  bool bit;
  if (code_ < bound) {
    bit = false;
    range_ = bound;
  } else {
    bit = true;
    code_ -= bound;
    range_ -= bound;
  }
  ctx.update(bit);
  renormalize();
  return bit;
}

bool ArithDecoder::decode_bypass() {
  const std::uint32_t bound = range_ >> 1;
  bool bit;
  if (code_ < bound) {
    bit = false;
    range_ = bound;
  } else {
    bit = true;
    code_ -= bound;
    range_ -= bound;
  }
  renormalize();
  return bit;
}

std::uint32_t ArithDecoder::decode_bypass_bits(unsigned count) {
  std::uint32_t v = 0;
  for (unsigned i = 0; i < count; ++i) {
    v = (v << 1) | static_cast<std::uint32_t>(decode_bypass());
  }
  return v;
}

// ------------------------------------------------------------- residuals

namespace {

int sig_ctx(int scan_pos) { return scan_pos < 5 ? scan_pos : 5; }
int level_ctx(int coeffs_coded) { return coeffs_coded < 3 ? coeffs_coded : 3; }

void encode_level(ArithEncoder& enc, ResidualContexts& ctx, int coeff_idx,
                  int level) {
  const int mag = level < 0 ? -level : level;
  enc.encode_bit(ctx.level_gt1[level_ctx(coeff_idx)], mag > 1);
  if (mag > 1) {
    // Unary prefix (capped) + exp-golomb-style bypass suffix for the rest.
    int rem = mag - 2;
    int unary = 0;
    while (unary < 6 && rem > 0) {
      enc.encode_bit(ctx.level_unary[level_ctx(coeff_idx)], true);
      --rem;
      ++unary;
    }
    if (unary < 6) {
      enc.encode_bit(ctx.level_unary[level_ctx(coeff_idx)], false);
    } else {
      // Remainder: bypass Elias-gamma style (length in unary, then bits).
      unsigned len = 0;
      std::uint32_t v = static_cast<std::uint32_t>(rem) + 1;
      while ((v >> (len + 1)) != 0) ++len;
      for (unsigned i = 0; i < len; ++i) enc.encode_bypass(true);
      enc.encode_bypass(false);
      enc.encode_bypass_bits(v & ((1u << len) - 1), len);
    }
  }
  enc.encode_bypass(level < 0);
}

int decode_level(ArithDecoder& dec, ResidualContexts& ctx, int coeff_idx) {
  int mag = 1;
  if (dec.decode_bit(ctx.level_gt1[level_ctx(coeff_idx)])) {
    mag = 2;
    int unary = 0;
    while (unary < 6 &&
           dec.decode_bit(ctx.level_unary[level_ctx(coeff_idx)])) {
      ++mag;
      ++unary;
    }
    if (unary == 6) {
      unsigned len = 0;
      while (dec.decode_bypass()) {
        if (++len > 31) throw BitstreamError("cabac: runaway level");
      }
      const std::uint32_t suffix = dec.decode_bypass_bits(len);
      const std::uint32_t v = (1u << len) | suffix;
      mag += static_cast<int>(v - 1);
    }
  }
  return dec.decode_bypass() ? -mag : mag;
}

}  // namespace

void encode_residual_block_cabac(ArithEncoder& enc, ResidualContexts& ctx,
                                 const Block4x4& levels) {
  int scan[16];
  int last = -1;
  for (int i = 0; i < 16; ++i) {
    scan[i] = levels[kZigzagRow[i]][kZigzagCol[i]];
    if (scan[i] != 0) last = i;
  }
  // coded_block_flag via sig[0]-style context.
  enc.encode_bit(ctx.sig[0], last >= 0);
  if (last < 0) return;
  int coded = 0;
  for (int i = 0; i <= last; ++i) {
    if (i < 15) {
      enc.encode_bit(ctx.sig[sig_ctx(i)], scan[i] != 0);
      if (scan[i] == 0) continue;
      enc.encode_bit(ctx.last[sig_ctx(i)], i == last);
    } else if (scan[i] == 0) {
      continue;  // position 15 significance is implied by reaching it
    }
    encode_level(enc, ctx, coded, scan[i]);
    ++coded;
  }
}

Block4x4 decode_residual_block_cabac(ArithDecoder& dec,
                                     ResidualContexts& ctx) {
  Block4x4 out{};
  if (!dec.decode_bit(ctx.sig[0])) return out;
  int coded = 0;
  for (int i = 0; i < 16; ++i) {
    bool sig;
    bool is_last = false;
    if (i < 15) {
      sig = dec.decode_bit(ctx.sig[sig_ctx(i)]);
      if (sig) is_last = dec.decode_bit(ctx.last[sig_ctx(i)]);
    } else {
      sig = true;  // reached the end: the final coefficient is here
      is_last = true;
    }
    if (!sig) continue;
    const int level = decode_level(dec, ctx, coded);
    out[kZigzagRow[i]][kZigzagCol[i]] = level;
    ++coded;
    if (is_last) break;
  }
  return out;
}

}  // namespace affectsys::h264
