#include "h264/ratecontrol.hpp"

#include <algorithm>
#include <stdexcept>

namespace affectsys::h264 {

RateController::RateController(const RateControlConfig& cfg)
    : cfg_(cfg), qp_(cfg.initial_qp) {
  if (cfg.target_bps <= 0.0 || cfg.fps <= 0.0) {
    throw std::invalid_argument("RateController: bad target");
  }
  if (cfg.min_qp < 0 || cfg.max_qp > 51 || cfg.min_qp > cfg.max_qp) {
    throw std::invalid_argument("RateController: bad QP bounds");
  }
  qp_ = std::clamp(qp_, cfg.min_qp, cfg.max_qp);
}

void RateController::picture_coded(std::size_t bytes) {
  const double bits = static_cast<double>(bytes) * 8.0;
  const double budget = cfg_.target_bps / cfg_.fps;
  buffer_bits_ += bits - budget;
  total_bits_ += static_cast<std::uint64_t>(bits);
  ++pictures_;

  // Proportional step: one QP per `reaction` picture-budgets of error,
  // clamped to +-2 per picture (QP moves ~12%/step in rate).
  const double error = buffer_bits_ / budget;
  int step = 0;
  if (error > cfg_.reaction) step = error > 3.0 * cfg_.reaction ? 2 : 1;
  if (error < -cfg_.reaction) step = error < -3.0 * cfg_.reaction ? -2 : -1;
  qp_ = std::clamp(qp_ + step, cfg_.min_qp, cfg_.max_qp);
}

void RateController::begin_forced_idr() {
  const double budget = cfg_.target_bps / cfg_.fps;
  const double cap = cfg_.reaction * budget;
  buffer_bits_ = std::clamp(buffer_bits_, -cap, cap);
}

double RateController::achieved_bps() const {
  if (pictures_ == 0) return 0.0;
  return static_cast<double>(total_bits_) * cfg_.fps /
         static_cast<double>(pictures_);
}

}  // namespace affectsys::h264
