// Synthetic video-content generator — the stand-in for the paper's test
// clips.  Scenes combine a textured background, moving objects and sensor
// noise; motion/detail/noise knobs shape the I/P/B NAL-size distribution
// the Input Selector operates on.
#pragma once

#include <vector>

#include "h264/frame.hpp"

namespace affectsys::h264 {

struct VideoConfig {
  int width = 64;
  int height = 64;
  int frames = 30;
  double motion = 1.0;      ///< object speed in pixels/frame
  double detail = 0.5;      ///< background texture contrast, [0, 1]
  double noise = 1.0;       ///< sensor noise sigma in code values
  unsigned seed = 1234;
};

/// A visual-search-task-style clip: textured background with several
/// moving bright blobs (the "targets") drifting across the scene.
std::vector<YuvFrame> generate_test_video(const VideoConfig& cfg);

/// Static scene (all frames identical except noise) — produces small P/B
/// NAL units, the regime where the Input Selector saves the most.
std::vector<YuvFrame> generate_static_video(const VideoConfig& cfg);

/// Mixed-content clip: the first (1 - quiet_fraction) of the frames use
/// the configured motion/noise ("busy" scenes), the remainder continue the
/// same scene nearly still and almost noise-free ("quiet" scenes).  Quiet
/// P/B NAL units come out small and land below the Input Selector's S_th,
/// giving the bimodal NAL-size distribution real content has.
std::vector<YuvFrame> generate_mixed_video(const VideoConfig& cfg,
                                           double quiet_fraction,
                                           double quiet_motion = 0.05,
                                           double quiet_noise = 0.1);

}  // namespace affectsys::h264
