// Planar YUV 4:2:0 frame buffer and pixel helpers.
#pragma once

#include <cstdint>
#include <vector>

namespace affectsys::h264 {

inline constexpr int kMbSize = 16;  ///< luma macroblock dimension

/// One 8-bit plane with clamped sampling for prediction at frame edges.
struct Plane {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> data;

  Plane() = default;
  Plane(int w, int h, std::uint8_t fill = 0)
      : width(w), height(h),
        data(static_cast<std::size_t>(w) * static_cast<std::size_t>(h), fill) {}

  std::uint8_t& at(int x, int y) {
    return data[static_cast<std::size_t>(y) * width + x];
  }
  std::uint8_t at(int x, int y) const {
    return data[static_cast<std::size_t>(y) * width + x];
  }
  /// Sample with coordinates clamped into the plane (for MC at borders).
  std::uint8_t at_clamped(int x, int y) const;
};

/// 4:2:0 frame; luma dimensions must be multiples of 16.
struct YuvFrame {
  Plane y;
  Plane cb;
  Plane cr;

  YuvFrame() = default;
  YuvFrame(int width, int height);

  int width() const { return y.width; }
  int height() const { return y.height; }
  int mb_cols() const { return y.width / kMbSize; }
  int mb_rows() const { return y.height / kMbSize; }
  int mb_count() const { return mb_cols() * mb_rows(); }
  bool same_size(const YuvFrame& o) const {
    return width() == o.width() && height() == o.height();
  }
};

std::uint8_t clamp_pixel(int v);

}  // namespace affectsys::h264
