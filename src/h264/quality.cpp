#include "h264/quality.hpp"

#include <cmath>
#include <stdexcept>

namespace affectsys::h264 {

double plane_mse(const Plane& a, const Plane& b) {
  if (a.width != b.width || a.height != b.height) {
    throw std::invalid_argument("plane_mse: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    const double d = static_cast<double>(a.data[i]) - b.data[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.data.size());
}

namespace {
double mse_to_psnr(double mse) {
  if (mse <= 1e-10) return 100.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}
}  // namespace

double psnr_luma(const YuvFrame& a, const YuvFrame& b) {
  return mse_to_psnr(plane_mse(a.y, b.y));
}

double psnr_yuv(const YuvFrame& a, const YuvFrame& b) {
  const double mse = (6.0 * plane_mse(a.y, b.y) + plane_mse(a.cb, b.cb) +
                      plane_mse(a.cr, b.cr)) /
                     8.0;
  return mse_to_psnr(mse);
}

double ssim_luma(const YuvFrame& a, const YuvFrame& b) {
  if (!a.same_size(b)) throw std::invalid_argument("ssim: size mismatch");
  constexpr double c1 = 6.5025, c2 = 58.5225;  // (0.01*255)^2, (0.03*255)^2
  const int tile = 8;
  double acc = 0.0;
  int tiles = 0;
  for (int ty = 0; ty + tile <= a.height(); ty += tile) {
    for (int tx = 0; tx + tile <= a.width(); tx += tile) {
      double ma = 0, mb = 0;
      for (int y = 0; y < tile; ++y) {
        for (int x = 0; x < tile; ++x) {
          ma += a.y.at(tx + x, ty + y);
          mb += b.y.at(tx + x, ty + y);
        }
      }
      const double n = tile * tile;
      ma /= n;
      mb /= n;
      double va = 0, vb = 0, cov = 0;
      for (int y = 0; y < tile; ++y) {
        for (int x = 0; x < tile; ++x) {
          const double da = a.y.at(tx + x, ty + y) - ma;
          const double db = b.y.at(tx + x, ty + y) - mb;
          va += da * da;
          vb += db * db;
          cov += da * db;
        }
      }
      va /= n - 1;
      vb /= n - 1;
      cov /= n - 1;
      acc += ((2 * ma * mb + c1) * (2 * cov + c2)) /
             ((ma * ma + mb * mb + c1) * (va + vb + c2));
      ++tiles;
    }
  }
  return tiles ? acc / tiles : 1.0;
}

double sequence_psnr(const std::vector<YuvFrame>& ref,
                     const std::vector<YuvFrame>& test) {
  if (ref.size() != test.size() || ref.empty()) {
    throw std::invalid_argument("sequence_psnr: sequence size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    acc += psnr_luma(ref[i], test[i]);
  }
  return acc / static_cast<double>(ref.size());
}

}  // namespace affectsys::h264
