#include "h264/decoder.hpp"

#include <algorithm>
#include <stdexcept>

#include "h264/bitstream.hpp"
#include "h264/deblock.hpp"
#include "h264/entropy.hpp"
#include "h264/inter.hpp"
#include "h264/intra.hpp"
#include "h264/intra4.hpp"
#include "h264/transform.hpp"
#include "obs/metrics.hpp"

namespace affectsys::h264 {
namespace {

constexpr std::uint32_t kMbSkip = 0;
constexpr std::uint32_t kMbInterFwd = 1;
constexpr std::uint32_t kMbInterBwd = 2;
constexpr std::uint32_t kMbInterBi = 3;
constexpr std::uint32_t kMbIntra = 4;

constexpr std::uint32_t kIntra4x4 = 1;  // intra partition code

// Parse-time sanity bounds: a fuzzed Exp-Golomb field can reach 2^32-1,
// so every value that feeds arithmetic or table indexing is range-
// checked before use (overflow and negative-modulo UB otherwise).
constexpr std::uint32_t kMaxMbPerDim = 256;  // 4096-pixel frames
constexpr int kMaxMvHalfPel = 1 << 15;

void check_mv(const MotionVector& mv) {
  if (mv.dx > kMaxMvHalfPel || mv.dx < -kMaxMvHalfPel ||
      mv.dy > kMaxMvHalfPel || mv.dy < -kMaxMvHalfPel) {
    throw BitstreamError("Decoder: motion vector out of range");
  }
}

void store_block(Plane& p, int x0, int y0, int size, const std::uint8_t* in) {
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) p.at(x0 + x, y0 + y) = in[y * size + x];
  }
}

}  // namespace

DecodeActivity& DecodeActivity::operator+=(const DecodeActivity& o) {
  nal_units += o.nal_units;
  bytes_in += o.bytes_in;
  bits_parsed += o.bits_parsed;
  residual_blocks += o.residual_blocks;
  coefficients += o.coefficients;
  iqit_blocks += o.iqit_blocks;
  intra_mbs += o.intra_mbs;
  inter_mbs += o.inter_mbs;
  skip_mbs += o.skip_mbs;
  deblock_edges_examined += o.deblock_edges_examined;
  deblock_edges_filtered += o.deblock_edges_filtered;
  deblock_pixels += o.deblock_pixels;
  frames_decoded += o.frames_decoded;
  frames_concealed += o.frames_concealed;
  nal_errors += o.nal_errors;
  resync_skips += o.resync_skips;
  resyncs += o.resyncs;
  loss_signals += o.loss_signals;
  return *this;
}

std::optional<DecodedPicture> Decoder::decode_nal(const NalUnit& nal) {
  ++activity_.nal_units;
  activity_.bytes_in += nal.byte_size();
  AFFECTSYS_COUNT("h264.nal_units", 1);
  AFFECTSYS_COUNT("h264.bytes_in", nal.byte_size());
  try {
    return decode_nal_checked(nal);
  } catch (const BitstreamError& e) {
    ++activity_.nal_errors;
    AFFECTSYS_COUNT("h264.nal_errors", 1);
    if (!cfg_.resilient) throw DecodeError(e.what(), nal.type);
    if (is_slice(nal)) {
      // The prediction chain is broken: a lost picture means every
      // following P/B slice would predict from the wrong frame.  Drop
      // the references and discard slices until the next keyframe.
      refs_held_ = 0;
      awaiting_keyframe_ = true;
    }
    return std::nullopt;
  }
}

void Decoder::notify_loss() {
  ++activity_.loss_signals;
  AFFECTSYS_COUNT("h264.loss_signals", 1);
  if (!cfg_.resilient) return;
  // Same recovery as a malformed slice: the prediction chain is broken
  // at an unknown point, so nothing referencing the current state can
  // be trusted until the next keyframe.
  refs_held_ = 0;
  awaiting_keyframe_ = true;
}

void Decoder::reset(const DecoderConfig& cfg) {
  cfg_ = cfg;
  activity_ = {};
  width_ = 0;
  height_ = 0;
  qp_ = 26;
  pps_deblock_ = true;
  have_sps_ = false;
  awaiting_keyframe_ = false;
  refs_held_ = 0;
  // ref_a_/ref_b_ contents are stale but unreachable (refs_held_ == 0
  // guards every read); keeping them preserves their buffer capacity
  // for the first reference assignments of the next stream.
}

void Decoder::recycle(YuvFrame&& frame) {
  if (frame.width() == 0) return;
  spare_frames_.push_back(std::move(frame));
}

YuvFrame Decoder::take_frame() {
  while (!spare_frames_.empty()) {
    YuvFrame f = std::move(spare_frames_.back());
    spare_frames_.pop_back();
    if (f.width() != width_ || f.height() != height_) continue;  // stale size
    std::fill(f.y.data.begin(), f.y.data.end(), std::uint8_t{0});
    std::fill(f.cb.data.begin(), f.cb.data.end(), std::uint8_t{0});
    std::fill(f.cr.data.begin(), f.cr.data.end(), std::uint8_t{0});
    return f;
  }
  return YuvFrame(width_, height_);
}

std::optional<DecodedPicture> Decoder::decode_nal_checked(const NalUnit& nal) {
  // Emulation-prevention removal is done per branch: decode_slice()
  // de-escapes its own payload, and doing it here as well copied every
  // slice payload twice (measurable as wall-vs-observed skew in
  // bench_main, since the duplicate ran outside the decode_ns scope).
  switch (nal.type) {
    case NalType::kSps: {
      remove_emulation_prevention_into(nal.payload, rbsp_);
      BitReader br(rbsp_);
      br.get_bits(24);  // profile / constraints / level
      br.get_ue();      // sps_id
      const std::uint32_t wmb = br.get_ue();
      const std::uint32_t hmb = br.get_ue();
      if (wmb >= kMaxMbPerDim || hmb >= kMaxMbPerDim) {
        throw BitstreamError("Decoder: SPS dimensions out of range");
      }
      width_ = (static_cast<int>(wmb) + 1) * kMbSize;
      height_ = (static_cast<int>(hmb) + 1) * kMbSize;
      have_sps_ = true;
      activity_.bits_parsed += br.bits_consumed();
      return std::nullopt;
    }
    case NalType::kPps: {
      remove_emulation_prevention_into(nal.payload, rbsp_);
      BitReader br(rbsp_);
      br.get_ue();  // pps_id
      br.get_ue();  // sps_id
      const std::int64_t pps_qp =
          static_cast<std::int64_t>(br.get_se()) + 26;
      if (pps_qp < 0 || pps_qp > 51) {
        throw BitstreamError("Decoder: PPS qp out of range");
      }
      qp_ = static_cast<int>(pps_qp);
      pps_deblock_ = br.get_bit();
      activity_.bits_parsed += br.bits_consumed();
      return std::nullopt;
    }
    case NalType::kSliceIdr:
    case NalType::kSliceNonIdr: {
      if (!have_sps_) {
        throw BitstreamError("Decoder: slice before parameter sets");
      }
      if (awaiting_keyframe_ && nal.type != NalType::kSliceIdr) {
        // Resilient resync: everything until the next keyframe predicts
        // from pictures we no longer trust.
        ++activity_.resync_skips;
        AFFECTSYS_COUNT("h264.resync_skips", 1);
        return std::nullopt;
      }
      auto pic = decode_slice(nal);
      if (awaiting_keyframe_) {
        awaiting_keyframe_ = false;
        ++activity_.resyncs;
        AFFECTSYS_COUNT("h264.resyncs", 1);
      }
      return pic;
    }
    default:
      return std::nullopt;
  }
}

DecodedPicture Decoder::decode_slice(const NalUnit& nal) {
  AFFECTSYS_TIME_SCOPE("h264.decode_ns");
  remove_emulation_prevention_into(nal.payload, rbsp_);
  BitReader br(rbsp_);

  br.get_ue();  // first_mb_in_slice
  const auto type = static_cast<SliceType>(br.get_ue() % 5);
  br.get_ue();  // frame_num
  const int poc = static_cast<int>(br.get_ue());
  const std::int64_t qp64 = qp_ + static_cast<std::int64_t>(br.get_se());
  if (qp64 < 0 || qp64 > 51) {
    // Out-of-range qp would index the dequant tables with a negative
    // modulo and left-shift past the value bits — refuse the slice.
    throw BitstreamError("Decoder: slice qp out of range");
  }
  const int qp = static_cast<int>(qp64);

  if (type != SliceType::kI && refs_held_ == 0) {
    throw BitstreamError("Decoder: inter slice without references");
  }
  const YuvFrame* fwd = nullptr;
  const YuvFrame* bwd = nullptr;
  if (type == SliceType::kP) {
    fwd = &ref_b_;
  } else if (type == SliceType::kB) {
    // B pictures use the two most recent references: older = forward.
    fwd = refs_held_ >= 2 ? &ref_a_ : &ref_b_;
    bwd = &ref_b_;
  }

  YuvFrame recon = take_frame();
  const int mb_cols = width_ / kMbSize;
  const int mb_rows = height_ / kMbSize;
  mb_info_.assign(static_cast<std::size_t>(mb_cols) * mb_rows, MbInfo{});
  std::vector<MbInfo>& mb_info = mb_info_;

  std::uint8_t pred[kMbSize * kMbSize];
  std::uint8_t pred_b[kMbSize * kMbSize];
  std::uint8_t pred_cb[64], pred_cr[64], tmp_c[64];

  for (int mby = 0; mby < mb_rows; ++mby) {
    for (int mbx = 0; mbx < mb_cols; ++mbx) {
      const int x0 = mbx * kMbSize;
      const int y0 = mby * kMbSize;
      MbInfo& info = mb_info[static_cast<std::size_t>(mby) * mb_cols + mbx];

      std::uint32_t mb_type;
      std::uint32_t intra_partition = 0;
      IntraMode luma_mode = IntraMode::kDc;
      IntraMode chroma_mode = IntraMode::kDc;
      MotionVector mv{}, mv_bwd{};

      if (type == SliceType::kI) {
        mb_type = kMbIntra;
        intra_partition = br.get_ue();
        if (intra_partition != kIntra4x4) {
          luma_mode = static_cast<IntraMode>(br.get_ue() % kNumIntraModes);
          chroma_mode = static_cast<IntraMode>(br.get_ue() % kNumIntraModes);
        }
      } else {
        mb_type = br.get_ue();
        if (mb_type == kMbIntra) {
          intra_partition = br.get_ue();
          if (intra_partition != kIntra4x4) {
            luma_mode = static_cast<IntraMode>(br.get_ue() % kNumIntraModes);
            chroma_mode = static_cast<IntraMode>(br.get_ue() % kNumIntraModes);
          }
        } else if (mb_type != kMbSkip) {
          if (mb_type > kMbInterBi) {
            throw BitstreamError("Decoder: invalid mb_type");
          }
          if (type != SliceType::kB &&
              (mb_type == kMbInterBwd || mb_type == kMbInterBi)) {
            // Backward/bi prediction outside a B slice has no backward
            // reference to read from (bwd stays null).
            throw BitstreamError("Decoder: B-type macroblock in non-B slice");
          }
          mv.dx = br.get_se();
          mv.dy = br.get_se();
          check_mv(mv);
          if (mb_type == kMbInterBi) {
            mv_bwd.dx = br.get_se();
            mv_bwd.dy = br.get_se();
            check_mv(mv_bwd);
          }
        }
      }

      // ---- Intra-4x4 path (interleaved mode/residual, in-place recon) ----
      if (mb_type == kMbIntra && intra_partition == kIntra4x4) {
        ++activity_.intra_mbs;
        info.intra = true;
        for (int by = 0; by < 4; ++by) {
          for (int bx = 0; bx < 4; ++bx) {
            const auto mode = static_cast<Intra4Mode>(
                br.get_ue() % kNumIntra4Modes);
            std::uint8_t p4[16];
            intra4_predict(recon.y, x0 + bx * 4, y0 + by * 4, mode, p4);
            int nz = 0;
            const Block4x4 levels = decode_residual_block(br, &nz);
            ++activity_.residual_blocks;
            activity_.coefficients += static_cast<std::uint64_t>(nz);
            info.nonzero[static_cast<std::size_t>(by * 4 + bx)] = nz > 0;
            if (nz > 0) ++activity_.iqit_blocks;
            const Block4x4 res = dequantize_inverse(levels, qp);
            for (int y = 0; y < 4; ++y) {
              for (int x = 0; x < 4; ++x) {
                recon.y.at(x0 + bx * 4 + x, y0 + by * 4 + y) =
                    clamp_pixel(p4[y * 4 + x] + res[y][x]);
              }
            }
          }
        }
        chroma_mode = static_cast<IntraMode>(br.get_ue() % kNumIntraModes);
        intra_predict(recon.cb, x0 / 2, y0 / 2, 8, chroma_mode, pred_cb);
        intra_predict(recon.cr, x0 / 2, y0 / 2, 8, chroma_mode, pred_cr);
        auto decode_chroma4 = [&](std::uint8_t* buf) {
          for (int b = 0; b < 4; ++b) {
            int nz = 0;
            const Block4x4 levels = decode_residual_block(br, &nz);
            ++activity_.residual_blocks;
            activity_.coefficients += static_cast<std::uint64_t>(nz);
            if (nz > 0) ++activity_.iqit_blocks;
            const Block4x4 res = dequantize_inverse(levels, qp);
            for (int y = 0; y < 4; ++y) {
              for (int x = 0; x < 4; ++x) {
                const int idx = ((b / 2) * 4 + y) * 8 + (b % 2) * 4 + x;
                buf[idx] = clamp_pixel(buf[idx] + res[y][x]);
              }
            }
          }
        };
        decode_chroma4(pred_cb);
        decode_chroma4(pred_cr);
        store_block(recon.cb, x0 / 2, y0 / 2, 8, pred_cb);
        store_block(recon.cr, x0 / 2, y0 / 2, 8, pred_cr);
        continue;  // MB fully reconstructed
      }

      // ---- Prediction -----------------------------------------------------
      if (mb_type == kMbIntra) {
        ++activity_.intra_mbs;
        info.intra = true;
        intra_predict(recon.y, x0, y0, kMbSize, luma_mode, pred);
        intra_predict(recon.cb, x0 / 2, y0 / 2, 8, chroma_mode, pred_cb);
        intra_predict(recon.cr, x0 / 2, y0 / 2, 8, chroma_mode, pred_cr);
      } else {
        const bool skip = mb_type == kMbSkip;
        if (skip) {
          ++activity_.skip_mbs;
          info.skipped = true;
          // P skip: zero-MV copy from forward ref.  B skip: zero-MV
          // bi-average (mirrors the encoder's skip condition).
          if (type == SliceType::kB && bwd) mb_type = kMbInterBi;
          else mb_type = kMbInterFwd;
          mv = {};
          mv_bwd = {};
        } else {
          ++activity_.inter_mbs;
        }
        // Motion vectors are coded in half-pel units; chroma uses the
        // rounded full-pel offset (mv/4).
        const MotionVector cmv{mv.dx / 4, mv.dy / 4};
        if (mb_type == kMbInterBi) {
          motion_compensate_halfpel(fwd->y, x0, y0, kMbSize, mv, pred);
          motion_compensate_halfpel(bwd->y, x0, y0, kMbSize, mv_bwd, pred_b);
          average_predictions(pred, pred_b, pred, kMbSize * kMbSize);
          const MotionVector cmvb{mv_bwd.dx / 4, mv_bwd.dy / 4};
          motion_compensate(fwd->cb, x0 / 2, y0 / 2, 8, cmv, pred_cb);
          motion_compensate(bwd->cb, x0 / 2, y0 / 2, 8, cmvb, tmp_c);
          average_predictions(pred_cb, tmp_c, pred_cb, 64);
          motion_compensate(fwd->cr, x0 / 2, y0 / 2, 8, cmv, pred_cr);
          motion_compensate(bwd->cr, x0 / 2, y0 / 2, 8, cmvb, tmp_c);
          average_predictions(pred_cr, tmp_c, pred_cr, 64);
        } else {
          const YuvFrame* ref = mb_type == kMbInterBwd ? bwd : fwd;
          if (!ref) throw BitstreamError("Decoder: missing reference");
          motion_compensate_halfpel(ref->y, x0, y0, kMbSize, mv, pred);
          motion_compensate(ref->cb, x0 / 2, y0 / 2, 8, cmv, pred_cb);
          motion_compensate(ref->cr, x0 / 2, y0 / 2, 8, cmv, pred_cr);
        }
        info.mv = mv;
      }

      // ---- Residual + reconstruction --------------------------------------
      if (!info.skipped) {
        for (int by = 0; by < 4; ++by) {
          for (int bx = 0; bx < 4; ++bx) {
            int nz = 0;
            const Block4x4 levels = decode_residual_block(br, &nz);
            ++activity_.residual_blocks;
            activity_.coefficients += static_cast<std::uint64_t>(nz);
            info.nonzero[static_cast<std::size_t>(by * 4 + bx)] = nz > 0;
            if (nz > 0) ++activity_.iqit_blocks;
            const Block4x4 res = dequantize_inverse(levels, qp);
            for (int y = 0; y < 4; ++y) {
              for (int x = 0; x < 4; ++x) {
                const int idx = (by * 4 + y) * kMbSize + bx * 4 + x;
                pred[idx] = clamp_pixel(pred[idx] + res[y][x]);
              }
            }
          }
        }
        auto decode_chroma = [&](std::uint8_t* buf) {
          for (int b = 0; b < 4; ++b) {
            int nz = 0;
            const Block4x4 levels = decode_residual_block(br, &nz);
            ++activity_.residual_blocks;
            activity_.coefficients += static_cast<std::uint64_t>(nz);
            if (nz > 0) ++activity_.iqit_blocks;
            const Block4x4 res = dequantize_inverse(levels, qp);
            for (int y = 0; y < 4; ++y) {
              for (int x = 0; x < 4; ++x) {
                const int idx = ((b / 2) * 4 + y) * 8 + (b % 2) * 4 + x;
                buf[idx] = clamp_pixel(buf[idx] + res[y][x]);
              }
            }
          }
        };
        decode_chroma(pred_cb);
        decode_chroma(pred_cr);
      }
      store_block(recon.y, x0, y0, kMbSize, pred);
      store_block(recon.cb, x0 / 2, y0 / 2, 8, pred_cb);
      store_block(recon.cr, x0 / 2, y0 / 2, 8, pred_cr);
    }
  }
  activity_.bits_parsed += br.bits_consumed();
  AFFECTSYS_COUNT("h264.mbs_decoded",
                  static_cast<std::uint64_t>(mb_cols) * mb_rows);
  AFFECTSYS_COUNT("h264.bits_parsed", br.bits_consumed());

  if (deblock_enabled()) {
    const DeblockStats st = deblock_frame(recon, mb_info, qp);
    activity_.deblock_edges_examined += st.edges_examined;
    activity_.deblock_edges_filtered += st.edges_filtered;
    activity_.deblock_pixels += st.pixels_modified;
  }
  ++activity_.frames_decoded;
  AFFECTSYS_COUNT("h264.frames_decoded", 1);

  // Reference management: I/P pictures (ref_idc > 0) become references.
  // Swap instead of move-assigning ref_b_ into ref_a_ so the retired
  // ref_a_ buffer lands in ref_b_ and its capacity is reused by the
  // copy-assignment (state after the two statements is identical to the
  // old move+copy, minus the allocation).
  if (nal.ref_idc > 0) {
    std::swap(ref_a_, ref_b_);
    ref_b_ = recon;  // copy: recon is also returned for display
    refs_held_ = std::min(refs_held_ + 1, 2);
  }

  DecodedPicture pic;
  pic.frame = std::move(recon);
  pic.poc = poc;
  pic.type = type;
  return pic;
}

std::vector<DecodedPicture> Decoder::decode_annexb(
    std::span<const std::uint8_t> stream) {
  const std::vector<NalUnit> units = unpack_annexb(stream);
  std::vector<DecodedPicture> out;
  out.reserve(units.size());  // upper bound: not every NAL yields a picture
  for (const NalUnit& nal : units) {
    if (auto pic = decode_nal(nal)) out.push_back(std::move(*pic));
  }
  return out;
}

std::vector<DecodedPicture> assemble_display_sequence(
    std::vector<DecodedPicture> decoded, int expected_pictures) {
  std::sort(decoded.begin(), decoded.end(),
            [](const DecodedPicture& a, const DecodedPicture& b) {
              return a.poc < b.poc;
            });
  std::vector<DecodedPicture> out;
  out.reserve(static_cast<std::size_t>(expected_pictures));
  std::size_t next = 0;
  for (int poc = 0; poc < expected_pictures; ++poc) {
    if (next < decoded.size() && decoded[next].poc == poc) {
      out.push_back(std::move(decoded[next]));
      ++next;
    } else if (!out.empty()) {
      DecodedPicture copy;
      copy.frame = out.back().frame;
      copy.poc = poc;
      copy.type = out.back().type;
      copy.concealed = true;
      out.push_back(std::move(copy));
    } else if (next < decoded.size()) {
      // Leading gap: conceal with the first available picture.
      DecodedPicture copy;
      copy.frame = decoded[next].frame;
      copy.poc = poc;
      copy.type = decoded[next].type;
      copy.concealed = true;
      out.push_back(std::move(copy));
    }
  }
  return out;
}

}  // namespace affectsys::h264
