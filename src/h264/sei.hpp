// SEI (Supplemental Enhancement Information) messages carrying affect
// metadata.
//
// Extension beyond the paper: the affect-driven player can journal its
// emotion/mode decisions *inside* the bitstream as user-data SEI NAL
// units, so an offline tool can audit exactly which power state decoded
// each span of video.  SEI units are ignored by the decoder proper and
// are never deletion candidates for the Input Selector (they are not
// slices), which the tests pin down.
#pragma once

#include <cstdint>
#include <optional>

#include "h264/nal.hpp"

namespace affectsys::h264 {

/// Payload of an affect-annotation SEI message.
struct AffectSei {
  std::uint32_t time_ms = 0;      ///< session time of the decision
  std::uint8_t emotion = 0;       ///< affect::Emotion as an integer
  std::uint8_t decoder_mode = 0;  ///< adaptive::DecoderMode as an integer
  std::uint8_t confidence_pct = 0;
};

/// user_data_unregistered payload type (Annex D).
inline constexpr std::uint32_t kSeiUserDataUnregistered = 5;

/// The 16-byte UUID identifying our affect payload inside
/// user_data_unregistered.
extern const std::uint8_t kAffectSeiUuid[16];

/// Builds an SEI NAL unit wrapping the affect annotation, with spec-style
/// payload type/size ff-coding and emulation prevention.
NalUnit make_affect_sei(const AffectSei& payload);

/// Parses an affect SEI from a NAL unit; nullopt for non-SEI units, SEI
/// units of other payload types, or foreign UUIDs.
std::optional<AffectSei> parse_affect_sei(const NalUnit& nal);

}  // namespace affectsys::h264
