// Bit-level I/O with Exp-Golomb coding — the syntax layer every H.264
// header and our CAVLC-style residual coder is written in.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace affectsys::h264 {

/// Thrown when a decoder runs off the end of a (possibly truncated or
/// Input-Selector-edited) bitstream.
class BitstreamError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// MSB-first bit writer.
class BitWriter {
 public:
  void put_bit(bool b);
  void put_bits(std::uint32_t value, unsigned count);  ///< count <= 32
  /// Unsigned Exp-Golomb.
  void put_ue(std::uint32_t value);
  /// Signed Exp-Golomb (0, 1, -1, 2, -2, ...).
  void put_se(std::int32_t value);
  /// rbsp_trailing_bits: a 1 bit then zero-pad to a byte boundary.
  void finish_rbsp();

  std::size_t bit_count() const { return bytes_.size() * 8 - spare_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  unsigned spare_ = 0;  ///< unused low bits in the last byte
};

/// MSB-first bit reader over an RBSP payload.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool get_bit();
  std::uint32_t get_bits(unsigned count);  ///< count <= 32
  std::uint32_t get_ue();
  std::int32_t get_se();

  std::size_t bits_consumed() const { return pos_; }
  std::size_t bits_remaining() const { return data_.size() * 8 - pos_; }
  bool byte_aligned() const { return pos_ % 8 == 0; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;  ///< in bits
};

/// Inserts emulation-prevention bytes (0x03 after 0x0000 when the next
/// byte is <= 0x03, plus a trailing 0x03 when the RBSP ends in 0x0000),
/// producing a NAL payload safe to embed in Annex-B: the output never
/// contains 00 00 0{0,1} and never ends in 00 00.
std::vector<std::uint8_t> add_emulation_prevention(
    std::span<const std::uint8_t> rbsp);

/// Strips emulation-prevention bytes (including a trailing guard byte).
/// remove(add(rbsp)) == rbsp for every input.
std::vector<std::uint8_t> remove_emulation_prevention(
    std::span<const std::uint8_t> ebsp);

/// De-escapes into a caller-owned buffer (cleared first, capacity kept),
/// so steady-state decode reuses one RBSP staging vector instead of
/// allocating per NAL.  Byte-identical to remove_emulation_prevention.
void remove_emulation_prevention_into(std::span<const std::uint8_t> ebsp,
                                      std::vector<std::uint8_t>& out);

}  // namespace affectsys::h264
