// Tests for the power/area model and its calibration.
#include <gtest/gtest.h>

#include "h264/decoder.hpp"
#include "h264/encoder.hpp"
#include "h264/testvideo.hpp"
#include "power/area.hpp"
#include "power/model.hpp"

namespace h264 = affectsys::h264;
namespace power = affectsys::power;

namespace {

h264::DecodeActivity decode_reference(bool deblock) {
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 12;
  const auto video = h264::generate_test_video(vc);
  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.gop_size = 12;
  ec.b_frames = 2;
  h264::Encoder enc(ec);
  h264::Decoder dec({.enable_deblock = deblock});
  dec.decode_annexb(enc.encode_annexb(video));
  return dec.activity();
}

}  // namespace

TEST(PowerModel, EnergyIsAdditiveOverModules) {
  const auto act = decode_reference(true);
  const power::EnergyCoefficients coeff;
  const auto e = power::decode_energy(act, coeff);
  EXPECT_GT(e.parser_nj, 0.0);
  EXPECT_GT(e.cavlc_nj, 0.0);
  EXPECT_GT(e.iqit_nj, 0.0);
  EXPECT_GT(e.prediction_nj, 0.0);
  EXPECT_GT(e.deblock_nj, 0.0);
  EXPECT_GT(e.static_nj, 0.0);
  EXPECT_NEAR(e.total_nj(),
              e.parser_nj + e.cavlc_nj + e.iqit_nj + e.prediction_nj +
                  e.deblock_nj + e.static_nj,
              1e-9);
}

TEST(PowerModel, ZeroActivityZeroEnergy) {
  const auto e =
      power::decode_energy(h264::DecodeActivity{}, power::EnergyCoefficients{});
  EXPECT_EQ(e.total_nj(), 0.0);
}

TEST(PowerModel, CalibrationHitsTargetShareExactly) {
  const auto act = decode_reference(true);
  const power::EnergyCoefficients base;
  for (double target : {0.10, 0.314, 0.50}) {
    const auto calibrated =
        power::calibrate_to_deblock_share(base, act, target);
    const auto e = power::decode_energy(act, calibrated);
    EXPECT_NEAR(e.deblock_share(), target, 1e-9) << "target " << target;
  }
}

TEST(PowerModel, CalibrationRejectsDegenerateInputs) {
  const auto act = decode_reference(true);
  const power::EnergyCoefficients base;
  EXPECT_THROW(power::calibrate_to_deblock_share(base, act, 0.0),
               std::invalid_argument);
  EXPECT_THROW(power::calibrate_to_deblock_share(base, act, 1.0),
               std::invalid_argument);
  // Reference with no DF activity cannot be calibrated.
  const auto no_df = decode_reference(false);
  EXPECT_THROW(power::calibrate_to_deblock_share(base, no_df, 0.314),
               std::invalid_argument);
}

TEST(PowerModel, DeblockOffSavesExactlyTheCalibratedShare) {
  const auto with_df = decode_reference(true);
  const auto without_df = decode_reference(false);
  const auto coeff = power::calibrate_to_deblock_share(
      power::EnergyCoefficients{}, with_df, 0.314);
  const double on = power::decode_energy(with_df, coeff).total_nj();
  const double off = power::decode_energy(without_df, coeff).total_nj();
  // Same stream, DF disabled: every non-DF counter is identical, so the
  // saving equals the calibrated share.
  EXPECT_NEAR(1.0 - off / on, 0.314, 1e-6);
}

TEST(PowerModel, AveragePower) {
  power::EnergyBreakdown e;
  e.static_nj = 2.5e6;  // 2.5 mJ over 1 s -> 2.5 mW
  EXPECT_NEAR(power::average_power_mw(e, 25, 25.0), 2.5, 1e-9);
  EXPECT_EQ(power::average_power_mw(e, 0, 25.0), 0.0);
}

TEST(AreaModel, MatchesPaperFigures) {
  const power::AreaModel area;
  // Paper: 1.9 mm^2 total, 4.23% Pre-store Buffer overhead, 65 nm, 1.2 V,
  // 28 MHz.
  EXPECT_NEAR(area.proposed_mm2(), 1.9, 0.05);
  EXPECT_NEAR(area.prestore_overhead(), 0.0423, 0.002);
  EXPECT_EQ(area.technology_nm, 65.0);
  EXPECT_EQ(area.supply_v, 1.2);
  EXPECT_EQ(area.clock_mhz, 28.0);
}
