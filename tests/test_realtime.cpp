// Tests for the real-time pipeline: VAD gating, streaming classification
// and the offload placement study.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "affect/realtime.hpp"
#include "affect/speech_synth.hpp"
#include "core/thread_pool.hpp"
#include "nn/model.hpp"
#include "power/offload.hpp"

namespace affect = affectsys::affect;
namespace nn = affectsys::nn;
namespace power = affectsys::power;

// ---------------------------------------------------------------------- VAD

TEST(Vad, SilenceIsRejected) {
  affect::VoiceActivityDetector vad({});
  std::vector<double> silence(16000, 0.0);
  EXPECT_EQ(vad.speech_fraction(silence), 0.0);
}

TEST(Vad, SpeechIsAccepted) {
  affect::SpeechSynthesizer synth(1);
  const auto utt =
      synth.synthesize(affect::Emotion::kAngry, 0, 1.5, 16000.0, 0.1);
  affect::VoiceActivityDetector vad({});
  EXPECT_GT(vad.speech_fraction(utt.samples), 0.4);
}

TEST(Vad, NoiseFloorAdaptsToStationaryNoise) {
  affect::VadConfig cfg;
  affect::VoiceActivityDetector vad(cfg);
  std::mt19937 rng(2);
  std::normal_distribution<double> d(0.0, 0.01);
  std::vector<double> noise(32000);
  for (auto& v : noise) v = d(rng);
  // After adaptation, stationary low-level noise is mostly non-speech.
  vad.speech_fraction(noise);  // first pass adapts
  const double frac = vad.speech_fraction(noise);
  EXPECT_LT(frac, 0.4);
  EXPECT_GT(vad.noise_floor(), 1e-4);
}

TEST(Vad, HangoverBridgesShortPauses) {
  affect::VadConfig cfg;
  cfg.hangover_frames = 8;
  affect::VoiceActivityDetector vad(cfg);
  std::vector<double> loud(cfg.frame_len, 0.5);
  std::vector<double> quiet(cfg.frame_len, 0.0);
  EXPECT_TRUE(vad.process_frame(loud));
  // Hangover keeps the next few silent frames marked as speech.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(vad.process_frame(quiet)) << "frame " << i;
  }
  EXPECT_FALSE(vad.process_frame(quiet));
}

// ----------------------------------------------------------------- pipeline

class PipelineFixture : public ::testing::Test {
 protected:
  static affect::AffectClassifier& classifier() {
    static affect::AffectClassifier clf = [] {
      affect::CorpusProfile prof;
      prof.name = "rt";
      prof.num_speakers = 4;
      prof.emotions = {affect::Emotion::kAngry, affect::Emotion::kCalm};
      prof.utterances_per_speaker_emotion = 6;
      prof.utterance_seconds = 1.0;
      prof.speaker_spread = 0.1;
      nn::TrainConfig tc;
      tc.epochs = 8;
      tc.batch_size = 8;
      tc.learning_rate = 2e-3f;
      return affect::train_affect_classifier(nn::ModelKind::kMlp, prof, tc);
    }();
    return clf;
  }
};

TEST_F(PipelineFixture, SilenceNeverInvokesClassifier) {
  affect::RealtimeConfig cfg;
  affect::RealtimePipeline pipe(classifier(), cfg);
  std::vector<double> silence(1600, 0.0);
  double t = 0.0;
  for (int i = 0; i < 30; ++i) {
    pipe.push_audio(t, silence);
    t += 0.1;
  }
  EXPECT_GT(pipe.stats().windows_considered, 0u);
  EXPECT_EQ(pipe.stats().windows_classified, 0u);
}

TEST_F(PipelineFixture, SustainedSpeechConvergesToTruth) {
  affect::RealtimeConfig cfg;
  cfg.stream.vote_window = 3;
  cfg.stream.min_dwell_s = 0.0;
  affect::RealtimePipeline pipe(classifier(), cfg);

  affect::SpeechSynthesizer synth(3);
  double t = 0.0;
  int raw_labels = 0;
  pipe.on_raw_label([&](double, affect::Emotion, float) { ++raw_labels; });
  // Stream 8 seconds of angry speech in 100 ms chunks.
  for (int u = 0; u < 8; ++u) {
    const auto utt =
        synth.synthesize(affect::Emotion::kAngry, 80 + u, 1.0, 16000.0, 0.1);
    for (std::size_t off = 0; off < utt.samples.size(); off += 1600) {
      const std::size_t n = std::min<std::size_t>(1600, utt.samples.size() - off);
      pipe.push_audio(t, {utt.samples.data() + off, n});
      t += 0.1;
    }
  }
  EXPECT_GT(pipe.stats().windows_classified, 4u);
  EXPECT_GT(raw_labels, 0);
  EXPECT_EQ(pipe.stable_emotion(), affect::Emotion::kAngry);
}

// Regression test for the window-scheduler drift bug: the next deadline
// used to be anchored to buffer_end_t_, so the effective stride was
// quantized up to the chunk boundary (chunks not dividing the stride)
// and chunks longer than the stride considered only one window per
// chunk, silently skipping the rest.  The deadline clock must tick in
// exact strides from the moment the first full window is available,
// independent of chunk size.
TEST_F(PipelineFixture, WindowCountMatchesAnalyticRegardlessOfChunkSize) {
  // All durations are binary-representable so the analytic count below is
  // exact: window 1.0 s, stride 0.5 s, chunks of 0.375 s (< stride, not a
  // divisor of it) and 0.75 s (> stride).
  for (const double chunk_s : {0.375, 0.75}) {
    affect::RealtimeConfig cfg;
    ASSERT_EQ(cfg.window_s, 1.0);
    ASSERT_EQ(cfg.window_stride_s, 0.5);
    affect::RealtimePipeline pipe(classifier(), cfg);

    const auto chunk_len =
        static_cast<std::size_t>(chunk_s * cfg.sample_rate_hz);
    const std::vector<double> silence(chunk_len, 0.0);
    const std::size_t n_chunks =
        static_cast<std::size_t>(30.0 / chunk_s);  // 30 s total
    for (std::size_t i = 0; i < n_chunks; ++i) {
      pipe.push_audio(static_cast<double>(i) * chunk_s, silence);
    }

    // First window fires once one full window of audio has arrived, i.e.
    // after ceil(window / chunk) chunks; one more window per stride after
    // that, up to the stream end.
    const auto chunks_to_fill = static_cast<std::size_t>(
        std::ceil(cfg.window_s / chunk_s));
    const double t_first = static_cast<double>(chunks_to_fill) * chunk_s;
    const double total_s = static_cast<double>(n_chunks) * chunk_s;
    const auto expected =
        static_cast<std::uint64_t>((total_s - t_first) /
                                   cfg.window_stride_s) + 1;
    EXPECT_EQ(pipe.stats().windows_considered, expected)
        << "chunk_s=" << chunk_s;
    // Silence: the VAD gate saves every classifier invocation.
    EXPECT_EQ(pipe.stats().windows_classified, 0u);
  }
}

// ------------------------------------------------------------ async pipeline

namespace {

namespace core = affectsys::core;

/// Restores the global pool to its default size on scope exit.
struct GlobalPoolGuard {
  ~GlobalPoolGuard() { core::set_global_threads(core::default_thread_count()); }
};

/// Streams 6 seconds of angry speech into `pipe` in 100 ms chunks.
/// Returns the raw-label timestamps observed via the callback.
std::vector<double> feed_angry_speech(affect::RealtimePipeline& pipe,
                                      bool async) {
  std::vector<double> label_times;
  pipe.on_raw_label(
      [&](double t, affect::Emotion, float) { label_times.push_back(t); });
  affect::SpeechSynthesizer synth(3);
  double t = 0.0;
  for (int u = 0; u < 6; ++u) {
    const auto utt =
        synth.synthesize(affect::Emotion::kAngry, 40 + u, 1.0, 16000.0, 0.1);
    for (std::size_t off = 0; off < utt.samples.size(); off += 1600) {
      const std::size_t n =
          std::min<std::size_t>(1600, utt.samples.size() - off);
      const auto changed = pipe.push_audio(t, {utt.samples.data() + off, n});
      // Async mode defers classification, so the capture path can never
      // report a stable change inline.
      if (async) EXPECT_FALSE(changed.has_value());
      t += 0.1;
    }
  }
  // The worker may still be appending to label_times; drain before the
  // vector leaves this scope (idempotent, no-op in sync mode).
  pipe.drain();
  return label_times;
}

}  // namespace

TEST_F(PipelineFixture, AsyncMatchesSyncAfterDrain) {
  GlobalPoolGuard guard;
  core::set_global_threads(2);

  affect::RealtimeConfig sync_cfg;
  sync_cfg.stream.vote_window = 3;
  sync_cfg.stream.min_dwell_s = 0.0;
  affect::RealtimeConfig async_cfg = sync_cfg;
  async_cfg.async = true;
  async_cfg.max_inflight = 64;  // deep enough that nothing sheds

  affect::RealtimePipeline sync_pipe(classifier(), sync_cfg);
  affect::RealtimePipeline async_pipe(classifier(), async_cfg);
  const auto sync_labels = feed_angry_speech(sync_pipe, false);
  const auto async_labels = feed_angry_speech(async_pipe, true);
  async_pipe.drain();

  // The single in-order worker makes the async run equivalent to the
  // sync one: same windows, same classifications, same smoothing.
  EXPECT_EQ(async_pipe.stats().windows_considered,
            sync_pipe.stats().windows_considered);
  EXPECT_EQ(async_pipe.stats().windows_classified,
            sync_pipe.stats().windows_classified);
  EXPECT_EQ(async_pipe.stats().stable_changes,
            sync_pipe.stats().stable_changes);
  EXPECT_EQ(async_pipe.stats().windows_dropped, 0u);
  EXPECT_EQ(async_pipe.stable_emotion(), sync_pipe.stable_emotion());
  EXPECT_EQ(async_labels, sync_labels);  // FIFO worker: same order, same times
}

TEST_F(PipelineFixture, AsyncZeroInflightShedsEveryWindow) {
  GlobalPoolGuard guard;
  core::set_global_threads(2);
  affect::RealtimeConfig cfg;
  cfg.async = true;
  cfg.max_inflight = 0;  // queue admits nothing: every window sheds
  affect::RealtimePipeline pipe(classifier(), cfg);
  const auto labels = feed_angry_speech(pipe, true);
  pipe.drain();
  EXPECT_GT(pipe.stats().windows_classified, 0u);
  EXPECT_EQ(pipe.stats().windows_dropped, pipe.stats().windows_classified);
  EXPECT_EQ(pipe.stats().stable_changes, 0u);
  EXPECT_TRUE(labels.empty());
}

TEST_F(PipelineFixture, DrainIsIdempotentAndSyncNoop) {
  affect::RealtimeConfig cfg;
  affect::RealtimePipeline sync_pipe(classifier(), cfg);
  sync_pipe.drain();  // no async work: must return immediately
  sync_pipe.drain();

  GlobalPoolGuard guard;
  core::set_global_threads(1);
  cfg.async = true;
  affect::RealtimePipeline async_pipe(classifier(), cfg);
  feed_angry_speech(async_pipe, true);
  async_pipe.drain();
  const auto classified = async_pipe.stats().windows_classified;
  async_pipe.drain();  // second drain on an idle pipeline is a no-op
  EXPECT_EQ(async_pipe.stats().windows_classified, classified);
}

// ------------------------------------------------------------------ offload

TEST(EstimateMacs, ScalesWithModelAndHeads) {
  nn::ClassifierSpec spec{17, 64, 7};
  std::mt19937 rng(4);
  auto mlp = nn::build_mlp(spec, rng);
  auto lstm = nn::build_lstm(spec, rng);
  // The MLP is one flat pass (macs ~ params); the LSTM touches its
  // recurrent weights every timestep, so macs >> params.
  EXPECT_LT(nn::estimate_inference_macs(mlp, 64),
            2 * mlp.param_count());
  EXPECT_GT(nn::estimate_inference_macs(lstm, 64),
            20 * lstm.param_count());
}

TEST(Offload, TinyModelStaysOnWatch) {
  power::OffloadPlanner planner;
  // 10k MACs, 100-byte features: local inference is cheaper than radio.
  const auto r = planner.plan(10000, 100);
  EXPECT_EQ(r.watch_optimal, power::ExecutionTarget::kWatch);
  EXPECT_LT(r.local_watch_nj, r.offload_watch_nj);
}

TEST(Offload, PaperScaleModelOffloadsToPhone) {
  power::OffloadPlanner planner;
  // The paper's LSTM at 64 timesteps: ~28M MACs per window.
  nn::ClassifierSpec spec{17, 64, 7};
  std::mt19937 rng(5);
  auto lstm = nn::build_lstm(spec, rng);
  const std::size_t macs = nn::estimate_inference_macs(lstm, 64);
  // Feature payload: 64 x 17 floats.
  const auto r = planner.plan(macs, 64 * 17 * 4);
  EXPECT_EQ(r.watch_optimal, power::ExecutionTarget::kPhone)
      << "macs=" << macs;
  EXPECT_EQ(r.system_optimal, power::ExecutionTarget::kPhone);
}

TEST(Offload, CrossoverMonotoneInPayload) {
  power::OffloadPlanner planner;
  EXPECT_LT(planner.watch_crossover_macs(100),
            planner.watch_crossover_macs(10000));
  // Consistency: exactly at the crossover the two costs are equal.
  const double macs = planner.watch_crossover_macs(1000);
  const auto r = planner.plan(static_cast<std::size_t>(macs), 1000);
  EXPECT_NEAR(r.local_watch_nj, r.offload_watch_nj,
              r.local_watch_nj * 0.01);
}

// ---------------------------------------------------- sink (server) mode

// Sink mode is the session server's attachment point: windows that
// survive the VAD gate are handed out for external (batched) inference
// and results come back through apply_label().

TEST_F(PipelineFixture, SinkReceivesEveryVadSurvivingWindow) {
  affect::RealtimeConfig cfg;
  affect::RealtimePipeline pipe(classifier(), cfg);
  std::vector<std::pair<double, std::size_t>> delivered;
  pipe.set_window_sink([&](double t_end, std::span<const double> w) {
    delivered.emplace_back(t_end, w.size());
    // Apply a result immediately, as an unloaded server would.
    pipe.apply_label(t_end, affect::Emotion::kAngry);
  });

  affect::SpeechSynthesizer synth(3);
  double t = 0.0;
  for (int u = 0; u < 4; ++u) {
    const auto utt =
        synth.synthesize(affect::Emotion::kAngry, 60 + u, 1.0, 16000.0, 0.1);
    for (std::size_t off = 0; off < utt.samples.size(); off += 1600) {
      const std::size_t n =
          std::min<std::size_t>(1600, utt.samples.size() - off);
      pipe.push_audio(t, {utt.samples.data() + off, n});
      t += 0.1;
    }
  }
  ASSERT_FALSE(delivered.empty());
  EXPECT_EQ(delivered.size(), pipe.stats().windows_classified);
  EXPECT_EQ(pipe.dropped(), 0u);
  const std::size_t window_len = static_cast<std::size_t>(16000.0 * 1.0);
  for (const auto& [t_end, n] : delivered) EXPECT_EQ(n, window_len);
  // Labels applied through apply_label() drive the smoothing stream
  // exactly like internal classification would.
  EXPECT_EQ(pipe.stable_emotion(), affect::Emotion::kAngry);
  EXPECT_GT(pipe.stats().stable_changes, 0u);
}

TEST_F(PipelineFixture, SinkModeShedsNewestWindowBeyondMaxInflight) {
  affect::RealtimeConfig cfg;
  cfg.max_inflight = 2;
  cfg.obs_scope = "rt.test.shed";  // unique per test: registry is global
  affect::RealtimePipeline pipe(classifier(), cfg);
  std::vector<double> pending_t;
  pipe.set_window_sink(
      [&](double t_end, std::span<const double>) { pending_t.push_back(t_end); });

  affect::SpeechSynthesizer synth(3);
  double t = 0.0;
  for (int u = 0; u < 6; ++u) {
    const auto utt =
        synth.synthesize(affect::Emotion::kAngry, 30 + u, 1.0, 16000.0, 0.1);
    for (std::size_t off = 0; off < utt.samples.size(); off += 1600) {
      const std::size_t n =
          std::min<std::size_t>(1600, utt.samples.size() - off);
      pipe.push_audio(t, {utt.samples.data() + off, n});
      t += 0.1;
    }
  }
  // Nobody applied results, so only max_inflight windows were ever
  // delivered; the rest were shed (drop-newest) and counted.
  EXPECT_EQ(pending_t.size(), cfg.max_inflight);
  EXPECT_GT(pipe.dropped(), 0u);
  EXPECT_EQ(pipe.dropped(), pipe.stats().windows_dropped);
  // The scoped per-session counter saw the same sheds as the aggregate.
  EXPECT_EQ(affectsys::obs::Registry::global()
                .counter("rt.test.shed.affect.windows_dropped")
                .value(),
            pipe.dropped());

  // Applying a result frees a slot: the next surviving window flows.
  pipe.apply_label(pending_t.front(), affect::Emotion::kAngry);
  const auto before = pending_t.size();
  const auto utt =
      synth.synthesize(affect::Emotion::kAngry, 99, 1.5, 16000.0, 0.1);
  for (std::size_t off = 0; off < utt.samples.size(); off += 1600) {
    const std::size_t n = std::min<std::size_t>(1600, utt.samples.size() - off);
    pipe.push_audio(t, {utt.samples.data() + off, n});
    t += 0.1;
  }
  EXPECT_GT(pending_t.size(), before);
}

TEST_F(PipelineFixture, SinkModeRejectsAsyncConfig) {
  affect::RealtimeConfig cfg;
  cfg.async = true;
  affect::RealtimePipeline pipe(classifier(), cfg);
  EXPECT_THROW(pipe.set_window_sink([](double, std::span<const double>) {}),
               std::logic_error);
}
