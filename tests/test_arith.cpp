// Tests for the CABAC-style arithmetic coder and the ECG channel.
#include <gtest/gtest.h>

#include <random>

#include "affect/ecg.hpp"
#include "h264/arith.hpp"
#include "h264/bitstream.hpp"
#include "h264/entropy.hpp"

namespace h264 = affectsys::h264;
namespace affect = affectsys::affect;

// ------------------------------------------------------------- range coder

TEST(ArithCoder, SingleContextBitsRoundTrip) {
  h264::ArithEncoder enc;
  h264::ContextModel enc_ctx;
  const bool pattern[] = {true,  false, true, true,  false,
                          false, false, true, false, true};
  for (bool b : pattern) enc.encode_bit(enc_ctx, b);
  const auto bytes = enc.finish();

  h264::ArithDecoder dec(bytes);
  h264::ContextModel dec_ctx;
  for (bool b : pattern) EXPECT_EQ(dec.decode_bit(dec_ctx), b);
}

TEST(ArithCoder, BypassBitsRoundTrip) {
  h264::ArithEncoder enc;
  enc.encode_bypass_bits(0xDEADBEEF, 32);
  enc.encode_bypass(true);
  enc.encode_bypass(false);
  const auto bytes = enc.finish();
  h264::ArithDecoder dec(bytes);
  EXPECT_EQ(dec.decode_bypass_bits(32), 0xDEADBEEFu);
  EXPECT_TRUE(dec.decode_bypass());
  EXPECT_FALSE(dec.decode_bypass());
}

TEST(ArithCoder, LongRandomMixedStreamRoundTrips) {
  std::mt19937 rng(1);
  std::bernoulli_distribution biased(0.8);
  std::bernoulli_distribution fair(0.5);
  std::vector<std::pair<bool, bool>> symbols;  // (is_bypass, bit)
  for (int i = 0; i < 20000; ++i) {
    const bool bypass = fair(rng);
    symbols.push_back({bypass, bypass ? fair(rng) : biased(rng)});
  }
  h264::ArithEncoder enc;
  h264::ContextModel enc_ctx;
  for (auto [bypass, bit] : symbols) {
    if (bypass) {
      enc.encode_bypass(bit);
    } else {
      enc.encode_bit(enc_ctx, bit);
    }
  }
  const auto bytes = enc.finish();
  h264::ArithDecoder dec(bytes);
  h264::ContextModel dec_ctx;
  for (auto [bypass, bit] : symbols) {
    const bool out = bypass ? dec.decode_bypass() : dec.decode_bit(dec_ctx);
    ASSERT_EQ(out, bit);
  }
}

TEST(ArithCoder, AdaptiveCompressionBeatsOneBitPerSymbol) {
  // A heavily biased source must compress well below 1 bit/symbol.
  std::mt19937 rng(2);
  std::bernoulli_distribution biased(0.95);
  h264::ArithEncoder enc;
  h264::ContextModel ctx;
  const int n = 20000;
  for (int i = 0; i < n; ++i) enc.encode_bit(ctx, biased(rng));
  const auto bytes = enc.finish();
  // Entropy of p=0.95 is ~0.286 bits; allow generous adaptation slack.
  EXPECT_LT(bytes.size() * 8, n / 2);
}

TEST(ArithCoder, TruncatedStreamThrows) {
  h264::ArithEncoder enc;
  h264::ContextModel ctx;
  for (int i = 0; i < 1000; ++i) enc.encode_bit(ctx, i % 3 == 0);
  auto bytes = enc.finish();
  bytes.resize(bytes.size() / 4);
  h264::ArithDecoder dec(bytes);
  h264::ContextModel dctx;
  EXPECT_THROW(
      {
        for (int i = 0; i < 1000; ++i) dec.decode_bit(dctx);
      },
      h264::BitstreamError);
}

// -------------------------------------------------------- residual blocks

TEST(CabacResiduals, FuzzRoundTrip) {
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> level(-40, 40);
  std::uniform_real_distribution<double> density(0.0, 1.0);
  std::vector<h264::Block4x4> blocks;
  for (int iter = 0; iter < 400; ++iter) {
    const double p = density(rng) * density(rng);  // mostly sparse
    h264::Block4x4 blk{};
    for (auto& row : blk) {
      for (auto& x : row) {
        if (density(rng) < p) x = level(rng);
      }
    }
    blocks.push_back(blk);
  }
  h264::ArithEncoder enc;
  h264::ResidualContexts ectx;
  for (const auto& blk : blocks) {
    h264::encode_residual_block_cabac(enc, ectx, blk);
  }
  const auto bytes = enc.finish();
  h264::ArithDecoder dec(bytes);
  h264::ResidualContexts dctx;
  for (const auto& blk : blocks) {
    ASSERT_EQ(h264::decode_residual_block_cabac(dec, dctx), blk);
  }
}

TEST(CabacResiduals, ExtremeLevelsSurvive) {
  h264::Block4x4 blk{};
  blk[0][0] = 2047;
  blk[3][3] = -2047;
  blk[1][2] = 1;
  h264::ArithEncoder enc;
  h264::ResidualContexts ectx;
  h264::encode_residual_block_cabac(enc, ectx, blk);
  const auto bytes = enc.finish();
  h264::ArithDecoder dec(bytes);
  h264::ResidualContexts dctx;
  EXPECT_EQ(h264::decode_residual_block_cabac(dec, dctx), blk);
}

TEST(CabacResiduals, BeatsCavlcOnTypicalResiduals) {
  // Sparse, small-magnitude blocks (the typical quantized-residual
  // profile): the adaptive coder should need fewer bits than the
  // Exp-Golomb CAVLC-style coder.
  std::mt19937 rng(4);
  std::uniform_int_distribution<int> level(-3, 3);
  std::uniform_real_distribution<double> density(0.0, 1.0);
  std::vector<h264::Block4x4> blocks;
  for (int iter = 0; iter < 2000; ++iter) {
    h264::Block4x4 blk{};
    for (auto& row : blk) {
      for (auto& x : row) {
        if (density(rng) < 0.12) x = level(rng);
      }
    }
    blocks.push_back(blk);
  }
  h264::BitWriter cavlc;
  for (const auto& blk : blocks) h264::encode_residual_block(cavlc, blk);
  h264::ArithEncoder enc;
  h264::ResidualContexts ctx;
  for (const auto& blk : blocks) {
    h264::encode_residual_block_cabac(enc, ctx, blk);
  }
  const std::size_t cabac_bits = enc.finish().size() * 8;
  EXPECT_LT(cabac_bits, cavlc.bit_count());
}

// -------------------------------------------------------------------- ECG

TEST(Ecg, WaveformHasRPeaksAtGroundTruth) {
  affect::EcgConfig cfg;
  cfg.noise = 0.005;
  affect::EcgGenerator gen(cfg);
  affect::EmotionTimeline tl;
  tl.segments = {{0.0, 60.0, affect::Emotion::kNeutral}};
  const auto ecg = gen.generate(tl);
  EXPECT_EQ(ecg.size(), static_cast<std::size_t>(60.0 * cfg.sample_rate_hz));

  const auto detected = affect::detect_r_peaks(ecg, cfg.sample_rate_hz);
  const auto& truth = gen.last_r_peaks();
  ASSERT_GT(truth.size(), 40u);
  // Detection rate: at least 90% of true peaks matched within 60 ms.
  std::size_t matched = 0;
  for (double t : truth) {
    for (double d : detected) {
      if (std::abs(d - t) < 0.06) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_GT(static_cast<double>(matched) / static_cast<double>(truth.size()),
            0.9);
  // And not too many spurious detections.
  EXPECT_LT(detected.size(), truth.size() * 12 / 10);
}

TEST(Ecg, HrvFromEcgSeparatesArousal) {
  affect::EcgConfig cfg;
  cfg.noise = 0.005;
  affect::EcgGenerator gen(cfg);
  affect::EmotionTimeline tl;
  tl.segments = {{0.0, 120.0, affect::Emotion::kTense},
                 {120.0, 240.0, affect::Emotion::kRelaxed}};
  const auto ecg = gen.generate(tl);
  const auto half = static_cast<std::size_t>(120.0 * cfg.sample_rate_hz);
  const auto tense =
      affect::hrv_features(affect::detect_r_peaks({ecg.data(), half},
                                                  cfg.sample_rate_hz));
  const auto relaxed = affect::hrv_features(affect::detect_r_peaks(
      {ecg.data() + half, ecg.size() - half}, cfg.sample_rate_hz));
  EXPECT_GT(tense.mean_hr_bpm, relaxed.mean_hr_bpm + 5.0);
}

TEST(Ecg, DetectorHandlesDegenerateInput) {
  EXPECT_TRUE(affect::detect_r_peaks({}, 250.0).empty());
  std::vector<double> flat(1000, 0.0);
  EXPECT_TRUE(affect::detect_r_peaks(flat, 250.0).empty());
}
